// Energy-subsystem tests: machine model arithmetic, meter scopes, RAPL
// discovery against a faked sysfs tree, DVFS scaling hooks.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "energy/meter.hpp"
#include "energy/model.hpp"
#include "energy/rapl.hpp"

namespace {

using namespace sigrt::energy;
namespace fs = std::filesystem;

class FakeActivity final : public ActivitySource {
 public:
  Activity value;
  [[nodiscard]] Activity activity_now() const override { return value; }
};

TEST(MachineModel, DefaultsMatchPaperPlatformEnvelope) {
  const MachineModel m;
  EXPECT_EQ(m.total_cores(), 16);
  // Fully busy machine should land in the ballpark of 2x95W TDP.
  const double full_load_w = m.static_power_w() + 16.0 * m.dynamic_core_power_w();
  EXPECT_GT(full_load_w, 140.0);
  EXPECT_LT(full_load_w, 220.0);
  // Idle machine well below full load.
  EXPECT_LT(m.static_power_w(), 0.4 * full_load_w);
}

TEST(MachineModel, EnergyScalesWithBusyTime) {
  const MachineModel m;
  const double idle_only = m.joules(10.0, 0.0);
  const double half_busy = m.joules(10.0, 5.0);
  const double full_busy = m.joules(10.0, 10.0);
  EXPECT_LT(idle_only, half_busy);
  EXPECT_LT(half_busy, full_busy);
  EXPECT_NEAR(full_busy - half_busy, half_busy - idle_only, 1e-9);  // linear
}

TEST(MachineModel, EnergyScalesWithWallTime) {
  const MachineModel m;
  EXPECT_NEAR(m.joules(20.0, 0.0), 2.0 * m.joules(10.0, 0.0), 1e-9);
}

TEST(MachineModel, DvfsCubicPowerLinearTime) {
  MachineModel m;
  m.frequency_scale = 0.5;
  const MachineModel nominal;
  EXPECT_NEAR(m.dynamic_core_power_w(),
              nominal.dynamic_core_power_w() * 0.125, 1e-9);
  EXPECT_DOUBLE_EQ(m.time_scale(), 2.0);
}

TEST(ModelMeter, IntegratesActivity) {
  FakeActivity src;
  ModelMeter meter(MachineModel{}, src);
  src.value = {0.0, 0.0};
  const double j0 = meter.joules_now();
  src.value = {2.0, 1.5};
  const double j1 = meter.joules_now();
  EXPECT_DOUBLE_EQ(j0, 0.0);
  EXPECT_NEAR(j1, MachineModel{}.joules(2.0, 1.5), 1e-9);
  EXPECT_EQ(meter.name(), "model");
}

TEST(Scope, MeasuresDelta) {
  FakeActivity src;
  ModelMeter meter(MachineModel{}, src);
  src.value = {1.0, 0.5};
  const Scope scope(meter);
  src.value = {3.0, 2.5};
  const double expected =
      MachineModel{}.joules(3.0, 2.5) - MachineModel{}.joules(1.0, 0.5);
  EXPECT_NEAR(scope.joules(), expected, 1e-9);
}

TEST(NullMeter, AlwaysZero) {
  const NullMeter m;
  EXPECT_DOUBLE_EQ(m.joules_now(), 0.0);
  const Scope scope(m);
  EXPECT_DOUBLE_EQ(scope.joules(), 0.0);
  EXPECT_EQ(m.name(), "null");
}

class RaplFixture : public testing::Test {
 protected:
  void SetUp() override {
    // One directory per test: ctest may run the fixture's tests in
    // parallel processes.
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::temp_directory_path() /
            (std::string("sigrt_rapl_") + info->name());
    fs::remove_all(root_);
    fs::create_directories(root_ / "intel-rapl:0");
    fs::create_directories(root_ / "intel-rapl:1");
    fs::create_directories(root_ / "intel-rapl:0:0");  // subdomain: ignored
    write(root_ / "intel-rapl:0/name", "package-0");
    write(root_ / "intel-rapl:1/name", "package-1");
    write(root_ / "intel-rapl:0:0/name", "core");
    write(root_ / "intel-rapl:0/energy_uj", "1000000");
    write(root_ / "intel-rapl:1/energy_uj", "2000000");
    write(root_ / "intel-rapl:0:0/energy_uj", "999999999");
    write(root_ / "intel-rapl:0/max_energy_range_uj", "262143328850");
    write(root_ / "intel-rapl:1/max_energy_range_uj", "262143328850");
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const fs::path& p, const std::string& content) {
    std::ofstream(p) << content << '\n';
  }

  fs::path root_;
};

TEST_F(RaplFixture, DiscoversPackageDomainsOnly) {
  RaplMeter meter(root_.string());
  ASSERT_TRUE(meter.available());
  EXPECT_EQ(meter.domain_count(), 2u);
}

TEST_F(RaplFixture, SumsPackagesInJoules) {
  RaplMeter meter(root_.string());
  EXPECT_NEAR(meter.joules_now(), 3.0, 1e-9);  // 1 J + 2 J
}

TEST_F(RaplFixture, TracksCounterIncrements) {
  RaplMeter meter(root_.string());
  const double before = meter.joules_now();
  write(root_ / "intel-rapl:0/energy_uj", "1500000");
  EXPECT_NEAR(meter.joules_now() - before, 0.5, 1e-9);
}

TEST_F(RaplFixture, HandlesCounterWraparound) {
  RaplMeter meter(root_.string());
  (void)meter.joules_now();  // prime
  // Wrap package 0 back below its previous value.
  write(root_ / "intel-rapl:0/energy_uj", "500000");
  const double after = meter.joules_now();
  // 0.5 J raw + one full wrap (262143.32885 J) + package 1's 2 J.
  EXPECT_GT(after, 260000.0);
}

TEST(Rapl, UnavailableOnMissingTree) {
  RaplMeter meter("/nonexistent/sigrt/powercap");
  EXPECT_FALSE(meter.available());
  EXPECT_DOUBLE_EQ(meter.joules_now(), 0.0);
}

TEST(MeterFactory, FallsBackToModelWithSource) {
  FakeActivity src;
  const auto meter = make_best_meter(&src);
  ASSERT_NE(meter, nullptr);
  // On hosts without readable RAPL this is "model"; with RAPL it is "rapl".
  EXPECT_TRUE(meter->name() == "model" || meter->name() == "rapl");
}

TEST(MeterFactory, NullWhenNoSourceAndNoRapl) {
  const auto meter = make_best_meter(nullptr);
  ASSERT_NE(meter, nullptr);
  EXPECT_TRUE(meter->name() == "null" || meter->name() == "rapl");
}

}  // namespace
