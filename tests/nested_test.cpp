// Nested-parallelism tests: any-thread spawn, in-task taskwait (helping
// barrier), recursive fan-out at several worker counts, group barriers
// issued from inside task bodies, and nested spawn under a buffering
// policy.  This suite runs under TSan in CI — it is the data-race gate
// for the multi-spawner runtime contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/sigrt.hpp"

namespace {

using sigrt::ExecutionKind;
using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig workers_config(unsigned workers,
                             PolicyKind p = PolicyKind::Agnostic) {
  RuntimeConfig c;
  c.workers = workers;
  c.policy = p;
  return c;
}

std::uint64_t fib_iterative(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

// Divide-and-conquer fib: every interior node spawns two children and
// issues an in-task taskwait before combining — the workload shape the
// old single-spawner contract could not express at all.
void fib_task(Runtime& rt, int n, int cutoff, std::uint64_t* out) {
  if (n < cutoff) {
    *out = fib_iterative(n);
    return;
  }
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  rt.spawn(sigrt::task([&rt, n, cutoff, &a] { fib_task(rt, n - 1, cutoff, &a); }));
  rt.spawn(sigrt::task([&rt, n, cutoff, &b] { fib_task(rt, n - 2, cutoff, &b); }));
  rt.wait_all();  // in-task: barriers on this task's two children
  *out = a + b;
}

class NestedFib : public ::testing::TestWithParam<unsigned> {};

TEST_P(NestedFib, RecursiveFibWithInTaskTaskwait) {
  // Depth >= 20 levels of nested spawn+taskwait (n - cutoff = 20).
  constexpr int kN = 32;
  constexpr int kCutoff = 12;
  Runtime rt(workers_config(GetParam()));
  std::uint64_t result = 0;
  rt.spawn(sigrt::task(
      [&rt, &result] { fib_task(rt, kN, kCutoff, &result); }));
  rt.wait_all();
  EXPECT_EQ(result, fib_iterative(kN));
}

INSTANTIATE_TEST_SUITE_P(WorkerSweep, NestedFib,
                         ::testing::Values(0u, 1u, 2u, 8u));

class NestedFanOut : public ::testing::TestWithParam<unsigned> {};

// K-ary fan-out with a taskwait at every level: stresses many concurrent
// helping barriers (every interior node of the tree is simultaneously a
// worker, a spawner and a waiter).
TEST_P(NestedFanOut, FanOutWithBarrierAtEveryDepth) {
  constexpr int kArity = 4;
  constexpr int kDepth = 6;  // (4^7 - 1) / 3 = 5461 tasks
  Runtime rt(workers_config(GetParam()));
  std::atomic<std::uint64_t> nodes{0};

  struct Node {
    static void run(Runtime& rt, std::atomic<std::uint64_t>& count, int depth) {
      count.fetch_add(1, std::memory_order_relaxed);
      if (depth == 0) return;
      for (int k = 0; k < kArity; ++k) {
        rt.spawn(sigrt::task(
            [&rt, &count, depth] { run(rt, count, depth - 1); }));
      }
      rt.wait_all();  // in-task: children-only barrier
    }
  };

  rt.spawn(sigrt::task([&rt, &nodes] { Node::run(rt, nodes, kDepth); }));
  rt.wait_all();

  std::uint64_t expected = 0;
  std::uint64_t level = 1;
  for (int d = 0; d <= kDepth; ++d, level *= kArity) expected += level;
  EXPECT_EQ(nodes.load(), expected);
  const auto r = rt.group_report(sigrt::kDefaultGroup);
  EXPECT_EQ(r.spawned, expected);
  EXPECT_EQ(r.spawned, r.accurate + r.approximate + r.dropped);
}

INSTANTIATE_TEST_SUITE_P(WorkerSweep, NestedFanOut,
                         ::testing::Values(1u, 2u, 8u));

TEST(Nested, InTaskTaskwaitWaitsChildrenNotSiblings) {
  // Two sibling tasks each spawn a child and taskwait.  With global
  // pending==0 semantics both siblings would deadlock; with children-only
  // semantics each proceeds as soon as its own child finished.
  Runtime rt(workers_config(2));
  std::atomic<int> done{0};
  for (int s = 0; s < 2; ++s) {
    rt.spawn(sigrt::task([&rt, &done] {
      std::atomic<bool> child_done{false};
      rt.spawn(sigrt::task([&child_done] { child_done.store(true); }));
      rt.wait_all();  // must only wait for OUR child
      EXPECT_TRUE(child_done.load());
      done.fetch_add(1);
    }));
  }
  rt.wait_all();
  EXPECT_EQ(done.load(), 2);
}

TEST(Nested, InTaskWaitGroupQuiescesOtherGroup) {
  Runtime rt(workers_config(2));
  const auto inner = rt.create_group("inner", 1.0);
  std::atomic<int> inner_done{0};
  std::atomic<bool> checked{false};
  rt.spawn(sigrt::task([&] {
    for (int i = 0; i < 8; ++i) {
      rt.spawn(sigrt::task([&inner_done] { inner_done.fetch_add(1); })
                   .group(inner));
    }
    rt.wait_group(inner);  // in-task group barrier from a worker
    EXPECT_EQ(inner_done.load(), 8);
    checked.store(true);
  }));
  rt.wait_all();
  EXPECT_TRUE(checked.load());
  const auto r = rt.group_report(inner);
  EXPECT_EQ(r.spawned, 8u);
  EXPECT_EQ(r.spawned, r.accurate + r.approximate + r.dropped);
}

TEST(Nested, InTaskSameGroupWaitGroupThrows) {
  // ROADMAP carry-over deadlock shape: a task of group g calling
  // wait_group(g) stays pending in g until its own body returns, so the
  // barrier can never open once a second member does the same.  The
  // runtime now detects the shape at the wait and throws instead of
  // spinning forever in the helping loop.
  Runtime rt(workers_config(2));
  const auto g = rt.create_group("self", 1.0);
  std::atomic<bool> threw{false};
  rt.spawn(sigrt::task([&] {
             try {
               rt.wait_group(g);  // same group as the calling task
             } catch (const std::logic_error&) {
               threw.store(true);
             }
           })
               .group(g));
  rt.wait_all();
  EXPECT_TRUE(threw.load());

  // The classic two-waiter deadlock: both members throw rather than hang,
  // and the error surfaces at the top-level barrier as usual.
  std::atomic<int> threw_count{0};
  for (int i = 0; i < 2; ++i) {
    rt.spawn(sigrt::task([&] {
               try {
                 rt.wait_group(g);
               } catch (const std::logic_error&) {
                 threw_count.fetch_add(1);
               }
             })
                 .group(g));
  }
  rt.wait_all();
  EXPECT_EQ(threw_count.load(), 2);

  // Waiting on a DIFFERENT group from inside a task stays legal (covered
  // further by InTaskWaitGroupQuiescesOtherGroup).
  const auto other = rt.create_group("other", 1.0);
  std::atomic<bool> ok{false};
  rt.spawn(sigrt::task([&] {
             rt.spawn(sigrt::task([] {}).group(other));
             rt.wait_group(other);
             ok.store(true);
           })
               .group(g));
  rt.wait_all();
  EXPECT_TRUE(ok.load());
}

TEST(Nested, InTaskWaitOnWaitsRangeWriters) {
  Runtime rt(workers_config(2));
  alignas(1024) static int data[256];
  data[7] = 0;
  std::atomic<bool> checked{false};
  rt.spawn(sigrt::task([&] {
    rt.spawn(sigrt::task([] { data[7] = 99; }).out(data, 256));
    rt.wait_on(data, sizeof(data));  // helping, not blocking
    EXPECT_EQ(data[7], 99);
    checked.store(true);
  }));
  rt.wait_all();
  EXPECT_TRUE(checked.load());
}

class NestedGtb : public ::testing::TestWithParam<unsigned> {};

// Nested spawn under a buffering policy: children spawned from a task body
// land in the (now mutex-guarded) GTB window, and the in-task taskwait's
// flush is what releases them — on every worker count, including inline.
TEST_P(NestedGtb, BufferedChildrenFlushFromInsideTask) {
  RuntimeConfig c = workers_config(GetParam(), PolicyKind::GTB);
  c.gtb_buffer = 4;  // force several mid-stream window flushes too
  Runtime rt(c);
  std::atomic<int> leaves{0};
  rt.spawn(sigrt::task([&rt, &leaves] {
    for (int i = 0; i < 10; ++i) {
      rt.spawn(sigrt::task([&leaves] { leaves.fetch_add(1); })
                   .significance(0.5)
                   .approx([&leaves] { leaves.fetch_add(1); }));
    }
    rt.wait_all();
    EXPECT_EQ(leaves.load(), 10);
  }));
  rt.wait_all();
  EXPECT_EQ(leaves.load(), 10);
  const auto r = rt.group_report(sigrt::kDefaultGroup);
  EXPECT_EQ(r.spawned, 11u);
  EXPECT_EQ(r.spawned, r.accurate + r.approximate + r.dropped);
}

INSTANTIATE_TEST_SUITE_P(WorkerSweep, NestedGtb,
                         ::testing::Values(0u, 1u, 2u, 8u));

class NestedGtbNoWait : public ::testing::TestWithParam<unsigned> {};

// Liveness regression: children spawned into a buffering policy DURING a
// barrier (the parent never taskwaits, so only the top-level barrier can
// flush them) must not hang the barrier — wait_all re-flushes on its
// timed wait, and helping loops re-flush in their backoff branch.
TEST_P(NestedGtbNoWait, UnwaitedBufferedChildrenStillFlushAtTopBarrier) {
  Runtime rt(workers_config(GetParam(), PolicyKind::GTBMaxBuffer));
  std::atomic<int> ran{0};
  rt.spawn(sigrt::task([&rt, &ran] {
    for (int i = 0; i < 3; ++i) {
      rt.spawn(sigrt::task([&ran] { ran.fetch_add(1); }));
    }
    // No in-task taskwait: the children sit in the GTB window until the
    // top-level barrier's re-flush releases them.
  }));
  rt.wait_all();
  EXPECT_EQ(ran.load(), 3);
}

INSTANTIATE_TEST_SUITE_P(WorkerSweep, NestedGtbNoWait,
                         ::testing::Values(0u, 1u, 2u, 8u));

TEST(Nested, ConcurrentUserThreadsSpawnSafely) {
  // The multi-spawner half of the contract without task nesting: several
  // plain user threads spawning into one runtime concurrently.
  Runtime rt(workers_config(2));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<std::uint64_t> ran{0};
  std::vector<std::thread> spawners;
  spawners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    spawners.emplace_back([&rt, &ran] {
      for (int i = 0; i < kPerThread; ++i) {
        rt.spawn(sigrt::task([&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
      }
    });
  }
  for (auto& t : spawners) t.join();
  rt.wait_all();
  EXPECT_EQ(ran.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto r = rt.group_report(sigrt::kDefaultGroup);
  EXPECT_EQ(r.spawned, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(r.spawned, r.accurate + r.approximate + r.dropped);
}

TEST(Nested, ExceptionInNestedChildReachesTopLevelWait) {
  Runtime rt(workers_config(2));
  rt.spawn(sigrt::task([&rt] {
    rt.spawn(sigrt::task([] { throw std::runtime_error("deep failure"); }));
    // No in-task wait: the error must still surface at the top barrier.
  }));
  EXPECT_THROW(rt.wait_all(), std::runtime_error);
}

TEST(Nested, BusyTimeStaysExclusiveUnderHelping) {
  // A helping taskwait re-enters execution, so the outer task's wall span
  // covers every helped child; inclusive accounting would inflate busy
  // time roughly linearly with tree depth.  Exclusive accounting keeps it
  // physically possible: busy <= workers x wall (with generous slack for
  // scheduling noise).
  Runtime rt(workers_config(2));
  // Anchor the TSC->ns calibration before the workload: CycleClock's ratio
  // is computed over the window since its first use, and a first-use
  // window of microseconds makes busy_s noise (documented in timer.hpp).
  (void)rt.stats();
  std::uint64_t result = 0;
  rt.spawn(sigrt::task([&rt, &result] { fib_task(rt, 26, 12, &result); }));
  rt.wait_all();
  EXPECT_EQ(result, fib_iterative(26));
  const auto s = rt.stats();
  EXPECT_GT(s.busy_s, 0.0);
  EXPECT_LE(s.busy_s, s.wall_s * 2.0 * 1.5);
}

TEST(Nested, SpawnThrottleRunsInlineAboveWatermarkAndStaysOffBelow) {
  // Work-first throttle: a worker whose own queue is already deeper than
  // spawn_inline_watermark executes further spawns inline instead of
  // enqueueing, bounding queue memory on spawn-heavy bodies.
  constexpr int kSpawns = 256;
  {
    RuntimeConfig c = workers_config(1);
    c.spawn_inline_watermark = 8;
    Runtime rt(c);
    std::atomic<int> ran{0};
    rt.spawn(sigrt::task([&rt, &ran] {
      for (int i = 0; i < kSpawns; ++i) {
        rt.spawn(sigrt::task([&ran] { ran.fetch_add(1); }));
      }
    }));
    rt.wait_all();
    EXPECT_EQ(ran.load(), kSpawns);  // inlined spawns must not be lost
    EXPECT_GT(rt.stats().inline_spawns, 0u);
  }
  {
    // Regression guard: a watermark the queue never reaches must leave
    // every spawn on the deque (the throttle cannot fire spuriously).
    RuntimeConfig c = workers_config(1);
    c.spawn_inline_watermark = 1u << 20;
    Runtime rt(c);
    std::atomic<int> ran{0};
    rt.spawn(sigrt::task([&rt, &ran] {
      for (int i = 0; i < kSpawns; ++i) {
        rt.spawn(sigrt::task([&ran] { ran.fetch_add(1); }));
      }
    }));
    rt.wait_all();
    EXPECT_EQ(ran.load(), kSpawns);
    EXPECT_EQ(rt.stats().inline_spawns, 0u);
  }
}

TEST(Nested, CurrentTaskIdVisibleInsideBody) {
  Runtime rt(workers_config(1));
  EXPECT_EQ(sigrt::current_task_id(), 0u);
  std::atomic<sigrt::TaskId> seen{0};
  rt.spawn(sigrt::task([&seen] { seen.store(sigrt::current_task_id()); }));
  rt.wait_all();
  EXPECT_NE(seen.load(), 0u);
  EXPECT_EQ(sigrt::current_task_id(), 0u);
}

}  // namespace
