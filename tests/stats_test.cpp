// Tests for runtime statistics, the task builder's clause plumbing and the
// diagnostic dump facility.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/sigrt.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig inline_config(PolicyKind p = PolicyKind::GTBMaxBuffer) {
  RuntimeConfig c;
  c.workers = 0;
  c.policy = p;
  return c;
}

TEST(Builder, CarriesAllClauses) {
  int data[8] = {};
  auto opts = sigrt::task([] {})
                  .approx([] {})
                  .significance(0.42)
                  .group(3)
                  .in(data, 4)
                  .out(data + 4, 4)
                  .take();
  EXPECT_TRUE(static_cast<bool>(opts.accurate));
  EXPECT_TRUE(static_cast<bool>(opts.approximate));
  EXPECT_DOUBLE_EQ(opts.significance, 0.42);
  EXPECT_EQ(opts.group, 3u);
  ASSERT_EQ(opts.accesses.size(), 2u);
  EXPECT_EQ(opts.accesses[0].mode, sigrt::dep::Mode::In);
  EXPECT_EQ(opts.accesses[0].bytes, 4 * sizeof(int));
  EXPECT_EQ(opts.accesses[1].mode, sigrt::dep::Mode::Out);
}

TEST(Builder, InoutClauseMapsToInOutMode) {
  double cell = 0.0;
  auto opts = sigrt::task([] {}).inout(&cell).take();
  ASSERT_EQ(opts.accesses.size(), 1u);
  EXPECT_EQ(opts.accesses[0].mode, sigrt::dep::Mode::InOut);
  EXPECT_EQ(opts.accesses[0].bytes, sizeof(double));
}

TEST(Builder, DefaultsAreAccurateUngroupedFullSignificance) {
  auto opts = sigrt::task([] {}).take();
  EXPECT_DOUBLE_EQ(opts.significance, 1.0);
  EXPECT_EQ(opts.group, sigrt::kDefaultGroup);
  EXPECT_FALSE(static_cast<bool>(opts.approximate));
  EXPECT_TRUE(opts.accesses.empty());
}

TEST(Stats, DepEdgesCounted) {
  // MaxBuffer parks every task until the barrier, so all ten registrations
  // happen while their predecessors are alive — the full 9-edge chain is
  // discovered.  (Inline+agnostic would execute each task at spawn and see
  // no unfinished predecessors at all.)
  Runtime rt(inline_config(PolicyKind::GTBMaxBuffer));
  alignas(1024) static double chain[128];
  for (int i = 0; i < 10; ++i) {
    rt.spawn(sigrt::task([] {}).inout(chain, 128));
  }
  rt.wait_all();
  EXPECT_EQ(rt.stats().dep_edges, 9u);  // 10-node chain
}

TEST(Stats, BusyAndWallTimesAdvance) {
  Runtime rt(inline_config(PolicyKind::Agnostic));
  rt.spawn(sigrt::task([] {
    volatile double x = 1.0;
    for (int i = 0; i < 300000; ++i) x = x * 1.0000001 + 0.1;
  }));
  rt.wait_all();
  const auto s = rt.stats();
  EXPECT_GT(s.busy_s, 0.0);
  EXPECT_GE(s.wall_s, s.busy_s * 0.5);  // wall includes busy (inline mode)
}

TEST(Stats, PolicyNameMatchesConfig) {
  EXPECT_STREQ(Runtime(inline_config(PolicyKind::Agnostic)).policy_name(),
               "agnostic");
  EXPECT_STREQ(Runtime(inline_config(PolicyKind::GTB)).policy_name(), "GTB");
  EXPECT_STREQ(Runtime(inline_config(PolicyKind::GTBMaxBuffer)).policy_name(),
               "GTB(MaxBuffer)");
  EXPECT_STREQ(Runtime(inline_config(PolicyKind::LQH)).policy_name(), "LQH");
  EXPECT_STREQ(Runtime(inline_config(PolicyKind::Oracle)).policy_name(),
               "oracle");
}

TEST(Stats, TrackerStatsVisibleThroughRuntime) {
  Runtime rt(inline_config(PolicyKind::Agnostic));
  alignas(1024) static int area[512];
  rt.spawn(sigrt::task([] {}).out(area, 512));
  rt.wait_all();
  EXPECT_GE(rt.tracker().stats().registered_nodes, 1u);
  EXPECT_GE(rt.tracker().stats().blocks_touched, 1u);
}

TEST(Dump, StateSnapshotIsWellFormed) {
  Runtime rt(inline_config(PolicyKind::GTB));
  const auto g = rt.create_group("dumped", 0.5);
  rt.spawn(sigrt::task([] {}).approx([] {}).significance(0.5).group(g));
  rt.wait_group(g);

  char buffer[4096] = {};
  FILE* mem = fmemopen(buffer, sizeof(buffer), "w");
  ASSERT_NE(mem, nullptr);
  rt.dump_state(mem);
  std::fclose(mem);

  const std::string text(buffer);
  EXPECT_NE(text.find("runtime: pending=0"), std::string::npos);
  EXPECT_NE(text.find("'dumped'"), std::string::npos);
  EXPECT_NE(text.find("scheduler: workers=0"), std::string::npos);
}

TEST(Dump, ThreadedSnapshotListsWorkers) {
  RuntimeConfig c;
  c.workers = 3;
  c.unreliable_workers = 1;
  Runtime rt(c);
  rt.spawn(sigrt::task([] {}));
  rt.wait_all();

  char buffer[8192] = {};
  FILE* mem = fmemopen(buffer, sizeof(buffer), "w");
  ASSERT_NE(mem, nullptr);
  rt.dump_state(mem);
  std::fclose(mem);

  const std::string text(buffer);
  EXPECT_NE(text.find("worker 0"), std::string::npos);
  EXPECT_NE(text.find("worker 2"), std::string::npos);
  EXPECT_NE(text.find("unreliable=1"), std::string::npos);
}

}  // namespace
