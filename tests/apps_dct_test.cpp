// DCT benchmark tests.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/dct.hpp"
#include "metrics/quality.hpp"

namespace {

using namespace sigrt::apps;

dct::Options small_options(Variant v, Degree d) {
  dct::Options o;
  o.width = 64;
  o.height = 64;
  o.common.variant = v;
  o.common.degree = d;
  o.common.workers = 2;
  return o;
}

TEST(Dct, RatiosMatchTable1) {
  EXPECT_DOUBLE_EQ(dct::ratio_for(Degree::Mild), 0.80);
  EXPECT_DOUBLE_EQ(dct::ratio_for(Degree::Medium), 0.40);
  EXPECT_DOUBLE_EQ(dct::ratio_for(Degree::Aggressive), 0.10);
}

TEST(Dct, BandSignificanceDecreasesWithFrequency) {
  EXPECT_DOUBLE_EQ(dct::band_significance(0), 1.0);  // DC: unconditional
  for (std::size_t b = 1; b < dct::kBands; ++b) {
    EXPECT_LT(dct::band_significance(b), dct::band_significance(b - 1));
  }
  EXPECT_GT(dct::band_significance(dct::kBands - 1), 0.0);
}

TEST(Dct, ForwardInverseRoundTripIsNearLossless) {
  const auto img = sigrt::support::synthetic_image(64, 64, 11);
  const auto coeffs = dct::reference(img);
  const auto back = dct::inverse(coeffs, 64, 64);
  // Orthonormal DCT: only rounding error.
  EXPECT_GT(sigrt::metrics::psnr_db(img, back), 45.0);
}

TEST(Dct, ConstantImageHasOnlyDcEnergy) {
  sigrt::support::Image img(16, 16, 200);
  const auto coeffs = dct::reference(img);
  // Each 8x8 block: coefficient (0,0) = 8 * (200-128) = 576, rest ~ 0.
  for (std::size_t blk = 0; blk < 4; ++blk) {
    const float* b = coeffs.data() + blk * 64;
    EXPECT_NEAR(b[0], 576.0f, 1e-3f);
    for (std::size_t i = 1; i < 64; ++i) EXPECT_NEAR(b[i], 0.0f, 1e-3f);
  }
}

TEST(Dct, AccurateVariantIsExact) {
  const auto r = dct::run(small_options(Variant::Accurate, Degree::Mild));
  EXPECT_DOUBLE_EQ(r.quality, 0.0);
  EXPECT_EQ(r.tasks_dropped, 0u);
}

TEST(Dct, DroppedTasksLeaveZeroCoefficients) {
  // Ratio 0.1: only the most significant bands survive — quality drops but
  // the image remains viewable (paper: "DCT is friendly to approximations").
  const auto r = dct::run(small_options(Variant::GTBMaxBuffer, Degree::Aggressive));
  EXPECT_GT(r.tasks_dropped, 0u);
  EXPECT_EQ(r.tasks_approximate, 0u);  // drop benchmark: no approxfun
  EXPECT_GT(r.quality_aux, 20.0);      // PSNR stays decent
}

TEST(Dct, QualityDegradesMonotonicallyWithDegree) {
  const auto mild = dct::run(small_options(Variant::GTBMaxBuffer, Degree::Mild));
  const auto med = dct::run(small_options(Variant::GTBMaxBuffer, Degree::Medium));
  const auto aggr =
      dct::run(small_options(Variant::GTBMaxBuffer, Degree::Aggressive));
  EXPECT_LE(mild.quality, med.quality);
  EXPECT_LE(med.quality, aggr.quality);
}

TEST(Dct, SignificanceAwareBeatsBlindPerforationAtEqualBudget) {
  const auto sig = dct::run(small_options(Variant::GTBMaxBuffer, Degree::Medium));
  const auto perf = dct::run(small_options(Variant::Perforated, Degree::Medium));
  // Same task budget, but perforation drops DC bands blindly.
  EXPECT_LT(sig.quality, perf.quality);
}

TEST(Dct, TaskCountIsStripesTimesBands) {
  const auto r = dct::run(small_options(Variant::GTB, Degree::Mild));
  EXPECT_EQ(r.tasks_total, (64 / dct::kBlock) * dct::kBands);
}

TEST(Dct, DcBandAlwaysSurvives) {
  // Even at ratio 0.1 the DC band (significance 1.0) must execute: verify
  // via reconstruction brightness (dropped DC would shift to mid-gray 128).
  sigrt::support::Image out;
  dct::run(small_options(Variant::GTBMaxBuffer, Degree::Aggressive), &out);
  const auto img = sigrt::support::synthetic_image(64, 64, 42);
  double mean_ref = 0.0, mean_out = 0.0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    mean_ref += img.pixels()[i];
    mean_out += out.pixels()[i];
  }
  EXPECT_NEAR(mean_out / static_cast<double>(out.size()),
              mean_ref / static_cast<double>(img.size()), 3.0);
}

TEST(Dct, GtbWindowedStaysCloseToMaxBufferQuality) {
  auto bounded = small_options(Variant::GTB, Degree::Medium);
  bounded.common.gtb_buffer = 8;
  const auto wq = dct::run(bounded);
  const auto mq = dct::run(small_options(Variant::GTBMaxBuffer, Degree::Medium));
  // Listing 4's `i < ratio * count` ceiling overshoots by up to 1 task per
  // window: ratio 0.4 with window 8 yields 4/8 accurate.
  EXPECT_NEAR(wq.provided_ratio, mq.provided_ratio, 0.11);
  EXPECT_GE(wq.provided_ratio, mq.provided_ratio);  // overshoot, never under
}

}  // namespace
