// RatioTuner / OnlineRatioController tests, including an end-to-end search
// over the real Sobel kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/sobel.hpp"
#include "core/autotuner.hpp"

namespace {

using sigrt::OnlineRatioController;
using sigrt::RatioTuner;

RatioTuner::Options tuner_options(double bound, double tol = 0.02) {
  RatioTuner::Options o;
  o.quality_bound = bound;
  o.tolerance = tol;
  return o;
}

/// Synthetic monotone quality curve: quality(r) = (1 - r)^2.
double synthetic_quality(double ratio) {
  return (1.0 - ratio) * (1.0 - ratio);
}

TEST(RatioTuner, FindsBoundaryOnSyntheticCurve) {
  // quality <= 0.25 iff ratio >= 0.5.
  const RatioTuner tuner(tuner_options(0.25, 0.01));
  const auto r = tuner.offline(synthetic_quality);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.ratio, 0.5, 0.02);
}

TEST(RatioTuner, TightBoundPushesRatioUp) {
  const RatioTuner tuner(tuner_options(0.01, 0.01));
  const auto r = tuner.offline(synthetic_quality);  // needs ratio >= 0.9
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.ratio, 0.9, 0.02);
}

TEST(RatioTuner, TrivialBoundReturnsMinRatio) {
  const RatioTuner tuner(tuner_options(2.0));
  const auto r = tuner.offline(synthetic_quality);
  EXPECT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.ratio, 0.0);
  EXPECT_EQ(r.samples.size(), 2u);  // hi probe + lo probe, no bisection
}

TEST(RatioTuner, InfeasibleBoundReported) {
  const RatioTuner tuner(tuner_options(-1.0));  // nothing can satisfy this
  const auto r = tuner.offline(synthetic_quality);
  EXPECT_FALSE(r.feasible);
  EXPECT_DOUBLE_EQ(r.ratio, 1.0);
  EXPECT_EQ(r.samples.size(), 1u);  // fails fast after the hi probe
}

TEST(RatioTuner, RespectsProbeBudget) {
  RatioTuner::Options o = tuner_options(0.25, 1e-9);  // unreachable tolerance
  o.max_probes = 6;
  const RatioTuner tuner(o);
  const auto r = tuner.offline(synthetic_quality);
  EXPECT_LE(r.samples.size(), 6u + 1u);
  EXPECT_TRUE(r.feasible);
}

TEST(RatioTuner, ReturnedRatioIsAcceptable) {
  const RatioTuner tuner(tuner_options(0.1, 0.05));
  const auto r = tuner.offline(synthetic_quality);
  EXPECT_LE(synthetic_quality(r.ratio), 0.1 + 1e-12);
}

TEST(RatioTuner, EndToEndOnSobel) {
  // Find the cheapest ratio keeping Sobel above 35 dB PSNR
  // (quality = PSNR^-1 <= 1/35).
  const RatioTuner tuner(tuner_options(1.0 / 35.0, 0.05));
  const auto result = tuner.offline([](double ratio) {
    sigrt::apps::sobel::Options o;
    o.width = 128;
    o.height = 128;
    o.common.variant = sigrt::apps::Variant::GTBMaxBuffer;
    o.common.workers = 0;
    o.ratio_override = ratio;
    return sigrt::apps::sobel::run(o).quality;
  });
  ASSERT_TRUE(result.feasible);
  // The found operating point must satisfy the bound...
  sigrt::apps::sobel::Options check;
  check.width = 128;
  check.height = 128;
  check.common.variant = sigrt::apps::Variant::GTBMaxBuffer;
  check.common.workers = 0;
  check.ratio_override = result.ratio;
  EXPECT_LE(sigrt::apps::sobel::run(check).quality, 1.0 / 35.0 + 1e-9);
  // ...and be meaningfully cheaper than fully accurate.
  EXPECT_LT(result.ratio, 1.0);
}

TEST(OnlineController, StaysAtFloorWhileCompliant) {
  OnlineRatioController::Options o;
  o.quality_bound = 0.1;
  o.initial_ratio = 1.0;
  o.decrease_step = 0.1;
  OnlineRatioController c(o);
  // Quality always fine: the controller walks the ratio down to min.
  for (int i = 0; i < 20; ++i) c.update(0.01);
  EXPECT_DOUBLE_EQ(c.ratio(), 0.0);
  EXPECT_EQ(c.violations(), 0u);
}

TEST(OnlineController, BacksOffOnViolation) {
  OnlineRatioController::Options o;
  o.quality_bound = 0.1;
  o.initial_ratio = 0.5;
  o.decrease_step = 0.05;
  OnlineRatioController c(o);
  const double before = c.ratio();
  c.update(0.5);  // violation
  EXPECT_GT(c.ratio(), before);
  EXPECT_EQ(c.violations(), 1u);
}

TEST(OnlineController, FloorPreventsRepeatedViolationCycles) {
  OnlineRatioController::Options o;
  o.quality_bound = 0.1;
  o.initial_ratio = 1.0;
  o.decrease_step = 0.1;
  OnlineRatioController c(o);
  // A system that violates whenever ratio < 0.5.
  auto system_quality = [](double ratio) { return ratio < 0.5 ? 0.2 : 0.05; };
  double ratio = c.ratio();
  int violations_late = 0;
  for (int i = 0; i < 60; ++i) {
    const double q = system_quality(ratio);
    ratio = c.update(q);
    if (i > 40 && q > 0.1) ++violations_late;
  }
  // The floor ratchets up after each violation, so late iterations settle.
  EXPECT_LE(violations_late, 2);
  EXPECT_GE(ratio, 0.4);
}

TEST(OnlineController, ClampsToConfiguredRange) {
  OnlineRatioController::Options o;
  o.quality_bound = 0.1;
  o.initial_ratio = 0.9;
  o.min_ratio = 0.3;
  o.max_ratio = 0.95;
  OnlineRatioController c(o);
  for (int i = 0; i < 30; ++i) c.update(0.0);
  EXPECT_GE(c.ratio(), 0.3);
  c.update(1.0);
  EXPECT_LE(c.ratio(), 0.95);
}

}  // namespace
