// Parameterized property tests sweeping ratios, buffer sizes, worker counts
// and significance distributions across all policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <tuple>
#include <vector>

#include "core/sigrt.hpp"
#include "support/rng.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

enum class Dist { Uniform, RoundRobin, Random, Bimodal };

const char* to_string(Dist d) {
  switch (d) {
    case Dist::Uniform: return "uniform";
    case Dist::RoundRobin: return "roundrobin";
    case Dist::Random: return "random";
    case Dist::Bimodal: return "bimodal";
  }
  return "?";
}

double significance_of(Dist d, std::size_t i, sigrt::support::Xoshiro256& rng) {
  switch (d) {
    case Dist::Uniform: return 0.5;
    case Dist::RoundRobin: return static_cast<double>(i % 9 + 1) / 10.0;
    case Dist::Random: return 0.05 + 0.9 * rng.uniform();
    case Dist::Bimodal: return i % 2 == 0 ? 0.15 : 0.85;
  }
  return 0.5;
}

struct Params {
  PolicyKind policy;
  double ratio;
  std::size_t buffer;
  unsigned workers;
  Dist dist;
};

std::string param_name(const testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  std::string s = sigrt::to_string(p.policy);
  std::replace(s.begin(), s.end(), '(', '_');
  std::erase(s, ')');
  s += "_r" + std::to_string(static_cast<int>(p.ratio * 100));
  s += "_b" + std::to_string(p.buffer);
  s += "_w" + std::to_string(p.workers);
  s += "_";
  s += to_string(p.dist);
  return s;
}

class PolicyProperty : public testing::TestWithParam<Params> {
 protected:
  struct Outcome {
    std::vector<float> significance;
    std::vector<bool> accurate;
    sigrt::GroupReport report;
  };

  Outcome run(std::size_t n) {
    const Params& p = GetParam();
    RuntimeConfig c;
    c.workers = p.workers;
    c.policy = p.policy;
    c.gtb_buffer = p.buffer;
    Runtime rt(c);
    const auto g = rt.create_group("prop", p.ratio);

    Outcome out;
    out.significance.resize(n);
    std::vector<std::atomic<int>> acc(n);
    sigrt::support::Xoshiro256 rng(12345);
    for (std::size_t i = 0; i < n; ++i) {
      const double s = significance_of(p.dist, i, rng);
      out.significance[i] = static_cast<float>(s);
      rt.spawn(sigrt::task([&acc, i] { acc[i].store(1); })
                   .approx([] {})
                   .significance(s)
                   .group(g));
    }
    rt.wait_group(g);
    out.accurate.resize(n);
    for (std::size_t i = 0; i < n; ++i) out.accurate[i] = acc[i].load() == 1;
    out.report = rt.group_report(g);
    return out;
  }
};

TEST_P(PolicyProperty, EveryTaskGetsExactlyOneOutcome) {
  const auto out = run(600);
  const auto& r = out.report;
  EXPECT_EQ(r.accurate + r.approximate + r.dropped, 600u);
}

TEST_P(PolicyProperty, AchievedRatioTracksRequested) {
  const Params& p = GetParam();
  const std::size_t n = 1200;
  const auto out = run(n);
  const double provided = out.report.provided_ratio();

  // GTB applies Listing 4's quota per window: expected value is exact
  // per-window arithmetic (ceil semantics of `i < ratio * count`), which
  // matters for tiny windows (buffer 1 => everything accurate).
  if (p.policy == PolicyKind::GTB && p.buffer != SIZE_MAX) {
    auto quota = [&](std::size_t count) {
      return static_cast<std::size_t>(std::ceil(p.ratio * static_cast<double>(count) - 1e-9));
    };
    const std::size_t full = n / p.buffer;
    const std::size_t rem = n % p.buffer;
    const double expected =
        static_cast<double>(full * quota(p.buffer) + quota(rem)) /
        static_cast<double>(n);
    EXPECT_NEAR(provided, expected, 1e-9);
    return;
  }

  // Single-window GTB flavors are exact; LQH may deviate; multi-worker LQH
  // deviates the most (localized view, §3.4 — round-robin issue can give a
  // worker a skewed sample of the significance distribution, the effect
  // behind the paper's Table 2 LQH column).
  double tolerance = 0.002;
  if (p.policy == PolicyKind::LQH) tolerance = p.workers > 1 ? 0.15 : 0.02;
  EXPECT_NEAR(provided, p.ratio, tolerance);
}

TEST_P(PolicyProperty, NoInversionsForSingleWindowPolicies) {
  const Params& p = GetParam();
  const auto out = run(900);
  if (p.policy == PolicyKind::GTBMaxBuffer || p.policy == PolicyKind::Oracle) {
    EXPECT_DOUBLE_EQ(out.report.inversion_fraction, 0.0);
  }
}

TEST_P(PolicyProperty, UniformSignificanceNeverInverts) {
  const Params& p = GetParam();
  if (p.dist != Dist::Uniform) GTEST_SKIP();
  const auto out = run(800);
  EXPECT_DOUBLE_EQ(out.report.inversion_fraction, 0.0);
}

TEST_P(PolicyProperty, HigherSignificanceNeverLessAccurateInAggregate) {
  // Monotonicity: binned by significance level, the accurate fraction must
  // be non-decreasing (allowing small noise at one boundary level for
  // windowed/local policies).
  const auto out = run(1800);
  std::array<double, 10> acc{};
  std::array<double, 10> tot{};
  for (std::size_t i = 0; i < out.significance.size(); ++i) {
    const auto bin =
        std::min<std::size_t>(9, static_cast<std::size_t>(out.significance[i] * 10));
    tot[bin] += 1;
    acc[bin] += out.accurate[i] ? 1 : 0;
  }
  double prev = -0.2;
  for (std::size_t b = 0; b < 10; ++b) {
    if (tot[b] < 30) continue;  // skip sparsely populated bins
    const double frac = acc[b] / tot[b];
    EXPECT_GE(frac, prev - 0.15) << "bin " << b;
    prev = std::max(prev, frac);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicyProperty,
    testing::ValuesIn([] {
      std::vector<Params> ps;
      for (const PolicyKind policy :
           {PolicyKind::GTB, PolicyKind::GTBMaxBuffer, PolicyKind::LQH,
            PolicyKind::Oracle}) {
        for (const double ratio : {0.0, 0.3, 0.5, 0.8, 1.0}) {
          for (const unsigned workers : {0u, 4u}) {
            for (const Dist dist :
                 {Dist::Uniform, Dist::RoundRobin, Dist::Random, Dist::Bimodal}) {
              const std::size_t buffer =
                  policy == PolicyKind::GTB ? 16 : SIZE_MAX;
              ps.push_back({policy, ratio, buffer, workers, dist});
            }
          }
        }
      }
      // A few extra GTB window sizes.
      for (const std::size_t buffer : {1, 4, 64, 511}) {
        ps.push_back({PolicyKind::GTB, 0.5, buffer, 0, Dist::RoundRobin});
      }
      return ps;
    }()),
    param_name);

}  // namespace
