// Support-library tests: RNG determinism, images/PGM round trips, timers,
// table rendering, and the log-bucketed latency histogram.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "support/histogram.hpp"
#include "support/image.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace sigrt::support;

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIsInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, BoundedCoversRangeUniformly) {
  Xoshiro256 rng(17);
  std::array<int, 10> histogram{};
  for (int i = 0; i < 100000; ++i) {
    ++histogram[rng.bounded(10)];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, 10000, 600);
  }
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Xoshiro256 rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, StreamsAreIndependent) {
  auto a = stream_rng(42, 0);
  auto b = stream_rng(42, 1);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) {
    values.insert(a.next());
    values.insert(b.next());
  }
  EXPECT_EQ(values.size(), 64u);  // no collisions between streams
}

TEST(Image, SyntheticIsDeterministicPerSeed) {
  const Image a = synthetic_image(64, 64, 5);
  const Image b = synthetic_image(64, 64, 5);
  const Image c = synthetic_image(64, 64, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Image, SyntheticHasDynamicRange) {
  const Image img = synthetic_image(128, 128, 1);
  std::uint8_t lo = 255, hi = 0;
  for (const auto p : img.pixels()) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_LT(lo, 40);
  EXPECT_GT(hi, 180);
}

TEST(Image, PgmRoundTrip) {
  const Image img = synthetic_image(48, 32, 3);
  const std::string path = "/tmp/sigrt_test_roundtrip.pgm";
  ASSERT_TRUE(write_pgm(img, path));
  const Image back = read_pgm(path);
  EXPECT_EQ(img, back);
  std::filesystem::remove(path);
}

TEST(Image, ReadMissingFileGivesEmpty) {
  EXPECT_TRUE(read_pgm("/tmp/definitely_missing_sigrt.pgm").empty());
}

TEST(Image, BlitQuadrantCopiesOnlyThatQuadrant) {
  Image dst(64, 64, 0);
  Image src(64, 64, 200);
  blit_quadrant(dst, src, 1, 0);  // upper right
  EXPECT_EQ(dst.at(40, 10), 200);
  EXPECT_EQ(dst.at(10, 10), 0);
  EXPECT_EQ(dst.at(40, 40), 0);
}

TEST(Timer, StopwatchAccumulates) {
  Stopwatch sw;
  sw.start();
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  sw.stop();
  EXPECT_GT(sw.elapsed_ns(), 0);
  const auto first = sw.elapsed_ns();
  sw.start();
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  sw.stop();
  EXPECT_GT(sw.elapsed_ns(), first);
}

TEST(Timer, ScopedTimerAddsToSink) {
  std::int64_t sink = 0;
  {
    ScopedTimer t(sink);
    volatile double x = 1.0;
    for (int i = 0; i < 50000; ++i) x = x * 1.0000001;
  }
  EXPECT_GT(sink, 0);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  Table t({"app", "time", "energy"});
  t.row().cell("sobel").cell(1.25, 2).cell(std::size_t{42});
  t.row().cell("dct").cell(0.5, 2).cell(std::size_t{7});
  const std::string s = t.str();
  EXPECT_NE(s.find("sobel"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("sobel,1.25,42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Histogram, BucketBoundariesAreConsistentAndContiguous) {
  // Identity range: exact buckets.
  for (std::uint64_t v : {0ull, 1ull, 17ull, 31ull}) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_EQ(Histogram::bucket_lower(i), v);
    EXPECT_EQ(Histogram::bucket_upper(i), v);
  }
  // Every probed value sits inside its bucket's [lower, upper] range, and
  // upper+1 starts the next bucket (contiguous, no gaps or overlaps).
  for (std::uint64_t v :
       {32ull, 33ull, 63ull, 64ull, 100ull, 1023ull, 1024ull, 123456789ull,
        (1ull << 40) + 12345ull, (1ull << 62) + 7ull}) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_LE(Histogram::bucket_lower(i), v);
    EXPECT_GE(Histogram::bucket_upper(i), v);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(i) + 1), i + 1);
    // Log-bucketing invariant: relative width bounded by 1/kSubBuckets.
    const double width = static_cast<double>(Histogram::bucket_upper(i) -
                                             Histogram::bucket_lower(i) + 1);
    EXPECT_LE(width, static_cast<double>(Histogram::bucket_lower(i)) /
                             Histogram::kSubBuckets +
                         1.0);
  }
}

TEST(Histogram, QuantilesMatchASortedOracleWithinBucketError) {
  Xoshiro256 rng(23);
  Histogram h;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    // Log-normal-ish latencies spanning ~4 decades, like real service times.
    const auto v =
        static_cast<std::uint64_t>(std::exp(rng.normal() * 1.5 + 10.0));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const auto oracle = static_cast<double>(values[rank - 1]);
    const double est = h.quantile(q);
    // quantile() reports the containing bucket's upper bound: never below
    // the exact order statistic, at most one bucket width above it.
    EXPECT_GE(est, oracle);
    EXPECT_LE(est, oracle * (1.0 + 1.0 / Histogram::kSubBuckets) + 1.0);
  }
  EXPECT_EQ(h.count(), values.size());
  EXPECT_LE(static_cast<double>(h.min()), static_cast<double>(values.front()));
  EXPECT_GE(static_cast<double>(h.max()), static_cast<double>(values.back()));
}

TEST(Histogram, MergeEqualsRecordingTheConcatenation) {
  Xoshiro256 rng(29);
  Histogram a, b, both;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.bounded(1'000'000);
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    both.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  for (const double q : {0.1, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), both.quantile(q));
  }
  EXPECT_DOUBLE_EQ(a.mean(), both.mean());
}

TEST(Histogram, SubtractYieldsTheWindowBetweenSnapshots) {
  Xoshiro256 rng(31);
  Histogram cumulative, window_only;
  for (int i = 0; i < 1000; ++i) cumulative.record(rng.bounded(4096));
  const Histogram snapshot = cumulative;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = 4096 + rng.bounded(1 << 20);
    cumulative.record(v);
    window_only.record(v);
  }
  Histogram window = cumulative;
  window.subtract(snapshot);
  EXPECT_EQ(window.count(), window_only.count());
  for (const double q : {0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(window.quantile(q), window_only.quantile(q));
  }
  // Subtracting a *larger* snapshot (a concurrent reset) clamps to empty
  // instead of underflowing.
  Histogram clamped = snapshot;
  clamped.subtract(cumulative);
  EXPECT_EQ(clamped.count(), 0u);
}

TEST(ShardedHistogram, ConcurrentRecordsAllLand) {
  ShardedHistogram sh(4);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sh, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sh.record(static_cast<std::uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  const Histogram merged = sh.merged();
  EXPECT_EQ(merged.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  sh.reset();
  EXPECT_EQ(sh.merged().count(), 0u);
}

TEST(Table, FormattersPickSensibleUnits) {
  EXPECT_EQ(format_seconds(0.0000005), "0.5 us");
  EXPECT_EQ(format_seconds(0.25), "250.00 ms");
  EXPECT_EQ(format_seconds(3.5), "3.500 s");
  EXPECT_EQ(format_joules(0.5), "500.0 mJ");
  EXPECT_EQ(format_joules(12.0), "12.00 J");
  EXPECT_EQ(format_joules(2500.0), "2.500 kJ");
}

}  // namespace
