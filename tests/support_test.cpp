// Support-library tests: RNG determinism, images/PGM round trips, timers,
// table rendering.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "support/image.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace sigrt::support;

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIsInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Rng, BoundedCoversRangeUniformly) {
  Xoshiro256 rng(17);
  std::array<int, 10> histogram{};
  for (int i = 0; i < 100000; ++i) {
    ++histogram[rng.bounded(10)];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, 10000, 600);
  }
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Xoshiro256 rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, StreamsAreIndependent) {
  auto a = stream_rng(42, 0);
  auto b = stream_rng(42, 1);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) {
    values.insert(a.next());
    values.insert(b.next());
  }
  EXPECT_EQ(values.size(), 64u);  // no collisions between streams
}

TEST(Image, SyntheticIsDeterministicPerSeed) {
  const Image a = synthetic_image(64, 64, 5);
  const Image b = synthetic_image(64, 64, 5);
  const Image c = synthetic_image(64, 64, 6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Image, SyntheticHasDynamicRange) {
  const Image img = synthetic_image(128, 128, 1);
  std::uint8_t lo = 255, hi = 0;
  for (const auto p : img.pixels()) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_LT(lo, 40);
  EXPECT_GT(hi, 180);
}

TEST(Image, PgmRoundTrip) {
  const Image img = synthetic_image(48, 32, 3);
  const std::string path = "/tmp/sigrt_test_roundtrip.pgm";
  ASSERT_TRUE(write_pgm(img, path));
  const Image back = read_pgm(path);
  EXPECT_EQ(img, back);
  std::filesystem::remove(path);
}

TEST(Image, ReadMissingFileGivesEmpty) {
  EXPECT_TRUE(read_pgm("/tmp/definitely_missing_sigrt.pgm").empty());
}

TEST(Image, BlitQuadrantCopiesOnlyThatQuadrant) {
  Image dst(64, 64, 0);
  Image src(64, 64, 200);
  blit_quadrant(dst, src, 1, 0);  // upper right
  EXPECT_EQ(dst.at(40, 10), 200);
  EXPECT_EQ(dst.at(10, 10), 0);
  EXPECT_EQ(dst.at(40, 40), 0);
}

TEST(Timer, StopwatchAccumulates) {
  Stopwatch sw;
  sw.start();
  volatile double x = 1.0;
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  sw.stop();
  EXPECT_GT(sw.elapsed_ns(), 0);
  const auto first = sw.elapsed_ns();
  sw.start();
  for (int i = 0; i < 100000; ++i) x = x * 1.0000001;
  sw.stop();
  EXPECT_GT(sw.elapsed_ns(), first);
}

TEST(Timer, ScopedTimerAddsToSink) {
  std::int64_t sink = 0;
  {
    ScopedTimer t(sink);
    volatile double x = 1.0;
    for (int i = 0; i < 50000; ++i) x = x * 1.0000001;
  }
  EXPECT_GT(sink, 0);
}

TEST(Table, RendersAlignedColumnsAndCsv) {
  Table t({"app", "time", "energy"});
  t.row().cell("sobel").cell(1.25, 2).cell(std::size_t{42});
  t.row().cell("dct").cell(0.5, 2).cell(std::size_t{7});
  const std::string s = t.str();
  EXPECT_NE(s.find("sobel"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("sobel,1.25,42"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FormattersPickSensibleUnits) {
  EXPECT_EQ(format_seconds(0.0000005), "0.5 us");
  EXPECT_EQ(format_seconds(0.25), "250.00 ms");
  EXPECT_EQ(format_seconds(3.5), "3.500 s");
  EXPECT_EQ(format_joules(0.5), "500.0 mJ");
  EXPECT_EQ(format_joules(12.0), "12.00 J");
  EXPECT_EQ(format_joules(2500.0), "2.500 kJ");
}

}  // namespace
