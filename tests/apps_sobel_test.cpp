// Sobel benchmark tests (§4.1 running example).
#include <gtest/gtest.h>

#include "apps/sobel.hpp"
#include "metrics/quality.hpp"

namespace {

using namespace sigrt::apps;

sobel::Options small_options(Variant v, Degree d) {
  sobel::Options o;
  o.width = 128;
  o.height = 128;
  o.common.variant = v;
  o.common.degree = d;
  o.common.workers = 2;
  return o;
}

TEST(Sobel, RatiosMatchTable1) {
  EXPECT_DOUBLE_EQ(sobel::ratio_for(Degree::Mild), 0.80);
  EXPECT_DOUBLE_EQ(sobel::ratio_for(Degree::Medium), 0.30);
  EXPECT_DOUBLE_EQ(sobel::ratio_for(Degree::Aggressive), 0.0);
}

TEST(Sobel, ReferenceDetectsEdges) {
  const auto img = sigrt::support::synthetic_image(64, 64, 42);
  const auto edges = sobel::reference(img);
  // Non-trivial output: some strong edge responses, borders untouched.
  int strong = 0;
  for (const auto p : edges.pixels()) strong += p > 128;
  EXPECT_GT(strong, 10);
  for (std::size_t x = 0; x < 64; ++x) EXPECT_EQ(edges.at(x, 0), 0);
}

TEST(Sobel, ApproxReferenceIsCloseButNotEqual) {
  const auto img = sigrt::support::synthetic_image(64, 64, 42);
  const auto acc = sobel::reference(img);
  const auto app = sobel::reference_approx(img);
  EXPECT_NE(acc, app);
  const double psnr = sigrt::metrics::psnr_db(acc, app);
  EXPECT_GT(psnr, 12.0);  // graceful, not garbage
}

TEST(Sobel, AccurateVariantIsExact) {
  sigrt::support::Image out;
  const auto r = sobel::run(small_options(Variant::Accurate, Degree::Mild), &out);
  EXPECT_EQ(r.tasks_approximate, 0u);
  EXPECT_EQ(r.tasks_dropped, 0u);
  EXPECT_DOUBLE_EQ(r.quality, 0.0);  // PSNR^-1 of identical output
}

TEST(Sobel, FullRatioMatchesReferenceBitwise) {
  auto o = small_options(Variant::GTBMaxBuffer, Degree::Mild);
  o.ratio_override = 1.0;
  sigrt::support::Image out;
  sobel::run(o, &out);
  const auto img = sigrt::support::synthetic_image(o.width, o.height, o.common.seed);
  EXPECT_EQ(out, sobel::reference(img));
}

TEST(Sobel, QualityDegradesGracefullyWithDegree) {
  const auto mild = sobel::run(small_options(Variant::GTBMaxBuffer, Degree::Mild));
  const auto med = sobel::run(small_options(Variant::GTBMaxBuffer, Degree::Medium));
  const auto aggr =
      sobel::run(small_options(Variant::GTBMaxBuffer, Degree::Aggressive));
  EXPECT_LE(mild.quality, med.quality);
  EXPECT_LE(med.quality, aggr.quality);
  // Even aggressive (every row approximated) stays recognizable: the
  // approxfun is a real filter, not garbage.
  EXPECT_GT(aggr.quality_aux, 10.0);  // PSNR dB
}

TEST(Sobel, ProvidedRatioMatchesRequestedUnderGtb) {
  const auto r = sobel::run(small_options(Variant::GTB, Degree::Medium));
  EXPECT_NEAR(r.provided_ratio, 0.30, 0.05);
  EXPECT_NEAR(r.ratio_diff, 0.0, 0.05);
}

TEST(Sobel, PerforationCollapsesQuality) {
  // Figure 3's story: perforation at the same task budget is much worse
  // than significance-aware approximation.
  const auto sig = sobel::run(small_options(Variant::GTBMaxBuffer, Degree::Medium));
  const auto perf = sobel::run(small_options(Variant::Perforated, Degree::Medium));
  EXPECT_GT(perf.quality, 2.0 * sig.quality);
}

TEST(Sobel, PerforationExecutesMatchingTaskCount) {
  const auto sig = sobel::run(small_options(Variant::GTBMaxBuffer, Degree::Medium));
  const auto perf = sobel::run(small_options(Variant::Perforated, Degree::Medium));
  EXPECT_NEAR(static_cast<double>(perf.tasks_total),
              static_cast<double>(sig.tasks_accurate), 2.0);
}

TEST(Sobel, LqhApproximatesRequestedRatio) {
  auto o = small_options(Variant::LQH, Degree::Mild);
  o.height = 256;  // more tasks -> tighter convergence
  const auto r = sobel::run(o);
  EXPECT_NEAR(r.provided_ratio, 0.80, 0.10);
}

TEST(Sobel, OutputImageHasRequestedGeometry) {
  sigrt::support::Image out;
  auto o = small_options(Variant::GTB, Degree::Mild);
  o.width = 96;
  o.height = 80;
  sobel::run(o, &out);
  EXPECT_EQ(out.width(), 96u);
  EXPECT_EQ(out.height(), 80u);
}

TEST(Sobel, RepeatsMultiplyTaskCount) {
  auto o = small_options(Variant::GTB, Degree::Mild);
  o.repeats = 3;
  const auto r = sobel::run(o);
  EXPECT_EQ(r.tasks_total, 3u * (o.height - 2));
}

}  // namespace
