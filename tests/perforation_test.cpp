// Loop-perforation baseline tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "perforation/perforate.hpp"

namespace {

using sigrt::perforation::Shape;
using sigrt::perforation::Stats;

std::vector<std::size_t> survivors(std::size_t n, double rate, Shape shape,
                                   Stats* stats_out = nullptr) {
  std::vector<std::size_t> idx;
  const Stats s = sigrt::perforation::for_each(
      0, n, rate, [&](std::size_t i) { idx.push_back(i); }, shape);
  if (stats_out != nullptr) *stats_out = s;
  return idx;
}

TEST(Perforation, RateZeroKeepsEverything) {
  for (const Shape shape :
       {Shape::Modulo, Shape::Truncate, Shape::Random, Shape::Block}) {
    const auto idx = survivors(100, 0.0, shape);
    EXPECT_EQ(idx.size(), 100u);
  }
}

TEST(Perforation, RateOneDropsEverything) {
  for (const Shape shape :
       {Shape::Modulo, Shape::Truncate, Shape::Random, Shape::Block}) {
    EXPECT_TRUE(survivors(100, 1.0, shape).empty());
  }
}

TEST(Perforation, ModuloKeepsRoundedShare) {
  for (const double rate : {0.1, 0.25, 0.5, 0.7, 0.9}) {
    const auto idx = survivors(1000, rate, Shape::Modulo);
    EXPECT_NEAR(static_cast<double>(idx.size()), 1000.0 * (1.0 - rate), 1.0)
        << "rate " << rate;
  }
}

TEST(Perforation, ModuloSpreadsSurvivorsEvenly) {
  const auto idx = survivors(1000, 0.5, Shape::Modulo);
  // Gaps between consecutive survivors must all be ~2.
  for (std::size_t i = 1; i < idx.size(); ++i) {
    EXPECT_LE(idx[i] - idx[i - 1], 3u);
  }
}

TEST(Perforation, TruncateKeepsPrefix) {
  const auto idx = survivors(100, 0.3, Shape::Truncate);
  ASSERT_EQ(idx.size(), 70u);
  for (std::size_t i = 0; i < idx.size(); ++i) EXPECT_EQ(idx[i], i);
}

TEST(Perforation, RandomIsDeterministicPerSeed) {
  std::vector<std::size_t> a, b;
  sigrt::perforation::for_each(0, 500, 0.5, [&](std::size_t i) { a.push_back(i); },
                               Shape::Random, 99);
  sigrt::perforation::for_each(0, 500, 0.5, [&](std::size_t i) { b.push_back(i); },
                               Shape::Random, 99);
  EXPECT_EQ(a, b);
}

TEST(Perforation, RandomApproximatesRate) {
  const auto idx = survivors(10000, 0.3, Shape::Random);
  EXPECT_NEAR(static_cast<double>(idx.size()), 7000.0, 250.0);
}

TEST(Perforation, StatsAddUp) {
  Stats s;
  survivors(777, 0.4, Shape::Modulo, &s);
  EXPECT_EQ(s.executed + s.skipped, 777u);
  EXPECT_NEAR(s.executed_fraction(), 0.6, 0.01);
}

TEST(Perforation, EmptyRangeIsNoop) {
  Stats s;
  const auto idx = survivors(0, 0.5, Shape::Modulo, &s);
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(s.executed, 0u);
  EXPECT_DOUBLE_EQ(s.executed_fraction(), 1.0);
}

TEST(Perforation, NonZeroBeginRespected) {
  std::vector<std::size_t> idx;
  sigrt::perforation::for_each(10, 20, 0.0, [&](std::size_t i) { idx.push_back(i); });
  ASSERT_EQ(idx.size(), 10u);
  EXPECT_EQ(idx.front(), 10u);
  EXPECT_EQ(idx.back(), 19u);
}

TEST(Perforation, OutOfRangeRatesClamp) {
  EXPECT_EQ(survivors(50, -0.5, Shape::Modulo).size(), 50u);
  EXPECT_TRUE(survivors(50, 1.5, Shape::Modulo).empty());
  EXPECT_EQ(survivors(50, -0.5, Shape::Block).size(), 50u);
  EXPECT_TRUE(survivors(50, 1.5, Shape::Block).empty());
}

// --- Shape::Block / perforate_blocks ---------------------------------------

using RunList = std::vector<std::pair<std::size_t, std::size_t>>;

RunList block_runs(std::size_t begin, std::size_t end, double rate,
                   std::size_t block, Stats* stats_out = nullptr) {
  RunList runs;
  const Stats s = sigrt::perforation::perforate_blocks(
      begin, end, rate,
      [&](std::size_t lo, std::size_t hi) { runs.emplace_back(lo, hi); },
      block);
  if (stats_out != nullptr) *stats_out = s;
  return runs;
}

TEST(Perforation, BlockKeepsApproximateShare) {
  // 1000 isn't a multiple of the stride, so the tail block is partial; the
  // executed fraction must still track the rate to one block's quantization.
  for (const double rate : {0.1, 0.25, 0.5, 0.7, 0.9}) {
    Stats s;
    survivors(1000, rate, Shape::Block, &s);
    EXPECT_EQ(s.executed + s.skipped, 1000u) << "rate " << rate;
    EXPECT_NEAR(s.executed_fraction(), 1.0 - rate, 16.0 / 1000.0 + 0.01)
        << "rate " << rate;
  }
}

TEST(Perforation, BlockSurvivorsAreWholeAlignedBlocks) {
  const std::size_t n = 1000, blk = 16;
  const auto idx = survivors(n, 0.5, Shape::Block);
  // Group survivors by block: every touched block must be fully present
  // (its real size, for the partial tail block).
  std::vector<std::size_t> per_block((n + blk - 1) / blk, 0);
  for (const std::size_t i : idx) ++per_block[i / blk];
  for (std::size_t b = 0; b < per_block.size(); ++b) {
    if (per_block[b] == 0) continue;
    const std::size_t size = std::min(n, (b + 1) * blk) - b * blk;
    EXPECT_EQ(per_block[b], size) << "block " << b;
  }
}

TEST(Perforation, BlockTailCountsRealIterations) {
  // 24 iterations, stride 16: block 0 (16 wide) is dropped at rate 0.5,
  // block 1 survives but holds only 8 real iterations.  The counters must
  // reflect real sizes, not full strides.
  Stats s;
  const RunList runs = block_runs(0, 24, 0.5, 16, &s);
  EXPECT_EQ(s.executed, 8u);
  EXPECT_EQ(s.skipped, 16u);
  EXPECT_DOUBLE_EQ(s.executed_fraction(), 8.0 / 24.0);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (std::pair<std::size_t, std::size_t>{16, 24}));
}

TEST(Perforation, BlockCoalescesAdjacentSurvivors) {
  // rate 0.25 over 4 blocks keeps blocks 1..3 — one maximal dense run.
  const RunList runs = block_runs(0, 64, 0.25, 16);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (std::pair<std::size_t, std::size_t>{16, 64}));
}

TEST(Perforation, BlockRunsRespectNonZeroBegin) {
  Stats s;
  const RunList runs = block_runs(100, 164, 0.25, 16, &s);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (std::pair<std::size_t, std::size_t>{116, 164}));
  EXPECT_EQ(s.executed, 48u);
  EXPECT_EQ(s.skipped, 16u);
}

TEST(Perforation, BlockForEachAgreesWithPerforateBlocks) {
  for (const double rate : {0.0, 0.3, 0.5, 0.8, 1.0}) {
    Stats direct_stats;
    const RunList runs = block_runs(0, 777, rate, 16, &direct_stats);
    std::vector<std::size_t> from_runs;
    for (const auto& [lo, hi] : runs) {
      for (std::size_t i = lo; i < hi; ++i) from_runs.push_back(i);
    }
    Stats adapter_stats;
    const auto idx = survivors(777, rate, Shape::Block, &adapter_stats);
    EXPECT_EQ(idx, from_runs) << "rate " << rate;
    EXPECT_EQ(adapter_stats.executed, direct_stats.executed) << "rate " << rate;
    EXPECT_EQ(adapter_stats.skipped, direct_stats.skipped) << "rate " << rate;
  }
}

TEST(Perforation, BlockEmptyRangeIsNoop) {
  Stats s;
  EXPECT_TRUE(block_runs(5, 5, 0.5, 16, &s).empty());
  EXPECT_EQ(s.executed, 0u);
  EXPECT_DOUBLE_EQ(s.executed_fraction(), 1.0);
}

TEST(Perforation, BlockZeroStrideDegradesToUnitBlocks) {
  Stats s;
  const RunList runs = block_runs(0, 10, 0.5, 0, &s);
  EXPECT_EQ(s.executed, 5u);
  EXPECT_EQ(s.skipped, 5u);
  for (const auto& [lo, hi] : runs) EXPECT_LT(lo, hi);
}

}  // namespace
