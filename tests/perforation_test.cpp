// Loop-perforation baseline tests.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "perforation/perforate.hpp"

namespace {

using sigrt::perforation::Shape;
using sigrt::perforation::Stats;

std::vector<std::size_t> survivors(std::size_t n, double rate, Shape shape,
                                   Stats* stats_out = nullptr) {
  std::vector<std::size_t> idx;
  const Stats s = sigrt::perforation::for_each(
      0, n, rate, [&](std::size_t i) { idx.push_back(i); }, shape);
  if (stats_out != nullptr) *stats_out = s;
  return idx;
}

TEST(Perforation, RateZeroKeepsEverything) {
  for (const Shape shape : {Shape::Modulo, Shape::Truncate, Shape::Random}) {
    const auto idx = survivors(100, 0.0, shape);
    EXPECT_EQ(idx.size(), 100u);
  }
}

TEST(Perforation, RateOneDropsEverything) {
  for (const Shape shape : {Shape::Modulo, Shape::Truncate, Shape::Random}) {
    EXPECT_TRUE(survivors(100, 1.0, shape).empty());
  }
}

TEST(Perforation, ModuloKeepsRoundedShare) {
  for (const double rate : {0.1, 0.25, 0.5, 0.7, 0.9}) {
    const auto idx = survivors(1000, rate, Shape::Modulo);
    EXPECT_NEAR(static_cast<double>(idx.size()), 1000.0 * (1.0 - rate), 1.0)
        << "rate " << rate;
  }
}

TEST(Perforation, ModuloSpreadsSurvivorsEvenly) {
  const auto idx = survivors(1000, 0.5, Shape::Modulo);
  // Gaps between consecutive survivors must all be ~2.
  for (std::size_t i = 1; i < idx.size(); ++i) {
    EXPECT_LE(idx[i] - idx[i - 1], 3u);
  }
}

TEST(Perforation, TruncateKeepsPrefix) {
  const auto idx = survivors(100, 0.3, Shape::Truncate);
  ASSERT_EQ(idx.size(), 70u);
  for (std::size_t i = 0; i < idx.size(); ++i) EXPECT_EQ(idx[i], i);
}

TEST(Perforation, RandomIsDeterministicPerSeed) {
  std::vector<std::size_t> a, b;
  sigrt::perforation::for_each(0, 500, 0.5, [&](std::size_t i) { a.push_back(i); },
                               Shape::Random, 99);
  sigrt::perforation::for_each(0, 500, 0.5, [&](std::size_t i) { b.push_back(i); },
                               Shape::Random, 99);
  EXPECT_EQ(a, b);
}

TEST(Perforation, RandomApproximatesRate) {
  const auto idx = survivors(10000, 0.3, Shape::Random);
  EXPECT_NEAR(static_cast<double>(idx.size()), 7000.0, 250.0);
}

TEST(Perforation, StatsAddUp) {
  Stats s;
  survivors(777, 0.4, Shape::Modulo, &s);
  EXPECT_EQ(s.executed + s.skipped, 777u);
  EXPECT_NEAR(s.executed_fraction(), 0.6, 0.01);
}

TEST(Perforation, EmptyRangeIsNoop) {
  Stats s;
  const auto idx = survivors(0, 0.5, Shape::Modulo, &s);
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(s.executed, 0u);
  EXPECT_DOUBLE_EQ(s.executed_fraction(), 1.0);
}

TEST(Perforation, NonZeroBeginRespected) {
  std::vector<std::size_t> idx;
  sigrt::perforation::for_each(10, 20, 0.0, [&](std::size_t i) { idx.push_back(i); });
  ASSERT_EQ(idx.size(), 10u);
  EXPECT_EQ(idx.front(), 10u);
  EXPECT_EQ(idx.back(), 19u);
}

TEST(Perforation, OutOfRangeRatesClamp) {
  EXPECT_EQ(survivors(50, -0.5, Shape::Modulo).size(), 50u);
  EXPECT_TRUE(survivors(50, 1.5, Shape::Modulo).empty());
}

}  // namespace
