// Elastic-pool and topology tests: slot handoff on begin_blocking()
// inflates the pool with spare threads and the pool deflates back to the
// base worker count after the idle grace; deep spawn+taskwait recursion
// keeps per-thread helping nesting bounded by the helping-depth cap (the
// stack-bound oracle for detach-for-blocking); and the sysfs topology
// probe is exercised against a fabricated /sys tree plus its flat
// fallback.  The pool tests run under TSan in CI — they are the race
// gate for the slot-handoff and spare-retirement protocols.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/sigrt.hpp"
#include "core/topology.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::PoolStats;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig pool_config(unsigned workers) {
  RuntimeConfig c;
  c.workers = workers;
  c.policy = PolicyKind::Agnostic;
  c.record_task_log = false;
  return c;
}

/// Polls `pred` for up to `deadline_ms`; returns whether it ever held.
template <typename Pred>
bool eventually(Pred pred, int deadline_ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// --- inflate / deflate oracle --------------------------------------------

TEST(ElasticPool, BlockingHandoffInflatesThenPoolDeflatesAfterGrace) {
  RuntimeConfig c = pool_config(2);
  c.spare_grace_ms = 5;
  Runtime rt(c);

  // A task body that blocks outside the runtime hands its slot to a spare
  // so the sibling task still has two workers' worth of parallelism.
  std::atomic<bool> sibling_ran{false};
  std::atomic<bool> detached{false};
  rt.spawn(sigrt::task([&] {
    sigrt::BlockingSection bs(rt);
    detached.store(bs.detached(), std::memory_order_relaxed);
    // "Blocked" span: wait until the sibling actually ran elsewhere.
    while (!sibling_ran.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }));
  rt.spawn(sigrt::task([&] {
    sibling_ran.store(true, std::memory_order_release);
  }));
  rt.wait_all();

  EXPECT_TRUE(detached.load());
  const PoolStats inflated = rt.pool_stats();
  EXPECT_GE(inflated.handoffs, 1u);
  EXPECT_GE(inflated.spares_spawned, 1u);

  // Deflate: once the blocked body unwound, the pool is one thread over
  // strength; the surplus thread must retire after the idle grace.
  EXPECT_TRUE(eventually([&] {
    const PoolStats s = rt.pool_stats();
    return s.spares_retired >= 1 && s.live_threads == 2;
  })) << "pool never deflated: live_threads="
      << rt.pool_stats().live_threads;
}

TEST(ElasticPool, BeginBlockingIsANoOpOffWorkerAndWhenDisabled) {
  {
    Runtime rt(pool_config(2));
    EXPECT_FALSE(rt.begin_blocking());  // not a task body: nothing to hand off
  }
  {
    // event_wakeup=false is the strict PR-5 baseline: no spares at all.
    RuntimeConfig c = pool_config(2);
    c.event_wakeup = false;
    Runtime rt(c);
    std::atomic<bool> detached{true};
    rt.spawn(sigrt::task([&] { detached.store(rt.begin_blocking()); }));
    rt.wait_all();
    EXPECT_FALSE(detached.load());
    EXPECT_EQ(rt.pool_stats().spares_spawned, 0u);
  }
}

// --- deep recursion: helping nesting stays bounded -----------------------

std::atomic<int> g_max_nesting{0};
thread_local int tls_nesting = 0;

void update_max(std::atomic<int>& max, int v) {
  int cur = max.load(std::memory_order_relaxed);
  while (v > cur &&
         !max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void chain(Runtime& rt, int depth, std::atomic<int>& visited) {
  ++tls_nesting;
  update_max(g_max_nesting, tls_nesting);
  visited.fetch_add(1, std::memory_order_relaxed);
  if (depth > 0) {
    rt.spawn(sigrt::task([&rt, depth, &visited] {
      chain(rt, depth - 1, visited);
    }));
    rt.wait_all();  // in-task: helping barrier over the one child
  }
  --tls_nesting;
}

TEST(ElasticPool, DeepChainKeepsPerThreadNestingUnderHelpingDepthCap) {
  constexpr int kDepth = 128;
  RuntimeConfig c = pool_config(2);
  c.helping_depth = 16;
  Runtime rt(c);
  g_max_nesting.store(0);

  std::atomic<int> visited{0};
  rt.spawn(sigrt::task([&] { chain(rt, kDepth - 1, visited); }));
  rt.wait_all();

  EXPECT_EQ(visited.load(), kDepth);
  // Inline helping nests a child's frame inside its waiting parent's, so
  // native stack growth tracks tls_nesting.  The cap forces a detach
  // instead of helping past depth 16 — a 128-deep chain must NOT put 128
  // frames on any one thread.  Slack covers the helping frames a spare
  // inherits mid-chain before its own counter resets.
  EXPECT_LE(g_max_nesting.load(), static_cast<int>(c.helping_depth) * 2 + 8);
  // The bound is only meaningful if the detach path actually engaged.
  EXPECT_GE(rt.pool_stats().handoffs, 1u);
}

TEST(ElasticPool, PoolStaysBalancedAfterBlockingStormsWithFailures) {
  // Repeated storms of blocking sections whose bodies then THROW: the
  // handoff path (slot donated to a spare) composes with the error path
  // (exception recorded, barrier rethrows).  The oracle is the PoolStats
  // ledger — slots were actually handed off, and after the storms the pool
  // deflates back to exactly the base worker count instead of leaking a
  // spare per failure.
  RuntimeConfig c = pool_config(2);
  c.spare_grace_ms = 5;
  Runtime rt(c);

  constexpr int kRounds = 8;
  std::atomic<int> siblings{0};
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < 4; ++i) {
      rt.spawn(sigrt::task([&rt] {
        {
          sigrt::BlockingSection bs(rt);
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        throw std::runtime_error("post-blocking boom");
      }));
      rt.spawn(sigrt::task([&] { siblings.fetch_add(1); }));
    }
    try {
      rt.wait_all();
    } catch (const std::runtime_error&) {
    }
  }

  EXPECT_EQ(siblings.load(), kRounds * 4);
  const PoolStats mid = rt.pool_stats();
  EXPECT_GE(mid.handoffs, 1u);  // the storms really exercised the handoff
  // Balanced ledger: every spare the storms spawned retires after the
  // grace, and the live count settles back to the base workers.
  EXPECT_TRUE(eventually([&] {
    const PoolStats s = rt.pool_stats();
    return s.live_threads == 2 && s.idle_spares == 0;
  })) << "pool did not deflate: live_threads="
      << rt.pool_stats().live_threads
      << " idle_spares=" << rt.pool_stats().idle_spares;
  const PoolStats end = rt.pool_stats();
  EXPECT_EQ(end.spares_spawned, end.spares_retired);

  // And the deflated pool still runs work.
  std::atomic<int> after{0};
  for (int i = 0; i < 8; ++i) {
    rt.spawn(sigrt::task([&] { after.fetch_add(1); }));
  }
  rt.wait_all();
  EXPECT_EQ(after.load(), 8);
}

// --- topology probe -------------------------------------------------------

/// Writes one small sysfs-style file, creating parent directories.
void put_file(const std::filesystem::path& p, const std::string& contents) {
  std::filesystem::create_directories(p.parent_path());
  std::FILE* f = std::fopen(p.c_str(), "w");
  ASSERT_NE(f, nullptr) << p;
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
}

/// Fabricates a two-package tree: package 0 holds cpus 0,1 as SMT siblings
/// of one core; package 1 holds cpus 2,3 as two distinct cores.  Each
/// package shares an L3; every cpu has a private 512K L2.
std::filesystem::path make_fake_sysfs() {
  const auto root = std::filesystem::path(::testing::TempDir()) /
                    "sigrt_topo_sysfs";
  std::filesystem::remove_all(root);
  const auto base = root / "devices/system/cpu";
  put_file(base / "online", "0-3\n");
  struct Cpu {
    unsigned pkg, core;
    const char* l3_shared;
  };
  const Cpu cpus[4] = {{0, 0, "0-1"}, {0, 0, "0-1"}, {1, 0, "2-3"},
                       {1, 1, "2-3"}};
  for (unsigned c = 0; c < 4; ++c) {
    const auto dir = base / ("cpu" + std::to_string(c));
    put_file(dir / "topology/physical_package_id",
             std::to_string(cpus[c].pkg) + "\n");
    put_file(dir / "topology/core_id", std::to_string(cpus[c].core) + "\n");
    put_file(dir / "cache/index0/level", "1\n");
    put_file(dir / "cache/index0/type", "Data\n");
    put_file(dir / "cache/index0/size", "48K\n");
    put_file(dir / "cache/index0/shared_cpu_list", std::to_string(c) + "\n");
    // Index numbering is dense in sysfs (the probe stops at the first
    // missing indexN), so the instruction L1 must be present even though
    // the probe skips it.
    put_file(dir / "cache/index1/level", "1\n");
    put_file(dir / "cache/index1/type", "Instruction\n");
    put_file(dir / "cache/index1/size", "32K\n");
    put_file(dir / "cache/index1/shared_cpu_list", std::to_string(c) + "\n");
    put_file(dir / "cache/index2/level", "2\n");
    put_file(dir / "cache/index2/type", "Unified\n");
    put_file(dir / "cache/index2/size", "512K\n");
    put_file(dir / "cache/index2/shared_cpu_list", std::to_string(c) + "\n");
    put_file(dir / "cache/index3/level", "3\n");
    put_file(dir / "cache/index3/type", "Unified\n");
    put_file(dir / "cache/index3/size", "8192K\n");
    put_file(dir / "cache/index3/shared_cpu_list",
             std::string(cpus[c].l3_shared) + "\n");
  }
  return root;
}

TEST(Topology, ProbeParsesAFabricatedSysfsTree) {
  const auto root = make_fake_sysfs();
  const sigrt::topo::Topology t = sigrt::topo::probe(root.string());

  EXPECT_TRUE(t.from_sysfs);
  ASSERT_EQ(t.cpu_count(), 4u);
  EXPECT_EQ(t.packages, 2u);
  EXPECT_EQ(t.cores, 3u);       // cpus 0,1 share one; 2 and 3 are distinct
  EXPECT_EQ(t.llc_groups, 2u);  // one L3 per package
  EXPECT_EQ(t.l2_bytes, 512u * 1024u);
  EXPECT_EQ(t.llc_bytes, 8192u * 1024u);

  // Distance tiers: SMT sibling < shared-LLC core < remote package.
  EXPECT_EQ(t.worker_distance(0, 1), 0u);
  EXPECT_EQ(t.worker_distance(2, 3), 1u);
  EXPECT_EQ(t.worker_distance(0, 2), 3u);

  // Nearest-first victim order from worker 0: the SMT sibling leads, the
  // remote package trails; near_victims marks the cache-sharing prefix.
  const std::vector<unsigned> order = t.steal_order(0, 4);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(t.near_victims(0, 4), 1u);

  std::filesystem::remove_all(root);
}

TEST(Topology, ProbeFallsBackFlatWhenSysfsIsMissing) {
  const sigrt::topo::Topology t = sigrt::topo::probe("/nonexistent_sysfs");
  EXPECT_FALSE(t.from_sysfs);
  EXPECT_GE(t.cpu_count(), 1u);
  EXPECT_EQ(t.packages, 1u);
  EXPECT_EQ(t.llc_groups, 1u);
  // Flat model: every distinct pair sits at tier 1 (no near/far split).
  if (t.cpu_count() >= 2) EXPECT_EQ(t.worker_distance(0, 1), 1u);
}

TEST(Topology, StealOrderIsAPermutationOfAllOtherWorkersAtAnyCount) {
  const auto root = make_fake_sysfs();
  const sigrt::topo::Topology t = sigrt::topo::probe(root.string());
  // Worker counts both under and over the cpu count (oversubscription
  // wraps workers onto cpus round-robin).
  for (unsigned workers : {2u, 3u, 4u, 7u}) {
    for (unsigned self = 0; self < workers; ++self) {
      const std::vector<unsigned> order = t.steal_order(self, workers);
      ASSERT_EQ(order.size(), workers - 1) << "self=" << self;
      std::vector<bool> seen(workers, false);
      for (unsigned v : order) {
        ASSERT_LT(v, workers);
        EXPECT_NE(v, self);
        EXPECT_FALSE(seen[v]) << "duplicate victim " << v;
        seen[v] = true;
      }
      // Distances never decrease along the order (nearest-first).
      for (std::size_t i = 1; i < order.size(); ++i) {
        EXPECT_LE(t.worker_distance(self, order[i - 1]),
                  t.worker_distance(self, order[i]));
      }
      EXPECT_LE(t.near_victims(self, workers), order.size());
    }
  }
  std::filesystem::remove_all(root);
}

}  // namespace
