// Pragma-surface emulation tests: the omp_task / omp_taskwait fluent layer
// must lower to the same runtime behaviour as the explicit API (§2).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/sigrt.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;
using sigrt::omp_task;
using sigrt::omp_taskwait;

RuntimeConfig config(PolicyKind p = PolicyKind::GTBMaxBuffer) {
  RuntimeConfig c;
  c.workers = 0;
  c.policy = p;
  return c;
}

TEST(Pragma, TaskSpawnsAtEndOfStatement) {
  Runtime rt(config());
  int x = 0;
  omp_task(rt, [&] { x = 5; });
  omp_taskwait(rt);
  EXPECT_EQ(x, 5);
}

TEST(Pragma, LabelCreatesGroupOnFirstUse) {
  Runtime rt(config());
  omp_task(rt, [] {}).label("sobel").significant(0.5).approxfun([] {});
  omp_taskwait(rt).label("sobel").ratio(1.0);
  const auto g = rt.ensure_group("sobel");
  EXPECT_EQ(rt.group_report(g).spawned, 1u);
}

TEST(Pragma, RatioClauseControlsAccuracy) {
  Runtime rt(config());
  int accurate = 0;
  int approx = 0;
  // Listing 1 shape: spawn, then taskwait with ratio.  Buffering (MaxBuffer)
  // defers classification to the barrier, so the barrier's ratio applies.
  for (int i = 0; i < 10; ++i) {
    omp_task(rt, [&] { ++accurate; })
        .label("sobel")
        .significant((i % 9 + 1) / 10.0)
        .approxfun([&] { ++approx; });
  }
  omp_taskwait(rt).label("sobel").ratio(0.3);
  EXPECT_EQ(accurate, 3);
  EXPECT_EQ(approx, 7);
}

TEST(Pragma, TaskwaitWithoutLabelWaitsAll) {
  Runtime rt(config());
  int runs = 0;
  omp_task(rt, [&] { ++runs; }).label("a");
  omp_task(rt, [&] { ++runs; }).label("b");
  omp_task(rt, [&] { ++runs; });
  omp_taskwait(rt);
  EXPECT_EQ(runs, 3);
}

TEST(Pragma, InOutClausesEnforceOrder) {
  RuntimeConfig c;
  c.workers = 4;
  Runtime rt(c);
  alignas(1024) static int buf[256];
  std::atomic<bool> wrote{false};
  std::atomic<bool> reader_saw_write{false};
  omp_task(rt, [&] {
    buf[0] = 1;
    wrote.store(true);
  }).out(buf, 256);
  omp_task(rt, [&] { reader_saw_write.store(wrote.load()); }).in(buf, 256);
  omp_taskwait(rt);
  EXPECT_TRUE(reader_saw_write.load());
}

TEST(Pragma, TaskwaitOnWaitsForRangeWriters) {
  RuntimeConfig c;
  c.workers = 2;
  Runtime rt(c);
  alignas(1024) static int buf[256];
  std::atomic<bool> wrote{false};
  omp_task(rt, [&] {
    buf[7] = 7;
    wrote.store(true);
  }).out(buf, 256);
  omp_taskwait(rt).on(buf, sizeof(buf));
  EXPECT_TRUE(wrote.load());
  rt.wait_all();
}

TEST(Pragma, ApproxfunReceivesControlWhenApproximated) {
  Runtime rt(config());
  bool accurate_ran = false;
  bool approx_ran = false;
  omp_task(rt, [&] { accurate_ran = true; })
      .label("g")
      .significant(0.5)
      .approxfun([&] { approx_ran = true; });
  omp_taskwait(rt).label("g").ratio(0.0);
  EXPECT_FALSE(accurate_ran);
  EXPECT_TRUE(approx_ran);
}

TEST(Pragma, RepeatedTaskwaitKeepsRatio) {
  Runtime rt(config());
  int approx = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      omp_task(rt, [] {}).label("g").significant(0.5).approxfun([&] { ++approx; });
    }
    if (round == 0) {
      omp_taskwait(rt).label("g").ratio(0.0);
    } else {
      omp_taskwait(rt).label("g");  // no ratio clause: keep 0.0
    }
  }
  EXPECT_EQ(approx, 12);
}

TEST(Pragma, MatchesExplicitApiClassification) {
  auto with_pragma = [] {
    Runtime rt(config());
    std::vector<int> acc(20, 0);
    for (std::size_t i = 0; i < 20; ++i) {
      int* slot = &acc[i];
      omp_task(rt, [slot] { *slot = 1; })
          .label("g")
          .significant((i % 9 + 1) / 10.0)
          .approxfun([] {});
    }
    omp_taskwait(rt).label("g").ratio(0.4);
    return acc;
  };
  auto with_api = [] {
    Runtime rt(config());
    const auto g = rt.create_group("g", 0.4);
    std::vector<int> acc(20, 0);
    for (std::size_t i = 0; i < 20; ++i) {
      int* slot = &acc[i];
      rt.spawn(sigrt::task([slot] { *slot = 1; })
                   .approx([] {})
                   .significance((i % 9 + 1) / 10.0)
                   .group(g));
    }
    rt.wait_group(g);
    return acc;
  };
  EXPECT_EQ(with_pragma(), with_api());
}

// Regression: ~PragmaTaskwait must apply the ratio() clause BEFORE the
// wait's policy flush.  GTB(MaxBuffer) classifies the whole barrier window
// at the flush — applied after, this window would be classified at the
// group's stale ratio (1.0 here) and run fully accurate.
TEST(Pragma, TaskwaitRatioAppliesBeforeBarrierFlush) {
  Runtime rt(config(PolicyKind::GTBMaxBuffer));
  int accurate = 0;
  int approx = 0;
  for (int i = 0; i < 10; ++i) {
    // Group "g" is created at ratio 1.0 by the first labeled task; only
    // the barrier's clause carries the real target.
    omp_task(rt, [&] { ++accurate; })
        .label("g")
        .significant((i % 9 + 1) / 10.0)
        .approxfun([&] { ++approx; });
  }
  omp_taskwait(rt).label("g").ratio(0.5);
  EXPECT_EQ(accurate, 5);
  EXPECT_EQ(approx, 5);
}

// Regression: a ratio() clause combined with on() was silently dropped;
// like the plain-taskwait branch it must retarget the default group, and
// do so before the wait.
TEST(Pragma, TaskwaitOnAppliesRatioClause) {
  Runtime rt(config());
  alignas(1024) static int data[16];
  omp_task(rt, [] { data[0] = 1; }).out(data, 16);
  omp_taskwait(rt).on(data, sizeof(data)).ratio(0.7);
  EXPECT_DOUBLE_EQ(rt.group(sigrt::kDefaultGroup).ratio(), 0.7);
}

}  // namespace
