// Runtime facade tests: spawning, barriers, dependence enforcement, groups,
// inline vs threaded execution, wait_on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "core/sigrt.hpp"

namespace {

using sigrt::ExecutionKind;
using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig inline_config(PolicyKind p = PolicyKind::Agnostic) {
  RuntimeConfig c;
  c.workers = 0;  // deterministic inline execution
  c.policy = p;
  return c;
}

RuntimeConfig threaded_config(unsigned workers,
                              PolicyKind p = PolicyKind::Agnostic) {
  RuntimeConfig c;
  c.workers = workers;
  c.policy = p;
  return c;
}

TEST(Runtime, ExecutesSpawnedTask) {
  Runtime rt(inline_config());
  int x = 0;
  rt.spawn(sigrt::task([&] { x = 42; }));
  rt.wait_all();
  EXPECT_EQ(x, 42);
}

TEST(Runtime, ThreadedExecutesAllTasks) {
  Runtime rt(threaded_config(4));
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    rt.spawn(sigrt::task([&] { count.fetch_add(1); }));
  }
  rt.wait_all();
  EXPECT_EQ(count.load(), 500);
}

TEST(Runtime, SpawnWithoutBodyThrows) {
  Runtime rt(inline_config());
  sigrt::TaskOptions opts;
  EXPECT_THROW(rt.spawn(std::move(opts)), std::invalid_argument);
}

TEST(Runtime, DependenciesOrderProducerBeforeConsumer) {
  Runtime rt(threaded_config(4));
  alignas(1024) static int shared[256];
  std::atomic<bool> produced{false};
  std::atomic<bool> consumer_saw_produced{false};
  rt.spawn(sigrt::task([&] {
             shared[0] = 7;
             produced.store(true);
           })
               .out(shared, 256));
  rt.spawn(sigrt::task([&] {
             consumer_saw_produced.store(produced.load());
           })
               .in(shared, 256));
  rt.wait_all();
  EXPECT_TRUE(consumer_saw_produced.load());
}

TEST(Runtime, DependencyChainRunsInOrder) {
  Runtime rt(threaded_config(4));
  alignas(1024) static double cell[128];
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 16; ++i) {
    rt.spawn(sigrt::task([&, i] {
               std::lock_guard lock(m);
               order.push_back(i);
             })
                 .inout(cell, 128));
  }
  rt.wait_all();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Runtime, IndependentTasksAllComplete) {
  Runtime rt(threaded_config(8));
  std::vector<int> results(200, 0);
  for (int i = 0; i < 200; ++i) {
    rt.spawn(sigrt::task([&results, i] { results[static_cast<std::size_t>(i)] = i + 1; }));
  }
  rt.wait_all();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i + 1);
  }
}

TEST(Runtime, WaitGroupOnlyWaitsButFlushesEverything) {
  Runtime rt(inline_config(PolicyKind::GTBMaxBuffer));
  const auto a = rt.create_group("a", 1.0);
  const auto b = rt.create_group("b", 1.0);
  int ran_a = 0;
  int ran_b = 0;
  rt.spawn(sigrt::task([&] { ++ran_a; }).group(a));
  rt.spawn(sigrt::task([&] { ++ran_b; }).group(b));
  rt.wait_group(a);
  EXPECT_EQ(ran_a, 1);
  rt.wait_all();
  EXPECT_EQ(ran_b, 1);
}

TEST(Runtime, GroupReportCountsOutcomes) {
  Runtime rt(inline_config(PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 0.5);
  int approx_runs = 0;
  for (int i = 0; i < 10; ++i) {
    rt.spawn(sigrt::task([] {})
                 .approx([&] { ++approx_runs; })
                 .significance(0.1 + 0.08 * i)
                 .group(g));
  }
  rt.wait_group(g);
  const auto r = rt.group_report(g);
  EXPECT_EQ(r.accurate, 5u);
  EXPECT_EQ(r.approximate, 5u);
  EXPECT_EQ(r.dropped, 0u);
  EXPECT_EQ(approx_runs, 5);
}

TEST(Runtime, TaskWithoutApproxFunIsDropped) {
  Runtime rt(inline_config(PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 0.0);
  int runs = 0;
  for (int i = 0; i < 8; ++i) {
    rt.spawn(sigrt::task([&] { ++runs; }).significance(0.5).group(g));
  }
  rt.wait_group(g);
  EXPECT_EQ(runs, 0);
  const auto r = rt.group_report(g);
  EXPECT_EQ(r.dropped, 8u);
}

TEST(Runtime, SpecialSignificanceOneAlwaysAccurate) {
  Runtime rt(inline_config(PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 0.0);  // ratio 0: approximate everything
  int accurate_runs = 0;
  int approx_runs = 0;
  for (int i = 0; i < 5; ++i) {
    rt.spawn(sigrt::task([&] { ++accurate_runs; })
                 .approx([&] { ++approx_runs; })
                 .significance(1.0)
                 .group(g));
  }
  rt.wait_group(g);
  EXPECT_EQ(accurate_runs, 5);
  EXPECT_EQ(approx_runs, 0);
}

TEST(Runtime, SpecialSignificanceZeroAlwaysApproximate) {
  Runtime rt(inline_config(PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 1.0);  // ratio 1: accurate everything
  int accurate_runs = 0;
  int approx_runs = 0;
  for (int i = 0; i < 5; ++i) {
    rt.spawn(sigrt::task([&] { ++accurate_runs; })
                 .approx([&] { ++approx_runs; })
                 .significance(0.0)
                 .group(g));
  }
  rt.wait_group(g);
  EXPECT_EQ(accurate_runs, 0);
  EXPECT_EQ(approx_runs, 5);
}

TEST(Runtime, SignificanceIsClampedToUnitInterval) {
  Runtime rt(inline_config(PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 1.0);
  int approx_runs = 0;
  rt.spawn(sigrt::task([] {}).approx([&] { ++approx_runs; }).significance(-3.0).group(g));
  rt.wait_group(g);
  EXPECT_EQ(approx_runs, 1);  // clamped to 0.0 => unconditionally approximate
}

TEST(Runtime, WaitOnBlocksUntilWriterFinishes) {
  Runtime rt(threaded_config(2));
  alignas(1024) static int data[256];
  std::atomic<bool> writer_done{false};
  rt.spawn(sigrt::task([&] {
             data[3] = 9;
             writer_done.store(true);
           })
               .out(data, 256));
  rt.wait_on(data, sizeof(data));
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(data[3], 9);
  rt.wait_all();
}

TEST(Runtime, WaitOnIsExcludedFromGroupAccounting) {
  Runtime rt(inline_config());
  alignas(1024) static int data[16];
  rt.spawn(sigrt::task([&] { data[0] = 1; }).out(data, 16));
  rt.wait_on(data, sizeof(data));
  const auto r = rt.group_report(sigrt::kDefaultGroup);
  EXPECT_EQ(r.accurate, 1u);  // only the user task is counted
}

TEST(Runtime, EnsureGroupKeepsExistingRatio) {
  Runtime rt(inline_config());
  const auto g1 = rt.create_group("g", 0.3);
  const auto g2 = rt.ensure_group("g");
  EXPECT_EQ(g1, g2);
  EXPECT_DOUBLE_EQ(rt.group(g1).ratio(), 0.3);
}

TEST(Runtime, CreateGroupRetargetsRatio) {
  Runtime rt(inline_config());
  const auto g1 = rt.create_group("g", 0.3);
  const auto g2 = rt.create_group("g", 0.9);
  EXPECT_EQ(g1, g2);
  EXPECT_DOUBLE_EQ(rt.group(g1).ratio(), 0.9);
}

TEST(Runtime, UnknownGroupThrows) {
  Runtime rt(inline_config());
  EXPECT_THROW(rt.group_report(999), std::out_of_range);
}

TEST(Runtime, StatsAggregateAcrossGroups) {
  Runtime rt(inline_config(PolicyKind::GTBMaxBuffer));
  const auto a = rt.create_group("a", 1.0);
  const auto b = rt.create_group("b", 0.0);
  for (int i = 0; i < 4; ++i) {
    rt.spawn(sigrt::task([] {}).significance(0.5).group(a));
    rt.spawn(sigrt::task([] {}).approx([] {}).significance(0.5).group(b));
  }
  rt.wait_all();
  const auto s = rt.stats();
  EXPECT_EQ(s.spawned, 8u);
  EXPECT_EQ(s.accurate, 4u);
  EXPECT_EQ(s.approximate, 4u);
}

TEST(Runtime, ActivityAdvancesWithWork) {
  Runtime rt(threaded_config(2));
  const auto before = rt.activity_now();
  for (int i = 0; i < 50; ++i) {
    rt.spawn(sigrt::task([] {
      volatile double x = 1.0;
      for (int j = 0; j < 20000; ++j) x = x * 1.0000001 + 0.5;
    }));
  }
  rt.wait_all();
  const auto after = rt.activity_now();
  EXPECT_GT(after.wall_s, before.wall_s);
  EXPECT_GT(after.busy_s, before.busy_s);
}

TEST(Runtime, ManyWaitsInterleavedWithSpawns) {
  Runtime rt(threaded_config(4, PolicyKind::GTB));
  const auto g = rt.create_group("g", 0.5);
  std::atomic<int> runs{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      rt.spawn(sigrt::task([&] { runs.fetch_add(1); })
                   .approx([&] { runs.fetch_add(1); })
                   .significance(0.1 + 0.08 * i)
                   .group(g));
    }
    rt.wait_group(g);
  }
  EXPECT_EQ(runs.load(), 200);
}

TEST(Runtime, NoStealConfigurationStillCompletes) {
  RuntimeConfig c = threaded_config(3);
  c.steal = false;
  Runtime rt(c);
  std::atomic<int> runs{0};
  for (int i = 0; i < 100; ++i) {
    rt.spawn(sigrt::task([&] { runs.fetch_add(1); }));
  }
  rt.wait_all();
  EXPECT_EQ(runs.load(), 100);
}

TEST(Runtime, DestructorDrainsOutstandingTasks) {
  std::atomic<int> runs{0};
  {
    Runtime rt(threaded_config(2));
    for (int i = 0; i < 64; ++i) {
      rt.spawn(sigrt::task([&] { runs.fetch_add(1); }));
    }
    // no wait_all: the destructor must flush and drain
  }
  EXPECT_EQ(runs.load(), 64);
}

TEST(Runtime, TwoPredecessorSpawnRaceDoesNotDoubleExecute) {
  // Regression: a task with >= 2 unfinished predecessors whose completions
  // land inside the spawn's registration window used to drain the gate's
  // two holds and double-enqueue the task (executing it twice and
  // underflowing the pending counters -> barrier deadlock).  The layout
  // below guarantees multi-predecessor tasks: ping/pong are carved from one
  // allocation, so a writer's slice shares dependence blocks both with its
  // neighbor writer and with the other buffer's readers.
  constexpr std::size_t kN = 1024;
  constexpr std::size_t kSlice = 64;
  std::vector<double> arena(2 * kN);
  double* ping = arena.data();
  double* pong = arena.data() + kN;

  Runtime rt(threaded_config(1));
  const auto g = rt.create_group("sweeps", 1.0);
  std::atomic<std::uint64_t> executions{0};
  std::uint64_t spawned = 0;

  for (int sweep = 0; sweep < 120; ++sweep) {
    double* src = sweep % 2 == 0 ? ping : pong;
    double* dst = sweep % 2 == 0 ? pong : ping;
    for (std::size_t s = 0; s < kN / kSlice; ++s) {
      double* out = dst + s * kSlice;
      rt.spawn(sigrt::task([&executions, out] {
                 executions.fetch_add(1);
                 out[0] += 1.0;
               })
                   .group(g)
                   .in(src, kN)
                   .out(out, kSlice));
      ++spawned;
    }
    rt.wait_group(g);
  }
  EXPECT_EQ(executions.load(), spawned);
  const auto r = rt.group_report(g);
  EXPECT_EQ(r.accurate, spawned);
}

TEST(Runtime, DiamondDependencyPattern) {
  Runtime rt(threaded_config(4));
  alignas(1024) static double a[128], b[128], c[128];
  std::vector<int> log;
  std::mutex m;
  auto note = [&](int id) {
    std::lock_guard lock(m);
    log.push_back(id);
  };
  rt.spawn(sigrt::task([&] { note(0); }).out(a, 128));                  // source
  rt.spawn(sigrt::task([&] { note(1); }).in(a, 128).out(b, 128));       // left
  rt.spawn(sigrt::task([&] { note(2); }).in(a, 128).out(c, 128));       // right
  rt.spawn(sigrt::task([&] { note(3); }).in(b, 128).in(c, 128));        // sink
  rt.wait_all();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.front(), 0);
  EXPECT_EQ(log.back(), 3);
}

// Multi-spawner id-uniqueness oracle: concurrent spawners (serve
// dispatchers, user threads, task bodies) must never mint duplicate
// TaskIds — ids key the deterministic stream_rng fault stream and task-log
// attribution.  The single-writer load+store this replaces loses ids under
// exactly this interleaving.
TEST(Runtime, ConcurrentSpawnersMintUniqueTaskIds) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  Runtime rt(threaded_config(2));
  std::mutex mu;
  std::vector<sigrt::TaskId> ids;
  ids.reserve(kThreads * kPerThread);

  std::vector<std::thread> spawners;
  spawners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    spawners.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        rt.spawn(sigrt::task([&] {
          const sigrt::TaskId id = sigrt::current_task_id();
          std::lock_guard lock(mu);
          ids.push_back(id);
        }));
      }
    });
  }
  for (auto& t : spawners) t.join();
  rt.wait_all();

  ASSERT_EQ(ids.size(), static_cast<std::size_t>(kThreads) * kPerThread);
  std::sort(ids.begin(), ids.end());
  EXPECT_NE(ids.front(), 0u);
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
      << "duplicate task id minted by concurrent spawners";
}

// Accounting invariant: after a barrier, every group report must satisfy
// spawned == accurate + approximate + dropped, for every policy — an
// Undecided completion (or an internal fence slipping into `spawned`)
// breaks it silently.
TEST(Runtime, GroupReportInvariantHoldsAcrossPolicies) {
  const PolicyKind kPolicies[] = {PolicyKind::Agnostic, PolicyKind::GTB,
                                  PolicyKind::GTBMaxBuffer, PolicyKind::LQH,
                                  PolicyKind::Oracle};
  for (const PolicyKind policy : kPolicies) {
    for (const unsigned workers : {0u, 2u}) {
      Runtime rt(threaded_config(workers, policy));
      const auto g = rt.create_group("mix", 0.5);
      alignas(1024) static int data[64];
      for (int i = 0; i < 40; ++i) {
        auto b = sigrt::task([] {}).significance((i % 10) / 10.0).group(g);
        if (i % 2 == 0) b.approx([] {});  // odd tasks drop when approximated
        rt.spawn(std::move(b));
      }
      rt.spawn(sigrt::task([] { data[0] = 1; }).out(data, 64).group(g));
      rt.wait_on(data, sizeof(data));  // internal fence: excluded everywhere
      rt.wait_group(g);
      const auto r = rt.group_report(g);
      EXPECT_EQ(r.spawned, 41u) << sigrt::to_string(policy);
      EXPECT_EQ(r.spawned, r.accurate + r.approximate + r.dropped)
          << sigrt::to_string(policy) << " workers=" << workers;
      const auto def = rt.group_report(sigrt::kDefaultGroup);
      EXPECT_EQ(def.spawned, def.accurate + def.approximate + def.dropped)
          << "fence leaked into default-group spawned count";
    }
  }
}

}  // namespace
