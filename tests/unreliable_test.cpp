// Tests for the §6 future-work extension: NTC (unreliable) cores.
//
// Invariants: accurate tasks never execute on an unreliable worker;
// approximate tasks may; injected faults turn approximate tasks into drops
// (dependents still release); the energy model charges NTC busy time a
// fraction of the dynamic power.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/sigrt.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig ntc_config(unsigned workers, unsigned unreliable,
                         PolicyKind p = PolicyKind::GTBMaxBuffer) {
  RuntimeConfig c;
  c.workers = workers;
  c.unreliable_workers = unreliable;
  c.policy = p;
  return c;
}

TEST(Unreliable, AccurateTasksNeverRunOnUnreliableWorkers) {
  RuntimeConfig c = ntc_config(4, 2);
  Runtime rt(c);
  const auto g = rt.create_group("g", 0.5);
  std::vector<std::atomic<int>> worker_of(400);
  std::vector<std::atomic<int>> approx_flag(400);
  for (std::size_t i = 0; i < 400; ++i) {
    // Record the executing "worker class" via thread-locals is fragile;
    // instead exploit determinism: accurate body stores +1, approx -1, and
    // we check against the scheduler's own records below via stats.
    rt.spawn(sigrt::task([&, i] { approx_flag[i].store(0); })
                 .approx([&, i] { approx_flag[i].store(1); })
                 .significance(static_cast<double>(i % 9 + 1) / 10.0)
                 .group(g));
  }
  rt.wait_group(g);
  const auto r = rt.group_report(g);
  // Ratio still honored with the restricted routing.
  EXPECT_NEAR(r.provided_ratio(), 0.5, 0.02);
  (void)worker_of;
}

TEST(Unreliable, WorkerClassificationIsExposed) {
  // White-box check of the routing predicate through dump-level state: with
  // 3 workers and 1 unreliable, indices 0..1 are reliable, 2 unreliable.
  sigrt::Scheduler s(3, 1, true, nullptr,
                     [](void*, sigrt::Task& t, unsigned) { t.accurate(); });
  EXPECT_FALSE(s.is_unreliable(0));
  EXPECT_FALSE(s.is_unreliable(1));
  EXPECT_TRUE(s.is_unreliable(2));
  EXPECT_EQ(s.unreliable_count(), 1u);
}

TEST(Unreliable, UnreliableCountClampsToKeepOneReliableWorker) {
  sigrt::Scheduler s(2, 8, true, nullptr,
                     [](void*, sigrt::Task& t, unsigned) { t.accurate(); });
  EXPECT_EQ(s.unreliable_count(), 1u);
  EXPECT_FALSE(s.is_unreliable(0));
}

TEST(Unreliable, InlineModeIsReliable) {
  RuntimeConfig c = ntc_config(0, 4);
  c.unreliable_fault_rate = 1.0;  // would drop every approximate task
  Runtime rt(c);
  const auto g = rt.create_group("g", 0.0);
  int approx_runs = 0;
  rt.spawn(sigrt::task([] {}).approx([&] { ++approx_runs; }).significance(0.5).group(g));
  rt.wait_group(g);
  // Inline pseudo-worker is reliable: no fault injected.
  EXPECT_EQ(approx_runs, 1);
  EXPECT_EQ(rt.stats().faults, 0u);
}

TEST(Unreliable, AccurateWorkloadsCompleteWithNtcWorkersPresent) {
  // All-accurate workload: NTC workers stay idle but nothing deadlocks.
  Runtime rt(ntc_config(4, 3, PolicyKind::Agnostic));
  std::atomic<int> runs{0};
  for (int i = 0; i < 300; ++i) {
    rt.spawn(sigrt::task([&] { runs.fetch_add(1); }));
  }
  rt.wait_all();
  EXPECT_EQ(runs.load(), 300);
}

TEST(Unreliable, FaultInjectionDropsApproximateTasks) {
  // Pin the single reliable worker with a blocker task so that the
  // approximate batch can only be executed (stolen) by the NTC worker --
  // every execution must then fault and drop.  GTB with a window of one
  // classifies and releases each task at spawn (LQH would not do: its tasks
  // stay Undecided at issue and are therefore never routed to NTC workers).
  RuntimeConfig c = ntc_config(2, 1, PolicyKind::GTB);
  c.gtb_buffer = 1;
  c.unreliable_fault_rate = 1.0;  // every NTC approximate execution fails
  Runtime rt(c);

  std::atomic<bool> blocker_started{false};
  std::atomic<bool> release{false};
  const auto gb = rt.create_group("blocker", 1.0);
  rt.spawn(sigrt::task([&] {
             blocker_started.store(true);
             while (!release.load()) std::this_thread::yield();
           })
               .significance(1.0)
               .group(gb));
  while (!blocker_started.load()) std::this_thread::yield();

  const auto g = rt.create_group("g", 0.0);  // approximate everything
  std::atomic<int> approx_runs{0};
  for (int i = 0; i < 50; ++i) {
    rt.spawn(sigrt::task([] {})
                 .approx([&] { approx_runs.fetch_add(1); })
                 .significance(0.5)
                 .group(g));
  }
  rt.wait_group(g);
  release.store(true);
  rt.wait_group(gb);

  const auto s = rt.stats();
  const auto r = rt.group_report(g);
  // Every approximate task executed on the NTC worker and faulted.
  EXPECT_EQ(s.faults, 50u);
  EXPECT_EQ(r.dropped, 50u);
  EXPECT_EQ(approx_runs.load(), 0);
}

TEST(Unreliable, FaultedTasksStillReleaseDependents) {
  RuntimeConfig c = ntc_config(2, 1);
  c.unreliable_fault_rate = 1.0;
  Runtime rt(c);
  const auto g = rt.create_group("g", 0.0);
  alignas(1024) static double cell[128];
  std::atomic<int> chain_done{0};
  for (int i = 0; i < 32; ++i) {
    rt.spawn(sigrt::task([] {})
                 .approx([&] { chain_done.fetch_add(1); })
                 .significance(0.5)
                 .group(g)
                 .inout(cell, 128));
  }
  rt.wait_group(g);  // must not deadlock even when links in the chain fault
  const auto r = rt.group_report(g);
  EXPECT_EQ(r.approximate + r.dropped, 32u);
}

TEST(Unreliable, ZeroFaultRateInjectsNothing) {
  Runtime rt(ntc_config(2, 1));
  const auto g = rt.create_group("g", 0.0);
  for (int i = 0; i < 100; ++i) {
    rt.spawn(sigrt::task([] {}).approx([] {}).significance(0.5).group(g));
  }
  rt.wait_group(g);
  EXPECT_EQ(rt.stats().faults, 0u);
}

TEST(Unreliable, FaultStreamIsDeterministic) {
  auto run_once = [] {
    RuntimeConfig c = ntc_config(2, 1);
    c.unreliable_fault_rate = 0.5;
    c.seed = 1234;
    c.steal = false;  // keep task->worker placement deterministic
    Runtime rt(c);
    const auto g = rt.create_group("g", 0.0);
    for (int i = 0; i < 100; ++i) {
      rt.spawn(sigrt::task([] {}).approx([] {}).significance(0.5).group(g));
    }
    rt.wait_group(g);
    return rt.stats().faults;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Unreliable, NtcBusyTimeIsCheaperInTheModel) {
  const sigrt::energy::MachineModel m;
  const double all_nominal = m.joules(1.0, 2.0, 0.0);
  const double half_ntc = m.joules(1.0, 1.0, 1.0);
  EXPECT_LT(half_ntc, all_nominal);
  EXPECT_NEAR(all_nominal - half_ntc,
              m.dynamic_core_power_w() * (1.0 - m.ntc_power_fraction), 1e-9);
}

TEST(Unreliable, ActivityReportsSplitBusyTime) {
  RuntimeConfig c = ntc_config(2, 1);
  Runtime rt(c);
  const auto g = rt.create_group("g", 0.0);
  for (int i = 0; i < 64; ++i) {
    rt.spawn(sigrt::task([] {})
                 .approx([] {
                   volatile double x = 1.0;
                   for (int j = 0; j < 200000; ++j) x = x * 1.0000001 + 0.1;
                 })
                 .significance(0.5)
                 .group(g));
  }
  rt.wait_group(g);
  const auto a = rt.activity_now();
  // Approximate tasks round-robin over both workers: both classes busy.
  EXPECT_GT(a.busy_s, 0.0);
  EXPECT_GT(a.busy_unreliable_s, 0.0);
}

}  // namespace
