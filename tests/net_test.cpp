// Network frontend tests: framing state machine units, wire-protocol
// roundtrips, and loopback end-to-end runs against a live NetServer —
// pipelined echo, protocol error statuses, per-tenant shed on the wire,
// and multiple concurrent clients across multiple pollers (the TSan
// coverage for the outbound-queue arm/disarm protocol).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "net/net.hpp"
#include "serve/serve.hpp"

namespace {

using namespace sigrt;
using namespace sigrt::net;

// --- FrameReader units ---------------------------------------------------

std::vector<std::uint8_t> framed(const std::string& body) {
  std::vector<std::uint8_t> out(kLenPrefixBytes + body.size());
  put_u32(out.data(), static_cast<std::uint32_t>(body.size()));
  std::memcpy(out.data() + kLenPrefixBytes, body.data(), body.size());
  return out;
}

void feed(FrameReader& r, const std::uint8_t* data, std::size_t n) {
  std::uint8_t* tail = r.writable_tail(n);
  std::memcpy(tail, data, n);
  r.commit(n);
}

TEST(Framing, ReassemblesFramesSplitAtEveryByteBoundary) {
  const auto bytes = framed("hello");
  // Feed the frame one byte at a time: no prefix of it may parse early,
  // and the complete stream must parse exactly once.
  FrameReader r;
  FrameView f;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    feed(r, bytes.data() + i, 1);
    EXPECT_FALSE(r.next_frame(f)) << "parsed after " << (i + 1) << " bytes";
  }
  feed(r, bytes.data() + bytes.size() - 1, 1);
  ASSERT_TRUE(r.next_frame(f));
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(f.data), f.size),
            "hello");
  EXPECT_FALSE(r.next_frame(f));
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Framing, DecodesCoalescedFramesFromOneRead) {
  std::vector<std::uint8_t> stream;
  for (const char* s : {"a", "", "bcd", "eefff"}) {
    const auto one = framed(s);
    stream.insert(stream.end(), one.begin(), one.end());
  }
  FrameReader r;
  feed(r, stream.data(), stream.size());
  FrameView f;
  std::vector<std::string> got;
  while (r.next_frame(f)) {
    got.emplace_back(reinterpret_cast<const char*>(f.data), f.size);
  }
  EXPECT_EQ(got, (std::vector<std::string>{"a", "", "bcd", "eefff"}));
  EXPECT_EQ(r.pending(), 0u);
}

TEST(Framing, SurvivesManyFramesThroughASmallReusedBuffer) {
  // Steady-state shape: interleaved feed/parse so the lazy compaction path
  // runs; every frame must come back intact and in order.
  FrameReader r;
  FrameView f;
  int parsed = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto one = framed("frame-" + std::to_string(i));
    // Split each frame across two commits to keep a partial frame live.
    const std::size_t half = one.size() / 2;
    feed(r, one.data(), half);
    while (r.next_frame(f)) {
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(f.data), f.size),
                "frame-" + std::to_string(parsed));
      ++parsed;
    }
    feed(r, one.data() + half, one.size() - half);
  }
  while (r.next_frame(f)) ++parsed;
  EXPECT_EQ(parsed, 1000);
}

TEST(Framing, OversizeLengthPrefixThrows) {
  FrameReader r(/*max_frame=*/64);
  std::uint8_t prefix[kLenPrefixBytes];
  put_u32(prefix, 65);
  feed(r, prefix, sizeof prefix);
  FrameView f;
  EXPECT_THROW((void)r.next_frame(f), std::length_error);
}

// --- Protocol header roundtrips ------------------------------------------

TEST(Protocol, RequestHeaderRoundTrips) {
  RequestHeader h;
  h.id = 0xdeadbeef;
  h.tenant = 3;
  h.cls = 7;
  h.kernel = 42;
  h.deadline_ns = -5;  // sign must survive
  std::uint8_t buf[kRequestHeaderBytes];
  h.encode(buf);
  const RequestHeader d = RequestHeader::decode(buf);
  EXPECT_EQ(d.id, h.id);
  EXPECT_EQ(d.tenant, h.tenant);
  EXPECT_EQ(d.cls, h.cls);
  EXPECT_EQ(d.kernel, h.kernel);
  EXPECT_EQ(d.deadline_ns, h.deadline_ns);
  EXPECT_EQ(d.reserved, 0u);
}

TEST(Protocol, ResponseHeaderRoundTrips) {
  ResponseHeader h;
  h.id = 17;
  h.status = Status::BadKernel;
  h.server_ns = 123456789;
  std::uint8_t buf[kResponseHeaderBytes];
  h.encode(buf);
  const ResponseHeader d = ResponseHeader::decode(buf);
  EXPECT_EQ(d.id, 17u);
  EXPECT_EQ(d.status, Status::BadKernel);
  EXPECT_EQ(d.server_ns, 123456789);
}

// --- Loopback end-to-end -------------------------------------------------

/// Byte-reversing echo kernel: the accurate body returns the payload
/// reversed; the approximate body returns just the first byte.
void reverse_kernel(const std::uint8_t* payload, std::size_t bytes,
                    bool approximate, std::vector<std::uint8_t>& out) {
  if (approximate) {
    if (bytes != 0) out.push_back(payload[0]);
    return;
  }
  for (std::size_t i = bytes; i-- > 0;) out.push_back(payload[i]);
}

struct Loopback {
  serve::ServerOptions so;
  std::unique_ptr<serve::Server> srv;
  std::unique_ptr<NetServer> net;
  serve::ClassId cls = 0;

  explicit Loopback(unsigned workers = 2, unsigned pollers = 1) {
    so.runtime.workers = workers;
    so.epoch_ms = 0.0;  // no perforation: every admitted request completes
    srv = std::make_unique<serve::Server>(so);
    serve::RequestClassConfig cfg;
    cfg.name = "echo";
    cfg.max_in_flight = 4096;
    cls = srv->register_class(cfg);
    net = std::make_unique<NetServer>(
        *srv, NetServerOptions{.port = 0, .pollers = pollers});
    net->register_kernel(0, {.fn = reverse_kernel, .significance = 1.0});
    net->start();
  }

  ~Loopback() { shutdown(); }

  void shutdown() {
    if (srv) srv->close();
    if (net) net->stop();
  }
};

TEST(NetLoopback, PipelinedEchoReturnsEveryResponseCorrect) {
  Loopback lb;
  Client c;
  c.connect("127.0.0.1", lb.net->port());

  constexpr std::uint32_t kN = 256;
  for (std::uint32_t i = 0; i < kN; ++i) {
    RequestHeader h;
    h.id = i;
    h.tenant = serve::kDefaultTenant;
    h.cls = lb.cls;
    h.kernel = 0;
    const std::string payload = "payload-" + std::to_string(i);
    c.enqueue(h, payload.data(), payload.size());
  }
  c.flush();  // one pipelined burst

  std::map<std::uint32_t, std::string> got;
  Client::Response resp;
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(c.read_response(resp));
    EXPECT_EQ(resp.header.status, Status::Ok);  // significance 1.0: accurate
    got[resp.header.id] = std::string(
        reinterpret_cast<const char*>(resp.payload.data()),
        resp.payload.size());
  }
  ASSERT_EQ(got.size(), kN);  // every id answered exactly once
  for (std::uint32_t i = 0; i < kN; ++i) {
    std::string want = "payload-" + std::to_string(i);
    std::reverse(want.begin(), want.end());
    EXPECT_EQ(got[i], want) << "id " << i;
  }

  c.close();
  lb.shutdown();
  const NetServer::Counters nc = lb.net->counters();
  EXPECT_EQ(nc.requests, kN);
  EXPECT_EQ(nc.responses, kN);
  EXPECT_EQ(nc.protocol_errors, 0u);
  EXPECT_EQ(lb.srv->class_report(lb.cls).served_accurate,
            static_cast<std::uint64_t>(kN));
}

TEST(NetLoopback, BadHeadersGetErrorStatusesAndTheConnectionSurvives) {
  Loopback lb;
  Client c;
  c.connect("127.0.0.1", lb.net->port());

  RequestHeader h;
  h.tenant = serve::kDefaultTenant;
  h.cls = lb.cls;
  h.kernel = 0;

  h.id = 1;
  h.cls = 999;  // unknown class
  c.enqueue(h, nullptr, 0);
  h.cls = lb.cls;

  h.id = 2;
  h.kernel = 999;  // unknown kernel
  c.enqueue(h, nullptr, 0);
  h.kernel = 0;

  h.id = 3;
  h.tenant = 999;  // unknown tenant
  c.enqueue(h, nullptr, 0);
  h.tenant = serve::kDefaultTenant;

  h.id = 4;
  h.reserved = 1;  // reserved must be zero
  c.enqueue(h, nullptr, 0);
  h.reserved = 0;

  h.id = 5;  // and a good one after all that: the connection still works
  const char ok[] = "ab";
  c.enqueue(h, ok, 2);
  c.flush();

  std::map<std::uint32_t, Status> got;
  Client::Response resp;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(c.read_response(resp));
    got[resp.header.id] = resp.header.status;
    if (resp.header.status != Status::Ok) {
      EXPECT_TRUE(resp.payload.empty()) << "id " << resp.header.id;
    }
  }
  EXPECT_EQ(got[1], Status::BadClass);
  EXPECT_EQ(got[2], Status::BadKernel);
  EXPECT_EQ(got[3], Status::BadTenant);
  EXPECT_EQ(got[4], Status::BadFrame);
  EXPECT_EQ(got[5], Status::Ok);

  c.close();
  lb.shutdown();
  const NetServer::Counters nc = lb.net->counters();
  EXPECT_EQ(nc.requests, 1u);  // only the good frame reached the serve tier
  EXPECT_EQ(nc.protocol_errors, 4u);
}

TEST(NetLoopback, ZeroQuotaTenantIsShedOnTheWire) {
  Loopback lb;
  const serve::TenantId blocked =
      lb.srv->register_tenant({.name = "blocked", .max_in_flight = 0});

  Client c;
  c.connect("127.0.0.1", lb.net->port());
  for (std::uint32_t i = 0; i < 8; ++i) {
    RequestHeader h;
    h.id = i;
    h.tenant = blocked;
    h.cls = lb.cls;
    h.kernel = 0;
    c.enqueue(h, "x", 1);
  }
  c.flush();

  Client::Response resp;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(c.read_response(resp));
    EXPECT_EQ(resp.header.status, Status::Shed);
    EXPECT_TRUE(resp.payload.empty());
  }

  c.close();
  lb.shutdown();
  EXPECT_EQ(lb.srv->tenant_report(blocked).cells[lb.cls].shed, 8u);
  // Shed still counts as a request (well-formed frame) and a response.
  const NetServer::Counters nc = lb.net->counters();
  EXPECT_EQ(nc.requests, 8u);
  EXPECT_EQ(nc.responses, 8u);
}

TEST(NetLoopback, ConcurrentClientsAcrossTwoPollers) {
  Loopback lb(/*workers=*/2, /*pollers=*/2);

  constexpr int kClients = 4;
  constexpr std::uint32_t kPerClient = 128;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client c;
        c.connect("127.0.0.1", lb.net->port());
        for (std::uint32_t i = 0; i < kPerClient; ++i) {
          RequestHeader h;
          h.id = i;
          h.tenant = serve::kDefaultTenant;
          h.cls = lb.cls;
          h.kernel = 0;
          const std::string payload =
              "c" + std::to_string(t) + "-" + std::to_string(i);
          c.enqueue(h, payload.data(), payload.size());
          // Flush in small batches to interleave reads and writes.
          if ((i & 15u) == 15u) c.flush();
        }
        c.flush();
        std::vector<bool> seen(kPerClient, false);
        Client::Response resp;
        for (std::uint32_t i = 0; i < kPerClient; ++i) {
          if (!c.read_response(resp) ||
              resp.header.status != Status::Ok ||
              resp.header.id >= kPerClient || seen[resp.header.id]) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          seen[resp.header.id] = true;
        }
      } catch (...) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  lb.shutdown();
  const NetServer::Counters nc = lb.net->counters();
  EXPECT_EQ(nc.requests, static_cast<std::uint64_t>(kClients) * kPerClient);
  EXPECT_EQ(nc.responses, nc.requests);
}

// --- client auto-reconnect ----------------------------------------------

/// Minimal hand-rolled listener so the test controls exactly when and how
/// the server side of the connection dies (NetServer never drops a healthy
/// connection, so it cannot stage this).
struct RawListener {
  int fd = -1;
  std::uint16_t port = 0;

  RawListener() { open(); }

  void open() {  // ASSERT_* requires a void-returning frame
    fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ASSERT_EQ(::listen(fd, 8), 0);
    socklen_t len = sizeof addr;
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port = ntohs(addr.sin_port);
  }
  ~RawListener() {
    if (fd >= 0) ::close(fd);
  }
  [[nodiscard]] int accept_one() const { return ::accept(fd, nullptr, nullptr); }
};

/// Closes `fd` with SO_LINGER{1,0} so the peer sees an RST (a fault), not
/// an orderly FIN (a signal).
void reset_close(int fd) {
  linger lg{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
  ::close(fd);
}

TEST(NetClient, AutoReconnectRedialsAfterConnectionReset) {
  RawListener listener;

  std::thread server([&listener] {
    // Connection 1: die abruptly without reading anything.
    const int c1 = listener.accept_one();
    ASSERT_GE(c1, 0);
    reset_close(c1);
    // Connection 2 (the redial): consume one full request frame, answer
    // it, then close cleanly.
    const int c2 = listener.accept_one();
    ASSERT_GE(c2, 0);
    FrameReader r;
    FrameView f;
    while (!r.next_frame(f)) {
      std::uint8_t* tail = r.writable_tail(4096);
      const ssize_t n = ::read(c2, tail, 4096);
      ASSERT_GT(n, 0);
      r.commit(static_cast<std::size_t>(n));
    }
    const RequestHeader req = RequestHeader::decode(f.data);
    ResponseHeader resp;
    resp.id = req.id;
    resp.status = Status::Ok;
    std::vector<std::uint8_t> out(kLenPrefixBytes + kResponseHeaderBytes);
    put_u32(out.data(), kResponseHeaderBytes);
    resp.encode(out.data() + kLenPrefixBytes);
    ASSERT_EQ(::send(c2, out.data(), out.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(out.size()));
    ::close(c2);
  });

  Client c;
  c.connect("127.0.0.1", listener.port);
  c.set_auto_reconnect(true, /*max_attempts=*/16, /*base_backoff_ms=*/1,
                       /*max_backoff_ms=*/20);

  RequestHeader h;
  h.id = 7;
  // The RST may not have surfaced locally when the first send runs (the
  // kernel accepts the bytes, the reset lands later), so keep re-flushing
  // the same frame until a send trips over the dead connection and the
  // redial succeeds.  flush() restarts the frame-aligned buffer from byte
  // 0 after reconnecting, so the request reaches connection 2 intact.
  for (int attempt = 0; c.reconnects() == 0 && attempt < 200; ++attempt) {
    c.enqueue(h, "ping", 4);
    c.flush();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(c.reconnects(), 1u);

  Client::Response resp;
  ASSERT_TRUE(c.read_response(resp));
  EXPECT_EQ(resp.header.id, 7u);
  EXPECT_EQ(resp.header.status, Status::Ok);

  server.join();
  c.close();
}

TEST(NetClient, OrderlyServerCloseIsEofNotAReconnect) {
  RawListener listener;
  std::thread server([&listener] {
    const int c1 = listener.accept_one();
    ASSERT_GE(c1, 0);
    ::close(c1);  // graceful FIN: a deliberate shutdown signal
  });

  Client c;
  c.connect("127.0.0.1", listener.port);
  c.set_auto_reconnect(true);
  Client::Response resp;
  // EOF must surface as `false` — never a redial loop — even with
  // auto-reconnect armed: a server draining connections on purpose would
  // otherwise fight clients dialing straight back in.
  EXPECT_FALSE(c.read_response(resp));
  EXPECT_EQ(c.reconnects(), 0u);
  server.join();
}

// --- backpressure, reaping and chaos -------------------------------------

/// Polls `pred` for up to `deadline_ms`; returns whether it ever held.
template <typename Pred>
bool eventually(Pred pred, int deadline_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(NetBackpressure, SlowConsumerIsClosedAtTheOutqByteCap) {
  // A tiny outbound cap plus a client that sends large echo requests and
  // never reads: once the socket buffer is full, completed responses pile
  // up in the connection's outbound queue until the cap trips and the
  // server closes the connection orderly instead of buffering without
  // bound.
  serve::ServerOptions so;
  so.runtime.workers = 2;
  so.epoch_ms = 0.0;
  serve::Server srv(so);
  serve::RequestClassConfig cfg;
  cfg.name = "echo";
  cfg.max_in_flight = 4096;
  const auto cls = srv.register_class(cfg);
  NetServer net(srv, NetServerOptions{.port = 0,
                                      .pollers = 1,
                                      .max_outq_bytes = 64u << 10});
  net.register_kernel(0, {.fn = reverse_kernel, .significance = 1.0});
  net.start();

  Client c;
  c.connect("127.0.0.1", net.port());
  const std::vector<std::uint8_t> payload(32u << 10, 0xAB);  // 32 KiB echo
  for (std::uint32_t i = 0; i < 64; ++i) {
    RequestHeader h;
    h.id = i;
    h.tenant = serve::kDefaultTenant;
    h.cls = cls;
    h.kernel = 0;
    c.enqueue(h, payload.data(), payload.size());
    try {
      c.flush();
      // ... and never read a single response.
    } catch (const std::exception&) {
      break;  // the server already killed us mid-burst: cap proven
    }
  }

  EXPECT_TRUE(eventually([&] { return net.counters().slow_closed >= 1; }))
      << "slow consumer was never closed; slow_closed="
      << net.counters().slow_closed;

  c.close();
  srv.close();
  net.stop();
  // Everything the serve tier admitted still resolved (responses to the
  // dead connection are absorbed by the closed shell, not leaked).
  const auto r = srv.class_report(cls);
  EXPECT_EQ(r.served(), r.submitted);
  EXPECT_EQ(r.in_flight, 0u);
}

TEST(NetBackpressure, IdleConnectionsAreReapedActiveOnesSurvive) {
  serve::ServerOptions so;
  so.runtime.workers = 2;
  so.epoch_ms = 0.0;
  serve::Server srv(so);
  serve::RequestClassConfig cfg;
  cfg.name = "echo";
  const auto cls = srv.register_class(cfg);
  NetServer net(srv, NetServerOptions{.port = 0,
                                      .pollers = 1,
                                      .idle_timeout_ms = 100});
  net.register_kernel(0, {.fn = reverse_kernel, .significance = 1.0});
  net.start();

  // The idle victim: connects and then says nothing.
  Client idle;
  idle.connect("127.0.0.1", net.port());

  // The active control: keeps a request in flight the whole time the
  // reaper is hunting, and must never be reaped.
  Client active;
  active.connect("127.0.0.1", net.port());
  std::uint32_t id = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (net.counters().idle_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    RequestHeader h;
    h.id = id++;
    h.tenant = serve::kDefaultTenant;
    h.cls = cls;
    h.kernel = 0;
    active.enqueue(h, "ping", 4);
    active.flush();
    Client::Response resp;
    ASSERT_TRUE(active.read_response(resp)) << "active connection was reaped";
    EXPECT_EQ(resp.header.status, Status::Ok);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(net.counters().idle_closed, 1u);

  // The idle client's socket is dead: reads see EOF/reset, not silence.
  Client::Response resp;
  EXPECT_FALSE(idle.read_response(resp));

  active.close();
  idle.close();
  srv.close();
  net.stop();
}

TEST(NetChaos, RstStormDrivesReconnectsAndConservationStaysExact) {
#if !SIGRT_FAULT_INJECTION
  GTEST_SKIP() << "fault injection compiled out";
#else
  // Injected TCP resets (real RST via SO_LINGER{1,0}) plus 1-byte short
  // writes on the server's send path.  The client auto-reconnects through
  // the storm; the serve tier must resolve every request it admitted —
  // connection-level faults shred sockets, never accounting.
  Loopback lb;
  sigrt::fault::FaultPlan plan;
  // CI chaos matrix: SIGRT_CHAOS_SEED perturbs the plan so each job in the
  // seed sweep shreds a different deterministic subset of the connections.
  plan.seed = 0x57083;
  if (const char* s = std::getenv("SIGRT_CHAOS_SEED")) {
    plan.seed ^= std::strtoull(s, nullptr, 10) * 0x9E3779B97F4A7C15ull;
  }
  plan.with(sigrt::fault::Site::ConnReset, 0.02)
      .with(sigrt::fault::Site::ConnShortWrite, 0.2);
  sigrt::fault::arm(plan);

  Client c;
  c.connect("127.0.0.1", lb.net->port());
  c.set_auto_reconnect(true, /*max_attempts=*/64, /*base_backoff_ms=*/1,
                       /*max_backoff_ms=*/10);

  // A reset can land after the request was delivered but before its
  // response: read_response() then redials and waits on a connection that
  // owes it nothing.  The receive timeout is the client-side liveness
  // backstop — a timed-out read counts the response as lost to the storm.
  c.set_receive_timeout_ms(1000);

  constexpr std::uint32_t kN = 300;
  std::uint32_t delivered = 0;
  std::uint32_t lost = 0;
  for (std::uint32_t i = 0; i < kN; ++i) {
    RequestHeader h;
    h.id = i;
    h.tenant = serve::kDefaultTenant;
    h.cls = lb.cls;
    h.kernel = 0;
    const std::string payload = "storm-" + std::to_string(i);
    c.enqueue(h, payload.data(), payload.size());
    try {
      c.flush();  // redials through resets; resends the frame intact
    } catch (const std::exception&) {
      ++lost;  // redial budget exhausted mid-storm: give up on this id
      continue;
    }
    Client::Response resp;
    bool got = false;
    try {
      got = c.read_response(resp);
    } catch (const std::system_error&) {
      got = false;  // receive timeout: the response died with its conn
    }
    if (!got) {
      // The answer is gone (conn died between request delivery and the
      // response, or redial landed mid-wait); the next flush() recovers.
      ++lost;
      continue;
    }
    ++delivered;
    std::string want = payload;
    std::reverse(want.begin(), want.end());
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(resp.payload.data()),
                          resp.payload.size()),
              want)
        << "id " << resp.header.id;
  }
  const auto storm_trace = sigrt::fault::trace();
  sigrt::fault::disarm();

  // The storm actually stormed, and the client actually recovered.
  EXPECT_GT(storm_trace.fires[static_cast<unsigned>(
                sigrt::fault::Site::ConnReset)],
            0u);
  EXPECT_GE(c.reconnects(), 1u);
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(delivered + lost, kN);

  // Calm after the storm: the same client serves traffic again.
  RequestHeader h;
  h.id = kN;
  h.tenant = serve::kDefaultTenant;
  h.cls = lb.cls;
  h.kernel = 0;
  c.enqueue(h, "after", 5);
  c.flush();
  Client::Response resp;
  ASSERT_TRUE(c.read_response(resp));
  EXPECT_EQ(resp.header.status, Status::Ok);

  c.close();
  lb.shutdown();
  // Conservation: every admitted request resolved exactly once despite the
  // RST storm — nothing leaked, nothing double-counted.
  const auto r = lb.srv->class_report(lb.cls);
  EXPECT_EQ(r.served(), r.submitted);
  EXPECT_EQ(r.in_flight, 0u);
  const NetServer::Counters nc = lb.net->counters();
  EXPECT_LE(nc.responses, nc.requests);
#endif
}

TEST(NetLoopback, StartRefusesAnInlineRuntime) {
  // workers == 0 would execute request bodies on the poller threads,
  // violating the pollers-never-execute contract.
  serve::ServerOptions so;
  so.runtime.workers = 0;
  serve::Server srv(so);
  NetServer net(srv, {.port = 0});
  EXPECT_THROW(net.start(), std::logic_error);
  srv.close();
  net.stop();
}

}  // namespace
