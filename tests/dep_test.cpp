// Unit tests for the block-level dependence tracker (BDDT-style substrate).
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "dep/block_tracker.hpp"

namespace {

using sigrt::dep::Access;
using sigrt::dep::BlockTracker;
using sigrt::dep::Mode;
using sigrt::dep::Node;

// The tracker circulates raw Node*; these tests own the nodes (shared_ptr
// for convenience) and rely on the default no-op lifetime hooks.
std::shared_ptr<Node> make_node() { return std::make_shared<Node>(); }

std::size_t reg(BlockTracker& t, const std::shared_ptr<Node>& n,
                std::initializer_list<Access> accesses) {
  std::vector<Access> v(accesses);
  return t.register_node(n.get(), v);
}

// Out-param complete() wrapped back into a value for terse assertions.
std::vector<Node*> complete(BlockTracker& t, Node& n) {
  std::vector<Node*> out;
  t.complete(n, out);
  return out;
}

TEST(BlockTracker, FirstWriterHasNoDependencies) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto w = make_node();
  EXPECT_EQ(reg(t, w, {sigrt::dep::out(data.data(), data.size())}), 0u);
}

TEST(BlockTracker, ReadAfterWriteCreatesEdge) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto w = make_node();
  auto r = make_node();
  reg(t, w, {sigrt::dep::out(data.data(), data.size())});
  EXPECT_EQ(reg(t, r, {sigrt::dep::in(data.data(), data.size())}), 1u);
}

TEST(BlockTracker, WriteAfterWriteCreatesEdge) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto w1 = make_node();
  auto w2 = make_node();
  reg(t, w1, {sigrt::dep::out(data.data(), data.size())});
  EXPECT_EQ(reg(t, w2, {sigrt::dep::out(data.data(), data.size())}), 1u);
}

TEST(BlockTracker, WriteAfterReadsDependsOnAllReaders) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto r1 = make_node();
  auto r2 = make_node();
  auto w = make_node();
  reg(t, r1, {sigrt::dep::in(data.data(), data.size())});
  reg(t, r2, {sigrt::dep::in(data.data(), data.size())});
  EXPECT_EQ(reg(t, w, {sigrt::dep::out(data.data(), data.size())}), 2u);
}

TEST(BlockTracker, ReadersDoNotDependOnEachOther) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto r1 = make_node();
  auto r2 = make_node();
  reg(t, r1, {sigrt::dep::in(data.data(), data.size())});
  EXPECT_EQ(reg(t, r2, {sigrt::dep::in(data.data(), data.size())}), 0u);
}

TEST(BlockTracker, CompletedPredecessorAddsNoEdge) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto w = make_node();
  auto r = make_node();
  reg(t, w, {sigrt::dep::out(data.data(), data.size())});
  (void)complete(t, *w);
  EXPECT_EQ(reg(t, r, {sigrt::dep::in(data.data(), data.size())}), 0u);
}

TEST(BlockTracker, CompleteReturnsDependents) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto w = make_node();
  auto r1 = make_node();
  auto r2 = make_node();
  reg(t, w, {sigrt::dep::out(data.data(), data.size())});
  reg(t, r1, {sigrt::dep::in(data.data(), data.size())});
  reg(t, r2, {sigrt::dep::in(data.data(), data.size())});
  auto deps = complete(t, *w);
  EXPECT_EQ(deps.size(), 2u);
}

TEST(BlockTracker, MultiBlockAccessDeduplicatesEdges) {
  BlockTracker t(64);
  // 1024 bytes spans 16+ blocks of 64B; still exactly one edge to the writer.
  alignas(64) std::array<int, 256> data{};
  auto w = make_node();
  auto r = make_node();
  reg(t, w, {sigrt::dep::out(data.data(), data.size())});
  EXPECT_EQ(reg(t, r, {sigrt::dep::in(data.data(), data.size())}), 1u);
  EXPECT_EQ(complete(t, *w).size(), 1u);
}

TEST(BlockTracker, DisjointBlocksAreIndependent) {
  BlockTracker t(64);
  // Two regions far apart: writer of one never blocks reader of the other.
  alignas(64) std::array<int, 16> a{};
  alignas(64) std::array<int, 16> b{};
  auto w = make_node();
  auto r = make_node();
  reg(t, w, {sigrt::dep::out(a.data(), a.size())});
  EXPECT_EQ(reg(t, r, {sigrt::dep::in(b.data(), b.size())}), 0u);
}

TEST(BlockTracker, InOutActsAsReadAndWrite) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto w1 = make_node();
  auto rw = make_node();
  auto r = make_node();
  reg(t, w1, {sigrt::dep::out(data.data(), data.size())});
  EXPECT_EQ(reg(t, rw, {sigrt::dep::inout(data.data(), data.size())}), 1u);
  // Subsequent reader depends on the inout node (the new last writer).
  EXPECT_EQ(reg(t, r, {sigrt::dep::in(data.data(), data.size())}), 1u);
  EXPECT_EQ(complete(t, *rw).size(), 1u);
}

TEST(BlockTracker, SelfOverlapWithinOneRegistrationIsNotADependency) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto n = make_node();
  // Reads and writes the same range in one registration: no self edge.
  EXPECT_EQ(reg(t, n,
                {sigrt::dep::in(data.data(), data.size()),
                 sigrt::dep::out(data.data(), data.size())}),
            0u);
}

TEST(BlockTracker, EmptyAndNullAccessesIgnored) {
  BlockTracker t(64);
  auto n = make_node();
  EXPECT_EQ(reg(t, n, {Access{nullptr, 128, Mode::Out}, Access{&t, 0, Mode::In}}),
            0u);
}

TEST(BlockTracker, PendingWritersFindsUnfinishedWriter) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto w = make_node();
  reg(t, w, {sigrt::dep::out(data.data(), data.size())});
  auto pending = t.pending_writers(data.data(), sizeof(data));
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0], w.get());
  (void)complete(t, *w);
  EXPECT_TRUE(t.pending_writers(data.data(), sizeof(data)).empty());
}

TEST(BlockTracker, ResetForgetsHistory) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  auto w = make_node();
  auto r = make_node();
  reg(t, w, {sigrt::dep::out(data.data(), data.size())});
  t.reset();
  EXPECT_EQ(reg(t, r, {sigrt::dep::in(data.data(), data.size())}), 0u);
}

TEST(BlockTracker, StatsCountEdgesAndBlocks) {
  BlockTracker t(64);
  alignas(64) std::array<int, 32> data{};  // 128 bytes -> 2 blocks
  auto w = make_node();
  auto r = make_node();
  reg(t, w, {sigrt::dep::out(data.data(), data.size())});
  reg(t, r, {sigrt::dep::in(data.data(), data.size())});
  const auto s = t.stats();
  EXPECT_EQ(s.registered_nodes, 2u);
  EXPECT_EQ(s.edges, 1u);
  EXPECT_GE(s.blocks_touched, 2u);
}

TEST(BlockTracker, SubBlockRangesConflictConservatively) {
  BlockTracker t(1024);
  // Two 8-byte writes in the same 1 KiB block: conservative WAW edge.
  alignas(1024) std::array<double, 4> data{};
  auto w1 = make_node();
  auto w2 = make_node();
  reg(t, w1, {sigrt::dep::out(&data[0])});
  EXPECT_EQ(reg(t, w2, {sigrt::dep::out(&data[1])}), 1u);
}

TEST(BlockTracker, ChainOfWritersLinksPairwise) {
  BlockTracker t(64);
  alignas(64) std::array<int, 16> data{};
  std::vector<std::shared_ptr<Node>> nodes;
  for (int i = 0; i < 5; ++i) {
    auto n = make_node();
    const std::size_t deps = reg(t, n, {sigrt::dep::out(data.data(), data.size())});
    EXPECT_EQ(deps, i == 0 ? 0u : 1u);
    nodes.push_back(n);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(complete(t, *nodes[static_cast<std::size_t>(i)]).size(), 1u);
  }
}

}  // namespace
