// Scheduler tests: round-robin distribution, FIFO order, stealing, inline
// mode, busy-time accounting — over the pooled, intrusively refcounted task
// lifecycle (tasks come from make_task(), not the heap).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "scheduler_test_util.hpp"

namespace {

using sigrt::Scheduler;
using sigrt::Task;
using sigrt::test::exec_thunk;
using sigrt::test::make_ready_task;

TEST(Scheduler, InlineModeExecutesImmediately) {
  int runs = 0;
  auto fn = [&](Task& t, unsigned) {
    t.accurate();
    ++runs;
  };
  Scheduler s(0, 0, true, &fn, exec_thunk(fn));
  EXPECT_TRUE(s.inline_mode());
  int x = 0;
  s.enqueue(make_ready_task([&] { x = 1; }));
  EXPECT_EQ(x, 1);
  EXPECT_EQ(runs, 1);
}

TEST(Scheduler, InlineModeDrainsCascades) {
  // A task enqueued from within execution must also run before enqueue
  // returns to the outermost caller.
  Scheduler* sp = nullptr;
  std::vector<int> order;
  auto fn = [&](Task& t, unsigned) { t.accurate(); };
  Scheduler s(0, 0, true, &fn, exec_thunk(fn));
  sp = &s;
  s.enqueue(make_ready_task([&] {
    order.push_back(1);
    sp->enqueue(make_ready_task([&] { order.push_back(2); }));
  }));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Scheduler, ThreadedExecutesEverything) {
  std::atomic<int> runs{0};
  {
    auto fn = [&](Task& t, unsigned) {
      t.accurate();
      runs.fetch_add(1);
    };
    Scheduler s(4, 0, true, &fn, exec_thunk(fn));
    for (int i = 0; i < 1000; ++i) {
      s.enqueue(make_ready_task([] {}));
    }
    while (runs.load() < 1000) std::this_thread::yield();
  }
  EXPECT_EQ(runs.load(), 1000);
}

TEST(Scheduler, WorkerIndexIsWithinRange) {
  std::atomic<bool> ok{true};
  std::atomic<int> runs{0};
  {
    auto fn = [&](Task& t, unsigned w) {
      if (w >= 3) ok.store(false);
      t.accurate();
      runs.fetch_add(1);
    };
    Scheduler s(3, 0, true, &fn, exec_thunk(fn));
    for (int i = 0; i < 100; ++i) s.enqueue(make_ready_task([] {}));
    while (runs.load() < 100) std::this_thread::yield();
  }
  EXPECT_TRUE(ok.load());
}

TEST(Scheduler, SingleWorkerPreservesFifoOrder) {
  std::vector<int> order;
  std::mutex m;
  std::atomic<int> runs{0};
  {
    auto fn = [&](Task& t, unsigned) {
      t.accurate();
      runs.fetch_add(1);
    };
    Scheduler s(1, 0, false, &fn, exec_thunk(fn));
    for (int i = 0; i < 50; ++i) {
      s.enqueue(make_ready_task([&, i] {
        std::lock_guard lock(m);
        order.push_back(i);
      }));
    }
    while (runs.load() < 50) std::this_thread::yield();
  }
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, StealingMovesWorkOffABlockedWorker) {
  // Round-robin parks tasks on both workers; worker 0 blocks on the first
  // task until the "victim" tasks (parked on its own queue) are executed by
  // the thief.  Completion therefore proves stealing works.
  std::atomic<int> done{0};
  std::atomic<bool> release{false};
  {
    auto fn = [&](Task& t, unsigned) {
      t.accurate();
      done.fetch_add(1);
    };
    Scheduler s(2, 0, true, &fn, exec_thunk(fn));
    // Blocker lands on worker 0 (round-robin starts there).
    s.enqueue(make_ready_task([&] {
      while (!release.load()) std::this_thread::yield();
    }));
    // These alternate 1,0,1,0...; the ones on queue 0 sit behind the
    // blocker and must be stolen by worker 1.
    for (int i = 0; i < 10; ++i) s.enqueue(make_ready_task([] {}));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (done.load() < 10 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_EQ(done.load(), 10);
    EXPECT_GE(s.stats().steals, 1u);
    release.store(true);
    while (done.load() < 11) std::this_thread::yield();
  }
}

TEST(Scheduler, BusyTimeAccumulates) {
  std::atomic<int> runs{0};
  auto fn = [&](Task& t, unsigned) {
    t.accurate();
    runs.fetch_add(1);
  };
  Scheduler s(2, 0, true, &fn, exec_thunk(fn));
  for (int i = 0; i < 8; ++i) {
    s.enqueue(make_ready_task([] {
      volatile double x = 1.0;
      for (int j = 0; j < 400000; ++j) x = x * 1.0000001 + 0.1;
    }));
  }
  while (runs.load() < 8) std::this_thread::yield();
  EXPECT_GT(s.busy_ns(), 0);
  EXPECT_EQ(s.stats().executed, 8u);
}

TEST(Scheduler, InlineBusyTimeCounted) {
  auto fn = [&](Task& t, unsigned) { t.accurate(); };
  Scheduler s(0, 0, true, &fn, exec_thunk(fn));
  s.enqueue(make_ready_task([] {
    volatile double x = 1.0;
    for (int j = 0; j < 400000; ++j) x = x * 1.0000001 + 0.1;
  }));
  EXPECT_GT(s.busy_ns(), 0);
  EXPECT_EQ(s.stats().executed, 1u);
}

TEST(Scheduler, CleanShutdownWithEmptyQueues) {
  for (int i = 0; i < 10; ++i) {
    Scheduler s(4, 0, true, nullptr,
                [](void*, Task& t, unsigned) { t.accurate(); });
    // Destroy immediately: workers must exit without having run anything.
  }
  SUCCEED();
}

}  // namespace
