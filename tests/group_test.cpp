// TaskGroup accounting tests: counters, reports, inversion metric, ratio
// retargeting, reset.
#include <gtest/gtest.h>

#include <thread>

#include "core/group.hpp"

namespace {

using sigrt::ExecutionKind;
using sigrt::GroupReport;
using sigrt::TaskGroup;

TEST(TaskGroup, CountsOutcomes) {
  TaskGroup g(1, "g", 0.5, true);
  g.on_spawn();
  g.on_spawn();
  g.on_spawn();
  g.on_complete(ExecutionKind::Accurate, 0.9f, 0.5, false);
  g.on_complete(ExecutionKind::Approximate, 0.3f, 0.5, false);
  g.on_complete(ExecutionKind::Dropped, 0.1f, 0.5, false);
  const GroupReport r = g.report();
  EXPECT_EQ(r.spawned, 3u);
  EXPECT_EQ(r.accurate, 1u);
  EXPECT_EQ(r.approximate, 1u);
  EXPECT_EQ(r.dropped, 1u);
}

TEST(TaskGroup, ProvidedRatio) {
  TaskGroup g(1, "g", 0.5, true);
  for (int i = 0; i < 4; ++i) g.on_spawn();
  g.on_complete(ExecutionKind::Accurate, 0.9f, 0.5, false);
  g.on_complete(ExecutionKind::Accurate, 0.8f, 0.5, false);
  g.on_complete(ExecutionKind::Approximate, 0.2f, 0.5, false);
  g.on_complete(ExecutionKind::Approximate, 0.1f, 0.5, false);
  EXPECT_DOUBLE_EQ(g.report().provided_ratio(), 0.5);
  EXPECT_NEAR(g.report().ratio_diff(), 0.0, 1e-12);
}

TEST(TaskGroup, RatioDiffTracksMeanRequested) {
  TaskGroup g(1, "g", 0.8, true);
  g.on_spawn();
  g.on_spawn();
  // Requested 0.8 at classification time for both; both approximated.
  g.on_complete(ExecutionKind::Approximate, 0.5f, 0.8, false);
  g.on_complete(ExecutionKind::Approximate, 0.5f, 0.8, false);
  EXPECT_NEAR(g.report().ratio_diff(), 0.8, 1e-12);
}

TEST(TaskGroup, MeanRequestedHandlesRetargeting) {
  // Fluidanimate pattern: half the tasks at ratio 1.0, half at 0.0.
  TaskGroup g(1, "fluid", 0.0, true);
  for (int i = 0; i < 4; ++i) g.on_spawn();
  g.on_complete(ExecutionKind::Accurate, 0.5f, 1.0, false);
  g.on_complete(ExecutionKind::Accurate, 0.5f, 1.0, false);
  g.on_complete(ExecutionKind::Approximate, 0.5f, 0.0, false);
  g.on_complete(ExecutionKind::Approximate, 0.5f, 0.0, false);
  const GroupReport r = g.report();
  EXPECT_DOUBLE_EQ(r.mean_requested_ratio, 0.5);
  EXPECT_DOUBLE_EQ(r.provided_ratio(), 0.5);
  EXPECT_NEAR(r.ratio_diff(), 0.0, 1e-12);
}

TEST(TaskGroup, InversionDetected) {
  TaskGroup g(1, "g", 0.5, true);
  for (int i = 0; i < 4; ++i) g.on_spawn();
  // A 0.2-significance task ran accurately while a 0.8 task was
  // approximated: the 0.8 task is inversed.
  g.on_complete(ExecutionKind::Accurate, 0.2f, 0.5, false);
  g.on_complete(ExecutionKind::Approximate, 0.8f, 0.5, false);
  g.on_complete(ExecutionKind::Accurate, 0.9f, 0.5, false);
  g.on_complete(ExecutionKind::Approximate, 0.1f, 0.5, false);
  EXPECT_DOUBLE_EQ(g.report().inversion_fraction, 0.25);
}

TEST(TaskGroup, NoInversionWhenOrderRespected) {
  TaskGroup g(1, "g", 0.5, true);
  for (int i = 0; i < 4; ++i) g.on_spawn();
  g.on_complete(ExecutionKind::Accurate, 0.9f, 0.5, false);
  g.on_complete(ExecutionKind::Accurate, 0.8f, 0.5, false);
  g.on_complete(ExecutionKind::Approximate, 0.2f, 0.5, false);
  g.on_complete(ExecutionKind::Dropped, 0.1f, 0.5, false);
  EXPECT_DOUBLE_EQ(g.report().inversion_fraction, 0.0);
}

TEST(TaskGroup, EqualSignificanceIsNeverAnInversion) {
  TaskGroup g(1, "g", 0.5, true);
  for (int i = 0; i < 2; ++i) g.on_spawn();
  g.on_complete(ExecutionKind::Accurate, 0.5f, 0.5, false);
  g.on_complete(ExecutionKind::Approximate, 0.5f, 0.5, false);
  EXPECT_DOUBLE_EQ(g.report().inversion_fraction, 0.0);
}

TEST(TaskGroup, InternalTasksExcludedFromStats) {
  TaskGroup g(1, "g", 1.0, true);
  g.on_spawn();
  g.on_complete(ExecutionKind::Accurate, 1.0f, 1.0, /*internal=*/true);
  const GroupReport r = g.report();
  EXPECT_EQ(r.accurate, 0u);
  EXPECT_EQ(r.spawned, 1u);  // spawn still tracked for the barrier
}

TEST(TaskGroup, WaitBlocksUntilPendingZero) {
  TaskGroup g(1, "g", 1.0, true);
  g.on_spawn();
  std::thread completer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    g.on_complete(ExecutionKind::Accurate, 1.0f, 1.0, false);
  });
  g.wait();
  EXPECT_EQ(g.pending(), 0u);
  completer.join();
}

TEST(TaskGroup, WaitReturnsImmediatelyWhenIdle) {
  TaskGroup g(1, "g", 1.0, true);
  g.wait();  // must not block
  SUCCEED();
}

TEST(TaskGroup, SetRatioVisible) {
  TaskGroup g(1, "g", 0.3, true);
  EXPECT_DOUBLE_EQ(g.ratio(), 0.3);
  g.set_ratio(0.9);
  EXPECT_DOUBLE_EQ(g.ratio(), 0.9);
}

TEST(TaskGroup, ResetStatsClearsCountersKeepsRatio) {
  TaskGroup g(1, "g", 0.7, true);
  g.on_spawn();
  g.on_complete(ExecutionKind::Accurate, 0.5f, 0.7, false);
  g.reset_stats();
  const GroupReport r = g.report();
  EXPECT_EQ(r.accurate, 0u);
  EXPECT_EQ(r.spawned, 0u);
  EXPECT_DOUBLE_EQ(g.ratio(), 0.7);
}

TEST(TaskGroup, LogDisabledStillCounts) {
  TaskGroup g(1, "g", 0.5, /*record_log=*/false);
  g.on_spawn();
  g.on_complete(ExecutionKind::Accurate, 0.5f, 0.5, false);
  const GroupReport r = g.report();
  EXPECT_EQ(r.accurate, 1u);
  EXPECT_DOUBLE_EQ(r.inversion_fraction, 0.0);
}

TEST(TaskGroup, EmptyReportDefaults) {
  TaskGroup g(3, "empty", 0.4, true);
  const GroupReport r = g.report();
  EXPECT_EQ(r.id, 3u);
  EXPECT_EQ(r.name, "empty");
  EXPECT_DOUBLE_EQ(r.provided_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(r.requested_ratio, 0.4);
}

}  // namespace
