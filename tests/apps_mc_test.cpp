// Monte Carlo PDE benchmark tests.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/mc.hpp"

namespace {

using namespace sigrt::apps;

mc::Options small_options(Variant v, Degree d) {
  mc::Options o;
  o.points = 32;
  o.walks = 300;
  o.common.variant = v;
  o.common.degree = d;
  o.common.workers = 2;
  return o;
}

TEST(Mc, RatiosMatchTable1) {
  EXPECT_DOUBLE_EQ(mc::ratio_for(Degree::Mild), 1.0);
  EXPECT_DOUBLE_EQ(mc::ratio_for(Degree::Medium), 0.80);
  EXPECT_DOUBLE_EQ(mc::ratio_for(Degree::Aggressive), 0.50);
}

TEST(Mc, BoundaryConditionIsHarmonic) {
  // Finite-difference Laplacian of g must vanish.
  const double h = 1e-4;
  for (const auto [x, y] : {std::pair{0.3, 0.4}, {0.7, 0.2}, {0.5, 0.9}}) {
    const double lap = (mc::boundary_value(x + h, y) + mc::boundary_value(x - h, y) +
                        mc::boundary_value(x, y + h) + mc::boundary_value(x, y - h) -
                        4.0 * mc::boundary_value(x, y)) /
                       (h * h);
    EXPECT_NEAR(lap, 0.0, 1e-4);
  }
}

TEST(Mc, ReferenceApproximatesHarmonicSolution) {
  // For harmonic g, the walk estimate converges to g at the start point.
  auto o = small_options(Variant::Accurate, Degree::Mild);
  o.points = 16;
  o.walks = 3000;
  const auto ref = mc::reference(o);
  constexpr double kPi = 3.14159265358979323846;
  for (std::size_t p = 0; p < 16; ++p) {
    const double theta = 2.0 * kPi * static_cast<double>(p) / 16.0;
    const double x = 0.5 + 0.22 * std::cos(theta);
    const double y = 0.5 + 0.22 * std::sin(theta);
    EXPECT_NEAR(ref[p], mc::boundary_value(x, y), 0.08) << "point " << p;
  }
}

TEST(Mc, ReferenceIsDeterministic) {
  const auto o = small_options(Variant::Accurate, Degree::Mild);
  EXPECT_EQ(mc::reference(o), mc::reference(o));
}

TEST(Mc, MildDegreeIsFullyAccurate) {
  // Table 1: MC Mild keeps 100% of tasks accurate.
  const auto r = mc::run(small_options(Variant::GTBMaxBuffer, Degree::Mild));
  EXPECT_EQ(r.tasks_approximate, 0u);
  EXPECT_DOUBLE_EQ(r.quality, 0.0);
}

TEST(Mc, AggressiveStaysGraceful) {
  const auto r = mc::run(small_options(Variant::GTBMaxBuffer, Degree::Aggressive));
  EXPECT_GT(r.tasks_approximate, 0u);
  EXPECT_GT(r.quality, 0.0);
  EXPECT_LT(r.quality, 0.35);  // approximate walks still estimate u
}

TEST(Mc, QualityDegradesMonotonicallyWithDegree) {
  const auto mild = mc::run(small_options(Variant::GTBMaxBuffer, Degree::Mild));
  const auto med = mc::run(small_options(Variant::GTBMaxBuffer, Degree::Medium));
  const auto aggr =
      mc::run(small_options(Variant::GTBMaxBuffer, Degree::Aggressive));
  EXPECT_LE(mild.quality, med.quality);
  EXPECT_LE(med.quality, aggr.quality);
}

TEST(Mc, AccurateTasksMatchReferenceExactly) {
  // Seeded per-point streams: points executed accurately under any policy
  // produce bit-identical estimates to the reference.
  auto o = small_options(Variant::GTBMaxBuffer, Degree::Aggressive);
  std::vector<double> est;
  mc::run(o, &est);
  const auto ref = mc::reference(o);
  int exact = 0;
  for (std::size_t p = 0; p < est.size(); ++p) exact += est[p] == ref[p];
  // Ratio 0.5 of 32 points: at least 16 exact matches.
  EXPECT_GE(exact, 16);
}

TEST(Mc, PerforationKeepsAllPointsWithFewerWalks) {
  // Walk-loop perforation: every point task survives, each with
  // ratio*walks accurate walks — graceful quality, proportional work.
  auto o = small_options(Variant::Perforated, Degree::Aggressive);
  std::vector<double> est;
  const auto r = mc::run(o, &est);
  EXPECT_EQ(r.tasks_total, o.points);
  for (const double v : est) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(r.quality, 0.0);   // fewer walks => noisier estimates
  EXPECT_LT(r.quality, 0.8);   // still graceful (rel.err inflates near zero-valued points)
}

TEST(Mc, LqhRunsKeepQualityBounded) {
  const auto r = mc::run(small_options(Variant::LQH, Degree::Medium));
  EXPECT_LT(r.quality, 0.35);
}

}  // namespace
