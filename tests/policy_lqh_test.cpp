// Local Queue History policy tests (§3.4).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/sigrt.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig lqh_config(unsigned workers = 0) {
  RuntimeConfig c;
  c.workers = workers;  // 0 => single inline history: deterministic
  c.policy = PolicyKind::LQH;
  return c;
}

std::vector<bool> classify(Runtime& rt, sigrt::GroupId g, std::size_t n,
                           const std::function<double(std::size_t)>& sig) {
  std::vector<bool> accurate(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    rt.spawn(sigrt::task([&accurate, i] { accurate[i] = true; })
                 .approx([] {})
                 .significance(sig(i))
                 .group(g));
  }
  rt.wait_group(g);
  return accurate;
}

TEST(LqhPolicy, ConvergesToRatioOnUniformSignificance) {
  // The degenerate case the raw paper formula cannot split (see the header
  // comment of policy_lqh.hpp): all tasks share one level.
  for (const double ratio : {0.2, 0.4, 0.6, 0.8}) {
    Runtime rt(lqh_config());
    const auto g = rt.create_group("g", ratio);
    const auto acc = classify(rt, g, 1000, [](std::size_t) { return 0.5; });
    const auto n_acc =
        static_cast<double>(std::count(acc.begin(), acc.end(), true));
    EXPECT_NEAR(n_acc / 1000.0, ratio, 0.02) << "ratio " << ratio;
  }
}

TEST(LqhPolicy, ConvergesToRatioOnMixedSignificance) {
  for (const double ratio : {0.35, 0.5, 0.8}) {
    Runtime rt(lqh_config());
    const auto g = rt.create_group("g", ratio);
    const auto acc = classify(rt, g, 2000, [](std::size_t i) {
      return static_cast<double>(i % 9 + 1) / 10.0;
    });
    const auto n_acc =
        static_cast<double>(std::count(acc.begin(), acc.end(), true));
    EXPECT_NEAR(n_acc / 2000.0, ratio, 0.03) << "ratio " << ratio;
  }
}

TEST(LqhPolicy, PrefersApproximatingLowSignificance) {
  Runtime rt(lqh_config());
  const auto g = rt.create_group("g", 0.5);
  const auto acc = classify(rt, g, 1800, [](std::size_t i) {
    return static_cast<double>(i % 9 + 1) / 10.0;
  });
  // Accuracy rate among the top third of significances must dominate the
  // rate among the bottom third.
  double low_acc = 0, low_n = 0, high_acc = 0, high_n = 0;
  for (std::size_t i = 0; i < acc.size(); ++i) {
    const int level = static_cast<int>(i % 9 + 1);
    if (level <= 3) {
      ++low_n;
      low_acc += acc[i];
    } else if (level >= 7) {
      ++high_n;
      high_acc += acc[i];
    }
  }
  EXPECT_GT(high_acc / high_n, 0.95);
  EXPECT_LT(low_acc / low_n, 0.15);
}

TEST(LqhPolicy, RatioZeroApproximatesEverything) {
  Runtime rt(lqh_config());
  const auto g = rt.create_group("g", 0.0);
  const auto acc = classify(rt, g, 100, [](std::size_t i) {
    return static_cast<double>(i % 9 + 1) / 10.0;
  });
  EXPECT_EQ(std::count(acc.begin(), acc.end(), true), 0);
}

TEST(LqhPolicy, RatioOneExecutesEverythingAccurately) {
  Runtime rt(lqh_config());
  const auto g = rt.create_group("g", 1.0);
  const auto acc = classify(rt, g, 100, [](std::size_t i) {
    return static_cast<double>(i % 9 + 1) / 10.0;
  });
  EXPECT_EQ(std::count(acc.begin(), acc.end(), true), 100);
}

TEST(LqhPolicy, SpecialSignificanceValuesBypassHistory) {
  Runtime rt(lqh_config());
  const auto g = rt.create_group("g", 0.5);
  std::vector<bool> acc(40, false);
  int approx_runs = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const double sig = i % 2 == 0 ? 1.0 : 0.0;
    rt.spawn(sigrt::task([&acc, i] { acc[i] = true; })
                 .approx([&approx_runs] { ++approx_runs; })
                 .significance(sig)
                 .group(g));
  }
  rt.wait_group(g);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(acc[i], i % 2 == 0);
  EXPECT_EQ(approx_runs, 20);
}

TEST(LqhPolicy, PerGroupHistoriesAreIndependent) {
  Runtime rt(lqh_config());
  const auto a = rt.create_group("a", 1.0);
  const auto b = rt.create_group("b", 0.0);
  int a_acc = 0;
  int b_acc = 0;
  for (int i = 0; i < 50; ++i) {
    rt.spawn(sigrt::task([&] { ++a_acc; }).approx([] {}).significance(0.5).group(a));
    rt.spawn(sigrt::task([&] { ++b_acc; }).approx([] {}).significance(0.5).group(b));
  }
  rt.wait_all();
  EXPECT_EQ(a_acc, 50);
  EXPECT_EQ(b_acc, 0);
}

TEST(LqhPolicy, ThreadedRunApproximatesRatioDespiteLocalViews) {
  // With several workers the histories are local (§3.4): the achieved ratio
  // deviates but stays close — the paper's Table 2 reports ppt-level error.
  Runtime rt(lqh_config(4));
  const auto g = rt.create_group("g", 0.5);
  std::atomic<int> acc{0};
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    rt.spawn(sigrt::task([&acc] { acc.fetch_add(1); })
                 .approx([] {})
                 .significance(static_cast<double>(i % 9 + 1) / 10.0)
                 .group(g));
  }
  rt.wait_group(g);
  EXPECT_NEAR(static_cast<double>(acc.load()) / n, 0.5, 0.08);
}

TEST(LqhPolicy, RetargetedRatioTakesEffectForLaterTasks) {
  // Fluidanimate's pattern: alternate ratio 1.0 / 0.0 between phases.
  Runtime rt(lqh_config());
  const auto g = rt.create_group("fluid", 1.0);
  int acc_phase1 = 0;
  int acc_phase2 = 0;
  for (int i = 0; i < 20; ++i) {
    rt.spawn(sigrt::task([&] { ++acc_phase1; }).approx([] {}).significance(0.5).group(g));
  }
  rt.wait_group(g);
  rt.set_ratio(g, 0.0);
  for (int i = 0; i < 20; ++i) {
    rt.spawn(sigrt::task([&] { ++acc_phase2; }).approx([] {}).significance(0.5).group(g));
  }
  rt.wait_group(g);
  EXPECT_EQ(acc_phase1, 20);
  EXPECT_EQ(acc_phase2, 0);
}

TEST(LqhPolicy, InversionsAreZeroForUniformSignificance) {
  // Table 2: Kmeans/Jacobi/Fluidanimate (uniform significance) show no
  // significance inversion under LQH.
  Runtime rt(lqh_config(4));
  const auto g = rt.create_group("g", 0.6);
  for (int i = 0; i < 500; ++i) {
    rt.spawn(sigrt::task([] {}).approx([] {}).significance(0.5).group(g));
  }
  rt.wait_group(g);
  EXPECT_DOUBLE_EQ(rt.group_report(g).inversion_fraction, 0.0);
}

TEST(LqhPolicy, HistoryAdaptsWhenDistributionShifts) {
  // Feed only low significances first, then only high ones: the high batch
  // must be (almost) entirely accurate because the history shows plenty of
  // lower-significance tasks covering the approximation budget.
  Runtime rt(lqh_config());
  const auto g = rt.create_group("g", 0.5);
  std::vector<bool> acc(400, false);
  for (std::size_t i = 0; i < 200; ++i) {
    rt.spawn(sigrt::task([&acc, i] { acc[i] = true; }).approx([] {}).significance(0.1).group(g));
  }
  for (std::size_t i = 200; i < 400; ++i) {
    rt.spawn(sigrt::task([&acc, i] { acc[i] = true; }).approx([] {}).significance(0.9).group(g));
  }
  rt.wait_group(g);
  const auto high_acc = std::count(acc.begin() + 200, acc.end(), true);
  EXPECT_GT(high_acc, 195);
}

}  // namespace
