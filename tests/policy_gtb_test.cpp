// Global Task Buffering policy tests (§3.3, Listing 4).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "core/sigrt.hpp"

namespace {

using sigrt::ExecutionKind;
using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig config(PolicyKind p, std::size_t buffer = 16) {
  RuntimeConfig c;
  c.workers = 0;
  c.policy = p;
  c.gtb_buffer = buffer;
  return c;
}

/// Spawns `n` tasks with significances sig(i) and returns, per index,
/// whether the task ran accurately.
std::vector<bool> classify(Runtime& rt, sigrt::GroupId g, std::size_t n,
                           const std::function<double(std::size_t)>& sig) {
  std::vector<bool> accurate(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    rt.spawn(sigrt::task([&accurate, i] { accurate[i] = true; })
                 .approx([] {})
                 .significance(sig(i))
                 .group(g));
  }
  rt.wait_group(g);
  return accurate;
}

TEST(GtbPolicy, MaxBufferSelectsExactlyTopRatioBySignificance) {
  Runtime rt(config(PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 0.3);
  // significance ascends with index: exactly the last 30% must be accurate.
  const auto acc = classify(rt, g, 100, [](std::size_t i) {
    return 0.01 + 0.009 * static_cast<double>(i);
  });
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(acc[i], i >= 70) << "index " << i;
  }
}

TEST(GtbPolicy, MaxBufferRespectsRatioExactly) {
  for (const double ratio : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    Runtime rt(config(PolicyKind::GTBMaxBuffer));
    const auto g = rt.create_group("g", ratio);
    const auto acc = classify(rt, g, 200, [](std::size_t i) {
      return static_cast<double>(i % 9 + 1) / 10.0;
    });
    const auto n_acc =
        static_cast<std::size_t>(std::count(acc.begin(), acc.end(), true));
    const auto expected = static_cast<std::size_t>(std::ceil(ratio * 200 - 1e-9));
    EXPECT_EQ(n_acc, expected) << "ratio " << ratio;
  }
}

TEST(GtbPolicy, MaxBufferHasZeroInversions) {
  Runtime rt(config(PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 0.4);
  classify(rt, g, 300, [](std::size_t i) {
    return static_cast<double>((i * 7) % 9 + 1) / 10.0;
  });
  EXPECT_DOUBLE_EQ(rt.group_report(g).inversion_fraction, 0.0);
}

TEST(GtbPolicy, BoundedBufferEnforcesRatioPerWindow) {
  // With a window of 10 and ratio 0.5, every window of 10 tasks must run
  // exactly 5 accurately.
  Runtime rt(config(PolicyKind::GTB, 10));
  const auto g = rt.create_group("g", 0.5);
  const auto acc = classify(rt, g, 100, [](std::size_t i) {
    return static_cast<double>(i % 9 + 1) / 10.0;
  });
  for (std::size_t w = 0; w < 10; ++w) {
    const auto n = std::count(acc.begin() + static_cast<std::ptrdiff_t>(10 * w),
                              acc.begin() + static_cast<std::ptrdiff_t>(10 * (w + 1)),
                              true);
    EXPECT_EQ(n, 5) << "window " << w;
  }
}

TEST(GtbPolicy, BoundedBufferZeroRatioDiffOnAlignedGroups) {
  Runtime rt(config(PolicyKind::GTB, 8));
  const auto g = rt.create_group("g", 0.25);
  classify(rt, g, 64, [](std::size_t i) {
    return static_cast<double>(i % 9 + 1) / 10.0;
  });
  EXPECT_NEAR(rt.group_report(g).ratio_diff(), 0.0, 1e-12);
}

TEST(GtbPolicy, PartialWindowFlushedAtBarrier) {
  Runtime rt(config(PolicyKind::GTB, 64));
  const auto g = rt.create_group("g", 0.5);
  // Only 10 tasks spawned: the barrier must flush the partial window.
  const auto acc = classify(rt, g, 10, [](std::size_t i) {
    return 0.05 + 0.09 * static_cast<double>(i);
  });
  EXPECT_EQ(std::count(acc.begin(), acc.end(), true), 5);
  // The 5 most significant (highest indices) are the accurate ones.
  for (std::size_t i = 5; i < 10; ++i) EXPECT_TRUE(acc[i]);
}

TEST(GtbPolicy, WindowsAreIndependentDecisions) {
  // A window holding only low significances still runs ratio of them
  // accurately — GTB can only rank within the window it sees.
  Runtime rt(config(PolicyKind::GTB, 4));
  const auto g = rt.create_group("g", 0.5);
  // First window all 0.1s, second window all 0.9s.
  const auto acc = classify(rt, g, 8, [](std::size_t i) {
    return i < 4 ? 0.1 : 0.9;
  });
  EXPECT_EQ(std::count(acc.begin(), acc.begin() + 4, true), 2);
  EXPECT_EQ(std::count(acc.begin() + 4, acc.end(), true), 2);
}

TEST(GtbPolicy, TieBreaksBySpawnOrder) {
  // Uniform significance: the *first* ratio fraction of each window runs
  // accurately (stable sort), making GTB fully deterministic (§4.2 Kmeans).
  Runtime rt(config(PolicyKind::GTB, 10));
  const auto g = rt.create_group("g", 0.3);
  const auto acc = classify(rt, g, 20, [](std::size_t) { return 0.5; });
  for (std::size_t w = 0; w < 2; ++w) {
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(acc[10 * w + i], i < 3) << "w=" << w << " i=" << i;
    }
  }
}

TEST(GtbPolicy, DeterministicAcrossRuns) {
  auto run_once = [] {
    Runtime rt(config(PolicyKind::GTB, 16));
    const auto g = rt.create_group("g", 0.6);
    return classify(rt, g, 128, [](std::size_t i) {
      return static_cast<double>((i * 13) % 9 + 1) / 10.0;
    });
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(GtbPolicy, OracleMatchesMaxBuffer) {
  auto run_with = [](PolicyKind p) {
    Runtime rt(config(p));
    const auto g = rt.create_group("g", 0.35);
    return classify(rt, g, 211, [](std::size_t i) {
      return static_cast<double>((i * 5) % 9 + 1) / 10.0;
    });
  };
  EXPECT_EQ(run_with(PolicyKind::GTBMaxBuffer), run_with(PolicyKind::Oracle));
}

TEST(GtbPolicy, SpecialValuesBypassQuota) {
  Runtime rt(config(PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 0.0);
  std::vector<bool> acc(4, false);
  // Two significance-1.0 tasks must run accurately even at ratio 0.
  for (std::size_t i = 0; i < 4; ++i) {
    rt.spawn(sigrt::task([&acc, i] { acc[i] = true; })
                 .approx([] {})
                 .significance(i < 2 ? 1.0 : 0.5)
                 .group(g));
  }
  rt.wait_group(g);
  EXPECT_TRUE(acc[0]);
  EXPECT_TRUE(acc[1]);
  EXPECT_FALSE(acc[2]);
  EXPECT_FALSE(acc[3]);
}

TEST(GtbPolicy, MultipleGroupsBufferIndependently) {
  Runtime rt(config(PolicyKind::GTB, 4));
  const auto a = rt.create_group("a", 1.0);
  const auto b = rt.create_group("b", 0.0);
  int a_runs = 0;
  int b_approx = 0;
  for (int i = 0; i < 8; ++i) {
    rt.spawn(sigrt::task([&] { ++a_runs; }).significance(0.5).group(a));
    rt.spawn(sigrt::task([] {}).approx([&] { ++b_approx; }).significance(0.5).group(b));
  }
  rt.wait_all();
  EXPECT_EQ(a_runs, 8);
  EXPECT_EQ(b_approx, 8);
}

TEST(GtbPolicy, ThreadedExecutionMatchesInlineClassification) {
  auto run_with_workers = [](unsigned workers) {
    RuntimeConfig c;
    c.workers = workers;
    c.policy = PolicyKind::GTBMaxBuffer;
    Runtime rt(c);
    const auto g = rt.create_group("g", 0.5);
    std::vector<int> acc(64, 0);
    for (std::size_t i = 0; i < 64; ++i) {
      int* slot = &acc[i];
      rt.spawn(sigrt::task([slot] { *slot = 1; })
                   .approx([] {})
                   .significance(static_cast<double>(i % 9 + 1) / 10.0)
                   .group(g));
    }
    rt.wait_group(g);
    return acc;
  };
  EXPECT_EQ(run_with_workers(0), run_with_workers(4));
}

}  // namespace
