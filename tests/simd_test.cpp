// SIMD kernel-layer tests: numerics contract of apps/kernels.hpp across
// every compiled-in dispatch level, plus the support::simd selection rules.
//
// The sweep is hardware-agnostic: it collects the distinct kernel tables
// reachable through table_for() (on a scalar-forced build or a bare host
// that is just the scalar table) and checks each against the scalar level —
// bit-exact for the integer sobel kernels, ULP-scaled for the floating-point
// ones (vector levels reassociate and may contract to FMA).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "apps/kernels.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"

namespace {

namespace kern = sigrt::apps::kern;
namespace simd = sigrt::support::simd;
using simd::Isa;

/// Restores the dispatch level (and the env override) on scope exit so test
/// order never leaks a forced level.
struct ActiveLevelGuard {
  Isa prev = simd::active();
  ~ActiveLevelGuard() {
    ::unsetenv("SIGRT_SIMD");
    simd::set_active(prev);
  }
};

/// The distinct non-scalar kernel tables this binary can dispatch to.
std::vector<const kern::KernelTable*> vector_tables() {
  std::vector<const kern::KernelTable*> tables;
  const kern::KernelTable* scalar = &kern::table_for(Isa::Scalar);
  for (const Isa isa : {Isa::SSE2, Isa::AVX2, Isa::NEON}) {
    const kern::KernelTable* t = &kern::table_for(isa);
    if (t == scalar) continue;
    if (std::find(tables.begin(), tables.end(), t) == tables.end()) {
      tables.push_back(t);
    }
  }
  return tables;
}

std::vector<std::uint8_t> random_image(std::size_t w, std::size_t h,
                                       std::uint64_t seed) {
  sigrt::support::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> img(w * h);
  for (auto& p : img) {
    p = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
  }
  return img;
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed,
                                   double lo = -1.0, double hi = 1.0) {
  sigrt::support::Xoshiro256 rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

// --- selection rules -------------------------------------------------------

TEST(Simd, TableIsNeverNull) {
  for (const Isa isa : {Isa::Scalar, Isa::SSE2, Isa::AVX2, Isa::NEON}) {
    const kern::KernelTable& t = kern::table_for(isa);
    EXPECT_NE(t.sobel_row_accurate, nullptr) << simd::to_string(isa);
    EXPECT_NE(t.sobel_row_approx, nullptr) << simd::to_string(isa);
    EXPECT_NE(t.dct_block_band, nullptr) << simd::to_string(isa);
    EXPECT_NE(t.dot_span, nullptr) << simd::to_string(isa);
    EXPECT_NE(t.sq_dist_span, nullptr) << simd::to_string(isa);
    EXPECT_NE(t.nearest_centroid, nullptr) << simd::to_string(isa);
  }
}

TEST(Simd, ScalarTableIsScalar) {
  EXPECT_EQ(kern::table_for(Isa::Scalar).isa, Isa::Scalar);
}

TEST(Simd, SetActiveClampsToHardware) {
  ActiveLevelGuard guard;
  // Scalar is always grantable; anything else comes back as a level the
  // hardware can actually run (identity when supported).
  EXPECT_EQ(simd::set_active(Isa::Scalar), Isa::Scalar);
  EXPECT_EQ(simd::active(), Isa::Scalar);
  EXPECT_EQ(simd::set_active(simd::detected()), simd::detected());
  for (const Isa isa : {Isa::SSE2, Isa::AVX2, Isa::NEON}) {
    const Isa got = simd::set_active(isa);
    EXPECT_EQ(got, simd::active());
    if (got == isa) continue;  // hardware supports it directly
    // Clamped: never above the detected level's family, scalar at worst.
    EXPECT_EQ(got, simd::set_active(got)) << simd::to_string(isa);
  }
}

TEST(Simd, ForceScalarBuildDetectsScalar) {
  if (simd::kForceScalar) {
    EXPECT_EQ(simd::detected(), Isa::Scalar);
    EXPECT_EQ(simd::set_active(Isa::AVX2), Isa::Scalar);
  }
}

TEST(Simd, ParseIsaRoundTrips) {
  for (const Isa isa : {Isa::Scalar, Isa::SSE2, Isa::AVX2, Isa::NEON}) {
    Isa out = Isa::Scalar;
    EXPECT_TRUE(simd::parse_isa(simd::to_string(isa), &out));
    EXPECT_EQ(out, isa);
  }
  Isa out = Isa::AVX2;
  EXPECT_FALSE(simd::parse_isa("avx512", &out));
  EXPECT_FALSE(simd::parse_isa("", &out));
  EXPECT_FALSE(simd::parse_isa(nullptr, &out));
  EXPECT_EQ(out, Isa::AVX2);  // failures leave the slot untouched
}

TEST(Simd, EnvOverrideLowersActiveLevel) {
  ActiveLevelGuard guard;
  ASSERT_EQ(::setenv("SIGRT_SIMD", "scalar", 1), 0);
  EXPECT_EQ(simd::refresh_from_env(), Isa::Scalar);
  EXPECT_EQ(simd::active(), Isa::Scalar);
  // Unparsable values fall back to the detected level.
  ASSERT_EQ(::setenv("SIGRT_SIMD", "warp9", 1), 0);
  EXPECT_EQ(simd::refresh_from_env(), simd::detected());
  ::unsetenv("SIGRT_SIMD");
  EXPECT_EQ(simd::refresh_from_env(), simd::detected());
}

TEST(Simd, DispatchFollowsActiveLevel) {
  ActiveLevelGuard guard;
  simd::set_active(Isa::Scalar);
  EXPECT_EQ(&kern::table(), &kern::table_for(Isa::Scalar));
  simd::set_active(simd::detected());
  EXPECT_EQ(&kern::table(), &kern::table_for(simd::detected()));
}

// --- sobel: bit-exact across levels ----------------------------------------

// Odd widths and sub-spans starting at unaligned offsets exercise the
// vector kernels' tails and edge handling.
void check_sobel_level(const kern::KernelTable& t, bool approx) {
  const kern::KernelTable& ref = kern::table_for(Isa::Scalar);
  for (const std::size_t w : {3u, 4u, 5u, 7u, 9u, 16u, 17u, 33u, 64u, 129u}) {
    const std::size_t h = 13;
    const auto img = random_image(w, h, 1000 + w);
    std::vector<std::uint8_t> expect(w * h, 0), got(w * h, 0);
    // Full interior span plus offset sub-spans.
    std::vector<std::pair<std::size_t, std::size_t>> spans = {{1, w - 1}};
    if (w >= 7) {
      spans.emplace_back(2, w - 2);
      spans.emplace_back(3, w - 1);
    }
    for (const auto& [x0, x1] : spans) {
      for (std::size_t row = 1; row + 1 < h; ++row) {
        if (approx) {
          ref.sobel_row_approx(expect.data(), img.data(), w, row, x0, x1);
          t.sobel_row_approx(got.data(), img.data(), w, row, x0, x1);
        } else {
          ref.sobel_row_accurate(expect.data(), img.data(), w, row, x0, x1);
          t.sobel_row_accurate(got.data(), img.data(), w, row, x0, x1);
        }
      }
      EXPECT_EQ(expect, got) << simd::to_string(t.isa) << " w=" << w << " span ["
                             << x0 << "," << x1 << ")";
    }
  }
}

TEST(Simd, SobelAccurateBitExactAcrossLevels) {
  for (const auto* t : vector_tables()) check_sobel_level(*t, false);
}

TEST(Simd, SobelApproxBitExactAcrossLevels) {
  for (const auto* t : vector_tables()) check_sobel_level(*t, true);
}

// Saturation: a white-on-black edge drives sx^2+sy^2 far past 255^2; every
// level must clamp to exactly 255, and flat regions to exactly 0.
TEST(Simd, SobelSaturatesIdentically) {
  const std::size_t w = 32, h = 8;
  std::vector<std::uint8_t> img(w * h, 0);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = w / 2; x < w; ++x) img[y * w + x] = 255;
  }
  const kern::KernelTable& ref = kern::table_for(Isa::Scalar);
  std::vector<std::uint8_t> expect(w * h, 0);
  for (std::size_t row = 1; row + 1 < h; ++row) {
    ref.sobel_row_accurate(expect.data(), img.data(), w, row, 1, w - 1);
  }
  EXPECT_EQ(*std::max_element(expect.begin(), expect.end()), 255u);
  EXPECT_EQ(*std::min_element(expect.begin(), expect.end()), 0u);
  for (const auto* t : vector_tables()) {
    std::vector<std::uint8_t> got(w * h, 0);
    for (std::size_t row = 1; row + 1 < h; ++row) {
      t->sobel_row_accurate(got.data(), img.data(), w, row, 1, w - 1);
    }
    EXPECT_EQ(expect, got) << simd::to_string(t->isa);
  }
}

// --- float kernels: ULP-scaled agreement across levels ----------------------

// Reassociated/FMA-contracted sums agree with the strictly-ordered scalar
// sum to an error bounded by a small multiple of the magnitude sum's ulp.
double dot_tolerance(const double* a, const double* b, std::size_t n) {
  double mag = 1.0;
  for (std::size_t i = 0; i < n; ++i) mag += std::abs(a[i] * b[i]);
  return mag * 1e-13;
}

const std::size_t kSpanSizes[] = {0,  1,  2,  3,  4,  5,  7,  8,
                                  9,  15, 16, 17, 31, 32, 33, 100,
                                  127, 1024};

TEST(Simd, DotSpanMatchesScalarWithinUlps) {
  const kern::KernelTable& ref = kern::table_for(Isa::Scalar);
  const auto a = random_doubles(1100, 7);
  const auto b = random_doubles(1100, 8);
  for (const auto* t : vector_tables()) {
    for (const std::size_t n : kSpanSizes) {
      for (const std::size_t off : {0u, 1u, 3u}) {  // unaligned starts
        const double expect = ref.dot_span(a.data() + off, b.data() + off, n);
        const double got = t->dot_span(a.data() + off, b.data() + off, n);
        EXPECT_NEAR(got, expect, dot_tolerance(a.data() + off, b.data() + off, n))
            << simd::to_string(t->isa) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(Simd, SqDistSpanMatchesScalarWithinUlps) {
  const kern::KernelTable& ref = kern::table_for(Isa::Scalar);
  const auto a = random_doubles(1100, 9, -5.0, 5.0);
  const auto b = random_doubles(1100, 10, -5.0, 5.0);
  for (const auto* t : vector_tables()) {
    for (const std::size_t n : kSpanSizes) {
      for (const std::size_t off : {0u, 1u, 3u}) {
        const double expect = ref.sq_dist_span(a.data() + off, b.data() + off, n);
        const double got = t->sq_dist_span(a.data() + off, b.data() + off, n);
        EXPECT_NEAR(got, expect, 1e-13 * (1.0 + expect))
            << simd::to_string(t->isa) << " n=" << n << " off=" << off;
      }
    }
  }
}

TEST(Simd, NearestCentroidAgreesAcrossLevels) {
  // Well-separated blobs: reassociation error (~1e-13) cannot flip an
  // argmin whose margins are O(1), so the index must agree exactly.
  const std::size_t k = 8, dims = 19;  // odd dims: vector tail in every level
  const kern::KernelTable& ref = kern::table_for(Isa::Scalar);
  sigrt::support::Xoshiro256 rng(11);
  std::vector<double> centroids(k * dims);
  for (std::size_t c = 0; c < k; ++c) {
    for (std::size_t d = 0; d < dims; ++d) {
      centroids[c * dims + d] = static_cast<double>(c) * 8.0 + rng.uniform(-1.0, 1.0);
    }
  }
  for (std::size_t trial = 0; trial < 200; ++trial) {
    std::vector<double> p(dims);
    const std::size_t home = trial % k;
    for (std::size_t d = 0; d < dims; ++d) {
      p[d] = static_cast<double>(home) * 8.0 + rng.uniform(-2.5, 2.5);
    }
    for (const std::size_t use_dims : {dims, dims / 2, std::size_t{2}}) {
      const std::size_t expect =
          ref.nearest_centroid(p.data(), centroids.data(), k, dims, use_dims);
      for (const auto* t : vector_tables()) {
        EXPECT_EQ(t->nearest_centroid(p.data(), centroids.data(), k, dims,
                                      use_dims),
                  expect)
            << simd::to_string(t->isa) << " trial=" << trial
            << " use_dims=" << use_dims;
      }
    }
  }
}

TEST(Simd, NearestCentroidFirstMinimumWinsOnTies) {
  // Centroids 0 and 2 are identical; every level computes their distances
  // with the same instruction sequence, so the tie is exact and the first
  // index must win.
  const std::size_t k = 3, dims = 16;
  std::vector<double> centroids(k * dims, 0.0);
  for (std::size_t d = 0; d < dims; ++d) {
    centroids[0 * dims + d] = 1.0;
    centroids[1 * dims + d] = 50.0;
    centroids[2 * dims + d] = 1.0;
  }
  const std::vector<double> p(dims, 1.25);
  EXPECT_EQ(kern::table_for(Isa::Scalar)
                .nearest_centroid(p.data(), centroids.data(), k, dims, dims),
            0u);
  for (const auto* t : vector_tables()) {
    EXPECT_EQ(t->nearest_centroid(p.data(), centroids.data(), k, dims, dims), 0u)
        << simd::to_string(t->isa);
  }
}

TEST(Simd, DctBlockBandMatchesScalar) {
  constexpr double kPi = 3.14159265358979323846;
  double ct[64], alpha[8];
  for (std::size_t u = 0; u < 8; ++u) {
    for (std::size_t x = 0; x < 8; ++x) {
      ct[u * 8 + x] = std::cos((2.0 * static_cast<double>(x) + 1.0) *
                               static_cast<double>(u) * kPi / 16.0);
    }
    alpha[u] = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
  }
  const std::size_t w = 40, h = 32;
  const auto img = random_image(w, h, 77);
  const kern::KernelTable& ref = kern::table_for(Isa::Scalar);
  // Blocks at aligned and odd offsets (the kernel takes arbitrary origins).
  const std::pair<std::size_t, std::size_t> origins[] = {
      {0, 0}, {8, 16}, {24, 24}, {3, 5}, {31, 17}};
  for (const auto& [px0, py0] : origins) {
    for (std::size_t band = 0; band < 15; ++band) {
      float expect[64] = {0}, got[64] = {0};
      ref.dct_block_band(expect, img.data(), w, px0, py0, band, ct, alpha);
      for (const auto* t : vector_tables()) {
        std::fill(std::begin(got), std::end(got), 0.0f);
        t->dct_block_band(got, img.data(), w, px0, py0, band, ct, alpha);
        for (std::size_t i = 0; i < 64; ++i) {
          // Coefficients are O(1000); float storage quantizes at ~6e-5 of
          // magnitude, so 2e-4 absolute + relative slack covers reassociation.
          EXPECT_NEAR(got[i], expect[i], 2e-4 + 1e-6 * std::abs(expect[i]))
              << simd::to_string(t->isa) << " band=" << band << " origin=("
              << px0 << "," << py0 << ") i=" << i;
        }
      }
    }
  }
}

}  // namespace
