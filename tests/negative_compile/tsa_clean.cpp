// Positive twin of tsa_violation.cpp: the same structure with the locking
// protocol followed MUST COMPILE cleanly under -Werror=thread-safety.
// Guards against the harness failing for the wrong reason (missing
// include path, macro breakage) and then reading the WILL_FAIL negative
// test as a false pass.
#include <vector>

#include "support/mutex.hpp"
#include "support/spinlock.hpp"

namespace {

class Inbox {
 public:
  void push(int v) {
    sigrt::support::MutexLock lock(mutex_);
    items_.push_back(v);
  }

  int steal_locked() SIGRT_REQUIRES(lock_) { return items_empty_hint_ ? 0 : 1; }

  int steal() {
    sigrt::support::SpinLockGuard lock(lock_);
    return steal_locked();
  }

 private:
  sigrt::support::Mutex mutex_;
  sigrt::support::SpinLock lock_;
  std::vector<int> items_ SIGRT_GUARDED_BY(mutex_);
  bool items_empty_hint_ SIGRT_GUARDED_BY(lock_) = true;
};

}  // namespace

int main() {
  Inbox inbox;
  inbox.push(1);
  return inbox.steal();
}
