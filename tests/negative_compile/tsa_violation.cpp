// Negative-compile probe: MUST FAIL under -Werror=thread-safety.
//
// Seeds the exact class of bug the capability annotations exist to catch:
// reading and writing a SIGRT_GUARDED_BY member without holding its lock,
// and calling a SIGRT_REQUIRES helper lock-free.  ctest runs this file
// through `-fsyntax-only -Wthread-safety -Werror=thread-safety` with
// WILL_FAIL, so the suite breaks if the annotations ever stop rejecting
// it (e.g. a macro refactor silently compiling them away under Clang).
//
// The positive twin (tsa_clean.cpp) proves the same structure compiles
// when the protocol is followed — so a failure here is the analysis
// firing, not a broken test harness.
#include <vector>

#include "support/mutex.hpp"
#include "support/spinlock.hpp"

namespace {

class Inbox {
 public:
  void push(int v) {
    items_.push_back(v);  // BAD: touches guarded state without mutex_
  }

  int steal_locked() SIGRT_REQUIRES(lock_) { return items_.empty() ? 0 : 1; }

  int steal() {
    return steal_locked();  // BAD: REQUIRES(lock_) called lock-free
  }

 private:
  sigrt::support::Mutex mutex_;
  sigrt::support::SpinLock lock_;
  std::vector<int> items_ SIGRT_GUARDED_BY(mutex_);
};

}  // namespace

int main() {
  Inbox inbox;
  inbox.push(1);
  return inbox.steal();
}
