// Property test: end-to-end dependence enforcement.
//
// Random tasks draw random byte ranges (read/write/rw) over a shared arena.
// For any two tasks whose accesses conflict at *block* granularity
// (write-write or read-write overlap), the later-spawned task must not
// start before the earlier one finished — the definition of the in()/out()
// contract the paper's runtime inherits from BDDT.  Verified against a
// brute-force conflict oracle over recorded start/end timestamps.
#include <gtest/gtest.h>

#include <atomic>
#include <tuple>
#include <vector>

#include "core/sigrt.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

struct Params {
  unsigned workers;
  std::size_t block_bytes;
  std::size_t tasks;
  std::uint64_t seed;
};

std::string param_name(const testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  return "w" + std::to_string(p.workers) + "_b" + std::to_string(p.block_bytes) +
         "_n" + std::to_string(p.tasks) + "_s" + std::to_string(p.seed);
}

struct AccessSpec {
  std::size_t offset;
  std::size_t bytes;
  sigrt::dep::Mode mode;
};

class DepProperty : public testing::TestWithParam<Params> {};

TEST_P(DepProperty, ConflictingTasksNeverOverlapInTime) {
  const Params& p = GetParam();
  constexpr std::size_t kArena = 1 << 14;  // 16 KiB playground
  static std::vector<std::uint8_t> arena(kArena);

  sigrt::support::Xoshiro256 rng(p.seed);
  std::vector<std::vector<AccessSpec>> specs(p.tasks);
  for (auto& task_specs : specs) {
    const std::size_t n_accesses = 1 + rng.bounded(3);
    for (std::size_t a = 0; a < n_accesses; ++a) {
      AccessSpec s;
      s.offset = rng.bounded(kArena - 1);
      s.bytes = 1 + rng.bounded(kArena / 8);
      if (s.offset + s.bytes > kArena) s.bytes = kArena - s.offset;
      const auto m = rng.bounded(3);
      s.mode = m == 0 ? sigrt::dep::Mode::In
                      : (m == 1 ? sigrt::dep::Mode::Out : sigrt::dep::Mode::InOut);
      task_specs.push_back(s);
    }
  }

  std::vector<std::int64_t> start_ns(p.tasks, 0);
  std::vector<std::int64_t> end_ns(p.tasks, 0);

  RuntimeConfig c;
  c.workers = p.workers;
  c.policy = PolicyKind::Agnostic;
  c.block_bytes = p.block_bytes;
  {
    Runtime rt(c);
    for (std::size_t t = 0; t < p.tasks; ++t) {
      sigrt::TaskOptions opts;
      opts.accurate = [&, t] {
        start_ns[t] = sigrt::support::now_ns();
        // A little work so overlaps would actually be observable.
        volatile std::uint32_t x = 0;
        for (int i = 0; i < 2000; ++i) x += static_cast<std::uint32_t>(i);
        end_ns[t] = sigrt::support::now_ns();
      };
      for (const AccessSpec& s : specs[t]) {
        opts.accesses.push_back({arena.data() + s.offset, s.bytes, s.mode});
      }
      rt.spawn(std::move(opts));
    }
    rt.wait_all();
  }

  // Brute-force oracle: block-granular conflict == some block is touched by
  // both tasks with at least one write.
  auto blocks_of = [&](const AccessSpec& s) {
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(arena.data());
    const std::uint64_t lo = (base + s.offset) / p.block_bytes;
    const std::uint64_t hi = (base + s.offset + s.bytes - 1) / p.block_bytes;
    return std::pair{lo, hi};
  };
  auto conflicts = [&](std::size_t i, std::size_t j) {
    for (const AccessSpec& a : specs[i]) {
      for (const AccessSpec& b : specs[j]) {
        if (!sigrt::dep::writes(a.mode) && !sigrt::dep::writes(b.mode)) continue;
        const auto [alo, ahi] = blocks_of(a);
        const auto [blo, bhi] = blocks_of(b);
        if (alo <= bhi && blo <= ahi) return true;
      }
    }
    return false;
  };

  std::size_t checked = 0;
  for (std::size_t i = 0; i < p.tasks; ++i) {
    for (std::size_t j = i + 1; j < p.tasks; ++j) {
      if (!conflicts(i, j)) continue;
      ++checked;
      EXPECT_GE(start_ns[j], end_ns[i])
          << "conflicting tasks " << i << " and " << j << " overlapped";
    }
  }
  // The generator must actually produce conflicts, or the test is vacuous.
  EXPECT_GT(checked, p.tasks / 4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DepProperty,
    testing::ValuesIn(std::vector<Params>{
        {0, 64, 60, 1},
        {0, 1024, 60, 2},
        {1, 256, 80, 3},
        {2, 64, 80, 4},
        {4, 1024, 80, 5},
        {4, 4096, 60, 6},
        {2, 256, 120, 7},
        {4, 64, 120, 8},
    }),
    param_name);

}  // namespace
