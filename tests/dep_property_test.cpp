// Property test: end-to-end dependence enforcement.
//
// Random tasks draw random byte ranges (read/write/rw) over a shared arena.
// For any two tasks whose accesses conflict at *block* granularity
// (write-write or read-write overlap), the later-spawned task must not
// start before the earlier one finished — the definition of the in()/out()
// contract the paper's runtime inherits from BDDT.  Verified against a
// brute-force conflict oracle over recorded start/end timestamps.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <map>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/sigrt.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

struct Params {
  unsigned workers;
  std::size_t block_bytes;
  std::size_t tasks;
  std::uint64_t seed;
};

std::string param_name(const testing::TestParamInfo<Params>& info) {
  const Params& p = info.param;
  return "w" + std::to_string(p.workers) + "_b" + std::to_string(p.block_bytes) +
         "_n" + std::to_string(p.tasks) + "_s" + std::to_string(p.seed);
}

struct AccessSpec {
  std::size_t offset;
  std::size_t bytes;
  sigrt::dep::Mode mode;
};

class DepProperty : public testing::TestWithParam<Params> {};

TEST_P(DepProperty, ConflictingTasksNeverOverlapInTime) {
  const Params& p = GetParam();
  constexpr std::size_t kArena = 1 << 14;  // 16 KiB playground
  static std::vector<std::uint8_t> arena(kArena);

  sigrt::support::Xoshiro256 rng(p.seed);
  std::vector<std::vector<AccessSpec>> specs(p.tasks);
  for (auto& task_specs : specs) {
    const std::size_t n_accesses = 1 + rng.bounded(3);
    for (std::size_t a = 0; a < n_accesses; ++a) {
      AccessSpec s;
      s.offset = rng.bounded(kArena - 1);
      s.bytes = 1 + rng.bounded(kArena / 8);
      if (s.offset + s.bytes > kArena) s.bytes = kArena - s.offset;
      const auto m = rng.bounded(3);
      s.mode = m == 0 ? sigrt::dep::Mode::In
                      : (m == 1 ? sigrt::dep::Mode::Out : sigrt::dep::Mode::InOut);
      task_specs.push_back(s);
    }
  }

  std::vector<std::int64_t> start_ns(p.tasks, 0);
  std::vector<std::int64_t> end_ns(p.tasks, 0);

  RuntimeConfig c;
  c.workers = p.workers;
  c.policy = PolicyKind::Agnostic;
  c.block_bytes = p.block_bytes;
  {
    Runtime rt(c);
    for (std::size_t t = 0; t < p.tasks; ++t) {
      sigrt::TaskOptions opts;
      opts.accurate = [&, t] {
        start_ns[t] = sigrt::support::now_ns();
        // A little work so overlaps would actually be observable.
        volatile std::uint32_t x = 0;
        for (int i = 0; i < 2000; ++i) x += static_cast<std::uint32_t>(i);
        end_ns[t] = sigrt::support::now_ns();
      };
      for (const AccessSpec& s : specs[t]) {
        opts.accesses.push_back({arena.data() + s.offset, s.bytes, s.mode});
      }
      rt.spawn(std::move(opts));
    }
    rt.wait_all();
  }

  // Brute-force oracle: block-granular conflict == some block is touched by
  // both tasks with at least one write.
  auto blocks_of = [&](const AccessSpec& s) {
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(arena.data());
    const std::uint64_t lo = (base + s.offset) / p.block_bytes;
    const std::uint64_t hi = (base + s.offset + s.bytes - 1) / p.block_bytes;
    return std::pair{lo, hi};
  };
  auto conflicts = [&](std::size_t i, std::size_t j) {
    for (const AccessSpec& a : specs[i]) {
      for (const AccessSpec& b : specs[j]) {
        if (!sigrt::dep::writes(a.mode) && !sigrt::dep::writes(b.mode)) continue;
        const auto [alo, ahi] = blocks_of(a);
        const auto [blo, bhi] = blocks_of(b);
        if (alo <= bhi && blo <= ahi) return true;
      }
    }
    return false;
  };

  std::size_t checked = 0;
  for (std::size_t i = 0; i < p.tasks; ++i) {
    for (std::size_t j = i + 1; j < p.tasks; ++j) {
      if (!conflicts(i, j)) continue;
      ++checked;
      EXPECT_GE(start_ns[j], end_ns[i])
          << "conflicting tasks " << i << " and " << j << " overlapped";
    }
  }
  // The generator must actually produce conflicts, or the test is vacuous.
  EXPECT_GT(checked, p.tasks / 4);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DepProperty,
    testing::ValuesIn(std::vector<Params>{
        {0, 64, 60, 1},
        {0, 1024, 60, 2},
        {1, 256, 80, 3},
        {2, 64, 80, 4},
        {4, 1024, 80, 5},
        {4, 4096, 60, 6},
        {2, 256, 120, 7},
        {4, 64, 120, 8},
    }),
    param_name);

// ---------------------------------------------------------------------------
// Direct tracker oracles: the striped tracker is exercised without the
// runtime so its own contracts (edge counts, refcount balance, conflict
// exclusion) can be checked exactly.

using sigrt::dep::Access;
using sigrt::dep::BlockTracker;
using sigrt::dep::Mode;
using sigrt::dep::Node;

// Single-threaded reference implementation of the block tracker's
// semantics — the pre-striping single-map algorithm, reduced to indices.
// The striped tracker, driven serially, must agree with it exactly.
class ReferenceTracker {
 public:
  explicit ReferenceTracker(std::size_t block_bytes, std::size_t nodes)
      : shift_(static_cast<unsigned>(std::countr_zero(block_bytes))),
        nodes_(nodes) {}

  std::size_t register_node(std::size_t id, const std::vector<Access>& accesses) {
    ++stamp_;
    std::size_t preds = 0;
    for (const Access& a : accesses) {
      if (a.ptr == nullptr || a.bytes == 0) continue;
      const auto base =
          static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(a.ptr));
      const std::uint64_t lo = base >> shift_;
      const std::uint64_t hi = (base + a.bytes - 1) >> shift_;
      for (std::uint64_t b = lo; b <= hi; ++b) {
        BlockState& st = blocks_[b];
        if (sigrt::dep::reads(a.mode) && link(st.writer, id)) ++preds;
        if (sigrt::dep::writes(a.mode)) {
          if (link(st.writer, id)) ++preds;
          for (std::size_t r : st.readers) {
            if (link(static_cast<std::ptrdiff_t>(r), id)) ++preds;
          }
          st.readers.clear();
          st.writer = static_cast<std::ptrdiff_t>(id);
        } else {
          st.readers.push_back(id);
        }
      }
    }
    return preds;
  }

  std::vector<std::size_t> complete(std::size_t id) {
    nodes_[id].done = true;
    for (auto& [b, st] : blocks_) {
      if (st.writer == static_cast<std::ptrdiff_t>(id)) st.writer = -1;
      std::erase(st.readers, id);
    }
    auto out = std::move(nodes_[id].dependents);
    nodes_[id].dependents.clear();
    return out;
  }

 private:
  struct RefNode {
    bool done = false;
    std::uint64_t visit = 0;
    std::vector<std::size_t> dependents;
  };
  struct BlockState {
    std::ptrdiff_t writer = -1;
    std::vector<std::size_t> readers;
  };

  bool link(std::ptrdiff_t pred, std::size_t succ) {
    if (pred < 0 || static_cast<std::size_t>(pred) == succ) return false;
    RefNode& p = nodes_[static_cast<std::size_t>(pred)];
    if (p.done || p.visit == stamp_) return false;
    p.visit = stamp_;
    p.dependents.push_back(succ);
    return true;
  }

  unsigned shift_;
  std::uint64_t stamp_ = 0;
  std::vector<RefNode> nodes_;
  std::map<std::uint64_t, BlockState> blocks_;
};

TEST(DepOracle, SerializedStripedTrackerMatchesReference) {
  constexpr std::size_t kBlock = 64;
  constexpr std::size_t kNodes = 300;
  constexpr std::size_t kArena = 64 * kBlock;
  static std::vector<std::uint8_t> arena(kArena);

  for (std::uint64_t seed : {11u, 22u, 33u}) {
    BlockTracker tracker(kBlock);
    ReferenceTracker reference(kBlock, kNodes);
    std::vector<Node> nodes(kNodes);
    sigrt::support::Xoshiro256 rng(seed);

    std::vector<std::size_t> live;  // registered, not yet completed
    std::size_t next = 0;
    std::uint64_t ops = 0;
    while (next < kNodes || !live.empty()) {
      const bool can_register = next < kNodes;
      const bool do_register =
          can_register && (live.empty() || rng.bounded(2) == 0);
      if (do_register) {
        std::vector<Access> accesses;
        const std::size_t n = 1 + rng.bounded(3);
        for (std::size_t a = 0; a < n; ++a) {
          const std::size_t off = rng.bounded(kArena - 1);
          std::size_t bytes = 1 + rng.bounded(4 * kBlock);
          if (off + bytes > kArena) bytes = kArena - off;
          const auto m = rng.bounded(3);
          accesses.push_back(
              {arena.data() + off, bytes,
               m == 0 ? Mode::In : (m == 1 ? Mode::Out : Mode::InOut)});
        }
        const std::size_t got = tracker.register_node(&nodes[next], accesses);
        const std::size_t want = reference.register_node(next, accesses);
        ASSERT_EQ(got, want) << "register #" << next << " seed " << seed;
        live.push_back(next);
        ++next;
      } else {
        const std::size_t pick = rng.bounded(live.size());
        const std::size_t id = live[pick];
        live[pick] = live.back();
        live.pop_back();
        std::vector<Node*> out;
        tracker.complete(nodes[id], out);
        std::vector<std::size_t> got;
        got.reserve(out.size());
        for (Node* n : out) {
          got.push_back(static_cast<std::size_t>(n - nodes.data()));
        }
        std::vector<std::size_t> want = reference.complete(id);
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        ASSERT_EQ(got, want) << "complete #" << id << " seed " << seed;
      }
      ++ops;
    }
    ASSERT_EQ(ops, kNodes * 2);
  }
}

// Node with instrumented lifetime hooks and a runtime-style gate, for
// driving the tracker from multiple threads without the runtime.
class CountingNode : public Node {
 public:
  void ref_retain() noexcept override {
    retains.fetch_add(1, std::memory_order_relaxed);
  }
  void ref_release() noexcept override {
    releases.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> retains{0};
  std::atomic<std::uint64_t> releases{0};
  std::atomic<std::uint32_t> gate{0};
};

struct OracleParams {
  unsigned threads;
  std::size_t nodes_per_thread;
  std::uint64_t seed;
};

// T threads register/complete overlapping random footprints directly
// against one tracker.  Checked properties:
//   * conflict exclusion — two tasks whose footprints conflict at block
//     granularity never execute concurrently (per-block writer/reader
//     occupancy counters);
//   * edge balance — every predecessor counted by register_node() is
//     handed out by exactly one complete(), and the tracker's edge stat
//     agrees;
//   * refcount balance — after all nodes complete, every retain is paired
//     with a release (the tracker pins nothing);
//   * progress — a cycle in the discovered graph (the striping hazard this
//     guards against) would deadlock the gates; the bounded spin turns
//     that into a failure instead of a hang.
class DepConcurrentOracle : public testing::TestWithParam<OracleParams> {};

TEST_P(DepConcurrentOracle, ConflictExclusionEdgeAndRefBalance) {
  const OracleParams& p = GetParam();
  constexpr std::size_t kBlock = 64;
  constexpr std::size_t kBlocks = 48;  // small arena: heavy overlap
  constexpr std::size_t kArena = kBlocks * kBlock;
  constexpr std::uint32_t kHold = 1u << 20;
  static std::vector<std::uint8_t> arena(kArena);

  BlockTracker tracker(kBlock);
  const std::size_t total = p.threads * p.nodes_per_thread;
  std::vector<CountingNode> nodes(total);

  // Per-block occupancy the "execution" phase checks against.
  std::array<std::atomic<int>, kBlocks> writers{};
  std::array<std::atomic<int>, kBlocks> readers{};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> deps_found{0};
  std::atomic<std::uint64_t> deps_handed{0};
  std::atomic<bool> stuck{false};

  std::atomic<unsigned> start_gate{0};

  auto worker = [&](unsigned tid) {
    // Rendezvous so every thread's work window overlaps (a lone thread
    // racing ahead would make the exclusion check vacuous).
    start_gate.fetch_add(1, std::memory_order_acq_rel);
    while (start_gate.load(std::memory_order_acquire) < p.threads) {
      std::this_thread::yield();
    }
    sigrt::support::Xoshiro256 rng(p.seed * 977 + tid);
    std::vector<Node*> out;
    for (std::size_t i = 0; i < p.nodes_per_thread; ++i) {
      CountingNode& node = nodes[tid * p.nodes_per_thread + i];

      // Random footprint: 1-3 accesses of 1-4 blocks each.  The occupancy
      // oracle's footprint is de-duplicated per block (a task may name a
      // block through several accesses; against *itself* that is never a
      // conflict).
      std::vector<Access> accesses;
      std::array<std::uint8_t, kBlocks> role{};  // 1 = read, 2 = write
      const std::size_t n = 1 + rng.bounded(3);
      for (std::size_t a = 0; a < n; ++a) {
        const std::size_t lo = rng.bounded(kBlocks);
        const std::size_t span = 1 + rng.bounded(4);
        const std::size_t hi = std::min(lo + span, kBlocks);
        const auto m = rng.bounded(3);
        const Mode mode =
            m == 0 ? Mode::In : (m == 1 ? Mode::Out : Mode::InOut);
        accesses.push_back(
            {arena.data() + lo * kBlock, (hi - lo) * kBlock, mode});
        for (std::size_t b = lo; b < hi; ++b) {
          role[b] = std::max<std::uint8_t>(
              role[b], sigrt::dep::writes(mode) ? 2 : 1);
        }
      }
      std::vector<std::pair<std::size_t, bool>> foot;  // (block, writes)
      for (std::size_t b = 0; b < kBlocks; ++b) {
        if (role[b] != 0) foot.emplace_back(b, role[b] == 2);
      }

      // Runtime-style gate protocol: surplus hold, register, fold in the
      // dependency count, wait for predecessors.
      node.gate.store(kHold, std::memory_order_relaxed);
      const std::size_t deps = tracker.register_node(&node, accesses);
      deps_found.fetch_add(deps, std::memory_order_relaxed);
      node.gate.fetch_sub(kHold - static_cast<std::uint32_t>(deps),
                          std::memory_order_acq_rel);
      // On a single-CPU box threads only interleave at yield points; one
      // here (between register and execute) maximizes the window in which
      // another thread must observe this node's parked pins.
      std::this_thread::yield();

      const auto spin_start = std::chrono::steady_clock::now();
      while (node.gate.load(std::memory_order_acquire) != 0) {
        std::this_thread::yield();
        if (std::chrono::steady_clock::now() - spin_start >
            std::chrono::seconds(60)) {
          stuck.store(true, std::memory_order_relaxed);
          return;  // cycle / lost wakeup: fail below instead of hanging
        }
      }

      // "Execute": occupy every block of the footprint and verify no
      // conflicting occupant, with block-granular reader/writer rules.
      for (const auto& [b, w] : foot) {
        if (w) {
          if (writers[b].fetch_add(1, std::memory_order_acq_rel) != 0 ||
              readers[b].load(std::memory_order_acquire) != 0) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          readers[b].fetch_add(1, std::memory_order_acq_rel);
          if (writers[b].load(std::memory_order_acquire) != 0) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      volatile unsigned sink = 0;
      for (int spin = 0; spin < 500; ++spin) {
        sink = sink + static_cast<unsigned>(spin);
      }
      for (const auto& [b, w] : foot) {
        (w ? writers[b] : readers[b]).fetch_sub(1, std::memory_order_acq_rel);
      }

      // Complete: adopt each handed-out dependent, open its gate, release.
      out.clear();
      tracker.complete(node, out);
      deps_handed.fetch_add(out.size(), std::memory_order_relaxed);
      for (Node* d : out) {
        auto* dep = static_cast<CountingNode*>(d);
        dep->gate.fetch_sub(1, std::memory_order_acq_rel);
        dep->ref_release();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(p.threads);
  for (unsigned t = 0; t < p.threads; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();

  ASSERT_FALSE(stuck.load()) << "gate never opened: graph cycle or lost wakeup";
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(deps_found.load(), deps_handed.load());
  EXPECT_EQ(tracker.stats().edges, deps_found.load());
  EXPECT_EQ(tracker.stats().registered_nodes, total);
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(nodes[i].retains.load(), nodes[i].releases.load())
        << "unbalanced refcount on node " << i;
    EXPECT_EQ(nodes[i].gate.load(), 0u);
  }
  // The small arena must actually produce cross-thread edges, or the
  // exclusion check is vacuous.  The floor is loose: how often threads
  // catch each other in flight depends on the scheduler (and on TSan's
  // slowdown), not just on the arena.
  EXPECT_GT(deps_found.load(), total / 8);
}

std::string oracle_name(const testing::TestParamInfo<OracleParams>& info) {
  return "t" + std::to_string(info.param.threads) + "_n" +
         std::to_string(info.param.nodes_per_thread) + "_s" +
         std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DepConcurrentOracle,
                         testing::ValuesIn(std::vector<OracleParams>{
                             {2, 600, 1},
                             {4, 400, 2},
                             {4, 400, 3},
                             {8, 200, 4},
                         }),
                         oracle_name);

}  // namespace
