// Shared helpers for tests that drive the Scheduler directly: pooled ready
// tasks and the lambda -> (ctx, function-pointer) hook adapter.
#pragma once

#include <functional>
#include <utility>

#include "core/scheduler.hpp"

namespace sigrt::test {

/// A pool-allocated task that is immediately runnable (gate == 0).
inline TaskRef make_ready_task(
    std::function<void()> body,
    ExecutionKind kind = ExecutionKind::Accurate) {
  TaskRef t = make_task();
  t->accurate = std::move(body);
  t->kind = kind;
  t->gate.store(0);
  return t;
}

/// Adapts a capturing callable to the scheduler's (ctx, fn-pointer) hook
/// pair: pass `&fn` as ctx and exec_thunk(fn) as the ExecuteFn/DequeueFn.
template <class F>
constexpr Scheduler::ExecuteFn exec_thunk(F&) {
  return [](void* ctx, Task& t, unsigned w) { (*static_cast<F*>(ctx))(t, w); };
}

}  // namespace sigrt::test
