// Stress tests for the pooled intrusive task lifecycle: cross-thread
// recycling through the slab pool's remote-free chains, generation
// coherence (no use-after-recycle), refcount balance (every allocated slot
// freed exactly once), and steady-state slab reuse.  Runs under TSan in CI
// to guard the pool's lock-free paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "core/sigrt.hpp"
#include "scheduler_test_util.hpp"
#include "support/task_pool.hpp"

namespace {

using sigrt::Scheduler;
using sigrt::Task;
using sigrt::TaskPool;
using sigrt::TaskRef;
using sigrt::test::exec_thunk;

void wait_until(const std::atomic<std::uint64_t>& counter,
                std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (counter.load(std::memory_order_acquire) < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

TEST(TaskPool, CrossThreadRecyclingKeepsGenerationsCoherent) {
  // Several producer threads allocate tasks from their own pool shards and
  // enqueue them into one scheduler; workers execute and free them, so
  // every slot travels producer -> worker -> remote-free chain -> producer.
  // Each body checks that the slot's generation still matches the one
  // captured at allocation: a slot recycled while still queued (the
  // use-after-recycle bug class) would execute with a newer generation.
  constexpr unsigned kProducers = 3;
  constexpr std::uint64_t kTasksPerProducer = 30000;
  constexpr std::uint64_t kTotal = kProducers * kTasksPerProducer;

  const TaskPool::Stats before = TaskPool::instance().stats();

  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> generation_errors{0};
  {
    auto fn = [&](Task& t, unsigned) {
      t.accurate();
      executed.fetch_add(1, std::memory_order_acq_rel);
    };
    Scheduler s(4, 0, /*steal=*/true, &fn, exec_thunk(fn));

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (unsigned p = 0; p < kProducers; ++p) {
      producers.emplace_back([&] {
        for (std::uint64_t i = 0; i < kTasksPerProducer; ++i) {
          TaskRef t = sigrt::make_task();
          Task* raw = t.get();
          const std::uint32_t gen = raw->pool_generation();
          t->accurate = [raw, gen, &generation_errors] {
            if (raw->pool_generation() != gen) {
              generation_errors.fetch_add(1, std::memory_order_relaxed);
            }
          };
          t->kind = sigrt::ExecutionKind::Accurate;
          t->gate.store(0);
          s.enqueue(std::move(t));
        }
      });
    }
    for (auto& p : producers) p.join();
    wait_until(executed, kTotal);
    EXPECT_EQ(executed.load(), kTotal);
  }  // scheduler joins its workers; their remote-free buffers flush on exit

  EXPECT_EQ(generation_errors.load(), 0u);

  // Refcount balance: when every reference has been dropped, each slot
  // allocated during the test has been recycled exactly once — the live
  // count returns exactly to its pre-test value.  (Producer threads and
  // workers have exited, so all counters are final.)
  const TaskPool::Stats after = TaskPool::instance().stats();
  EXPECT_GE(after.allocated - before.allocated, kTotal);
  EXPECT_EQ(after.freed - before.freed, after.allocated - before.allocated);
  EXPECT_EQ(after.live(), before.live());
}

TEST(TaskPool, RuntimeChurnWithDependenciesBalancesAndReusesSlabs) {
  // Full-runtime churn, including the dependence tracker's retain/release
  // pins (block map + dependents lists): after each barrier the pool must
  // balance, and once warm, further rounds must not carve new slabs.
  const TaskPool::Stats before = TaskPool::instance().stats();
  {
    sigrt::RuntimeConfig c;
    c.workers = 4;
    c.policy = sigrt::PolicyKind::LQH;
    c.record_task_log = false;
    sigrt::Runtime rt(c);
    const auto g = rt.create_group("churn", 0.5);
    alignas(1024) static double cells[4][128];
    std::atomic<std::uint64_t> runs{0};

    std::uint64_t slabs_after_warm = 0;
    for (int round = 0; round < 6; ++round) {
      for (int i = 0; i < 2000; ++i) {
        auto builder =
            sigrt::task([&runs] { runs.fetch_add(1, std::memory_order_relaxed); })
                .approx(
                    [&runs] { runs.fetch_add(1, std::memory_order_relaxed); })
                .significance(static_cast<double>(i % 9 + 1) / 10.0)
                .group(g);
        if (i % 8 == 0) {
          // A quarter of the chains contend on shared cells: dependents
          // flow through the tracker and its intrusive pins.
          builder.inout(cells[i % 4], 128);
        }
        rt.spawn(std::move(builder));
      }
      rt.wait_group(g);
      if (round == 2) {
        slabs_after_warm = TaskPool::instance().stats().slabs;
      }
    }
    EXPECT_EQ(runs.load(), 6u * 2000u);
    // Steady state: rounds 4..6 recycle the slots rounds 1..3 carved.
    EXPECT_EQ(TaskPool::instance().stats().slabs, slabs_after_warm);
  }
  const TaskPool::Stats after = TaskPool::instance().stats();
  // The runtime has quiesced and its workers exited: every task allocated
  // by this test has been returned to the pool.
  EXPECT_EQ(after.live(), before.live());
}

}  // namespace
