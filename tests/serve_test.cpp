// Serving-layer tests: QoS controller convergence, admission shed/degrade,
// the closed loop between open-loop load and the group ratio() knob, and
// the any-thread set_ratio contract under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/sigrt.hpp"
#include "serve/serve.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

// The closed-loop test asserts wall-clock percentiles; ThreadSanitizer's
// instrumentation starves the 1-CPU CI box enough that only the direction
// of the control loop is asserted there, not the tight latency bound.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIGRT_TSAN 1
#endif
#endif
#if !defined(SIGRT_TSAN) && defined(__SANITIZE_THREAD__)
#define SIGRT_TSAN 1
#endif

namespace {

using namespace sigrt;
using namespace sigrt::serve;

#ifdef SIGRT_TSAN
constexpr bool kTimingStrict = false;
#else
constexpr bool kTimingStrict = true;
#endif

/// Wall-clock spin: occupies a worker for `ns` of wall time regardless of
/// CPU share, making service times deterministic on the 1-CPU CI box.
void spin_for(std::int64_t ns) {
  const std::int64_t end = support::now_ns() + ns;
  while (support::now_ns() < end) {
  }
}

// --- QosController: pure-logic convergence -------------------------------

QosOptions controller_options() {
  QosOptions o;
  o.deadline_ns = 10e6;
  o.quality_floor = 0.1;
  o.min_samples = 8;
  o.backlog_high = 256;
  o.backlog_low = 32;
  return o;
}

TEST(QosController, ConvergesToTheFloorUnderSteadyOverloadAndStaysThere) {
  QosController c(controller_options());
  QosDecision d{};
  const QosObservation overload{/*p99_ns=*/50e6, /*completed=*/100,
                                /*in_flight=*/10};
  for (int i = 0; i < 40; ++i) d = c.update(overload);
  EXPECT_DOUBLE_EQ(d.ratio, 0.1);
  EXPECT_GT(c.violations(), 0u);
  // Settled: further overload epochs hold the ratio at the floor exactly.
  for (int i = 0; i < 10; ++i) d = c.update(overload);
  EXPECT_DOUBLE_EQ(d.ratio, 0.1);
}

TEST(QosController, RecoversToFullQualityUnderLightLoad) {
  QosController c(controller_options());
  for (int i = 0; i < 40; ++i) c.update({50e6, 100, 10});
  ASSERT_DOUBLE_EQ(c.ratio(), 0.1);
  QosDecision d{};
  const QosObservation calm{/*p99_ns=*/1e6, /*completed=*/4, /*in_flight=*/0};
  for (int i = 0; i < 64; ++i) d = c.update(calm);
  EXPECT_DOUBLE_EQ(d.ratio, 1.0);
  EXPECT_DOUBLE_EQ(d.perforation, 0.0);
}

TEST(QosController, BacklogAloneIsAViolationEvenWithoutLatencySamples) {
  QosController c(controller_options());
  const QosDecision d = c.update({/*p99_ns=*/0.0, /*completed=*/0,
                                  /*in_flight=*/1000});
  EXPECT_LT(d.ratio, 1.0);
}

TEST(QosController, FewSlowSamplesCannotCollapseTheRatio) {
  QosController c(controller_options());
  // Two stragglers over deadline at idle: below min_samples, so neither a
  // violation nor calm (p99 above target) — the controller holds.
  for (int i = 0; i < 20; ++i) c.update({80e6, 2, 0});
  EXPECT_DOUBLE_EQ(c.ratio(), 1.0);
}

TEST(QosController, HoldsInsideTheHysteresisBand) {
  QosController c(controller_options());
  // p99 between target (5 ms) and deadline (10 ms), backlog between the
  // watermarks: neither violation nor calm.
  for (int i = 0; i < 20; ++i) c.update({8e6, 100, 100});
  EXPECT_DOUBLE_EQ(c.ratio(), 1.0);
  EXPECT_EQ(c.violations(), 0u);
}

TEST(QosController, LadderPerforatesOnlyAtTheFloorAndUnwindsInReverse) {
  QosController c(controller_options());
  const QosObservation overload{50e6, 100, 10};
  // Rung 1 first: perforation stays untouched until the ratio bottoms out.
  while (c.ratio() > c.options().quality_floor) c.update(overload);
  EXPECT_DOUBLE_EQ(c.perforation(), 0.0);
  // Rung 2: continued violation at the floor escalates perforation...
  c.update(overload);
  EXPECT_DOUBLE_EQ(c.perforation(), c.options().perforate_step);
  for (int i = 0; i < 40; ++i) c.update(overload);
  // ...up to the cap, never beyond.
  EXPECT_DOUBLE_EQ(c.perforation(), c.options().max_perforation);
  ASSERT_DOUBLE_EQ(c.ratio(), 0.1);

  // Recovery unwinds the ladder in reverse: perforation drains to zero
  // before the ratio leaves the floor.
  const QosObservation calm{1e6, 4, 0};
  QosDecision d = c.update(calm);
  EXPECT_DOUBLE_EQ(d.ratio, 0.1);
  while (c.perforation() > 0.0) {
    d = c.update(calm);
    EXPECT_DOUBLE_EQ(d.ratio, 0.1);
  }
  d = c.update(calm);
  EXPECT_GT(d.ratio, 0.1);
}

// --- Admission control ---------------------------------------------------

TEST(Admission, ShedsExactlyAboveMaxInFlight) {
  ServerOptions so;
  so.runtime.workers = 1;
  so.epoch_ms = 0.0;  // no controller: admission behaves deterministically
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "gated";
  cfg.max_in_flight = 32;
  const ClassId cls = srv.register_class(cfg);

  std::atomic<bool> gate{false};
  const auto gated = [&gate] {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };

  int shed = 0;
  for (int i = 0; i < 96; ++i) {
    if (srv.submit(cls, {gated, gated, /*significance=*/1.0}) == Admission::Shed) {
      ++shed;
    }
  }
  // Nothing can complete while the gate is closed, so admission is exact:
  // 32 in flight, 64 shed.
  EXPECT_EQ(shed, 64);
  gate.store(true, std::memory_order_release);
  srv.close();

  const ClassReport r = srv.class_report(cls);
  EXPECT_EQ(r.shed, 64u);
  EXPECT_EQ(r.submitted, 32u);
  EXPECT_EQ(r.served(), 32u);
  EXPECT_EQ(r.served_accurate, 32u);  // significance 1.0 pins accurate
  EXPECT_EQ(r.in_flight, 0u);
}

TEST(Admission, DegradeWatermarkServesTheCheapBody) {
  ServerOptions so;
  so.runtime.workers = 1;
  so.epoch_ms = 0.0;
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "watermarked";
  cfg.max_in_flight = 8;
  cfg.degrade_in_flight = 4;
  const ClassId cls = srv.register_class(cfg);

  std::atomic<bool> gate{false};
  const auto wait_gate = [&gate] {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };

  int admitted = 0, degraded = 0;
  for (int i = 0; i < 8; ++i) {
    switch (srv.submit(cls, {wait_gate, wait_gate, /*significance=*/1.0})) {
      case Admission::Admitted: ++admitted; break;
      case Admission::Degraded: ++degraded; break;
      case Admission::Shed: break;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(degraded, 4);
  gate.store(true, std::memory_order_release);
  srv.close();

  const ClassReport r = srv.class_report(cls);
  EXPECT_EQ(r.degraded, 4u);
  EXPECT_EQ(r.served_approximate, 4u);  // degraded requests ran the cheap body
  EXPECT_EQ(r.served_accurate, 4u);
  EXPECT_EQ(r.in_flight, 0u);
}

TEST(Admission, RegistrationBeyondCapacityThrows) {
  ServerOptions so;
  so.runtime.workers = 0;
  so.epoch_ms = 0.0;
  Server srv(so);
  for (std::size_t i = 0; i < Server::kMaxClasses; ++i) {
    RequestClassConfig cfg;
    cfg.name = "c" + std::to_string(i);
    srv.register_class(cfg);
  }
  RequestClassConfig extra;
  extra.name = "one-too-many";
  EXPECT_THROW(srv.register_class(extra), std::length_error);
  EXPECT_THROW(srv.submit(Server::kMaxClasses + 5, {[] {}}), std::out_of_range);
}

// --- The closed loop -----------------------------------------------------

constexpr std::int64_t kAccurateNs = 3'000'000;  // 3 ms of wall occupancy
constexpr std::int64_t kApproxNs = 100'000;      // 0.1 ms

/// Open-loop Poisson arrivals at `rate_hz` for `seconds`, significance
/// cycling (i%9+1)/10 as in the paper's Listing 1.
void poisson_load(Server& srv, ClassId cls, double rate_hz, double seconds,
                  std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::int64_t next = support::now_ns();
  const std::int64_t end = next + static_cast<std::int64_t>(seconds * 1e9);
  std::uint64_t i = 0;
  while (next < end) {
    std::this_thread::sleep_until(std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(next))));
    srv.submit(cls, {[] { spin_for(kAccurateNs); }, [] { spin_for(kApproxNs); },
                     static_cast<double>(i % 9 + 1) / 10.0});
    next += static_cast<std::int64_t>(-std::log(1.0 - rng.uniform()) * 1e9 /
                                      rate_hz);
    ++i;
  }
}

TEST(ClosedLoop, OverloadDegradesQualityToMeetTheDeadlineAndRecovers) {
  ServerOptions so;
  so.runtime.workers = 1;  // accurate capacity ~333 req/s (3 ms each)
  so.epoch_ms = 20.0;
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "spin";
  cfg.qos.deadline_ns = 50e6;  // p99 objective: 50 ms
  cfg.qos.quality_floor = 0.05;
  cfg.qos.decrease_factor = 0.5;
  cfg.qos.increase_step = 0.02;
  cfg.qos.target_fraction = 0.3;
  // Tight backlog watermarks make queue depth — an instantaneous signal,
  // unlike the one-epoch-lagged p99 estimate — the primary regulator:
  // twelve queued requests cost at most ~36 ms of residence (all-accurate
  // worst case), so the controller backs off well before the deadline and
  // latency violations stay in the tail instead of defining it.
  cfg.qos.backlog_high = 12;
  cfg.qos.backlog_low = 4;
  cfg.max_in_flight = 512;
  const ClassId cls = srv.register_class(cfg);

  // Phase A: ~2.4x overload (800 req/s against ~333/s accurate capacity).
  // Warm up until the controller has reacted, then measure a steady-state
  // window.
  poisson_load(srv, cls, 800.0, 1.0, /*seed=*/1);
  EXPECT_LT(srv.class_report(cls).ratio, 0.95);

  srv.reset_latency_stats();
  poisson_load(srv, cls, 800.0, 1.0, /*seed=*/2);
  const ClassReport overload = srv.class_report(cls);
  // The tentpole acceptance pair: quality got traded away...
  EXPECT_LT(overload.ratio, 0.9);
  EXPECT_LT(overload.achieved_ratio(), 0.9);
  // ...and the deadline held (p99 within 1.2x the class deadline).
  if (kTimingStrict) {
    EXPECT_LE(overload.p99_ms, 1.2 * overload.deadline_ms);
  } else {
    EXPECT_LE(overload.p99_ms, 5.0 * overload.deadline_ms);
  }

  // Phase B: light load (~0.3 utilization fully accurate); the controller
  // walks the ratio back toward full quality.
  poisson_load(srv, cls, 100.0, 1.4, /*seed=*/3);
  const ClassReport calm = srv.class_report(cls);
  EXPECT_GE(calm.ratio, 0.9);

  srv.close();
  const ClassReport fin = srv.class_report(cls);
  // Conservation: every admitted request was served or perforated.
  EXPECT_EQ(fin.submitted, fin.served() + fin.perforated);
  EXPECT_EQ(fin.in_flight, 0u);
}

// --- Any-thread set_ratio + multi-producer stress (TSan targets) ---------

TEST(SetRatioContract, ConcurrentRetargetAndSpawnIsRaceFree) {
  RuntimeConfig c;
  c.workers = 2;
  c.policy = PolicyKind::LQH;
  c.record_task_log = false;
  Runtime rt(c);
  const GroupId g = rt.create_group("stress", 0.5);

  std::atomic<bool> stop{false};
  std::thread tuner([&] {
    support::Xoshiro256 rng(7);
    while (!stop.load(std::memory_order_acquire)) {
      rt.set_ratio(g, rng.uniform());
      std::this_thread::yield();
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)rt.group_report(g);
      (void)rt.stats();
      std::this_thread::yield();
    }
  });

  constexpr int kTasks = 4000;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn(task([&ran] { ran.fetch_add(1, std::memory_order_relaxed); })
                 .approx([&ran] { ran.fetch_add(1, std::memory_order_relaxed); })
                 .significance(static_cast<double>(i % 9 + 1) / 10.0)
                 .group(g));
  }
  rt.wait_group(g);
  stop.store(true, std::memory_order_release);
  tuner.join();
  reader.join();

  EXPECT_EQ(ran.load(), kTasks);  // exactly one body per task, whatever the ratio
  const GroupReport rep = rt.group_report(g);
  EXPECT_EQ(rep.spawned, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(rep.accurate + rep.approximate + rep.dropped,
            static_cast<std::uint64_t>(kTasks));
}

TEST(ServerStress, ConcurrentSubmittersAreAccountedExactly) {
  ServerOptions so;
  so.runtime.workers = 2;
  so.epoch_ms = 5.0;
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "mixed";
  cfg.qos.deadline_ns = 10e6;
  cfg.qos.quality_floor = 0.0;
  cfg.max_in_flight = 256;
  const ClassId cls = srv.register_class(cfg);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 300;
  std::atomic<std::uint64_t> accepted{0}, shed{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Admission a =
            srv.submit(cls, {[] { spin_for(10'000); }, [] { spin_for(1'000); },
                             static_cast<double>((t + i) % 9 + 1) / 10.0});
        if (a == Admission::Shed) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  srv.close();

  const ClassReport r = srv.class_report(cls);
  EXPECT_EQ(r.submitted, accepted.load());
  EXPECT_EQ(r.shed, shed.load());
  EXPECT_EQ(r.submitted, r.served() + r.perforated);
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.submitted + r.shed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  if (r.served() > 0) EXPECT_GT(r.p50_ms, 0.0);
}

// Sharded dispatcher tier: N spawner threads drain the admission queue
// concurrently (the runtime's any-thread spawn contract).  Accounting must
// stay exact — every admitted request served exactly once, nothing leaked.
TEST(ServerStress, ShardedDispatchersServeEveryAdmittedRequest) {
  ServerOptions so;
  so.runtime.workers = 2;
  so.epoch_ms = 0.0;  // deterministic: no controller retargeting
  so.dispatcher_threads = 3;
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "sharded";
  cfg.qos.deadline_ns = 10e6;
  cfg.max_in_flight = 4096;
  const ClassId cls = srv.register_class(cfg);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 400;
  std::atomic<std::uint64_t> ran{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const Admission a = srv.submit(
            cls, {[&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                  [&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                  0.5});
        EXPECT_NE(a, Admission::Shed);  // bound is far above the load
      }
    });
  }
  for (auto& p : producers) p.join();
  srv.close();

  const ClassReport r = srv.class_report(cls);
  EXPECT_EQ(r.submitted, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(r.served(), r.submitted);  // no perforation without a controller
  EXPECT_EQ(ran.load(), r.submitted);  // each request's body ran exactly once
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.shed, 0u);
}

// An inline runtime (workers == 0) executes on the enqueuing thread over
// an unsynchronized queue — the server must clamp the dispatcher tier to
// one thread there, and still serve everything exactly once.
TEST(ServerStress, InlineRuntimeClampsDispatcherSharding) {
  ServerOptions so;
  so.runtime.workers = 0;
  so.epoch_ms = 0.0;
  so.dispatcher_threads = 3;  // must be clamped to 1 internally
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "inline";
  cfg.max_in_flight = 4096;
  const ClassId cls = srv.register_class(cfg);

  std::atomic<std::uint64_t> ran{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        (void)srv.submit(
            cls, {[&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                  nullptr, 1.0});
      }
    });
  }
  for (auto& p : producers) p.join();
  srv.close();

  const ClassReport r = srv.class_report(cls);
  EXPECT_EQ(r.served(), r.submitted);
  EXPECT_EQ(ran.load(), r.submitted);
  EXPECT_EQ(r.in_flight, 0u);
}

}  // namespace
