// Serving-layer tests: QoS controller convergence, admission shed/degrade,
// the closed loop between open-loop load and the group ratio() knob, and
// the any-thread set_ratio contract under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sigrt.hpp"
#include "serve/serve.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

// The closed-loop test asserts wall-clock percentiles; ThreadSanitizer's
// instrumentation starves the 1-CPU CI box enough that only the direction
// of the control loop is asserted there, not the tight latency bound.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SIGRT_TSAN 1
#endif
#endif
#if !defined(SIGRT_TSAN) && defined(__SANITIZE_THREAD__)
#define SIGRT_TSAN 1
#endif

namespace {

using namespace sigrt;
using namespace sigrt::serve;

#ifdef SIGRT_TSAN
constexpr bool kTimingStrict = false;
#else
constexpr bool kTimingStrict = true;
#endif

/// Wall-clock spin: occupies a worker for `ns` of wall time regardless of
/// CPU share, making service times deterministic on the 1-CPU CI box.
void spin_for(std::int64_t ns) {
  const std::int64_t end = support::now_ns() + ns;
  while (support::now_ns() < end) {
  }
}

// --- QosController: pure-logic convergence -------------------------------

QosOptions controller_options() {
  QosOptions o;
  o.deadline_ns = 10e6;
  o.quality_floor = 0.1;
  o.min_samples = 8;
  o.backlog_high = 256;
  o.backlog_low = 32;
  return o;
}

TEST(QosController, ConvergesToTheFloorUnderSteadyOverloadAndStaysThere) {
  QosController c(controller_options());
  QosDecision d{};
  const QosObservation overload{/*p99_ns=*/50e6, /*completed=*/100,
                                /*in_flight=*/10};
  for (int i = 0; i < 40; ++i) d = c.update(overload);
  EXPECT_DOUBLE_EQ(d.ratio, 0.1);
  EXPECT_GT(c.violations(), 0u);
  // Settled: further overload epochs hold the ratio at the floor exactly.
  for (int i = 0; i < 10; ++i) d = c.update(overload);
  EXPECT_DOUBLE_EQ(d.ratio, 0.1);
}

TEST(QosController, RecoversToFullQualityUnderLightLoad) {
  QosController c(controller_options());
  for (int i = 0; i < 40; ++i) c.update({50e6, 100, 10});
  ASSERT_DOUBLE_EQ(c.ratio(), 0.1);
  QosDecision d{};
  const QosObservation calm{/*p99_ns=*/1e6, /*completed=*/4, /*in_flight=*/0};
  for (int i = 0; i < 64; ++i) d = c.update(calm);
  EXPECT_DOUBLE_EQ(d.ratio, 1.0);
  EXPECT_DOUBLE_EQ(d.perforation, 0.0);
}

TEST(QosController, BacklogAloneIsAViolationEvenWithoutLatencySamples) {
  QosController c(controller_options());
  const QosDecision d = c.update({/*p99_ns=*/0.0, /*completed=*/0,
                                  /*in_flight=*/1000});
  EXPECT_LT(d.ratio, 1.0);
}

TEST(QosController, FewSlowSamplesCannotCollapseTheRatio) {
  QosController c(controller_options());
  // Two stragglers over deadline at idle: below min_samples, so neither a
  // violation nor calm (p99 above target) — the controller holds.
  for (int i = 0; i < 20; ++i) c.update({80e6, 2, 0});
  EXPECT_DOUBLE_EQ(c.ratio(), 1.0);
}

TEST(QosController, HoldsInsideTheHysteresisBand) {
  QosController c(controller_options());
  // p99 between target (5 ms) and deadline (10 ms), backlog between the
  // watermarks: neither violation nor calm.
  for (int i = 0; i < 20; ++i) c.update({8e6, 100, 100});
  EXPECT_DOUBLE_EQ(c.ratio(), 1.0);
  EXPECT_EQ(c.violations(), 0u);
}

TEST(QosController, LadderPerforatesOnlyAtTheFloorAndUnwindsInReverse) {
  QosController c(controller_options());
  const QosObservation overload{50e6, 100, 10};
  // Rung 1 first: perforation stays untouched until the ratio bottoms out.
  while (c.ratio() > c.options().quality_floor) c.update(overload);
  EXPECT_DOUBLE_EQ(c.perforation(), 0.0);
  // Rung 2: continued violation at the floor escalates perforation...
  c.update(overload);
  EXPECT_DOUBLE_EQ(c.perforation(), c.options().perforate_step);
  for (int i = 0; i < 40; ++i) c.update(overload);
  // ...up to the cap, never beyond.
  EXPECT_DOUBLE_EQ(c.perforation(), c.options().max_perforation);
  ASSERT_DOUBLE_EQ(c.ratio(), 0.1);

  // Recovery unwinds the ladder in reverse: perforation drains to zero
  // before the ratio leaves the floor.
  const QosObservation calm{1e6, 4, 0};
  QosDecision d = c.update(calm);
  EXPECT_DOUBLE_EQ(d.ratio, 0.1);
  while (c.perforation() > 0.0) {
    d = c.update(calm);
    EXPECT_DOUBLE_EQ(d.ratio, 0.1);
  }
  d = c.update(calm);
  EXPECT_GT(d.ratio, 0.1);
}

// --- Admission control ---------------------------------------------------

TEST(Admission, ShedsExactlyAboveMaxInFlight) {
  ServerOptions so;
  so.runtime.workers = 1;
  so.epoch_ms = 0.0;  // no controller: admission behaves deterministically
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "gated";
  cfg.max_in_flight = 32;
  const ClassId cls = srv.register_class(cfg);

  std::atomic<bool> gate{false};
  const auto gated = [&gate] {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };

  int shed = 0;
  for (int i = 0; i < 96; ++i) {
    if (srv.submit(cls, {gated, gated, /*significance=*/1.0}) == Admission::Shed) {
      ++shed;
    }
  }
  // Nothing can complete while the gate is closed, so admission is exact:
  // 32 in flight, 64 shed.
  EXPECT_EQ(shed, 64);
  gate.store(true, std::memory_order_release);
  srv.close();

  const ClassReport r = srv.class_report(cls);
  EXPECT_EQ(r.shed, 64u);
  EXPECT_EQ(r.submitted, 32u);
  EXPECT_EQ(r.served(), 32u);
  EXPECT_EQ(r.served_accurate, 32u);  // significance 1.0 pins accurate
  EXPECT_EQ(r.in_flight, 0u);
}

TEST(Admission, DegradeWatermarkServesTheCheapBody) {
  ServerOptions so;
  so.runtime.workers = 1;
  so.epoch_ms = 0.0;
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "watermarked";
  cfg.max_in_flight = 8;
  cfg.degrade_in_flight = 4;
  const ClassId cls = srv.register_class(cfg);

  std::atomic<bool> gate{false};
  const auto wait_gate = [&gate] {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };

  int admitted = 0, degraded = 0;
  for (int i = 0; i < 8; ++i) {
    switch (srv.submit(cls, {wait_gate, wait_gate, /*significance=*/1.0})) {
      case Admission::Admitted: ++admitted; break;
      case Admission::Degraded: ++degraded; break;
      case Admission::Shed: break;
    }
  }
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(degraded, 4);
  gate.store(true, std::memory_order_release);
  srv.close();

  const ClassReport r = srv.class_report(cls);
  EXPECT_EQ(r.degraded, 4u);
  EXPECT_EQ(r.served_approximate, 4u);  // degraded requests ran the cheap body
  EXPECT_EQ(r.served_accurate, 4u);
  EXPECT_EQ(r.in_flight, 0u);
}

TEST(Admission, RegistrationBeyondCapacityThrows) {
  ServerOptions so;
  so.runtime.workers = 0;
  so.epoch_ms = 0.0;
  Server srv(so);
  for (std::size_t i = 0; i < Server::kMaxClasses; ++i) {
    RequestClassConfig cfg;
    cfg.name = "c" + std::to_string(i);
    srv.register_class(cfg);
  }
  RequestClassConfig extra;
  extra.name = "one-too-many";
  EXPECT_THROW(srv.register_class(extra), std::length_error);
  EXPECT_THROW(srv.submit(Server::kMaxClasses + 5, {[] {}}), std::out_of_range);
}

// --- The closed loop -----------------------------------------------------

constexpr std::int64_t kAccurateNs = 3'000'000;  // 3 ms of wall occupancy
constexpr std::int64_t kApproxNs = 100'000;      // 0.1 ms

/// Open-loop Poisson arrivals at `rate_hz` for `seconds`, significance
/// cycling (i%9+1)/10 as in the paper's Listing 1.
void poisson_load(Server& srv, ClassId cls, double rate_hz, double seconds,
                  std::uint64_t seed) {
  support::Xoshiro256 rng(seed);
  std::int64_t next = support::now_ns();
  const std::int64_t end = next + static_cast<std::int64_t>(seconds * 1e9);
  std::uint64_t i = 0;
  while (next < end) {
    std::this_thread::sleep_until(std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(next))));
    srv.submit(cls, {[] { spin_for(kAccurateNs); }, [] { spin_for(kApproxNs); },
                     static_cast<double>(i % 9 + 1) / 10.0});
    next += static_cast<std::int64_t>(-std::log(1.0 - rng.uniform()) * 1e9 /
                                      rate_hz);
    ++i;
  }
}

TEST(ClosedLoop, OverloadDegradesQualityToMeetTheDeadlineAndRecovers) {
  ServerOptions so;
  so.runtime.workers = 1;  // accurate capacity ~333 req/s (3 ms each)
  so.epoch_ms = 20.0;
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "spin";
  cfg.qos.deadline_ns = 50e6;  // p99 objective: 50 ms
  cfg.qos.quality_floor = 0.05;
  cfg.qos.decrease_factor = 0.5;
  cfg.qos.increase_step = 0.02;
  cfg.qos.target_fraction = 0.3;
  // Tight backlog watermarks make queue depth — an instantaneous signal,
  // unlike the one-epoch-lagged p99 estimate — the primary regulator:
  // twelve queued requests cost at most ~36 ms of residence (all-accurate
  // worst case), so the controller backs off well before the deadline and
  // latency violations stay in the tail instead of defining it.
  cfg.qos.backlog_high = 12;
  cfg.qos.backlog_low = 4;
  cfg.max_in_flight = 512;
  const ClassId cls = srv.register_class(cfg);

  // Phase A: ~2.4x overload (800 req/s against ~333/s accurate capacity).
  // Warm up until the controller has reacted, then measure a steady-state
  // window.
  poisson_load(srv, cls, 800.0, 1.0, /*seed=*/1);
  EXPECT_LT(srv.class_report(cls).ratio, 0.95);

  srv.reset_latency_stats();
  poisson_load(srv, cls, 800.0, 1.0, /*seed=*/2);
  const ClassReport overload = srv.class_report(cls);
  // The tentpole acceptance pair: quality got traded away...
  EXPECT_LT(overload.ratio, 0.9);
  EXPECT_LT(overload.achieved_ratio(), 0.9);
  // ...and the deadline held (p99 within 1.2x the class deadline).
  if (kTimingStrict) {
    EXPECT_LE(overload.p99_ms, 1.2 * overload.deadline_ms);
  } else {
    EXPECT_LE(overload.p99_ms, 5.0 * overload.deadline_ms);
  }

  // Phase B: light load (~0.3 utilization fully accurate); the controller
  // walks the ratio back toward full quality.
  poisson_load(srv, cls, 100.0, 1.4, /*seed=*/3);
  const ClassReport calm = srv.class_report(cls);
  EXPECT_GE(calm.ratio, 0.9);

  srv.close();
  const ClassReport fin = srv.class_report(cls);
  // Conservation: every admitted request was served or perforated.
  EXPECT_EQ(fin.submitted, fin.served() + fin.perforated);
  EXPECT_EQ(fin.in_flight, 0u);
}

// --- Any-thread set_ratio + multi-producer stress (TSan targets) ---------

TEST(SetRatioContract, ConcurrentRetargetAndSpawnIsRaceFree) {
  RuntimeConfig c;
  c.workers = 2;
  c.policy = PolicyKind::LQH;
  c.record_task_log = false;
  Runtime rt(c);
  const GroupId g = rt.create_group("stress", 0.5);

  std::atomic<bool> stop{false};
  std::thread tuner([&] {
    support::Xoshiro256 rng(7);
    while (!stop.load(std::memory_order_acquire)) {
      rt.set_ratio(g, rng.uniform());
      std::this_thread::yield();
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)rt.group_report(g);
      (void)rt.stats();
      std::this_thread::yield();
    }
  });

  constexpr int kTasks = 4000;
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn(task([&ran] { ran.fetch_add(1, std::memory_order_relaxed); })
                 .approx([&ran] { ran.fetch_add(1, std::memory_order_relaxed); })
                 .significance(static_cast<double>(i % 9 + 1) / 10.0)
                 .group(g));
  }
  rt.wait_group(g);
  stop.store(true, std::memory_order_release);
  tuner.join();
  reader.join();

  EXPECT_EQ(ran.load(), kTasks);  // exactly one body per task, whatever the ratio
  const GroupReport rep = rt.group_report(g);
  EXPECT_EQ(rep.spawned, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(rep.accurate + rep.approximate + rep.dropped,
            static_cast<std::uint64_t>(kTasks));
}

TEST(ServerStress, ConcurrentSubmittersAreAccountedExactly) {
  ServerOptions so;
  so.runtime.workers = 2;
  so.epoch_ms = 5.0;
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "mixed";
  cfg.qos.deadline_ns = 10e6;
  cfg.qos.quality_floor = 0.0;
  cfg.max_in_flight = 256;
  const ClassId cls = srv.register_class(cfg);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 300;
  std::atomic<std::uint64_t> accepted{0}, shed{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Admission a =
            srv.submit(cls, {[] { spin_for(10'000); }, [] { spin_for(1'000); },
                             static_cast<double>((t + i) % 9 + 1) / 10.0});
        if (a == Admission::Shed) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  srv.close();

  const ClassReport r = srv.class_report(cls);
  EXPECT_EQ(r.submitted, accepted.load());
  EXPECT_EQ(r.shed, shed.load());
  EXPECT_EQ(r.submitted, r.served() + r.perforated);
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.submitted + r.shed,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  if (r.served() > 0) EXPECT_GT(r.p50_ms, 0.0);
}

// Sharded dispatcher tier: N spawner threads drain the admission queue
// concurrently (the runtime's any-thread spawn contract).  Accounting must
// stay exact — every admitted request served exactly once, nothing leaked.
TEST(ServerStress, ShardedDispatchersServeEveryAdmittedRequest) {
  ServerOptions so;
  so.runtime.workers = 2;
  so.epoch_ms = 0.0;  // deterministic: no controller retargeting
  so.dispatcher_threads = 3;
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "sharded";
  cfg.qos.deadline_ns = 10e6;
  cfg.max_in_flight = 4096;
  const ClassId cls = srv.register_class(cfg);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 400;
  std::atomic<std::uint64_t> ran{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const Admission a = srv.submit(
            cls, {[&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                  [&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                  0.5});
        EXPECT_NE(a, Admission::Shed);  // bound is far above the load
      }
    });
  }
  for (auto& p : producers) p.join();
  srv.close();

  const ClassReport r = srv.class_report(cls);
  EXPECT_EQ(r.submitted, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(r.served(), r.submitted);  // no perforation without a controller
  EXPECT_EQ(ran.load(), r.submitted);  // each request's body ran exactly once
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.shed, 0u);
}

// An inline runtime (workers == 0) executes on the enqueuing thread over
// an unsynchronized queue — the server must clamp the dispatcher tier to
// one thread there, and still serve everything exactly once.
TEST(ServerStress, InlineRuntimeClampsDispatcherSharding) {
  ServerOptions so;
  so.runtime.workers = 0;
  so.epoch_ms = 0.0;
  so.dispatcher_threads = 3;  // must be clamped to 1 internally
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "inline";
  cfg.max_in_flight = 4096;
  const ClassId cls = srv.register_class(cfg);

  std::atomic<std::uint64_t> ran{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        (void)srv.submit(
            cls, {[&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                  nullptr, 1.0});
      }
    });
  }
  for (auto& p : producers) p.join();
  srv.close();

  const ClassReport r = srv.class_report(cls);
  EXPECT_EQ(r.served(), r.submitted);
  EXPECT_EQ(ran.load(), r.submitted);
  EXPECT_EQ(r.in_flight, 0u);
}

// --- Tenants: per-tenant x per-class admission ---------------------------

TEST(Tenants, HardQuotaShedsExactlyPerTenant) {
  ServerOptions so;
  so.runtime.workers = 1;
  so.epoch_ms = 0.0;
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "work";
  cfg.max_in_flight = 1024;  // the class bound never binds here
  const ClassId cls = srv.register_class(cfg);
  const TenantId a = srv.register_tenant({.name = "a", .max_in_flight = 8});
  const TenantId b = srv.register_tenant({.name = "b", .max_in_flight = 16});

  std::atomic<bool> gate{false};
  const auto gated = [&gate] {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };

  int shed_a = 0, shed_b = 0;
  for (int i = 0; i < 32; ++i) {
    if (srv.submit(cls, a, {gated, gated, 1.0}) == Admission::Shed) ++shed_a;
    if (srv.submit(cls, b, {gated, gated, 1.0}) == Admission::Shed) ++shed_b;
  }
  // Nothing completes while the gate is closed, so each tenant's quota
  // gives an exact oracle: a admits 8 of 32, b admits 16 of 32.
  EXPECT_EQ(shed_a, 24);
  EXPECT_EQ(shed_b, 16);
  gate.store(true, std::memory_order_release);
  srv.close();

  const TenantReport ra = srv.tenant_report(a);
  const TenantReport rb = srv.tenant_report(b);
  ASSERT_EQ(ra.cells.size(), 1u);
  EXPECT_EQ(ra.cells[cls].submitted, 8u);
  EXPECT_EQ(ra.cells[cls].shed, 24u);
  EXPECT_EQ(ra.cells[cls].served(), 8u);
  EXPECT_EQ(ra.cells[cls].served_accurate, 8u);
  EXPECT_EQ(ra.in_flight, 0u);
  EXPECT_EQ(rb.cells[cls].submitted, 16u);
  EXPECT_EQ(rb.cells[cls].shed, 16u);
  EXPECT_EQ(rb.in_flight, 0u);

  // The class-level counters are the sum over tenants; the default tenant
  // saw no traffic.
  const ClassReport rc = srv.class_report(cls);
  EXPECT_EQ(rc.submitted, 24u);
  EXPECT_EQ(rc.shed, 40u);
  EXPECT_EQ(rc.served(), 24u);
  EXPECT_EQ(srv.tenant_report(kDefaultTenant).cells[cls].submitted, 0u);
}

TEST(Tenants, FairnessWatermarkTriagesByCriticality) {
  ServerOptions so;
  so.runtime.workers = 1;
  so.epoch_ms = 0.0;
  Server srv(so);

  RequestClassConfig crit_cfg;
  crit_cfg.name = "crit";
  crit_cfg.criticality = Criticality::Critical;
  crit_cfg.max_in_flight = 1024;
  RequestClassConfig deg_cfg;
  deg_cfg.name = "deg";
  deg_cfg.criticality = Criticality::Degradable;
  deg_cfg.max_in_flight = 1024;
  RequestClassConfig be_cfg;
  be_cfg.name = "be";
  be_cfg.criticality = Criticality::BestEffort;
  be_cfg.max_in_flight = 1024;
  const ClassId crit = srv.register_class(crit_cfg);
  const ClassId deg = srv.register_class(deg_cfg);
  const ClassId be = srv.register_class(be_cfg);

  const TenantId t =
      srv.register_tenant({.name = "t", .max_in_flight = 8, .fair_in_flight = 4});

  std::atomic<bool> gate{false};
  const auto gated = [&gate] {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };
  const auto sub = [&](ClassId c) { return srv.submit(c, t, {gated, gated, 1.0}); };

  // Under the fairness share: everything admits at full quality.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sub(crit), Admission::Admitted);
  // Over the share (in-flight 4): BestEffort sheds, Degradable degrades,
  // Critical still admits.
  EXPECT_EQ(sub(be), Admission::Shed);
  EXPECT_EQ(sub(deg), Admission::Degraded);   // in-flight -> 5
  EXPECT_EQ(sub(crit), Admission::Admitted);  // -> 6
  EXPECT_EQ(sub(crit), Admission::Admitted);  // -> 7
  EXPECT_EQ(sub(crit), Admission::Admitted);  // -> 8 == hard quota
  // At the hard quota even Critical sheds.
  EXPECT_EQ(sub(crit), Admission::Shed);

  gate.store(true, std::memory_order_release);
  srv.close();

  const TenantReport rt = srv.tenant_report(t);
  EXPECT_EQ(rt.cells[crit].submitted, 7u);
  EXPECT_EQ(rt.cells[crit].shed, 1u);
  EXPECT_EQ(rt.cells[deg].submitted, 1u);
  EXPECT_EQ(rt.cells[deg].degraded, 1u);
  EXPECT_EQ(rt.cells[deg].served_approximate, 1u);
  EXPECT_EQ(rt.cells[be].shed, 1u);
  EXPECT_EQ(rt.cells[be].submitted, 0u);
  EXPECT_EQ(rt.in_flight, 0u);
}

TEST(ServerStress, TenantAccountingConservedUnderConcurrency) {
  ServerOptions so;
  so.runtime.workers = 2;
  so.dispatcher_threads = 2;
  so.epoch_ms = 0.0;  // no perforation: submitted == served exactly
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "c0";
  cfg.max_in_flight = 4096;
  const ClassId c0 = srv.register_class(cfg);
  cfg.name = "c1";
  const ClassId c1 = srv.register_class(cfg);
  const TenantId t1 = srv.register_tenant({.name = "t1", .max_in_flight = 64});
  const TenantId t2 = srv.register_tenant({.name = "t2", .max_in_flight = 64});

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<std::uint64_t> ran{0};
  // attempts[tenant][cls] tallied by the submitters themselves — the oracle
  // the server's cells must reconcile against.
  std::atomic<std::uint64_t> attempts[3][2] = {};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int th = 0; th < kThreads; ++th) {
    producers.emplace_back([&, th] {
      support::SplitMix64 rng(0x9E3779B9u * (th + 1));
      for (int i = 0; i < kPerThread; ++i) {
        const TenantId t = (rng.next() & 1) != 0 ? t1 : t2;
        const ClassId c = (rng.next() & 1) != 0 ? c1 : c0;
        attempts[t][c].fetch_add(1, std::memory_order_relaxed);
        (void)srv.submit(
            c, t,
            {[&ran] { ran.fetch_add(1, std::memory_order_relaxed); }, nullptr,
             1.0});
      }
    });
  }
  for (auto& p : producers) p.join();
  srv.close();

  std::uint64_t class_submitted = 0, class_shed = 0;
  for (const ClassId c : {c0, c1}) {
    const ClassReport r = srv.class_report(c);
    class_submitted += r.submitted;
    class_shed += r.shed;
    EXPECT_EQ(r.served(), r.submitted);
    EXPECT_EQ(r.in_flight, 0u);
  }
  EXPECT_EQ(ran.load(), class_submitted);

  // Per-cell conservation: every attempt is either admitted or shed, and
  // every admitted request was served (no perforation, no drops).
  std::uint64_t cell_submitted = 0, cell_shed = 0;
  for (const TenantId t : {t1, t2}) {
    const TenantReport rt = srv.tenant_report(t);
    EXPECT_EQ(rt.in_flight, 0u);
    for (const ClassId c : {c0, c1}) {
      const TenantClassCell& cell = rt.cells[c];
      EXPECT_EQ(cell.submitted + cell.shed,
                attempts[t][c].load(std::memory_order_relaxed))
          << "tenant " << t << " class " << c;
      EXPECT_EQ(cell.served(), cell.submitted);
      EXPECT_EQ(cell.in_flight, 0u);
      cell_submitted += cell.submitted;
      cell_shed += cell.shed;
    }
  }
  // The class totals are exactly the tenant cells summed.
  EXPECT_EQ(cell_submitted, class_submitted);
  EXPECT_EQ(cell_shed, class_shed);
}

// --- EDF dispatch --------------------------------------------------------

TEST(Edf, IssuesByDeadlineNotArrivalOrder) {
  ServerOptions so;
  so.runtime.workers = 1;
  so.dispatcher_threads = 1;
  so.epoch_ms = 0.0;
  so.edf_window = 1;  // serialize issue: execution order == EDF order
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "edf";
  cfg.max_in_flight = 64;
  const ClassId cls = srv.register_class(cfg);

  // Plug the single dispatch-window slot with a gated request so the rest
  // pile up in the EDF heap while we submit them.
  std::atomic<bool> gate{false};
  std::atomic<bool> entered{false};
  Job plug;
  plug.accurate = [&] {
    entered.store(true, std::memory_order_release);
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  };
  plug.significance = 1.0;
  ASSERT_EQ(srv.submit(cls, std::move(plug)), Admission::Admitted);
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  // Later submissions get tighter budgets: EDF must run them in reverse
  // submission order (budget gaps of 10 ms dwarf the submit jitter).
  std::mutex order_mutex;
  std::vector<int> order;
  constexpr int kN = 6;
  for (int i = 0; i < kN; ++i) {
    Job j;
    j.accurate = [&, i] {
      std::lock_guard lock(order_mutex);
      order.push_back(i);
    };
    j.significance = 1.0;
    j.deadline_ns = static_cast<std::int64_t>(kN + 1 - i) * 10'000'000;
    ASSERT_EQ(srv.submit(cls, std::move(j)), Admission::Admitted);
  }

  gate.store(true, std::memory_order_release);
  srv.close();

  ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(order[i], kN - 1 - i) << "slot " << i;
}

// --- Isolation acceptance ------------------------------------------------

// Overloading tenant "flood" must not starve tenant "vip"'s Critical
// class: the flood's fairness watermark degrades/sheds its own traffic and
// its hard quota bounds how much queueing it can inflict on the shared
// runtime, so vip's p99 stays within its (generous) budget.
TEST(Isolation, FloodingTenantLeavesOtherTenantsCriticalP99Intact) {
  ServerOptions so;
  so.runtime.workers = 2;
  so.epoch_ms = 0.0;  // isolation must come from admission, not the ladder
  Server srv(so);

  RequestClassConfig vip_cfg;
  vip_cfg.name = "interactive";
  vip_cfg.criticality = Criticality::Critical;
  vip_cfg.qos.deadline_ns = 20e6;
  vip_cfg.max_in_flight = 256;
  RequestClassConfig batch_cfg;
  batch_cfg.name = "batch";
  batch_cfg.criticality = Criticality::Degradable;
  batch_cfg.max_in_flight = 256;
  const ClassId vip_cls = srv.register_class(vip_cfg);
  const ClassId batch_cls = srv.register_class(batch_cfg);

  const TenantId flood =
      srv.register_tenant({.name = "flood", .max_in_flight = 8, .fair_in_flight = 2});
  const TenantId vip = srv.register_tenant({.name = "vip"});

  std::atomic<bool> stop{false};
  std::thread flooder([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)srv.submit(batch_cls, flood,
                       {[] { spin_for(500'000); }, [] { spin_for(50'000); },
                        0.7});
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  constexpr int kVipRequests = 50;
  for (int i = 0; i < kVipRequests; ++i) {
    ASSERT_EQ(srv.submit(vip_cls, vip,
                         {[] { spin_for(100'000); }, [] { spin_for(20'000); },
                          1.0}),
              Admission::Admitted);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  flooder.join();
  srv.close();

  const ClassReport rv = srv.class_report(vip_cls);
  EXPECT_EQ(rv.shed, 0u);
  EXPECT_EQ(rv.served(), static_cast<std::uint64_t>(kVipRequests));
  EXPECT_EQ(rv.served_accurate, static_cast<std::uint64_t>(kVipRequests));
  if (kTimingStrict) {
    EXPECT_LT(rv.p99_ms, 20.0) << "vip p99 blew its budget under flood";
  }

  // The flood actually overloaded itself: its own traffic degraded or shed.
  const TenantReport rf = srv.tenant_report(flood);
  EXPECT_GT(rf.cells[batch_cls].degraded + rf.cells[batch_cls].shed, 0u);
  EXPECT_EQ(srv.tenant_report(vip).cells[vip_cls].shed, 0u);
}

}  // namespace
