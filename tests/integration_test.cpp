// Cross-module integration tests: full app pipelines exercising policies,
// dependence tracking, energy accounting and quality metrics together.
#include <gtest/gtest.h>

#include "apps/dct.hpp"
#include "apps/kmeans.hpp"
#include "apps/sobel.hpp"
#include "core/sigrt.hpp"
#include "metrics/quality.hpp"

namespace {

using namespace sigrt::apps;

TEST(Integration, AllPoliciesProduceFiniteMeasurements) {
  for (const Variant v :
       {Variant::Accurate, Variant::GTB, Variant::GTBMaxBuffer, Variant::LQH,
        Variant::Perforated}) {
    sobel::Options o;
    o.width = 96;
    o.height = 96;
    o.common.variant = v;
    o.common.degree = Degree::Medium;
    o.common.workers = 2;
    const auto r = sobel::run(o);
    EXPECT_GT(r.time_s, 0.0) << to_string(v);
    EXPECT_GE(r.energy_j, 0.0) << to_string(v);
    EXPECT_GE(r.quality, 0.0) << to_string(v);
    EXPECT_GT(r.tasks_total, 0u) << to_string(v);
  }
}

TEST(Integration, ApproximationReducesWorkAcrossPolicies) {
  // Busy time (and with the model meter, energy) must shrink when tasks are
  // approximated: approx bodies are strictly cheaper.
  auto run_with = [](Variant v, Degree d) {
    dct::Options o;
    o.width = 128;
    o.height = 128;
    o.common.variant = v;
    o.common.degree = d;
    o.common.workers = 2;
    return dct::run(o);
  };
  const auto accurate = run_with(Variant::Accurate, Degree::Mild);
  const auto aggressive = run_with(Variant::GTBMaxBuffer, Degree::Aggressive);
  EXPECT_LT(aggressive.tasks_accurate, accurate.tasks_accurate);
}

TEST(Integration, EnergyScalesWithComputeUnderModelMeter) {
  // Two identical runtimes, one doing 4x the work: modeled energy must be
  // strictly larger for the bigger job (RAPL hosts satisfy this too, but
  // noisily; only assert when the model meter is active).
  sigrt::RuntimeConfig c;
  c.workers = 2;
  auto burn = [](int n) {
    return [n] {
      volatile double x = 1.0;
      for (int i = 0; i < n * 100000; ++i) x = x * 1.0000001 + 0.1;
    };
  };
  sigrt::Runtime rt(c);
  if (rt.meter().name() != "model") GTEST_SKIP() << "RAPL present";

  const sigrt::energy::Scope small(rt.meter());
  for (int i = 0; i < 4; ++i) rt.spawn(sigrt::task(burn(1)));
  rt.wait_all();
  const double small_j = small.joules();

  const sigrt::energy::Scope big(rt.meter());
  for (int i = 0; i < 16; ++i) rt.spawn(sigrt::task(burn(1)));
  rt.wait_all();
  EXPECT_GT(big.joules(), small_j);
}

TEST(Integration, MixedGroupsWithDifferentPoliciesOfOneRuntime) {
  // One runtime, several labeled phases with different ratios, dependent
  // tasks across phases — the Listing 1 structure generalized.
  sigrt::RuntimeConfig c;
  c.workers = 4;
  c.policy = sigrt::PolicyKind::GTB;
  c.gtb_buffer = 8;
  sigrt::Runtime rt(c);

  alignas(1024) static double stage1[512];
  alignas(1024) static double stage2[512];

  const auto g1 = rt.create_group("produce", 1.0);
  const auto g2 = rt.create_group("refine", 0.5);

  for (int i = 0; i < 8; ++i) {
    double* chunk = stage1 + i * 64;
    rt.spawn(sigrt::task([chunk] {
               for (int j = 0; j < 64; ++j) chunk[j] = j;
             })
                 .group(g1)
                 .out(chunk, 64));
  }
  for (int i = 0; i < 8; ++i) {
    double* src = stage1 + i * 64;
    double* dst = stage2 + i * 64;
    rt.spawn(sigrt::task([src, dst] {
               for (int j = 0; j < 64; ++j) dst[j] = src[j] * 2.0;
             })
                 .approx([src, dst] {
                   for (int j = 0; j < 64; ++j) dst[j] = src[j];
                 })
                 .significance((i % 9 + 1) / 10.0)
                 .group(g2)
                 .in(src, 64)
                 .out(dst, 64));
    }
  rt.wait_all();

  const auto r1 = rt.group_report(g1);
  const auto r2 = rt.group_report(g2);
  EXPECT_EQ(r1.accurate, 8u);
  EXPECT_EQ(r2.accurate + r2.approximate, 8u);
  EXPECT_EQ(r2.accurate, 4u);
  // Data flowed: every refined chunk holds either x2 (accurate) or x1
  // (approximate) of the produced values.
  for (int i = 0; i < 8; ++i) {
    const double v = stage2[i * 64 + 10];
    EXPECT_TRUE(v == 20.0 || v == 10.0) << "chunk " << i;
  }
}

TEST(Integration, QualityEnergyTradeoffIsMonotoneForSobel) {
  // The central claim of the paper in miniature: lowering the ratio cannot
  // improve quality, and cannot increase accurate-task count.
  std::vector<double> ratios{1.0, 0.8, 0.5, 0.2, 0.0};
  double prev_quality = -1.0;
  std::uint64_t prev_accurate = UINT64_MAX;
  for (const double ratio : ratios) {
    sobel::Options o;
    o.width = 128;
    o.height = 128;
    o.common.variant = Variant::GTBMaxBuffer;
    o.common.workers = 2;
    o.ratio_override = ratio;
    const auto r = sobel::run(o);
    EXPECT_GE(r.quality, prev_quality - 1e-9) << "ratio " << ratio;
    EXPECT_LE(r.tasks_accurate, prev_accurate) << "ratio " << ratio;
    prev_quality = r.quality;
    prev_accurate = r.tasks_accurate;
  }
}

TEST(Integration, KmeansPoliciesAgreeOnQualityScale) {
  for (const Variant v : {Variant::GTB, Variant::GTBMaxBuffer, Variant::LQH}) {
    kmeans::Options o;
    o.points = 512;
    o.clusters = 4;
    o.chunk = 32;
    o.common.variant = v;
    o.common.degree = Degree::Medium;
    o.common.workers = 2;
    const auto r = kmeans::run(o);
    EXPECT_LT(r.quality, 0.1) << to_string(v);
  }
}

}  // namespace
