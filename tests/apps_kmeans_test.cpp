// K-means benchmark tests.
#include <gtest/gtest.h>

#include "apps/kmeans.hpp"

namespace {

using namespace sigrt::apps;

kmeans::Options small_options(Variant v, Degree d) {
  kmeans::Options o;
  o.points = 1024;
  o.dims = 16;
  o.clusters = 4;
  o.chunk = 32;
  o.max_iterations = 40;
  o.common.variant = v;
  o.common.degree = d;
  o.common.workers = 2;
  return o;
}

TEST(Kmeans, RatiosMatchTable1) {
  EXPECT_DOUBLE_EQ(kmeans::ratio_for(Degree::Mild), 0.80);
  EXPECT_DOUBLE_EQ(kmeans::ratio_for(Degree::Medium), 0.60);
  EXPECT_DOUBLE_EQ(kmeans::ratio_for(Degree::Aggressive), 0.40);
}

TEST(Kmeans, ReferenceConvergesOnSeparatedBlobs) {
  const auto o = small_options(Variant::Accurate, Degree::Mild);
  const auto sol = kmeans::reference(o);
  EXPECT_GT(sol.iterations, 1u);
  EXPECT_LT(sol.iterations, o.max_iterations);
  EXPECT_EQ(sol.centroids.size(), o.clusters * o.dims);
}

TEST(Kmeans, ReferenceIsDeterministic) {
  const auto o = small_options(Variant::Accurate, Degree::Mild);
  const auto a = kmeans::reference(o);
  const auto b = kmeans::reference(o);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Kmeans, AccurateVariantMatchesReference) {
  const auto o = small_options(Variant::Accurate, Degree::Mild);
  kmeans::Solution sol;
  const auto r = kmeans::run(o, &sol);
  EXPECT_DOUBLE_EQ(r.quality, 0.0);
  EXPECT_EQ(sol.iterations, kmeans::reference(o).iterations);
}

TEST(Kmeans, GtbIsDeterministicAcrossRuns) {
  const auto o = small_options(Variant::GTB, Degree::Medium);
  kmeans::Solution a, b;
  kmeans::run(o, &a);
  kmeans::run(o, &b);
  EXPECT_EQ(a.centroids, b.centroids);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Kmeans, ErrorsStaySmallEvenAggressive) {
  // Paper: "even in the aggressive case, all policies demonstrate relative
  // errors less than 0.45%".  Allow a loose bound here.
  const auto r = kmeans::run(small_options(Variant::GTBMaxBuffer, Degree::Aggressive));
  EXPECT_LT(r.quality, 0.05);
}

TEST(Kmeans, ProvidedRatioTracksDegree) {
  const auto r = kmeans::run(small_options(Variant::GTBMaxBuffer, Degree::Medium));
  EXPECT_NEAR(r.provided_ratio, 0.60, 0.05);
}

TEST(Kmeans, UniformSignificanceHasNoInversions) {
  const auto r = kmeans::run(small_options(Variant::GTB, Degree::Medium));
  EXPECT_DOUBLE_EQ(r.inversion_fraction, 0.0);
}

TEST(Kmeans, LqhTakesAtLeastAsManyIterationsAsGtb) {
  // §4.2: LQH's localized, nondeterministic chunk selection slows
  // convergence relative to GTB's fixed accurate set.
  auto o = small_options(Variant::GTB, Degree::Aggressive);
  kmeans::Solution gtb;
  kmeans::run(o, &gtb);
  o.common.variant = Variant::LQH;
  o.common.workers = 4;
  kmeans::Solution lqh;
  kmeans::run(o, &lqh);
  EXPECT_GE(lqh.iterations, gtb.iterations);
}

TEST(Kmeans, PerforationSkipsChunksButConverges) {
  kmeans::Solution sol;
  const auto r = kmeans::run(small_options(Variant::Perforated, Degree::Medium), &sol);
  EXPECT_GT(sol.iterations, 0u);
  EXPECT_LT(r.quality, 0.2);
}

TEST(Kmeans, TaskCountEqualsChunksTimesIterations) {
  kmeans::Solution sol;
  const auto o = small_options(Variant::GTB, Degree::Mild);
  const auto r = kmeans::run(o, &sol);
  const std::size_t chunks = (o.points + o.chunk - 1) / o.chunk;
  EXPECT_EQ(r.tasks_total, chunks * sol.iterations);
}

}  // namespace
