// Stress tests for the lock-free work-stealing scheduler core: high task
// counts across many workers with stealing enabled, exact accounting, the
// NTC deque-partition invariant under churn, the batched enqueue path, and
// the same workload under the deterministic inline mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "core/sigrt.hpp"
#include "scheduler_test_util.hpp"

namespace {

using sigrt::Scheduler;
using sigrt::Task;
using sigrt::TaskRef;
using sigrt::test::exec_thunk;
using sigrt::test::make_ready_task;

void wait_until(const std::atomic<std::uint64_t>& counter, std::uint64_t target) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (counter.load(std::memory_order_acquire) < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

// SchedulerStats are approximate while workers run (a worker bumps its
// executed counter after the execute callback returns), so convergence to
// the exact total needs its own bounded wait.
void wait_for_executed(const Scheduler& s, std::uint64_t target) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (s.stats().executed < target &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

TEST(SchedulerStress, HundredThousandTasksAcrossEightWorkers) {
  constexpr std::uint64_t kTasks = 100000;
  constexpr unsigned kWorkers = 8;
  std::atomic<std::uint64_t> runs{0};
  {
    auto fn = [&](Task& t, unsigned) {
      t.accurate();
      runs.fetch_add(1, std::memory_order_acq_rel);
    };
    Scheduler s(kWorkers, 0, /*steal=*/true, &fn, exec_thunk(fn));
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      // A sprinkle of heavier tasks induces imbalance so stealing must
      // engage even under perfectly even initial routing.
      if (i % 97 == 0) {
        s.enqueue(make_ready_task([] {
          volatile double x = 1.0;
          for (int j = 0; j < 20000; ++j) x = x * 1.0000001 + 0.1;
        }));
      } else {
        s.enqueue(make_ready_task([] {}));
      }
    }
    wait_until(runs, kTasks);
    EXPECT_EQ(runs.load(), kTasks);
    wait_for_executed(s, kTasks);
    const auto stats = s.stats();
    EXPECT_EQ(stats.executed, kTasks);  // nothing lost, nothing duplicated
    EXPECT_GT(stats.steals, 0u);
    EXPECT_GT(stats.busy_ns, 0);
  }  // destructor: all workers parked in the eventcount must release cleanly
}

TEST(SchedulerStress, BulkEnqueuePublishesEveryTaskExactlyOnce) {
  constexpr std::uint64_t kBatches = 200;
  constexpr std::uint64_t kBatchSize = 512;
  std::atomic<std::uint64_t> runs{0};
  {
    auto fn = [&](Task& t, unsigned) {
      t.accurate();
      runs.fetch_add(1, std::memory_order_acq_rel);
    };
    Scheduler s(8, 0, /*steal=*/true, &fn, exec_thunk(fn));
    for (std::uint64_t b = 0; b < kBatches; ++b) {
      std::vector<TaskRef> window;
      window.reserve(kBatchSize);
      for (std::uint64_t i = 0; i < kBatchSize; ++i) {
        // Alternate partitions inside one window: Accurate stays on the
        // reliable-only deques, Approximate may go anywhere.
        window.push_back(make_ready_task(
            [] {}, i % 2 == 0 ? sigrt::ExecutionKind::Accurate
                              : sigrt::ExecutionKind::Approximate));
      }
      s.enqueue_bulk(window);
    }
    wait_until(runs, kBatches * kBatchSize);
    EXPECT_EQ(runs.load(), kBatches * kBatchSize);
    wait_for_executed(s, kBatches * kBatchSize);
    EXPECT_EQ(s.stats().executed, kBatches * kBatchSize);
  }
}

TEST(SchedulerStress, PartitionRuleHoldsUnderChurn) {
  // 8 workers, 3 of them NTC.  Accurate tasks must never execute on an
  // unreliable worker, no matter how aggressively inboxes are raided and
  // deques are stolen from.
  constexpr std::uint64_t kTasks = 60000;
  std::atomic<std::uint64_t> runs{0};
  std::atomic<std::uint64_t> violations{0};
  {
    auto fn = [&](Task& t, unsigned w) {
      if (t.kind == sigrt::ExecutionKind::Accurate && w >= 5) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
      t.accurate();
      runs.fetch_add(1, std::memory_order_acq_rel);
    };
    Scheduler s(8, 3, /*steal=*/true, &fn, exec_thunk(fn));
    EXPECT_EQ(s.unreliable_count(), 3u);
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      s.enqueue(make_ready_task([] {},
                                i % 3 == 0 ? sigrt::ExecutionKind::Approximate
                                           : sigrt::ExecutionKind::Accurate));
    }
    wait_until(runs, kTasks);
    EXPECT_EQ(runs.load(), kTasks);
    EXPECT_EQ(violations.load(), 0u);
  }
}

TEST(SchedulerStress, InlineModeIsDeterministic) {
  // The same 100k-task workload in inline mode: synchronous, in order, no
  // steals — the deterministic twin used to debug scheduler-level issues.
  constexpr std::uint64_t kTasks = 100000;
  std::uint64_t runs = 0;
  std::uint64_t order_check = 0;
  bool in_order = true;
  auto fn = [&](Task& t, unsigned w) {
    EXPECT_EQ(w, 0u);
    t.accurate();
    ++runs;
  };
  Scheduler s(0, 0, /*steal=*/true, &fn, exec_thunk(fn));
  EXPECT_TRUE(s.inline_mode());
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    s.enqueue(make_ready_task([&, i] {
      if (order_check != i) in_order = false;
      ++order_check;
    }));
  }
  EXPECT_EQ(runs, kTasks);
  EXPECT_TRUE(in_order);
  EXPECT_EQ(s.stats().executed, kTasks);
  EXPECT_EQ(s.stats().steals, 0u);
}

TEST(SchedulerStress, RuntimeLevelStressWithDependentsAndPolicies) {
  // End-to-end churn through the runtime facade: LQH classification at
  // dequeue, batched dependent release, and barrier interleavings.
  sigrt::RuntimeConfig c;
  c.workers = 8;
  c.policy = sigrt::PolicyKind::LQH;
  c.record_task_log = false;
  sigrt::Runtime rt(c);
  const auto g = rt.create_group("stress", 0.5);
  std::atomic<std::uint64_t> runs{0};
  constexpr int kRounds = 20;
  constexpr int kPerRound = 2000;
  for (int r = 0; r < kRounds; ++r) {
    for (int i = 0; i < kPerRound; ++i) {
      rt.spawn(sigrt::task([&] { runs.fetch_add(1, std::memory_order_relaxed); })
                   .approx([&] { runs.fetch_add(1, std::memory_order_relaxed); })
                   .significance(static_cast<double>(i % 9 + 1) / 10.0)
                   .group(g));
    }
    rt.wait_group(g);
  }
  EXPECT_EQ(runs.load(), static_cast<std::uint64_t>(kRounds) * kPerRound);
  const auto stats = rt.stats();
  EXPECT_EQ(stats.spawned, static_cast<std::uint64_t>(kRounds) * kPerRound);
}

}  // namespace
