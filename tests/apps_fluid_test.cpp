// Fluidanimate (SPH) benchmark tests.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/fluidanimate.hpp"

namespace {

using namespace sigrt::apps;

fluid::Options small_options(Variant v, Degree d) {
  fluid::Options o;
  o.particles = 512;
  o.steps = 16;
  o.chunk = 64;
  o.common.variant = v;
  o.common.degree = d;
  o.common.workers = 2;
  return o;
}

TEST(Fluid, DegreesMatchTable1) {
  EXPECT_DOUBLE_EQ(fluid::accurate_step_fraction(Degree::Mild), 0.5);
  EXPECT_DOUBLE_EQ(fluid::accurate_step_fraction(Degree::Medium), 0.25);
  EXPECT_DOUBLE_EQ(fluid::accurate_step_fraction(Degree::Aggressive), 0.125);
  EXPECT_EQ(fluid::period_for(Degree::Mild), 2u);
  EXPECT_EQ(fluid::period_for(Degree::Medium), 4u);
  EXPECT_EQ(fluid::period_for(Degree::Aggressive), 8u);
}

TEST(Fluid, PerforationNotApplicable) {
  EXPECT_FALSE(fluid::variant_supported(Variant::Perforated));
  EXPECT_TRUE(fluid::variant_supported(Variant::GTB));
  const auto r = fluid::run(small_options(Variant::Perforated, Degree::Mild));
  EXPECT_DOUBLE_EQ(r.quality, -1.0);  // sentinel
  EXPECT_EQ(r.tasks_total, 0u);
}

TEST(Fluid, ReferenceKeepsParticlesInBox) {
  const auto s = fluid::reference(small_options(Variant::Accurate, Degree::Mild));
  for (std::size_t i = 0; i < s.px.size(); ++i) {
    EXPECT_GE(s.px[i], 0.0);
    EXPECT_LE(s.px[i], 1.0);
    EXPECT_GE(s.py[i], 0.0);
    EXPECT_LE(s.py[i], 1.0);
    EXPECT_GE(s.pz[i], 0.0);
    EXPECT_LE(s.pz[i], 1.0);
  }
}

TEST(Fluid, GravityPullsTheFluidDown) {
  auto o = small_options(Variant::Accurate, Degree::Mild);
  auto mean_height = [](const fluid::State& s) {
    double m = 0.0;
    for (const double y : s.py) m += y;
    return m / static_cast<double>(s.py.size());
  };
  // Mean height must strictly decrease as the block falls.
  fluid::Options none = o;
  none.steps = 1;
  const double early = mean_height(fluid::reference(none));
  const double late = mean_height(fluid::reference(o));
  EXPECT_LT(late, early);
}

TEST(Fluid, ReferenceIsDeterministic) {
  const auto o = small_options(Variant::Accurate, Degree::Mild);
  const auto a = fluid::reference(o);
  const auto b = fluid::reference(o);
  EXPECT_EQ(a.px, b.px);
  EXPECT_EQ(a.py, b.py);
  EXPECT_EQ(a.pz, b.pz);
}

TEST(Fluid, AccurateVariantMatchesReference) {
  const auto r = fluid::run(small_options(Variant::Accurate, Degree::Mild));
  EXPECT_LT(r.quality, 1e-9);
}

TEST(Fluid, StepScheduleDrivesAccurateTaskShare) {
  // Mild: every other step accurate; accurate steps spawn two task waves
  // (density + force), approximate steps one (advect).
  fluid::State out;
  const auto o = small_options(Variant::GTB, Degree::Mild);
  const auto r = fluid::run(o, &out);
  const std::size_t chunks = o.particles / o.chunk;
  const std::size_t acc_steps = o.steps / 2;
  EXPECT_EQ(r.tasks_accurate, acc_steps * 2 * chunks);
  EXPECT_EQ(r.tasks_approximate, (o.steps - acc_steps) * chunks);
}

TEST(Fluid, ErrorGrowsWithAggressiveness) {
  const auto mild = fluid::run(small_options(Variant::GTBMaxBuffer, Degree::Mild));
  const auto aggr =
      fluid::run(small_options(Variant::GTBMaxBuffer, Degree::Aggressive));
  EXPECT_LE(mild.quality, aggr.quality);
  EXPECT_GT(aggr.quality, 0.0);
}

TEST(Fluid, MildStaysAcceptable) {
  // Paper: only the mild degree yields acceptable results; errors remain
  // bounded rather than exploding.
  const auto r = fluid::run(small_options(Variant::GTBMaxBuffer, Degree::Mild));
  EXPECT_LT(r.quality, 0.5);
  for (const double v : {r.quality}) EXPECT_TRUE(std::isfinite(v));
}

TEST(Fluid, ApproximateStepsKeepParticlesInBox) {
  fluid::State out;
  fluid::run(small_options(Variant::LQH, Degree::Aggressive), &out);
  for (std::size_t i = 0; i < out.px.size(); ++i) {
    EXPECT_GE(out.px[i], 0.0);
    EXPECT_LE(out.px[i], 1.0);
    EXPECT_GE(out.py[i], 0.0);
    EXPECT_LE(out.py[i], 1.0);
  }
}

}  // namespace
