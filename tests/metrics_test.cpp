// Quality-metric tests (PSNR, relative error families).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "metrics/quality.hpp"
#include "support/image.hpp"

namespace {

using namespace sigrt::metrics;

TEST(Mse, ZeroForIdenticalBytes) {
  std::vector<std::uint8_t> a{1, 2, 3, 200};
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Mse, KnownValue) {
  std::vector<std::uint8_t> a{0, 0, 0, 0};
  std::vector<std::uint8_t> b{2, 2, 2, 2};
  EXPECT_DOUBLE_EQ(mse(a, b), 4.0);
}

TEST(Mse, DoubleOverload) {
  std::vector<double> a{1.0, 2.0};
  std::vector<double> b{2.0, 4.0};
  EXPECT_DOUBLE_EQ(mse(std::span<const double>(a), std::span<const double>(b)),
                   2.5);
}

TEST(Psnr, InfiniteForIdenticalImages) {
  const auto img = sigrt::support::synthetic_image(32, 32, 9);
  EXPECT_TRUE(std::isinf(psnr_db(img, img)));
  EXPECT_DOUBLE_EQ(inverse_psnr(psnr_db(img, img)), 0.0);
}

TEST(Psnr, KnownValueForConstantOffset) {
  std::vector<std::uint8_t> a(100, 100);
  std::vector<std::uint8_t> b(100, 110);
  // MSE = 100 -> PSNR = 10 log10(255^2 / 100) ~= 28.13 dB
  EXPECT_NEAR(psnr_db(a, b), 28.13, 0.01);
}

TEST(Psnr, MonotoneInNoise) {
  std::vector<std::uint8_t> ref(256, 128);
  std::vector<std::uint8_t> small = ref;
  std::vector<std::uint8_t> large = ref;
  for (std::size_t i = 0; i < ref.size(); i += 2) {
    small[i] = 130;
    large[i] = 160;
  }
  EXPECT_GT(psnr_db(ref, small), psnr_db(ref, large));
}

TEST(InversePsnr, OrdersQualityLowerIsBetter) {
  EXPECT_LT(inverse_psnr(40.0), inverse_psnr(20.0));
}

TEST(RelativeError, ZeroForIdentical) {
  std::vector<double> a{1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_relative_error(a, a), 0.0);
  EXPECT_DOUBLE_EQ(relative_l2_error(a, a), 0.0);
  EXPECT_DOUBLE_EQ(max_abs_error(a, a), 0.0);
}

TEST(RelativeError, MeanRelativeKnownValue) {
  std::vector<double> ref{10.0, 20.0};
  std::vector<double> cand{11.0, 18.0};
  EXPECT_NEAR(mean_relative_error(ref, cand), (0.1 + 0.1) / 2.0, 1e-12);
}

TEST(RelativeError, FloorGuardsZeroReference) {
  std::vector<double> ref{0.0};
  std::vector<double> cand{1.0};
  EXPECT_TRUE(std::isfinite(mean_relative_error(ref, cand)));
}

TEST(RelativeError, L2KnownValue) {
  std::vector<double> ref{3.0, 4.0};
  std::vector<double> cand{3.0, 5.0};  // ||diff|| = 1, ||ref|| = 5
  EXPECT_NEAR(relative_l2_error(ref, cand), 0.2, 1e-12);
}

TEST(RelativeError, L2ZeroReferenceIsInfinityUnlessIdentical) {
  std::vector<double> zero{0.0, 0.0};
  std::vector<double> cand{1.0, 0.0};
  EXPECT_TRUE(std::isinf(relative_l2_error(zero, cand)));
  EXPECT_DOUBLE_EQ(relative_l2_error(zero, zero), 0.0);
}

TEST(RelativeError, MaxAbsPicksWorstElement) {
  std::vector<double> ref{1.0, 2.0, 3.0};
  std::vector<double> cand{1.1, 2.5, 3.0};
  EXPECT_NEAR(max_abs_error(ref, cand), 0.5, 1e-12);
}

TEST(Nrmse, NormalizedByRange) {
  std::vector<double> ref{0.0, 10.0};   // range 10
  std::vector<double> cand{1.0, 11.0};  // rmse 1
  EXPECT_NEAR(nrmse(ref, cand), 0.1, 1e-12);
}

TEST(Nrmse, ConstantReferenceHandled) {
  std::vector<double> ref{5.0, 5.0};
  EXPECT_DOUBLE_EQ(nrmse(ref, ref), 0.0);
  std::vector<double> cand{5.0, 6.0};
  EXPECT_TRUE(std::isinf(nrmse(ref, cand)));
}

TEST(Metrics, EmptyInputsAreZero) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(mse(std::span<const double>(empty), empty), 0.0);
  EXPECT_DOUBLE_EQ(mean_relative_error(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(nrmse(empty, empty), 0.0);
}

}  // namespace
