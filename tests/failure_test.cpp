// Failure-injection tests: throwing task bodies, error propagation at
// barriers, runtime survival after failures, edge-case inputs.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/sigrt.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig config(unsigned workers, PolicyKind p = PolicyKind::Agnostic) {
  RuntimeConfig c;
  c.workers = workers;
  c.policy = p;
  return c;
}

TEST(Failure, TaskExceptionSurfacesAtWaitAll) {
  Runtime rt(config(2));
  rt.spawn(sigrt::task([] { throw std::runtime_error("task boom"); }));
  EXPECT_THROW(rt.wait_all(), std::runtime_error);
}

TEST(Failure, TaskExceptionSurfacesAtWaitGroup) {
  Runtime rt(config(0));
  const auto g = rt.create_group("g", 1.0);
  rt.spawn(sigrt::task([] { throw std::logic_error("boom"); }).group(g));
  EXPECT_THROW(rt.wait_group(g), std::logic_error);
}

TEST(Failure, OnlyFirstExceptionIsKept) {
  Runtime rt(config(0));
  rt.spawn(sigrt::task([] { throw std::runtime_error("first"); }));
  rt.spawn(sigrt::task([] { throw std::logic_error("second"); }));
  try {
    rt.wait_all();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(Failure, ErrorClearedAfterRethrow) {
  Runtime rt(config(0));
  rt.spawn(sigrt::task([] { throw std::runtime_error("boom"); }));
  EXPECT_THROW(rt.wait_all(), std::runtime_error);
  // The runtime stays usable and a clean wait does not rethrow again.
  int x = 0;
  rt.spawn(sigrt::task([&] { x = 1; }));
  rt.wait_all();
  EXPECT_EQ(x, 1);
}

TEST(Failure, SiblingTasksStillRunAfterThrow) {
  Runtime rt(config(4));
  std::atomic<int> runs{0};
  for (int i = 0; i < 50; ++i) {
    if (i == 10) {
      rt.spawn(sigrt::task([] { throw std::runtime_error("boom"); }));
    } else {
      rt.spawn(sigrt::task([&] { runs.fetch_add(1); }));
    }
  }
  EXPECT_THROW(rt.wait_all(), std::runtime_error);
  EXPECT_EQ(runs.load(), 49);
}

TEST(Failure, ThrowingProducerStillReleasesDependents) {
  Runtime rt(config(2));
  alignas(1024) static int data[256];
  std::atomic<bool> consumer_ran{false};
  rt.spawn(sigrt::task([] { throw std::runtime_error("producer died"); })
               .out(data, 256));
  rt.spawn(sigrt::task([&] { consumer_ran.store(true); }).in(data, 256));
  EXPECT_THROW(rt.wait_all(), std::runtime_error);
  EXPECT_TRUE(consumer_ran.load());
}

TEST(Failure, ThrowingApproxBodyAlsoPropagates) {
  Runtime rt(config(0, PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 0.0);
  rt.spawn(sigrt::task([] {})
               .approx([] { throw std::runtime_error("approx boom"); })
               .significance(0.5)
               .group(g));
  EXPECT_THROW(rt.wait_group(g), std::runtime_error);
}

TEST(Failure, DroppedTaskCannotThrow) {
  Runtime rt(config(0, PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 0.0);
  // Would throw if executed — but it is dropped (no approxfun).
  rt.spawn(sigrt::task([] { throw std::runtime_error("never"); })
               .significance(0.5)
               .group(g));
  rt.wait_group(g);
  EXPECT_EQ(rt.group_report(g).dropped, 1u);
}

TEST(Failure, ZeroTasksWaitAllIsTrivial) {
  Runtime rt(config(4));
  rt.wait_all();
  rt.wait_all();
  SUCCEED();
}

TEST(Failure, EmptyGroupBarrierIsTrivial) {
  Runtime rt(config(2, PolicyKind::GTB));
  const auto g = rt.create_group("empty", 0.5);
  rt.wait_group(g);
  SUCCEED();
}

TEST(Failure, WaitOnUntouchedRangeReturnsImmediately) {
  Runtime rt(config(2));
  int local = 0;
  rt.wait_on(&local, sizeof(local));
  SUCCEED();
}

TEST(Failure, ZeroSizeAccessIsIgnored) {
  Runtime rt(config(0));
  int data = 0;
  rt.spawn(sigrt::task([&] { data = 1; }).out(&data, 0));
  rt.wait_all();
  EXPECT_EQ(data, 1);
}

TEST(Failure, RatioOutsideUnitIntervalClamps) {
  Runtime rt(config(0, PolicyKind::GTBMaxBuffer));
  const auto hi = rt.create_group("hi", 5.0);
  const auto lo = rt.create_group("lo", -2.0);
  int hi_acc = 0;
  int lo_acc = 0;
  for (int i = 0; i < 4; ++i) {
    rt.spawn(sigrt::task([&] { ++hi_acc; }).approx([] {}).significance(0.5).group(hi));
    rt.spawn(sigrt::task([&] { ++lo_acc; }).approx([] {}).significance(0.5).group(lo));
  }
  rt.wait_all();
  EXPECT_EQ(hi_acc, 4);  // ratio > 1 behaves as 1
  EXPECT_EQ(lo_acc, 0);  // ratio < 0 behaves as 0
}

TEST(Failure, ManySmallGroups) {
  Runtime rt(config(2, PolicyKind::GTB));
  std::atomic<int> runs{0};
  for (int g = 0; g < 64; ++g) {
    const auto gid = rt.create_group("g" + std::to_string(g), 1.0);
    rt.spawn(sigrt::task([&] { runs.fetch_add(1); }).group(gid));
  }
  rt.wait_all();
  EXPECT_EQ(runs.load(), 64);
}

TEST(Failure, ExceptionFromHelpingFramePropagates) {
  // An in-task taskwait turns the waiting worker into a helper that
  // executes queued tasks in its own frame.  An exception thrown by a task
  // that happens to run inside that helping frame must surface exactly like
  // one from a plain worker dispatch — recorded once, rethrown at a
  // barrier, the helping loop itself intact.
  Runtime rt(config(2));
  std::atomic<int> siblings{0};
  std::atomic<bool> parent_finished{false};
  rt.spawn(sigrt::task([&] {
    rt.spawn(sigrt::task([] { throw std::runtime_error("child boom"); }));
    for (int i = 0; i < 16; ++i) {
      rt.spawn(sigrt::task([&] { siblings.fetch_add(1); }));
    }
    // Helping barrier: the parent executes its own children here; one of
    // them throws inside the parent's frame.  The wait itself may or may
    // not rethrow (the winner of the error race does) — what matters is
    // that it RETURNS with all children done instead of deadlocking or
    // unwinding the worker loop.
    try {
      rt.wait_all();
    } catch (const std::runtime_error&) {
    }
    parent_finished.store(true);
  }));
  // The error survives to an outer barrier unless the inner wait consumed
  // it; either way every sibling ran and the parent completed.
  try {
    rt.wait_all();
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "child boom");
  }
  EXPECT_EQ(siblings.load(), 16);
  EXPECT_TRUE(parent_finished.load());

  // And the runtime is still usable afterwards.
  int x = 0;
  rt.spawn(sigrt::task([&] { x = 1; }));
  rt.wait_all();
  EXPECT_EQ(x, 1);
}

TEST(Failure, DestructorSwallowsPendingError) {
  {
    Runtime rt(config(2));
    rt.spawn(sigrt::task([] { throw std::runtime_error("unseen"); }));
    // No wait_all: the destructor must not terminate the program.
  }
  SUCCEED();
}

}  // namespace
