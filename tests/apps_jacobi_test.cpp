// Jacobi benchmark tests.
#include <gtest/gtest.h>

#include "apps/jacobi.hpp"

namespace {

using namespace sigrt::apps;

jacobi::Options small_options(Variant v, Degree d) {
  jacobi::Options o;
  o.n = 256;
  o.row_block = 32;
  o.band = 32;
  o.max_sweeps = 150;
  o.common.variant = v;
  o.common.degree = d;
  o.common.workers = 2;
  return o;
}

TEST(Jacobi, TolerancesMatchTable1) {
  EXPECT_DOUBLE_EQ(jacobi::tolerance_for(Degree::Mild), 1e-4);
  EXPECT_DOUBLE_EQ(jacobi::tolerance_for(Degree::Medium), 1e-3);
  EXPECT_DOUBLE_EQ(jacobi::tolerance_for(Degree::Aggressive), 1e-2);
}

TEST(Jacobi, ReferenceConverges) {
  const auto o = small_options(Variant::Accurate, Degree::Mild);
  const auto sol = jacobi::reference(o);
  EXPECT_GT(sol.sweeps, 2u);
  EXPECT_LT(sol.sweeps, o.max_sweeps);
}

TEST(Jacobi, ReferenceSolvesTheSystem) {
  // Verify the converged solution against a direct residual check by
  // re-running one accurate sweep: x must be a fixed point (to tolerance).
  auto o = small_options(Variant::Accurate, Degree::Mild);
  o.native_tolerance = 1e-8;
  o.max_sweeps = 400;
  const auto sol = jacobi::reference(o);
  // One more Jacobi sweep may move x by at most ~tolerance.
  jacobi::Solution again;
  const auto r = jacobi::run(o, &again);
  EXPECT_LT(r.quality, 1e-6);
}

TEST(Jacobi, AccurateVariantMatchesReference) {
  const auto r = jacobi::run(small_options(Variant::Accurate, Degree::Mild));
  EXPECT_LT(r.quality, 1e-9);
}

TEST(Jacobi, ApproximatePhaseUsesRatioZeroThenOne) {
  jacobi::Solution sol;
  const auto o = small_options(Variant::GTBMaxBuffer, Degree::Medium);
  const auto r = jacobi::run(o, &sol);
  const std::size_t blocks = o.n / o.row_block;
  // First 5 sweeps approximate, the rest accurate.
  EXPECT_EQ(r.tasks_approximate, 5u * blocks);
  EXPECT_EQ(r.tasks_accurate, (sol.sweeps - 5u) * blocks);
}

TEST(Jacobi, RelaxedToleranceConvergesInFewerSweeps) {
  jacobi::Solution aggr, mild;
  jacobi::run(small_options(Variant::GTBMaxBuffer, Degree::Aggressive), &aggr);
  jacobi::run(small_options(Variant::GTBMaxBuffer, Degree::Mild), &mild);
  EXPECT_LE(aggr.sweeps, mild.sweeps);
}

TEST(Jacobi, QualityDegradesMonotonicallyWithDegree) {
  const auto mild = jacobi::run(small_options(Variant::GTBMaxBuffer, Degree::Mild));
  const auto aggr =
      jacobi::run(small_options(Variant::GTBMaxBuffer, Degree::Aggressive));
  EXPECT_LE(mild.quality, aggr.quality);
  EXPECT_LT(mild.quality, 0.01);  // diagonally dominant: still close
}

TEST(Jacobi, BandApproximationIsBenign) {
  // Diagonal dominance concentrates information near the diagonal: the
  // final error after approximate warm-up sweeps stays small (§4.1).
  const auto r = jacobi::run(small_options(Variant::GTBMaxBuffer, Degree::Mild));
  EXPECT_LT(r.quality, 5e-3);
}

TEST(Jacobi, PerforatedVariantConverges) {
  auto o = small_options(Variant::Perforated, Degree::Medium);
  o.perforation_rate = 0.2;
  jacobi::Solution sol;
  const auto r = jacobi::run(o, &sol);
  EXPECT_GT(sol.sweeps, 0u);
  EXPECT_LT(r.quality, 0.25);  // offset fixed point of the perturbed system
}

TEST(Jacobi, UniformSignificanceHasNoInversions) {
  const auto r = jacobi::run(small_options(Variant::LQH, Degree::Medium));
  EXPECT_DOUBLE_EQ(r.inversion_fraction, 0.0);
}

}  // namespace
