// Seeded chaos suite for the deterministic fault-injection framework and
// the significance-aware resilience it forces:
//
//   * determinism — the same FaultPlan replayed over the same task ids
//     produces a bit-identical trace (fire counts + commutative hash), a
//     different seed a different one;
//   * the redo oracle — accurate tasks with check()/max_redos survive
//     injected crashes and silent corruption on unreliable workers with
//     bit-exact results (vs. a fault-free run), while approximate tasks
//     keep their drop-on-fault accounting;
//   * serve-tier resilience — watchdog timeouts convert stuck/faulted
//     request bodies into drops instead of leaked in-flight slots, lazy
//     EDF expiry sheds hopeless requests, and drain() still quiesces with
//     faults flying.
//
// Every test arms a plan, runs, and disarms in a guard — the injector is
// process-global, so leaking an armed plan would poison later tests.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/sigrt.hpp"
#include "fault/fault.hpp"
#include "serve/server.hpp"

// Tests that need faults to actually FIRE are skipped when the hooks are
// compiled out (-DSIGRT_FAULT_INJECTION=0); the resilience tests that
// drive their faults through the API (always-false validators, stuck
// bodies, past deadlines) run in every configuration.
#if SIGRT_FAULT_INJECTION
#define SKIP_WITHOUT_INJECTION() (void)0
#else
#define SKIP_WITHOUT_INJECTION() \
  GTEST_SKIP() << "fault injection compiled out"
#endif

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig config(unsigned workers) {
  RuntimeConfig c;
  c.workers = workers;
  c.policy = PolicyKind::Agnostic;
  c.record_task_log = false;
  return c;
}

/// CI chaos matrix: SIGRT_CHAOS_SEED (a small decimal) perturbs every plan
/// seed so the same binary exercises a distinct deterministic fault
/// schedule per job.  Unset or 0 leaves the baked-in seeds untouched, and
/// determinism WITHIN a process is unaffected — the env is read once.
std::uint64_t chaos_seed(std::uint64_t base) {
  static const std::uint64_t mix = [] {
    const char* s = std::getenv("SIGRT_CHAOS_SEED");
    return s ? std::strtoull(s, nullptr, 10) * 0x9E3779B97F4A7C15ull : 0ull;
  }();
  return base ^ mix;
}

/// arm() on construction, disarm() + trace reset on destruction — no test
/// can leak an armed plan into the rest of the suite.
struct ArmedPlan {
  explicit ArmedPlan(const sigrt::fault::FaultPlan& plan) {
    sigrt::fault::arm(plan);
  }
  ~ArmedPlan() { sigrt::fault::disarm(); }
};

// --- determinism ----------------------------------------------------------

/// One fixed workload: N checked accurate tasks spawned from one thread, so
/// task ids (and therefore fault streams) are identical across runs however
/// the scheduler places them.
sigrt::fault::Trace run_checked_workload(std::uint64_t seed) {
  sigrt::fault::FaultPlan plan;
  plan.seed = chaos_seed(seed);
  plan.with(sigrt::fault::Site::TaskCrash, 0.05)
      .with(sigrt::fault::Site::TaskDelay, 0.05, /*param_us=*/50);
  ArmedPlan armed(plan);

  Runtime rt(config(4));
  constexpr int kTasks = 400;
  std::vector<std::uint64_t> out(kTasks, 0);
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn(sigrt::task([&out, i] { out[i] = 31ull * i + 7; })
                 .check([&out, i] { return out[i] == 31ull * i + 7; })
                 .max_redos(8));
  }
  rt.wait_all();
  return sigrt::fault::trace();
}

TEST(FaultDeterminism, SameSeedSameTraceDifferentSeedDifferentTrace) {
  SKIP_WITHOUT_INJECTION();
  const sigrt::fault::Trace a = run_checked_workload(0xC0FFEE);
  const sigrt::fault::Trace b = run_checked_workload(0xC0FFEE);
  const sigrt::fault::Trace c = run_checked_workload(0xBADF00D);

  EXPECT_GT(a.total(), 0u) << "plan never fired: the suite is vacuous";
  EXPECT_EQ(a.hash, b.hash);
  for (unsigned s = 0; s < sigrt::fault::kSiteCount; ++s) {
    EXPECT_EQ(a.fires[s], b.fires[s]) << "site " << s;
  }
  EXPECT_NE(a.hash, c.hash);
}

TEST(FaultDeterminism, DisarmedSitesNeverFire) {
  SKIP_WITHOUT_INJECTION();
  sigrt::fault::FaultPlan plan;  // all probabilities zero
  ArmedPlan armed(plan);
  Runtime rt(config(2));
  for (int i = 0; i < 64; ++i) {
    rt.spawn(sigrt::task([] {}).check([] { return true; }).max_redos(2));
  }
  rt.wait_all();
  EXPECT_EQ(sigrt::fault::trace().total(), 0u);
  EXPECT_EQ(rt.stats().redone, 0u);
}

// --- the redo oracle ------------------------------------------------------

TEST(FaultRedo, CrashedAccurateTasksRedoToBitExactResults) {
  SKIP_WITHOUT_INJECTION();
  sigrt::fault::FaultPlan plan;
  plan.seed = chaos_seed(0x5EED);
  plan.with(sigrt::fault::Site::TaskCrash, 0.05);
  ArmedPlan armed(plan);

  Runtime rt(config(4));
  constexpr int kTasks = 800;
  std::vector<std::uint64_t> out(kTasks, 0);
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn(sigrt::task([&out, i] { out[i] = 1000003ull * i + 17; })
                 .check([&out, i] { return out[i] == 1000003ull * i + 17; })
                 .max_redos(5));
  }
  rt.wait_all();

  // Accurate results are bit-exact despite the crashes...
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(out[i], 1000003ull * i + 17) << "task " << i;
  }
  // ...because the faulted ones actually re-executed.
  const auto s = rt.stats();
  EXPECT_GT(s.redone, 0u);
  EXPECT_EQ(s.redone,
            sigrt::fault::trace().fires[static_cast<unsigned>(
                sigrt::fault::Site::TaskCrash)]);
}

TEST(FaultRedo, CorruptionOnUnreliableWorkersIsCaughtAndRedone) {
  SKIP_WITHOUT_INJECTION();
  sigrt::fault::FaultPlan plan;
  plan.seed = chaos_seed(0xBEEF);
  plan.with(sigrt::fault::Site::TaskCorrupt, 0.5);
  ArmedPlan armed(plan);

  RuntimeConfig c = config(4);
  // Three of four workers unreliable: checked tasks (unreliable_ok) flood
  // into the NTC partition, and the lone reliable worker still exists for
  // the retries (redo clears unreliable_ok).
  c.unreliable_workers = 3;
  Runtime rt(c);
  constexpr int kTasks = 600;
  std::vector<std::uint64_t> out(kTasks, 0);
  // How many checked tasks the NTC partition actually executes is a
  // scheduling accident (a fast reliable worker can drain a whole batch
  // before the stealers wake), so run batches until the corrupt site has
  // demonstrably fired — every batch still asserts bit-exact results.
  auto run_batch = [&] {
    std::fill(out.begin(), out.end(), 0);
    for (int i = 0; i < kTasks; ++i) {
      // Fault-aware kernel: writes garbage when the corrupt site fired on
      // this execution — the silent NTC bit-flip model.  The validator
      // catches it; the redo lands on a reliable worker and fixes it.  The
      // spin keeps the batch alive long enough for the unreliable workers
      // to steal a real share.
      rt.spawn(sigrt::task([&out, i] {
                 unsigned acc = 0;
                 for (int spin = 0; spin < 2000; ++spin) acc += spin;
                 volatile unsigned sink = acc;
                 (void)sink;
                 out[i] = sigrt::fault::corrupting() ? 0xDEADBEEFull
                                                     : 7919ull * i + 3;
               })
                   .check([&out, i] { return out[i] == 7919ull * i + 3; })
                   .max_redos(3));
    }
    rt.wait_all();
    for (int i = 0; i < kTasks; ++i) {
      ASSERT_EQ(out[i], 7919ull * i + 3) << "task " << i;
    }
  };
  for (int round = 0; round < 50 && rt.stats().corrupted_detected == 0;
       ++round) {
    run_batch();
  }

  const auto s = rt.stats();
  EXPECT_GT(s.corrupted_detected, 0u);
  EXPECT_GT(s.redone, 0u);
  EXPECT_GE(s.redone, s.corrupted_detected);
}

TEST(FaultRedo, ApproximateInjectedCrashesAccountAsDrops) {
  SKIP_WITHOUT_INJECTION();
  sigrt::fault::FaultPlan plan;
  plan.seed = chaos_seed(0xAB5E);
  plan.with(sigrt::fault::Site::TaskCrash, 1.0);
  ArmedPlan armed(plan);

  RuntimeConfig c = config(2);
  c.policy = PolicyKind::GTB;  // Agnostic would run everything accurate
  Runtime rt(c);
  const auto g = rt.create_group("approx", 0.0);
  constexpr int kTasks = 32;
  std::atomic<int> approx_ran{0};
  for (int i = 0; i < kTasks; ++i) {
    // significance <= 0 pins the task approximate under every degrading
    // policy, independent of how the group ratio is steered.
    rt.spawn(sigrt::task([] { FAIL() << "accurate body must not run"; })
                 .approx([&] { approx_ran.fetch_add(1); })
                 .significance(-1.0)
                 .group(g));
  }
  // Drop-on-fault: no barrier error, every crashed approximate task
  // accounts as a dropped task + an NTC fault.
  rt.wait_group(g);
  const auto r = rt.group_report(g);
  EXPECT_EQ(approx_ran.load(), 0);  // p=1.0: every approximate body crashed
  EXPECT_EQ(r.dropped, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(r.redone, 0u);
  EXPECT_EQ(rt.stats().faults, static_cast<std::uint64_t>(kTasks));
}

TEST(FaultRedo, ExhaustedRedoBudgetSurfacesAtTheBarrier) {
  // No injection needed: a validator that never accepts exhausts the
  // budget and the barrier reports the corruption like a thrown body.
  Runtime rt(config(2));
  rt.spawn(sigrt::task([] {}).check([] { return false; }).max_redos(2));
  EXPECT_THROW(rt.wait_all(), std::runtime_error);
  const auto s = rt.stats();
  EXPECT_EQ(s.redone, 2u);              // both budgeted re-executions ran
  EXPECT_EQ(s.corrupted_detected, 3u);  // initial try + 2 redos rejected
}

TEST(FaultRedo, RedoWorksInInlineMode) {
  SKIP_WITHOUT_INJECTION();
  sigrt::fault::FaultPlan plan;
  plan.seed = chaos_seed(0x117);
  plan.with(sigrt::fault::Site::TaskCrash, 0.2);
  ArmedPlan armed(plan);

  Runtime rt(config(0));  // inline: redo re-enqueues onto the inline queue
  constexpr int kTasks = 200;
  std::vector<int> out(kTasks, 0);
  for (int i = 0; i < kTasks; ++i) {
    rt.spawn(sigrt::task([&out, i] { out[i] = i + 1; })
                 .check([&out, i] { return out[i] == i + 1; })
                 .max_redos(8));
  }
  rt.wait_all();
  for (int i = 0; i < kTasks; ++i) ASSERT_EQ(out[i], i + 1);
  EXPECT_GT(rt.stats().redone, 0u);
}

// --- serve tier under injection ------------------------------------------

TEST(FaultServe, WatchdogConvertsInjectedCrashesToDropsAndDrainCompletes) {
  SKIP_WITHOUT_INJECTION();
  sigrt::fault::FaultPlan plan;
  plan.seed = chaos_seed(0xD06);
  plan.with(sigrt::fault::Site::TaskCrash, 0.05);
  ArmedPlan armed(plan);

  sigrt::serve::ServerOptions o;
  o.runtime.workers = 4;
  o.epoch_ms = 2.0;
  sigrt::serve::Server srv(o);
  sigrt::serve::RequestClassConfig cfg;
  cfg.name = "chaos";
  cfg.qos.deadline_ns = 1e9;  // far away: no latency-violation pressure
  // A 500-request burst would trip the default backlog watermark and the
  // controller would perforate — a different (legitimate) drop source that
  // this test must silence so the watchdog is the ONLY resolver of faults.
  cfg.qos.backlog_high = 1u << 20;
  cfg.watchdog_ns = 50'000'000;  // 50 ms: stuck/faulted requests resolve
  const auto cls = srv.register_class(cfg);

  constexpr int kRequests = 500;
  std::atomic<int> served{0}, dropped{0};
  int admitted = 0;
  for (int i = 0; i < kRequests; ++i) {
    sigrt::serve::Job job;
    job.accurate = [&] { served.fetch_add(1); };
    job.significance = 1.0;
    job.on_drop = [&] { dropped.fetch_add(1); };
    job.on_timeout = [&] { dropped.fetch_add(1); };
    if (srv.submit(cls, std::move(job)) != sigrt::serve::Admission::Shed) {
      ++admitted;
    }
  }
  // A crashed request body never reaches complete(); only the watchdog can
  // release its slot.  drain() returning at all therefore proves the
  // watchdog resolved every one of them.
  srv.drain();

  const auto r = srv.class_report(cls);
  EXPECT_EQ(r.submitted, static_cast<std::uint64_t>(admitted));
  // Conservation: every admitted request landed in exactly one bucket
  // (timeouts are counted inside served_dropped).
  EXPECT_EQ(r.served(), r.submitted);
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_GT(r.timed_out, 0u);  // p=0.05 over 500 requests: ~zero flake odds
  EXPECT_EQ(r.served_dropped, r.timed_out);
  EXPECT_EQ(static_cast<std::uint64_t>(served.load()), r.served_accurate);
  EXPECT_EQ(static_cast<std::uint64_t>(dropped.load()), r.timed_out);
}

TEST(FaultServe, FloodingTenantFaultsNeverDentAnotherTenantsCriticalClass) {
  SKIP_WITHOUT_INJECTION();
  // The multi-tenant isolation acceptance re-run with task faults flying:
  // a flooding tenant overloads its Degradable class while injected
  // crashes randomly kill request bodies.  Crashed bodies resolve through
  // each class's watchdog; none of it — overload or faults — may dent the
  // vip tenant's Critical class, whose requests must all be admitted and
  // all be resolved.
  sigrt::fault::FaultPlan plan;
  plan.seed = chaos_seed(0x150);
  plan.with(sigrt::fault::Site::TaskCrash, 0.01);
  ArmedPlan armed(plan);

  const auto spin_us = [](std::int64_t us) {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(us);
    while (std::chrono::steady_clock::now() < until) {
    }
  };

  sigrt::serve::ServerOptions o;
  o.runtime.workers = 2;
  o.epoch_ms = 2.0;  // the watchdog sweep rides the controller epoch
  sigrt::serve::Server srv(o);

  sigrt::serve::RequestClassConfig vip_cfg;
  vip_cfg.name = "interactive";
  vip_cfg.criticality = sigrt::serve::Criticality::Critical;
  vip_cfg.qos.deadline_ns = 1e9;
  vip_cfg.qos.backlog_high = 1u << 20;  // no perforation: watchdog only
  vip_cfg.watchdog_ns = 50'000'000;
  vip_cfg.max_in_flight = 256;
  sigrt::serve::RequestClassConfig flood_cfg;
  flood_cfg.name = "batch";
  flood_cfg.criticality = sigrt::serve::Criticality::Degradable;
  flood_cfg.qos.deadline_ns = 1e9;
  flood_cfg.watchdog_ns = 50'000'000;  // crashed bodies must not leak slots
  flood_cfg.max_in_flight = 256;
  const auto vip_cls = srv.register_class(vip_cfg);
  const auto flood_cls = srv.register_class(flood_cfg);

  const auto flood = srv.register_tenant(
      {.name = "flood", .max_in_flight = 8, .fair_in_flight = 2});
  const auto vip = srv.register_tenant({.name = "vip"});

  std::atomic<bool> stop{false};
  std::thread flooder([&] {
    while (!stop.load(std::memory_order_acquire)) {
      sigrt::serve::Job job;
      job.accurate = [&] { spin_us(500); };
      job.approximate = [&] { spin_us(50); };
      job.significance = 0.7;
      (void)srv.submit(flood_cls, flood, std::move(job));
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  constexpr int kVipRequests = 50;
  for (int i = 0; i < kVipRequests; ++i) {
    sigrt::serve::Job job;
    job.accurate = [&] { spin_us(100); };
    job.significance = 1.0;
    ASSERT_NE(srv.submit(vip_cls, vip, std::move(job)),
              sigrt::serve::Admission::Shed);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  flooder.join();
  srv.drain();

  // The vip tenant is untouched by the flood AND by the fault storm: zero
  // shed, every request resolved.  Injected crashes may hit a vip body too
  // (the injector is tenant-blind) — those resolve as watchdog timeouts,
  // and at p = 0.01 over 50 requests more than a handful is ~impossible.
  const auto rv = srv.class_report(vip_cls);
  EXPECT_EQ(rv.shed, 0u);
  EXPECT_EQ(rv.served(), static_cast<std::uint64_t>(kVipRequests));
  EXPECT_EQ(rv.in_flight, 0u);
  EXPECT_LE(rv.timed_out, 5u);
  EXPECT_EQ(rv.served_accurate, kVipRequests - rv.timed_out);
  EXPECT_EQ(srv.tenant_report(vip).cells[vip_cls].shed, 0u);

  // The flood bore its own overload and its own faults: admission shed or
  // degraded its traffic, and what was admitted still conserves exactly.
  const auto rf = srv.class_report(flood_cls);
  EXPECT_EQ(rf.served() + rf.perforated + rf.expired, rf.submitted);
  EXPECT_EQ(rf.in_flight, 0u);
  const auto tf = srv.tenant_report(flood);
  EXPECT_GT(tf.cells[flood_cls].degraded + tf.cells[flood_cls].shed, 0u);
}

TEST(FaultServe, WatchdogResolvesStuckBodyWhileItStillRuns) {
  sigrt::serve::ServerOptions o;
  o.runtime.workers = 2;
  o.epoch_ms = 2.0;
  sigrt::serve::Server srv(o);
  sigrt::serve::RequestClassConfig cfg;
  cfg.name = "stuck";
  cfg.qos.deadline_ns = 1e9;
  cfg.watchdog_ns = 20'000'000;  // 20 ms
  const auto cls = srv.register_class(cfg);

  std::atomic<bool> release_body{false};
  std::atomic<int> timeouts{0};
  sigrt::serve::Job job;
  job.accurate = [&] {
    while (!release_body.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  job.significance = 1.0;
  job.on_timeout = [&] { timeouts.fetch_add(1); };
  ASSERT_NE(srv.submit(cls, std::move(job)), sigrt::serve::Admission::Shed);

  // The watchdog resolves the request (slot released, timeout fired) while
  // the body is STILL parked in its loop.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (srv.class_report(cls).timed_out == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto mid = srv.class_report(cls);
  EXPECT_EQ(mid.timed_out, 1u);
  EXPECT_EQ(mid.in_flight, 0u);
  EXPECT_EQ(timeouts.load(), 1);

  // Unstick the body; its late completion must not double-account.
  release_body.store(true, std::memory_order_release);
  srv.close();
  const auto r = srv.class_report(cls);
  EXPECT_EQ(r.served(), 1u);
  EXPECT_EQ(r.served_dropped, 1u);
  EXPECT_EQ(r.served_accurate, 0u);
}

TEST(FaultServe, ExpiredRequestsAreShedAtPopWithDistinctAccounting) {
  sigrt::serve::ServerOptions o;
  o.runtime.workers = 2;
  o.epoch_ms = 0.0;  // no controller: expiry is a dispatcher-side property
  sigrt::serve::Server srv(o);
  sigrt::serve::RequestClassConfig cfg;
  cfg.name = "expiry";
  cfg.shed_expired = true;
  const auto cls = srv.register_class(cfg);

  constexpr int kRequests = 64;
  std::atomic<int> expired_cbs{0}, bodies{0};
  for (int i = 0; i < kRequests; ++i) {
    sigrt::serve::Job job;
    job.accurate = [&] { bodies.fetch_add(1); };
    job.significance = 1.0;
    job.deadline_ns = 1;  // expires one nanosecond after arrival
    job.on_expire = [&] { expired_cbs.fetch_add(1); };
    ASSERT_NE(srv.submit(cls, std::move(job)), sigrt::serve::Admission::Shed);
  }
  srv.drain();

  const auto r = srv.class_report(cls);
  EXPECT_EQ(r.expired, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(static_cast<std::uint64_t>(expired_cbs.load()), r.expired);
  EXPECT_EQ(bodies.load(), 0);
  EXPECT_EQ(r.served(), 0u);
  EXPECT_EQ(r.in_flight, 0u);
}

TEST(FaultServe, DrainServesBacklogThenCloseIsIdempotent) {
  sigrt::serve::ServerOptions o;
  o.runtime.workers = 2;
  o.epoch_ms = 2.0;
  sigrt::serve::Server srv(o);
  sigrt::serve::RequestClassConfig cfg;
  cfg.name = "drain";
  cfg.qos.deadline_ns = 1e9;
  const auto cls = srv.register_class(cfg);

  constexpr int kRequests = 256;
  std::atomic<int> served{0};
  for (int i = 0; i < kRequests; ++i) {
    sigrt::serve::Job job;
    job.accurate = [&] { served.fetch_add(1); };
    job.significance = 1.0;
    ASSERT_NE(srv.submit(cls, std::move(job)), sigrt::serve::Admission::Shed);
  }
  srv.drain();
  // Everything admitted before the drain was served, nothing shed by it.
  EXPECT_EQ(served.load(), kRequests);
  const auto r = srv.class_report(cls);
  EXPECT_EQ(r.served_accurate, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(r.in_flight, 0u);

  // Post-drain submissions shed cleanly; close() after drain() is a no-op
  // plus the racer sweep, and both stay idempotent.
  std::atomic<int> dropped{0};
  sigrt::serve::Job late;
  late.accurate = [] {};
  late.on_drop = [&] { dropped.fetch_add(1); };
  EXPECT_EQ(srv.submit(cls, std::move(late)), sigrt::serve::Admission::Shed);
  srv.close();
  srv.drain();
  srv.close();
  SUCCEED();
}

}  // namespace
