// Serving-layer quickstart: one request class, a burst of overload, then
// calm traffic — watch the QosController trade the group ratio() for
// latency and give the quality back when the storm passes.
//
//   $ ./example_serve_demo
//   phase      ratio  achieved   p50_ms   p99_ms   served  degr  perf  shed
//   overload   0.300      0.21    0.221    8.913     2981     0     0    19
//   calm       1.000      1.00    0.205    0.410      200     0     0     0
//
// (Numbers vary by machine; the shape — ratio dipping to the floor under
// the burst and recovering to 1.0 — is the point.)
#include <chrono>
#include <cstdio>
#include <thread>

#include "apps/sobel.hpp"
#include "serve/serve.hpp"
#include "support/image.hpp"

namespace {

volatile std::uint64_t g_sink = 0;

void print_row(const char* phase, const sigrt::serve::ClassReport& r) {
  std::printf("%-10s %5.3f %9.2f %8.3f %8.3f %8llu %5llu %5llu %5llu\n", phase,
              r.ratio, r.achieved_ratio(), r.p50_ms, r.p99_ms,
              static_cast<unsigned long long>(r.served()),
              static_cast<unsigned long long>(r.degraded),
              static_cast<unsigned long long>(r.perforated),
              static_cast<unsigned long long>(r.shed));
}

}  // namespace

int main() {
  using namespace sigrt;
  using namespace sigrt::serve;

  // Full-quality responses filter the full frame; degraded responses answer
  // with a cheap low-resolution pass.
  const support::Image frame = support::synthetic_image(256, 256, 42);
  const support::Image thumb = support::synthetic_image(96, 96, 42);

  ServerOptions options;
  options.runtime.workers = 2;
  options.epoch_ms = 10.0;
  Server srv(options);

  RequestClassConfig cfg;
  cfg.name = "sobel";
  cfg.qos.deadline_ns = 10e6;   // p99 objective: 10 ms
  cfg.qos.quality_floor = 0.2;  // never serve below 20% accurate
  cfg.qos.backlog_high = 32;
  cfg.qos.backlog_low = 8;
  cfg.max_in_flight = 128;
  const ClassId cls = srv.register_class(cfg);

  const Job job{
      [&frame] { g_sink = g_sink + apps::sobel::reference(frame).at(10, 10); },
      [&thumb] {
        g_sink = g_sink + apps::sobel::reference_approx(thumb).at(10, 10);
      },
      /*significance=*/0.5};

  std::printf(
      "phase      ratio  achieved   p50_ms   p99_ms   served  degr  perf  shed\n");

  // Phase 1: a hard burst — submit far faster than the pool can serve
  // accurately.  The controller walks the degradation ladder.
  for (int i = 0; i < 3000; ++i) {
    srv.submit(cls, job);
    if (i % 8 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // let it settle
  print_row("overload", srv.class_report(cls));

  // Phase 2: calm traffic — the controller walks the ratio back up.
  srv.reset_latency_stats();
  const ClassReport before = srv.class_report(cls);
  for (int i = 0; i < 200; ++i) {
    srv.submit(cls, job);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ClassReport after = srv.class_report(cls);
  after.served_accurate -= before.served_accurate;
  after.served_approximate -= before.served_approximate;
  after.served_dropped -= before.served_dropped;
  after.degraded -= before.degraded;
  after.perforated -= before.perforated;
  after.shed -= before.shed;
  print_row("calm", after);

  srv.close();
  return 0;
}
