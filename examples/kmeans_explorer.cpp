// K-means quality/energy frontier explorer.
//
// Sweeps the taskwait ratio across [0.2, 1.0] for each runtime policy and
// prints the resulting (time, energy, relative error, iterations) frontier
// — the "easy exploration of trade-offs at execution time" the programming
// model promises (§2), with zero changes to the kernel code.
//
// Usage: ./examples/kmeans_explorer [points] [clusters]
#include <cstdio>
#include <cstdlib>

#include "apps/kmeans.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace sigrt::apps;

  const std::size_t points = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4096;
  const std::size_t clusters = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 8;

  sigrt::support::Table table(
      {"policy", "ratio", "iterations", "time", "energy", "rel.err"});

  for (const Variant v : {Variant::GTB, Variant::LQH}) {
    for (const double ratio : {1.0, 0.8, 0.6, 0.4, 0.2}) {
      kmeans::Options o;
      o.points = points;
      o.clusters = clusters;
      o.common.variant = v;
      o.ratio_override = ratio;
      kmeans::Solution sol;
      const auto r = kmeans::run(o, &sol);
      table.row()
          .cell(to_string(v))
          .cell(ratio, 2)
          .cell(sol.iterations)
          .cell(sigrt::support::format_seconds(r.time_s))
          .cell(sigrt::support::format_joules(r.energy_j))
          .cell(r.quality, 5);
    }
  }

  std::printf("kmeans_explorer: n=%zu, k=%zu, 16 dimensions\n", points, clusters);
  std::printf("(approximate tasks use 1/8 of the dimensions; only accurate\n");
  std::printf(" chunks feed the convergence criterion, as in the paper)\n\n");
  table.print();
  std::printf("Note how GTB's deterministic accurate set converges in fewer\n"
              "iterations than LQH's shifting one at the same ratio (cf. §4.2).\n");
  return 0;
}
