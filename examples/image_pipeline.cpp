// Image pipeline example: Sobel edge detection feeding a DCT compression
// stage, with per-stage significance and a shared energy budget.
//
// Demonstrates:
//   * two labeled task groups with different ratios in one runtime,
//   * inter-stage dependencies via in()/out() clauses (the DCT stage starts
//     per-stripe as soon as the corresponding Sobel rows are done),
//   * regenerating output images (PGM) at several quality settings.
//
// Usage: ./examples/image_pipeline [edge_ratio] [dct_ratio] [out_prefix]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/dct.hpp"
#include "apps/sobel.hpp"
#include "core/sigrt.hpp"
#include "metrics/quality.hpp"
#include "support/image.hpp"

int main(int argc, char** argv) {
  const double edge_ratio = argc > 1 ? std::atof(argv[1]) : 0.5;
  const double dct_ratio = argc > 2 ? std::atof(argv[2]) : 0.4;
  const std::string prefix = argc > 3 ? argv[3] : "pipeline";

  using sigrt::apps::Degree;
  using sigrt::apps::Variant;
  namespace sobel = sigrt::apps::sobel;
  namespace dct = sigrt::apps::dct;

  // Stage 1: edge detection at the requested ratio.
  sobel::Options so;
  so.width = 512;
  so.height = 512;
  so.common.variant = Variant::GTB;
  so.ratio_override = edge_ratio;
  sigrt::support::Image edges;
  const auto er = sobel::run(so, &edges);

  // Stage 2: DCT of the edge map at its own ratio.
  dct::Options dc;
  dc.width = 512;
  dc.height = 512;
  dc.common.variant = Variant::GTB;
  dc.ratio_override = dct_ratio;
  sigrt::support::Image compressed;
  const auto dr = dct::run(dc, &compressed);

  const std::string edge_path = prefix + "_edges.pgm";
  const std::string dct_path = prefix + "_dct.pgm";
  sigrt::support::write_pgm(edges, edge_path);
  sigrt::support::write_pgm(compressed, dct_path);

  std::printf("image_pipeline: 512x512 synthetic input\n");
  std::printf("  stage 1 (sobel, ratio %.2f): %.1f ms, %.2f J, PSNR %.1f dB -> %s\n",
              edge_ratio, er.time_s * 1e3, er.energy_j, er.quality_aux,
              edge_path.c_str());
  std::printf("  stage 2 (dct,   ratio %.2f): %.1f ms, %.2f J, PSNR %.1f dB -> %s\n",
              dct_ratio, dr.time_s * 1e3, dr.energy_j, dr.quality_aux,
              dct_path.c_str());
  std::printf("  total energy: %.2f J; accurate tasks: %llu of %llu\n",
              er.energy_j + dr.energy_j,
              static_cast<unsigned long long>(er.tasks_accurate + dr.tasks_accurate),
              static_cast<unsigned long long>(er.tasks_total + dr.tasks_total));
  std::printf("\nLower either ratio to trade quality for energy, e.g.\n"
              "  ./image_pipeline 0.2 0.1 cheap\n");
  return 0;
}
