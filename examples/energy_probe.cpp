// Energy-measurement probe: reports which meter backend is active on this
// host (RAPL via powercap, or the calibrated E5-2650 activity model) and
// demonstrates a measured busy-vs-idle contrast.
//
// Usage: ./examples/energy_probe
#include <cstdio>
#include <thread>

#include "core/sigrt.hpp"
#include "energy/rapl.hpp"

int main() {
  sigrt::Runtime rt;
  std::printf("energy_probe\n");
  std::printf("  active meter : %s\n", rt.meter().name().c_str());

  sigrt::energy::RaplMeter rapl;
  std::printf("  RAPL packages: %zu %s\n", rapl.domain_count(),
              rapl.available() ? "(readable)" : "(none readable — model fallback)");

  const sigrt::energy::MachineModel model;
  std::printf("  model machine: %d sockets x %d cores, %.1f W static, "
              "%.2f W/core dynamic\n",
              model.sockets, model.cores_per_socket, model.static_power_w(),
              model.dynamic_core_power_w());

  // Idle window.
  const sigrt::energy::Scope idle(rt.meter());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const double idle_j = idle.joules();

  // Busy window of the same length (workers spinning on arithmetic).
  const sigrt::energy::Scope busy(rt.meter());
  for (unsigned t = 0; t < rt.config().workers; ++t) {
    rt.spawn(sigrt::task([] {
      volatile double x = 1.0;
      const auto end = std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
      while (std::chrono::steady_clock::now() < end) x = x * 1.0000001 + 0.1;
    }));
  }
  rt.wait_all();
  const double busy_j = busy.joules();

  std::printf("  200 ms idle  : %.3f J\n", idle_j);
  std::printf("  200 ms busy  : %.3f J  (x%.2f)\n", busy_j,
              idle_j > 0 ? busy_j / idle_j : 0.0);
  std::printf("\nThe runtime's policies convert approximated/dropped tasks into\n"
              "less busy time, which is exactly what this meter integrates.\n");
  return 0;
}
