// Recursive divide-and-conquer through the pragma surface: the nested
// OpenMP-tasking idiom the paper's programming model is built on, now
// expressible because spawn/taskwait are safe from inside task bodies.
//
//   // #pragma omp task shared(a)
//   // { fib_task(n-1, &a); }
//   // #pragma omp task shared(b)
//   // { fib_task(n-2, &b); }
//   // #pragma omp taskwait
//   *out = a + b;
//
// The in-task taskwait barriers on the enclosing task's children and runs
// as a helping loop — the worker keeps executing (its own children first,
// then steals), so any worker count >= 1 completes without deadlock.
//
// Usage: example_fib_recursive [n] [cutoff] [workers]
// Defaults n=40 cutoff=20: a task tree of depth 20 (~21k tasks), each leaf
// finishing the remainder iteratively.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "core/sigrt.hpp"
#include "support/timer.hpp"

namespace {

std::uint64_t fib_iterative(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

void fib_task(sigrt::Runtime& rt, int n, int cutoff, std::uint64_t* out) {
  if (n < cutoff) {
    *out = fib_iterative(n);
    return;
  }
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  // The children write a/b on this frame; the taskwait below keeps the
  // frame alive until both finished, exactly like the OpenMP original.
  sigrt::omp_task(rt, [&rt, n, cutoff, &a] { fib_task(rt, n - 1, cutoff, &a); })
      .significant(1.0);
  sigrt::omp_task(rt, [&rt, n, cutoff, &b] { fib_task(rt, n - 2, cutoff, &b); })
      .significant(1.0);
  sigrt::omp_taskwait(rt);
  *out = a + b;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 40;
  const int cutoff = argc > 2 ? std::atoi(argv[2]) : 20;
  sigrt::RuntimeConfig config;
  if (argc > 3) config.workers = static_cast<unsigned>(std::atoi(argv[3]));
  config.policy = sigrt::PolicyKind::LQH;

  sigrt::Runtime rt(config);
  std::uint64_t result = 0;
  const std::int64_t t0 = sigrt::support::now_ns();
  fib_task(rt, n, cutoff, &result);
  rt.wait_all();
  const double wall_s = static_cast<double>(sigrt::support::now_ns() - t0) * 1e-9;

  const std::uint64_t expected = fib_iterative(n);
  const auto stats = rt.stats();
  std::printf("fib(%d) = %" PRIu64 " (expected %" PRIu64 ", %s)\n", n, result,
              expected, result == expected ? "ok" : "MISMATCH");
  std::printf("workers=%u tasks=%" PRIu64 " steals=%" PRIu64 " wall=%.3fs\n",
              rt.config().workers, stats.spawned, stats.steals, wall_s);
  return result == expected ? 0 : 1;
}
