// Listing 1 of the paper, ported line-for-line.
//
// The paper's running example annotates a Sobel filter with task pragmas;
// this file keeps the exact structure — sblX/sblY and their approximate
// twins, sbl_task/sbl_task_appr, the (i%9+1)/10 significance cycle, the
// sobel label, and the taskwait ratio(0.35) — so the two can be read side
// by side.  Each pragma from the paper appears as a comment above the
// pragma-surface call that lowers identically.
//
// Usage: ./examples/sobel_listing1 [out.pgm]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/sigrt.hpp"
#include "metrics/quality.hpp"
#include "support/image.hpp"

namespace {

constexpr std::size_t WIDTH = 512;
constexpr std::size_t HEIGHT = 512;

int sblX(const unsigned char img[], std::size_t y, std::size_t x) {
  return img[(y - 1) * WIDTH + x - 1] + 2 * img[y * WIDTH + x - 1] +
         img[(y + 1) * WIDTH + x - 1] - img[(y - 1) * WIDTH + x + 1] -
         2 * img[y * WIDTH + x + 1] - img[(y + 1) * WIDTH + x + 1];
}

int sblX_appr(const unsigned char img[], std::size_t y, std::size_t x) {
  return /* img[(y-1)*WIDTH+x-1]  omitted taps */
      +2 * img[y * WIDTH + x - 1] + img[(y + 1) * WIDTH + x - 1]
      /* - img[(y-1)*WIDTH+x+1]   omitted taps */
      - 2 * img[y * WIDTH + x + 1] - img[(y + 1) * WIDTH + x + 1];
}

int sblY(const unsigned char img[], std::size_t y, std::size_t x) {
  return img[(y - 1) * WIDTH + x - 1] + 2 * img[(y - 1) * WIDTH + x] +
         img[(y - 1) * WIDTH + x + 1] - img[(y + 1) * WIDTH + x - 1] -
         2 * img[(y + 1) * WIDTH + x] - img[(y + 1) * WIDTH + x + 1];
}

int sblY_appr(const unsigned char img[], std::size_t y, std::size_t x) {
  return 2 * img[(y - 1) * WIDTH + x] + img[(y - 1) * WIDTH + x + 1] -
         2 * img[(y + 1) * WIDTH + x] - img[(y + 1) * WIDTH + x + 1];
}

void sbl_task(unsigned char res[], const unsigned char img[], std::size_t i) {
  for (std::size_t j = 1; j < WIDTH - 1; ++j) {
    const double p = std::sqrt(std::pow(sblX(img, i, j), 2) +
                               std::pow(sblY(img, i, j), 2));
    res[i * WIDTH + j] = p > 255.0 ? 255 : static_cast<unsigned char>(p);
  }
}

void sbl_task_appr(unsigned char res[], const unsigned char img[],
                   std::size_t i) {
  for (std::size_t j = 1; j < WIDTH - 1; ++j) {
    // abs instead of pow/sqrt, approximate versions of sblX, sblY.
    const int p = std::abs(sblX_appr(img, i, j)) + std::abs(sblY_appr(img, i, j));
    res[i * WIDTH + j] = p > 255 ? 255 : static_cast<unsigned char>(p);
  }
}

}  // namespace

int main(int argc, char** argv) {
  sigrt::Runtime rt;
  const auto input = sigrt::support::synthetic_image(WIDTH, HEIGHT, 42);
  sigrt::support::Image output(WIDTH, HEIGHT);
  const unsigned char* img = input.data();
  unsigned char* res = output.data();

  // The paper's compiler inserts tpc_init_group() on the first use of a
  // task group, hoisting the taskwait's ratio so the runtime knows it
  // before tasks flow (§3.1).  We make that call explicitly.
  sigrt::tpc_init_group(rt, "sobel", 0.35);

  for (std::size_t i = 1; i < HEIGHT - 1; ++i) {
    // #pragma omp task label(sobel) in(img) out(res) \
    //     significant((i%9 + 1)/10.0) approxfun(sbl_task_appr)
    sigrt::omp_task(rt, [=] { sbl_task(res, img, i); })
        .label("sobel")
        .in(img, WIDTH * HEIGHT)
        .out(res + i * WIDTH, WIDTH)
        .significant(static_cast<double>(i % 9 + 1) / 10.0)
        .approxfun([=] { sbl_task_appr(res, img, i); });
  }
  // #pragma omp taskwait label(sobel) ratio(0.35)
  sigrt::omp_taskwait(rt).label("sobel").ratio(0.35);

  // Compare against the fully accurate result, as the evaluation does.
  sigrt::support::Image reference(WIDTH, HEIGHT);
  for (std::size_t i = 1; i < HEIGHT - 1; ++i) {
    sbl_task(reference.data(), img, i);
  }
  const double psnr = sigrt::metrics::psnr_db(reference, output);
  const auto report = rt.group_report(rt.ensure_group("sobel"));

  std::printf("sobel (Listing 1): %zux%zu, ratio 0.35 via %s\n", WIDTH, HEIGHT,
              rt.policy_name());
  std::printf("  accurate rows    : %llu\n",
              static_cast<unsigned long long>(report.accurate));
  std::printf("  approximate rows : %llu\n",
              static_cast<unsigned long long>(report.approximate));
  std::printf("  PSNR vs accurate : %.2f dB\n", psnr);

  const char* path = argc > 1 ? argv[1] : "sobel_listing1.pgm";
  if (sigrt::support::write_pgm(output, path)) {
    std::printf("  output written   : %s\n", path);
  }
  return 0;
}
