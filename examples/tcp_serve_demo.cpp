// Net-frontend quickstart: the wire path end to end in one process.
//
// Starts a serve::Server with two tenants behind a TCP NetServer on an
// ephemeral loopback port, registers a sobel kernel, and drives it with a
// pipelined net::Client per tenant.  One tenant has a tight quota and a
// fairness watermark, the other is unbounded — the per-tenant report shows
// the quota-bound tenant shedding/degrading its own traffic while the
// other tenant rides untouched.
//
//   $ ./example_tcp_serve_demo
//   tenant     sent    ok  approx  shed   p50_ms   p99_ms
//   capped      400    23     105   272    1.021    9.342
//   premium     400   400       0     0    0.514    2.160
//
// (Numbers vary by machine; the shape — the capped tenant absorbing its
// own overload — is the point.)
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "apps/sobel.hpp"
#include "net/net.hpp"
#include "serve/serve.hpp"
#include "support/image.hpp"
#include "support/timer.hpp"

namespace {

struct WireCounts {
  std::uint64_t sent = 0, ok = 0, approx = 0, shed = 0;
  std::vector<double> lat_ms;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[std::min(static_cast<std::size_t>(p * static_cast<double>(v.size())),
                    v.size() - 1)];
}

/// Keeps `window` requests in flight until `total` responses came back.
WireCounts drive(std::uint16_t port, std::uint32_t tenant, std::uint32_t cls,
                 unsigned window, unsigned total) {
  sigrt::net::Client c;
  c.connect("127.0.0.1", port);
  WireCounts w;
  std::vector<std::int64_t> send_ns;
  sigrt::net::RequestHeader h;
  h.tenant = tenant;
  h.cls = cls;
  h.kernel = 0;
  const std::uint8_t payload[16] = {};
  const auto send_one = [&] {
    h.id = static_cast<std::uint32_t>(send_ns.size());
    send_ns.push_back(sigrt::support::now_ns());
    c.enqueue(h, payload, sizeof payload);
    ++w.sent;
  };
  for (unsigned i = 0; i < window && w.sent < total; ++i) send_one();
  c.flush();
  sigrt::net::Client::Response resp;
  std::uint64_t received = 0;
  while (received < w.sent) {
    if (!c.read_response(resp)) break;
    ++received;
    w.lat_ms.push_back(
        static_cast<double>(sigrt::support::now_ns() - send_ns[resp.header.id]) *
        1e-6);
    switch (resp.header.status) {
      case sigrt::net::Status::Ok: ++w.ok; break;
      case sigrt::net::Status::OkApprox:
      case sigrt::net::Status::OkDropped: ++w.approx; break;
      default: ++w.shed; break;
    }
    if (w.sent < total) {
      send_one();
      c.flush();
    }
  }
  return w;
}

}  // namespace

int main() {
  using namespace sigrt;
  using namespace sigrt::serve;

  const support::Image frame = support::synthetic_image(128, 128, 42);
  const support::Image thumb = support::synthetic_image(48, 48, 42);

  ServerOptions options;
  options.runtime.workers = 2;
  options.epoch_ms = 10.0;
  Server srv(options);

  RequestClassConfig cfg;
  cfg.name = "sobel";
  cfg.criticality = Criticality::Degradable;
  cfg.qos.deadline_ns = 10e6;
  cfg.qos.quality_floor = 0.2;
  cfg.max_in_flight = 256;
  const ClassId cls = srv.register_class(cfg);

  // "capped" gets a hard quota of 16 in flight and degrades past 8;
  // "premium" is unbounded.
  const TenantId capped = srv.register_tenant(
      {.name = "capped", .max_in_flight = 16, .fair_in_flight = 8});
  const TenantId premium = srv.register_tenant({.name = "premium"});

  net::NetServer net(srv, {});
  net.register_kernel(
      0, {.fn = [&](const std::uint8_t*, std::size_t, bool approximate,
                    std::vector<std::uint8_t>& out) {
            const support::Image& img = approximate ? thumb : frame;
            out.push_back(apps::sobel::reference(img).at(10, 10));
          },
          .significance = 0.5});
  net.start();

  // The capped tenant floods with a deep pipeline; premium paces itself
  // with a shallow one.  Two client connections, concurrently.
  WireCounts cap_counts;
  std::thread cap_thread([&] {
    cap_counts = drive(net.port(), capped, cls, /*window=*/64, 400);
  });
  const WireCounts prem_counts = drive(net.port(), premium, cls, /*window=*/4, 400);
  cap_thread.join();

  std::printf("tenant     sent    ok  approx  shed   p50_ms   p99_ms\n");
  const auto row = [](const char* name, const WireCounts& w) {
    std::printf("%-9s %5llu %5llu  %6llu %5llu %8.3f %8.3f\n", name,
                static_cast<unsigned long long>(w.sent),
                static_cast<unsigned long long>(w.ok),
                static_cast<unsigned long long>(w.approx),
                static_cast<unsigned long long>(w.shed),
                percentile(w.lat_ms, 0.5), percentile(w.lat_ms, 0.99));
  };
  row("capped", cap_counts);
  row("premium", prem_counts);

  srv.close();  // drain admitted work FIRST
  net.stop();   // THEN tear the frontend down
  return 0;
}
