// Quickstart: the programming model in ~60 lines.
//
// Mirrors Listing 1 of the paper on a toy workload: tasks square chunks of
// a vector; the approximate version estimates the chunk with its midpoint
// value.  One knob — the taskwait ratio — moves the execution along the
// quality/energy trade-off.
//
// Build & run:   ./examples/quickstart [ratio]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/sigrt.hpp"

namespace {

constexpr std::size_t kN = 1 << 16;
constexpr std::size_t kChunk = 1 << 10;

void square_chunk(std::vector<double>& out, const std::vector<double>& in,
                  std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) out[i] = in[i] * in[i];
}

// Approximate body: one representative value for the whole chunk.
void square_chunk_appr(std::vector<double>& out, const std::vector<double>& in,
                       std::size_t lo, std::size_t hi) {
  const double mid = in[(lo + hi) / 2];
  const double v = mid * mid;
  for (std::size_t i = lo; i < hi; ++i) out[i] = v;
}

}  // namespace

int main(int argc, char** argv) {
  const double ratio = argc > 1 ? std::atof(argv[1]) : 0.5;

  sigrt::Runtime rt;  // defaults: GTB policy, hardware worker count
  std::vector<double> in(kN);
  std::vector<double> out(kN, 0.0);
  for (std::size_t i = 0; i < kN; ++i) {
    in[i] = static_cast<double>(i) / static_cast<double>(kN);
  }

  const sigrt::energy::Scope energy(rt.meter());

  // The paper's compiler hoists the taskwait's ratio() clause into
  // tpc_init_group() on first use of the group (§3.1); with the library API
  // we make that call explicitly so the (windowed) GTB policy classifies
  // against the right ratio from the first task onward.
  sigrt::tpc_init_group(rt, "square", ratio);

  // #pragma omp task label(square) significant(...) approxfun(...)
  for (std::size_t c = 0; c < kN / kChunk; ++c) {
    const std::size_t lo = c * kChunk;
    const std::size_t hi = lo + kChunk;
    sigrt::omp_task(rt, [&, lo, hi] { square_chunk(out, in, lo, hi); })
        .label("square")
        .significant(static_cast<double>(c % 9 + 1) / 10.0)
        .approxfun([&, lo, hi] { square_chunk_appr(out, in, lo, hi); })
        .in(in.data() + lo, kChunk)
        .out(out.data() + lo, kChunk);
  }
  // #pragma omp taskwait label(square) ratio(<knob>)
  sigrt::omp_taskwait(rt).label("square").ratio(ratio);

  // How far from exact did we land?
  double max_err = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double exact = in[i] * in[i];
    const double err = exact == 0.0 ? 0.0 : std::abs(out[i] - exact);
    max_err = err > max_err ? err : max_err;
  }

  const auto report = rt.group_report(rt.ensure_group("square"));
  std::printf("quickstart: policy=%s ratio=%.2f\n", rt.policy_name(), ratio);
  std::printf("  tasks: %llu accurate, %llu approximate (provided ratio %.3f)\n",
              static_cast<unsigned long long>(report.accurate),
              static_cast<unsigned long long>(report.approximate),
              report.provided_ratio());
  std::printf("  max abs error: %.5f\n", max_err);
  std::printf("  energy (%s meter): %.3f J\n", rt.meter().name().c_str(),
              energy.joules());
  std::printf("\nTry: ./quickstart 1.0   (exact)   ./quickstart 0.0   (all approximate)\n");
  return 0;
}
