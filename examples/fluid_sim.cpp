// SPH fluid simulation with alternating accurate/approximate time steps.
//
// The paper's Fluidanimate port: whole time steps run either fully accurate
// (SPH density + forces) or fully approximate (linear extrapolation of the
// particle motion), controlled by flipping the group ratio between 1.0 and
// 0.0 at consecutive taskwait barriers (§4.1).
//
// Usage: ./examples/fluid_sim [accurate_period] [steps]
//   accurate_period 1 => every step accurate; 2 => paper's Mild; 4 => Medium
#include <cstdio>
#include <cstdlib>

#include "apps/fluidanimate.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace sigrt::apps;

  const auto period = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2;
  const auto steps = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 48;

  fluid::Options base;
  base.steps = steps;
  base.common.variant = Variant::GTB;

  // The degrees map to periods 2/4/8; emulate an arbitrary period by
  // picking the nearest degree for the built-in schedule, or full accuracy.
  if (period <= 1) {
    base.common.variant = Variant::Accurate;
  } else if (period <= 2) {
    base.common.degree = Degree::Mild;
  } else if (period <= 4) {
    base.common.degree = Degree::Medium;
  } else {
    base.common.degree = Degree::Aggressive;
  }

  fluid::State final_state;
  const auto r = fluid::run(base, &final_state);

  double mean_y = 0.0;
  double min_y = 1.0;
  for (const double y : final_state.py) {
    mean_y += y;
    min_y = y < min_y ? y : min_y;
  }
  mean_y /= static_cast<double>(final_state.py.size());

  std::printf("fluid_sim: %zu particles, %zu steps, schedule=%s\n",
              base.particles, steps,
              base.common.variant == Variant::Accurate ? "all accurate"
                                                       : to_string(base.common.degree));
  std::printf("  time   : %s\n", sigrt::support::format_seconds(r.time_s).c_str());
  std::printf("  energy : %s\n", sigrt::support::format_joules(r.energy_j).c_str());
  std::printf("  tasks  : %llu accurate / %llu approximate\n",
              static_cast<unsigned long long>(r.tasks_accurate),
              static_cast<unsigned long long>(r.tasks_approximate));
  if (base.common.variant != Variant::Accurate) {
    std::printf("  position error vs fully accurate run: %.4f (relative L2)\n",
                r.quality);
  }
  std::printf("  fluid settled to mean height %.3f (min %.3f)\n", mean_y, min_y);
  std::printf("\nStability note (§4.2): only the mild schedule (period 2) keeps\n"
              "the error acceptable; longer extrapolation windows diverge.\n");
  return 0;
}
