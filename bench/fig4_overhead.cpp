// Figure 4: runtime overhead of the significance machinery.
//
// Every benchmark runs with all tasks executed accurately (ratio 1.0 /
// all-accurate schedules) under each significance-aware policy, and is
// normalized to the significance-agnostic runtime doing the same work.
// The paper's finding: overhead is negligible (worst case ~7%: DCT under
// GTB MaxBuffer, whose many lightweight tasks stress the buffer-then-issue
// latency).
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "apps/dct.hpp"
#include "apps/fluidanimate.hpp"
#include "apps/jacobi.hpp"
#include "apps/kmeans.hpp"
#include "apps/mc.hpp"
#include "apps/sobel.hpp"
#include "support/table.hpp"

namespace {

using namespace sigrt::apps;

using AppRunner = std::function<RunResult(Variant)>;

double median_time(const AppRunner& run, Variant v, int reps,
                   double* tasks_per_sec = nullptr) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  double best_throughput = 0.0;
  for (int i = 0; i < reps; ++i) {
    const RunResult r = run(v);
    times.push_back(r.time_s);
    best_throughput = std::max(best_throughput, r.tasks_per_sec);
  }
  std::sort(times.begin(), times.end());
  if (tasks_per_sec != nullptr) *tasks_per_sec = best_throughput;
  return times[times.size() / 2];
}

}  // namespace

int main() {
  constexpr int kReps = 3;

  const std::pair<std::string, AppRunner> apps[] = {
      {"sobel",
       [](Variant v) {
         sobel::Options o;
         o.width = 512;
         o.height = 512;
         o.common.variant = v;
         o.ratio_override = 1.0;
         return sobel::run(o);
       }},
      {"dct",
       [](Variant v) {
         dct::Options o;
         o.width = 512;
         o.height = 512;
         o.common.variant = v;
         o.ratio_override = 1.0;
         return dct::run(o);
       }},
      {"mc",
       [](Variant v) {
         mc::Options o;
         o.points = 96;
         o.walks = 1000;
         o.common.variant = v;
         o.ratio_override = 1.0;
         return mc::run(o);
       }},
      {"kmeans",
       [](Variant v) {
         kmeans::Options o;
         o.points = 8192;
         o.common.variant = v;
         o.ratio_override = 1.0;
         return kmeans::run(o);
       }},
      {"jacobi",
       [](Variant v) {
         jacobi::Options o;
         o.n = 1024;
         o.approx_sweeps = 0;          // no approximate warm-up
         o.native_tolerance = 1e-4;    // same target for every variant
         o.common.degree = Degree::Mild;  // tolerance_for(Mild) == 1e-4
         o.common.variant = v;
         return jacobi::run(o);
       }},
      {"fluidanimate",
       [](Variant v) {
         fluid::Options o;
         o.particles = 2048;
         o.steps = 24;
         o.force_all_accurate = true;
         o.common.variant = v;
         return fluid::run(o);
       }},
  };

  sigrt::support::Table t(
      {"app", "agnostic_s", "tasks/s", "GTB", "GTB(MaxBuf)", "LQH"});
  for (const auto& [name, run] : apps) {
    double base_throughput = 0.0;
    const double base =
        median_time(run, Variant::Accurate, kReps, &base_throughput);
    const double gtb = median_time(run, Variant::GTB, kReps);
    const double gtb_max = median_time(run, Variant::GTBMaxBuffer, kReps);
    const double lqh = median_time(run, Variant::LQH, kReps);
    t.row()
        .cell(name)
        .cell(base, 4)
        .cell(base_throughput, 0)
        .cell(gtb / base, 3)
        .cell(gtb_max / base, 3)
        .cell(lqh / base, 3);
  }

  t.print("[fig4] execution time at ratio 1.0, normalized to the "
          "significance-agnostic runtime (1.000 = no overhead)");
  std::printf("expected shape: all entries ~1.0; the worst case in the paper\n"
              "is ~1.07 for DCT under GTB(MaxBuffer) — many lightweight tasks\n"
              "with buffered issue.\n");
  return 0;
}
