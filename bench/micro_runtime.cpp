// Microbenchmarks of the runtime substrate (google-benchmark): per-task
// spawn/classify/complete cost per policy, dependence-tracking cost, and
// the LQH decision path — the quantities behind Figure 4's "negligible
// overhead" claim.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/sigrt.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig inline_config(PolicyKind p, std::size_t buffer = 32) {
  RuntimeConfig c;
  c.workers = 0;  // inline: measures runtime bookkeeping, not thread wakeup
  c.policy = p;
  c.gtb_buffer = buffer;
  c.record_task_log = false;
  return c;
}

void spawn_batch(Runtime& rt, sigrt::GroupId g, int n) {
  for (int i = 0; i < n; ++i) {
    rt.spawn(sigrt::task([] { benchmark::DoNotOptimize(0); })
                 .approx([] { benchmark::DoNotOptimize(1); })
                 .significance(static_cast<double>(i % 9 + 1) / 10.0)
                 .group(g));
  }
  rt.wait_group(g);
}

void BM_SpawnWait_Agnostic(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::Agnostic));
  const auto g = rt.create_group("g", 1.0);
  for (auto _ : state) spawn_batch(rt, g, static_cast<int>(state.range(0)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpawnWait_Agnostic)->Arg(256);

void BM_SpawnWait_GTB(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::GTB, 32));
  const auto g = rt.create_group("g", 0.5);
  for (auto _ : state) spawn_batch(rt, g, static_cast<int>(state.range(0)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpawnWait_GTB)->Arg(256);

void BM_SpawnWait_GTBMaxBuffer(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 0.5);
  for (auto _ : state) spawn_batch(rt, g, static_cast<int>(state.range(0)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpawnWait_GTBMaxBuffer)->Arg(256);

void BM_SpawnWait_LQH(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::LQH));
  const auto g = rt.create_group("g", 0.5);
  for (auto _ : state) spawn_batch(rt, g, static_cast<int>(state.range(0)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpawnWait_LQH)->Arg(256);

// Dependence tracking: producer/consumer chains over one block vs
// independent tasks — isolates the tracker's contribution.
void BM_DependentChain(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::Agnostic));
  alignas(1024) static double cell[128];
  for (auto _ : state) {
    for (int i = 0; i < 128; ++i) {
      rt.spawn(sigrt::task([] { benchmark::DoNotOptimize(0); }).inout(cell, 128));
    }
    rt.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_DependentChain);

void BM_IndependentTasksWithClauses(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::Agnostic));
  static std::vector<double> arena(128 * 256);
  for (auto _ : state) {
    for (int i = 0; i < 128; ++i) {
      double* slot = arena.data() + i * 256;
      rt.spawn(sigrt::task([] { benchmark::DoNotOptimize(0); }).out(slot, 256));
    }
    rt.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_IndependentTasksWithClauses);

// Threaded end-to-end: spawn/execute/steal with 4 workers and real (tiny)
// task bodies.
void BM_ThreadedThroughput(benchmark::State& state) {
  RuntimeConfig c;
  c.workers = 4;
  c.policy = PolicyKind::LQH;
  c.record_task_log = false;
  Runtime rt(c);
  const auto g = rt.create_group("g", 0.5);
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) {
      rt.spawn(sigrt::task([] {
                 volatile int x = 0;
                 for (int j = 0; j < 64; ++j) x += j;
               })
                   .approx([] { benchmark::DoNotOptimize(2); })
                   .significance(static_cast<double>(i % 9 + 1) / 10.0)
                   .group(g));
    }
    rt.wait_group(g);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_ThreadedThroughput)->Unit(benchmark::kMillisecond);

// Group report (Table 2 accounting) on a populated log.
void BM_GroupReport(benchmark::State& state) {
  RuntimeConfig c = inline_config(PolicyKind::GTBMaxBuffer);
  c.record_task_log = true;
  Runtime rt(c);
  const auto g = rt.create_group("g", 0.5);
  for (int i = 0; i < 4096; ++i) {
    rt.spawn(sigrt::task([] {})
                 .approx([] {})
                 .significance(static_cast<double>(i % 9 + 1) / 10.0)
                 .group(g));
  }
  rt.wait_group(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.group_report(g));
  }
}
BENCHMARK(BM_GroupReport);

}  // namespace
