// Microbenchmarks of the runtime substrate (google-benchmark): per-task
// spawn/classify/complete cost per policy, dependence-tracking cost, and
// the LQH decision path — the quantities behind Figure 4's "negligible
// overhead" claim.
//
// Besides the google-benchmark suite, main() emits a one-line JSON record
// (tasks/sec and steals/sec of a threaded spawn+execute run with stealing
// enabled) so successive PRs can track the scheduler's perf trajectory in
// BENCH_*.json.  `--benchmark_filter=NONE` skips the suite and prints only
// the record.
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "core/sigrt.hpp"
#include "support/timer.hpp"

namespace {

using sigrt::PolicyKind;
using sigrt::Runtime;
using sigrt::RuntimeConfig;

RuntimeConfig inline_config(PolicyKind p, std::size_t buffer = 32) {
  RuntimeConfig c;
  c.workers = 0;  // inline: measures runtime bookkeeping, not thread wakeup
  c.policy = p;
  c.gtb_buffer = buffer;
  c.record_task_log = false;
  return c;
}

void spawn_batch(Runtime& rt, sigrt::GroupId g, int n) {
  for (int i = 0; i < n; ++i) {
    rt.spawn(sigrt::task([] { benchmark::DoNotOptimize(0); })
                 .approx([] { benchmark::DoNotOptimize(1); })
                 .significance(static_cast<double>(i % 9 + 1) / 10.0)
                 .group(g));
  }
  rt.wait_group(g);
}

void BM_SpawnWait_Agnostic(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::Agnostic));
  const auto g = rt.create_group("g", 1.0);
  for (auto _ : state) spawn_batch(rt, g, static_cast<int>(state.range(0)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpawnWait_Agnostic)->Arg(256);

void BM_SpawnWait_GTB(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::GTB, 32));
  const auto g = rt.create_group("g", 0.5);
  for (auto _ : state) spawn_batch(rt, g, static_cast<int>(state.range(0)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpawnWait_GTB)->Arg(256);

void BM_SpawnWait_GTBMaxBuffer(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::GTBMaxBuffer));
  const auto g = rt.create_group("g", 0.5);
  for (auto _ : state) spawn_batch(rt, g, static_cast<int>(state.range(0)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpawnWait_GTBMaxBuffer)->Arg(256);

void BM_SpawnWait_LQH(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::LQH));
  const auto g = rt.create_group("g", 0.5);
  for (auto _ : state) spawn_batch(rt, g, static_cast<int>(state.range(0)));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpawnWait_LQH)->Arg(256);

// Dependence tracking: producer/consumer chains over one block vs
// independent tasks — isolates the tracker's contribution.
void BM_DependentChain(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::Agnostic));
  alignas(1024) static double cell[128];
  for (auto _ : state) {
    for (int i = 0; i < 128; ++i) {
      rt.spawn(sigrt::task([] { benchmark::DoNotOptimize(0); }).inout(cell, 128));
    }
    rt.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_DependentChain);

void BM_IndependentTasksWithClauses(benchmark::State& state) {
  Runtime rt(inline_config(PolicyKind::Agnostic));
  static std::vector<double> arena(128 * 256);
  for (auto _ : state) {
    for (int i = 0; i < 128; ++i) {
      double* slot = arena.data() + i * 256;
      rt.spawn(sigrt::task([] { benchmark::DoNotOptimize(0); }).out(slot, 256));
    }
    rt.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_IndependentTasksWithClauses);

// Threaded end-to-end: spawn/execute/steal with 4 workers and real (tiny)
// task bodies.
void BM_ThreadedThroughput(benchmark::State& state) {
  RuntimeConfig c;
  c.workers = 4;
  c.policy = PolicyKind::LQH;
  c.record_task_log = false;
  Runtime rt(c);
  const auto g = rt.create_group("g", 0.5);
  for (auto _ : state) {
    for (int i = 0; i < 512; ++i) {
      rt.spawn(sigrt::task([] {
                 volatile int x = 0;
                 for (int j = 0; j < 64; ++j) x += j;
               })
                   .approx([] { benchmark::DoNotOptimize(2); })
                   .significance(static_cast<double>(i % 9 + 1) / 10.0)
                   .group(g));
    }
    rt.wait_group(g);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_ThreadedThroughput)->Unit(benchmark::kMillisecond);

// Group report (Table 2 accounting) on a populated log.
void BM_GroupReport(benchmark::State& state) {
  RuntimeConfig c = inline_config(PolicyKind::GTBMaxBuffer);
  c.record_task_log = true;
  Runtime rt(c);
  const auto g = rt.create_group("g", 0.5);
  for (int i = 0; i < 4096; ++i) {
    rt.spawn(sigrt::task([] {})
                 .approx([] {})
                 .significance(static_cast<double>(i % 9 + 1) / 10.0)
                 .group(g));
  }
  rt.wait_group(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.group_report(g));
  }
}
BENCHMARK(BM_GroupReport);

// Steady-state scheduler throughput: spawn+execute `tasks` empty-body tasks
// across `workers` workers with stealing enabled, timed wall-to-wall.  This
// is the quantity the lock-free scheduler work optimizes for.
struct ThroughputRecord {
  double tasks_per_sec = 0.0;
  double steals_per_sec = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t steals = 0;
  double wall_s = 0.0;
};

ThroughputRecord measure_throughput(unsigned workers, std::uint64_t tasks) {
  RuntimeConfig c;
  c.workers = workers;
  c.policy = PolicyKind::LQH;
  c.record_task_log = false;
  Runtime rt(c);
  const auto g = rt.create_group("throughput", 0.5);
  const std::int64_t t0 = sigrt::support::now_ns();
  for (std::uint64_t i = 0; i < tasks; ++i) {
    rt.spawn(sigrt::task([] {})
                 .approx([] {})
                 .significance(static_cast<double>(i % 9 + 1) / 10.0)
                 .group(g));
  }
  rt.wait_group(g);
  const std::int64_t t1 = sigrt::support::now_ns();

  ThroughputRecord r;
  r.tasks = tasks;
  r.steals = rt.stats().steals;
  r.wall_s = static_cast<double>(t1 - t0) * 1e-9;
  if (r.wall_s > 0) {
    r.tasks_per_sec = static_cast<double>(r.tasks) / r.wall_s;
    r.steals_per_sec = static_cast<double>(r.steals) / r.wall_s;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  constexpr unsigned kWorkers = 8;
  constexpr std::uint64_t kTasks = 200000;
  const ThroughputRecord r = measure_throughput(kWorkers, kTasks);
  std::printf(
      "{\"bench\":\"micro_runtime\",\"workers\":%u,\"tasks\":%" PRIu64
      ",\"wall_s\":%.6f,\"tasks_per_sec\":%.1f,\"steals\":%" PRIu64
      ",\"steals_per_sec\":%.1f}\n",
      kWorkers, r.tasks, r.wall_s, r.tasks_per_sec, r.steals,
      r.steals_per_sec);
  return 0;
}
