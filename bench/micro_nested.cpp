// Nested-parallelism gate: divide-and-conquer fib with any-thread spawn
// and an in-task taskwait (helping barrier) on every interior node —
// the workload shape the single-spawner contract could not express.
//
// Interior nodes are pinned significant (they carry the tree structure:
// approximating one would prune its whole subtree and collapse the
// workload), while leaf significance decays with depth (sig =
// 0.97^depth), so under LQH with ratio < 1 the runtime skips a depth-
// weighted share of the leaf work — the paper's quality knob applied at
// the bottom of a divide-and-conquer recursion.
//
// Cells: {agnostic, LQH ratio 0.5} x {1, 2, 8} workers.  Like micro_spawn/micro_deps, the driver counts heap
// allocations through an instrumented global operator new and warms up
// until a full round allocates nothing, so the steady-state
// allocs-per-task column extends the zero-allocation contract to the
// nested spawn + helping-barrier path.  Output is one JSON line
// (BENCH_micro_nested.json in CI); CLI arguments are accepted and ignored
// for harness compatibility.
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/sigrt.hpp"
#include "support/timer.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

// fib(40) with cutoff 20: recursion depth 20, ~21k interior+leaf tasks on
// the full (agnostic) tree.
constexpr int kFibN = 40;
constexpr int kCutoff = 20;
constexpr double kSigDecay = 0.97;

std::uint64_t fib_iterative(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

std::atomic<std::uint64_t> g_sink{0};  // keeps leaf work observable

void spawn_node(sigrt::Runtime& rt, int n, int depth);

void run_accurate(sigrt::Runtime& rt, int n, int depth) {
  if (n < kCutoff) {
    g_sink.fetch_add(fib_iterative(n), std::memory_order_relaxed);
    return;
  }
  spawn_node(rt, n - 1, depth + 1);
  spawn_node(rt, n - 2, depth + 1);
  rt.wait_all();  // in-task: helping barrier over this node's children
}

void spawn_node(sigrt::Runtime& rt, int n, int depth) {
  // Interior nodes carry the recursion: significance 1.0 pins them
  // accurate under every policy.  Leaves degrade with depth.
  const double sig = n >= kCutoff ? 1.0 : std::pow(kSigDecay, depth);
  rt.spawn(sigrt::task([&rt, n, depth] { run_accurate(rt, n, depth); })
               // A leaf's approximate body skips its fib slice entirely.
               .approx([] {})
               .significance(sig));
}

std::uint64_t nested_round(sigrt::Runtime& rt) {
  const std::uint64_t before = rt.stats().spawned;
  spawn_node(rt, kFibN, 0);
  rt.wait_all();  // top level: global barrier
  return rt.stats().spawned - before;
}

struct NestedRecord {
  const char* policy = "";
  double ratio = 1.0;
  unsigned workers = 0;
  std::uint64_t tasks = 0;
  std::uint64_t accurate = 0;
  std::uint64_t approximate = 0;
  std::uint64_t allocs = 0;
  double allocs_per_task = 0.0;
  double wall_s = 0.0;
  double tasks_per_sec = 0.0;
};

NestedRecord measure(sigrt::PolicyKind policy, double ratio, unsigned workers,
                     int max_warmup) {
  sigrt::RuntimeConfig c;
  c.workers = workers;
  c.policy = policy;
  c.default_ratio = ratio;
  c.record_task_log = false;
  sigrt::Runtime rt(c);

  // Warm-up: grow the task pool, the LQH histories and every helping
  // scratch frame to the workload's high-water mark, repeating until a
  // full round allocates nothing.
  for (int r = 0; r < max_warmup; ++r) {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    (void)nested_round(rt);
    if (r > 0 && g_allocs.load(std::memory_order_relaxed) == before) break;
  }

  const auto r0 = rt.group_report(sigrt::kDefaultGroup);
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::int64_t t0 = sigrt::support::now_ns();
  const std::uint64_t tasks = nested_round(rt);
  const std::int64_t t1 = sigrt::support::now_ns();
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  const auto r1 = rt.group_report(sigrt::kDefaultGroup);

  NestedRecord rec;
  rec.policy = sigrt::to_string(policy);
  rec.ratio = ratio;
  rec.workers = workers;
  rec.tasks = tasks;
  rec.accurate = r1.accurate - r0.accurate;
  rec.approximate = r1.approximate - r0.approximate;
  rec.allocs = a1 - a0;
  rec.allocs_per_task =
      tasks == 0 ? 0.0
                 : static_cast<double>(rec.allocs) / static_cast<double>(tasks);
  rec.wall_s = static_cast<double>(t1 - t0) * 1e-9;
  if (rec.wall_s > 0) {
    rec.tasks_per_sec = static_cast<double>(tasks) / rec.wall_s;
  }
  return rec;
}

}  // namespace

int main(int, char**) {
  constexpr unsigned kWorkerSweep[] = {1, 2, 8};
  std::vector<NestedRecord> records;
  for (unsigned w : kWorkerSweep) {
    records.push_back(
        measure(sigrt::PolicyKind::Agnostic, 1.0, w, /*max_warmup=*/6));
    records.push_back(measure(sigrt::PolicyKind::LQH, 0.5, w, /*max_warmup=*/6));
  }

  std::printf("{\"bench\":\"micro_nested\",\"fib_n\":%d,\"cutoff\":%d,"
              "\"depth\":%d,\"sig_decay\":%.2f,\"cells\":[",
              kFibN, kCutoff, kFibN - kCutoff, kSigDecay);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const NestedRecord& r = records[i];
    std::printf(
        "%s{\"policy\":\"%s\",\"ratio\":%.2f,\"workers\":%u,\"tasks\":%" PRIu64
        ",\"accurate\":%" PRIu64 ",\"approximate\":%" PRIu64
        ",\"allocs\":%" PRIu64
        ",\"allocs_per_task\":%.6f,\"wall_s\":%.6f,\"tasks_per_sec\":%.1f}",
        i == 0 ? "" : ",", r.policy, r.ratio, r.workers, r.tasks, r.accurate,
        r.approximate, r.allocs, r.allocs_per_task, r.wall_s, r.tasks_per_sec);
  }
  std::printf("]}\n");
  return 0;
}
