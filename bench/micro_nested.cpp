// Nested-parallelism gate: divide-and-conquer fib with any-thread spawn
// and an in-task taskwait (helping barrier) on every interior node —
// the workload shape the single-spawner contract could not express.
//
// Interior nodes are pinned significant (they carry the tree structure:
// approximating one would prune its whole subtree and collapse the
// workload), while leaf significance decays with depth (sig =
// 0.97^depth), so under LQH with ratio < 1 the runtime skips a depth-
// weighted share of the leaf work — the paper's quality knob applied at
// the bottom of a divide-and-conquer recursion.
//
// Cells: {agnostic, LQH ratio 0.5} x {1, 2, 8} workers.  Like micro_spawn/micro_deps, the driver counts heap
// allocations through an instrumented global operator new and warms up
// until a full round allocates nothing, so the steady-state
// allocs-per-task column extends the zero-allocation contract to the
// nested spawn + helping-barrier path.  Output is one JSON line
// (BENCH_micro_nested.json in CI); CLI arguments are accepted and ignored
// for harness compatibility.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "core/sigrt.hpp"
#include "fault/fault.hpp"
#include "support/timer.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

// fib(40) with cutoff 20: recursion depth 20, ~21k interior+leaf tasks on
// the full (agnostic) tree.
constexpr int kFibN = 40;
constexpr int kCutoff = 20;
constexpr double kSigDecay = 0.97;

std::uint64_t fib_iterative(int n) {
  std::uint64_t a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

std::atomic<std::uint64_t> g_sink{0};  // keeps leaf work observable

void spawn_node(sigrt::Runtime& rt, int n, int depth);

void run_accurate(sigrt::Runtime& rt, int n, int depth) {
  if (n < kCutoff) {
    g_sink.fetch_add(fib_iterative(n), std::memory_order_relaxed);
    return;
  }
  spawn_node(rt, n - 1, depth + 1);
  spawn_node(rt, n - 2, depth + 1);
  rt.wait_all();  // in-task: helping barrier over this node's children
}

void spawn_node(sigrt::Runtime& rt, int n, int depth) {
  // Interior nodes carry the recursion: significance 1.0 pins them
  // accurate under every policy.  Leaves degrade with depth.
  const double sig = n >= kCutoff ? 1.0 : std::pow(kSigDecay, depth);
  rt.spawn(sigrt::task([&rt, n, depth] { run_accurate(rt, n, depth); })
               // A leaf's approximate body skips its fib slice entirely.
               .approx([] {})
               .significance(sig));
}

std::uint64_t nested_round(sigrt::Runtime& rt) {
  const std::uint64_t before = rt.stats().spawned;
  spawn_node(rt, kFibN, 0);
  rt.wait_all();  // top level: global barrier
  return rt.stats().spawned - before;
}

struct NestedRecord {
  const char* policy = "";
  double ratio = 1.0;
  unsigned workers = 0;
  std::uint64_t tasks = 0;
  std::uint64_t accurate = 0;
  std::uint64_t approximate = 0;
  std::uint64_t allocs = 0;
  double allocs_per_task = 0.0;
  double wall_s = 0.0;
  double tasks_per_sec = 0.0;
  /// Per-worker {near, far} steal deltas over the measured round
  /// (topology-aware victim order: near = same LLC or closer).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> steal_locality;
};

NestedRecord measure(sigrt::PolicyKind policy, double ratio, unsigned workers,
                     int max_warmup) {
  sigrt::RuntimeConfig c;
  c.workers = workers;
  c.policy = policy;
  c.default_ratio = ratio;
  c.record_task_log = false;
  sigrt::Runtime rt(c);

  // Warm-up: grow the task pool, the LQH histories and every helping
  // scratch frame to the workload's high-water mark, repeating until a
  // full round allocates nothing.
  for (int r = 0; r < max_warmup; ++r) {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    (void)nested_round(rt);
    if (r > 0 && g_allocs.load(std::memory_order_relaxed) == before) break;
  }

  const auto r0 = rt.group_report(sigrt::kDefaultGroup);
  const auto steals0 = rt.steal_locality();
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::int64_t t0 = sigrt::support::now_ns();
  const std::uint64_t tasks = nested_round(rt);
  const std::int64_t t1 = sigrt::support::now_ns();
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  const auto r1 = rt.group_report(sigrt::kDefaultGroup);
  const auto steals1 = rt.steal_locality();

  NestedRecord rec;
  rec.policy = sigrt::to_string(policy);
  rec.ratio = ratio;
  rec.workers = workers;
  rec.tasks = tasks;
  rec.accurate = r1.accurate - r0.accurate;
  rec.approximate = r1.approximate - r0.approximate;
  rec.allocs = a1 - a0;
  rec.allocs_per_task =
      tasks == 0 ? 0.0
                 : static_cast<double>(rec.allocs) / static_cast<double>(tasks);
  rec.wall_s = static_cast<double>(t1 - t0) * 1e-9;
  if (rec.wall_s > 0) {
    rec.tasks_per_sec = static_cast<double>(tasks) / rec.wall_s;
  }
  rec.steal_locality.resize(steals1.size());
  for (std::size_t i = 0; i < steals1.size(); ++i) {
    const std::uint64_t n0 = i < steals0.size() ? steals0[i].first : 0;
    const std::uint64_t f0 = i < steals0.size() ? steals0[i].second : 0;
    rec.steal_locality[i] = {steals1[i].first - n0, steals1[i].second - f0};
  }
  return rec;
}

// --- deep taskwait chain ---------------------------------------------------
// A depth-64 chain of in-task taskwaits: every level spawns one child and
// waits for it, nesting one helping-barrier frame per level.  Past the
// helping-depth cap the worker hands its slot to a spare thread instead of
// growing its stack without bound, so the cell's handoffs/spares columns
// are the elastic pool reacting and its wall time the cost of ~depth/cap
// slot handoffs.
constexpr int kChainDepth = 64;

void chain_node(sigrt::Runtime& rt, int depth) {
  if (depth <= 0) {
    g_sink.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  rt.spawn(sigrt::task([&rt, depth] { chain_node(rt, depth - 1); }));
  rt.wait_all();  // in-task: helping barrier one frame deeper per level
}

struct DeepChainRecord {
  unsigned rounds = 0;
  double wall_s = 0.0;
  std::uint64_t handoffs = 0;
  std::uint64_t spares_spawned = 0;
  std::uint64_t allocs = 0;
};

DeepChainRecord measure_deep_chain(unsigned rounds) {
  sigrt::RuntimeConfig c;
  c.workers = 2;
  c.policy = sigrt::PolicyKind::Agnostic;  // pass-through: no buffering
  c.record_task_log = false;
  sigrt::Runtime rt(c);
  const auto round = [&rt] {
    rt.spawn(sigrt::task([&rt] { chain_node(rt, kChainDepth); }));
    rt.wait_all();
  };
  for (unsigned r = 0; r < 4; ++r) round();  // warm the pool and the spares

  DeepChainRecord rec;
  rec.rounds = rounds;
  const auto p0 = rt.pool_stats();
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::int64_t t0 = sigrt::support::now_ns();
  for (unsigned r = 0; r < rounds; ++r) round();
  const std::int64_t t1 = sigrt::support::now_ns();
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  const auto p1 = rt.pool_stats();
  rec.wall_s = static_cast<double>(t1 - t0) * 1e-9;
  rec.handoffs = p1.handoffs - p0.handoffs;
  rec.spares_spawned = p1.spares_spawned - p0.spares_spawned;
  rec.allocs = a1 - a0;
  return rec;
}

// --- barrier wake latency ---------------------------------------------------
// One round: the root task spawns one sleeper child and spins (yielding)
// until the child has demonstrably STARTED on the other worker — only then
// does it enter its in-task barrier, so the child can never be helped
// inline and the waiter genuinely has to wait for a remote completion.
// With event wakeup the waiter parks and is woken by the last-child
// notify; with the polling baseline it sleeps in 50 us slices, so its wake
// trails the child's end by up to a full slice.  Latency is the gap
// between the child's end stamp and the waiter's wake stamp — the quantity
// the >= 2x p99 acceptance gate compares across the two modes.

struct WakeSide {
  double p50_us = 0.0;
  double p99_us = 0.0;
};

std::int64_t wake_round(sigrt::Runtime& rt) {
  std::atomic<bool> started{false};
  std::atomic<std::int64_t> last_end{0};
  std::atomic<std::int64_t> wake{0};
  rt.spawn(sigrt::task([&] {
    rt.spawn(sigrt::task([&] {
      started.store(true, std::memory_order_seq_cst);
      // Busy-spin, do not sleep: a sleeping child ends on a kernel timer
      // tick, and timer-slack coalescing would wake the polling waiter on
      // the same tick — hiding exactly the polling latency this measures.
      // The spin must also outlast the waiter's pre-sleep yield phase even
      // on a single-CPU box, where each yield grants this child a full
      // scheduler slice (~1 ms x 16 yields), so it runs for 20 ms.
      const std::int64_t t0 = sigrt::support::now_ns();
      while (sigrt::support::now_ns() - t0 < 20'000'000) {
      }
      last_end.store(sigrt::support::now_ns(), std::memory_order_seq_cst);
    }));
    // Hand the child to the other worker before entering the barrier
    // (yield keeps the second worker runnable on oversubscribed boxes).
    while (!started.load(std::memory_order_seq_cst)) {
      std::this_thread::yield();
    }
    rt.wait_all();  // in-task: nothing to help — a pure remote wait
    wake.store(sigrt::support::now_ns(), std::memory_order_seq_cst);
  }));
  rt.wait_all();
  return wake.load() - last_end.load();
}

WakeSide percentiles(std::vector<std::int64_t>& ns) {
  std::sort(ns.begin(), ns.end());
  WakeSide s;
  s.p50_us = static_cast<double>(ns[ns.size() / 2]) * 1e-3;
  s.p99_us = static_cast<double>(ns[ns.size() * 99 / 100]) * 1e-3;
  return s;
}

struct WakeRecord {
  unsigned rounds = 0;
  WakeSide event;
  WakeSide poll;
};

WakeRecord measure_barrier_wake(unsigned rounds) {
  const auto make_config = [](bool event_wakeup) {
    sigrt::RuntimeConfig c;
    c.workers = 2;
    c.policy = sigrt::PolicyKind::Agnostic;  // pass-through: untimed parks
    c.record_task_log = false;
    c.event_wakeup = event_wakeup;  // false = the PR-5 yield/50 us baseline
    return c;
  };
  // Both runtimes persist across the measurement and rounds alternate
  // between them, so machine noise lands on both sides equally.
  sigrt::Runtime rt_event(make_config(true));
  sigrt::Runtime rt_poll(make_config(false));
  for (unsigned r = 0; r < 4; ++r) {
    (void)wake_round(rt_event);
    (void)wake_round(rt_poll);
  }
  std::vector<std::int64_t> ns_event, ns_poll;
  ns_event.reserve(rounds);
  ns_poll.reserve(rounds);
  for (unsigned r = 0; r < rounds; ++r) {
    ns_event.push_back(wake_round(rt_event));
    ns_poll.push_back(wake_round(rt_poll));
  }
  WakeRecord rec;
  rec.rounds = rounds;
  rec.event = percentiles(ns_event);
  rec.poll = percentiles(ns_poll);
  return rec;
}

// --- redo overhead (disarmed check/redo path) ------------------------------
// The resilience gate: a task that carries a check() validator and a redo
// budget must cost the same as a plain task while no fault plan is armed.
// Rounds alternate between plain and checked spawns over one persistent
// inline runtime so machine noise lands on both sides equally; the cell
// reports median ns/task for each side, their ratio (CI gates <= 1.02x),
// and the steady-state allocation count across the measured checked rounds
// (CI gates 0: the validator rides the task slab's inline buffer).

constexpr unsigned kRedoRounds = 65;          // odd: median is a real sample
constexpr std::uint64_t kRedoTasks = 8192;    // per round

void redo_body(std::uint64_t i) {
  unsigned acc = static_cast<unsigned>(i);
  for (int k = 0; k < 64; ++k) acc = acc * 1664525u + 1013904223u;
  g_sink.fetch_add(acc, std::memory_order_relaxed);
}

std::int64_t redo_round_plain(sigrt::Runtime& rt) {
  const std::int64_t t0 = sigrt::support::now_ns();
  for (std::uint64_t i = 0; i < kRedoTasks; ++i) {
    rt.spawn(sigrt::task([i] { redo_body(i); }));
  }
  rt.wait_all();
  return sigrt::support::now_ns() - t0;
}

std::int64_t redo_round_checked(sigrt::Runtime& rt) {
  const std::int64_t t0 = sigrt::support::now_ns();
  for (std::uint64_t i = 0; i < kRedoTasks; ++i) {
    rt.spawn(sigrt::task([i] { redo_body(i); })
                 .check([] { return true; })
                 .max_redos(2));
  }
  rt.wait_all();
  return sigrt::support::now_ns() - t0;
}

struct RedoOverheadRecord {
  unsigned rounds = 0;
  std::uint64_t tasks_per_round = 0;
  double plain_ns_per_task = 0.0;    // median over rounds
  double checked_ns_per_task = 0.0;  // median over rounds
  double ratio = 0.0;                // checked / plain
  std::uint64_t checked_allocs = 0;  // across all measured checked rounds
  double checked_allocs_per_task = 0.0;
};

double median_ns_per_task(std::vector<std::int64_t>& ns) {
  std::sort(ns.begin(), ns.end());
  return static_cast<double>(ns[ns.size() / 2]) /
         static_cast<double>(kRedoTasks);
}

RedoOverheadRecord measure_redo_overhead() {
  sigrt::RuntimeConfig c;
  // One worker, not inline mode: the inline queue is a deque that releases
  // its blocks every round (64 allocs/round at this task count on both
  // sides), which would drown the 0-alloc gate; the worker deque keeps its
  // capacity across rounds.
  c.workers = 1;
  c.policy = sigrt::PolicyKind::Agnostic;
  c.record_task_log = false;
  sigrt::Runtime rt(c);

  // Warm both shapes until a full round allocates nothing.
  for (int r = 0; r < 6; ++r) {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    (void)redo_round_plain(rt);
    (void)redo_round_checked(rt);
    if (r > 0 && g_allocs.load(std::memory_order_relaxed) == before) break;
  }

  std::vector<std::int64_t> plain_ns, checked_ns;
  plain_ns.reserve(kRedoRounds);
  checked_ns.reserve(kRedoRounds);
  std::uint64_t checked_allocs = 0;
  for (unsigned r = 0; r < kRedoRounds; ++r) {
    // Alternate which side of the pair runs first so cache/branch warmth
    // from the preceding round does not systematically favor one shape.
    if (r % 2 == 0) plain_ns.push_back(redo_round_plain(rt));
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    checked_ns.push_back(redo_round_checked(rt));
    checked_allocs += g_allocs.load(std::memory_order_relaxed) - a0;
    if (r % 2 != 0) plain_ns.push_back(redo_round_plain(rt));
  }

  RedoOverheadRecord rec;
  rec.rounds = kRedoRounds;
  rec.tasks_per_round = kRedoTasks;
  // The gated ratio is the median of per-round PAIRED ratios, not the
  // ratio of the two medians: each round's plain and checked halves run
  // back-to-back under the same machine state, so frequency drift over the
  // measurement cancels inside every pair instead of landing on one side.
  std::vector<double> pair_ratio(kRedoRounds);
  for (unsigned r = 0; r < kRedoRounds; ++r) {
    pair_ratio[r] = static_cast<double>(checked_ns[r]) /
                    static_cast<double>(plain_ns[r]);
  }
  std::sort(pair_ratio.begin(), pair_ratio.end());
  rec.ratio = pair_ratio[kRedoRounds / 2];
  rec.plain_ns_per_task = median_ns_per_task(plain_ns);
  rec.checked_ns_per_task = median_ns_per_task(checked_ns);
  rec.checked_allocs = checked_allocs;
  rec.checked_allocs_per_task =
      static_cast<double>(checked_allocs) /
      static_cast<double>(kRedoTasks * kRedoRounds);
  return rec;
}

}  // namespace

int main(int, char**) {
  constexpr unsigned kWorkerSweep[] = {1, 2, 8};
  std::vector<NestedRecord> records;
  for (unsigned w : kWorkerSweep) {
    records.push_back(
        measure(sigrt::PolicyKind::Agnostic, 1.0, w, /*max_warmup=*/6));
    records.push_back(measure(sigrt::PolicyKind::LQH, 0.5, w, /*max_warmup=*/6));
  }
  const DeepChainRecord chain = measure_deep_chain(/*rounds=*/32);
  const WakeRecord wake = measure_barrier_wake(/*rounds=*/250);
  const RedoOverheadRecord redo = measure_redo_overhead();

  std::printf("{\"bench\":\"micro_nested\",\"fib_n\":%d,\"cutoff\":%d,"
              "\"depth\":%d,\"sig_decay\":%.2f,\"cells\":[",
              kFibN, kCutoff, kFibN - kCutoff, kSigDecay);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const NestedRecord& r = records[i];
    std::printf(
        "%s{\"policy\":\"%s\",\"ratio\":%.2f,\"workers\":%u,\"tasks\":%" PRIu64
        ",\"accurate\":%" PRIu64 ",\"approximate\":%" PRIu64
        ",\"allocs\":%" PRIu64
        ",\"allocs_per_task\":%.6f,\"wall_s\":%.6f,\"tasks_per_sec\":%.1f",
        i == 0 ? "" : ",", r.policy, r.ratio, r.workers, r.tasks, r.accurate,
        r.approximate, r.allocs, r.allocs_per_task, r.wall_s, r.tasks_per_sec);
    std::printf(",\"steal_locality\":[");
    for (std::size_t s = 0; s < r.steal_locality.size(); ++s) {
      std::printf("%s{\"near\":%" PRIu64 ",\"far\":%" PRIu64 "}",
                  s == 0 ? "" : ",", r.steal_locality[s].first,
                  r.steal_locality[s].second);
    }
    std::printf("]}");
  }
  std::printf("],\"deep_chain\":{\"depth\":%d,\"rounds\":%u,\"wall_s\":%.6f,"
              "\"handoffs\":%" PRIu64 ",\"spares_spawned\":%" PRIu64
              ",\"allocs\":%" PRIu64 "}",
              kChainDepth, chain.rounds, chain.wall_s, chain.handoffs,
              chain.spares_spawned, chain.allocs);
  std::printf(
      ",\"barrier_wake\":{\"rounds\":%u,"
      "\"event\":{\"p50_us\":%.2f,\"p99_us\":%.2f},"
      "\"poll\":{\"p50_us\":%.2f,\"p99_us\":%.2f},\"p99_ratio\":%.2f}",
      wake.rounds, wake.event.p50_us, wake.event.p99_us, wake.poll.p50_us,
      wake.poll.p99_us,
      wake.event.p99_us > 0.0 ? wake.poll.p99_us / wake.event.p99_us : 0.0);
  std::printf(
      ",\"redo_overhead\":{\"fault_injection_compiled\":%s,\"rounds\":%u,"
      "\"tasks_per_round\":%" PRIu64
      ",\"plain_ns_per_task\":%.2f,\"checked_ns_per_task\":%.2f,"
      "\"ratio\":%.4f,\"checked_allocs\":%" PRIu64
      ",\"checked_allocs_per_task\":%.6f}}\n",
      SIGRT_FAULT_INJECTION ? "true" : "false", redo.rounds,
      redo.tasks_per_round, redo.plain_ns_per_task, redo.checked_ns_per_task,
      redo.ratio, redo.checked_allocs, redo.checked_allocs_per_task);
  return 0;
}
