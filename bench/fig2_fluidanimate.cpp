// Figure 2, Fluidanimate row: time / energy / relative error across degrees
// and policies.  Loop perforation is not applicable (dropping part of the
// particles' movement violates the physics, §4.2).
#include "apps/fluidanimate.hpp"
#include "fig2_common.hpp"

int main() {
  using namespace sigrt::apps;
  sigrt::bench::run_fig2(
      "fluidanimate",
      "expected shape: halving the accurate steps (Mild) roughly halves the\n"
      "energy at bounded error; Medium/Aggressive degrade sharply — the\n"
      "paper reports only Mild is acceptable.",
      [](Variant v, Degree d, const RunResult*) {
        fluid::Options o;
        o.particles = 2048;
        o.steps = 48;
        o.common.variant = v;
        o.common.degree = d;
        return fluid::run(o);
      },
      /*perforation_supported=*/false);
  return 0;
}
