// Table 2: degree of accuracy of the policies — the percentage of
// inversed-significance tasks (a task approximated while a strictly less
// significant one ran accurately) and the average |requested - provided|
// accurate-ratio deviation, per benchmark and policy.
//
// The paper's shape: both GTB flavors are exact (0 / 0 everywhere); LQH
// shows small inversions on the mixed-significance benchmarks (Sobel, DCT,
// MC) and none on the uniform-significance ones (Kmeans, Jacobi,
// Fluidanimate), plus a small ratio deviation from its localized view.
#include <cstdio>
#include <functional>
#include <string>

#include "apps/dct.hpp"
#include "apps/fluidanimate.hpp"
#include "apps/jacobi.hpp"
#include "apps/kmeans.hpp"
#include "apps/mc.hpp"
#include "apps/sobel.hpp"
#include "support/table.hpp"

namespace {

using namespace sigrt::apps;

RunResult run_app(const std::string& name, Variant v) {
  CommonOptions c;
  c.variant = v;
  c.degree = Degree::Medium;
  if (name == "sobel") {
    sobel::Options o;
    o.width = 512;
    o.height = 384;
    // Window = 2x Sobel's 9-value significance cycle: every GTB window then
    // sees the same significance multiset and uses one global cutoff — the
    // "smoothly distributed significance values" condition under which the
    // paper reports zero inversions for bounded GTB (§4.2).  Windows that
    // are no multiple of the cycle shift the cutoff between windows, which
    // our global inversion metric counts.
    c.gtb_buffer = 18;
    o.common = c;
    return sobel::run(o);
  }
  if (name == "dct") {
    dct::Options o;
    o.width = 256;
    o.height = 256;
    o.common = c;
    return dct::run(o);
  }
  if (name == "mc") {
    mc::Options o;
    o.points = 128;
    o.walks = 600;
    o.common = c;
    return mc::run(o);
  }
  if (name == "kmeans") {
    kmeans::Options o;
    o.points = 4096;
    o.common = c;
    return kmeans::run(o);
  }
  if (name == "jacobi") {
    jacobi::Options o;
    o.n = 512;
    o.common = c;
    return jacobi::run(o);
  }
  fluid::Options o;
  o.particles = 1024;
  o.steps = 24;
  c.degree = Degree::Mild;  // paper: only mild is meaningful for fluid
  o.common = c;
  return fluid::run(o);
}

}  // namespace

int main() {
  const char* apps[] = {"sobel", "dct", "mc", "kmeans", "jacobi", "fluidanimate"};

  sigrt::support::Table t({"Benchmark", "inv% LQH", "inv% GTB", "inv% GTB(MB)",
                           "ratio-diff LQH", "ratio-diff GTB",
                           "ratio-diff GTB(MB)"});

  for (const char* app : apps) {
    const RunResult lqh = run_app(app, Variant::LQH);
    const RunResult gtb = run_app(app, Variant::GTB);
    const RunResult gtb_mb = run_app(app, Variant::GTBMaxBuffer);
    t.row()
        .cell(app)
        .cell(lqh.inversion_fraction * 100.0, 2)
        .cell(gtb.inversion_fraction * 100.0, 2)
        .cell(gtb_mb.inversion_fraction * 100.0, 2)
        .cell(lqh.ratio_diff, 3)
        .cell(gtb.ratio_diff, 3)
        .cell(gtb_mb.ratio_diff, 3);
  }

  t.print("[table2] policy accuracy at the Medium degree "
          "(fluidanimate: Mild)");
  std::printf("expected shape: GTB columns are ~0 everywhere (deterministic\n"
              "window classification; bounded GTB can overshoot the ratio by\n"
              "<1 task per window); LQH shows small inversions only where\n"
              "significance varies (sobel/dct/mc) and a small ratio deviation\n"
              "from its per-worker view.\n");
  return 0;
}
