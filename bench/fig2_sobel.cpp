// Figure 2, Sobel row: time / energy / PSNR^-1 across degrees and policies.
#include "apps/sobel.hpp"
#include "fig2_common.hpp"

int main() {
  using namespace sigrt::apps;
  sigrt::bench::run_fig2(
      "sobel",
      "expected shape: approximation cuts time/energy monotonically;\n"
      "perforation is fastest but its quality (unwritten rows) collapses.",
      [](Variant v, Degree d, const RunResult*) {
        sobel::Options o;
        o.width = 512;
        o.height = 512;
        o.repeats = 2;
        o.common.variant = v;
        o.common.degree = d;
        return sobel::run(o);
      });
  return 0;
}
