// Per-kernel ns/element microbench for the SIMD-dispatched app kernels.
//
// Grid: kernel {sobel, dct, jacobi, kmeans}
//     x ratio  {1.00, 0.75, 0.50}   (perforation rate = 1 - ratio)
//     x impl   {scalar, simd}       (support::simd::set_active)
//     x shape  {modulo, block}      (perforation::Shape of the inner loop)
//
// Each cell drives the *shipped* kernel entry points (apps/kernels.hpp)
// over the surviving iterations of the perforated inner loop:
//
//  - ratio 1.00 runs the dense kernel (no perforation — a compiler would
//    emit the plain loop), so scalar-vs-simd at ratio 1.00 is the pure
//    vectorization speedup the acceptance gate reads.
//  - modulo yields unit runs: each surviving element goes through a
//    1-element kernel call / scalar accumulate — the classic scattered
//    comparator, which defeats vectorization.
//  - block yields dense aligned runs (perforation::perforate_blocks) that
//    still feed the vector kernels — the vectorization-preserving redesign.
//
// ns_per_element is wall time divided by *surviving* elements (the work
// actually executed), so block-vs-modulo at equal ratio compares
// ns/surviving-element directly.  Heap allocations are counted through a
// replaced global operator new (micro_spawn's idiom); the hot loops are
// fully preallocated, so allocs is expected to be 0 for every cell.
//
// Output: one JSON line (record with a "cells" array) in the BENCH_*.json
// convention.  Cells are labelled by their string fields, so ratio is
// emitted as a string.  `--impl=scalar|simd` restricts the grid to one
// impl and omits the impl/level tags from the cells — that makes
//
//   ab_compare.py "./bench_micro_kernels --impl=scalar" \
//                 "./bench_micro_kernels --impl=simd"
//
// line the two sides' cell labels up for interleaved A/B medians.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "apps/kernels.hpp"
#include "perforation/perforate.hpp"
#include "support/image.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/timer.hpp"

namespace {

std::uint64_t g_allocs = 0;

}  // namespace

// Replaceable global allocation functions: every heap allocation in the
// process goes through here (single-threaded driver, plain counter).
void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocs;
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded != 0 ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

namespace kern = sigrt::apps::kern;
namespace perf = sigrt::perforation;
namespace simd = sigrt::support::simd;

volatile double g_sink = 0.0;

using Runs = std::vector<std::pair<std::size_t, std::size_t>>;

/// Surviving [begin, end) runs of the perforated inner loop, plus the
/// surviving element count.  rate <= 0 (ratio 1.0) is the dense loop for
/// every shape.  Selection happens once, outside the measured region — a
/// compiler applying perforation would emit the strided loop directly.
struct Plan {
  Runs runs;
  std::size_t elements = 0;
};

Plan make_plan(std::size_t begin, std::size_t end, double rate,
               perf::Shape shape, std::size_t block) {
  Plan plan;
  if (rate <= 0.0) {
    plan.runs.emplace_back(begin, end);
  } else if (shape == perf::Shape::Block) {
    perf::perforate_blocks(
        begin, end, rate,
        [&](std::size_t lo, std::size_t hi) { plan.runs.emplace_back(lo, hi); },
        block);
  } else {
    perf::for_each(
        begin, end, rate,
        [&](std::size_t i) { plan.runs.emplace_back(i, i + 1); }, shape);
  }
  for (const auto& [lo, hi] : plan.runs) plan.elements += hi - lo;
  return plan;
}

/// Runs-aware dot product: wide runs go through the dispatched vector
/// kernel, unit runs stay scalar (exactly what the perforated app loops do).
double dot_runs(const double* a, const double* b, const Runs& runs) {
  double acc = 0.0;
  for (const auto& [lo, hi] : runs) {
    if (hi - lo >= 8) {
      acc += kern::dot_span(a + lo, b + lo, hi - lo);
    } else {
      for (std::size_t j = lo; j < hi; ++j) acc += a[j] * b[j];
    }
  }
  return acc;
}

double sq_dist_runs(const double* a, const double* b, const Runs& runs) {
  double acc = 0.0;
  for (const auto& [lo, hi] : runs) {
    if (hi - lo >= 8) {
      acc += kern::sq_dist_span(a + lo, b + lo, hi - lo);
    } else {
      for (std::size_t j = lo; j < hi; ++j) {
        const double d = a[j] - b[j];
        acc += d * d;
      }
    }
  }
  return acc;
}

// --- per-kernel workloads --------------------------------------------------
// Each workload preallocates its buffers once (constructor) and exposes
// sweep(plan): one pass over the data through the shipped kernels, touching
// only the plan's surviving elements.  elements(plan) is the per-sweep
// surviving element count.

/// Sobel: accurate row kernel over a 512x256 image; the perforated loop is
/// the interior column range [1, w-1) of every interior row.
struct SobelWork {
  static constexpr std::size_t kW = 512, kH = 256, kBlockCols = 32;
  sigrt::support::Image img{sigrt::support::synthetic_image(kW, kH, 42)};
  std::vector<std::uint8_t> res = std::vector<std::uint8_t>(kW * kH, 0);

  static Plan plan(double rate, perf::Shape shape) {
    return make_plan(1, kW - 1, rate, shape, kBlockCols);
  }
  static std::size_t elements(const Plan& p) { return p.elements * (kH - 2); }
  void sweep(const Plan& p) {
    for (std::size_t row = 1; row + 1 < kH; ++row) {
      for (const auto& [lo, hi] : p.runs) {
        kern::sobel_row_accurate(res.data(), img.data(), kW, row, lo, hi);
      }
    }
    g_sink = g_sink + static_cast<double>(res[kW + 1]);
  }
};

/// DCT: full 8x8 transform (all 15 bands) of every block of a 128x128
/// image.  The perforated loop is the inner x-sum of each coefficient
/// (block stride 4); ratio 1.0 runs the shipped dct_block_band kernel, the
/// perforated cells run the same math with the x-sum restricted to the
/// surviving runs via the dispatched dot kernel.
struct DctWork {
  static constexpr std::size_t kW = 128, kH = 128, kBlockCols = 4;
  sigrt::support::Image img{sigrt::support::synthetic_image(kW, kH, 43)};
  std::vector<float> coeffs = std::vector<float>(kW * kH, 0.0f);
  std::vector<double> ct = std::vector<double>(64, 0.0);
  std::vector<double> alpha = std::vector<double>(8, 0.0);
  std::vector<double> px = std::vector<double>(64, 0.0);

  DctWork() {
    constexpr double kPi = 3.14159265358979323846;
    for (std::size_t u = 0; u < 8; ++u) {
      for (std::size_t x = 0; x < 8; ++x) {
        ct[u * 8 + x] = std::cos((2.0 * static_cast<double>(x) + 1.0) *
                                 static_cast<double>(u) * kPi / 16.0);
      }
      alpha[u] = u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
    }
  }

  static Plan plan(double rate, perf::Shape shape) {
    return make_plan(0, 8, rate, shape, kBlockCols);
  }
  // Element == one pixel term of one coefficient's double sum: 64
  // coefficients x 8 y-terms x surviving x-terms, per 8x8 block.
  static std::size_t elements(const Plan& p) {
    return (kW / 8) * (kH / 8) * 64 * 8 * p.elements;
  }
  void sweep(const Plan& p) {
    const bool dense = p.elements == 8;
    for (std::size_t by = 0; by < kH / 8; ++by) {
      for (std::size_t bx = 0; bx < kW / 8; ++bx) {
        float* block = coeffs.data() + (by * (kW / 8) + bx) * 64;
        if (dense) {
          for (std::size_t band = 0; band < 15; ++band) {
            kern::dct_block_band(block, img.data(), kW, bx * 8, by * 8, band,
                                 ct.data(), alpha.data());
          }
        } else {
          for (std::size_t y = 0; y < 8; ++y) {
            const std::uint8_t* rowp = img.data() + (by * 8 + y) * kW + bx * 8;
            for (std::size_t x = 0; x < 8; ++x) {
              px[y * 8 + x] = static_cast<double>(rowp[x]) - 128.0;
            }
          }
          for (std::size_t v = 0; v < 8; ++v) {
            for (std::size_t u = 0; u < 8; ++u) {
              double acc = 0.0;
              for (std::size_t y = 0; y < 8; ++y) {
                acc += ct[v * 8 + y] *
                       dot_runs(px.data() + y * 8, ct.data() + u * 8, p.runs);
              }
              block[v * 8 + u] = static_cast<float>(alpha[u] * alpha[v] * acc);
            }
          }
        }
      }
    }
    g_sink = g_sink + static_cast<double>(coeffs[0]);
  }
};

/// Jacobi: row-update dot products of a 256-row slice of a 1024-unknown
/// dense system; the perforated loop is the column range of the row sum.
struct JacobiWork {
  static constexpr std::size_t kN = 1024, kRows = 256, kBlockCols = 16;
  std::vector<double> a = std::vector<double>(kRows * kN, 0.0);
  std::vector<double> x = std::vector<double>(kN, 0.0);

  JacobiWork() {
    sigrt::support::Xoshiro256 rng(44);
    for (double& v : a) v = rng.uniform(-1.0, 1.0);
    for (double& v : x) v = rng.uniform(-1.0, 1.0);
  }

  static Plan plan(double rate, perf::Shape shape) {
    return make_plan(0, kN, rate, shape, kBlockCols);
  }
  static std::size_t elements(const Plan& p) { return p.elements * kRows; }
  void sweep(const Plan& p) {
    double acc = 0.0;
    for (std::size_t i = 0; i < kRows; ++i) {
      acc += dot_runs(a.data() + i * kN, x.data(), p.runs);
    }
    g_sink = g_sink + acc;
  }
};

/// Kmeans: nearest-centroid assignment of 2048 points against 8 centroids
/// in 64 dimensions; the perforated loop is the dimension range of the
/// squared distance.  Ratio 1.0 runs the shipped nearest_centroid kernel.
struct KmeansWork {
  static constexpr std::size_t kPoints = 2048, kDims = 64, kClusters = 8,
                               kBlockDims = 8;
  std::vector<double> pts = std::vector<double>(kPoints * kDims, 0.0);
  std::vector<double> centroids = std::vector<double>(kClusters * kDims, 0.0);

  KmeansWork() {
    sigrt::support::Xoshiro256 rng(45);
    for (double& v : pts) v = rng.uniform(-8.0, 8.0);
    for (double& v : centroids) v = rng.uniform(-8.0, 8.0);
  }

  static Plan plan(double rate, perf::Shape shape) {
    return make_plan(0, kDims, rate, shape, kBlockDims);
  }
  static std::size_t elements(const Plan& p) {
    return kPoints * kClusters * p.elements;
  }
  void sweep(const Plan& p) {
    const bool dense = p.elements == kDims;
    std::size_t idx_sum = 0;
    for (std::size_t i = 0; i < kPoints; ++i) {
      const double* pt = pts.data() + i * kDims;
      if (dense) {
        idx_sum += kern::nearest_centroid(pt, centroids.data(), kClusters,
                                          kDims, kDims);
      } else {
        std::size_t best = 0;
        double best_d = sq_dist_runs(pt, centroids.data(), p.runs);
        for (std::size_t c = 1; c < kClusters; ++c) {
          const double d =
              sq_dist_runs(pt, centroids.data() + c * kDims, p.runs);
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        idx_sum += best;
      }
    }
    g_sink = g_sink + static_cast<double>(idx_sum);
  }
};

/// Wide-image sobel for the tiled-vs-untiled A/B: the image is wide enough
/// (~2 MiB per full-width row) that the untiled row-major pass evicts row
/// y's halo before row y+1 can reuse it, while the band entry point walks
/// L2-sized column strips down the whole band (kernels.hpp).  The width is
/// deliberately NOT a power of two: a power-of-two row stride lands every
/// row of the band on the same cache sets and associativity-thrashes both
/// traversals, measuring aliasing instead of tiling.  Output is
/// byte-identical on both sides.
struct WideSobelWork {
  static constexpr std::size_t kW = (std::size_t{1} << 21) + 192, kH = 6;
  sigrt::support::Image img{sigrt::support::synthetic_image(kW, kH, 46)};
  std::vector<std::uint8_t> res = std::vector<std::uint8_t>(kW * kH, 0);

  static std::size_t elements() { return (kW - 2) * (kH - 2); }
  void sweep_untiled() {
    for (std::size_t row = 1; row + 1 < kH; ++row) {
      kern::sobel_row_accurate(res.data(), img.data(), kW, row, 1, kW - 1);
    }
    g_sink = g_sink + static_cast<double>(res[kW + 1]);
  }
  void sweep_tiled() {
    kern::sobel_band_accurate(res.data(), img.data(), kW, 1, kH - 1);
    g_sink = g_sink + static_cast<double>(res[kW + 1]);
  }
};

// --- measurement -----------------------------------------------------------

struct Cell {
  std::string kernel, shape, ratio, impl, level;
  double ns_per_element = 0.0;
  std::size_t elements = 0;  // surviving elements per sweep
  std::size_t reps = 0;
  std::uint64_t allocs = 0;
};

/// Times `reps` sweeps, sized so the measured region lasts ~target_ns.
template <typename Work>
Cell measure(Work& work, const char* kernel, perf::Shape shape, double ratio,
             std::int64_t target_ns) {
  Cell cell;
  cell.kernel = kernel;
  cell.shape = perf::to_string(shape);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.2f", ratio);
  cell.ratio = buf;

  const Plan plan = Work::plan(1.0 - ratio, shape);
  cell.elements = Work::elements(plan);

  // Calibrate rep count on a warm-up sweep (also pages the buffers in).
  sigrt::support::Stopwatch cal;
  cal.start();
  work.sweep(plan);
  cal.stop();
  const std::int64_t once = std::max<std::int64_t>(1, cal.elapsed_ns());
  cell.reps = static_cast<std::size_t>(
      std::clamp<std::int64_t>(target_ns / once, 3, 2000));

  const std::uint64_t allocs_before = g_allocs;
  sigrt::support::Stopwatch sw;
  sw.start();
  for (std::size_t r = 0; r < cell.reps; ++r) work.sweep(plan);
  sw.stop();
  cell.allocs = g_allocs - allocs_before;
  cell.ns_per_element =
      static_cast<double>(sw.elapsed_ns()) /
      (static_cast<double>(cell.elements) * static_cast<double>(cell.reps));
  return cell;
}

/// Interleaved A/B of the wide-image sobel: untiled and tiled sweeps
/// alternate inside one measured region so machine noise lands on both
/// sides equally; each side reports its per-sweep *median* ns/element
/// (robust against a stray slow rep on either side).
std::pair<Cell, Cell> measure_wide_sobel(WideSobelWork& work,
                                         std::int64_t target_ns) {
  const auto make = [](const char* shape) {
    Cell c;
    c.kernel = "sobel_wide";
    c.shape = shape;
    c.ratio = "1.00";
    c.elements = WideSobelWork::elements();
    return c;
  };
  Cell untiled = make("untiled");
  Cell tiled = make("tiled");

  // Calibrate on one warm-up pair (also pages the buffers in).
  sigrt::support::Stopwatch cal;
  cal.start();
  work.sweep_untiled();
  work.sweep_tiled();
  cal.stop();
  const std::int64_t once = std::max<std::int64_t>(1, cal.elapsed_ns());
  const std::size_t reps = static_cast<std::size_t>(
      std::clamp<std::int64_t>(target_ns / once, 7, 300));
  untiled.reps = tiled.reps = reps;

  std::vector<double> ns_untiled, ns_tiled;
  ns_untiled.reserve(reps);
  ns_tiled.reserve(reps);
  // One sample = one sweep on a fresh stopwatch (Stopwatch accumulates
  // across start/stop pairs).
  const auto sample = [](auto fn, Cell& cell, std::vector<double>& ns) {
    const std::uint64_t a0 = g_allocs;
    sigrt::support::Stopwatch sw;
    sw.start();
    fn();
    sw.stop();
    cell.allocs += g_allocs - a0;
    ns.push_back(static_cast<double>(sw.elapsed_ns()));
  };
  for (std::size_t r = 0; r < reps; ++r) {
    sample([&] { work.sweep_untiled(); }, untiled, ns_untiled);
    sample([&] { work.sweep_tiled(); }, tiled, ns_tiled);
  }

  const auto median_per_element = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    const double med = v.size() % 2 == 1
                           ? v[v.size() / 2]
                           : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
    return med / static_cast<double>(WideSobelWork::elements());
  };
  untiled.ns_per_element = median_per_element(ns_untiled);
  tiled.ns_per_element = median_per_element(ns_tiled);
  return {std::move(untiled), std::move(tiled)};
}

void emit(const std::vector<Cell>& cells, bool tag_impl) {
  std::printf("{\"bench\":\"micro_kernels\",\"simd_detected\":\"%s\",\"cells\":[",
              simd::to_string(simd::detected()));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::printf("%s{\"kernel\":\"%s\",\"shape\":\"%s\",\"ratio\":\"%s\"",
                i == 0 ? "" : ",", c.kernel.c_str(), c.shape.c_str(),
                c.ratio.c_str());
    if (tag_impl) {
      std::printf(",\"impl\":\"%s\",\"level\":\"%s\"", c.impl.c_str(),
                  c.level.c_str());
    }
    std::printf(",\"ns_per_element\":%.4f,\"elements\":%zu,\"reps\":%zu,"
                "\"allocs\":%llu}",
                c.ns_per_element, c.elements, c.reps,
                static_cast<unsigned long long>(c.allocs));
  }
  std::printf("]}\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool run_scalar = true;
  bool run_simd = true;
  std::int64_t target_ns = 50'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--impl=scalar") == 0) run_simd = false;
    if (std::strcmp(argv[i], "--impl=simd") == 0) run_scalar = false;
    if (std::strcmp(argv[i], "--quick") == 0) target_ns = 8'000'000;
  }
  const bool tag_impl = run_scalar && run_simd;

  SobelWork sobel;
  DctWork dct;
  JacobiWork jacobi;
  KmeansWork kmeans;

  const double ratios[] = {1.0, 0.75, 0.5};
  const perf::Shape shapes[] = {perf::Shape::Modulo, perf::Shape::Block};
  const simd::Isa hw = simd::detected();

  std::vector<Cell> cells;
  for (const double ratio : ratios) {
    for (const perf::Shape shape : shapes) {
      // Interleave impls within each (ratio, shape) point so machine noise
      // lands on both sides of the scalar/simd comparison equally.
      for (const bool use_simd : {false, true}) {
        if (use_simd ? !run_simd : !run_scalar) continue;
        const simd::Isa level =
            simd::set_active(use_simd ? hw : simd::Isa::Scalar);
        const auto add = [&](Cell c) {
          c.impl = use_simd ? "simd" : "scalar";
          c.level = simd::to_string(level);
          cells.push_back(std::move(c));
        };
        add(measure(sobel, "sobel", shape, ratio, target_ns));
        add(measure(dct, "dct", shape, ratio, target_ns));
        add(measure(jacobi, "jacobi", shape, ratio, target_ns));
        add(measure(kmeans, "kmeans", shape, ratio, target_ns));
      }
    }
  }
  // Wide-image sobel tiled-vs-untiled gate (one ISA level — tiling is a
  // memory effect, so it rides whichever level this invocation targets).
  {
    const simd::Isa level = simd::set_active(run_simd ? hw : simd::Isa::Scalar);
    WideSobelWork wide;
    auto [untiled, tiled] = measure_wide_sobel(wide, target_ns);
    for (Cell* c : {&untiled, &tiled}) {
      c->impl = run_simd ? "simd" : "scalar";
      c->level = simd::to_string(level);
    }
    cells.push_back(std::move(untiled));
    cells.push_back(std::move(tiled));
  }
  simd::set_active(hw);

  emit(cells, tag_impl);
  return g_sink < 1e308 ? 0 : 1;  // keep the sink observable
}
