// Figure 2, DCT row: time / energy / PSNR^-1 across degrees and policies.
#include "apps/dct.hpp"
#include "fig2_common.hpp"

int main() {
  using namespace sigrt::apps;
  sigrt::bench::run_fig2(
      "dct",
      "expected shape: sigrt matches perforation's time/energy but wins on\n"
      "quality (perforation drops low-frequency bands blindly); GTB(MaxBuf)\n"
      "pays the largest overhead here — many lightweight tasks (cf. Fig 4).",
      [](Variant v, Degree d, const RunResult*) {
        dct::Options o;
        o.width = 512;
        o.height = 512;
        o.common.variant = v;
        o.common.degree = d;
        return dct::run(o);
      });
  return 0;
}
