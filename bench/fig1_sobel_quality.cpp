// Figure 1: Sobel output at four approximation levels, assembled as the
// paper's quadrant comparison — upper left accurate, upper right Mild,
// lower left Medium, lower right Aggressive.  Writes fig1_sobel.pgm and
// prints the per-quadrant PSNR.
#include <cstdio>

#include "apps/sobel.hpp"
#include "metrics/quality.hpp"
#include "support/image.hpp"
#include "support/table.hpp"

int main() {
  using namespace sigrt::apps;
  using sigrt::support::Image;

  constexpr std::size_t kSize = 512;
  const Image input = sigrt::support::synthetic_image(kSize, kSize, 42);
  const Image reference = sobel::reference(input);

  struct Quad {
    const char* name;
    double ratio;
    int qx, qy;
  };
  const Quad quads[] = {
      {"accurate", 1.0, 0, 0},
      {"mild", sobel::ratio_for(Degree::Mild), 1, 0},
      {"medium", sobel::ratio_for(Degree::Medium), 0, 1},
      {"aggressive", sobel::ratio_for(Degree::Aggressive), 1, 1},
  };

  Image assembled(kSize, kSize, 0);
  sigrt::support::Table t({"quadrant", "ratio", "PSNR_dB", "PSNR^-1"});

  for (const Quad& q : quads) {
    sobel::Options o;
    o.width = kSize;
    o.height = kSize;
    o.common.variant = Variant::GTBMaxBuffer;
    o.ratio_override = q.ratio;
    Image out;
    sobel::run(o, &out);
    sigrt::support::blit_quadrant(assembled, out, q.qx, q.qy);
    const double psnr = sigrt::metrics::psnr_db(reference, out);
    t.row().cell(q.name).cell(q.ratio, 2).cell(psnr, 2).cell(
        sigrt::metrics::inverse_psnr(psnr), 5);
  }

  const char* path = "fig1_sobel.pgm";
  sigrt::support::write_pgm(assembled, path);
  t.print("[fig1] Sobel under increasing approximation (quadrants of " +
          std::string(path) + ")");
  std::printf("expected shape: PSNR degrades gracefully; even the aggressive\n"
              "quadrant (every row via the approxfun) stays a usable edge map.\n");
  return 0;
}
