// Open-loop load generator for the serving layer: three request classes
// (sobel / dct / kmeans mini-jobs) under merged Poisson arrival streams at
// three rate tiers, each tier against a fresh Server.  Demonstrates the
// closed loop end to end: at the high tier the QosController trades the
// group ratio() for latency; at the low tier quality recovers.
//
// Prints one JSON line per (tier, class) for BENCH_*.json trend tracking:
// offered load, shed/degraded/perforated counts, throughput, p50/p99
// latency, the controller's final ratio and the achieved accurate ratio.
//
// Arrival rates are calibrated against the measured accurate-body cost so
// the tiers mean the same thing on any machine: `mult` x the worker pool's
// accurate-execution capacity, split evenly across the classes.
//
// Flags: --seconds <s> (per tier, default 2.0), --quick (= --seconds 0.6).
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "apps/dct.hpp"
#include "apps/kmeans.hpp"
#include "apps/sobel.hpp"
#include "serve/serve.hpp"
#include "support/image.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/timer.hpp"

namespace {

using namespace sigrt;
using namespace sigrt::serve;

/// Defeats dead-code elimination of the request bodies.
volatile std::uint64_t g_sink = 0;
void sink(std::uint64_t v) { g_sink = g_sink + v; }

struct Workload {
  std::string name;
  double deadline_ms = 25.0;
  std::function<void()> accurate;
  std::function<void()> approximate;
  double accurate_cost_s = 0.0;  ///< calibrated at startup
};

apps::kmeans::Options kmeans_options(std::size_t iterations) {
  apps::kmeans::Options o;
  o.points = 512;
  o.dims = 8;
  o.clusters = 4;
  o.chunk = 64;
  o.max_iterations = iterations;
  return o;
}

std::vector<Workload> make_workloads() {
  static const support::Image img64 = support::synthetic_image(64, 64, 42);
  static const support::Image img32 = support::synthetic_image(32, 32, 43);
  static const support::Image img16 = support::synthetic_image(16, 16, 44);

  std::vector<Workload> out;
  out.push_back({"sobel", 25.0,
                 [] { sink(apps::sobel::reference(img64).at(10, 10)); },
                 [] { sink(apps::sobel::reference_approx(img64).at(10, 10)); },
                 0.0});
  // DCT is a drop-style benchmark; its degraded response transforms a
  // quarter-resolution thumbnail instead of the full tile.
  out.push_back({"dct", 25.0,
                 [] {
                   const auto c = apps::dct::reference(img32);
                   sink(static_cast<std::uint64_t>(c[0]));
                 },
                 [] {
                   const auto c = apps::dct::reference(img16);
                   sink(static_cast<std::uint64_t>(c[0]));
                 },
                 0.0});
  // Kmeans degrades by iteration count: the cheap response stops after one
  // assignment pass.
  out.push_back({"kmeans", 50.0,
                 [] { sink(apps::kmeans::reference(kmeans_options(6)).iterations); },
                 [] { sink(apps::kmeans::reference(kmeans_options(1)).iterations); },
                 0.0});
  return out;
}

double measure_cost_s(const std::function<void()>& fn) {
  double best = 1e9;  // min of 3: the least-interfered-with run
  for (int i = 0; i < 3; ++i) {
    const std::int64_t t0 = support::now_ns();
    fn();
    best = std::min(best, static_cast<double>(support::now_ns() - t0) * 1e-9);
  }
  return std::max(best, 1e-6);
}

void run_tier(const char* tier, double mult, double seconds,
              const std::vector<Workload>& workloads, unsigned workers,
              std::uint64_t seed) {
  ServerOptions so;
  so.runtime.workers = workers;
  so.epoch_ms = 10.0;
  Server srv(so);

  std::vector<ClassId> ids;
  std::vector<double> rates_hz;
  for (const Workload& w : workloads) {
    RequestClassConfig cfg;
    cfg.name = w.name;
    cfg.qos.deadline_ns = w.deadline_ms * 1e6;
    cfg.qos.quality_floor = 0.05;
    cfg.qos.backlog_high = 64;
    cfg.qos.backlog_low = 16;
    // The admission bound caps the standing queue — and with it the
    // worst-case residence time — so under sustained overload the ladder
    // ends in shedding instead of an ever-deeper backlog.
    cfg.max_in_flight = 256;
    ids.push_back(srv.register_class(cfg));
    // Even capacity split: `mult` x the pool's accurate throughput.
    rates_hz.push_back(mult * static_cast<double>(workers) /
                       (static_cast<double>(workloads.size()) * w.accurate_cost_s));
  }

  support::Xoshiro256 rng(seed);
  const auto exp_gap_ns = [&rng](double rate_hz) {
    return static_cast<std::int64_t>(-std::log(1.0 - rng.uniform()) * 1e9 /
                                     rate_hz);
  };

  std::vector<std::int64_t> next(workloads.size());
  std::vector<std::uint64_t> sig_counter(workloads.size(), 0);
  const std::int64_t start = support::now_ns();
  for (std::size_t i = 0; i < next.size(); ++i) next[i] = start + exp_gap_ns(rates_hz[i]);
  const std::int64_t end = start + static_cast<std::int64_t>(seconds * 1e9);

  while (true) {
    const std::size_t i = static_cast<std::size_t>(
        std::min_element(next.begin(), next.end()) - next.begin());
    if (next[i] >= end) break;
    std::this_thread::sleep_until(std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(next[i]))));
    const Workload& w = workloads[i];
    srv.submit(ids[i],
               {w.accurate, w.approximate,
                static_cast<double>(sig_counter[i]++ % 9 + 1) / 10.0});
    next[i] += exp_gap_ns(rates_hz[i]);
  }
  srv.close();  // drains everything admitted

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ClassReport r = srv.class_report(ids[i]);
    std::printf(
        "{\"bench\":\"serve_loadgen\",\"tier\":\"%s\",\"class\":\"%s\","
        "\"simd\":\"%s\","
        "\"workers\":%u,\"rate_hz\":%.1f,\"seconds\":%.2f,"
        "\"accurate_cost_ms\":%.3f,\"deadline_ms\":%.1f,"
        "\"submitted\":%" PRIu64 ",\"shed\":%" PRIu64 ",\"degraded\":%" PRIu64
        ",\"perforated\":%" PRIu64 ",\"served\":%" PRIu64
        ",\"throughput_hz\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"mean_ms\":%.3f,\"ratio\":%.3f,\"achieved_ratio\":%.3f}\n",
        tier, r.name.c_str(), support::simd::to_string(support::simd::active()),
        workers, rates_hz[i], seconds,
        workloads[i].accurate_cost_s * 1e3, r.deadline_ms, r.submitted, r.shed,
        r.degraded, r.perforated, r.served(),
        static_cast<double>(r.served()) / seconds, r.p50_ms, r.p99_ms,
        r.mean_ms, r.ratio, r.achieved_ratio());
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 2.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) seconds = 0.6;
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    }
  }

  std::vector<Workload> workloads = make_workloads();
  for (Workload& w : workloads) w.accurate_cost_s = measure_cost_s(w.accurate);

  const unsigned workers = RuntimeConfig::default_workers();
  run_tier("low", 0.25, seconds, workloads, workers, /*seed=*/101);
  run_tier("base", 1.0, seconds, workloads, workers, /*seed=*/202);
  run_tier("high", 3.0, seconds, workloads, workers, /*seed=*/303);
  return 0;
}
