// Open-loop load generator for the serving layer, in two transports.
//
// In-process (default): three request classes (sobel / dct / kmeans
// mini-jobs) under merged Poisson arrival streams at three rate tiers, each
// tier against a fresh Server.  Demonstrates the closed loop end to end: at
// the high tier the QosController trades the group ratio() for latency; at
// the low tier quality recovers.
//
// Wire (--tcp): the same calibrated tiers driven through the net frontend
// over loopback by CLIENT PROCESSES (posix_spawn of this binary with
// --client), one tenant per process, the parent aggregating server-side
// tenant cells with client-observed wire latencies.  A fourth "peak" tier
// runs pipelined clients against an allocation-free FNV kernel and measures
// sustained wire throughput plus the number of heap allocations per request
// on the server's hot threads (pollers, dispatchers, workers-in-handler) —
// the zero-steady-state-alloc gate for the framing/dispatch path.
//
// Prints one JSON line per cell as it is produced, then a final summary
// line {"bench":"serve_loadgen","transport":...,"cells":[...]} — the
// record bench/ab_compare.py consumes (it parses the LAST line).  Cells
// carry `tenant` and `transport` tags; diff across transports with
// `ab_compare.py --strip-tag transport ...`.
//
// Flags: --seconds <s> (per tier, default 2.0), --quick (= --seconds 0.6),
// --workers <n>, --tcp.  The --client form is internal (spawned children).
#include <fcntl.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "apps/dct.hpp"
#include "apps/kmeans.hpp"
#include "apps/sobel.hpp"
#include "net/net.hpp"
#include "serve/serve.hpp"
#include "support/image.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/timer.hpp"

extern char** environ;

// --- Allocation probe ----------------------------------------------------
//
// Counts operator-new calls made by "hot" threads (those on the per-request
// path: pollers, dispatchers, and workers while running a kernel handler)
// while the probe is armed.  The peak tier arms it after warmup; a nonzero
// steady-state count divided by requests served in the window is the
// allocs-per-request figure the acceptance gate watches.

namespace alloc_probe {
std::atomic<bool> armed{false};
std::atomic<std::uint64_t> hot_allocs{0};
thread_local bool hot_thread = false;

inline void count() noexcept {
  if (armed.load(std::memory_order_relaxed) && hot_thread) {
    hot_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace alloc_probe

void* operator new(std::size_t n) {
  alloc_probe::count();
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace sigrt;
using namespace sigrt::serve;

/// Defeats dead-code elimination of the request bodies.
volatile std::uint64_t g_sink = 0;
void sink(std::uint64_t v) { g_sink = g_sink + v; }

std::string jsonf(const char* fmt, ...) {
  char buf[2048];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

/// Emits one cell line immediately and stashes it for the final summary.
void emit(std::vector<std::string>& cells, std::string cell) {
  std::printf("%s\n", cell.c_str());
  std::fflush(stdout);
  cells.push_back(std::move(cell));
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * static_cast<double>(v.size()));
  return v[std::min(idx, v.size() - 1)];
}

// --- Workloads -----------------------------------------------------------

struct Workload {
  std::string name;
  double deadline_ms = 25.0;
  std::function<void()> accurate;
  std::function<void()> approximate;
  double accurate_cost_s = 0.0;  ///< calibrated at startup
};

apps::kmeans::Options kmeans_options(std::size_t iterations) {
  apps::kmeans::Options o;
  o.points = 512;
  o.dims = 8;
  o.clusters = 4;
  o.chunk = 64;
  o.max_iterations = iterations;
  return o;
}

std::vector<Workload> make_workloads() {
  static const support::Image img64 = support::synthetic_image(64, 64, 42);
  static const support::Image img32 = support::synthetic_image(32, 32, 43);
  static const support::Image img16 = support::synthetic_image(16, 16, 44);

  std::vector<Workload> out;
  out.push_back({"sobel", 25.0,
                 [] { sink(apps::sobel::reference(img64).at(10, 10)); },
                 [] { sink(apps::sobel::reference_approx(img64).at(10, 10)); },
                 0.0});
  // DCT is a drop-style benchmark; its degraded response transforms a
  // quarter-resolution thumbnail instead of the full tile.
  out.push_back({"dct", 25.0,
                 [] {
                   const auto c = apps::dct::reference(img32);
                   sink(static_cast<std::uint64_t>(c[0]));
                 },
                 [] {
                   const auto c = apps::dct::reference(img16);
                   sink(static_cast<std::uint64_t>(c[0]));
                 },
                 0.0});
  // Kmeans degrades by iteration count: the cheap response stops after one
  // assignment pass.
  out.push_back({"kmeans", 50.0,
                 [] { sink(apps::kmeans::reference(kmeans_options(6)).iterations); },
                 [] { sink(apps::kmeans::reference(kmeans_options(1)).iterations); },
                 0.0});
  return out;
}

double measure_cost_s(const std::function<void()>& fn) {
  double best = 1e9;  // min of 3: the least-interfered-with run
  for (int i = 0; i < 3; ++i) {
    const std::int64_t t0 = support::now_ns();
    fn();
    best = std::min(best, static_cast<double>(support::now_ns() - t0) * 1e-9);
  }
  return std::max(best, 1e-6);
}

RequestClassConfig class_config(const Workload& w) {
  RequestClassConfig cfg;
  cfg.name = w.name;
  cfg.qos.deadline_ns = w.deadline_ms * 1e6;
  cfg.qos.quality_floor = 0.05;
  cfg.qos.backlog_high = 64;
  cfg.qos.backlog_low = 16;
  // The admission bound caps the standing queue — and with it the
  // worst-case residence time — so under sustained overload the ladder
  // ends in shedding instead of an ever-deeper backlog.
  cfg.max_in_flight = 256;
  return cfg;
}

std::vector<double> tier_rates_hz(double mult, unsigned workers,
                                  const std::vector<Workload>& workloads) {
  std::vector<double> rates;
  // Even capacity split: `mult` x the pool's accurate throughput.
  for (const Workload& w : workloads) {
    rates.push_back(mult * static_cast<double>(workers) /
                    (static_cast<double>(workloads.size()) * w.accurate_cost_s));
  }
  return rates;
}

// --- In-process tiers ----------------------------------------------------

void run_tier(const char* tier, double mult, double seconds,
              const std::vector<Workload>& workloads, unsigned workers,
              std::uint64_t seed, std::vector<std::string>& cells) {
  ServerOptions so;
  so.runtime.workers = workers;
  so.epoch_ms = 10.0;
  Server srv(so);

  std::vector<ClassId> ids;
  for (const Workload& w : workloads) ids.push_back(srv.register_class(class_config(w)));
  const std::vector<double> rates_hz = tier_rates_hz(mult, workers, workloads);

  support::Xoshiro256 rng(seed);
  const auto exp_gap_ns = [&rng](double rate_hz) {
    return static_cast<std::int64_t>(-std::log(1.0 - rng.uniform()) * 1e9 /
                                     rate_hz);
  };

  std::vector<std::int64_t> next(workloads.size());
  std::vector<std::uint64_t> sig_counter(workloads.size(), 0);
  const std::int64_t start = support::now_ns();
  for (std::size_t i = 0; i < next.size(); ++i) next[i] = start + exp_gap_ns(rates_hz[i]);
  const std::int64_t end = start + static_cast<std::int64_t>(seconds * 1e9);

  while (true) {
    const std::size_t i = static_cast<std::size_t>(
        std::min_element(next.begin(), next.end()) - next.begin());
    if (next[i] >= end) break;
    std::this_thread::sleep_until(std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(next[i]))));
    const Workload& w = workloads[i];
    srv.submit(ids[i],
               {w.accurate, w.approximate,
                static_cast<double>(sig_counter[i]++ % 9 + 1) / 10.0});
    next[i] += exp_gap_ns(rates_hz[i]);
  }
  srv.close();  // drains everything admitted

  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ClassReport r = srv.class_report(ids[i]);
    emit(cells,
         jsonf("{\"bench\":\"serve_loadgen\",\"transport\":\"inproc\","
               "\"tier\":\"%s\",\"class\":\"%s\",\"tenant\":\"*\","
               "\"simd\":\"%s\","
               "\"workers\":%u,\"rate_hz\":%.1f,\"seconds\":%.2f,"
               "\"accurate_cost_ms\":%.3f,\"deadline_ms\":%.1f,"
               "\"submitted\":%" PRIu64 ",\"shed\":%" PRIu64
               ",\"degraded\":%" PRIu64 ",\"perforated\":%" PRIu64
               ",\"served\":%" PRIu64
               ",\"throughput_hz\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
               "\"mean_ms\":%.3f,\"ratio\":%.3f,\"achieved_ratio\":%.3f}",
               tier, r.name.c_str(),
               support::simd::to_string(support::simd::active()), workers,
               rates_hz[i], seconds, workloads[i].accurate_cost_s * 1e3,
               r.deadline_ms, r.submitted, r.shed, r.degraded, r.perforated,
               r.served(), static_cast<double>(r.served()) / seconds, r.p50_ms,
               r.p99_ms, r.mean_ms, r.ratio, r.achieved_ratio()));
  }
}

// --- Client children (the --client form) ---------------------------------

/// Wire-side per-class stats, as measured by one client process.
struct WireStats {
  std::uint64_t sent = 0, ok = 0, ok_approx = 0, ok_dropped = 0, shed = 0,
                errors = 0;
  std::vector<double> lat_ms;

  [[nodiscard]] std::uint64_t completed() const {
    return ok + ok_approx + ok_dropped + shed + errors;
  }

  void record(net::Status s, double ms) {
    switch (s) {
      case net::Status::Ok: ++ok; break;
      case net::Status::OkApprox: ++ok_approx; break;
      case net::Status::OkDropped: ++ok_dropped; break;
      case net::Status::Shed: ++shed; break;
      default: ++errors; break;
    }
    lat_ms.push_back(ms);
  }
};

/// The child->parent pipe protocol: one line per class, parsed by
/// parse_child_lines().  Keep in sync with that function.
void print_wire_stats(std::uint32_t cls, const WireStats& s) {
  std::printf("C %u %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
              " %" PRIu64 " %.4f %.4f\n",
              cls, s.sent, s.ok, s.ok_approx, s.ok_dropped, s.shed, s.errors,
              percentile(s.lat_ms, 0.50), percentile(s.lat_ms, 0.99));
}

bool is_timeout(const std::system_error& e) {
  return e.code() == std::errc::resource_unavailable_try_again ||
         e.code() == std::errc::operation_would_block;
}

struct Stream {
  std::uint32_t cls = 0;
  std::uint32_t kernel = 0;
  double rate_hz = 0.0;
};

/// Open-loop Poisson client: merged arrival streams over one connection, a
/// reader thread correlating responses by id.  The Client object is split
/// between the two threads by role (sender: enqueue/flush, reader:
/// read_response) — disjoint buffers, full-duplex socket.
int client_poisson(net::Client& c, const std::vector<Stream>& streams,
                   double seconds, std::uint32_t tenant, std::uint64_t seed) {
  std::mutex mu;
  std::vector<std::pair<std::int64_t, std::uint32_t>> meta;  ///< id -> (t, cls)
  std::map<std::uint32_t, WireStats> stats;
  bool done = false;

  std::thread reader([&] {
    net::Client::Response resp;
    std::uint64_t received = 0;
    for (;;) {
      {
        std::lock_guard lock(mu);
        if (done && received == meta.size()) break;
      }
      try {
        if (!c.read_response(resp)) break;  // server went away
      } catch (const std::system_error& e) {
        if (is_timeout(e)) continue;
        throw;
      }
      const std::int64_t t = support::now_ns();
      std::lock_guard lock(mu);
      const auto [t0, cls] = meta[resp.header.id];
      stats[cls].record(resp.header.status,
                        static_cast<double>(t - t0) * 1e-6);
      ++received;
    }
  });

  support::Xoshiro256 rng(seed);
  const auto exp_gap_ns = [&rng](double rate_hz) {
    return static_cast<std::int64_t>(-std::log(1.0 - rng.uniform()) * 1e9 /
                                     rate_hz);
  };
  std::uint8_t payload[32] = {};
  std::vector<std::int64_t> next(streams.size());
  const std::int64_t start = support::now_ns();
  for (std::size_t i = 0; i < next.size(); ++i) {
    next[i] = start + exp_gap_ns(streams[i].rate_hz);
  }
  const std::int64_t end = start + static_cast<std::int64_t>(seconds * 1e9);
  while (true) {
    const std::size_t i = static_cast<std::size_t>(
        std::min_element(next.begin(), next.end()) - next.begin());
    if (next[i] >= end) break;
    std::this_thread::sleep_until(std::chrono::steady_clock::time_point(
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::nanoseconds(next[i]))));
    net::RequestHeader h;
    h.tenant = tenant;
    h.cls = streams[i].cls;
    h.kernel = streams[i].kernel;
    {
      std::lock_guard lock(mu);
      h.id = static_cast<std::uint32_t>(meta.size());
      meta.emplace_back(support::now_ns(), streams[i].cls);
      ++stats[streams[i].cls].sent;
    }
    c.enqueue(h, payload, sizeof payload);
    c.flush();
    next[i] += exp_gap_ns(streams[i].rate_hz);
  }
  {
    std::lock_guard lock(mu);
    done = true;
  }
  reader.join();

  for (const Stream& s : streams) print_wire_stats(s.cls, stats[s.cls]);
  return 0;
}

/// Closed-loop pipelined client: keeps `window` requests in flight on one
/// connection, batching sends so the syscall cost amortizes — the peak-
/// throughput driver.
int client_pipeline(net::Client& c, std::uint32_t cls, std::uint32_t kernel,
                    double seconds, std::uint32_t tenant, unsigned window,
                    unsigned payload_bytes) {
  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(0xa5u + i);
  }
  std::vector<std::int64_t> send_ns;
  WireStats stats;
  net::RequestHeader h;
  h.tenant = tenant;
  h.cls = cls;
  h.kernel = kernel;

  const auto send_one = [&] {
    h.id = static_cast<std::uint32_t>(send_ns.size());
    send_ns.push_back(support::now_ns());
    c.enqueue(h, payload.data(), payload.size());
    ++stats.sent;
  };
  const auto read_one = [&]() -> bool {
    net::Client::Response resp;
    for (;;) {
      try {
        if (!c.read_response(resp)) return false;
        break;
      } catch (const std::system_error& e) {
        if (!is_timeout(e)) throw;
      }
    }
    stats.record(resp.header.status,
                 static_cast<double>(support::now_ns() -
                                     send_ns[resp.header.id]) *
                     1e-6);
    return true;
  };

  for (unsigned i = 0; i < window; ++i) send_one();
  c.flush();
  const unsigned batch = std::min(32u, window);
  const std::int64_t end =
      support::now_ns() + static_cast<std::int64_t>(seconds * 1e9);
  while (support::now_ns() < end) {
    for (unsigned i = 0; i < batch; ++i) {
      if (!read_one()) return 1;
    }
    for (unsigned i = 0; i < batch; ++i) send_one();
    c.flush();
  }
  // Drain the window (bounded: the server answers every frame).
  const std::int64_t drain_end = support::now_ns() + 5'000'000'000;
  while (stats.completed() < stats.sent && support::now_ns() < drain_end) {
    if (!read_one()) break;
  }
  print_wire_stats(cls, stats);
  return 0;
}

int client_main(int argc, char** argv) {
  std::string mode;
  std::uint16_t port = 0;
  std::uint32_t tenant = 0, cls = 0, kernel = 0;
  double seconds = 1.0;
  std::uint64_t seed = 1;
  unsigned window = 64, payload_bytes = 64;
  std::vector<Stream> streams;
  for (int i = 1; i < argc; ++i) {
    const auto next_arg = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--client") == 0) mode = next_arg();
    else if (std::strcmp(argv[i], "--port") == 0) port = static_cast<std::uint16_t>(std::atoi(next_arg()));
    else if (std::strcmp(argv[i], "--tenant") == 0) tenant = static_cast<std::uint32_t>(std::atoi(next_arg()));
    else if (std::strcmp(argv[i], "--cls") == 0) cls = static_cast<std::uint32_t>(std::atoi(next_arg()));
    else if (std::strcmp(argv[i], "--kernel") == 0) kernel = static_cast<std::uint32_t>(std::atoi(next_arg()));
    else if (std::strcmp(argv[i], "--seconds") == 0) seconds = std::atof(next_arg());
    else if (std::strcmp(argv[i], "--seed") == 0) seed = static_cast<std::uint64_t>(std::atoll(next_arg()));
    else if (std::strcmp(argv[i], "--window") == 0) window = static_cast<unsigned>(std::atoi(next_arg()));
    else if (std::strcmp(argv[i], "--payload") == 0) payload_bytes = static_cast<unsigned>(std::atoi(next_arg()));
    else if (std::strcmp(argv[i], "--stream") == 0) {
      Stream s;
      double rate = 0.0;
      if (std::sscanf(next_arg(), "%u:%u:%lf", &s.cls, &s.kernel, &rate) == 3) {
        s.rate_hz = std::max(rate, 0.1);
        streams.push_back(s);
      }
    }
  }
  try {
    net::Client c;
    c.connect("127.0.0.1", port);
    c.set_receive_timeout_ms(50);
    if (mode == "poisson") return client_poisson(c, streams, seconds, tenant, seed);
    if (mode == "pipeline") {
      return client_pipeline(c, cls, kernel, seconds, tenant, window, payload_bytes);
    }
    std::fprintf(stderr, "serve_loadgen --client: unknown mode '%s'\n", mode.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_loadgen --client: %s\n", e.what());
    return 1;
  }
}

// --- Parent-side process plumbing ----------------------------------------

struct ChildProc {
  pid_t pid = -1;
  int fd = -1;  ///< read end of the child's stdout pipe
};

ChildProc spawn_client(const std::vector<std::string>& args) {
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    throw std::system_error(errno, std::generic_category(), "pipe2");
  }
  posix_spawn_file_actions_t fa;
  posix_spawn_file_actions_init(&fa);
  posix_spawn_file_actions_adddup2(&fa, fds[1], 1);
  std::vector<char*> argv;
  std::string exe = "/proc/self/exe";
  argv.push_back(exe.data());
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  ChildProc child;
  const int rc = ::posix_spawn(&child.pid, exe.c_str(), &fa, nullptr,
                               argv.data(), environ);
  posix_spawn_file_actions_destroy(&fa);
  ::close(fds[1]);
  if (rc != 0) {
    ::close(fds[0]);
    throw std::system_error(rc, std::generic_category(), "posix_spawn");
  }
  child.fd = fds[0];
  return child;
}

/// Reads the child's whole stdout (EOF = child exit), reaps it, and parses
/// its "C ..." report lines into per-class WireStats (latency vectors stay
/// empty; the child pre-reduced them to the p50/p99 returned alongside).
struct ChildReport {
  std::map<std::uint32_t, WireStats> stats;
  std::map<std::uint32_t, std::pair<double, double>> pcts;  ///< cls -> p50,p99
  int exit_status = -1;
};

ChildReport finish_client(ChildProc child) {
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(child.fd, buf, sizeof buf)) > 0) out.append(buf, static_cast<std::size_t>(n));
  ::close(child.fd);
  int status = 0;
  ::waitpid(child.pid, &status, 0);

  ChildReport report;
  report.exit_status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t eol = out.find('\n', pos);
    if (eol == std::string::npos) eol = out.size();
    const std::string line = out.substr(pos, eol - pos);
    pos = eol + 1;
    std::uint32_t cls = 0;
    WireStats s;
    double p50 = 0.0, p99 = 0.0;
    if (std::sscanf(line.c_str(),
                    "C %u %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
                    " %" SCNu64 " %" SCNu64 " %lf %lf",
                    &cls, &s.sent, &s.ok, &s.ok_approx, &s.ok_dropped, &s.shed,
                    &s.errors, &p50, &p99) == 9) {
      report.stats[cls] = s;
      report.pcts[cls] = {p50, p99};
    }
  }
  if (report.exit_status != 0) {
    std::fprintf(stderr, "serve_loadgen: client pid %d exited %d\n",
                 static_cast<int>(child.pid), report.exit_status);
  }
  return report;
}

// --- Wire tiers ----------------------------------------------------------

constexpr unsigned kWireClients = 2;

void tag_hot_thread(const char* /*role*/, unsigned /*index*/) {
  alloc_probe::hot_thread = true;
}

/// One Poisson tier over loopback TCP: kWireClients child processes, one
/// tenant each, every child driving all three classes at rate/kWireClients.
void run_wire_tier(const char* tier, double mult, double seconds,
                   const std::vector<Workload>& workloads, unsigned workers,
                   std::uint64_t seed, std::vector<std::string>& cells) {
  ServerOptions so;
  so.runtime.workers = workers;
  so.epoch_ms = 10.0;
  so.thread_start_hook = [](const char* role, unsigned) {
    if (std::strcmp(role, "dispatcher") == 0) alloc_probe::hot_thread = true;
  };
  Server srv(so);

  std::vector<ClassId> ids;
  for (const Workload& w : workloads) ids.push_back(srv.register_class(class_config(w)));
  std::vector<TenantId> tenants;
  std::vector<std::string> tenant_names;
  for (unsigned t = 0; t < kWireClients; ++t) {
    tenant_names.push_back("c" + std::to_string(t));
    tenants.push_back(srv.register_tenant({.name = tenant_names.back()}));
  }

  net::NetServerOptions no;
  no.port = 0;
  no.thread_start_hook = tag_hot_thread;
  net::NetServer net(srv, no);
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    net.register_kernel(
        static_cast<std::uint32_t>(i),
        {.fn = [w](const std::uint8_t*, std::size_t, bool approximate,
                   std::vector<std::uint8_t>&) {
           alloc_probe::hot_thread = true;
           if (approximate) {
             w.approximate();
           } else {
             w.accurate();
           }
         },
         .significance = 0.5});
  }
  net.start();

  const std::vector<double> rates_hz = tier_rates_hz(mult, workers, workloads);
  std::vector<ChildProc> children;
  for (unsigned t = 0; t < kWireClients; ++t) {
    std::vector<std::string> args = {
        "--client", "poisson",
        "--port", std::to_string(net.port()),
        "--tenant", std::to_string(tenants[t]),
        "--seconds", std::to_string(seconds),
        "--seed", std::to_string(seed + t)};
    for (std::size_t i = 0; i < workloads.size(); ++i) {
      args.push_back("--stream");
      args.push_back(jsonf("%zu:%zu:%.3f", i, i,
                           rates_hz[i] / static_cast<double>(kWireClients)));
    }
    children.push_back(spawn_client(args));
  }
  std::vector<ChildReport> reports;
  for (ChildProc& c : children) reports.push_back(finish_client(c));

  srv.close();  // drain admitted work FIRST,
  net.stop();   // THEN tear the frontend down

  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (unsigned t = 0; t < kWireClients; ++t) {
      const TenantClassCell& cell = srv.tenant_report(tenants[t]).cells[ids[i]];
      const WireStats& w = reports[t].stats[static_cast<std::uint32_t>(i)];
      const auto [p50, p99] = reports[t].pcts[static_cast<std::uint32_t>(i)];
      emit(cells,
           jsonf("{\"bench\":\"serve_loadgen\",\"transport\":\"tcp\","
                 "\"tier\":\"%s\",\"class\":\"%s\",\"tenant\":\"%s\","
                 "\"workers\":%u,\"seconds\":%.2f,"
                 "\"sent\":%" PRIu64 ",\"submitted\":%" PRIu64
                 ",\"shed\":%" PRIu64 ",\"degraded\":%" PRIu64
                 ",\"perforated\":%" PRIu64 ",\"served\":%" PRIu64
                 ",\"wire_ok\":%" PRIu64 ",\"wire_ok_approx\":%" PRIu64
                 ",\"wire_shed\":%" PRIu64 ",\"wire_errors\":%" PRIu64
                 ",\"p50_ms\":%.3f,\"p99_ms\":%.3f}",
                 tier, workloads[i].name.c_str(), tenant_names[t].c_str(),
                 workers, seconds, w.sent, cell.submitted, cell.shed,
                 cell.degraded, cell.perforated, cell.served(), w.ok,
                 w.ok_approx, w.shed + w.ok_dropped, w.errors, p50, p99));
    }
    // The cross-tenant aggregate mirrors the in-process cell shape so the
    // two transports diff cleanly (ab_compare.py --strip-tag transport).
    const ClassReport r = srv.class_report(ids[i]);
    emit(cells,
         jsonf("{\"bench\":\"serve_loadgen\",\"transport\":\"tcp\","
               "\"tier\":\"%s\",\"class\":\"%s\",\"tenant\":\"*\","
               "\"simd\":\"%s\","
               "\"workers\":%u,\"rate_hz\":%.1f,\"seconds\":%.2f,"
               "\"accurate_cost_ms\":%.3f,\"deadline_ms\":%.1f,"
               "\"submitted\":%" PRIu64 ",\"shed\":%" PRIu64
               ",\"degraded\":%" PRIu64 ",\"perforated\":%" PRIu64
               ",\"served\":%" PRIu64
               ",\"throughput_hz\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
               "\"mean_ms\":%.3f,\"ratio\":%.3f,\"achieved_ratio\":%.3f}",
               tier, r.name.c_str(),
               support::simd::to_string(support::simd::active()), workers,
               rates_hz[i], seconds, workloads[i].accurate_cost_s * 1e3,
               r.deadline_ms, r.submitted, r.shed, r.degraded, r.perforated,
               r.served(), static_cast<double>(r.served()) / seconds, r.p50_ms,
               r.p99_ms, r.mean_ms, r.ratio, r.achieved_ratio()));
  }
}

/// FNV-1a over the payload — cheap, deterministic, allocation-free once the
/// response buffer's capacity is warm: the peak-throughput kernel.
void fnv_kernel(const std::uint8_t* payload, std::size_t bytes,
                bool /*approximate*/, std::vector<std::uint8_t>& out) {
  alloc_probe::hot_thread = true;
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h = (h ^ payload[i]) * 1099511628211ull;
  }
  const std::size_t base = out.size();
  out.resize(base + sizeof h);
  std::memcpy(out.data() + base, &h, sizeof h);
}

/// Peak tier: pipelined clients against the FNV kernel; measures sustained
/// wire req/s over a post-warmup window and heap allocations per request on
/// the hot threads during that window (the zero-alloc steady-state gate).
void run_peak_tier(double seconds, unsigned workers,
                   std::vector<std::string>& cells) {
  constexpr unsigned kWindow = 64;
  constexpr unsigned kPayloadBytes = 64;

  ServerOptions so;
  so.runtime.workers = workers;
  so.epoch_ms = 0.0;  // raw throughput: no controller in the loop
  so.thread_start_hook = [](const char* role, unsigned) {
    if (std::strcmp(role, "dispatcher") == 0) alloc_probe::hot_thread = true;
  };
  Server srv(so);

  RequestClassConfig cfg;
  cfg.name = "peak";
  cfg.criticality = Criticality::Critical;
  cfg.qos.deadline_ns = 100e6;
  cfg.max_in_flight = 4096;
  const ClassId cls = srv.register_class(cfg);
  std::vector<TenantId> tenants;
  std::vector<std::string> tenant_names;
  for (unsigned t = 0; t < kWireClients; ++t) {
    tenant_names.push_back("c" + std::to_string(t));
    tenants.push_back(srv.register_tenant({.name = tenant_names.back()}));
  }

  net::NetServerOptions no;
  no.port = 0;
  no.thread_start_hook = tag_hot_thread;
  net::NetServer net(srv, no);
  net.register_kernel(0, {.fn = fnv_kernel, .significance = 1.0});
  net.start();

  // Children outlive warmup + the measurement window.
  const double child_seconds = 0.4 + seconds + 0.4;
  std::vector<ChildProc> children;
  for (unsigned t = 0; t < kWireClients; ++t) {
    children.push_back(spawn_client(
        {"--client", "pipeline",
         "--port", std::to_string(net.port()),
         "--tenant", std::to_string(tenants[t]),
         "--cls", std::to_string(cls),
         "--kernel", "0",
         "--seconds", std::to_string(child_seconds),
         "--window", std::to_string(kWindow),
         "--payload", std::to_string(kPayloadBytes)}));
  }

  // Warmup lets pools, framing buffers and response capacities reach their
  // high-water marks; the armed window then counts true steady state.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const std::uint64_t r0 = net.counters().responses;
  alloc_probe::hot_allocs.store(0, std::memory_order_relaxed);
  alloc_probe::armed.store(true, std::memory_order_relaxed);
  const std::int64_t w0 = support::now_ns();
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(static_cast<std::int64_t>(seconds * 1e9)));
  alloc_probe::armed.store(false, std::memory_order_relaxed);
  const std::int64_t w1 = support::now_ns();
  const std::uint64_t r1 = net.counters().responses;

  std::vector<ChildReport> reports;
  for (ChildProc& c : children) reports.push_back(finish_client(c));
  srv.close();
  net.stop();

  const std::uint64_t window_reqs = r1 - r0;
  const double window_s = static_cast<double>(w1 - w0) * 1e-9;
  const double req_per_s =
      window_reqs > 0 ? static_cast<double>(window_reqs) / window_s : 0.0;
  const double allocs_per_req =
      window_reqs > 0
          ? static_cast<double>(
                alloc_probe::hot_allocs.load(std::memory_order_relaxed)) /
                static_cast<double>(window_reqs)
          : 0.0;

  for (unsigned t = 0; t < kWireClients; ++t) {
    const TenantClassCell& cell = srv.tenant_report(tenants[t]).cells[cls];
    const WireStats& w = reports[t].stats[cls];
    const auto [p50, p99] = reports[t].pcts[cls];
    emit(cells,
         jsonf("{\"bench\":\"serve_loadgen\",\"transport\":\"tcp\","
               "\"tier\":\"peak\",\"class\":\"peak\",\"tenant\":\"%s\","
               "\"workers\":%u,\"seconds\":%.2f,"
               "\"sent\":%" PRIu64 ",\"submitted\":%" PRIu64
               ",\"shed\":%" PRIu64 ",\"served\":%" PRIu64
               ",\"wire_ok\":%" PRIu64 ",\"wire_errors\":%" PRIu64
               ",\"p50_ms\":%.3f,\"p99_ms\":%.3f}",
               tenant_names[t].c_str(), workers, child_seconds, w.sent,
               cell.submitted, cell.shed, cell.served(), w.ok, w.errors, p50,
               p99));
  }
  const ClassReport r = srv.class_report(cls);
  emit(cells,
       jsonf("{\"bench\":\"serve_loadgen\",\"transport\":\"tcp\","
             "\"tier\":\"peak\",\"class\":\"peak\",\"tenant\":\"*\","
             "\"workers\":%u,\"seconds\":%.2f,\"clients\":%u,\"window\":%u,"
             "\"payload_bytes\":%u,"
             "\"req_per_s\":%.1f,\"hot_allocs_per_req\":%.4f,"
             "\"submitted\":%" PRIu64 ",\"shed\":%" PRIu64
             ",\"served\":%" PRIu64 ",\"p50_ms\":%.3f,\"p99_ms\":%.3f}",
             workers, window_s, kWireClients, kWindow, kPayloadBytes,
             req_per_s, allocs_per_req, r.submitted, r.shed, r.served(),
             r.p50_ms, r.p99_ms));
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--client") == 0) return client_main(argc, argv);
  }

  double seconds = 2.0;
  bool tcp = false;
  unsigned workers = RuntimeConfig::default_workers();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) seconds = 0.6;
    if (std::strcmp(argv[i], "--tcp") == 0) tcp = true;
    if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    }
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<unsigned>(std::atoi(argv[++i]));
    }
  }

  std::vector<Workload> workloads = make_workloads();
  for (Workload& w : workloads) w.accurate_cost_s = measure_cost_s(w.accurate);

  std::vector<std::string> cells;
  if (tcp) {
    run_wire_tier("low", 0.25, seconds, workloads, workers, /*seed=*/101, cells);
    run_wire_tier("base", 1.0, seconds, workloads, workers, /*seed=*/202, cells);
    run_wire_tier("high", 3.0, seconds, workloads, workers, /*seed=*/303, cells);
    run_peak_tier(seconds, workers, cells);
  } else {
    run_tier("low", 0.25, seconds, workloads, workers, /*seed=*/101, cells);
    run_tier("base", 1.0, seconds, workloads, workers, /*seed=*/202, cells);
    run_tier("high", 3.0, seconds, workloads, workers, /*seed=*/303, cells);
  }

  // The summary record ab_compare.py consumes: LAST stdout line.
  std::string summary = jsonf(
      "{\"bench\":\"serve_loadgen\",\"transport\":\"%s\",\"workers\":%u,"
      "\"seconds\":%.2f,\"cells\":[",
      tcp ? "tcp" : "inproc", workers, seconds);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) summary += ',';
    summary += cells[i];
  }
  summary += "]}";
  std::printf("%s\n", summary.c_str());
  return 0;
}
