// Ablation: work stealing on/off (§3: "when a worker's queue runs empty,
// the worker may steal tasks from other workers' queues").
//
// With heterogeneous task weights (accurate vs approximate bodies coexist
// in one run) round-robin distribution alone load-imbalances the workers;
// stealing reclaims the idle time.  Also shows the LQH side effect the
// paper leans on for Kmeans: stealing changes *which* worker executes a
// task, hence the local histories.
#include <cstdio>

#include "apps/kmeans.hpp"
#include "apps/sobel.hpp"
#include "support/table.hpp"

int main() {
  using namespace sigrt::apps;

  sigrt::support::Table t({"app", "policy", "steal", "time_s", "energy_j",
                           "steals", "tasks/s", "iterations/quality"});

  for (const bool steal : {true, false}) {
    sobel::Options so;
    so.width = 512;
    so.height = 512;
    so.repeats = 2;
    so.common.variant = Variant::GTB;
    so.common.degree = Degree::Medium;
    so.common.steal = steal;
    const auto sr = sobel::run(so);
    t.row().cell("sobel").cell("GTB").cell(steal ? "on" : "off")
        .cell(sr.time_s, 4).cell(sr.energy_j, 2)
        .cell(static_cast<std::size_t>(sr.steals))
        .cell(sr.tasks_per_sec, 0).cell(sr.quality_aux, 1);

    kmeans::Options km;
    km.points = 8192;
    km.common.variant = Variant::LQH;
    km.common.degree = Degree::Medium;
    km.common.steal = steal;
    kmeans::Solution sol;
    const auto kr = kmeans::run(km, &sol);
    t.row().cell("kmeans").cell("LQH").cell(steal ? "on" : "off")
        .cell(kr.time_s, 4).cell(kr.energy_j, 2)
        .cell(static_cast<std::size_t>(kr.steals))
        .cell(kr.tasks_per_sec, 0)
        .cell(static_cast<std::size_t>(sol.iterations));
  }

  t.print("[ablation:stealing] work stealing on/off");
  std::printf("expected shape: stealing never hurts completion and typically\n"
              "reduces time under mixed task weights; for LQH+Kmeans the\n"
              "steal-induced history shuffling is part of the slow-convergence\n"
              "effect of §4.2.\n");
  return 0;
}
