// Ablation: GTB window size (§3.3).
//
// A larger buffer lets GTB take better-informed decisions (fewer deviations
// from the ideal classification) but postpones task issue.  This sweep
// quantifies both effects on Sobel and DCT: classification quality
// (ratio deviation + output quality) and execution time.
#include <cstdio>

#include "apps/dct.hpp"
#include "apps/sobel.hpp"
#include "support/table.hpp"

int main() {
  using namespace sigrt::apps;

  const std::size_t buffers[] = {1, 4, 16, 64, 256, SIZE_MAX};

  sigrt::support::Table t({"app", "buffer", "time_s", "ratio(got)",
                           "ratio_diff", "quality", "PSNR_dB"});

  for (const std::size_t buf : buffers) {
    const std::string label = buf == SIZE_MAX ? "max" : std::to_string(buf);

    sobel::Options so;
    so.width = 512;
    so.height = 512;
    so.common.variant = buf == SIZE_MAX ? Variant::GTBMaxBuffer : Variant::GTB;
    so.common.gtb_buffer = buf;
    so.common.degree = Degree::Medium;
    const auto sr = sobel::run(so);
    t.row().cell("sobel").cell(label).cell(sr.time_s, 4)
        .cell(sr.provided_ratio, 3).cell(sr.ratio_diff, 4)
        .cell(sr.quality, 5).cell(sr.quality_aux, 1);

    dct::Options dc;
    dc.width = 256;
    dc.height = 256;
    dc.common.variant = so.common.variant;
    dc.common.gtb_buffer = buf;
    dc.common.degree = Degree::Medium;
    const auto dr = dct::run(dc);
    t.row().cell("dct").cell(label).cell(dr.time_s, 4)
        .cell(dr.provided_ratio, 3).cell(dr.ratio_diff, 4)
        .cell(dr.quality, 5).cell(dr.quality_aux, 1);
  }

  t.print("[ablation:gtb-buffer] window-size sweep at the Medium degree");
  std::printf("expected shape: tiny windows overshoot the ratio (window=1\n"
              "makes everything accurate: ceil semantics of Listing 4) and\n"
              "lose the significance ordering across windows; large windows\n"
              "converge to the oracle classification.\n");
  return 0;
}
