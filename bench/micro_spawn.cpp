// Zero-allocation spawn gate: counts heap allocations per task through an
// instrumented global operator new and times the spawn hot path.
//
// The pooled intrusive task lifecycle promises that, once the slab pool and
// the scheduler's buffers are warm, spawning and completing a task with
// bodies whose captures fit InlineFn's 64-byte SBO performs ZERO heap
// allocations: the Task comes from a recycled slab slot, the bodies live
// inline in that slot, and every scratch buffer on the release/complete
// paths is thread-local and capacity-stable.  This driver measures exactly
// that, steady-state, after warm-up rounds identical to the measured round:
//
//   allocs_per_task = (operator-new calls during round) / tasks
//   ns_per_spawn    = master-side cost of Runtime::spawn alone
//
// Output is one JSON line in the micro_runtime record format so CI uploads
// it next to the throughput record (BENCH_*.json); `--benchmark_filter=NONE`
// (or any argument) is accepted and ignored for CLI compatibility with the
// google-benchmark harnesses.
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "core/sigrt.hpp"
#include "support/timer.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

// Replaceable global allocation functions: every heap allocation in the
// process (runtime, library internals, everything) goes through here.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

namespace {

struct SpawnRecord {
  std::uint64_t tasks = 0;
  std::uint64_t allocs = 0;
  double allocs_per_task = 0.0;
  double ns_per_spawn = 0.0;
  double wall_s = 0.0;
  double tasks_per_sec = 0.0;
};

SpawnRecord measure(unsigned workers, std::uint64_t tasks, int max_warmup) {
  sigrt::RuntimeConfig c;
  c.workers = workers;
  c.policy = sigrt::PolicyKind::LQH;
  c.record_task_log = false;
  sigrt::Runtime rt(c);
  const auto g = rt.create_group("spawn", 0.5);

  // Bodies capture 16 bytes — comfortably inside the 64-byte SBO contract
  // this gate certifies.
  auto spawn_round = [&rt, g](std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t tag = i;
      rt.spawn(sigrt::task([tag] { (void)tag; })
                   .approx([tag] { (void)tag; })
                   .significance(static_cast<double>(i % 9 + 1) / 10.0)
                   .group(g));
    }
  };

  // Warm-up: populate the slab pool to the workload's high-water mark,
  // size the deques/inboxes, and build the LQH histories.  The in-flight
  // peak depends on spawn/execute interleaving, so warm at 1.5x the
  // measured pressure and repeat until one full round allocates nothing
  // (true steady state), bounded by max_warmup rounds.
  for (int r = 0; r < max_warmup; ++r) {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    spawn_round(tasks + tasks / 2);
    rt.wait_group(g);
    if (r > 0 && g_allocs.load(std::memory_order_relaxed) == before) break;
  }

  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::int64_t t0 = sigrt::support::now_ns();
  spawn_round(tasks);
  const std::int64_t t_spawned = sigrt::support::now_ns();
  rt.wait_group(g);
  const std::int64_t t1 = sigrt::support::now_ns();
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);

  SpawnRecord r;
  r.tasks = tasks;
  r.allocs = a1 - a0;
  r.allocs_per_task =
      static_cast<double>(r.allocs) / static_cast<double>(tasks);
  r.ns_per_spawn =
      static_cast<double>(t_spawned - t0) / static_cast<double>(tasks);
  r.wall_s = static_cast<double>(t1 - t0) * 1e-9;
  if (r.wall_s > 0) {
    r.tasks_per_sec = static_cast<double>(tasks) / r.wall_s;
  }
  return r;
}

}  // namespace

int main(int, char**) {
  constexpr unsigned kWorkers = 8;
  constexpr std::uint64_t kTasks = 200000;
  const SpawnRecord r = measure(kWorkers, kTasks, /*max_warmup=*/8);
  std::printf(
      "{\"bench\":\"micro_spawn\",\"workers\":%u,\"tasks\":%" PRIu64
      ",\"allocs\":%" PRIu64
      ",\"allocs_per_task\":%.6f,\"ns_per_spawn\":%.1f,\"wall_s\":%.6f,"
      "\"tasks_per_sec\":%.1f}\n",
      kWorkers, r.tasks, r.allocs, r.allocs_per_task, r.ns_per_spawn, r.wall_s,
      r.tasks_per_sec);
  return 0;
}
