// Shared driver for the six Figure 2 harnesses.
//
// Figure 2 of the paper is a 6x3 grid: per benchmark, execution time,
// energy and quality for the Aggressive/Medium/Mild degrees under the GTB,
// GTB(MaxBuffer) and LQH policies, with the fully accurate execution and
// the loop-perforation comparator drawn as reference lines.  This driver
// regenerates one benchmark's row: an `accurate` reference row plus one row
// per (degree, variant).
#pragma once

#include <cstdio>
#include <functional>
#include <optional>
#include <string>

#include "apps/common.hpp"
#include "support/table.hpp"

namespace sigrt::bench {

/// Runs one variant at one degree.  `gtb` carries the bounded-GTB result of
/// the same degree when available, letting apps match the perforated
/// comparator's task budget to "the same number of tasks as those executed
/// accurately by our approach" (§4.1).
using VariantRunner = std::function<apps::RunResult(
    apps::Variant, apps::Degree, const apps::RunResult* gtb)>;

inline void run_fig2(const std::string& app, const std::string& note,
                     const VariantRunner& run, bool perforation_supported = true) {
  using apps::Degree;
  using apps::Variant;

  support::Table table({"app", "degree", "variant", "time_s", "energy_j",
                        "quality", "metric", "ratio(req)", "ratio(got)"});

  auto add_row = [&table](const apps::RunResult& r) {
    table.row()
        .cell(r.app)
        .cell(r.degree)
        .cell(r.variant)
        .cell(r.time_s, 4)
        .cell(r.energy_j, 2)
        .cell(r.quality, 5)
        .cell(r.quality_metric)
        .cell(r.requested_ratio, 2)
        .cell(r.provided_ratio, 2);
  };

  // Reference line: fully accurate execution on the significance-agnostic
  // runtime (degree is irrelevant; shown as "-").
  apps::RunResult acc = run(Variant::Accurate, Degree::Mild, nullptr);
  acc.degree = "-";
  add_row(acc);

  for (const Degree degree : apps::kAllDegrees) {
    const apps::RunResult gtb = run(Variant::GTB, degree, nullptr);
    add_row(gtb);
    add_row(run(Variant::GTBMaxBuffer, degree, &gtb));
    add_row(run(Variant::LQH, degree, &gtb));
    if (perforation_supported) {
      add_row(run(Variant::Perforated, degree, &gtb));
    }
  }

  table.print("[fig2:" + app + "] time / energy / quality per degree and policy");
  if (!note.empty()) std::printf("%s\n", note.c_str());
  if (!perforation_supported) {
    std::printf("(perforation not applicable to %s, as in the paper)\n",
                app.c_str());
  }
  std::printf("\n");
}

}  // namespace sigrt::bench
