// Figure 2, Kmeans row: time / energy / relative error across degrees and
// policies.
#include "apps/kmeans.hpp"
#include "fig2_common.hpp"

int main() {
  using namespace sigrt::apps;
  sigrt::bench::run_fig2(
      "kmeans",
      "expected shape: sub-percent errors at every degree; GTB beats the\n"
      "perforated version on time/energy; LQH converges in more iterations\n"
      "(its accurate chunk set shifts between iterations, §4.2).",
      [](Variant v, Degree d, const RunResult*) {
        kmeans::Options o;
        o.points = 8192;
        o.common.variant = v;
        o.common.degree = d;
        return kmeans::run(o);
      });
  return 0;
}
