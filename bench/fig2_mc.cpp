// Figure 2, MC row: time / energy / relative error across degrees and
// policies.
#include "apps/mc.hpp"
#include "fig2_common.hpp"

int main() {
  using namespace sigrt::apps;
  sigrt::bench::run_fig2(
      "mc",
      "expected shape: randomized kernel tolerates approximation; sigrt\n"
      "performs nearly identically to blind perforation (paper §4.2); LQH\n"
      "slightly undershoots the requested ratio.",
      [](Variant v, Degree d, const RunResult*) {
        mc::Options o;
        o.points = 128;
        o.walks = 1500;
        o.common.variant = v;
        o.common.degree = d;
        return mc::run(o);
      });
  return 0;
}
