// Table 1: the benchmark inventory — approximation mode (Approximate /
// Drop), the Mild/Medium/Aggressive degree parameters and the quality
// metric per benchmark.  Regenerated from the apps' own degree mappings so
// the table cannot drift from the implementation.
#include <cstdio>

#include "apps/dct.hpp"
#include "apps/fluidanimate.hpp"
#include "apps/jacobi.hpp"
#include "apps/kmeans.hpp"
#include "apps/mc.hpp"
#include "apps/sobel.hpp"
#include "support/table.hpp"

int main() {
  using namespace sigrt::apps;
  sigrt::support::Table t(
      {"Benchmark", "Approx-or-Drop", "Mild", "Medium", "Aggr", "Quality"});

  auto pct = [](double ratio) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
    return std::string(buf);
  };
  auto tol = [](double v) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.0e", v);
    return std::string(buf);
  };

  t.row().cell("Sobel").cell("A")
      .cell(pct(sobel::ratio_for(Degree::Mild)))
      .cell(pct(sobel::ratio_for(Degree::Medium)))
      .cell(pct(sobel::ratio_for(Degree::Aggressive)))
      .cell("PSNR");
  t.row().cell("DCT").cell("D")
      .cell(pct(dct::ratio_for(Degree::Mild)))
      .cell(pct(dct::ratio_for(Degree::Medium)))
      .cell(pct(dct::ratio_for(Degree::Aggressive)))
      .cell("PSNR");
  t.row().cell("MC").cell("D, A")
      .cell(pct(mc::ratio_for(Degree::Mild)))
      .cell(pct(mc::ratio_for(Degree::Medium)))
      .cell(pct(mc::ratio_for(Degree::Aggressive)))
      .cell("Rel. Err.");
  t.row().cell("Kmeans").cell("A")
      .cell(pct(kmeans::ratio_for(Degree::Mild)))
      .cell(pct(kmeans::ratio_for(Degree::Medium)))
      .cell(pct(kmeans::ratio_for(Degree::Aggressive)))
      .cell("Rel. Err.");
  t.row().cell("Jacobi").cell("D, A")
      .cell(tol(jacobi::tolerance_for(Degree::Mild)))
      .cell(tol(jacobi::tolerance_for(Degree::Medium)))
      .cell(tol(jacobi::tolerance_for(Degree::Aggressive)))
      .cell("Rel. Err.");
  t.row().cell("Fluidanimate").cell("A")
      .cell(pct(fluid::accurate_step_fraction(Degree::Mild)))
      .cell(pct(fluid::accurate_step_fraction(Degree::Medium)))
      .cell(pct(fluid::accurate_step_fraction(Degree::Aggressive)))
      .cell("Rel. Err.");

  t.print("[table1] benchmarks and approximation degrees "
          "(percent = accurately executed tasks; Jacobi = error tolerance, "
          "native 1e-5)");
  return 0;
}
