// Ablation: LQH discrete significance-level count (§3.4).
//
// The paper fixes 101 levels (0.00..1.00 step 0.01).  Fewer levels make the
// per-task bookkeeping cheaper but quantize distinct significances into one
// bucket, costing classification fidelity; more levels cost a longer prefix
// scan per decision.  Sobel's 9 distinct significance values make the
// quantization effect visible.
#include <cstdio>

#include "apps/sobel.hpp"
#include "support/table.hpp"

int main() {
  using namespace sigrt::apps;

  const unsigned levels[] = {2, 5, 11, 101, 401, 1001};

  sigrt::support::Table t({"levels", "time_s", "ratio(got)", "ratio_diff",
                           "inversions%", "PSNR_dB"});

  for (const unsigned lv : levels) {
    sobel::Options o;
    o.width = 512;
    o.height = 512;
    o.common.variant = Variant::LQH;
    o.common.degree = Degree::Medium;
    o.common.lqh_levels = lv;
    const auto r = sobel::run(o);
    t.row()
        .cell(static_cast<std::size_t>(lv))
        .cell(r.time_s, 4)
        .cell(r.provided_ratio, 3)
        .cell(r.ratio_diff, 4)
        .cell(r.inversion_fraction * 100.0, 2)
        .cell(r.quality_aux, 1);
  }

  t.print("[ablation:lqh-levels] LQH level-count sweep (Sobel, Medium)");
  std::printf("expected shape: >= 11 levels resolve Sobel's 9 significance\n"
              "values; 2-5 levels alias distinct significances (inversions\n"
              "rise); beyond 101 nothing changes but decision cost.\n");
  return 0;
}
