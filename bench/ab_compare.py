#!/usr/bin/env python3
"""Interleaved A/B benchmark comparison for noisy (single-CPU) boxes.

Runs two bench commands alternately (A B A B ...) so machine-wide noise
lands on both sides equally, parses the LAST line of each run's stdout as
one JSON record (the BENCH_*.json convention of this repo's drivers),
flattens nested objects/arrays into dotted metric names, and reports the
per-metric median of A, median of B, and the B/A ratio.

Usage:
    ab_compare.py [--runs N] [--label-a OLD] [--label-b NEW]
                  [--filter SUBSTR] [--strip-tag KEY] "cmd A" "cmd B"

--strip-tag KEY (repeatable) drops a tag from cell labels so records that
differ only in that tag stay comparable — e.g. --strip-tag transport diffs
serve_loadgen's in-process cells against its --tcp wire cells.

Commands are shell-split (quote them once); non-numeric JSON fields are
used to label rows when possible and otherwise ignored.  Exit code is
always 0 — this is a reporting tool, not a gate.
"""

import argparse
import json
import shlex
import statistics
import subprocess
import sys


def run_once(cmd):
    """Runs `cmd`, returns the JSON object parsed from stdout's last line."""
    out = subprocess.run(
        shlex.split(cmd), capture_output=True, text=True, check=True
    ).stdout
    lines = [ln for ln in out.strip().splitlines() if ln.strip()]
    if not lines:
        raise RuntimeError(f"no output from: {cmd}")
    return json.loads(lines[-1])


def flatten(obj, prefix="", strip_tags=()):
    """Yields (dotted_name, number) for every numeric leaf of obj.

    Array elements of objects are labelled by their non-numeric fields
    (e.g. cells[shape=chain,workers=8].tasks_per_sec) so records stay
    comparable when both sides emit the same logical cells.  Tag keys in
    `strip_tags` are left out of labels (see --strip-tag).
    """
    if isinstance(obj, dict):
        for key, val in obj.items():
            yield from flatten(val, f"{prefix}.{key}" if prefix else key,
                               strip_tags)
    elif isinstance(obj, list):
        for i, val in enumerate(obj):
            if isinstance(val, dict):
                tags = ",".join(
                    f"{k}={v}"
                    for k, v in val.items()
                    if k not in strip_tags
                    and (isinstance(v, (str, bool))
                         or (isinstance(v, int) and k in ("workers",
                                                          "threads")))
                )
                label = f"{prefix}[{tags}]" if tags else f"{prefix}[{i}]"
            else:
                label = f"{prefix}[{i}]"
            yield from flatten(val, label, strip_tags)
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        yield prefix, float(obj)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--runs", type=int, default=5,
                    help="runs per side (default 5)")
    ap.add_argument("--label-a", default="A")
    ap.add_argument("--label-b", default="B")
    ap.add_argument("--filter", default="",
                    help="only report metrics containing this substring")
    ap.add_argument("--strip-tag", action="append", default=[],
                    help="drop this tag key from cell labels (repeatable)")
    ap.add_argument("cmd_a")
    ap.add_argument("cmd_b")
    args = ap.parse_args()

    samples = {"a": {}, "b": {}}
    for r in range(args.runs):
        for side, cmd in (("a", args.cmd_a), ("b", args.cmd_b)):
            record = run_once(cmd)
            for name, value in flatten(record, strip_tags=args.strip_tag):
                samples[side].setdefault(name, []).append(value)
            print(f"run {r + 1}/{args.runs} side "
                  f"{args.label_a if side == 'a' else args.label_b}: ok",
                  file=sys.stderr)

    common = [m for m in samples["a"] if m in samples["b"]
              and args.filter in m]
    if not common:
        print("no common numeric metrics between the two records",
              file=sys.stderr)
        return

    name_w = max(len(m) for m in common)
    print(f"{'metric':<{name_w}}  {'median ' + args.label_a:>14}  "
          f"{'median ' + args.label_b:>14}  {'ratio':>7}")
    for m in common:
        med_a = statistics.median(samples["a"][m])
        med_b = statistics.median(samples["b"][m])
        if med_a != 0:
            ratio = med_b / med_a
        else:
            ratio = 1.0 if med_b == 0 else float("inf")
        print(f"{m:<{name_w}}  {med_a:>14.4g}  {med_b:>14.4g}  {ratio:>7.3f}")


if __name__ == "__main__":
    main()
