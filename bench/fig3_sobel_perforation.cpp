// Figure 3: Sobel under blind loop perforation — accurate, 20%, 70% and
// 100% of the row iterations dropped, as quadrants of fig3_sobel.pgm.
// The point of the figure: perforation's quality collapses where the
// significance-aware runtime of Figure 1 degrades gracefully.
#include <cstdio>

#include "apps/sobel.hpp"
#include "metrics/quality.hpp"
#include "support/image.hpp"
#include "support/table.hpp"

int main() {
  using namespace sigrt::apps;
  using sigrt::support::Image;

  constexpr std::size_t kSize = 512;
  const Image input = sigrt::support::synthetic_image(kSize, kSize, 42);
  const Image reference = sobel::reference(input);

  struct Quad {
    const char* name;
    double perforation_rate;
    int qx, qy;
  };
  const Quad quads[] = {
      {"accurate", 0.0, 0, 0},
      {"perforate 20%", 0.2, 1, 0},
      {"perforate 70%", 0.7, 0, 1},
      {"perforate 100%", 1.0, 1, 1},
  };

  Image assembled(kSize, kSize, 0);
  sigrt::support::Table t({"quadrant", "rate", "PSNR_dB", "PSNR^-1"});

  for (const Quad& q : quads) {
    sobel::Options o;
    o.width = kSize;
    o.height = kSize;
    o.common.variant = Variant::Perforated;
    // The perforated path derives its rate from (1 - ratio).
    o.ratio_override = 1.0 - q.perforation_rate;
    Image out;
    sobel::run(o, &out);
    sigrt::support::blit_quadrant(assembled, out, q.qx, q.qy);
    const double psnr = sigrt::metrics::psnr_db(reference, out);
    t.row().cell(q.name).cell(q.perforation_rate, 2).cell(psnr, 2).cell(
        sigrt::metrics::inverse_psnr(psnr), 5);
  }

  const char* path = "fig3_sobel.pgm";
  sigrt::support::write_pgm(assembled, path);
  t.print("[fig3] Sobel under blind loop perforation (quadrants of " +
          std::string(path) + ")");
  std::printf("expected shape: PSNR collapses with the perforation rate —\n"
              "dropped rows are simply never written (black stripes), unlike\n"
              "the graceful degradation of Figure 1.\n");
  return 0;
}
