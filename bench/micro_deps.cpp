// Dependent-task throughput gate: spawn/complete cost when every task
// carries an in()/out() footprint and the dependence tracker is on the
// critical path.
//
// Two workload shapes, chosen to stress the two tracker extremes:
//
//   * chain — C independent chains, each task inout() on its chain's
//     private block: pure pipeline parallelism, one predecessor per task,
//     maximal register/complete rate per block.
//   * stencil — a G x G tile grid swept repeatedly; each task reads its
//     four halo neighbours (in) and updates its own tile (inout), the
//     jacobi/fluidanimate dependence pattern: 5-block footprints, RAW +
//     WAR + WAW edges crossing stripe boundaries.
//
// Each shape runs at 1/4/8 workers.  Like micro_spawn, the driver counts
// heap allocations through an instrumented global operator new and warms
// up until a full round allocates nothing, so the steady-state
// allocs-per-task column gates the tracker's reset-not-free contract for
// small (<= 8-block) footprints.  Output is one JSON line
// (BENCH_micro_deps.json in CI); any CLI arguments are accepted and
// ignored for harness compatibility.
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/sigrt.hpp"
#include "support/timer.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded != 0 ? rounded : align)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

constexpr std::size_t kBlockBytes = 64;

/// One tracker block per logical cell: dependencies are exactly the ones the
/// shape intends, never accidental same-block aliasing.
struct alignas(kBlockBytes) Cell {
  unsigned char bytes[kBlockBytes];
};

struct DepRecord {
  const char* shape = "";
  unsigned workers = 0;
  std::uint64_t tasks = 0;
  std::uint64_t allocs = 0;
  double allocs_per_task = 0.0;
  std::uint64_t dep_edges = 0;
  double wall_s = 0.0;
  double tasks_per_sec = 0.0;
};

// C chains built breadth-first (round-robin over chains per step) so the
// spawner keeps all chains live at once; a barrier every wave bounds the
// in-flight window.
constexpr std::size_t kChains = 32;
constexpr std::size_t kChainSteps = 64;   // tasks per chain per wave
constexpr std::size_t kChainWaves = 8;

std::uint64_t chain_round(sigrt::Runtime& rt, std::vector<Cell>& cells) {
  for (std::size_t w = 0; w < kChainWaves; ++w) {
    for (std::size_t s = 0; s < kChainSteps; ++s) {
      for (std::size_t c = 0; c < kChains; ++c) {
        rt.spawn(sigrt::task([] {}).inout(&cells[c]));
      }
    }
    rt.wait_all();
  }
  return kChainWaves * kChainSteps * kChains;
}

// G x G torus stencil: sweep after sweep, each tile task reads its four
// neighbours' previous values and rewrites its own tile.
constexpr std::size_t kGrid = 16;
constexpr std::size_t kSweeps = 32;
constexpr std::size_t kSweepsPerBarrier = 8;

std::uint64_t stencil_round(sigrt::Runtime& rt, std::vector<Cell>& cells) {
  auto at = [&](std::size_t y, std::size_t x) -> Cell* {
    return &cells[y * kGrid + x];
  };
  for (std::size_t s = 0; s < kSweeps; ++s) {
    for (std::size_t y = 0; y < kGrid; ++y) {
      for (std::size_t x = 0; x < kGrid; ++x) {
        rt.spawn(sigrt::task([] {})
                     .in(at((y + kGrid - 1) % kGrid, x))
                     .in(at((y + 1) % kGrid, x))
                     .in(at(y, (x + kGrid - 1) % kGrid))
                     .in(at(y, (x + 1) % kGrid))
                     .inout(at(y, x)));
      }
    }
    if ((s + 1) % kSweepsPerBarrier == 0) rt.wait_all();
  }
  rt.wait_all();
  return kSweeps * kGrid * kGrid;
}

template <typename Round>
DepRecord measure(const char* shape, unsigned workers, std::size_t cell_count,
                  Round round, int max_warmup) {
  sigrt::RuntimeConfig c;
  c.workers = workers;
  c.policy = sigrt::PolicyKind::Agnostic;
  c.block_bytes = kBlockBytes;
  c.record_task_log = false;
  sigrt::Runtime rt(c);
  std::vector<Cell> cells(cell_count);

  // Warm-up: populate the task pool, the tracker's stripe tables and every
  // reader/dependents buffer to the workload's high-water mark, repeating
  // until a full round allocates nothing (true steady state).
  for (int r = 0; r < max_warmup; ++r) {
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    (void)round(rt, cells);
    if (r > 0 && g_allocs.load(std::memory_order_relaxed) == before) break;
  }

  const std::uint64_t e0 = rt.stats().dep_edges;
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::int64_t t0 = sigrt::support::now_ns();
  const std::uint64_t tasks = round(rt, cells);
  const std::int64_t t1 = sigrt::support::now_ns();
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);

  DepRecord r;
  r.shape = shape;
  r.workers = workers;
  r.tasks = tasks;
  r.allocs = a1 - a0;
  r.allocs_per_task = static_cast<double>(r.allocs) / static_cast<double>(tasks);
  r.dep_edges = rt.stats().dep_edges - e0;
  r.wall_s = static_cast<double>(t1 - t0) * 1e-9;
  if (r.wall_s > 0) {
    r.tasks_per_sec = static_cast<double>(tasks) / r.wall_s;
  }
  return r;
}

}  // namespace

int main(int, char**) {
  constexpr unsigned kWorkerSweep[] = {1, 4, 8};
  std::vector<DepRecord> records;
  for (unsigned w : kWorkerSweep) {
    records.push_back(measure("chain", w, kChains, chain_round,
                              /*max_warmup=*/6));
    records.push_back(measure("stencil", w, kGrid * kGrid, stencil_round,
                              /*max_warmup=*/6));
  }

  std::printf("{\"bench\":\"micro_deps\",\"block_bytes\":%zu,\"cells\":[",
              kBlockBytes);
  for (std::size_t i = 0; i < records.size(); ++i) {
    const DepRecord& r = records[i];
    std::printf(
        "%s{\"shape\":\"%s\",\"workers\":%u,\"tasks\":%" PRIu64
        ",\"allocs\":%" PRIu64
        ",\"allocs_per_task\":%.6f,\"dep_edges\":%" PRIu64
        ",\"wall_s\":%.6f,\"tasks_per_sec\":%.1f}",
        i == 0 ? "" : ",", r.shape, r.workers, r.tasks, r.allocs,
        r.allocs_per_task, r.dep_edges, r.wall_s, r.tasks_per_sec);
  }
  std::printf("]}\n");
  return 0;
}
