// Ablation: NTC (unreliable) cores — the paper's §6 future work realized.
//
// Sobel at several ratios on 4 workers, converting 0/1/2 of them into
// near-threshold-voltage cores that only run approximate tasks.  The model
// charges NTC busy time ~30% of nominal dynamic power, so energy drops as
// more approximate work lands there; with fault injection enabled the
// quality cost of unreliability becomes visible (faulted tasks drop their
// rows).
#include <cstdio>

#include "apps/sobel.hpp"
#include "support/table.hpp"

int main() {
  using namespace sigrt::apps;

  sigrt::support::Table t({"ratio", "ntc_workers", "fault_rate", "time_s",
                           "energy_j", "PSNR_dB", "dropped"});

  for (const double ratio : {0.8, 0.3}) {
    for (const unsigned ntc : {0u, 1u, 2u}) {
      for (const double fault : {0.0, 0.1}) {
        if (ntc == 0 && fault > 0.0) continue;  // faults need NTC workers
        sobel::Options o;
        o.width = 512;
        o.height = 512;
        o.repeats = 1;  // keep each fault visible in the final image
        o.common.variant = Variant::GTBMaxBuffer;
        o.common.workers = 4;
        o.common.unreliable_workers = ntc;
        o.common.unreliable_fault_rate = fault;
        o.ratio_override = ratio;
        const RunResult r = sobel::run(o);
        t.row()
            .cell(ratio, 2)
            .cell(static_cast<std::size_t>(ntc))
            .cell(fault, 2)
            .cell(r.time_s, 4)
            .cell(r.energy_j, 2)
            .cell(r.quality_aux, 1)
            .cell(static_cast<std::size_t>(r.tasks_dropped));
      }
    }
  }

  t.print("[ablation:ntc] unreliable-core extension (Sobel, GTB MaxBuffer)");
  std::printf("expected shape: at a fixed ratio, NTC workers cut the *dynamic*\n"
              "energy of approximate rows (~0.3x power) at equal quality, and\n"
              "faults drop rows, trading further energy for PSNR (§6).\n"
              "caveat: on a host with fewer physical cores than workers the\n"
              "threads timeshare one CPU, so the makespan (static-power) term\n"
              "can mask the dynamic saving — compare the dropped/PSNR columns\n"
              "for the significance story, and see ablation_dvfs for the\n"
              "power-model arithmetic in isolation.\n");
  return 0;
}
