// Ablation: DVFS exploration (the paper's §6 future work — "DVFS in
// conjunction with suitable runtime policies for executing approximate task
// versions on slower but less power-hungry CPUs").
//
// Using the machine model's frequency hooks: one measured Sobel run per
// ratio provides (wall, busy) activity; the model then predicts time and
// energy across frequency scales (t ~ 1/f for the busy fraction, dynamic
// power ~ f^3), exposing the energy-minimal frequency per accuracy ratio.
#include <cstdio>

#include "apps/sobel.hpp"
#include "energy/model.hpp"
#include "support/table.hpp"

int main() {
  using namespace sigrt::apps;

  const double ratios[] = {1.0, 0.5, 0.0};
  const double freqs[] = {0.6, 0.8, 1.0, 1.2};

  sigrt::support::Table t(
      {"ratio", "freq", "pred_time_s", "pred_energy_j", "note"});

  for (const double ratio : ratios) {
    sobel::Options o;
    o.width = 512;
    o.height = 512;
    o.repeats = 2;
    o.common.variant = Variant::GTBMaxBuffer;
    o.ratio_override = ratio;
    const auto r = sobel::run(o);

    // Decompose the measured run: busy fraction scales with 1/f, the rest
    // (issue latency, barriers) is frequency-invariant in this model.
    // Approximate the busy fraction from the measured energy/time pair via
    // the nominal model.
    const sigrt::energy::MachineModel nominal;
    const double busy_s =
        (r.energy_j - r.time_s * nominal.static_power_w()) /
        nominal.dynamic_core_power_w();
    const double idle_s = r.time_s;

    double best_energy = 1e300;
    double best_f = 1.0;
    for (const double f : freqs) {
      sigrt::energy::MachineModel m;
      m.frequency_scale = f;
      const double time = idle_s + busy_s * (m.time_scale() - 1.0);
      const double energy = m.joules(time, busy_s * m.time_scale());
      const bool best_so_far = energy < best_energy;
      if (best_so_far) {
        best_energy = energy;
        best_f = f;
      }
      t.row().cell(ratio, 2).cell(f, 2).cell(time, 4).cell(energy, 2).cell("");
    }
    std::printf("ratio %.2f: energy-minimal frequency %.2f\n", ratio, best_f);
  }

  t.print("[ablation:dvfs] model-predicted time/energy across frequency "
          "scales (Sobel)");
  std::printf("expected shape: with the E5-2650's high static-power share the\n"
              "model favors race-to-idle (higher f) at every ratio; lowering\n"
              "the ratio shrinks the busy time and with it the absolute\n"
              "energy spread across frequencies.  On a machine with a larger\n"
              "dynamic share (set core_busy_w up / uncore_w down) the optimum\n"
              "shifts toward lower f as the ratio drops — the §6 rationale\n"
              "for combining approximation with DVFS.\n");
  return 0;
}
