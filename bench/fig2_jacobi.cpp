// Figure 2, Jacobi row: time / energy / relative error across degrees and
// policies.  The perforated comparator's rate is matched to the bounded-GTB
// run's provided accurate ratio so both execute the same task budget (§4.1).
#include "apps/jacobi.hpp"
#include "fig2_common.hpp"

int main() {
  using namespace sigrt::apps;
  sigrt::bench::run_fig2(
      "jacobi",
      "expected shape: degrees are convergence tolerances (1e-4/1e-3/1e-2 vs\n"
      "native 1e-5): looser tolerance => fewer sweeps => less time/energy at\n"
      "a larger solution error; the 5 approximate warm-up sweeps are benign\n"
      "(diagonally dominant system).",
      [](Variant v, Degree d, const RunResult* gtb) {
        jacobi::Options o;
        o.n = 1024;
        o.common.variant = v;
        o.common.degree = d;
        if (v == Variant::Perforated && gtb != nullptr) {
          o.perforation_rate = 1.0 - gtb->provided_ratio;
        }
        return jacobi::run(o);
      });
  return 0;
}
