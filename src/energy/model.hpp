// Activity-based CPU energy model calibrated to the paper's evaluation
// platform: 2x Intel Xeon E5-2650 (Sandy Bridge EP, 8 cores/socket, 2.0 GHz,
// 95 W TDP per socket).
//
// The model integrates three components over a measurement window:
//   E = wall_s * (sockets * uncore_w  +  total_cores * core_idle_w)
//     + busy_s * (core_busy_w - core_idle_w) * dvfs_power_scale
//
// where busy_s is the sum of per-worker task-execution time reported by the
// runtime.  This captures exactly the two effects the paper's energy savings
// come from — shorter makespans (first term) and less computation (second
// term) — so approximate executions reproduce the paper's relative energy
// behaviour even where physical RAPL counters are unavailable.
//
// The DVFS hooks model the paper's stated future-work direction (§6): both
// dynamic power and execution-time scaling under frequency changes, using
// the classic P_dyn ∝ f·V² relation with V roughly linear in f.
#pragma once

#include <string>

#include "energy/meter.hpp"

namespace sigrt::energy {

/// Power parameters of the modeled machine.  Defaults approximate the dual
/// E5-2650 node of the paper: 95 W TDP/socket at full load, ~24 W per socket
/// idle (uncore + idle cores).
struct MachineModel {
  int sockets = 2;
  int cores_per_socket = 8;

  double core_busy_w = 8.9;   ///< incremental power of one fully busy core
  double core_idle_w = 1.05;  ///< per-core power when idle (C1-ish residency)
  double uncore_w = 15.6;     ///< per-socket static power (LLC, IMC, IO)

  /// Frequency relative to nominal (1.0 == 2.0 GHz).  Affects dynamic power
  /// as scale^3 (f·V² with V ∝ f) — used by the DVFS ablation bench.
  double frequency_scale = 1.0;

  /// Dynamic-power fraction of a near-threshold-voltage (unreliable) core
  /// relative to a nominal one — the §6 future-work extension.  ~0.3 is in
  /// line with published NTC savings at iso-area.
  double ntc_power_fraction = 0.3;

  [[nodiscard]] int total_cores() const noexcept {
    return sockets * cores_per_socket;
  }

  /// Static (activity-independent) power of the whole machine in watts.
  [[nodiscard]] double static_power_w() const noexcept {
    return static_cast<double>(sockets) * uncore_w +
           static_cast<double>(total_cores()) * core_idle_w;
  }

  /// Incremental dynamic power of one busy core at the configured frequency.
  [[nodiscard]] double dynamic_core_power_w() const noexcept {
    const double f = frequency_scale;
    return (core_busy_w - core_idle_w) * f * f * f;
  }

  /// Energy in joules for a window with `wall_s` elapsed seconds and
  /// `busy_s` aggregate worker-busy seconds (all on nominal cores).
  [[nodiscard]] double joules(double wall_s, double busy_s) const noexcept {
    return wall_s * static_power_w() + busy_s * dynamic_core_power_w();
  }

  /// Energy with the NTC split: unreliable-core busy time is charged
  /// ntc_power_fraction of the dynamic power.
  [[nodiscard]] double joules(double wall_s, double busy_s,
                              double busy_unreliable_s) const noexcept {
    return joules(wall_s, busy_s) +
           busy_unreliable_s * dynamic_core_power_w() * ntc_power_fraction;
  }

  /// Predicted execution-time multiplier at the configured frequency for a
  /// fully compute-bound region (t ∝ 1/f).  Used by the DVFS ablation.
  [[nodiscard]] double time_scale() const noexcept {
    return 1.0 / frequency_scale;
  }
};

/// Meter backed by the machine model and an ActivitySource (the runtime).
class ModelMeter final : public Meter {
 public:
  ModelMeter(MachineModel model, const ActivitySource& source)
      : model_(model), source_(source) {}

  [[nodiscard]] double joules_now() const override {
    const Activity a = source_.activity_now();
    return model_.joules(a.wall_s, a.busy_s, a.busy_unreliable_s);
  }

  [[nodiscard]] std::string name() const override { return "model"; }

  [[nodiscard]] const MachineModel& model() const noexcept { return model_; }

 private:
  MachineModel model_;
  const ActivitySource& source_;
};

}  // namespace sigrt::energy
