// RAPL energy counters via the Linux powercap sysfs interface.
//
// The paper reads RAPL through likwid; the powercap interface exposes the
// same MSR-backed package energy counters as
//   /sys/class/powercap/intel-rapl:<pkg>/energy_uj
// This reader sums all top-level package domains and corrects for counter
// wraparound using max_energy_range_uj.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "energy/meter.hpp"

namespace sigrt::energy {

class RaplMeter final : public Meter {
 public:
  /// Discovers package domains under `root` (default: the real sysfs path).
  /// Use available() to check whether construction found readable counters.
  explicit RaplMeter(std::string root = "/sys/class/powercap");

  /// True iff at least one package energy counter is readable.
  [[nodiscard]] bool available() const noexcept { return !domains_.empty(); }

  [[nodiscard]] double joules_now() const override;
  [[nodiscard]] std::string name() const override { return "rapl"; }

  /// Number of package domains found (0 when unavailable).
  [[nodiscard]] std::size_t domain_count() const noexcept {
    return domains_.size();
  }

 private:
  struct Domain {
    std::string energy_path;
    std::uint64_t max_range_uj = 0;
    // Wraparound tracking (mutable: joules_now is logically const).
    mutable std::uint64_t last_raw_uj = 0;
    mutable std::uint64_t wraps = 0;
    mutable bool primed = false;
  };

  std::vector<Domain> domains_;
};

}  // namespace sigrt::energy
