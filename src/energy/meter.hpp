// Energy measurement abstraction.
//
// The paper measures energy through the RAPL registers of two Xeon E5-2650
// packages (via likwid).  This library provides:
//   * RaplMeter   — reads the Linux powercap sysfs interface when present.
//   * ModelMeter  — a calibrated activity-based model of the paper's machine,
//                   used when RAPL is unavailable (e.g. containers, non-Intel
//                   hosts).  See DESIGN.md §2 for why the substitution
//                   preserves the paper's relative results.
// Both expose one cumulative counter so measurement scopes are identical
// regardless of backend.
#pragma once

#include <memory>
#include <string>

namespace sigrt::energy {

/// Cumulative activity of a task runtime: how long the measured region has
/// been running and how much aggregate CPU-busy time its workers consumed.
/// Implemented by sigrt::Runtime.
struct Activity {
  double wall_s = 0.0;  ///< elapsed wall-clock seconds
  double busy_s = 0.0;  ///< task execution seconds on reliable workers
  /// Task execution seconds on NTC (unreliable) workers — charged a
  /// fraction of the dynamic power by the machine model (§6 extension).
  double busy_unreliable_s = 0.0;
};

/// Source of cumulative activity counters for the model-based meter.
class ActivitySource {
 public:
  virtual ~ActivitySource() = default;
  [[nodiscard]] virtual Activity activity_now() const = 0;
};

/// A monotonically increasing energy counter in joules.
class Meter {
 public:
  virtual ~Meter() = default;

  /// Cumulative joules consumed since an arbitrary epoch.  Scopes measure
  /// differences, so the epoch does not matter.
  [[nodiscard]] virtual double joules_now() const = 0;

  /// Human-readable backend identifier ("rapl", "model", "null").
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Meter that always reads zero; keeps measurement plumbing alive in unit
/// tests that do not care about energy.
class NullMeter final : public Meter {
 public:
  [[nodiscard]] double joules_now() const override { return 0.0; }
  [[nodiscard]] std::string name() const override { return "null"; }
};

/// RAII measurement window over a meter.
class Scope {
 public:
  explicit Scope(const Meter& meter)
      : meter_(meter), start_j_(meter.joules_now()) {}

  /// Joules consumed since construction.
  [[nodiscard]] double joules() const { return meter_.joules_now() - start_j_; }

 private:
  const Meter& meter_;
  double start_j_;
};

/// Builds the best available meter: RAPL if the powercap interface is
/// readable, otherwise the machine model fed by `source`.  `source` may be
/// null, in which case a model meter would read zero busy time and the
/// factory falls back to NullMeter when RAPL is absent.
std::unique_ptr<Meter> make_best_meter(const ActivitySource* source);

}  // namespace sigrt::energy
