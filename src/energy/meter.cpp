#include "energy/meter.hpp"

#include "energy/model.hpp"
#include "energy/rapl.hpp"

namespace sigrt::energy {

std::unique_ptr<Meter> make_best_meter(const ActivitySource* source) {
  auto rapl = std::make_unique<RaplMeter>();
  if (rapl->available()) return rapl;
  if (source != nullptr) {
    return std::make_unique<ModelMeter>(MachineModel{}, *source);
  }
  return std::make_unique<NullMeter>();
}

}  // namespace sigrt::energy
