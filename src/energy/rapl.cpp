#include "energy/rapl.hpp"

#include <filesystem>
#include <fstream>

namespace sigrt::energy {

namespace fs = std::filesystem;

namespace {

bool read_u64(const fs::path& p, std::uint64_t& out) {
  std::ifstream in(p);
  if (!in) return false;
  in >> out;
  return static_cast<bool>(in);
}

bool read_string(const fs::path& p, std::string& out) {
  std::ifstream in(p);
  if (!in) return false;
  std::getline(in, out);
  return static_cast<bool>(in) || in.eof();
}

}  // namespace

RaplMeter::RaplMeter(std::string root) {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) return;

  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (ec) break;
    const std::string stem = entry.path().filename().string();
    // Top-level package domains look like "intel-rapl:0"; subdomains
    // (":0:0", core/dram) are excluded so packages are not double counted.
    if (stem.rfind("intel-rapl:", 0) != 0) continue;
    if (stem.find(':', std::string("intel-rapl:").size()) != std::string::npos) {
      continue;
    }

    std::string name;
    if (!read_string(entry.path() / "name", name)) continue;
    if (name.rfind("package", 0) != 0 && name.rfind("psys", 0) != 0) continue;

    Domain d;
    d.energy_path = (entry.path() / "energy_uj").string();
    std::uint64_t probe = 0;
    if (!read_u64(d.energy_path, probe)) continue;  // often root-only
    read_u64(entry.path() / "max_energy_range_uj", d.max_range_uj);
    domains_.push_back(std::move(d));
  }
}

double RaplMeter::joules_now() const {
  std::uint64_t total_uj = 0;
  for (const auto& d : domains_) {
    std::uint64_t raw = 0;
    if (!read_u64(d.energy_path, raw)) continue;
    if (!d.primed) {
      d.primed = true;
    } else if (raw < d.last_raw_uj && d.max_range_uj > 0) {
      ++d.wraps;  // counter wrapped since last read
    }
    d.last_raw_uj = raw;
    total_uj += raw + d.wraps * d.max_range_uj;
  }
  return static_cast<double>(total_uj) * 1e-6;
}

}  // namespace sigrt::energy
