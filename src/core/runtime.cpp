#include "core/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <future>
#include <stdexcept>

#include "support/rng.hpp"
#include "support/timer.hpp"

namespace sigrt {

Runtime::Runtime(RuntimeConfig config)
    : config_(config),
      tracker_(config.block_bytes),
      policy_(make_policy(config)),
      pass_through_(policy_->pass_through()),
      group_table_(new std::atomic<TaskGroup*>[kGroupFastTableSize]),
      start_ns_(support::now_ns()) {
  for (std::size_t i = 0; i < kGroupFastTableSize; ++i) {
    group_table_[i].store(nullptr, std::memory_order_relaxed);
  }
  groups_.push_back(std::make_unique<TaskGroup>(
      kDefaultGroup, "default", config_.default_ratio, config_.record_task_log));
  publish_group(kDefaultGroup, groups_.back().get());

  // The scheduler's dequeue hook is the policy's worker-side decision point
  // (LQH, §3.4): classification happens on the executing worker, against
  // worker-local history, with no locks on the path.  The hooks are plain
  // function pointers over `this` — captureless trampolines, no
  // std::function type erasure anywhere on the execute path.
  scheduler_ = std::make_unique<Scheduler>(
      config_.workers, config_.unreliable_workers, config_.steal, this,
      [](void* self, Task& task, unsigned worker) {
        static_cast<Runtime*>(self)->execute_task(task, worker);
      },
      [](void* self, Task& task, unsigned worker) {
        static_cast<Runtime*>(self)->classify_at_dequeue(task, worker);
      });

  meter_ = energy::make_best_meter(this);
}

void Runtime::publish_group(GroupId id, TaskGroup* group) noexcept {
  if (id < kGroupFastTableSize) {
    group_table_[id].store(group, std::memory_order_release);
  }
}

Runtime::~Runtime() {
  try {
    wait_all();
  } catch (...) {
    // Destructors must not throw; callers who care about task failures call
    // wait_all() themselves.
  }
  scheduler_.reset();  // joins workers before members are torn down
}

GroupId Runtime::create_group(const std::string& name, double ratio) {
  std::unique_lock lock(groups_mutex_);
  if (auto it = group_names_.find(name); it != group_names_.end()) {
    groups_[it->second]->set_ratio(ratio);
    return it->second;
  }
  const auto id = static_cast<GroupId>(groups_.size());
  groups_.push_back(std::make_unique<TaskGroup>(id, name, ratio,
                                                config_.record_task_log));
  group_names_.emplace(name, id);
  publish_group(id, groups_.back().get());
  return id;
}

GroupId Runtime::ensure_group(const std::string& name) {
  std::unique_lock lock(groups_mutex_);
  if (auto it = group_names_.find(name); it != group_names_.end()) {
    return it->second;
  }
  const auto id = static_cast<GroupId>(groups_.size());
  groups_.push_back(
      std::make_unique<TaskGroup>(id, name, 1.0, config_.record_task_log));
  group_names_.emplace(name, id);
  publish_group(id, groups_.back().get());
  return id;
}

void Runtime::set_ratio(GroupId group, double ratio) {
  group_ref(group).set_ratio(ratio);
}

TaskGroup& Runtime::group(GroupId id) { return group_ref(id); }

TaskGroup& Runtime::group_ref(GroupId id) {
  // Lock-free fast path: workers hit this on every LQH dequeue decision.
  // Group objects are heap-stable (unique_ptr) and published with release
  // after construction, so the acquire load is sufficient.
  if (id < kGroupFastTableSize) {
    if (TaskGroup* g = group_table_[id].load(std::memory_order_acquire)) {
      return *g;
    }
  }
  std::shared_lock lock(groups_mutex_);
  if (id >= groups_.size()) throw std::out_of_range("unknown task group");
  return *groups_[id];
}

GroupReport Runtime::group_report(GroupId id) const {
  std::shared_lock lock(groups_mutex_);
  if (id >= groups_.size()) throw std::out_of_range("unknown task group");
  return groups_[id]->report();
}

std::vector<GroupReport> Runtime::all_group_reports() const {
  std::shared_lock lock(groups_mutex_);
  std::vector<GroupReport> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) out.push_back(g->report());
  return out;
}

void Runtime::spawn(TaskOptions options) {
  spawn_impl(std::move(options), /*internal=*/false);
}

void Runtime::spawn_impl(TaskOptions&& options, bool internal) {
  if (!options.accurate) {
    throw std::invalid_argument("task requires an accurate body");
  }

  // Pooled allocation: a recycled slot from this thread's shard (or its
  // remote-free chain) in the steady state — no heap traffic.
  TaskRef task = make_task();
  task->accurate = std::move(options.accurate);
  task->approximate = std::move(options.approximate);
  task->significance =
      static_cast<float>(std::clamp(options.significance, 0.0, 1.0));
  task->group = options.group;
  // Single-writer (the designated spawner): load+store beats a lock xadd.
  const TaskId id = next_task_id_.load(std::memory_order_relaxed);
  next_task_id_.store(id + 1, std::memory_order_relaxed);
  task->id = id;
  task->internal = internal;

  TaskGroup& g = group_ref(task->group);
  g.on_spawn();
  // Relaxed: the increment is ordered before the task's publication by the
  // scheduler's release edges; the completion-side decrement stays acq_rel
  // so barrier waiters observe a properly ordered zero crossing.
  pending_.fetch_add(1, std::memory_order_relaxed);

  task->has_footprint = !options.accesses.empty();

  // Spawn fast path: a dependency-free task under a pass-through policy
  // (LQH/agnostic) is runnable the moment it exists — no policy hold, no
  // registration hold, no gate arithmetic at all (the gate stays 0 and the
  // classification happens at dequeue).  This skips three atomic RMWs per
  // task on the hottest spawn path; buffering policies and tasks with
  // in()/out() clauses take the general path below.
  if (!task->has_footprint && pass_through_ && !internal) {
    scheduler_->enqueue(std::move(task));
    return;
  }

  // Gate arithmetic.  The final hold count is (holds + deps): hold B for
  // this registration (released at the bottom), hold A for policy
  // classification (released by the Policy via IssueSink) — only taken
  // when a buffering policy actually needs it, see below — plus one per
  // unfinished predecessor.  deps is only known *after* registration, and
  // predecessors may complete — and decrement the gate — concurrently with
  // it (the striped tracker hands a completing predecessor's dependents
  // out while the successor's registration is still visiting other
  // stripes).  Seeding the gate with a large spawn hold and then
  // subtracting the surplus makes it impossible for those early decrements
  // to drive the gate to zero before the dependency count is folded in
  // (with a plain initial value of `holds`, two predecessors finishing
  // inside the window double-enqueue the task).
  //
  // Pass-through policies (LQH/agnostic) never buffer: their on_spawn is an
  // immediate release of hold A.  Dependent tasks under them skip the
  // policy hop entirely — no virtual call, one fewer gate RMW — and are
  // classified at dequeue exactly as on the footprint-free fast path.
  // Internal fence tasks do the same (they bypass buffering by contract)
  // but are pinned Accurate here.
  const bool skip_policy = internal || pass_through_;
  const std::uint32_t holds = skip_policy ? 1u : 2u;
  constexpr std::uint32_t kSpawnHold = 1u << 20;
  task->gate.store(kSpawnHold, std::memory_order_relaxed);
  // Footprint-free tasks bypass the tracker entirely: they can neither
  // have predecessors nor ever be one, so both the registration here and
  // the completion lookup skip the tracker's stripe locks.
  const std::size_t deps =
      task->has_footprint ? tracker_.register_node(task.get(), options.accesses)
                          : 0;
  assert(deps + holds < kSpawnHold && "dependency count exceeds the spawn hold");

  if (skip_policy) {
    if (internal) {
      // Internal fence tasks bypass the policy: they are always accurate
      // and must not be delayed by buffering.
      task->kind = ExecutionKind::Accurate;
    }
    // Fold the surplus subtraction and hold B's release into one RMW: the
    // gate reaches zero here exactly when every predecessor already
    // completed inside the registration window.
    const auto sub = kSpawnHold - static_cast<std::uint32_t>(deps);
    if (task->gate.fetch_sub(sub, std::memory_order_acq_rel) == sub) {
      scheduler_->enqueue(std::move(task));  // donate the spawner's reference
    }
    return;
  }

  // After this subtraction the gate reads (holds + deps - completed_preds)
  // >= holds, so the zero crossing can only happen via the releases below.
  task->gate.fetch_sub(kSpawnHold - holds - static_cast<std::uint32_t>(deps),
                       std::memory_order_acq_rel);
  policy_->on_spawn(task, *this);  // will release hold A

  if (task->release_one()) {  // hold B
    scheduler_->enqueue(std::move(task));  // donate the spawner's reference
  }
}

void Runtime::release(const TaskPtr& task) {
  if (task->release_one()) {
    // Donate one fresh reference to the scheduler; the caller keeps its own.
    task->retain();
    scheduler_->enqueue_owned(task.get());
  }
}

void Runtime::release_bulk(const std::vector<TaskPtr>& tasks) {
  // Spawn-batching fast path: a policy window (GTB flush) drops its holds
  // here; every task that becomes runnable is published to the scheduler
  // as one bulk enqueue instead of |window| individual ones.  The ready
  // subset lives in a thread-local scratch buffer — the per-flush
  // std::vector churn of the shared_ptr era is gone.
  thread_local std::vector<Task*> ready;
  ready.clear();
  if (ready.capacity() < tasks.size()) ready.reserve(tasks.size());
  for (const TaskPtr& t : tasks) {
    if (t->release_one()) {
      t->retain();  // the scheduler's in-flight reference
      ready.push_back(t.get());
    }
  }
  scheduler_->enqueue_bulk(ready.data(), ready.size());
  ready.clear();
}

void Runtime::classify_at_dequeue(Task& task, unsigned worker) {
  // Policy dequeue hook, invoked by the scheduler's worker loop right
  // after it wins a task.  GTB-classified tasks pass through untouched;
  // LQH/agnostic tasks arrive Undecided and are decided here, against
  // state local to `worker`.
  if (task.kind == ExecutionKind::Undecided) {
    task.kind = policy_->decide(task, worker, *this);
  }
}

void Runtime::execute_task(Task& task, unsigned worker) {
  ExecutionKind kind = task.kind;
  if (kind == ExecutionKind::Undecided) {
    // The dequeue hook classifies before execution; this fallback only
    // covers policies that decline to decide.
    kind = policy_->decide(task, worker, *this);
  }
  if (kind == ExecutionKind::Approximate && !task.approximate) {
    kind = ExecutionKind::Dropped;  // no approxfun: drop the task (§2)
  }
  // §6 extension: approximate tasks on NTC workers may silently fail; the
  // runtime then treats them as dropped (dependents still release).  The
  // fault stream is deterministic per (seed, task id).
  if (kind == ExecutionKind::Approximate &&
      config_.unreliable_fault_rate > 0.0 &&
      scheduler_->is_unreliable(worker)) {
    auto rng = support::stream_rng(config_.seed, task.id);
    if (rng.uniform() < config_.unreliable_fault_rate) {
      kind = ExecutionKind::Dropped;
      faults_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  task.kind = kind;

  TaskGroup& g = group_ref(task.group);
  const double requested = g.ratio();

  try {
    switch (kind) {
      case ExecutionKind::Accurate:
        task.accurate();
        break;
      case ExecutionKind::Approximate:
        task.approximate();
        break;
      case ExecutionKind::Dropped:
      case ExecutionKind::Undecided:
        break;  // dropped: complete without running a body
    }
  } catch (...) {
    std::lock_guard lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }

  // Completion order matters: downstream tasks must only start after this
  // task's side effects are visible.  The striped tracker guarantees it
  // through the node-state publish protocol: complete() stores done_ with
  // release under the node's lock, and a racing registration that skips
  // the edge observes it with acquire (dependents handed out here ride the
  // scheduler's publication edges instead).
  // Multiple dependents becoming runnable at once go out as one batch.
  // Scratch buffers are thread-local: execute_task is only entered from the
  // scheduler's (non-reentrant) drain/worker loop, and completions in the
  // steady state touch no allocator.
  if (task.has_footprint) {
    thread_local std::vector<dep::Node*> dependents;
    thread_local std::vector<Task*> ready;
    dependents.clear();
    ready.clear();
    tracker_.complete(task, dependents);
    for (dep::Node* node : dependents) {
      // The tracker's dependents are always Tasks; each pointer carries one
      // adopted reference that either transfers to the scheduler or drops.
      Task* dep_task = static_cast<Task*>(node);
      if (dep_task->release_one()) {
        ready.push_back(dep_task);
      } else {
        dep_task->release();
      }
    }
    if (ready.size() == 1) {
      // Post-body release: this worker pops the lone dependent next, so
      // the scheduler may skip the thief wake (see enqueue_released).
      scheduler_->enqueue_released(ready.front());
    } else if (!ready.empty()) {
      scheduler_->enqueue_bulk(ready.data(), ready.size());
    }
    dependents.clear();
    ready.clear();
  }

  g.on_complete(kind, task.significance, requested, task.internal, worker);
  on_task_finished();
}

void Runtime::on_task_finished() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard lock(wait_mutex_);
    wait_cv_.notify_all();
  }
}

void Runtime::wait_all() {
  policy_->flush(kAllGroups, *this);
  std::unique_lock lock(wait_mutex_);
  wait_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
  lock.unlock();
  rethrow_pending_error();
}

void Runtime::wait_group(GroupId group) {
  // Flush every buffer, not only `group`: a task of this group may depend
  // on a still-buffered task of another group, and a partial flush would
  // deadlock the barrier.
  policy_->flush(kAllGroups, *this);
  group_ref(group).wait();
  rethrow_pending_error();
}

void Runtime::wait_on(const void* ptr, std::size_t bytes) {
  policy_->flush(kAllGroups, *this);

  // A fence task with an in() clause on the range depends on exactly the
  // pending writers of that range; its completion signals the future.
  std::promise<void> done;
  auto fut = done.get_future();
  TaskOptions fence;
  fence.accurate = [&done] { done.set_value(); };
  fence.significance = 1.0;
  fence.group = kDefaultGroup;
  fence.accesses.push_back({ptr, bytes, dep::Mode::In});
  spawn_impl(std::move(fence), /*internal=*/true);
  fut.wait();
  rethrow_pending_error();
}

void Runtime::rethrow_pending_error() {
  std::exception_ptr err;
  {
    std::lock_guard lock(error_mutex_);
    std::swap(err, first_error_);
  }
  if (err) std::rethrow_exception(err);
}

RuntimeStats Runtime::stats() const {
  RuntimeStats s;
  {
    std::shared_lock lock(groups_mutex_);
    for (const auto& g : groups_) {
      const GroupReport r = g->report();
      s.spawned += r.spawned;
      s.accurate += r.accurate;
      s.approximate += r.approximate;
      s.dropped += r.dropped;
    }
  }
  const SchedulerStats sched = scheduler_->stats();
  s.steals = sched.steals;
  s.faults = faults_.load(std::memory_order_relaxed);
  s.busy_s = static_cast<double>(sched.busy_ns) * 1e-9;
  s.wall_s = static_cast<double>(support::now_ns() - start_ns_) * 1e-9;
  s.dep_edges = tracker_.stats().edges;
  return s;
}

void Runtime::dump_state(FILE* out) const {
  std::fprintf(out, "runtime: pending=%llu policy=%s\n",
               static_cast<unsigned long long>(pending_.load()),
               policy_->name());
  {
    std::shared_lock lock(groups_mutex_);
    for (const auto& g : groups_) {
      std::fprintf(out, "  group %u '%s': pending=%llu ratio=%.3f\n", g->id(),
                   g->name().c_str(),
                   static_cast<unsigned long long>(g->pending()), g->ratio());
    }
  }
  scheduler_->dump(out);
}

energy::Activity Runtime::activity_now() const {
  energy::Activity a;
  a.wall_s = static_cast<double>(support::now_ns() - start_ns_) * 1e-9;
  const auto [reliable_ns, unreliable_ns] = scheduler_->busy_ns_split();
  a.busy_s = static_cast<double>(reliable_ns) * 1e-9;
  a.busy_unreliable_s = static_cast<double>(unreliable_ns) * 1e-9;
  return a;
}

}  // namespace sigrt
