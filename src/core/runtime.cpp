#include "core/runtime.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/parker.hpp"
#include "core/topology.hpp"
#include "fault/fault.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace sigrt {

namespace {

// Current-task frame: which task is executing on the calling thread, and on
// behalf of which runtime.  spawn_impl reads it to wire parent/child edges
// (nested spawn) and the wait_* entry points read it to choose the helping
// path.  Saved/restored around every body, so it stays correct under
// helping re-entrancy and across nested runtimes sharing one thread.
// `prev` chains to the frame this one displaced (the saved copy lives on
// execute_task's stack, so it outlives the body): the chain enumerates
// every task suspended beneath the current one on this thread, which is
// exactly the set a helping barrier can never complete — wait_group walks
// it to fail fast on self-deadlocking group waits.
struct ThreadTaskFrame {
  Runtime* runtime = nullptr;
  Task* task = nullptr;
  const ThreadTaskFrame* prev = nullptr;
};
thread_local ThreadTaskFrame tls_task_frame;

// Nested helping-barrier frames live on this thread's stack right now.
// Each helping iteration can execute an arbitrary task body, which may
// itself barrier — so C++ stack depth grows with this counter, and the
// elastic pool's helping-depth cap bounds it by switching too-deep waiters
// from helping to a slot handoff + real block.
thread_local unsigned tls_help_depth = 0;

// Work-first throttle recursion bound: run_now re-enters spawn_impl through
// the inlined body, and an adversarial spawn chain (each inlined task
// spawning over a still-full queue) would otherwise recurse without limit.
thread_local unsigned tls_inline_spawn_depth = 0;
constexpr unsigned kMaxInlineSpawnDepth = 64;

// Completion scratch, leased per execute_task completion section instead of
// being a bare thread_local vector: an in-task taskwait re-enters
// execute_task (helping), so per-thread scratch must be a stack of frames,
// not a single slot.  Frames are pooled per thread and keep their capacity,
// preserving the zero-allocation steady state; the pool only grows if
// completion sections ever truly overlap on one thread.
struct CompletionScratch {
  std::vector<dep::Node*> dependents;
  std::vector<Task*> ready;
  CompletionScratch* next = nullptr;
};

struct ScratchPool {
  CompletionScratch* head = nullptr;
  ~ScratchPool() {
    while (head != nullptr) {
      CompletionScratch* next = head->next;
      delete head;
      head = next;
    }
  }
};
thread_local ScratchPool tls_scratch_pool;

// Dependence-tracker stripe count: explicit config wins (snapped to a
// power of two within the tracker's mask-width ceiling), otherwise the CPU
// topology recommends ~4 stripes per worker.
unsigned resolve_dep_stripes(const RuntimeConfig& config) {
  const unsigned workers = config.workers == 0 ? 1 : config.workers;
  unsigned stripes = config.dep_stripes != 0
                         ? config.dep_stripes
                         : topo::system_topology().recommended_stripes(workers);
  if (stripes < 1) stripes = 1;
  if (stripes > dep::BlockTracker::kMaxStripes) {
    stripes = dep::BlockTracker::kMaxStripes;
  }
  while ((stripes & (stripes - 1)) != 0) stripes &= stripes - 1;  // floor pow2
  return stripes;
}

CompletionScratch* acquire_scratch() {
  if (CompletionScratch* s = tls_scratch_pool.head) {
    tls_scratch_pool.head = s->next;
    s->next = nullptr;
    return s;
  }
  return new CompletionScratch;
}

void release_scratch(CompletionScratch* s) noexcept {
  s->dependents.clear();
  s->ready.clear();
  s->next = tls_scratch_pool.head;
  tls_scratch_pool.head = s;
}

}  // namespace

TaskId current_task_id() noexcept {
  return tls_task_frame.task != nullptr ? tls_task_frame.task->id : 0;
}

Runtime::Runtime(RuntimeConfig config)
    : config_(config),
      tracker_(config.block_bytes, resolve_dep_stripes(config)),
      policy_(make_policy(config)),
      pass_through_(policy_->pass_through()),
      group_table_(new std::atomic<TaskGroup*>[kGroupFastTableSize]),
      start_ns_(support::now_ns()) {
  for (std::size_t i = 0; i < kGroupFastTableSize; ++i) {
    group_table_[i].store(nullptr, std::memory_order_relaxed);
  }
  groups_.push_back(std::make_unique<TaskGroup>(
      kDefaultGroup, "default", config_.default_ratio, config_.record_task_log));
  publish_group(kDefaultGroup, groups_.back().get());

  // The scheduler's dequeue hook is the policy's worker-side decision point
  // (LQH, §3.4): classification happens on the executing worker, against
  // worker-local history, with no locks on the path.  The hooks are plain
  // function pointers over `this` — captureless trampolines, no
  // std::function type erasure anywhere on the execute path.
  // Elastic-pool sizing rides the config; event_wakeup=false is the pure
  // PR-5 baseline, so it also zeroes the spare budget (no handoffs ever).
  SchedulerOptions sched_options;
  sched_options.max_spares =
      config_.event_wakeup ? config_.max_spare_threads : 0;
  sched_options.spare_grace = std::chrono::milliseconds(config_.spare_grace_ms);
  scheduler_ = std::make_unique<Scheduler>(
      config_.workers, config_.unreliable_workers, config_.steal, this,
      [](void* self, Task& task, unsigned worker) {
        static_cast<Runtime*>(self)->execute_task(task, worker);
      },
      [](void* self, Task& task, unsigned worker) {
        static_cast<Runtime*>(self)->classify_at_dequeue(task, worker);
      },
      sched_options);

  meter_ = energy::make_best_meter(this);
}

void Runtime::publish_group(GroupId id, TaskGroup* group) noexcept {
  if (id < kGroupFastTableSize) {
    group_table_[id].store(group, std::memory_order_release);
  }
}

Runtime::~Runtime() {
  try {
    wait_all();
  } catch (...) {
    // Destructors must not throw; callers who care about task failures call
    // wait_all() themselves.
  }
  scheduler_.reset();  // joins workers before members are torn down
}

GroupId Runtime::create_group(const std::string& name, double ratio) {
  support::WriterLock lock(groups_mutex_);
  if (auto it = group_names_.find(name); it != group_names_.end()) {
    groups_[it->second]->set_ratio(ratio);
    return it->second;
  }
  const auto id = static_cast<GroupId>(groups_.size());
  groups_.push_back(std::make_unique<TaskGroup>(id, name, ratio,
                                                config_.record_task_log));
  group_names_.emplace(name, id);
  publish_group(id, groups_.back().get());
  return id;
}

GroupId Runtime::ensure_group(const std::string& name) {
  support::WriterLock lock(groups_mutex_);
  if (auto it = group_names_.find(name); it != group_names_.end()) {
    return it->second;
  }
  const auto id = static_cast<GroupId>(groups_.size());
  groups_.push_back(
      std::make_unique<TaskGroup>(id, name, 1.0, config_.record_task_log));
  group_names_.emplace(name, id);
  publish_group(id, groups_.back().get());
  return id;
}

void Runtime::set_ratio(GroupId group, double ratio) {
  group_ref(group).set_ratio(ratio);
}

TaskGroup& Runtime::group(GroupId id) { return group_ref(id); }

TaskGroup& Runtime::group_ref(GroupId id) {
  // Lock-free fast path: workers hit this on every LQH dequeue decision.
  // Group objects are heap-stable (unique_ptr) and published with release
  // after construction, so the acquire load is sufficient.
  if (id < kGroupFastTableSize) {
    if (TaskGroup* g = group_table_[id].load(std::memory_order_acquire)) {
      return *g;
    }
  }
  support::ReaderLock lock(groups_mutex_);
  if (id >= groups_.size()) throw std::out_of_range("unknown task group");
  return *groups_[id];
}

GroupReport Runtime::group_report(GroupId id) const {
  support::ReaderLock lock(groups_mutex_);
  if (id >= groups_.size()) throw std::out_of_range("unknown task group");
  return groups_[id]->report();
}

std::vector<GroupReport> Runtime::all_group_reports() const {
  support::ReaderLock lock(groups_mutex_);
  std::vector<GroupReport> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) out.push_back(g->report());
  return out;
}

void Runtime::spawn(TaskOptions options) {
  spawn_impl(std::move(options), /*internal=*/false);
}

void Runtime::spawn_impl(TaskOptions&& options, bool internal) {
  if (!options.accurate) {
    throw std::invalid_argument("task requires an accurate body");
  }

  // Pooled allocation: a recycled slot from this thread's shard (or its
  // remote-free chain) in the steady state — no heap traffic.
  TaskRef task = make_task();
  task->accurate = std::move(options.accurate);
  task->approximate = std::move(options.approximate);
  task->check = std::move(options.check);
  task->max_redos = static_cast<std::uint8_t>(
      std::min<unsigned>(options.max_redos, 255u));
  // §6 check/redo: an accurate task whose validator + redo budget make a
  // corrupted result recoverable may execute on unreliable workers — the
  // partition rule (Scheduler::eligible_for_unreliable) reads this flag.
  task->unreliable_ok = config_.checked_tasks_on_unreliable &&
                        task->check && task->max_redos > 0 &&
                        config_.unreliable_workers > 0;
  task->significance =
      static_cast<float>(std::clamp(options.significance, 0.0, 1.0));
  task->group = options.group;
  // Multi-producer id mint: serve dispatchers, user threads and task bodies
  // all spawn concurrently now, and ids must stay unique — they key the
  // deterministic stream_rng fault stream and task-log attribution.  One
  // relaxed fetch_add; uniqueness needs no ordering.
  task->id = next_task_id_.fetch_add(1, std::memory_order_relaxed);
  task->internal = internal;

  // Nested spawn: record the spawning task (if any) as parent so an
  // in-task taskwait can barrier on exactly its children.  The child pins
  // the parent with one retained reference until its completion performs
  // the counter decrement — the parent may finish its body (and drop the
  // scheduler's in-flight reference) before the child ever runs.
  if (Task* parent = tls_task_frame.runtime == this ? tls_task_frame.task
                                                    : nullptr) {
    parent->retain();
    parent->children.fetch_add(1, std::memory_order_relaxed);
    task->parent = parent;
  }

  TaskGroup& g = group_ref(task->group);
  g.on_spawn(internal);
  // Relaxed: the increment is ordered before the task's publication by the
  // scheduler's release edges; the completion-side decrement stays acq_rel
  // so barrier waiters observe a properly ordered zero crossing.
  pending_.fetch_add(1, std::memory_order_relaxed);

  task->has_footprint = !options.accesses.empty();

  // Spawn fast path: a dependency-free task under a pass-through policy
  // (LQH/agnostic) is runnable the moment it exists — no policy hold, no
  // registration hold, no gate arithmetic at all (the gate stays 0 and the
  // classification happens at dequeue).  This skips three atomic RMWs per
  // task on the hottest spawn path; buffering policies and tasks with
  // in()/out() clauses take the general path below.
  if (!task->has_footprint && pass_through_ && !internal) {
    // Work-first spawn throttle: past the per-worker queue watermark, run
    // the task inline on the spawner instead of enqueueing (the OpenMP
    // task-creation cutoff).  Fan-out loops switch from breadth-first
    // queue growth to depth-first execution, bounding queue memory.  Only
    // on a slot-owning reliable worker (the task is still Undecided and
    // must not execute on an unreliable core), and only to a bounded
    // inline depth — each inlined body may spawn over a still-full queue.
    if (config_.spawn_inline_watermark != 0 &&
        tls_inline_spawn_depth < kMaxInlineSpawnDepth &&
        scheduler_->owns_current_slot() &&
        !scheduler_->current_worker_unreliable() &&
        scheduler_->own_queue_depth() > config_.spawn_inline_watermark) {
      ++tls_inline_spawn_depth;
      inline_spawns_.fetch_add(1, std::memory_order_relaxed);
      scheduler_->run_now(task.detach());  // donate the spawner's reference
      --tls_inline_spawn_depth;
      return;
    }
    scheduler_->enqueue(std::move(task));
    return;
  }

  // Gate arithmetic.  The final hold count is (holds + deps): hold B for
  // this registration (released at the bottom), hold A for policy
  // classification (released by the Policy via IssueSink) — only taken
  // when a buffering policy actually needs it, see below — plus one per
  // unfinished predecessor.  deps is only known *after* registration, and
  // predecessors may complete — and decrement the gate — concurrently with
  // it (the striped tracker hands a completing predecessor's dependents
  // out while the successor's registration is still visiting other
  // stripes).  Seeding the gate with a large spawn hold and then
  // subtracting the surplus makes it impossible for those early decrements
  // to drive the gate to zero before the dependency count is folded in
  // (with a plain initial value of `holds`, two predecessors finishing
  // inside the window double-enqueue the task).
  //
  // Pass-through policies (LQH/agnostic) never buffer: their on_spawn is an
  // immediate release of hold A.  Dependent tasks under them skip the
  // policy hop entirely — no virtual call, one fewer gate RMW — and are
  // classified at dequeue exactly as on the footprint-free fast path.
  // Internal fence tasks do the same (they bypass buffering by contract)
  // but are pinned Accurate here.
  const bool skip_policy = internal || pass_through_;
  const std::uint32_t holds = skip_policy ? 1u : 2u;
  constexpr std::uint32_t kSpawnHold = 1u << 20;
  task->gate.store(kSpawnHold, std::memory_order_relaxed);
  // Footprint-free tasks bypass the tracker entirely: they can neither
  // have predecessors nor ever be one, so both the registration here and
  // the completion lookup skip the tracker's stripe locks.
  const std::size_t deps =
      task->has_footprint ? tracker_.register_node(task.get(), options.accesses)
                          : 0;
  assert(deps + holds < kSpawnHold && "dependency count exceeds the spawn hold");

  if (skip_policy) {
    if (internal) {
      // Internal fence tasks bypass the policy: they are always accurate
      // and must not be delayed by buffering.
      task->kind = ExecutionKind::Accurate;
    }
    // Fold the surplus subtraction and hold B's release into one RMW: the
    // gate reaches zero here exactly when every predecessor already
    // completed inside the registration window.
    const auto sub = kSpawnHold - static_cast<std::uint32_t>(deps);
    if (task->gate.fetch_sub(sub, std::memory_order_acq_rel) == sub) {
      scheduler_->enqueue(std::move(task));  // donate the spawner's reference
    }
    return;
  }

  // After this subtraction the gate reads (holds + deps - completed_preds)
  // >= holds, so the zero crossing can only happen via the releases below.
  task->gate.fetch_sub(kSpawnHold - holds - static_cast<std::uint32_t>(deps),
                       std::memory_order_acq_rel);
  policy_->on_spawn(task, *this);  // will release hold A

  if (task->release_one()) {  // hold B
    scheduler_->enqueue(std::move(task));  // donate the spawner's reference
  }
}

void Runtime::release(const TaskPtr& task) {
  if (task->release_one()) {
    // Donate one fresh reference to the scheduler; the caller keeps its own.
    task->retain();
    scheduler_->enqueue_owned(task.get());
  }
}

void Runtime::release_bulk(const std::vector<TaskPtr>& tasks) {
  // Spawn-batching fast path: a policy window (GTB flush) drops its holds
  // here; every task that becomes runnable is published to the scheduler
  // as one bulk enqueue instead of |window| individual ones.  The ready
  // subset lives in a thread-local scratch buffer — the per-flush
  // std::vector churn of the shared_ptr era is gone.
  thread_local std::vector<Task*> ready;
  ready.clear();
  if (ready.capacity() < tasks.size()) ready.reserve(tasks.size());
  for (const TaskPtr& t : tasks) {
    if (t->release_one()) {
      t->retain();  // the scheduler's in-flight reference
      ready.push_back(t.get());
    }
  }
  scheduler_->enqueue_bulk(ready.data(), ready.size());
  ready.clear();
}

void Runtime::classify_at_dequeue(Task& task, unsigned worker) {
  // Policy dequeue hook, invoked by the scheduler's worker loop right
  // after it wins a task.  GTB-classified tasks pass through untouched;
  // LQH/agnostic tasks arrive Undecided and are decided here, against
  // state local to `worker`.
  if (task.kind == ExecutionKind::Undecided) {
    task.kind = policy_->decide(task, worker, *this);
  }
}

void Runtime::execute_task(Task& task, unsigned worker) {
  ExecutionKind kind = task.kind;
  if (kind == ExecutionKind::Undecided) {
    // The dequeue hook classifies before execution; this fallback only
    // covers policies that decline to decide.
    kind = policy_->decide(task, worker, *this);
  }
  if (kind == ExecutionKind::Approximate && !task.approximate) {
    kind = ExecutionKind::Dropped;  // no approxfun: drop the task (§2)
  }
  // §6 extension: approximate tasks on NTC workers may silently fail; the
  // runtime then treats them as dropped (dependents still release).  The
  // fault stream is deterministic per (seed, task id).
  if (kind == ExecutionKind::Approximate &&
      config_.unreliable_fault_rate > 0.0 &&
      scheduler_->is_unreliable(worker)) {
    auto rng = support::stream_rng(config_.seed, task.id);
    if (rng.uniform() < config_.unreliable_fault_rate) {
      kind = ExecutionKind::Dropped;
      faults_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Normalize before running/completing: a policy that declines to decide
  // must not leak Undecided into completion — the no-op accounting branch
  // would break spawned == accurate + approximate + dropped in reports.
  // Undecided-at-execution is a policy bug (every shipped policy decides by
  // here), so debug builds assert; release builds run the accurate body,
  // the conservative reading of "no decision was made".
  if (kind == ExecutionKind::Undecided) {
    assert(false && "task reached execution still Undecided");
    kind = ExecutionKind::Accurate;
  }
  task.kind = kind;

  TaskGroup& g = group_ref(task.group);
  const double requested = g.ratio();

  // Deterministic injection (armed chaos runs only — one relaxed load when
  // disarmed, folds away entirely when compiled out).  Delay/stall sites
  // fire before the body; the crash site throws inside it; the corrupt
  // site marks the thread so fault-aware kernels write garbage.  Streams
  // key on (task id, attempt) so a redo draws a fresh coin.
  if (fault::armed() && !task.internal &&
      (kind == ExecutionKind::Accurate || kind == ExecutionKind::Approximate)) {
    if (fault::should_fire(fault::Site::TaskDelay, task.id, task.redos_done)) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(fault::param_us(fault::Site::TaskDelay)));
    }
    if (fault::should_fire(fault::Site::WorkerStall, task.id,
                           task.redos_done)) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(fault::param_us(fault::Site::WorkerStall)));
    }
  }

  // Publish this task as the thread's current frame for the body's
  // duration: nested spawns parent to it, and an in-task taskwait detects
  // the helping path through it.  Save/restore (not set/clear) keeps the
  // outer frame correct when a helping barrier re-enters execute_task.
  const ThreadTaskFrame saved_frame = tls_task_frame;
  tls_task_frame = {this, &task, &saved_frame};
  std::exception_ptr body_error;
  bool injected_crash = false;
  bool check_rejected = false;
  try {
    switch (kind) {
      case ExecutionKind::Accurate: {
        if (fault::armed() && !task.internal &&
            fault::should_fire(fault::Site::TaskCrash, task.id,
                               task.redos_done)) {
          throw fault::InjectedFault("injected task-body crash");
        }
        if (fault::armed() && !task.internal && task.check &&
            scheduler_->is_unreliable(worker) &&
            fault::should_fire(fault::Site::TaskCorrupt, task.id,
                               task.redos_done)) {
          fault::ScopedCorrupt corrupt_scope;
          task.accurate();
        } else {
          task.accurate();
        }
        // The check/redo validator runs on the executing worker, right
        // after a successful body: false = the result is corrupted.
        if (task.check && !task.check()) check_rejected = true;
        break;
      }
      case ExecutionKind::Approximate:
        if (fault::armed() && !task.internal &&
            fault::should_fire(fault::Site::TaskCrash, task.id,
                               task.redos_done)) {
          throw fault::InjectedFault("injected task-body crash");
        }
        task.approximate();
        break;
      case ExecutionKind::Dropped:
      case ExecutionKind::Undecided:
        break;  // dropped: complete without running a body
    }
  } catch (const fault::InjectedFault&) {
    injected_crash = true;
    body_error = std::current_exception();
  } catch (...) {
    body_error = std::current_exception();
  }
  tls_task_frame = saved_frame;

  // Approximate tasks keep drop-on-fault semantics: an injected crash
  // accounts as a drop (dependents still release), never as a barrier
  // error — exactly like the §6 NTC silent-fault path above.
  if (injected_crash && kind == ExecutionKind::Approximate) {
    kind = ExecutionKind::Dropped;
    task.kind = kind;
    faults_.fetch_add(1, std::memory_order_relaxed);
    body_error = nullptr;
  }

  // Check/redo: a failed or check-rejected *accurate* task with budget left
  // is re-executed instead of failing the barrier.  Re-enqueueing the same
  // Task slot (no fresh allocation) and returning early keeps every
  // downstream effect — tracker completion, group accounting, parent
  // decrement, pending_ — held until the final verdict, so dependents and
  // barriers simply keep waiting.  Clearing unreliable_ok routes the retry
  // into the reliable-only partition.
  if ((body_error || check_rejected) && kind == ExecutionKind::Accurate &&
      !task.internal && task.redos_done < task.max_redos) {
    ++task.redos_done;
    task.unreliable_ok = false;
    g.on_redo(check_rejected);
#ifndef NDEBUG
    // The slot is being intentionally re-enqueued; reset the double-enqueue
    // detector armed by the first dispatch.
    task.debug_enqueues.store(0, std::memory_order_relaxed);
#endif
    task.retain();  // run_task releases the current in-flight reference
    scheduler_->enqueue_owned(&task);
    return;
  }

  if (!body_error && check_rejected) {
    // Budget exhausted with a still-rejected result: count the final
    // rejection (redone attempts were counted by on_redo) and surface it
    // like a thrown body so the barrier reports the corruption.
    g.on_corruption_detected();
    body_error = std::make_exception_ptr(std::runtime_error(
        "sigrt: task result rejected by check() after exhausting max_redos"));
  }
  if (body_error) {
    support::MutexLock lock(error_mutex_);
    if (!first_error_) first_error_ = body_error;
  }

  // Completion order matters: downstream tasks must only start after this
  // task's side effects are visible.  The striped tracker guarantees it
  // through the node-state publish protocol: complete() stores done_ with
  // release under the node's lock, and a racing registration that skips
  // the edge observes it with acquire (dependents handed out here ride the
  // scheduler's publication edges instead).
  // Multiple dependents becoming runnable at once go out as one batch.
  // Scratch frames are leased from a per-thread pool (capacity-stable, so
  // steady-state completions touch no allocator) rather than being a flat
  // thread_local: execute_task is re-entrant under helping barriers, and a
  // frame per completion section stays correct at any nesting depth.
  if (task.has_footprint) {
    CompletionScratch* scratch = acquire_scratch();
    tracker_.complete(task, scratch->dependents);
    for (dep::Node* node : scratch->dependents) {
      // The tracker's dependents are always Tasks; each pointer carries one
      // adopted reference that either transfers to the scheduler or drops.
      Task* dep_task = static_cast<Task*>(node);
      if (dep_task->release_one()) {
        scratch->ready.push_back(dep_task);
      } else {
        dep_task->release();
      }
    }
    if (scratch->ready.size() == 1) {
      // Post-body release: this worker pops the lone dependent next, so
      // the scheduler may skip the thief wake (see enqueue_released).
      scheduler_->enqueue_released(scratch->ready.front());
    } else if (!scratch->ready.empty()) {
      scheduler_->enqueue_bulk(scratch->ready.data(), scratch->ready.size());
    }
    release_scratch(scratch);
  }

  g.on_complete(kind, task.significance, requested, task.internal, worker);

  // Nested barrier accounting: this completion is what an in-task taskwait
  // in the parent is waiting for.  acq_rel pairs with the waiter's acquire
  // load, ordering this task's side effects (and its on_complete above)
  // before the barrier opens; then drop the child's pin on the parent.
  if (Task* parent = task.parent) {
    if (parent->children.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last child: wake a parked taskwait waiter (event_wakeup).  The
      // fence pairs Dekker-style with the waiter's register-then-recheck
      // (see parker.hpp): either this load sees the registered handle, or
      // the waiter's post-registration recheck sees children == 0.  The
      // notify must precede parent->release(): the waiter slot lives in
      // the parent, which this release may recycle.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (BarrierWaiter* w = parent->waiter.load(std::memory_order_acquire)) {
        w->notify();
      }
    }
    parent->release();
  }

  on_task_finished();
}

void Runtime::on_task_finished() {
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    support::MutexLock lock(wait_mutex_);
    wait_cv_.notify_all();
  }
}

template <typename Done>
void Runtime::help_until(Done done, Task* wtask, TaskGroup* wgroup) {
  // Helping barrier: a worker inside a task body must never block its OS
  // thread on a barrier — every worker doing so (recursive fan-out does
  // exactly this) would deadlock the pool.  Instead the waiter keeps
  // executing tasks: its own deque first (where its children just landed),
  // then inbox/steals.
  //
  // Each nested barrier frame deepens the C++ stack by whatever the helped
  // bodies use, so helping depth is capped (config_.helping_depth): a
  // waiter past the cap hands its worker slot to a spare thread
  // (detach_for_blocking) and blocks for real — parallelism survives on
  // the spare, the stack stops growing here.  When the spare budget is
  // exhausted, liveness wins over the stack bound and the waiter keeps
  // helping.
  struct DepthFrame {
    unsigned& depth;
    explicit DepthFrame(unsigned& d) : depth(d) { ++depth; }
    ~DepthFrame() { --depth; }
  } depth_frame(tls_help_depth);

  // Event-driven wakeup needs a completion-side scope to hook: a task's
  // last child (wtask) or a group's quiescence (wgroup).  Without one
  // (wait_on's fence flag), or with event_wakeup off, fall back to the
  // poll backoff — yield escalating to 50 µs sleeps, the PR-5 baseline.
  const bool event = config_.event_wakeup && !scheduler_->inline_mode() &&
                     (wtask != nullptr || wgroup != nullptr);
  // Blocked mode: this thread no longer owns a worker slot (an enclosing
  // barrier or BlockingSection already detached it) — it must not execute
  // further task bodies on this stack, only park on its Parker.
  bool blocked_mode = event && !scheduler_->owns_current_slot();

  BarrierWaiter* waiter = nullptr;  // registered lazily, on first park
  int idle = 0;
  while (!done()) {
    if (event && !blocked_mode && tls_help_depth > config_.helping_depth &&
        scheduler_->detach_for_blocking()) {
      blocked_mode = true;
    }
    if (!blocked_mode && scheduler_->help_one()) {
      idle = 0;
      continue;
    }
    if (++idle < 16) {
      std::this_thread::yield();
      continue;
    }
    // Nothing acquirable but the barrier still holds.  Under a buffering
    // policy, re-flush before sleeping: a task executed meanwhile (here or
    // on another worker) may have spawned into a window, and the barrier's
    // entry-time flush cannot have seen it — without this the awaited task
    // sits in the buffer forever.
    if (!pass_through_) policy_->flush(kAllGroups, *this);
    if (!event) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    // Park until the completion side notifies (see parker.hpp for the
    // Dekker pairing with the completer).  Registration happens once and
    // stays in place across parks; buffering policies use timed parks so
    // the flush above re-runs periodically.
    if (waiter == nullptr) {
      waiter = this_thread_waiter();
      if (wtask != nullptr) {
        wtask->waiter.store(waiter, std::memory_order_release);
      } else if (wgroup != nullptr) {  // always true here; placates -Wnonnull
        wgroup->add_intask_waiter(waiter);
      }
    }
    if (blocked_mode) {
      waiter->sched.store(nullptr, std::memory_order_release);
      waiter->parker.prepare_park();
      if (done()) {
        waiter->parker.cancel_park();
        break;
      }
      if (pass_through_) {
        waiter->parker.park();
      } else {
        waiter->parker.park_for(std::chrono::microseconds(1000));
      }
    } else {
      // Slot-owning waiter parks on its scheduler eventcount slot, so
      // producer wakes (new work published to this worker) reach it too —
      // it surfaces, helps, and re-parks.  The completion notify routes
      // through sched_notify -> Scheduler::notify_worker.
      waiter->worker.store(scheduler_->current_worker(),
                           std::memory_order_relaxed);
      waiter->sched_notify.store(
          [](void* s, unsigned i) {
            static_cast<Scheduler*>(s)->notify_worker(i);
          },
          std::memory_order_relaxed);
      waiter->sched.store(scheduler_.get(), std::memory_order_release);
      scheduler_->park_worker_for_barrier(
          [](void* ctx) { return (*static_cast<Done*>(ctx))(); }, &done,
          pass_through_ ? std::chrono::microseconds(0)
                        : std::chrono::microseconds(1000));
    }
  }
  if (waiter != nullptr) {
    if (wtask != nullptr) {
      wtask->waiter.store(nullptr, std::memory_order_release);
    } else if (wgroup != nullptr) {
      wgroup->remove_intask_waiter(waiter);
    }
    waiter->sched.store(nullptr, std::memory_order_release);
  }
}

void Runtime::wait_all() {
  policy_->flush(kAllGroups, *this);
  if (Task* self = tls_task_frame.runtime == this ? tls_task_frame.task
                                                  : nullptr) {
    // In-task taskwait (OpenMP semantics): barrier over THIS task's
    // children only.  A global pending==0 barrier would count the waiting
    // task itself — and any sibling waiter — and never open.
    help_until(
        [self] {
          return self->children.load(std::memory_order_acquire) == 0;
        },
        /*wtask=*/self);
    rethrow_pending_error();
    return;
  }
  blocking_wait([this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
  rethrow_pending_error();
}

template <typename Done>
void Runtime::blocking_wait(Done done) {
  support::MutexLock lock(wait_mutex_);
  if (pass_through_) {
    // Nothing ever sits in a pass-through policy: a pure sleep, woken by
    // the barrier condition's crossing.  (A timed poll here measurably
    // preempts the workers on single-CPU boxes — keep it wake-driven.)
    wait_cv_.wait(lock.native(), done);
    return;
  }
  // Buffering policy: task bodies may spawn into a window DURING this
  // barrier (nested spawn with no in-task taskwait), and the barrier's
  // entry flush cannot have seen those — re-flush on every timeout so the
  // barrier stays live.  The condition's wake still arrives immediately.
  while (!wait_cv_.wait_for(lock.native(), std::chrono::milliseconds(1), done)) {
    lock.unlock();
    policy_->flush(kAllGroups, *this);
    lock.lock();
  }
}

void Runtime::wait_group(GroupId group) {
  // Flush every buffer, not only `group`: a task of this group may depend
  // on a still-buffered task of another group, and a partial flush would
  // deadlock the barrier.
  policy_->flush(kAllGroups, *this);
  TaskGroup& g = group_ref(group);
  if (tls_task_frame.runtime == this && tls_task_frame.task != nullptr) {
    // In-task group barrier: help until the group quiesces.  First, fail
    // fast on the self-deadlock shapes (the ROADMAP carry-over): a member
    // of `group` waiting on its own group stays pending until after its
    // body returns, so the barrier it spins on can never open once a
    // second member does the same — and the hazard arises transitively
    // when a helping barrier has SUSPENDED another task of `group` beneath
    // this one on the worker's stack (an in-task wait_all picked it up;
    // it cannot complete while we spin above it).  The frame chain
    // enumerates exactly the tasks this thread has suspended, so any
    // `group` member on it means the wait can hang — throw instead of
    // deadlocking.  Prefer in-task wait_all (children scope, immune by
    // construction) or wait on groups whose tasks do not themselves
    // barrier.
    for (const ThreadTaskFrame* f = &tls_task_frame; f != nullptr;
         f = f->prev) {
      if (f->runtime == this && f->task != nullptr &&
          f->task->group == group) {
        throw std::logic_error(
            "sigrt: wait_group(" + group_ref(group).name() +
            ") from inside a task of that group would deadlock: the "
            "waiting/suspended task stays pending until its body returns, "
            "so the group can never quiesce under it; wait_all() scopes to "
            "children and is safe here");
      }
    }
    help_until([&g] { return g.pending() == 0; }, /*wtask=*/nullptr,
               /*wgroup=*/&g);
    rethrow_pending_error();
    return;
  }
  // Same split as wait_all: wake-driven under pass-through policies, a
  // timed re-flush loop under buffering ones (a body may spawn group
  // members into a window during the barrier).
  if (pass_through_) {
    g.wait();
  } else {
    while (!g.wait_for(std::chrono::milliseconds(1))) {
      policy_->flush(kAllGroups, *this);
    }
  }
  rethrow_pending_error();
}

void Runtime::wait_on(const void* ptr, std::size_t bytes) {
  policy_->flush(kAllGroups, *this);

  // A fence task with an in() clause on the range depends on exactly the
  // pending writers of that range; its completion raises `done`.  The
  // flag lives on this stack frame: both exits below strictly outlive the
  // fence's completion.
  std::atomic<bool> done{false};
  const bool helping =
      tls_task_frame.runtime == this && tls_task_frame.task != nullptr;
  TaskOptions fence;
  fence.accurate = [this, &done] {
    done.store(true, std::memory_order_release);
    // Blocking (non-helping) waiters sleep on wait_cv_; the lock/notify
    // pair closes their check-then-sleep window.  Helping waiters poll.
    support::MutexLock lock(wait_mutex_);
    wait_cv_.notify_all();
  };
  fence.significance = 1.0;
  fence.group = kDefaultGroup;
  fence.accesses.push_back({ptr, bytes, dep::Mode::In});
  spawn_impl(std::move(fence), /*internal=*/true);
  if (helping) {
    help_until([&done] { return done.load(std::memory_order_acquire); });
  } else {
    // blocking_wait's re-flush also covers the fence: a concurrent
    // spawner may have registered a writer of this range in the tracker
    // and then parked it in a window AFTER our entry flush.
    blocking_wait([&done] { return done.load(std::memory_order_acquire); });
  }
  rethrow_pending_error();
}

bool Runtime::begin_blocking() {
  // Only meaningful from inside a task body of this runtime: the handoff
  // trades the worker slot for a spare thread so the pool keeps its width
  // while this body blocks on something external.
  if (!config_.event_wakeup) return false;
  if (tls_task_frame.runtime != this || tls_task_frame.task == nullptr) {
    return false;
  }
  return scheduler_->detach_for_blocking();
}

PoolStats Runtime::pool_stats() const { return scheduler_->pool_stats(); }

std::vector<std::pair<std::uint64_t, std::uint64_t>> Runtime::steal_locality()
    const {
  return scheduler_->steal_locality();
}

void Runtime::rethrow_pending_error() {
  std::exception_ptr err;
  {
    support::MutexLock lock(error_mutex_);
    std::swap(err, first_error_);
  }
  if (err) std::rethrow_exception(err);
}

RuntimeStats Runtime::stats() const {
  RuntimeStats s;
  {
    support::ReaderLock lock(groups_mutex_);
    for (const auto& g : groups_) {
      const GroupReport r = g->report();
      s.spawned += r.spawned;
      s.accurate += r.accurate;
      s.approximate += r.approximate;
      s.dropped += r.dropped;
      s.redone += r.redone;
      s.corrupted_detected += r.corrupted_detected;
    }
  }
  const SchedulerStats sched = scheduler_->stats();
  s.steals = sched.steals;
  s.inline_spawns = inline_spawns_.load(std::memory_order_relaxed);
  s.faults = faults_.load(std::memory_order_relaxed);
  s.busy_s = static_cast<double>(sched.busy_ns) * 1e-9;
  s.wall_s = static_cast<double>(support::now_ns() - start_ns_) * 1e-9;
  s.dep_edges = tracker_.stats().edges;
  return s;
}

void Runtime::dump_state(FILE* out) const {
  std::fprintf(out, "runtime: pending=%llu policy=%s\n",
               static_cast<unsigned long long>(pending_.load()),
               policy_->name());
  {
    support::ReaderLock lock(groups_mutex_);
    for (const auto& g : groups_) {
      std::fprintf(out, "  group %u '%s': pending=%llu ratio=%.3f\n", g->id(),
                   g->name().c_str(),
                   static_cast<unsigned long long>(g->pending()), g->ratio());
    }
  }
  scheduler_->dump(out);
}

energy::Activity Runtime::activity_now() const {
  energy::Activity a;
  a.wall_s = static_cast<double>(support::now_ns() - start_ns_) * 1e-9;
  const auto [reliable_ns, unreliable_ns] = scheduler_->busy_ns_split();
  a.busy_s = static_cast<double>(reliable_ns) * 1e-9;
  a.busy_unreliable_s = static_cast<double>(unreliable_ns) * 1e-9;
  return a;
}

}  // namespace sigrt
