// Cache/package topology discovery (hwloc-style, sysfs-backed) driving
// placement decisions across the runtime:
//
//   * steal order — workers steal nearest-first (SMT sibling, then
//     LLC-sharing cores, then same package, then remote sockets) instead
//     of uniformly at random, so a steal is a cache transfer before it is
//     a memory round trip;
//   * shard/stripe placement — the dependence tracker's stripe count and
//     the serve tier's dispatcher/poller counts default to values sized
//     from the discovered core/LLC-group counts instead of constants;
//   * kernel tiling — the per-CPU L2 size bounds the column-strip width
//     the Sobel row kernel tiles to (apps/sobel).
//
// The probe reads /sys/devices/system/cpu once and falls back to a flat
// single-socket model (hardware_concurrency CPUs, one LLC group) when
// sysfs is absent or partial — containers and non-Linux builds get sane
// defaults, never an error.  probe(root) takes the sysfs root as a
// parameter so tests can point it at a fabricated tree.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sigrt::topo {

/// One logical CPU's placement coordinates.  Ids are dense renumberings
/// (0..n-1 per field), not raw sysfs ids.
struct CpuInfo {
  unsigned cpu = 0;      ///< logical cpu number (sysfs cpuN)
  unsigned package = 0;  ///< socket
  unsigned core = 0;     ///< physical core (SMT siblings share one)
  unsigned llc = 0;      ///< last-level-cache sharing group
};

struct Topology {
  std::vector<CpuInfo> cpus;  ///< online CPUs, ascending cpu number
  unsigned packages = 1;
  unsigned cores = 1;
  unsigned llc_groups = 1;
  std::size_t l2_bytes = 0;   ///< per-CPU L2 size (0 = unknown)
  std::size_t llc_bytes = 0;  ///< shared LLC size (0 = unknown)
  bool from_sysfs = false;    ///< false: the flat fallback model

  [[nodiscard]] unsigned cpu_count() const noexcept {
    return static_cast<unsigned>(cpus.size());
  }

  /// Distance tier between two *workers* (0 = SMT siblings, 1 = shared
  /// LLC, 2 = same package, 3 = remote).  Workers are assumed resident on
  /// cpus[w % cpu_count()] — the runtime does not pin, so this is the
  /// scheduler's best placement estimate, and on a flat model every pair
  /// is tier 1.
  [[nodiscard]] unsigned worker_distance(unsigned a, unsigned b) const noexcept;

  /// Victim order for worker `self` out of `workers` total: every other
  /// worker exactly once, grouped by ascending worker_distance (ties in
  /// ring order from self+1, so same-tier victims still spread).
  [[nodiscard]] std::vector<unsigned> steal_order(unsigned self,
                                                  unsigned workers) const;

  /// First victim index in steal_order(self, ·) that is NOT near (tier
  /// >= 2): victims before it share a cache with the thief.  Equals the
  /// order's size when every victim is near.
  [[nodiscard]] std::size_t near_victims(unsigned self,
                                         unsigned workers) const;

  /// Dependence-tracker stripe count for `workers` workers: a power of
  /// two in [8, 64], roughly 4 stripes per worker so stripe collisions
  /// stay rare without blowing the stripe-mask width (uint64_t).
  [[nodiscard]] unsigned recommended_stripes(unsigned workers) const noexcept;

  /// Serve-tier dispatcher thread count: one per LLC group, bounded by
  /// half the worker pool (dispatchers only route; workers execute).
  [[nodiscard]] unsigned recommended_dispatchers(
      unsigned workers) const noexcept;

  /// Net-frontend poller thread count: one per LLC group.
  [[nodiscard]] unsigned recommended_pollers() const noexcept;
};

/// Probes `sysfs_root` (e.g. "/sys") for cpu topology; returns the flat
/// fallback when the tree is missing or unparsable.
[[nodiscard]] Topology probe(const std::string& sysfs_root);

/// The flat single-socket model: `ncpu` CPUs, one package, one LLC group,
/// one core per CPU.
[[nodiscard]] Topology fallback(unsigned ncpu);

/// The host's topology, probed once (thread-safe, cached).
[[nodiscard]] const Topology& system_topology();

}  // namespace sigrt::topo
