// Task groups: the label() clause of the programming model.
//
// A group carries the programmer's accurate-execution ratio() and is the
// unit of barrier synchronization (taskwait label(...)) and of the quality
// accounting reported in Table 2 of the paper.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "support/mutex.hpp"

namespace sigrt {

struct BarrierWaiter;  // core/parker.hpp

/// One (significance, outcome) observation; the per-group log of these
/// drives the Table 2 metrics.
struct TaskRecord {
  float significance = 1.0f;
  ExecutionKind kind = ExecutionKind::Accurate;
};

/// Snapshot of a group's accounting, safe to read after a barrier.
struct GroupReport {
  GroupId id = kDefaultGroup;
  std::string name;
  double requested_ratio = 1.0;  ///< ratio() in effect when the report was taken

  std::uint64_t spawned = 0;
  std::uint64_t accurate = 0;
  std::uint64_t approximate = 0;  ///< ran the approxfun body
  std::uint64_t dropped = 0;      ///< approximated with no approxfun

  /// Accurate executions that were re-run after a body fault or a check()
  /// rejection (one count per re-execution, not per task).
  std::uint64_t redone = 0;

  /// check() rejections — silent corruptions the validator caught (whether
  /// or not redo budget remained to fix them).
  std::uint64_t corrupted_detected = 0;

  /// Mean of the ratio() values in effect when each task was classified;
  /// robust to programs that retarget the ratio between phases (e.g.
  /// Fluidanimate alternating 1.0 / 0.0).
  double mean_requested_ratio = 1.0;

  /// Fraction of tasks actually executed accurately.
  [[nodiscard]] double provided_ratio() const noexcept {
    const std::uint64_t total = accurate + approximate + dropped;
    return total == 0 ? 1.0 : static_cast<double>(accurate) / static_cast<double>(total);
  }

  /// |requested - provided|: the per-group term of Table 2's "Average Ratio
  /// Diff" column.
  [[nodiscard]] double ratio_diff() const noexcept {
    const double d = mean_requested_ratio - provided_ratio();
    return d < 0 ? -d : d;
  }

  /// Fraction of tasks that were approximated/dropped even though some task
  /// of strictly lower significance in the same group ran accurately —
  /// Table 2's "% Inversed Significance Tasks".
  double inversion_fraction = 0.0;
};

/// Thread-safe group state.  The master spawns into it; workers complete
/// tasks against it; any thread may barrier-wait on it.
class TaskGroup {
 public:
  TaskGroup(GroupId id, std::string name, double ratio, bool record_log);

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  [[nodiscard]] GroupId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// The ratio() knob.  May be retargeted between phases — or continuously,
  /// from any thread (a relaxed atomic: concurrent classifications observe
  /// either value); policies read the value current at classification time.
  void set_ratio(double ratio) noexcept {
    ratio_.store(ratio, std::memory_order_relaxed);
  }
  [[nodiscard]] double ratio() const noexcept {
    return ratio_.load(std::memory_order_relaxed);
  }

  /// Spawn side (any thread): a task joined this group.  Internal tasks
  /// (wait_on fences) count toward the barrier (`pending`) but not toward
  /// `spawned`, mirroring on_complete's exclusion — so every report obeys
  /// spawned == accurate + approximate + dropped once the group quiesces.
  void on_spawn(bool internal = false) noexcept;

  /// Worker side: a task of this group finished with outcome `kind`.
  /// `requested` is the ratio in effect when the task was classified.
  /// `worker_slot` routes the task-record append to a per-worker log shard
  /// (pass the executing worker's index); callers without a worker
  /// identity (tests, external completions) omit it and share the
  /// fallback shard — the only shard whose mutex ever sees contention.
  void on_complete(ExecutionKind kind, float significance, double requested,
                   bool internal, unsigned worker_slot = kNoWorkerSlot) noexcept;

  /// Worker side: an accurate task of this group is being re-executed after
  /// a fault or a check() rejection (`corrupted` = the validator rejected a
  /// completed result, i.e. a silent corruption was detected).  The task
  /// stays pending — this only feeds the resilience counters.
  void on_redo(bool corrupted) noexcept {
    redone_.fetch_add(1, std::memory_order_relaxed);
    if (corrupted) corrupted_detected_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Worker side: check() rejected a result but no redo budget remains (the
  /// error surfaces at the barrier instead).
  void on_corruption_detected() noexcept {
    corrupted_detected_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Sentinel worker_slot for callers with no worker identity.
  static constexpr unsigned kNoWorkerSlot = ~0u;

  /// Blocks until every spawned task has completed.
  void wait() const;

  /// Bounded wait: blocks until the group quiesced or `timeout` elapsed;
  /// returns true when pending reached zero.  Runtime barriers use this to
  /// interleave waiting with policy re-flushes — a task body may spawn
  /// into a buffering policy's window DURING the barrier, and the window
  /// would otherwise never flush.
  [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout) const;

  [[nodiscard]] std::uint64_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  /// Event-driven in-task barrier support: registers/removes a parked
  /// waiter handle to be notified when the group quiesces (pending reaches
  /// zero).  Registration shares wait_mutex_ with the quiescence broadcast,
  /// so a register that races the last completion either sees pending==0 on
  /// its own re-check or is woken by the broadcast.  Waiters self-remove;
  /// the vector keeps its capacity, so the steady state allocates nothing.
  void add_intask_waiter(BarrierWaiter* w);
  void remove_intask_waiter(BarrierWaiter* w);

  /// Accounting snapshot (includes the inversion scan over the task log).
  [[nodiscard]] GroupReport report() const;

  /// Clears counters and the task log (not the ratio).  Must only be called
  /// while the group has no pending tasks.
  void reset_stats();

 private:
  const GroupId id_;
  const std::string name_;
  const bool record_log_;
  std::atomic<double> ratio_;

  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> accurate_{0};
  std::atomic<std::uint64_t> approximate_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> redone_{0};
  std::atomic<std::uint64_t> corrupted_detected_{0};

  mutable support::Mutex wait_mutex_;
  mutable std::condition_variable wait_cv_;

  /// Parked in-task waiters.  Cold path: only waiters that exhausted all
  /// acquirable work land here.
  std::vector<BarrierWaiter*> intask_waiters_ SIGRT_GUARDED_BY(wait_mutex_);

  // Task-record log, sharded by executing worker so the per-completion
  // append never crosses a contended lock: worker w appends to shard
  // (w & kLogShardMask) — single writer, so its mutex is uncontended
  // except against a concurrent report()/reset_stats() merge — and
  // callers without a worker identity share the extra fallback shard,
  // the only one whose mutex serializes writers.  report() merges the
  // shards lazily (it is the cold path).
  static constexpr unsigned kLogShards = 16;  // power of two
  static constexpr unsigned kLogShardMask = kLogShards - 1;
  struct alignas(64) LogShard {
    mutable support::Mutex mutex;
    std::vector<TaskRecord> log SIGRT_GUARDED_BY(mutex);
    /// Sum of ratio() at each classification.
    double requested_mass SIGRT_GUARDED_BY(mutex) = 0.0;
  };
  std::array<LogShard, kLogShards + 1> log_shards_;  // +1: fallback shard

  [[nodiscard]] LogShard& shard_for(unsigned worker_slot) noexcept {
    return worker_slot == kNoWorkerSlot
               ? log_shards_[kLogShards]
               : log_shards_[worker_slot & kLogShardMask];
  }
};

}  // namespace sigrt
