// Pragma-surface emulation layer.
//
// The paper lowers `#pragma omp task ...` / `#pragma omp taskwait ...`
// through the SCOOP source-to-source compiler [26] into runtime calls
// (§2, §3.1).  Without shipping a compiler, this header provides the same
// clause-for-clause surface as a fluent API, so ported code reads like the
// annotated original:
//
//   // #pragma omp task label(sobel) in(img) out(res_row) ...
//   //     significant((i%9+1)/10.0) approxfun(sbl_task_appr)
//   omp_task(rt, [&] { sbl_task(res, img, i); })
//       .label("sobel")
//       .in(img.data(), img.size())
//       .out(res.row(i), W)
//       .significant((i % 9 + 1) / 10.0)
//       .approxfun([&] { sbl_task_appr(res, img, i); });
//
//   // #pragma omp taskwait label(sobel) ratio(0.35)
//   omp_taskwait(rt).label("sobel").ratio(0.35);
//
// Clause semantics match the paper exactly; see DESIGN.md §2 for the
// substitution rationale.  The statement "executes" at the end of the full
// expression (destructor), like a pragma applying to the following line.
//
// Nesting works exactly as in OpenMP: a task body may itself issue
// omp_task (the child parents to the enclosing task) and omp_taskwait
// (which, inside a task, barriers on that task's children via the
// runtime's helping loop — the worker never blocks).  See
// examples/fib_recursive.cpp for the divide-and-conquer idiom.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/runtime.hpp"

namespace sigrt {

/// Builder behind omp_task(); spawns on destruction.
class PragmaTask {
 public:
  template <class F>
  PragmaTask(Runtime& rt, F&& body) : rt_(rt) {
    options_.accurate = std::forward<F>(body);
  }

  PragmaTask(const PragmaTask&) = delete;
  PragmaTask& operator=(const PragmaTask&) = delete;

  /// significant(expr) — task significance in [0,1].
  PragmaTask& significant(double s) {
    options_.significance = s;
    return *this;
  }

  /// approxfun(f) — the approximate task body.  Captures within the 64-byte
  /// InlineFn small-buffer limit spawn without heap allocation.
  template <class F>
  PragmaTask& approxfun(F&& fn) {
    options_.approximate = std::forward<F>(fn);
    return *this;
  }

  /// label(name) — task-group membership; the group is created on first use
  /// (tpc_init_group in the paper's runtime API, §3.1) with ratio 1.0 until
  /// a taskwait retargets it.
  PragmaTask& label(const std::string& name) {
    label_ = name;
    return *this;
  }

  /// in(...) / out(...) / inout(...) — data-flow clauses.
  template <typename T>
  PragmaTask& in(const T* p, std::size_t count = 1) {
    options_.accesses.push_back(dep::in(p, count));
    return *this;
  }
  template <typename T>
  PragmaTask& out(T* p, std::size_t count = 1) {
    options_.accesses.push_back(dep::out(p, count));
    return *this;
  }
  template <typename T>
  PragmaTask& inout(T* p, std::size_t count = 1) {
    options_.accesses.push_back(dep::inout(p, count));
    return *this;
  }

  ~PragmaTask() noexcept(false) {
    if (label_) {
      options_.group = rt_.ensure_group(*label_);
    }
    rt_.spawn(std::move(options_));
  }

 private:
  Runtime& rt_;
  TaskOptions options_;
  std::optional<std::string> label_;
};

/// Builder behind omp_taskwait(); waits on destruction.
class PragmaTaskwait {
 public:
  explicit PragmaTaskwait(Runtime& rt) : rt_(rt) {}

  PragmaTaskwait(const PragmaTaskwait&) = delete;
  PragmaTaskwait& operator=(const PragmaTaskwait&) = delete;

  /// label(name) — barrier over one task group instead of all tasks.
  PragmaTaskwait& label(const std::string& name) {
    label_ = name;
    return *this;
  }

  /// ratio(r) — minimum fraction of the group's tasks executed accurately.
  PragmaTaskwait& ratio(double r) {
    ratio_ = r;
    return *this;
  }

  /// on(ptr, bytes) — wait only for tasks affecting the given range.
  PragmaTaskwait& on(const void* ptr, std::size_t bytes) {
    on_ptr_ = ptr;
    on_bytes_ = bytes;
    return *this;
  }

  // Clause-application order is part of the contract: ratio() lands BEFORE
  // the wait in every branch, because the wait's policy flush is what
  // classifies a GTB-buffered barrier window — applied after, the window
  // would be classified at the stale ratio.  tests/pragma_test.cpp pins
  // this ordering.
  ~PragmaTaskwait() noexcept(false) {
    if (label_) {
      const GroupId g = rt_.ensure_group(*label_);
      if (ratio_) rt_.set_ratio(g, *ratio_);
      rt_.wait_group(g);
    } else if (on_ptr_ != nullptr) {
      // An unlabeled ratio() targets the default group (as in the plain
      // taskwait branch below) — previously the clause was silently
      // dropped when combined with on().
      if (ratio_) rt_.set_ratio(kDefaultGroup, *ratio_);
      rt_.wait_on(on_ptr_, on_bytes_);
    } else {
      if (ratio_) rt_.set_ratio(kDefaultGroup, *ratio_);
      rt_.wait_all();
    }
  }

 private:
  Runtime& rt_;
  std::optional<std::string> label_;
  std::optional<double> ratio_;
  const void* on_ptr_ = nullptr;
  std::size_t on_bytes_ = 0;
};

/// tpc_init_group(): the call the paper's compiler inserts on the first use
/// of a task group (§3.1), hoisting the taskwait's ratio() clause so that
/// classification policies know the ratio *before* tasks start flowing.
/// Programs using bounded GTB (whose windows flush mid-loop) must declare
/// the ratio up front this way; with GTB(MaxBuffer) the barrier's ratio()
/// clause alone suffices because classification happens at the flush.
inline GroupId tpc_init_group(Runtime& rt, const std::string& name, double ratio) {
  return rt.create_group(name, ratio);
}

/// #pragma omp task — the returned builder takes the clause chain.
template <class F>
[[nodiscard]] PragmaTask omp_task(Runtime& rt, F&& body) {
  return PragmaTask(rt, std::forward<F>(body));
}

/// #pragma omp taskwait — the returned builder takes the clause chain.
[[nodiscard]] inline PragmaTaskwait omp_taskwait(Runtime& rt) {
  return PragmaTaskwait(rt);
}

}  // namespace sigrt
