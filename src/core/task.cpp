#include "core/task.hpp"

namespace sigrt {

// Out of line so task.hpp does not need the pool instance at every include
// site; the slot was reset by reset_for_reuse() inside recycle().
void Task::recycle_to_pool() noexcept { TaskPool::instance().recycle(this); }

TaskRef make_task() {
  Task* t = TaskPool::instance().allocate();
  // Relaxed: publication to other threads rides on the scheduler's and
  // tracker's own release/acquire edges.
  t->refs_.store(1, std::memory_order_relaxed);
  return TaskRef::adopt(t);
}

}  // namespace sigrt
