#include "core/policy.hpp"

#include "core/policy_agnostic.hpp"
#include "core/policy_gtb.hpp"
#include "core/policy_lqh.hpp"

namespace sigrt {

namespace {

/// The "ideal case" of §3.2: full a-priori knowledge of every task in a
/// group.  Operationally identical to GTB with an unbounded buffer — the
/// distinct name keeps experiment tables and tests readable, and the GTB ==
/// Oracle equivalence is itself a tested invariant.
class OraclePolicy final : public GtbPolicy {
 public:
  OraclePolicy() : GtbPolicy(SIZE_MAX, /*max_buffer=*/true) {}
  [[nodiscard]] const char* name() const noexcept override { return "oracle"; }
};

}  // namespace

std::unique_ptr<Policy> make_policy(const RuntimeConfig& config) {
  switch (config.policy) {
    case PolicyKind::Agnostic:
      return std::make_unique<AgnosticPolicy>();
    case PolicyKind::GTB:
      return std::make_unique<GtbPolicy>(config.gtb_buffer);
    case PolicyKind::GTBMaxBuffer:
      return std::make_unique<GtbPolicy>(SIZE_MAX, /*max_buffer=*/true);
    case PolicyKind::LQH:
      return std::make_unique<LqhPolicy>(config.lqh_levels,
                                         std::max(1u, config.workers));
    case PolicyKind::Oracle:
      return std::make_unique<OraclePolicy>();
  }
  return std::make_unique<AgnosticPolicy>();
}

}  // namespace sigrt
