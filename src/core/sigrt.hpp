// Umbrella header: the full public API of the significance-aware runtime.
//
//   #include "core/sigrt.hpp"
//
// brings in the runtime facade, the fluent spawn builder, the pragma-surface
// emulation, the policies and the energy/metrics instrumentation used by
// the examples and benchmarks.
#pragma once

#include "core/autotuner.hpp"    // IWYU pragma: export
#include "core/group.hpp"        // IWYU pragma: export
#include "core/pragma.hpp"       // IWYU pragma: export
#include "core/runtime.hpp"      // IWYU pragma: export
#include "core/task.hpp"         // IWYU pragma: export
#include "core/task_options.hpp" // IWYU pragma: export
#include "core/types.hpp"        // IWYU pragma: export
#include "dep/block_tracker.hpp" // IWYU pragma: export
#include "energy/meter.hpp"      // IWYU pragma: export
#include "energy/model.hpp"      // IWYU pragma: export
