// Ratio autotuner: closes the loop the paper leaves to the programmer.
//
// §2 presents the per-group ratio() as "an open parameter of a kernel or an
// entire application, which can take different values in each invocation,
// or be changed interactively by the user".  This component automates that
// interaction: given a user-supplied quality functional (lower is better,
// e.g. PSNR^-1 or relative error against a reference) and a quality bound,
// it searches for the smallest accurate-task ratio that satisfies the bound
// — the energy-minimal operating point of the quality/energy trade-off.
//
// Two strategies are provided:
//   * offline():  bisection over repeated kernel invocations.  Quality is
//     monotone non-increasing in the ratio for the paper's policies (an
//     invariant the test suite checks), so bisection converges to the
//     boundary within `tolerance` in O(log 1/tolerance) invocations.
//   * Online tracker: a small additive-increase/multiplicative-decrease
//     controller for iterative applications (Kmeans-style), nudging the
//     ratio between invocations while quality stays within the bound.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "core/runtime.hpp"

namespace sigrt {

/// One probe of the quality/ratio curve.
struct TuneSample {
  double ratio = 1.0;
  double quality = 0.0;  ///< lower is better
  bool acceptable = false;
};

struct TuneResult {
  /// Smallest probed ratio whose quality met the bound (1.0 when even the
  /// fully accurate execution fails the bound — see `feasible`).
  double ratio = 1.0;
  bool feasible = false;
  std::vector<TuneSample> samples;  ///< full probe history, in probe order
};

class RatioTuner {
 public:
  /// `run_at` executes the kernel at the given ratio and returns the
  /// quality value (lower is better).
  using RunFn = std::function<double(double ratio)>;

  struct Options {
    double quality_bound = 0.05;  ///< accept iff quality <= bound
    double tolerance = 0.02;      ///< ratio resolution of the bisection
    double min_ratio = 0.0;
    double max_ratio = 1.0;
    unsigned max_probes = 16;     ///< hard cap on kernel invocations
  };

  explicit RatioTuner(Options options) : options_(options) {}

  /// Bisection search for the smallest acceptable ratio.  Assumes quality
  /// is monotone non-increasing in the ratio (the policies guarantee this
  /// statistically; see the integration tests).
  [[nodiscard]] TuneResult offline(const RunFn& run_at) const {
    TuneResult result;
    auto probe = [&](double ratio) {
      const double q = run_at(ratio);
      const bool ok = q <= options_.quality_bound;
      result.samples.push_back({ratio, q, ok});
      return ok;
    };

    double hi = options_.max_ratio;
    if (!probe(hi)) {
      // Even the most accurate allowed execution misses the bound.
      result.ratio = hi;
      result.feasible = false;
      return result;
    }
    result.feasible = true;
    result.ratio = hi;

    double lo = options_.min_ratio;
    if (probe(lo)) {
      // The cheapest execution already satisfies the bound.
      result.ratio = lo;
      return result;
    }

    unsigned probes = static_cast<unsigned>(result.samples.size());
    while (hi - lo > options_.tolerance && probes < options_.max_probes) {
      const double mid = 0.5 * (lo + hi);
      if (probe(mid)) {
        hi = mid;
        result.ratio = mid;
      } else {
        lo = mid;
      }
      ++probes;
    }
    return result;
  }

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
};

/// Online AIMD controller for iterative kernels: call update() with the
/// latest observed quality after each invocation and apply ratio() to the
/// next one.  Backs off multiplicatively on a quality violation, then
/// creeps back down (toward cheaper execution) additively while compliant.
class OnlineRatioController {
 public:
  struct Options {
    double quality_bound = 0.05;
    double initial_ratio = 1.0;
    double decrease_step = 0.05;   ///< additive step toward cheaper runs
    double backoff_factor = 1.6;   ///< multiplicative recovery on violation
    double min_ratio = 0.0;
    double max_ratio = 1.0;
  };

  explicit OnlineRatioController(Options options)
      : options_(options), ratio_(options.initial_ratio) {}

  [[nodiscard]] double ratio() const noexcept { return ratio_; }

  [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }

  /// Feeds the quality observed at the current ratio; returns the ratio to
  /// use for the next invocation.
  double update(double observed_quality) noexcept {
    if (observed_quality > options_.quality_bound) {
      ++violations_;
      // Multiplicative recovery toward accuracy; never exceed max.
      const double recovered = std::max(ratio_ * options_.backoff_factor,
                                        ratio_ + options_.decrease_step);
      ratio_ = std::min(options_.max_ratio, recovered);
      // Freeze the floor: do not creep below a ratio that just failed.
      floor_ = std::min(options_.max_ratio, floor_ + options_.decrease_step);
    } else {
      ratio_ = std::max({options_.min_ratio, floor_,
                         ratio_ - options_.decrease_step});
    }
    return ratio_;
  }

 private:
  Options options_;
  double ratio_;
  double floor_ = 0.0;
  std::uint64_t violations_ = 0;
};

}  // namespace sigrt
