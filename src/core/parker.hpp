// Per-thread two-phase parker and the barrier-waiter handle that wires a
// task's last-child completion (or a group's quiescence) to whatever the
// waiting thread is currently sleeping on.
//
// Why this exists: an in-task taskwait is a *helping* barrier — the waiter
// keeps executing other tasks — but when nothing is acquirable the awaited
// children are in flight on other threads and, before this header, the
// waiter could only poll (yield escalating to 50 µs sleeps).  Completions
// now notify the waiter directly:
//
//   waiter                                 completer (last child)
//   ------                                 ---------
//   1. register waiter on task/group       1. children.fetch_sub == 1
//      + seq_cst fence                        + seq_cst fence
//   2. re-check barrier + queues           2. load waiter pointer
//   3a. open/work -> don't park            3. waiter->notify()
//   3b. closed    -> park
//
// The two seq_cst fences are the same Dekker argument as eventcount.hpp:
// at least one side observes the other, so a parked waiter cannot miss the
// zero crossing.
//
// A waiter may be parked in one of two ways — on its *scheduler eventcount
// slot* (a slot-owning worker: producer wakes keep reaching it, so new work
// still gets helped) or on the Parker below (a thread that handed its slot
// to a spare and is blocked for real).  notify() covers both targets; a
// notification aimed at a stale target only wakes somebody spuriously, and
// every park in this codebase re-checks its condition on wake.
//
// Lifetime: BarrierWaiter handles are leased per thread from an immortal
// freelist (this_thread_waiter()).  A completer that loaded the pointer
// races only against the waiter *moving on*, never against the memory
// dying — a late notify() hits a pooled handle that is either idle or
// owned by some other thread, both harmless.  The freelist head is a
// global, so handles stay reachable at exit (no leak reports).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>

#include "support/mutex.hpp"

namespace sigrt {

/// One-thread two-phase park/unpark: the single-slot analogue of
/// EventCount (see eventcount.hpp for the protocol discussion).  Used by
/// blocked (slot-less) barrier waiters, where no producer needs to find
/// the sleeper — only the barrier's completion side does.
class Parker {
 public:
  /// Phase 1 (owner thread): announce intent to sleep.  Follow with a
  /// re-check of the wait condition, then cancel_park() or park().
  void prepare_park() noexcept {
    state_.store(kParked, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Re-check found the condition satisfied: revoke (swallowing any
  /// notification that raced in).
  void cancel_park() noexcept {
    state_.exchange(kIdle, std::memory_order_acq_rel);
  }

  /// Phase 2: block until unpark() arrives (returns immediately when one
  /// raced in between prepare and park).
  void park() {
    support::MutexLock lock(mutex_);
    while (state_.load(std::memory_order_acquire) == kParked) {
      cv_.wait(lock.native());
    }
    state_.store(kIdle, std::memory_order_release);
  }

  /// Timed phase 2: wakes on notification or after `timeout` (whichever is
  /// first) — barrier waiters under a buffering policy must surface
  /// periodically to re-flush the policy window.
  void park_for(std::chrono::microseconds timeout) {
    support::MutexLock lock(mutex_);
    cv_.wait_for(lock.native(), timeout, [this] {
      return state_.load(std::memory_order_acquire) != kParked;
    });
    state_.store(kIdle, std::memory_order_release);
  }

  /// Any thread: wake the owner iff it is parked (or mid-park).  No token
  /// is stored for an idle owner — the two-phase re-check makes one
  /// unnecessary, exactly as in EventCount::notify.
  void unpark() noexcept {
    std::uint32_t expected = kParked;
    if (!state_.compare_exchange_strong(expected, kNotified,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
      return;
    }
    { support::MutexLock lock(mutex_); }
    cv_.notify_one();
  }

 private:
  enum : std::uint32_t { kIdle = 0, kParked = 1, kNotified = 2 };
  std::atomic<std::uint32_t> state_{kIdle};
  support::Mutex mutex_;  // slow path only: actual sleeping
  std::condition_variable cv_;
};

/// The wake-target handle a barrier waiter registers on a Task (children
/// scope) or TaskGroup (quiescence scope).  notify() is safe from any
/// thread at any time: it touches only this handle, which the freelist
/// keeps alive for the program's lifetime.
struct BarrierWaiter {
  Parker parker;

  /// When the waiter is parked on a scheduler eventcount slot, these name
  /// it: sched_notify(sched, worker) delivers the wake (a trampoline to
  /// Scheduler::notify_worker — kept as an erased pointer so this header
  /// depends on neither scheduler.hpp nor vice versa).  sched == nullptr
  /// means the waiter is parker-parked (or not parked at all).
  std::atomic<void*> sched{nullptr};
  std::atomic<unsigned> worker{0};
  /// Atomic because a STALE notifier (from a barrier this waiter already
  /// left — tolerated, it is just a spurious wake) may read it while the
  /// waiter re-registers for a new park.  The sched release/acquire pair
  /// still orders the store for current notifiers, and the value is the
  /// same trampoline every time, so relaxed accesses suffice.
  std::atomic<void (*)(void*, unsigned)> sched_notify{nullptr};

  BarrierWaiter* next_free = nullptr;  ///< freelist linkage (under its mutex)

  void notify() noexcept {
    if (void* s = sched.load(std::memory_order_acquire)) {
      sched_notify.load(std::memory_order_relaxed)(
          s, worker.load(std::memory_order_relaxed));
    }
    parker.unpark();
  }
};

namespace detail {

struct WaiterFreelist {
  support::Mutex mutex;
  BarrierWaiter* head SIGRT_GUARDED_BY(mutex) = nullptr;
};

inline WaiterFreelist& waiter_freelist() {
  // Function-local static: immortal (never destroyed before thread-local
  // leases), and the head keeps every handle reachable at exit.
  static WaiterFreelist* fl = new WaiterFreelist;
  return *fl;
}

/// Thread-lifetime lease: returns the handle to the freelist at thread
/// exit, so retiring spare threads recycle instead of dangling.
struct WaiterLease {
  BarrierWaiter* w = nullptr;
  ~WaiterLease() {
    if (w == nullptr) return;
    w->sched.store(nullptr, std::memory_order_relaxed);
    WaiterFreelist& fl = waiter_freelist();
    support::MutexLock lock(fl.mutex);
    w->next_free = fl.head;
    fl.head = w;
  }
};

}  // namespace detail

/// The calling thread's pooled barrier-waiter handle (allocated on first
/// use, recycled across thread lifetimes — steady-state barrier parks
/// allocate nothing).
inline BarrierWaiter* this_thread_waiter() {
  thread_local detail::WaiterLease lease;
  if (lease.w == nullptr) {
    detail::WaiterFreelist& fl = detail::waiter_freelist();
    support::MutexLock lock(fl.mutex);
    if (fl.head != nullptr) {
      lease.w = fl.head;
      fl.head = lease.w->next_free;
      lease.w->next_free = nullptr;
    } else {
      lease.w = new BarrierWaiter;
    }
  }
  return lease.w;
}

}  // namespace sigrt
