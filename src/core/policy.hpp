// Task-classification policy interface (§3.2 of the paper).
//
// A policy decides, for every task with significance in (0, 1), whether it
// runs accurately or approximately, honoring the group's ratio() and
// preferring to approximate the least significant tasks.  Two decision
// points exist, matching the paper's two designs:
//
//   * at ISSUE, on the master  — Global Task Buffering (GTB, §3.3) holds
//     tasks back, sorts a window by significance and classifies the window;
//   * at DEQUEUE, on a worker  — Local Queue History (LQH, §3.4) lets tasks
//     flow freely and classifies each from the worker-local significance
//     histogram right before execution.
//
// The runtime is policy-agnostic: it hands every spawned task to
// on_spawn(); buffering policies park it, pass-through policies release it
// immediately.  The scheduler calls decide() for any task still Undecided
// when it reaches a worker.
#pragma once

#include <memory>
#include <vector>

#include "core/task.hpp"
#include "core/types.hpp"

namespace sigrt {

class TaskGroup;

/// Callback through which a policy returns (possibly classified) tasks to
/// the runtime for dependence-gated scheduling.  Implemented by Runtime.
/// TaskPtr is the intrusive TaskRef: buffering a task costs one refcount
/// increment on the task itself, not a shared_ptr control block.
class IssueSink {
 public:
  virtual ~IssueSink() = default;

  /// Releases the policy hold on `task` (see Task::gate).  The task becomes
  /// runnable once its data dependencies are also satisfied.
  virtual void release(const TaskPtr& task) = 0;

  /// Releases a whole classified window at once.  The runtime batches the
  /// runnable subset into one bulk enqueue (a GTB flush issues its entire
  /// window through this, §3.3); the default just loops release().
  virtual void release_bulk(const std::vector<TaskPtr>& tasks) {
    for (const TaskPtr& t : tasks) release(t);
  }

  /// Group lookup so policies can read the live ratio() knob.
  [[nodiscard]] virtual TaskGroup& group_ref(GroupId id) = 0;
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// True when on_spawn() never buffers: it would release the task
  /// synchronously, unclassified, and flush() is a no-op.  The runtime uses
  /// this to skip the policy hold (and its gate atomics) entirely for
  /// dependency-free tasks — the spawn fast path.
  [[nodiscard]] virtual bool pass_through() const noexcept { return false; }

  /// Spawning thread — ANY thread under the nested-parallelism contract,
  /// including workers inside task bodies and concurrent user threads: a
  /// new task was spawned (dependencies already registered).  The policy
  /// must eventually release() it.  Buffering policies must synchronize
  /// their own state (GTB guards its windows with a mutex).
  virtual void on_spawn(const TaskPtr& task, IssueSink& sink) = 0;

  /// Barrier reached (taskwait) — again from any thread, possibly several
  /// concurrently.  Classify and release every buffered task of `group`
  /// (kAllGroups = every group); each buffered task must be released
  /// exactly once across concurrent flushes.
  virtual void flush(GroupId group, IssueSink& sink) = 0;

  /// Worker `worker_index`: classify a task that reached execution still
  /// Undecided.  Pass-through policies decide here; buffering policies never
  /// see this call.
  [[nodiscard]] virtual ExecutionKind decide(const Task& task,
                                             unsigned worker_index,
                                             IssueSink& sink) = 0;
};

/// Factory used by Runtime.  `workers` is the worker count (>= 1 slots are
/// allocated even in inline mode, which decides on pseudo-worker 0).
std::unique_ptr<Policy> make_policy(const RuntimeConfig& config);

}  // namespace sigrt
