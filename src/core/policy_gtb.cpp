#include "core/policy_gtb.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/group.hpp"

namespace sigrt {

GtbPolicy::GtbPolicy(std::size_t buffer_capacity, bool max_buffer)
    : capacity_(max_buffer ? SIZE_MAX : std::max<std::size_t>(1, buffer_capacity)),
      max_buffer_(max_buffer) {}

void GtbPolicy::on_spawn(const TaskPtr& task, IssueSink& sink) {
  // Buffer under the lock; classify a full window outside it (see the
  // header's thread-safety note).  The moved-from vector stays in the map
  // with its capacity released — the next spawn re-grows it, which is the
  // same cost profile as the clear() of the single-spawner era.
  std::vector<TaskPtr> window;
  {
    support::MutexLock lock(mutex_);
    auto& buffer = buffers_[task->group];
    buffer.push_back(task);
    if (buffer.size() >= capacity_) {
      window = std::move(buffer);
      buffer.clear();
    }
  }
  if (window.empty()) return;
  classify_and_release(task->group, window, sink);  // leaves window cleared
  // Return the window's storage to the map slot so the next fill does not
  // re-grow a capacity-0 vector — on_spawn is the spawn hot path and the
  // steady state should not cycle the allocator once per window.  Skip if
  // concurrent spawns already repopulated (or re-grew) the slot.
  support::MutexLock lock(mutex_);
  auto& buffer = buffers_[task->group];
  if (buffer.empty() && buffer.capacity() < window.capacity()) {
    buffer.swap(window);
  }
}

void GtbPolicy::flush(GroupId group, IssueSink& sink) {
  // Move every targeted window out under the lock, then classify/release
  // without it.  A spawn racing the barrier may land after the move and
  // stay buffered for the next flush — the same task is never released
  // twice, and the flushing thread's own spawns (which happened-before its
  // barrier) are always included.
  std::vector<std::pair<GroupId, std::vector<TaskPtr>>> taken;
  {
    support::MutexLock lock(mutex_);
    if (group == kAllGroups) {
      for (auto& [gid, window] : buffers_) {
        if (window.empty()) continue;
        taken.emplace_back(gid, std::move(window));
        window.clear();
      }
    } else if (auto it = buffers_.find(group);
               it != buffers_.end() && !it->second.empty()) {
      taken.emplace_back(group, std::move(it->second));
      it->second.clear();
    }
  }
  for (auto& [gid, window] : taken) classify_and_release(gid, window, sink);
}

void GtbPolicy::classify_and_release(GroupId group, std::vector<TaskPtr>& window,
                                     IssueSink& sink) {
  if (window.empty()) return;
  const double ratio = sink.group_ref(group).ratio();

  // Stable sort by decreasing significance: ties keep spawn order, which
  // makes GTB fully deterministic (§4.2 relies on this for Kmeans).
  std::stable_sort(window.begin(), window.end(),
                   [](const TaskPtr& a, const TaskPtr& b) {
                     return a->significance > b->significance;
                   });

  // Listing 4: `if (i < group_ratio * task_count) issue_accurate_task(...)`.
  const double quota = ratio * static_cast<double>(window.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    Task& t = *window[i];
    if (t.significance >= 1.0f) {
      t.kind = ExecutionKind::Accurate;  // special value: unconditional
    } else if (t.significance <= 0.0f) {
      t.kind = ExecutionKind::Approximate;  // special value: unconditional
    } else {
      t.kind = static_cast<double>(i) < quota ? ExecutionKind::Accurate
                                              : ExecutionKind::Approximate;
    }
  }
  // Re-issue in spawn order (ids ascend with spawn order) so worker queues
  // observe the program's creation order, as in the paper's runtime.  The
  // whole window goes out as one bulk release: the runtime turns it into a
  // single batched scheduler enqueue (one publish per target queue instead
  // of one per task).
  std::stable_sort(window.begin(), window.end(),
                   [](const TaskPtr& a, const TaskPtr& b) { return a->id < b->id; });
  sink.release_bulk(window);
  window.clear();
}

ExecutionKind GtbPolicy::decide(const Task& task, unsigned /*worker_index*/,
                                IssueSink& /*sink*/) {
  // GTB classifies every task before releasing it; reaching here would mean
  // a task bypassed the buffer.
  assert(task.kind != ExecutionKind::Undecided &&
         "GTB task reached a worker unclassified");
  return task.kind == ExecutionKind::Undecided ? ExecutionKind::Accurate
                                               : task.kind;
}

}  // namespace sigrt
