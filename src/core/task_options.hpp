// Spawn-time task description and a fluent builder.
//
// The builder mirrors the pragma clauses one-to-one:
//
//   rt.spawn(sigrt::task([&]{ sbl_row(res, img, i); })   // task body
//                .approx([&]{ sbl_row_appr(res, img, i); })  // approxfun()
//                .significance((i % 9 + 1) / 10.0)           // significant()
//                .group(sobel)                               // label()
//                .in(img, N).out(res + i * W, W));           // in() / out()
//
// Bodies are stored as support::InlineFn: any callable whose captures fit
// the 64-byte small-buffer limit (≈ 8 pointers/references) is stored inline
// and the spawn performs ZERO heap allocations; larger captures still work
// but cost one allocation at spawn time.  Keep hot-loop captures within the
// limit — the micro_spawn bench gate measures exactly this.  The clause
// list follows the same contract: up to kInlineAccesses in()/out() clauses
// live inline in the options (no heap), longer footprints spill — the
// micro_deps gate measures the dependent-spawn path.
#pragma once

#include <utility>

#include "core/types.hpp"
#include "dep/block_tracker.hpp"
#include "support/inline_fn.hpp"
#include "support/small_vec.hpp"

namespace sigrt {

/// Plain-data description of one task to spawn.
struct TaskOptions {
  /// Clauses stored inline before spilling to the heap.
  static constexpr std::size_t kInlineAccesses = 6;

  support::InlineFn accurate;     ///< required
  support::InlineFn approximate;  ///< optional; absent => drop on approximation
  support::InlinePred check;      ///< optional result validator (true = accept)
  double significance = 1.0;
  GroupId group = kDefaultGroup;
  unsigned max_redos = 0;         ///< re-executions allowed on fault/rejection
  support::SmallVec<dep::Access, kInlineAccesses> accesses;
};

class TaskBuilder {
 public:
  template <class F>
  explicit TaskBuilder(F&& body) {
    options_.accurate = std::forward<F>(body);
  }

  template <class F>
  TaskBuilder& approx(F&& fn) & {
    options_.approximate = std::forward<F>(fn);
    return *this;
  }
  template <class F>
  TaskBuilder&& approx(F&& fn) && {
    return std::move(approx(std::forward<F>(fn)));
  }

  /// Result validator, run on the executing worker right after a successful
  /// accurate body: return false to reject the result and trigger a redo
  /// (see max_redos).  Within the same 64-byte SBO contract as the bodies.
  template <class F>
  TaskBuilder& check(F&& fn) & {
    options_.check = std::forward<F>(fn);
    return *this;
  }
  template <class F>
  TaskBuilder&& check(F&& fn) && {
    return std::move(check(std::forward<F>(fn)));
  }

  /// How many times a failed or check-rejected accurate execution may be
  /// retried (on a reliable worker) before the error surfaces at the
  /// barrier.  0 keeps fail-fast semantics.
  TaskBuilder& max_redos(unsigned n) & {
    options_.max_redos = n;
    return *this;
  }
  TaskBuilder&& max_redos(unsigned n) && { return std::move(max_redos(n)); }

  TaskBuilder& significance(double s) & {
    options_.significance = s;
    return *this;
  }
  TaskBuilder&& significance(double s) && { return std::move(significance(s)); }

  TaskBuilder& group(GroupId g) & {
    options_.group = g;
    return *this;
  }
  TaskBuilder&& group(GroupId g) && { return std::move(group(g)); }

  template <typename T>
  TaskBuilder& in(const T* p, std::size_t count = 1) & {
    options_.accesses.push_back(dep::in(p, count));
    return *this;
  }
  template <typename T>
  TaskBuilder&& in(const T* p, std::size_t count = 1) && {
    return std::move(in(p, count));
  }

  template <typename T>
  TaskBuilder& out(T* p, std::size_t count = 1) & {
    options_.accesses.push_back(dep::out(p, count));
    return *this;
  }
  template <typename T>
  TaskBuilder&& out(T* p, std::size_t count = 1) && {
    return std::move(out(p, count));
  }

  template <typename T>
  TaskBuilder& inout(T* p, std::size_t count = 1) & {
    options_.accesses.push_back(dep::inout(p, count));
    return *this;
  }
  template <typename T>
  TaskBuilder&& inout(T* p, std::size_t count = 1) && {
    return std::move(inout(p, count));
  }

  /// Consumes the builder: exposes the options in place (an xvalue, not a
  /// fresh object) so Runtime::spawn moves each body exactly once, from
  /// builder storage straight into the task slot.  Bind the result to a
  /// value (`TaskOptions o = ...take();`) if you need it beyond the
  /// builder's lifetime.
  [[nodiscard]] TaskOptions&& take() && noexcept { return std::move(options_); }

 private:
  TaskOptions options_;
};

/// Entry point of the fluent spelling: sigrt::task([...]{ ... }).
template <class F>
[[nodiscard]] TaskBuilder task(F&& body) {
  return TaskBuilder(std::forward<F>(body));
}

}  // namespace sigrt
