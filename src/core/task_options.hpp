// Spawn-time task description and a fluent builder.
//
// The builder mirrors the pragma clauses one-to-one:
//
//   rt.spawn(sigrt::task([&]{ sbl_row(res, img, i); })   // task body
//                .approx([&]{ sbl_row_appr(res, img, i); })  // approxfun()
//                .significance((i % 9 + 1) / 10.0)           // significant()
//                .group(sobel)                               // label()
//                .in(img, N).out(res + i * W, W));           // in() / out()
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "dep/block_tracker.hpp"

namespace sigrt {

/// Plain-data description of one task to spawn.
struct TaskOptions {
  std::function<void()> accurate;     ///< required
  std::function<void()> approximate;  ///< optional; absent => drop on approximation
  double significance = 1.0;
  GroupId group = kDefaultGroup;
  std::vector<dep::Access> accesses;
};

class TaskBuilder {
 public:
  explicit TaskBuilder(std::function<void()> body) {
    options_.accurate = std::move(body);
  }

  TaskBuilder& approx(std::function<void()> fn) & {
    options_.approximate = std::move(fn);
    return *this;
  }
  TaskBuilder&& approx(std::function<void()> fn) && {
    return std::move(approx(std::move(fn)));
  }

  TaskBuilder& significance(double s) & {
    options_.significance = s;
    return *this;
  }
  TaskBuilder&& significance(double s) && { return std::move(significance(s)); }

  TaskBuilder& group(GroupId g) & {
    options_.group = g;
    return *this;
  }
  TaskBuilder&& group(GroupId g) && { return std::move(group(g)); }

  template <typename T>
  TaskBuilder& in(const T* p, std::size_t count = 1) & {
    options_.accesses.push_back(dep::in(p, count));
    return *this;
  }
  template <typename T>
  TaskBuilder&& in(const T* p, std::size_t count = 1) && {
    return std::move(in(p, count));
  }

  template <typename T>
  TaskBuilder& out(T* p, std::size_t count = 1) & {
    options_.accesses.push_back(dep::out(p, count));
    return *this;
  }
  template <typename T>
  TaskBuilder&& out(T* p, std::size_t count = 1) && {
    return std::move(out(p, count));
  }

  template <typename T>
  TaskBuilder& inout(T* p, std::size_t count = 1) & {
    options_.accesses.push_back(dep::inout(p, count));
    return *this;
  }
  template <typename T>
  TaskBuilder&& inout(T* p, std::size_t count = 1) && {
    return std::move(inout(p, count));
  }

  /// Consumes the builder.
  [[nodiscard]] TaskOptions take() && { return std::move(options_); }

 private:
  TaskOptions options_;
};

/// Entry point of the fluent spelling: sigrt::task([...]{ ... }).
[[nodiscard]] inline TaskBuilder task(std::function<void()> body) {
  return TaskBuilder(std::move(body));
}

}  // namespace sigrt
