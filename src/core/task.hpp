// Task descriptor: the runtime-side image of one `#pragma omp task
// significant(...) approxfun(...) in(...) out(...)` annotation.
//
// Lifecycle (the zero-allocation contract):
//
//   * Tasks live in slab slots leased from the global task pool
//     (support/task_pool.hpp) — allocate via make_task(), never new/delete.
//   * Lifetime is an intrusive atomic refcount inside the Task itself
//     (retain()/release(), smart-pointer'd by TaskRef).  There is no
//     shared_ptr control block and no separate allocation: the scheduler
//     circulates raw Task* that each carry one donated reference.
//   * When the last reference drops, the slot is reset (bodies destroyed,
//     buffers keep their capacity) and returned to its owning pool shard —
//     locally when freed by the spawning thread, through the shard's MPSC
//     remote-free chain when freed by a worker.
//   * Bodies are InlineFn (64-byte small-buffer callables): captures within
//     the SBO limit never touch the heap.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/types.hpp"
#include "dep/block_tracker.hpp"
#include "support/inline_fn.hpp"
#include "support/task_pool.hpp"

namespace sigrt {

class Task;
class TaskRef;
struct BarrierWaiter;  // core/parker.hpp

/// Pool behind make_task(): per-thread freelists, MPSC remote-free return.
using TaskPool = support::SlabPool<Task>;

/// A unit of work with a significance value and an optional approximate
/// body.  Tasks are created by a spawning thread, classified by a policy,
/// gated on their data dependencies and executed (once) by a worker.
class Task final : public dep::Node, public support::PoolSlot<Task> {
 public:
  Task() = default;

  // --- immutable after spawn -------------------------------------------
  support::InlineFn accurate;     ///< required task body
  support::InlineFn approximate;  ///< optional approxfun(); empty => drop
  support::InlinePred check;      ///< optional result validator: false => redo
  float significance = 1.0f;      ///< in [0, 1]; 1 forces accurate, 0 forces approximate
  GroupId group = kDefaultGroup;
  TaskId id = 0;
  bool internal = false;  ///< runtime-internal task (wait_on fence): excluded from stats

  // --- check/redo resilience ---------------------------------------------
  // An accurate task whose body throws or whose check() rejects the result
  // is re-executed — up to max_redos times — instead of failing the barrier.
  // Both fields are read/written only by the worker currently executing the
  // task (execution is exclusive; a redo re-enqueue happens-before the next
  // execution through the scheduler's publish), so they need no atomicity.
  std::uint8_t max_redos = 0;   ///< redo budget (0 = fail fast, no retry)
  std::uint8_t redos_done = 0;  ///< attempts consumed so far

  /// True when this task may execute on an unreliable (NTC) worker even
  /// though it is accurate: its check() validator guards the result (§6
  /// contract — unreliable execution is safe iff a validator can reject a
  /// corrupted outcome).  Cleared on redo so every re-execution lands in
  /// the reliable-only partition.
  bool unreliable_ok = false;

  /// True when the task registered in()/out() clauses with the dependence
  /// tracker.  A task without a footprint can never be named a predecessor,
  /// so its completion skips the tracker's stripe locks entirely.
  bool has_footprint = false;

  // --- nested parallelism -------------------------------------------------

  /// The task whose body spawned this one; nullptr for top-level spawns.
  /// A child pins its parent with one retained reference from spawn until
  /// its own completion decrements `children`, so the counter stays valid
  /// even when the parent's body returns before the child runs.
  Task* parent = nullptr;

  /// Live (spawned but not yet completed) children of this task.  An
  /// in-task taskwait is a helping barrier on exactly this counter: the
  /// completion-side fetch_sub is acq_rel and the waiter's load is acquire,
  /// so every child's side effects are visible when the barrier opens.
  std::atomic<std::uint32_t> children{0};

  /// Event-driven taskwait: the (single) thread blocked in this task's
  /// in-task taskwait parks behind this handle.  The completing side of the
  /// last child reads it after its `children` decrement (Dekker pairing
  /// with the waiter's register-then-recheck) and calls notify().  Handles
  /// are pooled immortally (core/parker.hpp), so a stale notify racing a
  /// waiter's retirement touches live memory and is at worst a spurious
  /// wake.
  std::atomic<BarrierWaiter*> waiter{nullptr};

  /// Classification result.  Written exactly once before the task becomes
  /// runnable (GTB/Oracle) or at dequeue time on the executing worker (LQH),
  /// then read only by that worker — no concurrent access in either case.
  ExecutionKind kind = ExecutionKind::Undecided;

  // --- release gate ------------------------------------------------------
  // A task becomes runnable when its gate reaches zero.  The gate starts at
  // (number of unfinished predecessors) + 1, where the +1 is the policy hold:
  // buffering policies keep it until they classify the task.  Whoever
  // performs the final decrement enqueues the task.
  std::atomic<std::uint32_t> gate{0};

  /// Decrements the gate; returns true when this call made the task runnable.
  [[nodiscard]] bool release_one() noexcept {
    return gate.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  // --- intrusive lifetime -------------------------------------------------

  /// Adds one reference.  Relaxed is sufficient: a thread can only retain
  /// through a pointer it already owns a reference for (or the pool's
  /// freshly allocated slot), so the count can never be observed at zero.
  void retain() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }

  /// Drops one reference; the last release resets the task and returns its
  /// slot to the pool.  acq_rel so every side of the task's life
  /// happens-before the reset, on whichever thread performs it.
  void release() noexcept {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) recycle_to_pool();
  }

  /// Pool hook: restores the slot to its freshly-constructed state on the
  /// freeing thread.  Bodies are destroyed eagerly (captured resources
  /// release now, not at reuse); the dependents vector keeps its capacity.
  void reset_for_reuse() noexcept {
    accurate.reset();
    approximate.reset();
    check.reset();
    significance = 1.0f;
    group = kDefaultGroup;
    id = 0;
    internal = false;
    max_redos = 0;
    redos_done = 0;
    unreliable_ok = false;
    has_footprint = false;
    parent = nullptr;
    children.store(0, std::memory_order_relaxed);
    waiter.store(nullptr, std::memory_order_relaxed);
    kind = ExecutionKind::Undecided;
    gate.store(0, std::memory_order_relaxed);
    next_ready = nullptr;
#ifndef NDEBUG
    debug_enqueues.store(0, std::memory_order_relaxed);
#endif
    reset_dep_state();
  }

  // --- scheduler linkage --------------------------------------------------

  /// Intrusive link for the per-worker MPSC inbox (Treiber chain).  Written
  /// by the enqueuing thread before the pointer is published (release) and
  /// consumed by the thread that wins the pop/steal (acquire), so it needs
  /// no atomicity of its own.
  Task* next_ready = nullptr;

#ifndef NDEBUG
  // Debug-only diagnostics: an atomic RMW on every enqueue is measurable on
  // the spawn hot path, so Release builds compile it out entirely.
  std::atomic<std::uint8_t> debug_enqueues{0};
#endif

 private:
  friend TaskRef make_task();

  /// dep::Node lifetime hooks: the tracker pins tasks through these.
  void ref_retain() noexcept override { retain(); }
  void ref_release() noexcept override { release(); }

  void recycle_to_pool() noexcept;  // task.cpp: TaskPool::instance().recycle

  std::atomic<std::uint32_t> refs_{0};
};

/// Intrusive smart pointer over Task: copy retains, move steals, destructor
/// releases.  adopt()/detach() convert to and from raw owned pointers — the
/// scheduler's circulation currency.
class TaskRef {
 public:
  constexpr TaskRef() noexcept = default;
  constexpr TaskRef(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  /// Wraps an already-owned reference without retaining.
  [[nodiscard]] static TaskRef adopt(Task* task) noexcept {
    TaskRef r;
    r.ptr_ = task;
    return r;
  }

  TaskRef(const TaskRef& other) noexcept : ptr_(other.ptr_) {
    if (ptr_ != nullptr) ptr_->retain();
  }
  TaskRef(TaskRef&& other) noexcept : ptr_(other.ptr_) { other.ptr_ = nullptr; }
  TaskRef& operator=(const TaskRef& other) noexcept {
    TaskRef(other).swap(*this);
    return *this;
  }
  TaskRef& operator=(TaskRef&& other) noexcept {
    TaskRef(std::move(other)).swap(*this);
    return *this;
  }
  ~TaskRef() {
    if (ptr_ != nullptr) ptr_->release();
  }

  void swap(TaskRef& other) noexcept { std::swap(ptr_, other.ptr_); }
  void reset() noexcept {
    if (ptr_ != nullptr) {
      ptr_->release();
      ptr_ = nullptr;
    }
  }

  /// Transfers ownership of the reference to the caller.
  [[nodiscard]] Task* detach() noexcept {
    Task* t = ptr_;
    ptr_ = nullptr;
    return t;
  }

  [[nodiscard]] Task* get() const noexcept { return ptr_; }
  Task& operator*() const noexcept { return *ptr_; }
  Task* operator->() const noexcept { return ptr_; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return ptr_ != nullptr;
  }
  friend bool operator==(const TaskRef& a, const TaskRef& b) noexcept {
    return a.ptr_ == b.ptr_;
  }

 private:
  Task* ptr_ = nullptr;
};

/// Historical alias from the shared_ptr era; same type, same semantics.
using TaskPtr = TaskRef;

/// Allocates a task from the pool (refcount 1, fully reset state).
[[nodiscard]] TaskRef make_task();

}  // namespace sigrt
