// Task descriptor: the runtime-side image of one `#pragma omp task
// significant(...) approxfun(...) in(...) out(...)` annotation.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "core/types.hpp"
#include "dep/block_tracker.hpp"

namespace sigrt {

class Task;
using TaskPtr = std::shared_ptr<Task>;

/// A unit of work with a significance value and an optional approximate
/// body.  Tasks are created by the master thread, classified by a policy,
/// gated on their data dependencies and executed (once) by a worker.
class Task final : public dep::Node {
 public:
  Task() = default;

  // --- immutable after spawn -------------------------------------------
  std::function<void()> accurate;     ///< required task body
  std::function<void()> approximate;  ///< optional approxfun(); empty => drop
  float significance = 1.0f;          ///< in [0, 1]; 1 forces accurate, 0 forces approximate
  GroupId group = kDefaultGroup;
  TaskId id = 0;
  bool internal = false;  ///< runtime-internal task (wait_on fence): excluded from stats

  /// True when the task registered in()/out() clauses with the dependence
  /// tracker.  A task without a footprint can never be named a predecessor,
  /// so its completion skips the tracker's global mutex entirely.
  bool has_footprint = false;

  /// Classification result.  Written exactly once before the task becomes
  /// runnable (GTB/Oracle) or at dequeue time on the executing worker (LQH),
  /// then read only by that worker — no concurrent access in either case.
  ExecutionKind kind = ExecutionKind::Undecided;

  // --- release gate ------------------------------------------------------
  // A task becomes runnable when its gate reaches zero.  The gate starts at
  // (number of unfinished predecessors) + 1, where the +1 is the policy hold:
  // buffering policies keep it until they classify the task.  Whoever
  // performs the final decrement enqueues the task.
  std::atomic<std::uint32_t> gate{0};

  /// Decrements the gate; returns true when this call made the task runnable.
  [[nodiscard]] bool release_one() noexcept {
    return gate.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  // --- scheduler linkage --------------------------------------------------
  // The lock-free scheduler circulates raw Task* through its deques and
  // inbox chains.  Both fields are written by the enqueuing thread before
  // the pointer is published (release) and consumed by the thread that wins
  // the pop/steal (acquire), so they need no atomicity of their own.

  /// Keeps the task alive while a raw pointer to it is in flight inside the
  /// scheduler; moved out by the executing worker.
  TaskPtr self_pin;

  /// Intrusive link for the per-worker MPSC inbox (Treiber chain).
  Task* next_ready = nullptr;

  // Debug-only diagnostics (cheap; used by assertions in the scheduler).
  std::atomic<std::uint8_t> debug_enqueues{0};
};

}  // namespace sigrt
