#include "core/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <utility>

namespace sigrt::topo {

namespace {

/// Reads a small sysfs file into `out` (trailing whitespace stripped).
bool read_file(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char buf[256];
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  out.assign(buf);
  while (!out.empty() &&
         std::isspace(static_cast<unsigned char>(out.back()))) {
    out.pop_back();
  }
  return true;
}

bool read_uint(const std::string& path, unsigned& out) {
  std::string s;
  if (!read_file(path, s) || s.empty()) return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str()) return false;
  out = static_cast<unsigned>(v);
  return true;
}

/// Parses a sysfs cpulist ("0-3,8,10-11") into cpu numbers.
std::vector<unsigned> parse_cpulist(const std::string& list) {
  std::vector<unsigned> cpus;
  const char* p = list.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long lo = std::strtoul(p, &end, 10);
    if (end == p) break;
    unsigned long hi = lo;
    p = end;
    if (*p == '-') {
      hi = std::strtoul(p + 1, &end, 10);
      if (end == p + 1) break;
      p = end;
    }
    for (unsigned long c = lo; c <= hi && c - lo < 4096; ++c) {
      cpus.push_back(static_cast<unsigned>(c));
    }
    if (*p == ',') ++p;
  }
  return cpus;
}

/// Parses a sysfs cache size ("512K", "8192K", "1M") into bytes.
std::size_t parse_cache_size(const std::string& s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str()) return 0;
  std::size_t bytes = static_cast<std::size_t>(v);
  if (*end == 'K' || *end == 'k') bytes <<= 10;
  else if (*end == 'M' || *end == 'm') bytes <<= 20;
  else if (*end == 'G' || *end == 'g') bytes <<= 30;
  return bytes;
}

unsigned next_pow2(unsigned v) {
  unsigned p = 1;
  while (p < v && p < (1u << 30)) p <<= 1;
  return p;
}

}  // namespace

Topology fallback(unsigned ncpu) {
  Topology t;
  if (ncpu == 0) ncpu = 1;
  t.cpus.reserve(ncpu);
  for (unsigned c = 0; c < ncpu; ++c) t.cpus.push_back({c, 0, c, 0});
  t.packages = 1;
  t.cores = ncpu;
  t.llc_groups = 1;
  t.from_sysfs = false;
  return t;
}

Topology probe(const std::string& sysfs_root) {
  const std::string base = sysfs_root + "/devices/system/cpu";

  std::string online;
  std::vector<unsigned> cpu_ids;
  if (read_file(base + "/online", online)) {
    cpu_ids = parse_cpulist(online);
  } else {
    // No `online` file: scan cpuN directories by probing a per-cpu file.
    for (unsigned c = 0; c < 4096; ++c) {
      std::string tmp;
      if (!read_file(base + "/cpu" + std::to_string(c) +
                         "/topology/physical_package_id",
                     tmp)) {
        if (c > 0) break;  // dense numbering: first miss ends the scan
        return fallback(std::thread::hardware_concurrency());
      }
      cpu_ids.push_back(c);
    }
  }
  if (cpu_ids.empty()) return fallback(std::thread::hardware_concurrency());

  Topology t;
  t.from_sysfs = true;
  // Dense renumbering maps: raw sysfs id -> small dense id.
  std::map<unsigned, unsigned> package_ids;
  std::map<std::pair<unsigned, unsigned>, unsigned> core_ids;
  std::map<std::string, unsigned> llc_ids;

  for (unsigned c : cpu_ids) {
    const std::string cpu_dir = base + "/cpu" + std::to_string(c);
    unsigned raw_pkg = 0;
    unsigned raw_core = c;
    if (!read_uint(cpu_dir + "/topology/physical_package_id", raw_pkg) ||
        !read_uint(cpu_dir + "/topology/core_id", raw_core)) {
      return fallback(static_cast<unsigned>(cpu_ids.size()));
    }

    // Highest-level unified/data cache this CPU sees = its LLC group; a
    // level-2 entry also yields the per-CPU L2 size for kernel tiling.
    std::string llc_key;
    unsigned best_level = 0;
    for (unsigned idx = 0; idx < 16; ++idx) {
      const std::string cache_dir =
          cpu_dir + "/cache/index" + std::to_string(idx);
      unsigned level = 0;
      if (!read_uint(cache_dir + "/level", level)) break;
      std::string type;
      read_file(cache_dir + "/type", type);
      if (type == "Instruction") continue;
      std::string size_s;
      if (level == 2 && t.l2_bytes == 0 &&
          read_file(cache_dir + "/size", size_s)) {
        t.l2_bytes = parse_cache_size(size_s);
      }
      if (level >= best_level) {
        best_level = level;
        std::string shared;
        if (read_file(cache_dir + "/shared_cpu_list", shared)) {
          llc_key = shared;
        } else {
          llc_key = "cpu" + std::to_string(c);  // private cache
        }
        if (read_file(cache_dir + "/size", size_s)) {
          t.llc_bytes = parse_cache_size(size_s);
        }
      }
    }
    if (llc_key.empty()) {
      // No cache directory at all: group LLC by package.
      llc_key = "pkg" + std::to_string(raw_pkg);
    }

    CpuInfo info;
    info.cpu = c;
    info.package = package_ids.emplace(raw_pkg, (unsigned)package_ids.size())
                       .first->second;
    info.core = core_ids
                    .emplace(std::make_pair(raw_pkg, raw_core),
                             (unsigned)core_ids.size())
                    .first->second;
    info.llc =
        llc_ids.emplace(llc_key, (unsigned)llc_ids.size()).first->second;
    t.cpus.push_back(info);
  }

  std::sort(t.cpus.begin(), t.cpus.end(),
            [](const CpuInfo& a, const CpuInfo& b) { return a.cpu < b.cpu; });
  t.packages = std::max<unsigned>(1, static_cast<unsigned>(package_ids.size()));
  t.cores = std::max<unsigned>(1, static_cast<unsigned>(core_ids.size()));
  t.llc_groups = std::max<unsigned>(1, static_cast<unsigned>(llc_ids.size()));
  return t;
}

const Topology& system_topology() {
  static const Topology t = probe("/sys");
  return t;
}

unsigned Topology::worker_distance(unsigned a, unsigned b) const noexcept {
  const unsigned n = cpu_count();
  if (n == 0) return 1;
  const CpuInfo& x = cpus[a % n];
  const CpuInfo& y = cpus[b % n];
  if (x.cpu == y.cpu) return 0;  // oversubscribed: same assumed CPU
  if (x.package == y.package && x.core == y.core) return 0;  // SMT siblings
  if (x.llc == y.llc) return 1;
  if (x.package == y.package) return 2;
  return 3;
}

std::vector<unsigned> Topology::steal_order(unsigned self,
                                            unsigned workers) const {
  std::vector<unsigned> order;
  if (workers <= 1) return order;
  order.reserve(workers - 1);
  for (unsigned tier = 0; tier <= 3; ++tier) {
    // Ring order from self+1 within each tier keeps same-tier thieves from
    // all converging on the same victim.
    for (unsigned off = 1; off < workers; ++off) {
      const unsigned v = (self + off) % workers;
      if (worker_distance(self, v) == tier) order.push_back(v);
    }
  }
  return order;
}

std::size_t Topology::near_victims(unsigned self, unsigned workers) const {
  const std::vector<unsigned> order = steal_order(self, workers);
  std::size_t near = 0;
  while (near < order.size() && worker_distance(self, order[near]) < 2) {
    ++near;
  }
  return near;
}

unsigned Topology::recommended_stripes(unsigned workers) const noexcept {
  if (workers == 0) workers = 1;
  // ~4 stripes per worker; the stripe mask is one uint64_t, so 64 is the
  // hard ceiling (see dep/block_tracker.hpp).
  return std::clamp(next_pow2(workers * 4), 8u, 64u);
}

unsigned Topology::recommended_dispatchers(unsigned workers) const noexcept {
  if (workers <= 1) return 1;
  return std::clamp(llc_groups, 1u, std::max(1u, workers / 2));
}

unsigned Topology::recommended_pollers() const noexcept {
  return std::max(1u, llc_groups);
}

}  // namespace sigrt::topo
