// Per-worker two-phase park/unpark ("eventcount") used by the lock-free
// scheduler to replace the seed's single global sleep mutex.
//
// The lost-wakeup problem: a worker checks the queues, finds nothing, and
// goes to sleep; a producer pushes a task in between and its notification
// finds nobody waiting — the task is stranded.  The seed fixed this by
// taking one global mutex around both the producer's counter bump and the
// sleeper's predicate, serializing every enqueue against every park.
//
// This eventcount fixes it without shared locks, Dekker-style:
//
//   worker                                producer
//   ------                                --------
//   1. prepare_wait(w): state=WAITING     1. publish task (release)
//      + seq_cst fence                       + seq_cst fence
//   2. re-check all queues                2. read worker states
//   3a. found work -> cancel_wait(w)      3. CAS WAITING->SIGNALED, wake w
//   3b. empty -> commit_wait(w): block
//
// The two seq_cst fences guarantee at least one side observes the other:
// either the worker's re-check (2) sees the task, or the producer's state
// read (2) sees WAITING and delivers a wake that commit_wait consumes.
// Each slot has its own mutex+condvar, used only on the slow (actually
// sleeping) path; notifying a running worker is two relaxed-ish atomic
// loads and no syscall.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>

#include "support/mutex.hpp"

namespace sigrt {

class EventCount {
 public:
  explicit EventCount(unsigned slots)
      : count_(slots), slots_(new Slot[slots > 0 ? slots : 1]) {}

  EventCount(const EventCount&) = delete;
  EventCount& operator=(const EventCount&) = delete;

  /// Phase 1 (waiter): announce intent to sleep.  Must be followed by a
  /// re-check of every wait condition, then cancel_wait() or commit_wait().
  void prepare_wait(unsigned i) noexcept {
    slots_[i].state.store(kWaiting, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  /// Waiter found work during the re-check: revoke the announcement (and
  /// swallow any signal that raced in — the work is visible either way).
  void cancel_wait(unsigned i) noexcept {
    slots_[i].state.exchange(kActive, std::memory_order_acq_rel);
  }

  /// Phase 2 (waiter): block until a signal arrives.  Returns immediately
  /// if one raced in between prepare and commit.
  void commit_wait(unsigned i) {
    Slot& s = slots_[i];
    support::MutexLock lock(s.mutex);
    while (s.state.load(std::memory_order_acquire) == kWaiting) {
      s.cv.wait(lock.native());
    }
    s.state.store(kActive, std::memory_order_release);
  }

  /// Timed phase 2: additionally returns after `timeout` — used by barrier
  /// waiters under a buffering policy, which must surface periodically to
  /// re-flush the policy window.  A timeout that races with a notify
  /// consumes the signal (the waiter is awake either way); a notify that
  /// lands after the kActive store fails its CAS and treats the worker as
  /// running — no signal is lost, none is duplicated.
  void commit_wait_for(unsigned i, std::chrono::microseconds timeout) {
    Slot& s = slots_[i];
    support::MutexLock lock(s.mutex);
    s.cv.wait_for(lock.native(), timeout, [&s] {
      return s.state.load(std::memory_order_acquire) != kWaiting;
    });
    s.state.store(kActive, std::memory_order_release);
  }

  /// Producer: wake worker `i` iff it is parked (or mid-park).  Returns
  /// true when a signal was delivered, false when the worker was active
  /// (it will find the published work on its own).
  bool notify(unsigned i) noexcept {
    Slot& s = slots_[i];
    std::uint32_t expected = kWaiting;
    if (!s.state.compare_exchange_strong(expected, kSignaled,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      return false;
    }
    // Lock/unlock pairs with the waiter's state check under the same mutex
    // in commit_wait: the signal cannot land between that check and the
    // cv.wait it guards.
    { support::MutexLock lock(s.mutex); }
    s.cv.notify_one();
    return true;
  }

  /// Producer/shutdown: wake every parked worker.
  void notify_all() noexcept {
    for (unsigned i = 0; i < count_; ++i) notify(i);
  }

  /// Cheap waiter probe for wake-target selection (racy by design: a false
  /// negative only means the producer skips a CAS it would have lost).
  [[nodiscard]] bool waiting(unsigned i) const noexcept {
    return slots_[i].state.load(std::memory_order_acquire) == kWaiting;
  }

  [[nodiscard]] unsigned size() const noexcept { return count_; }

 private:
  enum : std::uint32_t { kActive = 0, kWaiting = 1, kSignaled = 2 };

  struct alignas(64) Slot {
    std::atomic<std::uint32_t> state{kActive};
    support::Mutex mutex;            // slow path only: actual sleeping
    std::condition_variable cv;
  };

  const unsigned count_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace sigrt
