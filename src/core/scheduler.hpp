// Lock-free work-stealing scheduler (replacing the mutex-based master/slave
// work-sharing design of §3 of the paper, while keeping its observable
// semantics: per-worker FIFO issue order, stealing when a queue runs dry,
// and the reliable/NTC worker split of the §6 extension).
//
// Architecture (see docs/architecture.md for the full layer diagram):
//
//   * Each worker owns two Chase–Lev deques — one per *partition*.  The
//     partition encodes the NTC routing rule as data placement instead of
//     the seed's modulo-over-two-counters: tasks that may run anywhere
//     (already classified Approximate/Dropped) live in the kAnyWorker
//     partition; everything else (Accurate or still Undecided) lives in the
//     kReliableOnly partition, which unreliable workers neither own-pop nor
//     steal from.  The partition invariant — an unreliable worker's
//     structures only ever hold kAnyWorker tasks — is what lets thieves
//     skip the seed's racy peek-at-the-queue-front eligibility check.
//
//   * Producers that are not workers (the master, a policy flush) push raw
//     Task* into a per-worker lock-free MPSC inbox (Treiber chain); the
//     owner splices its inbox into its deque when the deque runs dry.
//     Thieves may also raid a victim's inbox wholesale so work routed to a
//     busy worker is never stranded.  Workers executing a task push newly
//     released dependents straight onto their own deque (pure owner push).
//     Batches keep issue order on both paths; a lone dependent released
//     mid-execution runs next (depth-first), the classic work-stealing
//     locality order.
//
//   * Parking uses a per-worker two-phase eventcount (see eventcount.hpp):
//     no global sleep mutex, no broadcast wakeups — a producer wakes the
//     routed-to worker, or failing that one parked worker entitled to steal
//     the task.
//
//   * enqueue_bulk() publishes a whole window of ready tasks (a GTB flush,
//     a dependents batch) with one CAS per target inbox and a single fence,
//     then distributes wakes.
//
// Lifetime: every raw Task* inside a deque or inbox carries exactly one
// donated intrusive reference (see task.hpp).  enqueue()/enqueue_bulk()
// consume the caller's reference; the worker that wins the task releases
// it after execution.  There is no shared_ptr, no control block, and no
// per-hop refcount traffic — a task is retained once at enqueue and
// released once at completion.
//
// The execute/dequeue hooks are plain function pointers with an opaque
// context (no std::function): direct calls, no type-erasure allocation,
// trivially hoisted by the compiler.
//
// The inline mode (zero workers) is unchanged from the seed: synchronous
// FIFO execution on the enqueuing thread, used by tests for determinism.
//
// The scheduler also accounts per-worker busy time (task execution only),
// which feeds the energy model's dynamic-power term.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/chase_lev_deque.hpp"
#include "core/eventcount.hpp"
#include "core/task.hpp"
#include "support/rng.hpp"

namespace sigrt {

struct SchedulerStats {
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  std::int64_t busy_ns = 0;
};

class Scheduler {
 public:
  /// `execute` runs one task on the given worker index; it must not throw
  /// (the runtime layer captures task exceptions).  `ctx` is the opaque
  /// pointer passed at construction — the runtime's `this`.
  using ExecuteFn = void (*)(void* ctx, Task& task, unsigned worker);

  /// Optional dequeue hook: called on the executing worker right after it
  /// wins a task and before the body runs.  The runtime wires the policy's
  /// dequeue-time decision point (LQH, §3.4) through this, keeping the
  /// classification worker-local.  Must not throw.
  using DequeueFn = void (*)(void* ctx, Task& task, unsigned worker);

  /// The last `unreliable` workers only execute tasks already classified
  /// Approximate/Dropped (see RuntimeConfig::unreliable_workers); clamped
  /// to workers-1.
  Scheduler(unsigned workers, unsigned unreliable, bool steal, void* ctx,
            ExecuteFn execute, DequeueFn on_dequeue = nullptr);

  /// Releases every parked worker, drains visible work, joins, and (in
  /// debug builds) asserts that every deque and inbox is empty.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Hands a ready (gate == 0) task to a worker, consuming the reference
  /// held by `task`; inline mode executes it (and anything it transitively
  /// readies) before returning.
  void enqueue(TaskRef task) { enqueue_owned(task.detach()); }

  /// Hot-path variant: takes ownership of one already-counted reference.
  void enqueue_owned(Task* task) { enqueue_owned(task, /*post_body=*/false); }

  /// Dependent-release variant: identical ownership semantics, but the
  /// caller asserts it is a worker that has FINISHED its task body and
  /// returns straight to its pop loop.  That guarantee is what licenses
  /// the lone-task wake suppression (see enqueue_owned's owner path); a
  /// mid-body push must use enqueue_owned, whose wake is unconditional.
  void enqueue_released(Task* task) { enqueue_owned(task, /*post_body=*/true); }

  /// Batched enqueue: publishes all `count` ready tasks with one inbox CAS
  /// per target worker and a single fence, then wakes up to `count` parked
  /// workers.  Spawn order is preserved per target queue.  Consumes one
  /// reference per task.
  void enqueue_bulk(Task* const* tasks, std::size_t count);

  /// Convenience for tests and buffered policies: transfers each TaskRef's
  /// reference to the scheduler, leaving the entries empty.
  void enqueue_bulk(std::vector<TaskRef>& tasks);

  /// True when configured with zero worker threads.
  [[nodiscard]] bool inline_mode() const noexcept { return worker_total_ == 0; }

  /// True when the calling thread is one of THIS scheduler's workers
  /// (i.e. a task body is on the call stack).  Thread-local identity, so
  /// nested or concurrent runtimes sharing a thread never confuse workers.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Helping drain for in-task barriers: acquires and runs ONE task on the
  /// calling thread — the calling worker's own deques/inbox first, then a
  /// steal — and returns true if a task ran.  Returns false when no work is
  /// acquirable, or when the calling thread is neither a worker of this
  /// scheduler nor the inline-mode owner.  Re-entrant: the executed body
  /// may itself spawn, wait (help), or throw (captured by the runtime).
  /// Never parks — a helping waiter must stay responsive to its own
  /// barrier condition, which no eventcount signal announces.
  bool help_one();

  /// Fixed at construction before any worker thread starts — safe to read
  /// from workers while the constructor is still emplacing threads.
  [[nodiscard]] unsigned worker_count() const noexcept { return worker_total_; }

  /// Aggregate counters (approximate while workers are running).
  [[nodiscard]] SchedulerStats stats() const;

  /// Cumulative worker busy time in nanoseconds (includes inline execution).
  [[nodiscard]] std::int64_t busy_ns() const;

  /// Diagnostic snapshot (queue sizes, worker states) for deadlock triage.
  void dump(FILE* out) const;

  /// True when `worker` is one of the unreliable (NTC) workers.
  [[nodiscard]] bool is_unreliable(unsigned worker) const noexcept {
    return worker >= reliable_count_;
  }

  [[nodiscard]] unsigned unreliable_count() const noexcept {
    const unsigned n = worker_count();
    return n > reliable_count_ ? n - reliable_count_ : 0;
  }

  /// Busy nanoseconds split into (reliable, unreliable) worker classes —
  /// the energy model charges NTC cores a fraction of the dynamic power.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> busy_ns_split() const;

 private:
  enum class WorkerState : std::uint8_t { Scanning, Running, Sleeping };

  /// Deque-partition rule (replaces the seed's eligibility peek at steal
  /// time): kReliableOnly holds Accurate/Undecided tasks and is invisible
  /// to unreliable workers; kAnyWorker holds finally-classified
  /// Approximate/Dropped tasks and is open to everyone.
  enum Partition : unsigned { kReliableOnly = 0, kAnyWorker = 1 };
  static constexpr unsigned kPartitions = 2;

  struct alignas(64) WorkerSlot {
    ChaseLevDeque<Task*> deque[kPartitions];
    std::atomic<Task*> inbox[kPartitions]{nullptr, nullptr};

    /// Busy time in raw TSC cycles (support::CycleClock); converted to ns
    /// only on the cold stats path.
    std::atomic<std::uint64_t> busy_cycles{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<WorkerState> state{WorkerState::Scanning};  // diagnostics

    support::Xoshiro256 rng;  ///< owner-only: steal-victim randomization
  };

  void worker_loop(unsigned index);
  void run_task(Task* raw, unsigned index);
  /// Dequeue hook + body, returning the busy cycles EXCLUSIVE of execution
  /// frames nested inside the body (helping barriers re-enter execution on
  /// this thread; their cycles are charged once, by the inner frame).
  std::uint64_t run_body_timed(Task& task, unsigned worker);
  void drain_inline();
  void enqueue_owned(Task* task, bool post_body);

  /// Owner-side work acquisition: own deques -> own inboxes -> stealing.
  Task* acquire_work(unsigned index);
  Task* try_steal(unsigned thief);
  /// Splices worker `index`'s inbox[part] into its own deque[part].
  bool drain_own_inbox(unsigned index, Partition part);
  /// Thief-side inbox raid: empties victim's inbox[part], keeps the oldest
  /// task to run and re-exposes the rest through the thief's own deque.
  Task* raid_inbox(unsigned thief, unsigned victim, Partition part);

  /// True when any structure this worker is entitled to take from could
  /// hold work.  Only meaningful between prepare_wait and commit_wait.
  [[nodiscard]] bool has_visible_work(unsigned index) const;

  void dispatch_remote(Task* task, Partition part);
  /// Tasks per round-robin step: consecutive remote enqueues share a target
  /// (and its wake) before rotating to the next worker.
  static constexpr unsigned kRouteChunk = 16;
  /// Yield-and-recheck rounds before a worker commits to parking.
  static constexpr int kParkSpins = 3;
  unsigned pick_target(Partition part) noexcept;
  /// Wakes `preferred` if parked, otherwise up to `count` parked workers
  /// entitled to partition `part`.  Pass kNoPreference to skip the first.
  unsigned wake_workers(unsigned preferred, Partition part, unsigned count);
  static constexpr unsigned kNoPreference = ~0u;

  [[nodiscard]] static Partition partition_of(const Task& task) noexcept {
    return eligible_for_unreliable(task) ? kAnyWorker : kReliableOnly;
  }

  /// May `task` run on an unreliable worker?  Only when its classification
  /// is already final and non-accurate.
  [[nodiscard]] static bool eligible_for_unreliable(const Task& task) noexcept {
    return task.kind == ExecutionKind::Approximate ||
           task.kind == ExecutionKind::Dropped;
  }

  void assert_enqueue_ok(const Task& task);

  const bool steal_enabled_;
  unsigned worker_total_ = 0;
  unsigned reliable_count_ = 0;
  void* ctx_ = nullptr;
  ExecuteFn execute_ = nullptr;
  DequeueFn on_dequeue_ = nullptr;

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  EventCount ec_;
  std::vector<std::thread> workers_;
  std::atomic<unsigned> next_reliable_{0};  ///< round-robin over reliable workers
  std::atomic<unsigned> next_any_{0};       ///< round-robin over all workers
  std::atomic<bool> stopping_{false};

  // Inline-mode state (single-threaded by construction).  Entries carry the
  // same donated reference as the threaded deques.
  std::deque<Task*> inline_queue_;
  bool inline_draining_ = false;
  std::uint64_t inline_busy_cycles_ = 0;
  std::uint64_t inline_executed_ = 0;
};

}  // namespace sigrt
