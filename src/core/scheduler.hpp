// Master/slave work-sharing scheduler (§3 of the paper).
//
// The master thread enqueues ready tasks round-robin across per-worker
// FIFO queues.  Workers execute the oldest task of their own queue and
// steal from other queues when theirs runs dry.  An inline mode (zero
// workers) executes tasks synchronously on the enqueuing thread; it keeps
// unit tests deterministic and lets the library run in single-threaded
// contexts.
//
// The scheduler also accounts per-worker busy time (task execution only),
// which feeds the energy model's dynamic-power term.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <cstdio>
#include <utility>
#include <thread>
#include <vector>

#include "core/task.hpp"

namespace sigrt {

struct SchedulerStats {
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  std::int64_t busy_ns = 0;
};

class Scheduler {
 public:
  /// `execute` runs one task on the given worker index; it must not throw
  /// (the runtime layer captures task exceptions).
  using ExecuteFn = std::function<void(const TaskPtr&, unsigned worker)>;

  /// The last `unreliable` workers only execute tasks already classified
  /// Approximate/Dropped (see RuntimeConfig::unreliable_workers); clamped
  /// to workers-1.
  Scheduler(unsigned workers, unsigned unreliable, bool steal, ExecuteFn execute);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Hands a ready (gate == 0) task to a worker queue; inline mode executes
  /// it (and anything it transitively readies) before returning.
  void enqueue(const TaskPtr& task);

  /// True when configured with zero worker threads.
  [[nodiscard]] bool inline_mode() const noexcept { return workers_.empty(); }

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Aggregate counters (approximate while workers are running).
  [[nodiscard]] SchedulerStats stats() const;

  /// Cumulative worker busy time in nanoseconds (includes inline execution).
  [[nodiscard]] std::int64_t busy_ns() const;

  /// Diagnostic snapshot (queue sizes, ready counter) for deadlock triage.
  void dump(FILE* out) const;

  /// True when `worker` is one of the unreliable (NTC) workers.
  [[nodiscard]] bool is_unreliable(unsigned worker) const noexcept {
    return worker >= reliable_count_;
  }

  [[nodiscard]] unsigned unreliable_count() const noexcept {
    const unsigned n = worker_count();
    return n > reliable_count_ ? n - reliable_count_ : 0;
  }

  /// Busy nanoseconds split into (reliable, unreliable) worker classes —
  /// the energy model charges NTC cores a fraction of the dynamic power.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> busy_ns_split() const;

 private:
  enum class WorkerState : std::uint8_t { Scanning, Running, Sleeping };

  struct alignas(64) WorkerSlot {
    mutable std::mutex mutex;
    std::deque<TaskPtr> queue;
    std::int64_t busy_ns = 0;       // written by owning worker only
    std::uint64_t executed = 0;     // idem
    std::uint64_t steals = 0;       // idem
    std::atomic<WorkerState> state{WorkerState::Scanning};  // diagnostics
  };

  void worker_loop(unsigned index);
  bool try_pop_own(unsigned index, TaskPtr& out);
  bool try_steal(unsigned thief, TaskPtr& out);
  void run_task(const TaskPtr& task, unsigned index);
  void drain_inline();

  /// May `task` run on an unreliable worker?  Only when its classification
  /// is already final and non-accurate.
  [[nodiscard]] static bool eligible_for_unreliable(const Task& task) noexcept {
    return task.kind == ExecutionKind::Approximate ||
           task.kind == ExecutionKind::Dropped;
  }

  const bool steal_enabled_;
  unsigned reliable_count_ = 0;
  ExecuteFn execute_;
  std::atomic<unsigned> next_any_worker_{0};

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::vector<std::thread> workers_;
  std::atomic<unsigned> next_worker_{0};
  std::atomic<std::size_t> ready_count_{0};
  std::atomic<bool> stopping_{false};

  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;

  // Inline-mode state (single-threaded by construction).
  std::deque<TaskPtr> inline_queue_;
  bool inline_draining_ = false;
  std::int64_t inline_busy_ns_ = 0;
  std::uint64_t inline_executed_ = 0;
};

}  // namespace sigrt
