// Lock-free work-stealing scheduler (replacing the mutex-based master/slave
// work-sharing design of §3 of the paper, while keeping its observable
// semantics: per-worker FIFO issue order, stealing when a queue runs dry,
// and the reliable/NTC worker split of the §6 extension).
//
// Architecture (see docs/architecture.md for the full layer diagram):
//
//   * Each worker owns two Chase–Lev deques — one per *partition*.  The
//     partition encodes the NTC routing rule as data placement instead of
//     the seed's modulo-over-two-counters: tasks that may run anywhere
//     (already classified Approximate/Dropped) live in the kAnyWorker
//     partition; everything else (Accurate or still Undecided) lives in the
//     kReliableOnly partition, which unreliable workers neither own-pop nor
//     steal from.  The partition invariant — an unreliable worker's
//     structures only ever hold kAnyWorker tasks — is what lets thieves
//     skip the seed's racy peek-at-the-queue-front eligibility check.
//
//   * Producers that are not workers (the master, a policy flush) push raw
//     Task* into a per-worker lock-free MPSC inbox (Treiber chain); the
//     owner splices its inbox into its deque when the deque runs dry.
//     Thieves may also raid a victim's inbox wholesale so work routed to a
//     busy worker is never stranded.  Workers executing a task push newly
//     released dependents straight onto their own deque (pure owner push).
//     Batches keep issue order on both paths; a lone dependent released
//     mid-execution runs next (depth-first), the classic work-stealing
//     locality order.
//
//   * Parking uses a per-worker two-phase eventcount (see eventcount.hpp):
//     no global sleep mutex, no broadcast wakeups — a producer wakes the
//     routed-to worker, or failing that one parked worker entitled to steal
//     the task.
//
//   * enqueue_bulk() publishes a whole window of ready tasks (a GTB flush,
//     a dependents batch) with one CAS per target inbox and a single fence,
//     then distributes wakes.
//
// Lifetime: every raw Task* inside a deque or inbox carries exactly one
// donated intrusive reference (see task.hpp).  enqueue()/enqueue_bulk()
// consume the caller's reference; the worker that wins the task releases
// it after execution.  There is no shared_ptr, no control block, and no
// per-hop refcount traffic — a task is retained once at enqueue and
// released once at completion.
//
// The execute/dequeue hooks are plain function pointers with an opaque
// context (no std::function): direct calls, no type-erasure allocation,
// trivially hoisted by the compiler.
//
// The inline mode (zero workers) is unchanged from the seed: synchronous
// FIFO execution on the enqueuing thread, used by tests for determinism.
//
// The scheduler also accounts per-worker busy time (task execution only),
// which feeds the energy model's dynamic-power term.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/chase_lev_deque.hpp"
#include "core/eventcount.hpp"
#include "core/task.hpp"
#include "core/topology.hpp"
#include "support/mutex.hpp"
#include "support/rng.hpp"

namespace sigrt {

struct SchedulerStats {
  std::uint64_t executed = 0;
  std::uint64_t steals = 0;
  std::int64_t busy_ns = 0;
};

/// Elastic-pool and steal-locality counters (approximate while running).
struct PoolStats {
  std::uint64_t handoffs = 0;        ///< worker slots handed to spares
  std::uint64_t spares_spawned = 0;  ///< threads created beyond the base pool
  std::uint64_t spares_retired = 0;  ///< surplus threads exited after grace
  unsigned live_threads = 0;         ///< threads currently alive
  unsigned idle_spares = 0;          ///< threads parked awaiting a slot
  std::uint64_t near_steals = 0;     ///< deque steals from cache-near victims
  std::uint64_t far_steals = 0;      ///< deque steals across packages
};

/// Elastic-pool tuning, normally filled from RuntimeConfig.
struct SchedulerOptions {
  /// Spare threads allowed beyond the base worker count; 0 disables slot
  /// handoff (detach_for_blocking always fails).
  unsigned max_spares = 16;
  /// Idle grace before a surplus spare retires.
  std::chrono::milliseconds spare_grace{5};
  /// Topology driving the steal order; nullptr probes the host.
  const topo::Topology* topology = nullptr;
};

class Scheduler {
 public:
  /// `execute` runs one task on the given worker index; it must not throw
  /// (the runtime layer captures task exceptions).  `ctx` is the opaque
  /// pointer passed at construction — the runtime's `this`.
  using ExecuteFn = void (*)(void* ctx, Task& task, unsigned worker);

  /// Optional dequeue hook: called on the executing worker right after it
  /// wins a task and before the body runs.  The runtime wires the policy's
  /// dequeue-time decision point (LQH, §3.4) through this, keeping the
  /// classification worker-local.  Must not throw.
  using DequeueFn = void (*)(void* ctx, Task& task, unsigned worker);

  /// The last `unreliable` workers only execute tasks already classified
  /// Approximate/Dropped (see RuntimeConfig::unreliable_workers); clamped
  /// to workers-1.
  Scheduler(unsigned workers, unsigned unreliable, bool steal, void* ctx,
            ExecuteFn execute, DequeueFn on_dequeue = nullptr,
            SchedulerOptions options = {});

  /// Releases every parked worker, drains visible work, joins, and (in
  /// debug builds) asserts that every deque and inbox is empty.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Hands a ready (gate == 0) task to a worker, consuming the reference
  /// held by `task`; inline mode executes it (and anything it transitively
  /// readies) before returning.
  void enqueue(TaskRef task) { enqueue_owned(task.detach()); }

  /// Hot-path variant: takes ownership of one already-counted reference.
  void enqueue_owned(Task* task) { enqueue_owned(task, /*post_body=*/false); }

  /// Dependent-release variant: identical ownership semantics, but the
  /// caller asserts it is a worker that has FINISHED its task body and
  /// returns straight to its pop loop.  That guarantee is what licenses
  /// the lone-task wake suppression (see enqueue_owned's owner path); a
  /// mid-body push must use enqueue_owned, whose wake is unconditional.
  void enqueue_released(Task* task) { enqueue_owned(task, /*post_body=*/true); }

  /// Batched enqueue: publishes all `count` ready tasks with one inbox CAS
  /// per target worker and a single fence, then wakes up to `count` parked
  /// workers.  Spawn order is preserved per target queue.  Consumes one
  /// reference per task.
  void enqueue_bulk(Task* const* tasks, std::size_t count);

  /// Convenience for tests and buffered policies: transfers each TaskRef's
  /// reference to the scheduler, leaving the entries empty.
  void enqueue_bulk(std::vector<TaskRef>& tasks);

  /// True when configured with zero worker threads.
  [[nodiscard]] bool inline_mode() const noexcept { return worker_total_ == 0; }

  /// True when the calling thread is one of THIS scheduler's workers
  /// (i.e. a task body is on the call stack).  Thread-local identity, so
  /// nested or concurrent runtimes sharing a thread never confuse workers.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Helping drain for in-task barriers: acquires and runs ONE task on the
  /// calling thread — the calling worker's own deques/inbox first, then a
  /// steal — and returns true if a task ran.  Returns false when no work is
  /// acquirable, or when the calling thread is neither a worker of this
  /// scheduler nor the inline-mode owner.  Re-entrant: the executed body
  /// may itself spawn, wait (help), or throw (captured by the runtime).
  /// Never parks — a helping waiter must stay responsive to its own
  /// barrier condition, which no eventcount signal announces.
  bool help_one();

  // --- elastic pool (threads are fungible, slots are identity) -----------
  //
  // A worker SLOT (deques, inbox, eventcount entry, counters) has exactly
  // one owning thread at a time, but which thread owns it can change: a
  // worker about to block — an in-task taskwait past the helping-depth
  // cap, or a declared blocking section — hands its slot to a spare
  // thread and continues DETACHED.  A detached thread may finish its
  // current task body (its enqueues route remotely, its completions go to
  // shared counters) but can no longer help or pop; when its body unwinds
  // it re-enters the spare pool, where surplus threads retire after an
  // idle grace period.  The pool is bounded (base workers + max_spares),
  // so a detach can fail — callers must then keep helping instead.

  /// Hands the calling worker's slot to a spare thread so the caller may
  /// block.  Returns true on success (the caller is now detached — see
  /// above); false when the caller is not a slot-owning worker, the spare
  /// budget is exhausted, or the scheduler is stopping.
  bool detach_for_blocking();

  /// True when the calling thread currently owns a worker slot (a
  /// detached worker is on_worker_thread() but not slot-owning).
  [[nodiscard]] bool owns_current_slot() const noexcept;

  /// The calling thread's slot index; only meaningful when
  /// owns_current_slot().
  [[nodiscard]] unsigned current_worker() const noexcept;

  /// True when the calling thread owns a slot in the unreliable (NTC)
  /// range — the work-first inline throttle must not run Undecided tasks
  /// there.
  [[nodiscard]] bool current_worker_unreliable() const noexcept;

  /// Tasks queued in the calling worker's own deques (0 when the caller
  /// is not a slot-owning worker).  Drives the spawn throttle watermark.
  [[nodiscard]] std::size_t own_queue_depth() const noexcept;

  /// Work-first inline execution: runs `task` (one donated reference,
  /// gate == 0) immediately on the calling slot-owning worker, exactly as
  /// if it had been popped — dequeue hook, busy accounting, release.
  /// Caller must hold owns_current_slot().
  void run_now(Task* task);

  /// Two-phase park on the calling worker's eventcount slot for a helping
  /// barrier waiter: announces, re-checks `open(ctx)` plus visible work
  /// plus shutdown, then blocks (bounded by `timeout` unless zero).
  /// Returns false without parking when the re-check fired or the caller
  /// is not a slot-owning worker.  Producers wake the slot on new work as
  /// usual; the barrier's completion side wakes it via notify_worker.
  bool park_worker_for_barrier(bool (*open)(void*), void* ctx,
                               std::chrono::microseconds timeout);

  /// Wake worker slot `i` if parked (barrier-completion wakeups).
  void notify_worker(unsigned i) noexcept { ec_.notify(i); }

  /// Elastic-pool and steal-locality counters.
  [[nodiscard]] PoolStats pool_stats() const;

  /// Per-worker {near, far} steal counters, indexed by slot (reporting
  /// path — allocates the result vector).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  steal_locality() const;

  /// Fixed at construction before any worker thread starts — safe to read
  /// from workers while the constructor is still emplacing threads.
  [[nodiscard]] unsigned worker_count() const noexcept { return worker_total_; }

  /// Aggregate counters (approximate while workers are running).
  [[nodiscard]] SchedulerStats stats() const;

  /// Cumulative worker busy time in nanoseconds (includes inline execution).
  [[nodiscard]] std::int64_t busy_ns() const;

  /// Diagnostic snapshot (queue sizes, worker states) for deadlock triage.
  void dump(FILE* out) const;

  /// True when `worker` is one of the unreliable (NTC) workers.
  [[nodiscard]] bool is_unreliable(unsigned worker) const noexcept {
    return worker >= reliable_count_;
  }

  [[nodiscard]] unsigned unreliable_count() const noexcept {
    const unsigned n = worker_count();
    return n > reliable_count_ ? n - reliable_count_ : 0;
  }

  /// Busy nanoseconds split into (reliable, unreliable) worker classes —
  /// the energy model charges NTC cores a fraction of the dynamic power.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> busy_ns_split() const;

 private:
  enum class WorkerState : std::uint8_t { Scanning, Running, Sleeping };

  /// Deque-partition rule (replaces the seed's eligibility peek at steal
  /// time): kReliableOnly holds Accurate/Undecided tasks and is invisible
  /// to unreliable workers; kAnyWorker holds finally-classified
  /// Approximate/Dropped tasks and is open to everyone.
  enum Partition : unsigned { kReliableOnly = 0, kAnyWorker = 1 };
  static constexpr unsigned kPartitions = 2;

  struct alignas(64) WorkerSlot {
    ChaseLevDeque<Task*> deque[kPartitions];
    std::atomic<Task*> inbox[kPartitions]{nullptr, nullptr};

    /// Busy time in raw TSC cycles (support::CycleClock); converted to ns
    /// only on the cold stats path.
    std::atomic<std::uint64_t> busy_cycles{0};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> steals{0};
    /// Steal locality: successful deque steals split by victim distance
    /// (near = SMT sibling or shared LLC, far = cross-package).
    std::atomic<std::uint64_t> near_steals{0};
    std::atomic<std::uint64_t> far_steals{0};
    std::atomic<WorkerState> state{WorkerState::Scanning};  // diagnostics

    support::Xoshiro256 rng;  ///< owner-only: steal-victim randomization

    /// Victim order, nearest-first (topology tiers); immutable after
    /// construction.  near_count prefixes the cache-near victims.
    std::vector<unsigned> steal_order;
    std::size_t near_count = 0;
  };

  /// One pool thread (base worker or spare).  `exited` lets the spawner
  /// reap finished threads opportunistically under pool_mutex_.
  struct PoolThread {
    std::thread th;
    std::atomic<bool> exited{false};
  };

  void thread_main(PoolThread* self, int slot);
  /// slot >= 0 binds the new thread to that slot immediately
  /// (construction); -1 spawns a spare that adopts from free_slots_.
  void spawn_pool_thread_locked(int slot) SIGRT_REQUIRES(pool_mutex_);
  void reap_exited_locked() SIGRT_REQUIRES(pool_mutex_);

  void worker_loop(unsigned index);
  void run_task(Task* raw, unsigned index);
  /// Dequeue hook + body, returning the busy cycles EXCLUSIVE of execution
  /// frames nested inside the body (helping barriers re-enter execution on
  /// this thread; their cycles are charged once, by the inner frame).
  std::uint64_t run_body_timed(Task& task, unsigned worker);
  void drain_inline();
  void enqueue_owned(Task* task, bool post_body);

  /// Owner-side work acquisition: own deques -> own inboxes -> stealing.
  Task* acquire_work(unsigned index);
  Task* try_steal(unsigned thief);
  /// Splices worker `index`'s inbox[part] into its own deque[part].
  bool drain_own_inbox(unsigned index, Partition part);
  /// Thief-side inbox raid: empties victim's inbox[part], keeps the oldest
  /// task to run and re-exposes the rest through the thief's own deque.
  Task* raid_inbox(unsigned thief, unsigned victim, Partition part);

  /// True when any structure this worker is entitled to take from could
  /// hold work.  Only meaningful between prepare_wait and commit_wait.
  [[nodiscard]] bool has_visible_work(unsigned index) const;

  void dispatch_remote(Task* task, Partition part);
  /// Tasks per round-robin step: consecutive remote enqueues share a target
  /// (and its wake) before rotating to the next worker.
  static constexpr unsigned kRouteChunk = 16;
  /// Yield-and-recheck rounds before a worker commits to parking.
  static constexpr int kParkSpins = 3;
  unsigned pick_target(Partition part) noexcept;
  /// Wakes `preferred` if parked, otherwise up to `count` parked workers
  /// entitled to partition `part`.  Pass kNoPreference to skip the first.
  unsigned wake_workers(unsigned preferred, Partition part, unsigned count);
  static constexpr unsigned kNoPreference = ~0u;

  [[nodiscard]] static Partition partition_of(const Task& task) noexcept {
    return eligible_for_unreliable(task) ? kAnyWorker : kReliableOnly;
  }

  /// May `task` run on an unreliable worker?  When its classification is
  /// already final and non-accurate — or when the runtime marked it
  /// unreliable_ok: an accurate task whose check() validator plus redo
  /// budget make unreliable execution recoverable (the §6 check/redo
  /// contract; a redo clears the flag so retries pin to reliable workers).
  [[nodiscard]] static bool eligible_for_unreliable(const Task& task) noexcept {
    return task.kind == ExecutionKind::Approximate ||
           task.kind == ExecutionKind::Dropped || task.unreliable_ok;
  }

  void assert_enqueue_ok(const Task& task);

  const bool steal_enabled_;
  unsigned worker_total_ = 0;
  unsigned reliable_count_ = 0;
  void* ctx_ = nullptr;
  ExecuteFn execute_ = nullptr;
  DequeueFn on_dequeue_ = nullptr;

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  EventCount ec_;
  std::atomic<unsigned> next_reliable_{0};  ///< round-robin over reliable workers
  std::atomic<unsigned> next_any_{0};       ///< round-robin over all workers
  std::atomic<bool> stopping_{false};

  // --- elastic pool state (all guarded by pool_mutex_ unless atomic) -----
  unsigned max_spares_ = 0;
  std::chrono::milliseconds spare_grace_{5};
  mutable support::Mutex pool_mutex_;
  std::condition_variable pool_cv_;
  std::vector<std::unique_ptr<PoolThread>> pool_threads_
      SIGRT_GUARDED_BY(pool_mutex_);
  /// Slots awaiting a new owner.
  std::vector<unsigned> free_slots_ SIGRT_GUARDED_BY(pool_mutex_);
  /// Threads parked in pool_cv_.
  unsigned idle_spares_ SIGRT_GUARDED_BY(pool_mutex_) = 0;
  unsigned live_threads_ SIGRT_GUARDED_BY(pool_mutex_) = 0;
  std::uint64_t handoffs_ SIGRT_GUARDED_BY(pool_mutex_) = 0;
  std::uint64_t spares_spawned_ SIGRT_GUARDED_BY(pool_mutex_) = 0;
  std::uint64_t spares_retired_ SIGRT_GUARDED_BY(pool_mutex_) = 0;
  /// Completions by detached threads (their old slot's single-writer
  /// counters belong to the new owner).
  std::atomic<std::uint64_t> detached_busy_cycles_{0};
  std::atomic<std::uint64_t> detached_executed_{0};

  // Inline-mode state (single-threaded by construction).  Entries carry the
  // same donated reference as the threaded deques.
  std::deque<Task*> inline_queue_;
  bool inline_draining_ = false;
  std::uint64_t inline_busy_cycles_ = 0;
  std::uint64_t inline_executed_ = 0;
};

}  // namespace sigrt
