#include "core/policy_lqh.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/group.hpp"

namespace sigrt {

LqhPolicy::LqhPolicy(unsigned levels, unsigned workers)
    : levels_(std::max(2u, levels)), workers_(std::max(1u, workers)) {}

unsigned LqhPolicy::level_of(float significance) const noexcept {
  const float clamped = std::clamp(significance, 0.0f, 1.0f);
  return static_cast<unsigned>(
      std::lround(clamped * static_cast<float>(levels_ - 1)));
}

void LqhPolicy::on_spawn(const TaskPtr& task, IssueSink& sink) {
  sink.release(task);  // no buffering: decision happens at dequeue
}

void LqhPolicy::flush(GroupId /*group*/, IssueSink& /*sink*/) {
  // Nothing buffered, nothing to flush.
}

ExecutionKind LqhPolicy::decide(const Task& task, unsigned worker_index,
                                IssueSink& sink) {
  // Called from the scheduler's worker loop (dequeue hook) on the worker
  // that won the task; touches only that worker's slot, so no locks.
  // Special significance values bypass the history entirely (§2).
  if (task.significance >= 1.0f) return ExecutionKind::Accurate;
  if (task.significance <= 0.0f) return ExecutionKind::Approximate;

  assert(worker_index < workers_.size());
  WorkerState& w = workers_[worker_index];
  if (task.group >= w.groups.size()) w.groups.resize(task.group + 1);
  GroupHistory& h = w.groups[task.group];
  if (h.seen.empty()) {
    h.seen.assign(levels_, 0);
    h.approximated.assign(levels_, 0);
    h.block.assign((levels_ >> kBlockShift) + 1, 0);
  }

  const unsigned level = level_of(task.significance);
  ++h.seen[level];
  ++h.block[level >> kBlockShift];
  ++h.total;

  // t_g(s) bookkeeping: cumulative count strictly below this level, from
  // the two-level histogram (whole blocks + the partial leading block).
  std::uint64_t below = 0;
  for (unsigned b = 0; b < (level >> kBlockShift); ++b) below += h.block[b];
  for (unsigned l = level & ~((1u << kBlockShift) - 1); l < level; ++l) {
    below += h.seen[l];
  }
  const std::uint64_t at = h.seen[level];

  const double ratio = sink.group_ref(task.group).ratio();
  const double budget = (1.0 - ratio) * static_cast<double>(h.total);

  ExecutionKind kind;
  if (static_cast<double>(below) >= budget) {
    // Enough lower-significance tasks cover the approximation budget.
    kind = ExecutionKind::Accurate;
  } else if (static_cast<double>(below + at) <= budget) {
    // This whole level sits inside the budget.
    kind = ExecutionKind::Approximate;
  } else {
    // Boundary level: split it so the approximated share of the level
    // converges to the budget remainder (deterministic per-level counter).
    const double level_share =
        (budget - static_cast<double>(below)) / static_cast<double>(at);
    const bool approx =
        static_cast<double>(h.approximated[level]) < level_share * static_cast<double>(at);
    kind = approx ? ExecutionKind::Approximate : ExecutionKind::Accurate;
  }

  if (kind == ExecutionKind::Approximate) ++h.approximated[level];
  return kind;
}

}  // namespace sigrt
