// Global Task Buffering (GTB), §3.3 / Listing 4 of the paper.
//
// Spawned tasks are buffered per group instead of issued.  When a buffer
// fills, or a barrier flushes it, the buffered window is sorted by
// significance and the top ratio()·window tasks are classified accurate,
// the rest approximate.  With an unbounded buffer (GTBMaxBuffer / Oracle)
// the classification is exact: it equals the offline-optimal assignment.
//
// Thread safety (the any-thread spawn contract): the per-group windows are
// guarded by one mutex, held only while mutating the buffers — a window
// that fills or flushes is MOVED out under the lock and classified/released
// outside it, so concurrent spawners never serialize behind a sort, two
// barriers flushing concurrently each release a disjoint window exactly
// once, and a release that executes inline (zero-worker mode) can
// recursively spawn into this policy without self-deadlock.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/policy.hpp"
#include "support/mutex.hpp"

namespace sigrt {

class GtbPolicy : public Policy {
 public:
  /// `buffer_capacity` tasks are buffered per group before a forced flush;
  /// SIZE_MAX buffers until the barrier (Max Buffer flavor).
  explicit GtbPolicy(std::size_t buffer_capacity, bool max_buffer = false);

  [[nodiscard]] const char* name() const noexcept override {
    return max_buffer_ ? "GTB(MaxBuffer)" : "GTB";
  }

  void on_spawn(const TaskPtr& task, IssueSink& sink) override;
  void flush(GroupId group, IssueSink& sink) override;
  [[nodiscard]] ExecutionKind decide(const Task& task, unsigned worker_index,
                                     IssueSink& sink) override;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Sorts one group's window, classifies it per Listing 4 and releases all
  /// tasks to the sink.
  void classify_and_release(GroupId group, std::vector<TaskPtr>& window,
                            IssueSink& sink);

  const std::size_t capacity_;
  const bool max_buffer_;
  // Guards buffers_ only; classification runs on moved-out windows.
  support::Mutex mutex_;
  std::unordered_map<GroupId, std::vector<TaskPtr>> buffers_
      SIGRT_GUARDED_BY(mutex_);
};

}  // namespace sigrt
