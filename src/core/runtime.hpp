// The significance-aware runtime facade: ties together the dependence
// tracker, the classification policy, the work-sharing scheduler, group
// accounting and energy measurement.
//
// Typical use (Sobel, Listing 1 of the paper):
//
//   sigrt::Runtime rt({.workers = 16, .policy = sigrt::PolicyKind::GTB});
//   const auto sobel = rt.create_group("sobel", /*ratio=*/0.35);
//   for (int i = 1; i < HEIGHT - 1; ++i) {
//     rt.spawn(sigrt::task([=, &img, &res] { sbl_task(res, img, i); })
//                  .approx([=, &img, &res] { sbl_task_appr(res, img, i); })
//                  .significance((i % 9 + 1) / 10.0)
//                  .group(sobel)
//                  .in(img.data(), img.size())
//                  .out(res.row(i), WIDTH));
//   }
//   rt.wait_group(sobel);   // #pragma omp taskwait label(sobel) ratio(0.35)
//
// Threading contract (any-thread): spawn(), wait_all(), wait_group() and
// wait_on() are safe from ANY thread — multiple concurrent spawner threads,
// and task bodies themselves (nested parallelism, the OpenMP tasking model
// the paper lowers to).  Specifics:
//
//   * Worker-side spawns push straight into the calling worker's own
//     Chase-Lev deque (no inbox hop); task ids are minted from one atomic
//     counter, unique across any number of concurrent spawners.
//   * A taskwait issued from inside a task body never blocks the worker's
//     OS thread: it enters a helping loop that drains/steals and executes
//     tasks until the barrier opens.  In-task wait_all() barriers on the
//     calling task's CHILDREN (OpenMP `#pragma omp taskwait` semantics) —
//     a global pending==0 barrier would count the waiting task itself and
//     deadlock sibling waiters.  Top-level wait_all() keeps the global
//     everything-spawned-so-far barrier.  In-task wait_group(g) helps
//     until g quiesces; calling it from inside a task of g itself — or
//     while a task of g sits suspended beneath the caller on the worker's
//     helping stack — can never open (the waiter stays pending in g until
//     its body returns) and throws std::logic_error instead of
//     deadlocking.  Use in-task wait_all() (children scope) there.
//   * create_group/ensure_group/set_ratio are safe from any thread (the
//     group table is lock-free and the ratio is a relaxed atomic — see the
//     table in docs/architecture.md); stats and activity are readable from
//     any thread.
//   * Exception — inline mode (workers == 0): execution happens
//     synchronously on the enqueuing thread over an unsynchronized queue
//     (the deterministic single-threaded twin used by tests), so the
//     any-thread contract requires workers >= 1.  Inline-mode clients must
//     drive the runtime from one thread at a time; nesting (spawn/taskwait
//     from inside bodies) is fully supported there.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/group.hpp"
#include "core/policy.hpp"
#include "core/scheduler.hpp"
#include "core/task.hpp"
#include "core/task_options.hpp"
#include "core/types.hpp"
#include "dep/block_tracker.hpp"
#include "energy/meter.hpp"

namespace sigrt {

/// Aggregate runtime counters (see GroupReport for per-group accounting).
struct RuntimeStats {
  std::uint64_t spawned = 0;
  std::uint64_t accurate = 0;
  std::uint64_t approximate = 0;
  std::uint64_t dropped = 0;
  std::uint64_t steals = 0;
  std::uint64_t dep_edges = 0;
  /// Spawns executed inline on the spawner by the work-first throttle
  /// (own queue above spawn_inline_watermark).
  std::uint64_t inline_spawns = 0;
  /// Approximate tasks lost to injected NTC faults (§6 extension).
  std::uint64_t faults = 0;
  /// Accurate re-executions after a body fault or check() rejection
  /// (summed over groups; one count per re-execution).
  std::uint64_t redone = 0;
  /// check() rejections — silent corruptions caught by validators.
  std::uint64_t corrupted_detected = 0;
  double busy_s = 0.0;
  double wall_s = 0.0;
};

class Runtime final : public energy::ActivitySource, private IssueSink {
 public:
  explicit Runtime(RuntimeConfig config = {});

  /// Quiesces (flush + wait) and joins the workers.  Pending task errors are
  /// swallowed here; call wait_all() first if you care about them.
  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- groups ------------------------------------------------------------

  /// Creates a task group (the label() clause) with its accurate-execution
  /// ratio().  Creating an existing name returns the existing group and
  /// retargets its ratio.
  GroupId create_group(const std::string& name, double ratio);

  /// Find-or-create by name without retargeting an existing group's ratio.
  /// New groups start at ratio 1.0 until a taskwait ratio() sets them (this
  /// is tpc_init_group's find-or-create behaviour, §3.1).
  GroupId ensure_group(const std::string& name);

  /// Retargets a group's ratio() — e.g. Fluidanimate alternates 1.0 / r
  /// between time steps (§4.1), and the serving layer's QosController
  /// retargets it every epoch from its own thread.
  ///
  /// Safe from ANY thread, concurrently with spawns and classification: the
  /// group lookup goes through the lock-free group table and the ratio is a
  /// relaxed atomic store.  The relaxed contract means no synchronization
  /// is implied — a task classified concurrently with the store may observe
  /// either the old or the new ratio, and tasks already classified (GTB) or
  /// already dequeued keep the decision they got.  Callers needing a hard
  /// cut must barrier (wait_group) around the retarget.
  void set_ratio(GroupId group, double ratio);

  [[nodiscard]] TaskGroup& group(GroupId id);
  [[nodiscard]] GroupReport group_report(GroupId id) const;
  [[nodiscard]] std::vector<GroupReport> all_group_reports() const;

  // --- spawning & synchronization -----------------------------------------

  /// Spawns a task.  Significance outside [0,1] is clamped.  Throws
  /// std::invalid_argument when no accurate body is provided.
  void spawn(TaskOptions options);
  /// Builder overload: consumes the builder's options in place (single move
  /// per body, no intermediate TaskOptions).
  void spawn(TaskBuilder&& builder) {
    spawn_impl(std::move(builder).take(), /*internal=*/false);
  }

  /// #pragma omp taskwait — from outside any task body: barrier over all
  /// tasks spawned so far; from inside one: barrier over the calling
  /// task's children, executed as a non-blocking helping loop (see the
  /// header comment).  Rethrows the first exception thrown by any task
  /// since the last wait.
  void wait_all();

  /// #pragma omp taskwait label(...) — barrier over one group.  In-task
  /// callers help instead of blocking.  Throws std::logic_error when the
  /// calling task (or any task suspended beneath it on this thread's
  /// helping stack) belongs to `group` — that wait can never open; see the
  /// header comment.
  void wait_group(GroupId group);

  /// #pragma omp taskwait on(...) — waits for the pending writers of the
  /// given byte range.  In-task callers help instead of blocking.
  void wait_on(const void* ptr, std::size_t bytes);

  /// Declares that the calling thread is about to block outside the
  /// runtime (a socket read, an external condvar).  From inside a task
  /// body on a slot-owning worker this hands the worker slot to a spare
  /// thread so the pool keeps its parallelism while the body blocks;
  /// returns true when a handoff happened.  One-way per episode: the
  /// thread re-pools when the task body unwinds, not when this returns.
  /// No-op (false) from non-worker threads, in inline mode, or when
  /// event_wakeup/max_spare_threads disable the elastic pool.
  bool begin_blocking();

  /// Elastic-pool counters (handoffs, spares, steal locality).
  [[nodiscard]] PoolStats pool_stats() const;

  /// Per-worker {near, far} steal counters, indexed by worker slot
  /// (reporting path — allocates the result vector).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
  steal_locality() const;

  // --- introspection -------------------------------------------------------

  [[nodiscard]] RuntimeStats stats() const;
  [[nodiscard]] const RuntimeConfig& config() const noexcept { return config_; }
  [[nodiscard]] const char* policy_name() const noexcept {
    return policy_->name();
  }
  [[nodiscard]] const dep::BlockTracker& tracker() const noexcept {
    return tracker_;
  }

  /// Energy meter: RAPL when available, the E5-2650 activity model
  /// otherwise.  Wrap regions in energy::Scope to measure.
  [[nodiscard]] energy::Meter& meter() noexcept { return *meter_; }

  /// ActivitySource: cumulative wall/busy seconds for the model meter.
  [[nodiscard]] energy::Activity activity_now() const override;

  /// Diagnostic snapshot of pending counters and scheduler queues; written
  /// to `out`.  Intended for deadlock/stall triage from a watchdog thread.
  void dump_state(FILE* out) const;

 private:
  // IssueSink.  release_bulk turns a policy window (a GTB flush) into one
  // batched scheduler enqueue — the spawn-batching fast path — using a
  // thread-local scratch buffer, so a flush allocates nothing.
  void release(const TaskPtr& task) override;
  void release_bulk(const std::vector<TaskPtr>& tasks) override;
  [[nodiscard]] TaskGroup& group_ref(GroupId id) override;

  void execute_task(Task& task, unsigned worker);
  void classify_at_dequeue(Task& task, unsigned worker);
  void spawn_impl(TaskOptions&& options, bool internal);
  /// Helping barrier core: runs/steals tasks on the calling thread until
  /// `done()` holds.  With event_wakeup, a waiter that finds nothing
  /// acquirable registers a BarrierWaiter on `wtask` (children scope) or
  /// `wgroup` (quiescence scope) and parks — on its eventcount slot while
  /// it owns one, on its Parker once it has handed the slot to a spare
  /// (helping depth past the cap, or an enclosing begin_blocking()).  With
  /// neither scope given — or event_wakeup off — it backs off by polling
  /// (yield, then 50 µs sleeps), the PR-5 baseline.  Only entered from
  /// inside a task body of this runtime.
  template <typename Done>
  void help_until(Done done, Task* wtask = nullptr, TaskGroup* wgroup = nullptr);
  /// Blocking barrier core (non-task threads), on wait_mutex_/wait_cv_:
  /// a pure wake-driven sleep under pass-through policies, a 1 ms timed
  /// loop re-flushing the policy under buffering ones — a task body may
  /// spawn into a window DURING the barrier, invisible to the entry
  /// flush.  Shared by wait_all and wait_on (wait_group sleeps on the
  /// group's own condvar).
  template <typename Done>
  void blocking_wait(Done done);
  void on_task_finished();
  void rethrow_pending_error();
  void publish_group(GroupId id, TaskGroup* group) noexcept;

  RuntimeConfig config_;
  dep::BlockTracker tracker_;
  std::unique_ptr<Policy> policy_;
  /// Cached Policy::pass_through(): gates the spawn fast path without a
  /// virtual call per spawn.
  bool pass_through_ = false;

  mutable support::SharedMutex groups_mutex_;
  std::vector<std::unique_ptr<TaskGroup>> groups_ SIGRT_GUARDED_BY(groups_mutex_);
  std::unordered_map<std::string, GroupId> group_names_
      SIGRT_GUARDED_BY(groups_mutex_);

  /// Lock-free fast path for group_ref(): workers resolve a group's live
  /// ratio() on every LQH dequeue decision, so that lookup must not take
  /// groups_mutex_.  Slots are published with a release store after the
  /// group object exists; ids beyond the table fall back to the lock.
  static constexpr std::size_t kGroupFastTableSize = 1024;
  std::unique_ptr<std::atomic<TaskGroup*>[]> group_table_;

  std::atomic<std::uint64_t> pending_{0};
  mutable support::Mutex wait_mutex_;
  mutable std::condition_variable wait_cv_;

  std::atomic<TaskId> next_task_id_{1};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<std::uint64_t> inline_spawns_{0};
  support::Mutex error_mutex_;
  std::exception_ptr first_error_ SIGRT_GUARDED_BY(error_mutex_);

  std::int64_t start_ns_;
  std::unique_ptr<Scheduler> scheduler_;  // after policy_: callback uses both
  std::unique_ptr<energy::Meter> meter_;
};

/// Id of the task currently executing on the calling thread, or 0 when the
/// caller is not inside a task body.  Thread-local, nesting-aware (helping
/// re-entrancy restores the outer task's id when the inner one finishes).
[[nodiscard]] TaskId current_task_id() noexcept;

/// RAII wrapper over Runtime::begin_blocking() for task bodies that block
/// on external events (sockets, pipes, foreign condvars):
///
///   rt.spawn(sigrt::task([&] {
///     sigrt::BlockingSection bs(rt);   // slot handed to a spare
///     ::recv(fd, ...);                 // pool stays at full parallelism
///   }));
///
/// The destructor is deliberately a no-op: the handoff is one-way per task
/// episode (the thread re-pools when the body unwinds), so the object only
/// documents the blocking span and reports whether a handoff happened.
class BlockingSection {
 public:
  explicit BlockingSection(Runtime& rt) : detached_(rt.begin_blocking()) {}
  BlockingSection(const BlockingSection&) = delete;
  BlockingSection& operator=(const BlockingSection&) = delete;

  /// True when the worker slot was actually handed to a spare thread.
  [[nodiscard]] bool detached() const noexcept { return detached_; }

 private:
  bool detached_;
};

}  // namespace sigrt
