// Local Queue History (LQH), §3.4 of the paper.
//
// Tasks are issued to worker queues immediately.  Right before executing a
// task, the worker consults its private history of significance levels for
// the task's group: the task runs accurately iff enough strictly less
// significant tasks have been seen to cover the group's approximation
// budget (1 - ratio).  The paper tracks 101 discrete levels (0.00..1.00 in
// 0.01 steps); the level count is configurable here.
//
// Threading: decide() runs inside the scheduler's dequeue hook, on the
// executing worker, and the entire decision path is lock-free — per-worker
// history slots are disjoint, and the group ratio() lookup goes through the
// runtime's lock-free group table plus the group's relaxed atomic.  One
// worker never touches another worker's history (work stealing changes
// *which* history a task lands in, the §4.2 effect, not who owns it).
//
// Tie handling: the paper's predicate t_g(s) > (1-R)·t_g(1.0) is degenerate
// when many tasks share one significance level (e.g. Kmeans, where *all*
// tasks do: the cumulative count then always, or never, exceeds the budget).
// We refine the boundary level deterministically: among tasks at the level
// that straddles the budget, a per-level counter approximates exactly the
// fraction of that level's population needed to meet the budget.  Levels
// strictly below the budget are approximated and levels strictly above run
// accurately, exactly as the paper's formula dictates; only the straddling
// level is split.  This preserves the published behaviour (per-worker
// convergence to the ratio, small deviations due to the localized view,
// §4.2/Table 2) while making uniform-significance groups obey the ratio.
#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.hpp"

namespace sigrt {

class LqhPolicy final : public Policy {
 public:
  LqhPolicy(unsigned levels, unsigned workers);

  [[nodiscard]] const char* name() const noexcept override { return "LQH"; }

  [[nodiscard]] bool pass_through() const noexcept override { return true; }

  void on_spawn(const TaskPtr& task, IssueSink& sink) override;
  void flush(GroupId group, IssueSink& sink) override;
  [[nodiscard]] ExecutionKind decide(const Task& task, unsigned worker_index,
                                     IssueSink& sink) override;

  [[nodiscard]] unsigned levels() const noexcept { return levels_; }

  /// Maps a significance in [0,1] to its discrete level.
  [[nodiscard]] unsigned level_of(float significance) const noexcept;

 private:
  /// Levels per coarse block of the two-level histogram: the cumulative
  /// count below a level is (sum of whole blocks) + (partial scan inside
  /// one block), turning the O(levels) prefix walk on every decision into
  /// ~levels/16 + 8 adds.  16 keeps one block inside a single cache line.
  static constexpr unsigned kBlockShift = 4;

  /// Per-(worker, group) execution history.
  struct GroupHistory {
    std::vector<std::uint64_t> seen;        // tasks observed per level
    std::vector<std::uint64_t> approximated;  // approx decisions per level
    std::vector<std::uint64_t> block;       // block sums over `seen`
    std::uint64_t total = 0;
  };

  struct WorkerState {
    /// Directly indexed by GroupId: ids are small and dense, so this turns
    /// the per-decision history lookup from a hash probe into one load.
    std::vector<GroupHistory> groups;
  };

  const unsigned levels_;
  std::vector<WorkerState> workers_;  // index = worker, no sharing => no locks
};

}  // namespace sigrt
