// Fundamental types of the significance-aware runtime (sigrt).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>

namespace sigrt {

using TaskId = std::uint64_t;
using GroupId = std::uint32_t;

/// Group 0 always exists: tasks spawned without a label() clause land here.
inline constexpr GroupId kDefaultGroup = 0;
inline constexpr GroupId kAllGroups = std::numeric_limits<GroupId>::max();

/// How a task was (or will be) executed.
enum class ExecutionKind : std::uint8_t {
  Undecided,    ///< policy has not classified the task yet
  Accurate,     ///< run the accurate body
  Approximate,  ///< run the approxfun() body
  Dropped,      ///< approximated but no approxfun supplied: skip entirely
};

[[nodiscard]] constexpr const char* to_string(ExecutionKind k) noexcept {
  switch (k) {
    case ExecutionKind::Undecided: return "undecided";
    case ExecutionKind::Accurate: return "accurate";
    case ExecutionKind::Approximate: return "approximate";
    case ExecutionKind::Dropped: return "dropped";
  }
  return "?";
}

/// Task-classification policy selector (§3 of the paper).
enum class PolicyKind : std::uint8_t {
  Agnostic,      ///< significance-agnostic baseline: everything accurate
  GTB,           ///< Global Task Buffering with a bounded buffer (§3.3)
  GTBMaxBuffer,  ///< GTB buffering until the synchronization barrier
  LQH,           ///< Local Queue History (§3.4)
  Oracle,        ///< full a-priori knowledge (== GTBMaxBuffer; §3.2)
};

[[nodiscard]] constexpr const char* to_string(PolicyKind p) noexcept {
  switch (p) {
    case PolicyKind::Agnostic: return "agnostic";
    case PolicyKind::GTB: return "GTB";
    case PolicyKind::GTBMaxBuffer: return "GTB(MaxBuffer)";
    case PolicyKind::LQH: return "LQH";
    case PolicyKind::Oracle: return "oracle";
  }
  return "?";
}

/// Runtime construction parameters.
struct RuntimeConfig {
  /// Worker thread count.  0 selects inline (synchronous) execution on the
  /// spawning thread — deterministic, handy for tests and debugging.
  unsigned workers = default_workers();

  PolicyKind policy = PolicyKind::GTB;

  /// GTB buffer capacity per task group.  Ignored by other policies;
  /// GTBMaxBuffer/Oracle override it with an unbounded buffer.
  std::size_t gtb_buffer = 32;

  /// Number of discrete significance levels tracked by LQH.  The paper uses
  /// 101 levels (0.00 .. 1.00 in steps of 0.01).
  unsigned lqh_levels = 101;

  /// Enable work stealing between worker queues.
  bool steal = true;

  /// Block granularity of the dependence tracker (power of two, bytes).
  std::size_t block_bytes = 1024;

  /// Dependence-tracker stripe count (power of two, at most 64 — the
  /// stripe mask is one uint64_t).  0 selects a topology-derived default
  /// (~4 stripes per worker, clamped to [8, 64]).
  unsigned dep_stripes = 0;

  // --- elastic pool & barriers (PR 8) ------------------------------------

  /// Event-driven barrier wakeup: in-task taskwait waiters that find no
  /// acquirable work park on their eventcount slot and are woken by the
  /// last-child completion (or group quiescence), and helping past the
  /// depth cap hands the worker slot to a spare thread and blocks.  false
  /// restores the PR-5 behaviour — pure yield/50 µs polling, no depth cap,
  /// no spares — kept selectable as the A/B baseline for the barrier
  /// latency bench.
  bool event_wakeup = true;

  /// Per-thread helping-depth cap: an in-task barrier nested deeper than
  /// this many helping frames stops helping (C++ stack depth tracks
  /// helping depth) and blocks after handing its deque to a spare thread.
  /// Ignored when event_wakeup is false.
  unsigned helping_depth = 16;

  /// Upper bound on spare threads the scheduler may run beyond `workers`.
  /// When the budget is exhausted a too-deep waiter keeps helping (stack
  /// bound yields to liveness).  0 disables slot handoff entirely.
  unsigned max_spare_threads = 16;

  /// Idle grace period before a surplus spare thread retires.
  unsigned spare_grace_ms = 5;

  /// Work-first spawn throttle: when a worker's own queues hold more than
  /// this many tasks, a dependency-free spawn under a pass-through policy
  /// runs inline on the spawner (OpenMP-style task-creation cutoff) —
  /// memory stays bounded at extreme fan-out.  0 disables the throttle.
  unsigned spawn_inline_watermark = 256;

  /// Ratio applied to groups created implicitly (including group 0).
  double default_ratio = 1.0;

  /// Record a per-task (significance, kind) log used for Table 2's
  /// significance-inversion and ratio-deviation metrics.  Negligible cost;
  /// disable for overhead measurements of the bare scheduler.
  bool record_task_log = true;

  // --- §6 future-work extension: ultra low-power but unreliable cores -----

  /// Number of workers (taken from the top of the worker index range)
  /// modeled as near-threshold-voltage, unreliable cores.  Accurate tasks
  /// are only issued to — and stolen by — reliable workers; tasks already
  /// classified approximate (or droppable) may run anywhere.  Clamped to
  /// workers-1 so at least one reliable worker always exists.
  unsigned unreliable_workers = 0;

  /// Probability that an approximate task executing on an unreliable worker
  /// silently fails; the runtime then treats it as dropped (its dependents
  /// still release).  Deterministic per task id given `seed`.
  double unreliable_fault_rate = 0.0;

  /// Seed for the fault-injection stream.
  std::uint64_t seed = 0x5eed;

  /// Allow accurate tasks that carry a check() validator and a redo budget
  /// to execute on unreliable workers: the validator makes corruption
  /// detectable, and a rejected result is re-executed on a reliable worker
  /// (the paper's §6 check/redo contract).  Unchecked accurate tasks are
  /// always pinned to reliable workers regardless of this flag.
  bool checked_tasks_on_unreliable = true;

  [[nodiscard]] static unsigned default_workers() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
};

}  // namespace sigrt
