// Chase–Lev work-stealing deque (Chase & Lev, SPAA'05), following the C11
// formulation of Lê, Pop, Cohen & Zappa Nardelli, "Correct and Efficient
// Work-Stealing for Weak Memory Models" (PPoPP'13) — but with the
// standalone fences replaced by orderings on the `top`/`bottom` atomics
// themselves.  ThreadSanitizer does not model std::atomic_thread_fence, so
// the fence-based variant reports false races between an owner's pre-push
// writes and a thief's post-steal reads; release/acquire (and seq_cst where
// the algorithm needs the StoreLoad barrier) on the variables carries the
// same guarantees and is fully TSan-visible.  The cost is one seq_cst store
// per pop instead of one fence — identical on x86.
//
// Single-owner semantics: exactly one thread — the owner — may push() and
// pop() at the bottom; any number of thieves may steal() from the top
// concurrently.  All operations are lock-free; pop() and steal() resolve
// the last-element race with one CAS on `top`.
//
// The deque stores raw pointers.  It never owns what it stores: callers
// keep the pointee alive while it is in flight (the scheduler donates one
// intrusive Task reference per enqueued pointer — see task.hpp) and the
// thread that wins the pop or steal releases that reference when done.
//
// The ring grows geometrically when full.  Retired rings cannot be freed
// immediately — a racing thief may still be reading a slot through a stale
// ring pointer — so they are chained and reclaimed in the destructor, which
// runs strictly after all worker threads have joined.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <type_traits>

namespace sigrt {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>,
                "ChaseLevDeque stores raw pointers; ownership stays outside");

 public:
  explicit ChaseLevDeque(std::int64_t initial_capacity = 256) {
    assert(initial_capacity > 0 &&
           (initial_capacity & (initial_capacity - 1)) == 0 &&
           "capacity must be a power of two");
    ring_.store(new Ring(initial_capacity), std::memory_order_relaxed);
  }

  ~ChaseLevDeque() {
    Ring* r = ring_.load(std::memory_order_relaxed);
    while (r != nullptr) {
      Ring* prev = r->prev;
      delete r;
      r = prev;
    }
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: append `item` at the bottom.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* r = ring_.load(std::memory_order_relaxed);
    if (b - t > r->capacity - 1) {
      r = grow(r, t, b);
    }
    r->slot(b).store(item, std::memory_order_relaxed);
    // Release store publishes the slot write — and every plain write the
    // owner made to *item before pushing — to any thread that acquires
    // `bottom`.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: remove and return the bottom (most recently pushed) item;
  /// nullptr when the deque is empty.
  T pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* r = ring_.load(std::memory_order_relaxed);
    // seq_cst store/load pair: the reservation of slot b must be globally
    // ordered before our read of `top` (StoreLoad), mirroring the fence in
    // the PPoPP'13 version.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    T item = nullptr;
    if (t <= b) {
      item = r->slot(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race against thieves for it via `top`.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          item = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread: remove and return the top (oldest) item; nullptr when the
  /// deque is empty or the steal lost a race (callers just move on to the
  /// next victim either way).
  T steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    T item = nullptr;
    if (t < b) {
      Ring* r = ring_.load(std::memory_order_acquire);
      item = r->slot(t).load(std::memory_order_relaxed);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;  // lost the race; the read item is stale
      }
    }
    return item;
  }

  /// Any thread: conservative emptiness probe (used by the park re-check;
  /// callers tolerate staleness in the "false" direction only when paired
  /// with the eventcount's two-phase protocol).
  [[nodiscard]] bool empty() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    return t >= b;
  }

  /// Approximate size snapshot (diagnostics only).
  [[nodiscard]] std::int64_t size() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    return b > t ? b - t : 0;
  }

 private:
  struct Ring {
    explicit Ring(std::int64_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}
    ~Ring() { delete[] slots; }

    [[nodiscard]] std::atomic<T>& slot(std::int64_t i) const noexcept {
      return slots[i & mask];
    }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::atomic<T>* const slots;
    Ring* prev = nullptr;  ///< retired predecessor, freed in ~ChaseLevDeque
  };

  /// Owner only: double the ring, copying the live range [t, b).
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    Ring* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    bigger->prev = old;
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  // top_ is CAS-contended by thieves; bottom_ is owner-written on every
  // push/pop.  Separate cache lines keep steals from bouncing the owner's
  // hot line.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Ring*> ring_{nullptr};
};

}  // namespace sigrt
