#include "core/group.hpp"

#include "core/parker.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <vector>

namespace sigrt {

TaskGroup::TaskGroup(GroupId id, std::string name, double ratio, bool record_log)
    : id_(id), name_(std::move(name)), record_log_(record_log), ratio_(ratio) {}

void TaskGroup::on_spawn(bool internal) noexcept {
  // Both relaxed: spawn-side increments are ordered before the task's
  // publication by the scheduler's release edges; the completion-side
  // decrement keeps acq_rel so barrier waiters see an ordered zero
  // crossing.
  if (!internal) spawned_.fetch_add(1, std::memory_order_relaxed);
  pending_.fetch_add(1, std::memory_order_relaxed);
}

void TaskGroup::on_complete(ExecutionKind kind, float significance,
                            double requested, bool internal,
                            unsigned worker_slot) noexcept {
  if (!internal) {
    switch (kind) {
      case ExecutionKind::Accurate:
        accurate_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ExecutionKind::Approximate:
        approximate_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ExecutionKind::Dropped:
        dropped_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ExecutionKind::Undecided:
        // execute_task normalizes before completion; an Undecided arrival
        // would silently break spawned == accurate+approximate+dropped.
        assert(false && "Undecided task reached completion accounting");
        break;
    }
    if (record_log_) {
      // Worker shards have a single writer, so this lock is uncontended on
      // the completion hot path (it only ever waits on a report() merge);
      // the shared fallback shard is the one place writers can collide.
      LogShard& shard = shard_for(worker_slot);
      support::MutexLock lock(shard.mutex);
      shard.log.push_back({significance, kind});
      shard.requested_mass += requested;
    }
  }

  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task: wake barrier waiters.  Lock/unlock pairs with wait() to
    // close the check-then-sleep window — and with add_intask_waiter(),
    // whose registration under the same mutex either lands before this
    // broadcast (and is woken here) or after (and re-checks pending==0
    // before parking).  Waiters are notified in place, not removed: each
    // self-removes on its own way out, and a duplicate notify is only a
    // spurious wake.
    support::MutexLock lock(wait_mutex_);
    wait_cv_.notify_all();
    for (BarrierWaiter* w : intask_waiters_) w->notify();
  }
}

void TaskGroup::add_intask_waiter(BarrierWaiter* w) {
  support::MutexLock lock(wait_mutex_);
  intask_waiters_.push_back(w);
}

void TaskGroup::remove_intask_waiter(BarrierWaiter* w) {
  support::MutexLock lock(wait_mutex_);
  for (std::size_t i = 0; i < intask_waiters_.size(); ++i) {
    if (intask_waiters_[i] == w) {
      intask_waiters_[i] = intask_waiters_.back();
      intask_waiters_.pop_back();
      return;
    }
  }
}

void TaskGroup::wait() const {
  support::MutexLock lock(wait_mutex_);
  wait_cv_.wait(lock.native(), [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

bool TaskGroup::wait_for(std::chrono::milliseconds timeout) const {
  support::MutexLock lock(wait_mutex_);
  return wait_cv_.wait_for(lock.native(), timeout, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

GroupReport TaskGroup::report() const {
  GroupReport r;
  r.id = id_;
  r.name = name_;
  r.requested_ratio = ratio();
  r.spawned = spawned_.load(std::memory_order_relaxed);
  r.accurate = accurate_.load(std::memory_order_relaxed);
  r.approximate = approximate_.load(std::memory_order_relaxed);
  r.dropped = dropped_.load(std::memory_order_relaxed);
  r.redone = redone_.load(std::memory_order_relaxed);
  r.corrupted_detected = corrupted_detected_.load(std::memory_order_relaxed);

  // Lazy merge of the per-worker log shards — report() is the cold path,
  // so the completion side never pays for a combined log.  The shards are
  // scanned in place (no merged copy); each pass takes one shard lock at
  // a time, so like the counters above, a report taken while tasks are
  // completing is approximate.
  std::size_t log_size = 0;
  double requested_mass = 0.0;
  for (const LogShard& shard : log_shards_) {
    support::MutexLock lock(shard.mutex);
    log_size += shard.log.size();
    requested_mass += shard.requested_mass;
  }

  const std::uint64_t total = r.accurate + r.approximate + r.dropped;
  r.mean_requested_ratio =
      log_size == 0 ? r.requested_ratio
                    : requested_mass / static_cast<double>(log_size);

  // "Inversed significance" tasks (§4.2, Table 2): the disagreement between
  // the actual classification and the ideal one with the *same* accurate
  // budget — i.e. the top-|accurate| tasks by significance.  A task is
  // inversed when it ran accurately below the ideal cutoff or approximately
  // above it; ties at the cutoff are legal either way and never counted.
  // (A plain "approximated while any less significant task was accurate"
  // count would let a single low-significance accurate task poison the
  // whole group.)
  if (log_size > 0 && total > 0 && r.accurate > 0 && r.accurate < log_size) {
    std::vector<float> sigs;
    sigs.reserve(log_size);
    for (const LogShard& shard : log_shards_) {
      support::MutexLock lock(shard.mutex);
      for (const TaskRecord& t : shard.log) sigs.push_back(t.significance);
    }
    if (sigs.empty()) return r;  // log reset between the two passes
    const auto kth =
        sigs.begin() + static_cast<std::ptrdiff_t>(
                           std::min<std::uint64_t>(r.accurate, sigs.size()) - 1);
    std::nth_element(sigs.begin(), kth, sigs.end(), std::greater<float>());
    const float cutoff = *kth;

    std::uint64_t inversed = 0;
    std::size_t scanned = 0;
    for (const LogShard& shard : log_shards_) {
      support::MutexLock lock(shard.mutex);
      for (const TaskRecord& t : shard.log) {
        if (t.kind == ExecutionKind::Accurate && t.significance < cutoff) {
          ++inversed;
        } else if (t.kind != ExecutionKind::Accurate &&
                   t.significance > cutoff) {
          ++inversed;
        }
        ++scanned;
      }
    }
    if (scanned > 0) {
      r.inversion_fraction =
          static_cast<double>(inversed) / static_cast<double>(scanned);
    }
  }
  return r;
}

void TaskGroup::reset_stats() {
  spawned_.store(0, std::memory_order_relaxed);
  accurate_.store(0, std::memory_order_relaxed);
  approximate_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  redone_.store(0, std::memory_order_relaxed);
  corrupted_detected_.store(0, std::memory_order_relaxed);
  for (LogShard& shard : log_shards_) {
    support::MutexLock lock(shard.mutex);
    shard.log.clear();
    shard.requested_mass = 0.0;
  }
}

}  // namespace sigrt
