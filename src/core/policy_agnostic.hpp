// Significance-agnostic baseline policy.
//
// Reproduces the reference runtime of §4: no buffering, no history, every
// task executes accurately.  Used for the fully-accurate baselines of
// Figure 2 and as the normalization denominator of Figure 4's overhead
// study.
#pragma once

#include "core/policy.hpp"

namespace sigrt {

class AgnosticPolicy final : public Policy {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "agnostic"; }

  [[nodiscard]] bool pass_through() const noexcept override { return true; }

  void on_spawn(const TaskPtr& task, IssueSink& sink) override {
    sink.release(task);
  }

  void flush(GroupId /*group*/, IssueSink& /*sink*/) override {}

  [[nodiscard]] ExecutionKind decide(const Task& /*task*/,
                                     unsigned /*worker_index*/,
                                     IssueSink& /*sink*/) override {
    return ExecutionKind::Accurate;
  }
};

}  // namespace sigrt
