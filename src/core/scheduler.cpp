#include "core/scheduler.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <chrono>
#include <utility>

#include "support/timer.hpp"

namespace sigrt {

Scheduler::Scheduler(unsigned workers, unsigned unreliable, bool steal,
                     ExecuteFn execute)
    : steal_enabled_(steal), execute_(std::move(execute)) {
  assert(execute_ && "scheduler needs an execute callback");
  if (workers > 0) {
    unreliable = std::min(unreliable, workers - 1);
    reliable_count_ = workers - unreliable;
  } else {
    reliable_count_ = 1;  // the inline pseudo-worker (index 0) is reliable
  }
  slots_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    slots_.push_back(std::make_unique<WorkerSlot>());
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  stopping_.store(true, std::memory_order_release);
  {
    // Pair with the waiters' predicate check (see TaskGroup::on_complete for
    // the same pattern).
    std::lock_guard lock(sleep_mutex_);
    sleep_cv_.notify_all();
  }
  for (auto& t : workers_) t.join();
}

void Scheduler::enqueue(const TaskPtr& task) {
  assert(task->gate.load(std::memory_order_acquire) == 0 &&
         "only gate==0 tasks may be enqueued");
#ifndef NDEBUG
  if (task->debug_enqueues.fetch_add(1, std::memory_order_acq_rel) != 0) {
    std::fprintf(stderr, "FATAL: double enqueue of task %llu (group %u)\n",
                 static_cast<unsigned long long>(task->id), task->group);
    std::abort();
  }
#endif

  if (inline_mode()) {
    inline_queue_.push_back(task);
    if (!inline_draining_) drain_inline();
    return;
  }

  // Routing: accurate (or not-yet-classified) tasks round-robin over the
  // reliable workers only; tasks finally classified approximate/dropped may
  // land on any worker, including the NTC ones.
  unsigned target;
  if (eligible_for_unreliable(*task)) {
    target = next_any_worker_.fetch_add(1, std::memory_order_relaxed) %
             slots_.size();
  } else {
    target = next_worker_.fetch_add(1, std::memory_order_relaxed) %
             reliable_count_;
  }
  {
    std::lock_guard lock(slots_[target]->mutex);
    slots_[target]->queue.push_back(task);
  }
  {
    // The increment must happen under the sleep mutex: otherwise it can
    // land between a worker's predicate check and its atomic block, the
    // notify below finds nobody waiting, and the wakeup is lost — a real
    // deadlock when no further enqueues arrive.
    std::lock_guard lock(sleep_mutex_);
    ready_count_.fetch_add(1, std::memory_order_release);
  }
  if (unreliable_count() == 0) {
    sleep_cv_.notify_one();
  } else {
    // Heterogeneous workers share one condition variable; notify_one could
    // be consumed by an unreliable worker that is not allowed to take the
    // task at the queue front, silently swallowing the only wakeup while
    // the reliable workers stay parked.  Wake everyone; ineligible workers
    // re-check and go back to sleep.
    sleep_cv_.notify_all();
  }
}

void Scheduler::drain_inline() {
  inline_draining_ = true;
  while (!inline_queue_.empty()) {
    TaskPtr task = std::move(inline_queue_.front());
    inline_queue_.pop_front();
    const support::ScopedTimer timer(inline_busy_ns_);
    execute_(task, 0);
    ++inline_executed_;
  }
  inline_draining_ = false;
}

bool Scheduler::try_pop_own(unsigned index, TaskPtr& out) {
  WorkerSlot& slot = *slots_[index];
  std::lock_guard lock(slot.mutex);
  if (slot.queue.empty()) return false;
  out = std::move(slot.queue.front());  // oldest first (§3: FIFO per worker)
  slot.queue.pop_front();
  return true;
}

bool Scheduler::try_steal(unsigned thief, TaskPtr& out) {
  const std::size_t n = slots_.size();
  const bool thief_unreliable = is_unreliable(thief);
  for (std::size_t off = 1; off < n; ++off) {
    const std::size_t victim = (thief + off) % n;
    WorkerSlot& slot = *slots_[victim];
    std::lock_guard lock(slot.mutex);
    if (slot.queue.empty()) continue;
    // An unreliable thief may only take the oldest task if it is eligible;
    // it does not dig deeper (FIFO order is preserved, as in §3).
    if (thief_unreliable && !eligible_for_unreliable(*slot.queue.front())) {
      continue;
    }
    out = std::move(slot.queue.front());
    slot.queue.pop_front();
    ++slots_[thief]->steals;
    return true;
  }
  return false;
}

void Scheduler::run_task(const TaskPtr& task, unsigned index) {
  WorkerSlot& slot = *slots_[index];
  {
    const support::ScopedTimer timer(slot.busy_ns);
    execute_(task, index);
  }
  ++slot.executed;
}

void Scheduler::worker_loop(unsigned index) {
  WorkerSlot& slot = *slots_[index];
  while (true) {
    slot.state.store(WorkerState::Scanning, std::memory_order_relaxed);
    TaskPtr task;
    if (try_pop_own(index, task) ||
        (steal_enabled_ && try_steal(index, task))) {
      ready_count_.fetch_sub(1, std::memory_order_acq_rel);
      slot.state.store(WorkerState::Running, std::memory_order_relaxed);
      run_task(task, index);
      continue;
    }
    slot.state.store(WorkerState::Sleeping, std::memory_order_relaxed);
    std::unique_lock lock(sleep_mutex_);
    if (steal_enabled_ && !is_unreliable(index)) {
      // ready_count > 0 implies some queue holds a task this worker can
      // reach (it can steal anything), so a predicate wait cannot hot-spin.
      sleep_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               ready_count_.load(std::memory_order_acquire) > 0;
      });
    } else {
      // Without stealing — or with an unreliable worker, which may be
      // unable to take the tasks ready_count refers to — a predicate wait
      // would spin.  Poll with a bounded sleep instead.
      sleep_cv_.wait_for(lock, std::chrono::microseconds(500));
    }
    if (stopping_.load(std::memory_order_acquire) &&
        ready_count_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  for (const auto& slot : slots_) {
    s.executed += slot->executed;
    s.steals += slot->steals;
    s.busy_ns += slot->busy_ns;
  }
  s.executed += inline_executed_;
  s.busy_ns += inline_busy_ns_;
  return s;
}

std::int64_t Scheduler::busy_ns() const { return stats().busy_ns; }

std::pair<std::int64_t, std::int64_t> Scheduler::busy_ns_split() const {
  std::int64_t reliable = inline_busy_ns_;
  std::int64_t unreliable = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    (is_unreliable(static_cast<unsigned>(i)) ? unreliable : reliable) +=
        slots_[i]->busy_ns;
  }
  return {reliable, unreliable};
}

void Scheduler::dump(FILE* out) const {
  std::fprintf(out, "scheduler: workers=%zu ready=%zu stopping=%d\n",
               slots_.size(), ready_count_.load(), stopping_.load());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    auto& slot = *slots_[i];
    std::lock_guard lock(slot.mutex);
    const char* state = "?";
    switch (slot.state.load(std::memory_order_relaxed)) {
      case WorkerState::Scanning: state = "scanning"; break;
      case WorkerState::Running: state = "running"; break;
      case WorkerState::Sleeping: state = "sleeping"; break;
    }
    std::fprintf(out,
                 "  worker %zu: state=%s unreliable=%d queue=%zu executed=%llu "
                 "steals=%llu\n",
                 i, state, is_unreliable(static_cast<unsigned>(i)) ? 1 : 0,
                 slot.queue.size(), static_cast<unsigned long long>(slot.executed),
                 static_cast<unsigned long long>(slot.steals));
  }
}

}  // namespace sigrt
