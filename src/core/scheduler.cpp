#include "core/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "support/timer.hpp"

namespace sigrt {

namespace {

// Worker identity for the owner fast path: a worker releasing a dependent
// pushes it straight onto its own deque (no CAS, no inbox) when the
// partition rule allows.  The scheduler pointer disambiguates nested or
// concurrent runtimes sharing a thread.
thread_local Scheduler* tls_scheduler = nullptr;
thread_local unsigned tls_worker = 0;

// Slot ownership (elastic pool): set while this thread owns worker slot
// tls_worker.  A thread that detached for blocking keeps tls_scheduler /
// tls_worker (its task body is still on the stack) but loses this flag —
// every owner-only path (deque push/pop, single-writer counters, helping)
// must check it, because a spare thread may own the slot concurrently.
thread_local bool tls_owns_slot = false;

// Cycles charged by execution frames nested inside the current one: an
// in-task taskwait re-enters execution on this thread (help_one), and the
// outer frame's wall-clock span includes every inner task it helped run.
// Each frame subtracts its inner charges so busy accounting is EXCLUSIVE —
// summing to real execution time instead of inflating with nesting depth.
thread_local std::uint64_t tls_inner_cycles = 0;

}  // namespace

Scheduler::Scheduler(unsigned workers, unsigned unreliable, bool steal,
                     void* ctx, ExecuteFn execute, DequeueFn on_dequeue,
                     SchedulerOptions options)
    : steal_enabled_(steal),
      ctx_(ctx),
      execute_(execute),
      on_dequeue_(on_dequeue),
      ec_(workers),
      max_spares_(options.max_spares),
      spare_grace_(options.spare_grace) {
  assert(execute_ != nullptr && "scheduler needs an execute callback");
  worker_total_ = workers;
  if (workers > 0) {
    unreliable = std::min(unreliable, workers - 1);
    reliable_count_ = workers - unreliable;
  } else {
    reliable_count_ = 1;  // the inline pseudo-worker (index 0) is reliable
  }
  const topo::Topology& topology = options.topology != nullptr
                                       ? *options.topology
                                       : topo::system_topology();
  slots_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    auto slot = std::make_unique<WorkerSlot>();
    // Deterministic per-worker stream; only used for steal-victim
    // randomization, so it does not affect steal-off reproducibility.
    slot->rng = support::Xoshiro256(0x51eea1u + i * 0x9e3779b97f4a7c15ULL);
    // Nearest-first victim order: steals prefer cache-sharing workers, so
    // a stolen task's inputs travel through the LLC instead of memory.
    slot->steal_order = topology.steal_order(i, workers);
    slot->near_count = topology.near_victims(i, workers);
    slots_.push_back(std::move(slot));
  }
  {
    support::MutexLock lk(pool_mutex_);
    pool_threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      spawn_pool_thread_locked(static_cast<int>(i));
    }
  }
}

Scheduler::~Scheduler() {
  // Shutdown ordering: publish `stopping` first (seq_cst), then release
  // every parked worker.  A worker between prepare_wait and commit_wait
  // either sees the flag in its re-check or consumes the signal delivered
  // by notify_all — a lost wakeup (and a hung join) is impossible.  Workers
  // drain all work still visible to them before exiting.
  stopping_.store(true, std::memory_order_seq_cst);
  ec_.notify_all();
  {
    // Spares parked in the pool see `stopping` on wake and exit; a detach
    // in flight holds pool_mutex_, so by the time we collect the thread
    // list below no further spawns are possible.
    support::MutexLock lk(pool_mutex_);
    pool_cv_.notify_all();
  }
  std::vector<std::unique_ptr<PoolThread>> threads;
  {
    support::MutexLock lk(pool_mutex_);
    threads.swap(pool_threads_);
  }
  for (auto& pt : threads) {
    if (pt->th.joinable()) pt->th.join();
  }

  // A quiesced shutdown leaves every deque and inbox empty.  Debug builds
  // treat leftovers as fatal; release builds drop the donated references so
  // an abandoned task still returns to the pool.
  bool undrained = false;
  for (auto& slot : slots_) {
    for (unsigned p = 0; p < kPartitions; ++p) {
      Task* leftover = slot->inbox[p].exchange(nullptr, std::memory_order_acquire);
      while (leftover != nullptr) {
        undrained = true;
        Task* next = leftover->next_ready;
        leftover->next_ready = nullptr;
        leftover->release();
        leftover = next;
      }
      while (Task* t = slot->deque[p].steal()) {
        undrained = true;
        t->release();
      }
    }
  }
  for (Task* t : inline_queue_) {
    undrained = true;
    t->release();
  }
  inline_queue_.clear();
  assert(!undrained && "scheduler destroyed with undrained tasks");
  (void)undrained;
}

void Scheduler::assert_enqueue_ok(const Task& task) {
  assert(task.gate.load(std::memory_order_acquire) == 0 &&
         "only gate==0 tasks may be enqueued");
#ifndef NDEBUG
  auto& counter = const_cast<Task&>(task).debug_enqueues;
  if (counter.fetch_add(1, std::memory_order_acq_rel) != 0) {
    std::fprintf(stderr, "FATAL: double enqueue of task %llu (group %u)\n",
                 static_cast<unsigned long long>(task.id), task.group);
    std::abort();
  }
#else
  (void)task;
#endif
}

unsigned Scheduler::pick_target(Partition part) noexcept {
  // Chunked round-robin: rotate the target every kRouteChunk tasks instead
  // of every task.  Consecutive spawns coalesce in one inbox (one wake and
  // one hot cache line per chunk instead of per task); stealing rebalances
  // whatever the chunking skews.
  if (part == kAnyWorker) {
    return static_cast<unsigned>(
        (next_any_.fetch_add(1, std::memory_order_relaxed) / kRouteChunk) %
        worker_count());
  }
  return static_cast<unsigned>(
      (next_reliable_.fetch_add(1, std::memory_order_relaxed) / kRouteChunk) %
      reliable_count_);
}

unsigned Scheduler::wake_workers(unsigned preferred, Partition part,
                                 unsigned count) {
  unsigned woken = 0;
  if (preferred != kNoPreference && ec_.notify(preferred)) ++woken;
  if (woken >= count || !steal_enabled_) return woken;
  // The task is stealable: hand the remaining wakes to parked workers
  // entitled to the partition.
  const unsigned n = worker_count();
  for (unsigned i = 0; i < n && woken < count; ++i) {
    if (i == preferred) continue;
    if (part == kReliableOnly && is_unreliable(i)) continue;
    if (ec_.waiting(i) && ec_.notify(i)) ++woken;
  }
  return woken;
}

void Scheduler::enqueue_owned(Task* task, bool post_body) {
  assert_enqueue_ok(*task);

  if (inline_mode()) {
    inline_queue_.push_back(task);
    if (!inline_draining_) drain_inline();
    return;
  }

  const Partition part = partition_of(*task);

  // Owner fast path: dependents released by a worker stay on its own
  // deque — a pure owner push, no shared CAS.  An unreliable worker may
  // not host kReliableOnly work; it falls through to remote dispatch onto
  // a reliable worker's inbox.  A detached thread (slot handed to a spare)
  // lost its deque — it dispatches remotely like any non-worker.
  if (tls_scheduler == this && tls_owns_slot &&
      (part == kAnyWorker || !is_unreliable(tls_worker))) {
    WorkerSlot& me = *slots_[tls_worker];
    me.deque[part].push(task);
    // Post-body release (enqueue_released): the worker returns straight
    // to its pop loop, so when the pushed task is the only thing in its
    // deques it is consumed by the worker's own next pop and waking a
    // thief for it is a guaranteed-futile context switch (the dominant
    // cost of dependent chains on oversubscribed machines).  Any other
    // own work — in either partition's deque — voids that premise (the
    // next pop may pick it instead), so it is advertised.  Mid-body
    // pushes (post_body == false) always advertise — the body may run
    // long, or even wait on the pushed task, and the wake is what lets a
    // thief pick it up.
    const bool sole_own_work =
        me.deque[part].size() == 1 && me.deque[1 - part].empty();
    if (steal_enabled_ && (!post_body || !sole_own_work)) {
      std::atomic_thread_fence(std::memory_order_seq_cst);
      wake_workers(kNoPreference, part, 1);
    }
    return;
  }

  dispatch_remote(task, part);
}

void Scheduler::dispatch_remote(Task* task, Partition part) {
  const unsigned target = pick_target(part);

  std::atomic<Task*>& inbox = slots_[target]->inbox[part];
  Task* head = inbox.load(std::memory_order_relaxed);
  do {
    task->next_ready = head;
  } while (!inbox.compare_exchange_weak(head, task, std::memory_order_release,
                                        std::memory_order_relaxed));

  // First push into an empty inbox wakes the target (or a thief); pushes
  // onto a non-empty inbox ride on the wake already owed for the head —
  // any worker that consumes that inbox takes the whole chain, and every
  // worker re-checks all inboxes before parking.
  if (head == nullptr) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    wake_workers(target, part, 1);
  }
}

void Scheduler::enqueue_bulk(std::vector<TaskRef>& tasks) {
  // Transfer each reference out of the vector into the raw batch; the
  // scratch is thread-local so repeated windows allocate nothing.
  thread_local std::vector<Task*> scratch;
  scratch.clear();
  scratch.reserve(tasks.size());
  for (TaskRef& t : tasks) scratch.push_back(t.detach());
  enqueue_bulk(scratch.data(), scratch.size());
  scratch.clear();
}

void Scheduler::enqueue_bulk(Task* const* tasks, std::size_t count) {
  if (count == 0) return;
  if (count == 1) {
    enqueue_owned(tasks[0]);
    return;
  }

  if (inline_mode()) {
    for (std::size_t i = 0; i < count; ++i) {
      assert_enqueue_ok(*tasks[i]);
      inline_queue_.push_back(tasks[i]);
    }
    if (!inline_draining_) drain_inline();
    return;
  }

  // Owner fast path: a worker releasing a batch keeps it on its own deque
  // (pure owner pushes), spilling only partition-forbidden tasks to remote
  // inboxes, then hands out wakes so thieves can share the batch.  The
  // batch is pushed in reverse so the owner's LIFO pop returns it in issue
  // order — the same per-worker FIFO the inbox drain establishes.
  if (tls_scheduler == this && tls_owns_slot) {
    const bool reliable_owner = !is_unreliable(tls_worker);
    WorkerSlot& me = *slots_[tls_worker];
    unsigned own = 0;
    bool own_any_part = false;
    for (std::size_t i = count; i-- > 0;) {
      Task* task = tasks[i];
      assert_enqueue_ok(*task);
      const Partition part = partition_of(*task);
      if (part == kAnyWorker || reliable_owner) {
        me.deque[part].push(task);
        ++own;
        own_any_part |= (part == kAnyWorker);
      } else {
        dispatch_remote(task, part);
      }
    }
    if (own > 0 && steal_enabled_) {
      std::atomic_thread_fence(std::memory_order_seq_cst);
      wake_workers(kNoPreference,
                   own_any_part ? kAnyWorker : kReliableOnly,
                   std::min(own, worker_count()));
    }
    return;
  }

  // Build one chain per (target worker, partition) bucket, then publish
  // each bucket with a single CAS splice and issue a single fence for the
  // whole window.  Chains are built newest-first (prepend in spawn order),
  // matching the single-task inbox discipline, so FIFO pop order per
  // worker is preserved.  Bucket scratch stays on the stack for typical
  // worker counts — this is the GTB flush hot path, one call per window.
  const unsigned n = worker_count();
  const std::size_t buckets = static_cast<std::size_t>(n) * kPartitions;
  constexpr unsigned kStackWorkers = 64;
  Task* stack_chains[kStackWorkers * kPartitions * 2];
  bool stack_was_empty[kStackWorkers];
  std::unique_ptr<Task*[]> heap_chains;
  std::unique_ptr<bool[]> heap_was_empty;
  Task** heads;
  bool* was_empty;
  if (n <= kStackWorkers) {
    heads = stack_chains;
    was_empty = stack_was_empty;
  } else {
    heap_chains.reset(new Task*[buckets * 2]);
    heap_was_empty.reset(new bool[n]);
    heads = heap_chains.get();
    was_empty = heap_was_empty.get();
  }
  Task** tails = heads + buckets;
  std::fill_n(heads, buckets * 2, nullptr);
  std::fill_n(was_empty, n, false);
  bool has_any_part = false;

  for (std::size_t i = 0; i < count; ++i) {
    Task* raw = tasks[i];
    assert_enqueue_ok(*raw);
    const Partition part = partition_of(*raw);
    const unsigned target = pick_target(part);
    const std::size_t b = static_cast<std::size_t>(target) * kPartitions + part;
    raw->next_ready = heads[b];
    heads[b] = raw;
    if (tails[b] == nullptr) tails[b] = raw;
    has_any_part |= (part == kAnyWorker);
  }

  for (unsigned target = 0; target < n; ++target) {
    for (unsigned p = 0; p < kPartitions; ++p) {
      const std::size_t b = static_cast<std::size_t>(target) * kPartitions + p;
      if (heads[b] == nullptr) continue;
      std::atomic<Task*>& inbox = slots_[target]->inbox[p];
      Task* old_head = inbox.load(std::memory_order_relaxed);
      do {
        tails[b]->next_ready = old_head;
      } while (!inbox.compare_exchange_weak(old_head, heads[b],
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
      if (old_head == nullptr) was_empty[target] = true;
    }
  }

  std::atomic_thread_fence(std::memory_order_seq_cst);

  // Wake the routed-to workers first, then spread leftover wakes over
  // parked thieves, bounded by the window size.
  unsigned budget =
      static_cast<unsigned>(std::min<std::size_t>(count, n));
  for (unsigned target = 0; target < n && budget > 0; ++target) {
    if (was_empty[target] && ec_.notify(target)) --budget;
  }
  if (steal_enabled_ && budget > 0) {
    wake_workers(kNoPreference, has_any_part ? kAnyWorker : kReliableOnly,
                 budget);
  }
}

bool Scheduler::on_worker_thread() const noexcept {
  return tls_scheduler == this;
}

bool Scheduler::help_one() {
  if (inline_mode()) {
    // Inline help: run the NEWEST queued task — the waiting body's own
    // children sit at the back, so LIFO help descends depth-first and the
    // C++ stack grows with the task-tree depth, exactly like the threaded
    // owner-deque pop.  (FIFO help would chew through every pending
    // sibling breadth-first, nesting one stack frame per task in the
    // system — a guaranteed overflow on recursive fan-out.)  Safe to
    // interleave with an active drain_inline loop: same thread, and the
    // loop re-checks emptiness every iteration.
    if (inline_queue_.empty()) return false;
    Task* task = inline_queue_.back();
    inline_queue_.pop_back();
    inline_busy_cycles_ += run_body_timed(*task, 0);
    ++inline_executed_;
    task->release();
    return true;
  }
  // Detached threads must not touch the deques: the slot's new owner is
  // the single Chase-Lev owner now.
  if (tls_scheduler != this || !tls_owns_slot) return false;
  Task* raw = acquire_work(tls_worker);
  if (raw == nullptr) return false;
  run_task(raw, tls_worker);
  return true;
}

void Scheduler::drain_inline() {
  inline_draining_ = true;
  while (!inline_queue_.empty()) {
    Task* task = inline_queue_.front();
    inline_queue_.pop_front();
    inline_busy_cycles_ += run_body_timed(*task, 0);
    ++inline_executed_;
    task->release();  // drop the donated in-flight reference
  }
  inline_draining_ = false;
}

bool Scheduler::drain_own_inbox(unsigned index, Partition part) {
  WorkerSlot& slot = *slots_[index];
  Task* list = slot.inbox[part].exchange(nullptr, std::memory_order_acquire);
  if (list == nullptr) return false;
  // The chain is newest-first; pushing in chain order makes the owner's
  // bottom pop return the oldest first — FIFO issue order per worker (§3).
  while (list != nullptr) {
    Task* t = list;
    list = list->next_ready;
    t->next_ready = nullptr;
    slot.deque[part].push(t);
  }
  return true;
}

Task* Scheduler::raid_inbox(unsigned thief, unsigned victim, Partition part) {
  Task* list =
      slots_[victim]->inbox[part].exchange(nullptr, std::memory_order_acquire);
  if (list == nullptr) return nullptr;

  WorkerSlot& me = *slots_[thief];
  // Keep the oldest task (chain tail) to run now; everything newer is
  // re-exposed through our own deque, where other workers can steal it.
  std::uint64_t moved = 1;
  while (list->next_ready != nullptr) {
    Task* t = list;
    list = list->next_ready;
    t->next_ready = nullptr;
    me.deque[part].push(t);
    ++moved;
  }
  me.steals.fetch_add(moved, std::memory_order_relaxed);
  if (moved > 1) {
    // We just became a victim worth stealing from.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    wake_workers(kNoPreference, part, 1);
  }
  return list;
}

Task* Scheduler::acquire_work(unsigned index) {
  WorkerSlot& slot = *slots_[index];
  const bool reliable = !is_unreliable(index);

  // 1. Own deques.  The reliable-only partition goes first: no other class
  //    of worker can help with it.
  if (reliable) {
    if (Task* t = slot.deque[kReliableOnly].pop()) return t;
  }
  if (Task* t = slot.deque[kAnyWorker].pop()) return t;

  // 2. Splice own inboxes into the deques, then retry.
  bool drained = false;
  if (reliable) drained |= drain_own_inbox(index, kReliableOnly);
  drained |= drain_own_inbox(index, kAnyWorker);
  if (drained) {
    if (reliable) {
      if (Task* t = slot.deque[kReliableOnly].pop()) return t;
    }
    if (Task* t = slot.deque[kAnyWorker].pop()) return t;
  }

  // 3. Steal.
  if (steal_enabled_) return try_steal(index);
  return nullptr;
}

Task* Scheduler::try_steal(unsigned thief) {
  const unsigned n = worker_count();
  if (n <= 1) return nullptr;
  WorkerSlot& me = *slots_[thief];
  const bool reliable = !is_unreliable(thief);

  const auto probe = [&](unsigned v) -> Task* {
    WorkerSlot& victim = *slots_[v];
    if (reliable) {
      if (Task* t = victim.deque[kReliableOnly].steal()) {
        me.steals.fetch_add(1, std::memory_order_relaxed);
        return t;
      }
    }
    if (Task* t = victim.deque[kAnyWorker].steal()) {
      me.steals.fetch_add(1, std::memory_order_relaxed);
      return t;
    }
    // Deques dry: raid undrained injections so work routed to a busy
    // worker is never stranded behind its long-running task.
    if (reliable) {
      if (Task* t = raid_inbox(thief, v, kReliableOnly)) return t;
    }
    if (Task* t = raid_inbox(thief, v, kAnyWorker)) return t;
    return nullptr;
  };

  // Nearest-first, convoy-free: victims are probed by ascending topology
  // distance (precomputed per worker), with a random start WITHIN each of
  // the near/far segments — same-cache thieves share a victim set, and
  // without the rotation they would all probe it in the same order.  The
  // sweep stays exhaustive (required for the parking protocol).
  const std::vector<unsigned>& order = me.steal_order;
  const std::size_t near = me.near_count;
  if (near > 0) {
    const std::size_t start = static_cast<std::size_t>(me.rng.bounded(near));
    for (std::size_t k = 0; k < near; ++k) {
      std::size_t idx = start + k;
      if (idx >= near) idx -= near;
      if (Task* t = probe(order[idx])) {
        me.near_steals.fetch_add(1, std::memory_order_relaxed);
        return t;
      }
    }
  }
  const std::size_t far = order.size() - near;
  if (far > 0) {
    const std::size_t start = static_cast<std::size_t>(me.rng.bounded(far));
    for (std::size_t k = 0; k < far; ++k) {
      std::size_t idx = start + k;
      if (idx >= far) idx -= far;
      if (Task* t = probe(order[near + idx])) {
        me.far_steals.fetch_add(1, std::memory_order_relaxed);
        return t;
      }
    }
  }
  return nullptr;
}

bool Scheduler::has_visible_work(unsigned index) const {
  const bool reliable = !is_unreliable(index);
  const WorkerSlot& me = *slots_[index];
  if (reliable && (me.inbox[kReliableOnly].load(std::memory_order_acquire) !=
                       nullptr ||
                   !me.deque[kReliableOnly].empty())) {
    return true;
  }
  if (me.inbox[kAnyWorker].load(std::memory_order_acquire) != nullptr ||
      !me.deque[kAnyWorker].empty()) {
    return true;
  }
  if (!steal_enabled_) return false;
  const unsigned n = worker_count();
  for (unsigned v = 0; v < n; ++v) {
    if (v == index) continue;
    const WorkerSlot& o = *slots_[v];
    if (reliable &&
        (o.inbox[kReliableOnly].load(std::memory_order_acquire) != nullptr ||
         !o.deque[kReliableOnly].empty())) {
      return true;
    }
    if (o.inbox[kAnyWorker].load(std::memory_order_acquire) != nullptr ||
        !o.deque[kAnyWorker].empty()) {
      return true;
    }
  }
  return false;
}

std::uint64_t Scheduler::run_body_timed(Task& task, unsigned worker) {
  // Dequeue-time policy hook (LQH classification) runs on the executing
  // worker, before the body, outside the busy-time attribution.
  if (on_dequeue_ != nullptr) on_dequeue_(ctx_, task, worker);
  const std::uint64_t saved_inner = tls_inner_cycles;
  tls_inner_cycles = 0;
  const std::uint64_t c0 = support::CycleClock::now();
  execute_(ctx_, task, worker);
  const std::uint64_t inclusive = support::CycleClock::elapsed(c0);
  const std::uint64_t exclusive =
      inclusive - std::min(inclusive, tls_inner_cycles);
  // Charge this frame's full span to the enclosing frame (if any); at the
  // top level the accumulated value is never read — the next frame's
  // save/zero discards it.
  tls_inner_cycles = saved_inner + inclusive;
  return exclusive;
}

void Scheduler::run_task(Task* raw, unsigned index) {
  const std::uint64_t cycles = run_body_timed(*raw, index);
  if (tls_scheduler == this && tls_owns_slot && tls_worker == index) {
    // Single-writer counters: the owning worker is the only mutator, so a
    // plain load+store (no lock-prefixed RMW) is enough; readers (stats)
    // are documented as approximate while workers run.
    WorkerSlot& slot = *slots_[index];
    slot.busy_cycles.store(
        slot.busy_cycles.load(std::memory_order_relaxed) + cycles,
        std::memory_order_relaxed);
    slot.executed.store(slot.executed.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  } else {
    // The body detached mid-task (blocking handoff): slot `index` has a
    // new owner writing those counters, so detached completions accumulate
    // in shared atomics instead.
    detached_busy_cycles_.fetch_add(cycles, std::memory_order_relaxed);
    detached_executed_.fetch_add(1, std::memory_order_relaxed);
  }
  // Drop the in-flight reference the enqueuer donated; typically the last
  // one, returning the slot to the pool via the remote-free chain.
  raw->release();
}

void Scheduler::worker_loop(unsigned index) {
  tls_worker = index;
  tls_owns_slot = true;
  WorkerSlot& slot = *slots_[index];
  while (true) {
    // A task body may have detached this thread (blocking handoff): the
    // slot belongs to a spare now — unwind to the pool.
    if (!tls_owns_slot) return;
    slot.state.store(WorkerState::Scanning, std::memory_order_relaxed);
    if (Task* raw = acquire_work(index)) {
      slot.state.store(WorkerState::Running, std::memory_order_relaxed);
      run_task(raw, index);
      continue;
    }

    // Spin-before-park: yield a few times re-checking for work before
    // paying for a futex round trip.  During an active spawn stream the
    // producer keeps publishing, the re-check hits, and neither side
    // touches a kernel wait queue (the producer skips notify entirely for
    // non-WAITING workers).  Bounded, so idle workers still park quickly.
    bool found = false;
    for (int spin = 0; spin < kParkSpins; ++spin) {
      std::this_thread::yield();
      if (stopping_.load(std::memory_order_acquire)) break;  // go park/exit
      if (has_visible_work(index)) {
        found = true;
        break;
      }
    }
    if (found) continue;

    // Two-phase park (see eventcount.hpp): announce, re-check everything
    // we could possibly take — including the stop flag — then commit.
    ec_.prepare_wait(index);
    if (stopping_.load(std::memory_order_acquire)) {
      ec_.cancel_wait(index);
      if (!has_visible_work(index)) return;  // drained: exit
      continue;                              // keep draining
    }
    if (has_visible_work(index)) {
      ec_.cancel_wait(index);
      continue;
    }
    slot.state.store(WorkerState::Sleeping, std::memory_order_relaxed);
    ec_.commit_wait(index);
  }
}

void Scheduler::thread_main(PoolThread* self, int slot) {
  tls_scheduler = this;
  for (;;) {
    if (slot >= 0) {
      worker_loop(static_cast<unsigned>(slot));
      tls_owns_slot = false;
      slot = -1;
    }
    // Spare pool: wait for a freed slot (a worker detaching to block), or
    // retire once surplus and idle past the grace period.  Base-pool
    // threads (live <= worker_total_) never retire — they wait out the
    // grace and loop.
    support::MutexLock lk(pool_mutex_);
    for (;;) {
      if (!free_slots_.empty()) {
        slot = static_cast<int>(free_slots_.back());
        free_slots_.pop_back();
        break;
      }
      if (stopping_.load(std::memory_order_acquire)) {
        --live_threads_;
        self->exited.store(true, std::memory_order_release);
        return;
      }
      ++idle_spares_;
      // pool_cv_ reacquires pool_mutex_ before the predicate runs; TSA
      // cannot see through the lambda, so free_slots_ is re-checked on the
      // loop above instead.
      const bool signaled =
          pool_cv_.wait_for(lk.native(), spare_grace_, [this]() SIGRT_NO_THREAD_SAFETY_ANALYSIS {
            return stopping_.load(std::memory_order_acquire) ||
                   !free_slots_.empty();
          });
      --idle_spares_;
      if (!signaled && live_threads_ > worker_total_) {
        --live_threads_;
        ++spares_retired_;
        self->exited.store(true, std::memory_order_release);
        return;
      }
    }
  }
}

void Scheduler::reap_exited_locked() {
  for (std::size_t i = 0; i < pool_threads_.size();) {
    if (pool_threads_[i]->exited.load(std::memory_order_acquire)) {
      // The flag is the thread's last store before returning; join is
      // effectively immediate.
      if (pool_threads_[i]->th.joinable()) pool_threads_[i]->th.join();
      pool_threads_[i] = std::move(pool_threads_.back());
      pool_threads_.pop_back();
    } else {
      ++i;
    }
  }
}

void Scheduler::spawn_pool_thread_locked(int slot) {
  reap_exited_locked();
  auto pt = std::make_unique<PoolThread>();
  PoolThread* raw = pt.get();
  ++live_threads_;
  if (slot < 0) ++spares_spawned_;
  pool_threads_.push_back(std::move(pt));
  raw->th = std::thread([this, raw, slot] { thread_main(raw, slot); });
}

bool Scheduler::detach_for_blocking() {
  if (inline_mode() || tls_scheduler != this || !tls_owns_slot) return false;
  if (max_spares_ == 0) return false;
  {
    support::MutexLock lk(pool_mutex_);
    if (stopping_.load(std::memory_order_acquire)) return false;
    const bool idle_available = idle_spares_ > 0;
    if (!idle_available && live_threads_ >= worker_total_ + max_spares_) {
      return false;  // budget exhausted: caller must keep helping
    }
    free_slots_.push_back(tls_worker);
    ++handoffs_;
    if (idle_available) {
      pool_cv_.notify_one();
    } else {
      spawn_pool_thread_locked(-1);
    }
  }
  // The mutex above orders our last owner-side deque operations before the
  // adopting thread's first — the Chase-Lev single-owner handoff edge.
  tls_owns_slot = false;
  return true;
}

bool Scheduler::owns_current_slot() const noexcept {
  return tls_scheduler == this && tls_owns_slot;
}

unsigned Scheduler::current_worker() const noexcept { return tls_worker; }

bool Scheduler::current_worker_unreliable() const noexcept {
  return tls_scheduler == this && tls_owns_slot && is_unreliable(tls_worker);
}

std::size_t Scheduler::own_queue_depth() const noexcept {
  if (tls_scheduler != this || !tls_owns_slot) return 0;
  const WorkerSlot& me = *slots_[tls_worker];
  const std::int64_t a = me.deque[kReliableOnly].size();
  const std::int64_t b = me.deque[kAnyWorker].size();
  return static_cast<std::size_t>(a > 0 ? a : 0) +
         static_cast<std::size_t>(b > 0 ? b : 0);
}

void Scheduler::run_now(Task* task) {
  assert(tls_scheduler == this && tls_owns_slot &&
         "run_now requires a slot-owning worker");
  assert_enqueue_ok(*task);
  run_task(task, tls_worker);
}

bool Scheduler::park_worker_for_barrier(bool (*open)(void*), void* ctx,
                                        std::chrono::microseconds timeout) {
  if (tls_scheduler != this || !tls_owns_slot) return false;
  const unsigned i = tls_worker;
  // Two-phase park, with the BARRIER condition folded into the re-check:
  // the completion side (last-child decrement / group quiescence) issues
  // its fence before loading the waiter it notifies, so either our
  // re-check sees the barrier open or the completer sees kWaiting and
  // delivers the wake.  Producers publishing new work wake this slot the
  // same way they wake an idle worker — a parked helper stays live for
  // both events.
  ec_.prepare_wait(i);
  if (stopping_.load(std::memory_order_acquire) || open(ctx) ||
      has_visible_work(i)) {
    ec_.cancel_wait(i);
    return false;
  }
  WorkerSlot& slot = *slots_[i];
  slot.state.store(WorkerState::Sleeping, std::memory_order_relaxed);
  if (timeout.count() > 0) {
    ec_.commit_wait_for(i, timeout);
  } else {
    ec_.commit_wait(i);
  }
  slot.state.store(WorkerState::Scanning, std::memory_order_relaxed);
  return true;
}

PoolStats Scheduler::pool_stats() const {
  PoolStats p;
  {
    support::MutexLock lk(pool_mutex_);
    p.handoffs = handoffs_;
    p.spares_spawned = spares_spawned_;
    p.spares_retired = spares_retired_;
    p.live_threads = live_threads_;
    p.idle_spares = idle_spares_;
  }
  for (const auto& slot : slots_) {
    p.near_steals += slot->near_steals.load(std::memory_order_relaxed);
    p.far_steals += slot->far_steals.load(std::memory_order_relaxed);
  }
  return p;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Scheduler::steal_locality()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) {
    out.emplace_back(slot->near_steals.load(std::memory_order_relaxed),
                     slot->far_steals.load(std::memory_order_relaxed));
  }
  return out;
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  std::uint64_t cycles = inline_busy_cycles_;
  for (const auto& slot : slots_) {
    s.executed += slot->executed.load(std::memory_order_relaxed);
    s.steals += slot->steals.load(std::memory_order_relaxed);
    cycles += slot->busy_cycles.load(std::memory_order_relaxed);
  }
  s.executed += inline_executed_;
  s.executed += detached_executed_.load(std::memory_order_relaxed);
  cycles += detached_busy_cycles_.load(std::memory_order_relaxed);
  s.busy_ns = support::CycleClock::to_ns(cycles);
  return s;
}

std::int64_t Scheduler::busy_ns() const { return stats().busy_ns; }

std::pair<std::int64_t, std::int64_t> Scheduler::busy_ns_split() const {
  // Detached (slotless) execution only ever runs on threads that held a
  // reliable slot, so its cycles land in the reliable bucket.
  std::uint64_t reliable =
      inline_busy_cycles_ +
      detached_busy_cycles_.load(std::memory_order_relaxed);
  std::uint64_t unreliable = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    (is_unreliable(static_cast<unsigned>(i)) ? unreliable : reliable) +=
        slots_[i]->busy_cycles.load(std::memory_order_relaxed);
  }
  return {support::CycleClock::to_ns(reliable),
          support::CycleClock::to_ns(unreliable)};
}

void Scheduler::dump(FILE* out) const {
  std::fprintf(out, "scheduler: workers=%zu reliable=%u steal=%d stopping=%d\n",
               slots_.size(), reliable_count_, steal_enabled_ ? 1 : 0,
               stopping_.load() ? 1 : 0);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const auto& slot = *slots_[i];
    const char* state = "?";
    switch (slot.state.load(std::memory_order_relaxed)) {
      case WorkerState::Scanning: state = "scanning"; break;
      case WorkerState::Running: state = "running"; break;
      case WorkerState::Sleeping: state = "sleeping"; break;
    }
    std::fprintf(
        out,
        "  worker %zu: state=%s unreliable=%d deque[rel]=%lld deque[any]=%lld "
        "inbox[rel]=%d inbox[any]=%d executed=%llu steals=%llu\n",
        i, state, is_unreliable(static_cast<unsigned>(i)) ? 1 : 0,
        static_cast<long long>(slot.deque[kReliableOnly].size()),
        static_cast<long long>(slot.deque[kAnyWorker].size()),
        slot.inbox[kReliableOnly].load(std::memory_order_acquire) != nullptr,
        slot.inbox[kAnyWorker].load(std::memory_order_acquire) != nullptr,
        static_cast<unsigned long long>(
            slot.executed.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            slot.steals.load(std::memory_order_relaxed)));
  }
}

}  // namespace sigrt
