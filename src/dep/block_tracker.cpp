#include "dep/block_tracker.hpp"

#include <bit>
#include <cassert>

namespace sigrt::dep {

BlockTracker::BlockTracker(std::size_t block_bytes)
    : block_bytes_(block_bytes),
      block_shift_(static_cast<unsigned>(std::countr_zero(block_bytes))) {
  assert(block_bytes > 0 && std::has_single_bit(block_bytes) &&
         "block size must be a power of two");
}

std::uint64_t BlockTracker::first_block(const void* ptr) const noexcept {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(ptr)) >>
         block_shift_;
}

std::uint64_t BlockTracker::last_block(const void* ptr,
                                       std::size_t bytes) const noexcept {
  const auto base = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(ptr));
  const std::uint64_t end = base + (bytes == 0 ? 0 : bytes - 1);
  return end >> block_shift_;
}

bool BlockTracker::link(const std::shared_ptr<Node>& pred,
                        const std::shared_ptr<Node>& succ) {
  if (!pred || pred.get() == succ.get() || pred->done_) return false;
  if (pred->visit_stamp_ == stamp_) return false;  // already linked this pass
  pred->visit_stamp_ = stamp_;
  pred->dependents_.push_back(succ);
  ++stats_.edges;
  return true;
}

std::size_t BlockTracker::register_node(const std::shared_ptr<Node>& node,
                                        std::span<const Access> accesses) {
  std::lock_guard lock(mutex_);
  ++stamp_;
  ++stats_.registered_nodes;
  std::size_t predecessors = 0;

  for (const Access& a : accesses) {
    if (a.ptr == nullptr || a.bytes == 0) continue;
    const std::uint64_t lo = first_block(a.ptr);
    const std::uint64_t hi = last_block(a.ptr, a.bytes);
    for (std::uint64_t b = lo; b <= hi; ++b) {
      auto [it, inserted] = blocks_.try_emplace(b);
      if (inserted) ++stats_.blocks_touched;
      BlockState& state = it->second;

      if (reads(a.mode)) {
        // RAW: reader after writer.
        if (link(state.last_writer, node)) ++predecessors;
      }
      if (writes(a.mode)) {
        // WAW: writer after writer.
        if (link(state.last_writer, node)) ++predecessors;
        // WAR: writer after readers.
        for (const auto& r : state.readers) {
          if (link(r, node)) ++predecessors;
        }
        state.readers.clear();
        state.last_writer = node;
      } else {
        state.readers.push_back(node);
      }
    }
  }
  return predecessors;
}

std::vector<std::shared_ptr<Node>> BlockTracker::complete(Node& node) {
  std::lock_guard lock(mutex_);
  node.done_ = true;
  return std::move(node.dependents_);
}

std::vector<std::shared_ptr<Node>> BlockTracker::pending_writers(
    const void* ptr, std::size_t bytes) {
  std::lock_guard lock(mutex_);
  ++stamp_;
  std::vector<std::shared_ptr<Node>> result;
  if (ptr == nullptr || bytes == 0) return result;
  const std::uint64_t lo = first_block(ptr);
  const std::uint64_t hi = last_block(ptr, bytes);
  for (std::uint64_t b = lo; b <= hi; ++b) {
    auto it = blocks_.find(b);
    if (it == blocks_.end()) continue;
    const auto& w = it->second.last_writer;
    if (w && !w->done_ && w->visit_stamp_ != stamp_) {
      w->visit_stamp_ = stamp_;
      result.push_back(w);
    }
  }
  return result;
}

void BlockTracker::reset() {
  std::lock_guard lock(mutex_);
  blocks_.clear();
}

TrackerStats BlockTracker::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace sigrt::dep
