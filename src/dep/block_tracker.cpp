#include "dep/block_tracker.hpp"

#include <bit>
#include <cassert>

namespace sigrt::dep {

BlockTracker::BlockTracker(std::size_t block_bytes, unsigned stripes)
    : block_bytes_(block_bytes),
      block_shift_(static_cast<unsigned>(std::countr_zero(block_bytes))),
      stripe_count_(stripes == 0 ? kMaxStripes : stripes),
      stripe_shift_(64u - static_cast<unsigned>(
                              std::countr_zero(stripe_count_ == 0
                                                   ? kMaxStripes
                                                   : stripe_count_))),
      all_stripes_mask_(stripe_count_ >= 64
                            ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << stripe_count_) - 1) {
  assert(block_bytes > 0 && std::has_single_bit(block_bytes) &&
         "block size must be a power of two");
  assert(stripe_count_ >= 1 && stripe_count_ <= kMaxStripes &&
         std::has_single_bit(stripe_count_) &&
         "stripe count must be a power of two in [1, kMaxStripes]");
}

std::uint64_t BlockTracker::first_block(const void* ptr) const noexcept {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(ptr)) >>
         block_shift_;
}

std::uint64_t BlockTracker::last_block(const void* ptr,
                                       std::size_t bytes) const noexcept {
  const auto base = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(ptr));
  const std::uint64_t end = base + (bytes == 0 ? 0 : bytes - 1);
  return end >> block_shift_;
}

std::uint64_t BlockTracker::stripe_mask(std::uint64_t lo,
                                        std::uint64_t hi) const noexcept {
  if (hi - lo + 1 >= stripe_count_) return all_stripes_mask_;
  std::uint64_t mask = 0;
  for (std::uint64_t b = lo; b <= hi; ++b) {
    mask |= std::uint64_t{1} << stripe_of(b);
  }
  return mask;
}

void BlockTracker::lock_stripes(std::uint64_t mask) noexcept {
  // Ascending stripe order — the global lock order that keeps concurrent
  // multi-stripe registrations deadlock-free.
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    stripes_[static_cast<unsigned>(std::countr_zero(m))].lock.lock();
  }
}

void BlockTracker::unlock_stripes(std::uint64_t mask) noexcept {
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    stripes_[static_cast<unsigned>(std::countr_zero(m))].lock.unlock();
  }
}

bool BlockTracker::link(Node* pred, Node* succ, std::uint64_t stamp) {
  if (pred == nullptr || pred == succ) return false;
  if (pred->visit_stamp_.load(std::memory_order_relaxed) == stamp) {
    return false;  // already linked this pass
  }
  // Fast path: a predecessor observed done needs no edge.  The acquire
  // pairs with complete()'s release store, so the successor's registering
  // thread — and, through the scheduler's publication edges, the worker
  // that eventually runs it — sees the predecessor's side effects.
  if (pred->done_.load(std::memory_order_acquire)) return false;
  bool added = false;
  pred->dep_lock_.lock();
  if (!pred->done_.load(std::memory_order_relaxed)) {  // re-check under lock
    succ->ref_retain();  // the dependents entry owns one reference
    pred->dependents_.push_back(succ);
    added = true;
  }
  pred->dep_lock_.unlock();
  if (added) pred->visit_stamp_.store(stamp, std::memory_order_relaxed);
  return added;
}

std::size_t BlockTracker::register_node(Node* node,
                                        std::span<const Access> accesses) {
  // Stamps are process-unique (never reused, never 0), so concurrent
  // registrations stamping the same predecessor can at worst miss a
  // de-duplication — a harmless duplicate edge whose gate arithmetic still
  // balances — never alias each other's stamps.
  const std::uint64_t stamp = stamp_.fetch_add(1, std::memory_order_relaxed);
  registered_nodes_.fetch_add(1, std::memory_order_relaxed);

  // Pass 1 (no locks): the stripe set of the whole footprint.
  std::uint64_t mask = 0;
  for (const Access& a : accesses) {
    if (a.ptr == nullptr || a.bytes == 0) continue;
    mask |= stripe_mask(first_block(a.ptr), last_block(a.ptr, a.bytes));
  }
  if (mask == 0) return 0;

  // Pass 2: hold every involved stripe for the duration so conflicting
  // registrations serialize in one consistent order across all shared
  // blocks (pairwise edges can then never form a cycle).
  lock_stripes(mask);

  std::size_t predecessors = 0;
  std::uint64_t new_edges = 0;
  std::int64_t parks = 0;
  for (const Access& a : accesses) {
    if (a.ptr == nullptr || a.bytes == 0) continue;
    const std::uint64_t lo = first_block(a.ptr);
    const std::uint64_t hi = last_block(a.ptr, a.bytes);
    for (std::uint64_t b = lo; b <= hi; ++b) {
      Stripe& stripe = stripes_[stripe_of(b)];
      bool inserted = false;
      BlockState& state = stripe.map.get_or_insert(b, inserted);
      if (inserted) ++stripe.blocks_ever;

      if (reads(a.mode)) {
        // RAW: reader after writer.
        if (link(state.last_writer, node, stamp)) {
          ++predecessors;
          ++new_edges;
        }
      }
      if (writes(a.mode)) {
        // WAW: writer after writer.
        if (link(state.last_writer, node, stamp)) {
          ++predecessors;
          ++new_edges;
        }
        // WAR: writer after readers — link each, then drop its pin.  A
        // reader pin parked by an earlier access of this same registration
        // is displaced by adjusting the local park count, not the shared
        // reference.
        state.for_each_reader([&](Node* r) {
          if (r == node) {
            --parks;
            return;
          }
          if (link(r, node, stamp)) {
            ++predecessors;
            ++new_edges;
          }
          unpin(r);
        });
        state.clear_readers();
        // A later write clause of this same registration may find the node
        // already parked as this block's writer; the existing pin stands
        // (unpin here would transiently underflow the not-yet-published
        // pin count).
        if (state.last_writer != node) {
          if (state.last_writer != nullptr) unpin(state.last_writer);
          state.last_writer = node;
          ++parks;
          node->touched_blocks_.push_back(b);
        }
      } else {
        state.add_reader(node);
        ++parks;
        node->touched_blocks_.push_back(b);
      }
    }
  }

  // One retained reference backs every pin of this registration; the pin
  // count is published before the stripe locks drop, so any later
  // displacement finds it in place.
  if (parks > 0) {
    node->ref_retain();
    node->pin_count_.fetch_add(static_cast<std::uint32_t>(parks),
                               std::memory_order_relaxed);
  }

  unlock_stripes(mask);
  if (new_edges != 0) edges_.fetch_add(new_edges, std::memory_order_relaxed);
  return predecessors;
}

void BlockTracker::complete(Node& node, std::vector<Node*>& out) {
  // Phase 1 — publish: set done_ and harvest the dependents, all under the
  // node's dep_lock_ so the last racing link() either lands before the
  // harvest (and is collected here) or observes done_ (and adds no edge).
  // No stripe lock is held, keeping the stripe→node lock order one-way.
  node.dep_lock_.lock();
  node.done_.store(true, std::memory_order_release);
  // The dependents' references transfer to the caller; the vector keeps its
  // capacity for the node's next life in the task pool.
  out.insert(out.end(), node.dependents_.begin(), node.dependents_.end());
  node.dependents_.clear();
  node.dep_lock_.unlock();

  // Phase 2 — unpin: drop every block-map pin still naming this node, one
  // stripe at a time, so the tracker holds no pointer to it afterwards
  // (pooled tasks recycle promptly; plain test nodes may be destroyed).
  // touched_blocks_ may hold duplicates and blocks where the pin was
  // already displaced by a later writer — both are no-ops here.  A
  // registration that meanwhile finds a still-parked pin sees done_ and
  // links nothing.
  if (node.touched_blocks_.empty()) return;
  std::uint64_t mask = 0;
  for (const std::uint64_t b : node.touched_blocks_) {
    mask |= std::uint64_t{1} << stripe_of(b);
  }
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    const auto s = static_cast<unsigned>(std::countr_zero(m));
    Stripe& stripe = stripes_[s];
    stripe.lock.lock();
    for (const std::uint64_t b : node.touched_blocks_) {
      if (stripe_of(b) != s) continue;
      BlockState* state = stripe.map.find(b);
      if (state == nullptr) continue;  // reset() dropped the block
      if (state->last_writer == &node) {
        state->last_writer = nullptr;
        unpin(&node);
      }
      // Parked at most once per block per role.
      if (state->remove_reader(&node)) unpin(&node);
    }
    stripe.lock.unlock();
  }
  node.touched_blocks_.clear();
}

std::vector<Node*> BlockTracker::pending_writers(const void* ptr,
                                                 std::size_t bytes) {
  std::vector<Node*> result;
  if (ptr == nullptr || bytes == 0) return result;
  const std::uint64_t stamp = stamp_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t lo = first_block(ptr);
  const std::uint64_t hi = last_block(ptr, bytes);
  // One linear pass over the range, re-locking only when the block's
  // stripe changes.  At most one stripe lock is held at a time, so the
  // visit order (block order, not ascending stripe order) cannot deadlock.
  Stripe* locked = nullptr;
  for (std::uint64_t b = lo; b <= hi; ++b) {
    Stripe& stripe = stripes_[stripe_of(b)];
    if (&stripe != locked) {
      if (locked != nullptr) locked->lock.unlock();
      stripe.lock.lock();
      locked = &stripe;
    }
    BlockState* state = stripe.map.find(b);
    if (state == nullptr) continue;
    Node* w = state->last_writer;
    if (w != nullptr && !w->done_.load(std::memory_order_acquire) &&
        w->visit_stamp_.load(std::memory_order_relaxed) != stamp) {
      w->visit_stamp_.store(stamp, std::memory_order_relaxed);
      result.push_back(w);
    }
  }
  if (locked != nullptr) locked->lock.unlock();
  return result;
}

void BlockTracker::reset() {
  // Precondition: no registered node is still pending, so every pin was
  // already dropped by complete() — the map entries reference nothing and
  // are simply forgotten.  Never-completed nodes (test-owned) lose their
  // no-op pins without being touched.
  for (Stripe& stripe : stripes_) {
    stripe.lock.lock();
    stripe.map.clear();
    stripe.lock.unlock();
  }
}

TrackerStats BlockTracker::stats() const {
  TrackerStats s;
  s.registered_nodes = registered_nodes_.load(std::memory_order_relaxed);
  s.edges = edges_.load(std::memory_order_relaxed);
  for (const Stripe& stripe : stripes_) {
    stripe.lock.lock();
    s.blocks_touched += stripe.blocks_ever;
    stripe.lock.unlock();
  }
  return s;
}

}  // namespace sigrt::dep
