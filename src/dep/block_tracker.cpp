#include "dep/block_tracker.hpp"

#include <bit>
#include <cassert>

namespace sigrt::dep {

BlockTracker::BlockTracker(std::size_t block_bytes)
    : block_bytes_(block_bytes),
      block_shift_(static_cast<unsigned>(std::countr_zero(block_bytes))) {
  assert(block_bytes > 0 && std::has_single_bit(block_bytes) &&
         "block size must be a power of two");
}

std::uint64_t BlockTracker::first_block(const void* ptr) const noexcept {
  return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(ptr)) >>
         block_shift_;
}

std::uint64_t BlockTracker::last_block(const void* ptr,
                                       std::size_t bytes) const noexcept {
  const auto base = static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(ptr));
  const std::uint64_t end = base + (bytes == 0 ? 0 : bytes - 1);
  return end >> block_shift_;
}

bool BlockTracker::link(Node* pred, Node* succ) {
  if (pred == nullptr || pred == succ || pred->done_) return false;
  if (pred->visit_stamp_ == stamp_) return false;  // already linked this pass
  pred->visit_stamp_ = stamp_;
  succ->ref_retain();  // the dependents entry owns one reference
  pred->dependents_.push_back(succ);
  ++stats_.edges;
  return true;
}

std::size_t BlockTracker::register_node(Node* node,
                                        std::span<const Access> accesses) {
  std::lock_guard lock(mutex_);
  ++stamp_;
  ++stats_.registered_nodes;
  std::size_t predecessors = 0;

  for (const Access& a : accesses) {
    if (a.ptr == nullptr || a.bytes == 0) continue;
    const std::uint64_t lo = first_block(a.ptr);
    const std::uint64_t hi = last_block(a.ptr, a.bytes);
    for (std::uint64_t b = lo; b <= hi; ++b) {
      auto [it, inserted] = blocks_.try_emplace(b);
      if (inserted) ++stats_.blocks_touched;
      BlockState& state = it->second;

      if (reads(a.mode)) {
        // RAW: reader after writer.
        if (link(state.last_writer, node)) ++predecessors;
      }
      if (writes(a.mode)) {
        // WAW: writer after writer.
        if (link(state.last_writer, node)) ++predecessors;
        // WAR: writer after readers.
        for (Node* r : state.readers) {
          if (link(r, node)) ++predecessors;
        }
        for (Node* r : state.readers) unpark(r);
        state.readers.clear();
        unpark(state.last_writer);
        node->ref_retain();
        state.last_writer = node;
        node->touched_blocks_.push_back(b);
      } else {
        node->ref_retain();
        state.readers.push_back(node);
        node->touched_blocks_.push_back(b);
      }
    }
  }
  return predecessors;
}

void BlockTracker::complete(Node& node, std::vector<Node*>& out) {
  std::lock_guard lock(mutex_);
  node.done_ = true;
  // Drop every block-map pin still naming this node so the tracker holds
  // no pointer to it afterwards (pooled tasks recycle promptly; plain test
  // nodes may be destroyed).  touched_blocks_ may hold duplicates and
  // blocks where the pin was already displaced by a later writer — both
  // are no-ops here.
  for (const std::uint64_t b : node.touched_blocks_) {
    auto it = blocks_.find(b);
    if (it == blocks_.end()) continue;  // reset() dropped the block
    BlockState& state = it->second;
    if (state.last_writer == &node) {
      state.last_writer = nullptr;
      unpark(&node);
    }
    for (std::size_t i = 0; i < state.readers.size(); ++i) {
      if (state.readers[i] == &node) {
        state.readers[i] = state.readers.back();
        state.readers.pop_back();
        unpark(&node);
        break;  // parked at most once per block per role
      }
    }
  }
  node.touched_blocks_.clear();
  // The dependents' references transfer to the caller; the vector keeps its
  // capacity for the node's next life in the task pool.
  out.insert(out.end(), node.dependents_.begin(), node.dependents_.end());
  node.dependents_.clear();
}

std::vector<Node*> BlockTracker::pending_writers(const void* ptr,
                                                 std::size_t bytes) {
  std::lock_guard lock(mutex_);
  ++stamp_;
  std::vector<Node*> result;
  if (ptr == nullptr || bytes == 0) return result;
  const std::uint64_t lo = first_block(ptr);
  const std::uint64_t hi = last_block(ptr, bytes);
  for (std::uint64_t b = lo; b <= hi; ++b) {
    auto it = blocks_.find(b);
    if (it == blocks_.end()) continue;
    Node* w = it->second.last_writer;
    if (w != nullptr && !w->done_ && w->visit_stamp_ != stamp_) {
      w->visit_stamp_ = stamp_;
      result.push_back(w);
    }
  }
  return result;
}

void BlockTracker::reset() {
  // Precondition: no registered node is still pending, so every pin was
  // already dropped by complete() — the map entries reference nothing and
  // are simply forgotten.  Never-completed nodes (test-owned) lose their
  // no-op pins without being touched.
  std::lock_guard lock(mutex_);
  blocks_.clear();
}

TrackerStats BlockTracker::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace sigrt::dep
