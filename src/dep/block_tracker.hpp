// Block-level dynamic dependence analysis.
//
// The paper's runtime extends BDDT [23], which discovers inter-task
// dependencies at block granularity from the programmer's in()/out()
// clauses.  This module reimplements that substrate: memory is viewed as
// fixed-size blocks; for every block the tracker remembers the last writer
// and the readers since that write, and derives RAW, WAR and WAW edges when
// a new task registers its footprint.
//
// The tracker is policy-agnostic: it neither schedules nor executes.  The
// runtime registers each task at spawn time (master thread) and notifies
// completion from worker threads; both entry points synchronize on one
// mutex, which is acceptable because tasks in this model are coarse-grained
// (the paper makes the same argument for its bookkeeping, §3.4).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace sigrt::dep {

/// Access direction of one clause.  In ≡ in(), Out ≡ out(), InOut ≡ inout().
enum class Mode : std::uint8_t {
  In = 1,
  Out = 2,
  InOut = 3,
};

[[nodiscard]] constexpr bool reads(Mode m) noexcept {
  return (static_cast<std::uint8_t>(m) & static_cast<std::uint8_t>(Mode::In)) != 0;
}
[[nodiscard]] constexpr bool writes(Mode m) noexcept {
  return (static_cast<std::uint8_t>(m) & static_cast<std::uint8_t>(Mode::Out)) != 0;
}

/// One data-flow clause: a byte range plus its direction.
struct Access {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
  Mode mode = Mode::In;
};

/// Convenience constructors mirroring the pragma clause names.
template <typename T>
[[nodiscard]] Access in(const T* p, std::size_t count = 1) {
  return {p, count * sizeof(T), Mode::In};
}
template <typename T>
[[nodiscard]] Access out(T* p, std::size_t count = 1) {
  return {p, count * sizeof(T), Mode::Out};
}
template <typename T>
[[nodiscard]] Access inout(T* p, std::size_t count = 1) {
  return {p, count * sizeof(T), Mode::InOut};
}

/// Participant in dependence tracking.  sigrt::core::Task derives from this.
/// All fields are owned by the tracker and only touched under its mutex.
class Node {
 public:
  virtual ~Node() = default;

 private:
  friend class BlockTracker;
  std::vector<std::shared_ptr<Node>> dependents_;
  std::uint64_t visit_stamp_ = 0;  // de-duplication during one registration
  bool done_ = false;
};

/// Aggregate counters for tests and diagnostics.
struct TrackerStats {
  std::uint64_t registered_nodes = 0;
  std::uint64_t edges = 0;          // dependency edges discovered
  std::uint64_t blocks_touched = 0; // distinct blocks ever observed
};

class BlockTracker {
 public:
  /// `block_bytes` must be a power of two.
  explicit BlockTracker(std::size_t block_bytes = 1024);

  BlockTracker(const BlockTracker&) = delete;
  BlockTracker& operator=(const BlockTracker&) = delete;

  /// Registers `node`'s footprint and wires edges from every unfinished
  /// predecessor (RAW/WAR/WAW).  Returns the number of predecessors found;
  /// the caller must arrange for the node to stay unreleased until that many
  /// complete() notifications have named it as a dependent.
  std::size_t register_node(const std::shared_ptr<Node>& node,
                            std::span<const Access> accesses);

  /// Marks `node` complete and returns the dependents recorded so far; the
  /// caller decrements each dependent's gate.  Nodes registered afterwards
  /// will no longer depend on `node`.
  [[nodiscard]] std::vector<std::shared_ptr<Node>> complete(Node& node);

  /// Collects the currently unfinished writers overlapping [ptr, ptr+bytes).
  /// Used by taskwait on(...): the caller waits for exactly these tasks.
  [[nodiscard]] std::vector<std::shared_ptr<Node>> pending_writers(
      const void* ptr, std::size_t bytes);

  /// Forgets all history.  Only valid when no tasks are in flight.
  void reset();

  [[nodiscard]] TrackerStats stats() const;
  [[nodiscard]] std::size_t block_bytes() const noexcept { return block_bytes_; }

 private:
  struct BlockState {
    std::shared_ptr<Node> last_writer;
    std::vector<std::shared_ptr<Node>> readers;  // readers since last write
  };

  /// Adds an edge pred -> succ unless pred is done or already linked during
  /// this registration (visit stamp).  Returns true when an edge was added.
  bool link(const std::shared_ptr<Node>& pred, const std::shared_ptr<Node>& succ);

  [[nodiscard]] std::uint64_t first_block(const void* ptr) const noexcept;
  [[nodiscard]] std::uint64_t last_block(const void* ptr,
                                         std::size_t bytes) const noexcept;

  const std::size_t block_bytes_;
  const unsigned block_shift_;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, BlockState> blocks_;
  std::uint64_t stamp_ = 0;
  TrackerStats stats_{};
};

}  // namespace sigrt::dep
