// Block-level dynamic dependence analysis.
//
// The paper's runtime extends BDDT [23], which discovers inter-task
// dependencies at block granularity from the programmer's in()/out()
// clauses.  This module reimplements that substrate: memory is viewed as
// fixed-size blocks; for every block the tracker remembers the last writer
// and the readers since that write, and derives RAW, WAR and WAW edges when
// a new task registers its footprint.
//
// The tracker is policy-agnostic: it neither schedules nor executes.  The
// runtime registers each task at spawn time (master thread) and notifies
// completion from worker threads; both entry points synchronize on one
// mutex, which is acceptable because tasks in this model are coarse-grained
// (the paper makes the same argument for its bookkeeping, §3.4).
//
// Lifetime: the tracker circulates raw Node* and pins nodes through the
// intrusive ref_retain()/ref_release() hooks — one reference per block-map
// slot (last writer / reader) and one per dependents-list entry.
// complete() removes every block-map pin of the completing node (each node
// remembers which blocks it touched), so after complete() the tracker
// holds no pointer to it.  For sigrt::Task the hooks drive the pooled
// intrusive refcount; for plain Nodes (tests) they default to no-ops and
// the caller must keep a registered node alive until it completes (the
// tracker may read it on any later registration of an overlapping range).
// The destructor drops any remaining map entries without touching the
// nodes: with every registered node completed (the runtime barriers before
// teardown) there are none, and never-completed test nodes are simply
// forgotten.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace sigrt::dep {

/// Access direction of one clause.  In ≡ in(), Out ≡ out(), InOut ≡ inout().
enum class Mode : std::uint8_t {
  In = 1,
  Out = 2,
  InOut = 3,
};

[[nodiscard]] constexpr bool reads(Mode m) noexcept {
  return (static_cast<std::uint8_t>(m) & static_cast<std::uint8_t>(Mode::In)) != 0;
}
[[nodiscard]] constexpr bool writes(Mode m) noexcept {
  return (static_cast<std::uint8_t>(m) & static_cast<std::uint8_t>(Mode::Out)) != 0;
}

/// One data-flow clause: a byte range plus its direction.
struct Access {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
  Mode mode = Mode::In;
};

/// Convenience constructors mirroring the pragma clause names.
template <typename T>
[[nodiscard]] Access in(const T* p, std::size_t count = 1) {
  return {p, count * sizeof(T), Mode::In};
}
template <typename T>
[[nodiscard]] Access out(T* p, std::size_t count = 1) {
  return {p, count * sizeof(T), Mode::Out};
}
template <typename T>
[[nodiscard]] Access inout(T* p, std::size_t count = 1) {
  return {p, count * sizeof(T), Mode::InOut};
}

/// Participant in dependence tracking.  sigrt::Task derives from this.
/// The dependence fields are owned by the tracker and only touched under
/// its mutex; the lifetime hooks are called under that same mutex.
class Node {
 public:
  virtual ~Node() = default;

  /// Lifetime hooks: the tracker retains a node for as long as it appears
  /// in dependence state (block map or a dependents list) and releases it
  /// when that slot is dropped or handed to the caller.  Defaults are
  /// no-ops so standalone Nodes (tests) need no refcount — their owner
  /// keeps them alive until complete().
  virtual void ref_retain() noexcept {}
  virtual void ref_release() noexcept {}

 protected:
  /// Restores the tracker-owned fields to their freshly-constructed state;
  /// used by pooled subclasses when a slot is recycled.  A non-empty
  /// dependents list here means the node is being recycled without having
  /// gone through complete() (abnormal teardown): the retained successor
  /// references are dropped so their slots still recycle.  The vectors
  /// keep their capacity — part of the zero-allocation steady state.
  void reset_dep_state() noexcept {
    for (Node* d : dependents_) d->ref_release();
    dependents_.clear();
    touched_blocks_.clear();
    visit_stamp_ = 0;
    done_ = false;
  }

 private:
  friend class BlockTracker;
  std::vector<Node*> dependents_;  ///< successors; one retained ref each
  /// Blocks where this node may still be parked as writer/reader (possibly
  /// with duplicates); complete() walks it to drop the block-map pins.
  std::vector<std::uint64_t> touched_blocks_;
  std::uint64_t visit_stamp_ = 0;  ///< de-duplication during one registration
  bool done_ = false;
};

/// Aggregate counters for tests and diagnostics.
struct TrackerStats {
  std::uint64_t registered_nodes = 0;
  std::uint64_t edges = 0;          // dependency edges discovered
  std::uint64_t blocks_touched = 0; // distinct blocks ever observed
};

class BlockTracker {
 public:
  /// `block_bytes` must be a power of two.
  explicit BlockTracker(std::size_t block_bytes = 1024);

  BlockTracker(const BlockTracker&) = delete;
  BlockTracker& operator=(const BlockTracker&) = delete;

  /// Registers `node`'s footprint and wires edges from every unfinished
  /// predecessor (RAW/WAR/WAW).  Returns the number of predecessors found;
  /// the caller must arrange for the node to stay unreleased until that many
  /// complete() notifications have named it as a dependent.
  std::size_t register_node(Node* node, std::span<const Access> accesses);

  /// Marks `node` complete, drops every block-map pin still naming it (the
  /// tracker holds no pointer to the node afterwards) and appends the
  /// dependents recorded so far to `out` (which is NOT cleared — callers
  /// reuse scratch buffers).  Each appended pointer carries one retained
  /// reference that the caller adopts: decrement the dependent's gate,
  /// then ref_release() it (or hand the reference on).  Nodes registered
  /// afterwards no longer depend on `node`.
  void complete(Node& node, std::vector<Node*>& out);

  /// Collects the currently unfinished writers overlapping [ptr, ptr+bytes).
  /// The returned pointers are NOT retained: they are valid only while the
  /// caller independently guarantees the writers have not completed (e.g.
  /// under a barrier, or for test-owned nodes).
  [[nodiscard]] std::vector<Node*> pending_writers(const void* ptr,
                                                   std::size_t bytes);

  /// Forgets all history.  Only valid when no tasks are in flight (every
  /// registered node completed), so the dropped map entries pin nothing.
  void reset();

  [[nodiscard]] TrackerStats stats() const;
  [[nodiscard]] std::size_t block_bytes() const noexcept { return block_bytes_; }

 private:
  struct BlockState {
    Node* last_writer = nullptr;  ///< retained while parked here
    std::vector<Node*> readers;   ///< readers since last write; retained
  };

  /// Adds an edge pred -> succ unless pred is done or already linked during
  /// this registration (visit stamp).  Returns true when an edge was added.
  bool link(Node* pred, Node* succ);

  /// Drops the block map's reference on a parked node pointer.
  static void unpark(Node* node) noexcept {
    if (node != nullptr) node->ref_release();
  }

  [[nodiscard]] std::uint64_t first_block(const void* ptr) const noexcept;
  [[nodiscard]] std::uint64_t last_block(const void* ptr,
                                         std::size_t bytes) const noexcept;

  const std::size_t block_bytes_;
  const unsigned block_shift_;

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, BlockState> blocks_;
  std::uint64_t stamp_ = 0;
  TrackerStats stats_{};
};

}  // namespace sigrt::dep
