// Block-level dynamic dependence analysis.
//
// The paper's runtime extends BDDT [23], which discovers inter-task
// dependencies at block granularity from the programmer's in()/out()
// clauses.  This module reimplements that substrate: memory is viewed as
// fixed-size blocks; for every block the tracker remembers the last writer
// and the readers since that write, and derives RAW, WAR and WAW edges when
// a new task registers its footprint.
//
// The tracker is policy-agnostic: it neither schedules nor executes.  The
// runtime registers each task at spawn time (master thread) and notifies
// completion from worker threads.  Unlike the paper's single bookkeeping
// lock (§3.4 argues one is acceptable for coarse tasks), this tracker is
// striped and mostly lock-free so fine-grained dependent workloads scale:
//
//   * The block map is sharded into kStripes cache-line-padded stripes by
//     a hash of the block index; each stripe owns an open-addressed flat
//     table (support::FlatBlockMap) whose BlockStates are reset, never
//     freed, preserving the zero-allocation steady state.
//   * register_node() computes the stripe set of the whole footprint up
//     front and holds those stripe locks — acquired in ascending stripe
//     order — for the duration of the registration.  Conflicting
//     registrations therefore serialize in one consistent order across
//     every shared block, which is what keeps the discovered task graph
//     acyclic; disjoint footprints proceed in parallel.
//   * Per-node dependence state lives outside the stripe locks: an atomic
//     done_ flag and a spinlocked dependents_ list implement a
//     publish/observe protocol (see "Node-state protocol" below) so that
//     link() under one stripe can race complete() of the same predecessor
//     without lost wakeups or double releases.
//
// Node-state protocol.  complete() first acquires the node's dep_lock_,
// stores done_ = true (release) and harvests the dependents list; only
// then does it visit the stripes to drop the node's block-map pins.  A
// racing link() checks done_ (acquire) before and after taking the same
// dep_lock_: if it observes done_, the predecessor's side effects are
// already visible (the acquire pairs with complete's release) and no edge
// is needed; otherwise the append happens under the lock and complete()
// is guaranteed to harvest it.  An edge is counted in register_node()'s
// return value exactly when the corresponding dependents entry was
// appended, so the caller's gate arithmetic always balances.
//
// Lock order (deadlock freedom): stripe locks are only ever acquired in
// ascending stripe order, and a node's dep_lock_ is only acquired either
// alone (complete phase 1) or while holding stripe locks (link), never
// the other way around.
//
// Lifetime: the tracker circulates raw Node* and pins nodes through the
// intrusive ref_retain()/ref_release() hooks — one shared reference
// covering all of a registration's block-map pins (last writer / reader
// slots, counted by Node::pin_count_) and one reference per
// dependents-list entry.
// complete() removes every block-map pin of the completing node (each node
// remembers which blocks it touched), so after complete() returns the
// tracker holds no pointer to it.  For sigrt::Task the hooks drive the
// pooled intrusive refcount; for plain Nodes (tests) they default to
// no-ops and the caller must keep a registered node alive until it
// completes (the tracker may read it on any later registration of an
// overlapping range).  The destructor drops any remaining map entries
// without touching the nodes: with every registered node completed (the
// runtime barriers before teardown) there are none, and never-completed
// test nodes are simply forgotten.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "support/flat_block_map.hpp"
#include "support/spinlock.hpp"

namespace sigrt::dep {

/// Access direction of one clause.  In ≡ in(), Out ≡ out(), InOut ≡ inout().
enum class Mode : std::uint8_t {
  In = 1,
  Out = 2,
  InOut = 3,
};

[[nodiscard]] constexpr bool reads(Mode m) noexcept {
  return (static_cast<std::uint8_t>(m) & static_cast<std::uint8_t>(Mode::In)) != 0;
}
[[nodiscard]] constexpr bool writes(Mode m) noexcept {
  return (static_cast<std::uint8_t>(m) & static_cast<std::uint8_t>(Mode::Out)) != 0;
}

/// One data-flow clause: a byte range plus its direction.
struct Access {
  const void* ptr = nullptr;
  std::size_t bytes = 0;
  Mode mode = Mode::In;
};

/// Convenience constructors mirroring the pragma clause names.
template <typename T>
[[nodiscard]] Access in(const T* p, std::size_t count = 1) {
  return {p, count * sizeof(T), Mode::In};
}
template <typename T>
[[nodiscard]] Access out(T* p, std::size_t count = 1) {
  return {p, count * sizeof(T), Mode::Out};
}
template <typename T>
[[nodiscard]] Access inout(T* p, std::size_t count = 1) {
  return {p, count * sizeof(T), Mode::InOut};
}

/// Participant in dependence tracking.  sigrt::Task derives from this.
/// done_ and dependents_ are the publish/observe half of the protocol in
/// the header comment (dep_lock_ + atomics, touched by link/complete from
/// any thread); touched_blocks_ is only ever written by the registering
/// thread and read by the completing one, which the runtime orders through
/// the task's publication to the scheduler.
class Node {
 public:
  virtual ~Node() = default;

  /// Lifetime hooks: the tracker retains a node for as long as it appears
  /// in dependence state (block map or a dependents list) and releases it
  /// when that slot is dropped or handed to the caller.  Defaults are
  /// no-ops so standalone Nodes (tests) need no refcount — their owner
  /// keeps them alive until complete().
  virtual void ref_retain() noexcept {}
  virtual void ref_release() noexcept {}

 protected:
  /// Restores the tracker-owned fields to their freshly-constructed state;
  /// used by pooled subclasses when a slot is recycled.  A non-empty
  /// dependents list here means the node is being recycled without having
  /// gone through complete() (abnormal teardown): the retained successor
  /// references are dropped so their slots still recycle.  The vectors
  /// keep their capacity — part of the zero-allocation steady state.
  /// Pool-recycle path: the slot is exclusively owned (refcount already
  /// zero), so dependents_ is accessed without dep_lock_ by protocol.
  void reset_dep_state() noexcept SIGRT_NO_THREAD_SAFETY_ANALYSIS {
    for (Node* d : dependents_) d->ref_release();
    dependents_.clear();
    touched_blocks_.clear();
    visit_stamp_.store(0, std::memory_order_relaxed);
    pin_count_.store(0, std::memory_order_relaxed);
    done_.store(false, std::memory_order_relaxed);
  }

 private:
  friend class BlockTracker;
  /// Guards dependents_ and the done_ publish edge (node-state protocol).
  support::SpinLock dep_lock_;
  /// Set (release) under dep_lock_ by complete(); read lock-free (acquire)
  /// by link()'s fast path, hence atomic rather than SIGRT_GUARDED_BY.
  std::atomic<bool> done_{false};
  /// Successors; one retained ref each.
  std::vector<Node*> dependents_ SIGRT_GUARDED_BY(dep_lock_);
  /// Blocks where this node may still be parked as writer/reader (possibly
  /// with duplicates); complete() walks it to drop the block-map pins.
  std::vector<std::uint64_t> touched_blocks_;
  /// De-duplication during one registration / pending_writers scan; stamp
  /// values are process-unique, so a stale stamp can never false-positive.
  std::atomic<std::uint64_t> visit_stamp_{0};
  /// Live block-map pins.  All pins of one registration share a single
  /// retained reference: register_node() counts its parks and retains
  /// once; whoever drops a pin (a displacing writer, complete() phase 2)
  /// decrements, and the count's zero crossing releases the shared
  /// reference.  This keeps the per-block cost to one relaxed RMW instead
  /// of two virtual refcount hooks.
  std::atomic<std::uint32_t> pin_count_{0};
};

/// Aggregate counters for tests and diagnostics.
struct TrackerStats {
  std::uint64_t registered_nodes = 0;
  std::uint64_t edges = 0;          // dependency edges discovered
  std::uint64_t blocks_touched = 0; // distinct blocks ever observed
};

class BlockTracker {
 public:
  /// Stripe-count ceiling: a whole footprint's stripe set fits into one
  /// uint64 mask, which makes sorted-order multi-stripe locking a ctz loop.
  static constexpr unsigned kMaxStripes = 64;

  /// `block_bytes` must be a power of two.  `stripes` selects the live
  /// stripe count — a power of two in [1, kMaxStripes]; 0 selects the
  /// ceiling.  Small machines waste no cache walking 64 mostly-empty
  /// shards; the runtime derives its value from the CPU topology
  /// (~4 stripes per worker, see topo::Topology::recommended_stripes).
  explicit BlockTracker(std::size_t block_bytes = 1024, unsigned stripes = 0);

  BlockTracker(const BlockTracker&) = delete;
  BlockTracker& operator=(const BlockTracker&) = delete;

  /// Registers `node`'s footprint and wires edges from every unfinished
  /// predecessor (RAW/WAR/WAW).  Returns the number of predecessors found;
  /// the caller must arrange for the node to stay unreleased until that many
  /// complete() notifications have named it as a dependent.  Predecessors
  /// may complete concurrently with the registration — callers seed their
  /// gate with a surplus hold (see Runtime::spawn_impl) so early
  /// notifications cannot zero it before this count is folded in.
  /// TSA opt-out: operates under the dynamic stripe set of lock_stripes()
  /// (ascending-order mask locking, inexpressible statically).
  std::size_t register_node(Node* node, std::span<const Access> accesses)
      SIGRT_NO_THREAD_SAFETY_ANALYSIS;

  /// Marks `node` complete, drops every block-map pin still naming it (the
  /// tracker holds no pointer to the node afterwards) and appends the
  /// dependents recorded so far to `out` (which is NOT cleared — callers
  /// reuse scratch buffers).  Each appended pointer carries one retained
  /// reference that the caller adopts: decrement the dependent's gate,
  /// then ref_release() it (or hand the reference on).  Nodes registered
  /// afterwards no longer depend on `node`.
  void complete(Node& node, std::vector<Node*>& out);

  /// Collects the currently unfinished writers overlapping [ptr, ptr+bytes)
  /// in one linear pass over the range, holding at most one stripe lock at
  /// a time (re-locking when the block's stripe changes).
  ///
  /// Non-retained-pointer contract (the one place it is documented): the
  /// returned pointers carry NO reference and are revalidated by nothing —
  /// they are valid only while the caller independently guarantees the
  /// writers have not completed (e.g. under a barrier, or for test-owned
  /// nodes).  A writer that completes between the stripe visits may or may
  /// not appear; one that completes after the call returns leaves a
  /// dangling entry.
  /// TSA opt-out: holds at most one stripe lock via a conditional
  /// relock-on-stripe-change walk, a dynamic pattern TSA cannot follow.
  [[nodiscard]] std::vector<Node*> pending_writers(const void* ptr,
                                                   std::size_t bytes)
      SIGRT_NO_THREAD_SAFETY_ANALYSIS;

  /// Forgets all history.  Only valid when no tasks are in flight (every
  /// registered node completed), so the dropped map entries pin nothing.
  void reset();

  [[nodiscard]] TrackerStats stats() const;
  [[nodiscard]] std::size_t block_bytes() const noexcept { return block_bytes_; }
  [[nodiscard]] unsigned stripe_count() const noexcept { return stripe_count_; }

 private:
  /// Per-block history.  Readers since the last write live in a small
  /// inline array that spills into a vector; both are reset — never freed —
  /// when readers are displaced, so a warm block never allocates.
  struct BlockState {
    static constexpr unsigned kInlineReaders = 6;

    Node* last_writer = nullptr;  ///< retained while parked here
    std::uint32_t reader_count = 0;
    std::array<Node*, kInlineReaders> readers_inline{};
    std::vector<Node*> readers_spill;  ///< readers beyond the inline array

    void add_reader(Node* n) {
      if (reader_count < kInlineReaders) {
        readers_inline[reader_count] = n;
      } else {
        readers_spill.push_back(n);
      }
      ++reader_count;
    }

    /// Swap-removes one occurrence of `n`; true when found.
    bool remove_reader(Node* n) noexcept {
      const std::uint32_t inline_count =
          reader_count < kInlineReaders ? reader_count : kInlineReaders;
      for (std::uint32_t i = 0; i < inline_count; ++i) {
        if (readers_inline[i] != n) continue;
        if (!readers_spill.empty()) {
          readers_inline[i] = readers_spill.back();
          readers_spill.pop_back();
        } else {
          readers_inline[i] = readers_inline[inline_count - 1];
        }
        --reader_count;
        return true;
      }
      for (std::size_t i = 0; i < readers_spill.size(); ++i) {
        if (readers_spill[i] != n) continue;
        readers_spill[i] = readers_spill.back();
        readers_spill.pop_back();
        --reader_count;
        return true;
      }
      return false;
    }

    template <typename F>
    void for_each_reader(F&& f) {
      const std::uint32_t inline_count =
          reader_count < kInlineReaders ? reader_count : kInlineReaders;
      for (std::uint32_t i = 0; i < inline_count; ++i) f(readers_inline[i]);
      for (Node* n : readers_spill) f(n);
    }

    void clear_readers() noexcept {
      reader_count = 0;
      readers_spill.clear();  // capacity kept: reset, not freed
    }
  };

  /// One shard of the block map.  Padded so neighbouring stripes never
  /// share a cache line under concurrent register/complete traffic.
  struct alignas(64) Stripe {
    mutable support::SpinLock lock;
    support::FlatBlockMap<BlockState> map SIGRT_GUARDED_BY(lock);
    /// Distinct keys ever inserted.
    std::uint64_t blocks_ever SIGRT_GUARDED_BY(lock) = 0;
  };

  [[nodiscard]] unsigned stripe_of(std::uint64_t block) const noexcept {
    // Fibonacci hash: consecutive block indices of one array scatter over
    // stripes instead of marching through them in lockstep.  Shifting by
    // (64 - log2(stripe_count_)) keeps the top bits, so any power-of-two
    // stripe count reuses the same multiply.
    // stripe_count_ == 1 would need a shift by 64 (UB); short-circuit it.
    return stripe_shift_ >= 64
               ? 0u
               : static_cast<unsigned>((block * 0x9E3779B97F4A7C15ULL) >>
                                       stripe_shift_);
  }

  /// Builds the stripe mask of [lo, hi]; a range covering every live
  /// stripe short-circuits to the all-live-stripes mask.
  [[nodiscard]] std::uint64_t stripe_mask(std::uint64_t lo,
                                          std::uint64_t hi) const noexcept;

  // Dynamic stripe sets (a ctz loop over a runtime mask, ascending order)
  // are beyond TSA's static capability tracking; the implementations and
  // every holder of a mask-locked region opt out with
  // SIGRT_NO_THREAD_SAFETY_ANALYSIS and rely on the documented ascending
  // lock order instead.
  void lock_stripes(std::uint64_t mask) noexcept SIGRT_NO_THREAD_SAFETY_ANALYSIS;
  void unlock_stripes(std::uint64_t mask) noexcept
      SIGRT_NO_THREAD_SAFETY_ANALYSIS;

  /// Adds an edge pred -> succ unless pred is done or already linked during
  /// this pass (visit stamp).  Returns true when an edge was added.  Must
  /// be called while holding the stripe lock that parked `pred` (the pin is
  /// what keeps the pointer alive).
  bool link(Node* pred, Node* succ, std::uint64_t stamp);

  /// Drops one block-map pin of `node`; the last pin releases the shared
  /// registration reference.  Caller must hold the stripe lock the pin was
  /// found under (which is what makes the pointer still dereferencable).
  static void unpin(Node* node) noexcept {
    if (node->pin_count_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      node->ref_release();
    }
  }

  [[nodiscard]] std::uint64_t first_block(const void* ptr) const noexcept;
  [[nodiscard]] std::uint64_t last_block(const void* ptr,
                                         std::size_t bytes) const noexcept;

  const std::size_t block_bytes_;
  const unsigned block_shift_;
  const unsigned stripe_count_;   ///< live stripes (power of two <= kMaxStripes)
  const unsigned stripe_shift_;   ///< 64 - log2(stripe_count_)
  const std::uint64_t all_stripes_mask_;

  /// Storage is sized for the ceiling; only the first stripe_count_ entries
  /// are ever addressed (stripe_of masks into that prefix).
  std::array<Stripe, kMaxStripes> stripes_;

  /// Registration/scan stamp source.  Starts at 1 so a freshly reset
  /// node's visit_stamp_ of 0 never matches a live stamp.
  std::atomic<std::uint64_t> stamp_{1};
  std::atomic<std::uint64_t> registered_nodes_{0};
  std::atomic<std::uint64_t> edges_{0};
};

}  // namespace sigrt::dep
