// Loop perforation baseline (Sidiroglou-Douskos et al. [19]).
//
// The paper's evaluation compares the significance-aware runtime against
// "blind" loop perforation: a compiler transformation that skips a fraction
// of a loop's iterations with no notion of which iterations matter.  The
// perforated comparator in Figure 2 "executes the same number of tasks as
// those executed accurately by our approach" (§4.1), i.e. a perforation
// rate of (1 - ratio).
//
// Three standard perforation shapes are provided; the benchmarks use
// Modulo (the canonical compiler transformation), while Truncate and
// Random support the perforation ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/rng.hpp"

namespace sigrt::perforation {

/// Which iterations survive a perforated loop.
enum class Shape : std::uint8_t {
  Modulo,    ///< keep iterations evenly spaced across the range
  Truncate,  ///< keep the first (1-rate) fraction, drop the tail
  Random,    ///< keep a (1-rate) Bernoulli sample (deterministic seed)
};

[[nodiscard]] constexpr const char* to_string(Shape s) noexcept {
  switch (s) {
    case Shape::Modulo: return "modulo";
    case Shape::Truncate: return "truncate";
    case Shape::Random: return "random";
  }
  return "?";
}

/// Counters describing one perforated execution.
struct Stats {
  std::size_t executed = 0;
  std::size_t skipped = 0;

  [[nodiscard]] double executed_fraction() const noexcept {
    const std::size_t total = executed + skipped;
    return total == 0 ? 1.0 : static_cast<double>(executed) / static_cast<double>(total);
  }
};

/// Runs `body(i)` for the surviving iterations of [begin, end) at perforation
/// `rate` in [0,1] (rate == fraction *dropped*).  Returns the counters.
///
// The Modulo shape follows the classic implementation: iteration i runs iff
// floor((i+1)*keep) > floor(i*keep) with keep = 1-rate, which spreads the
// surviving iterations uniformly and keeps exactly round(n*keep) of them.
template <typename Body>
Stats for_each(std::size_t begin, std::size_t end, double rate, Body&& body,
               Shape shape = Shape::Modulo, std::uint64_t seed = 0x9e3779b9) {
  Stats stats;
  if (end <= begin) return stats;
  const double keep = rate <= 0.0 ? 1.0 : (rate >= 1.0 ? 0.0 : 1.0 - rate);
  const std::size_t n = end - begin;

  switch (shape) {
    case Shape::Modulo: {
      for (std::size_t i = 0; i < n; ++i) {
        const auto lo = static_cast<std::size_t>(static_cast<double>(i) * keep);
        const auto hi = static_cast<std::size_t>(static_cast<double>(i + 1) * keep);
        if (hi > lo) {
          body(begin + i);
          ++stats.executed;
        } else {
          ++stats.skipped;
        }
      }
      break;
    }
    case Shape::Truncate: {
      const auto kept = static_cast<std::size_t>(static_cast<double>(n) * keep + 0.5);
      for (std::size_t i = 0; i < n; ++i) {
        if (i < kept) {
          body(begin + i);
          ++stats.executed;
        } else {
          ++stats.skipped;
        }
      }
      break;
    }
    case Shape::Random: {
      support::Xoshiro256 rng(seed);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.uniform() < keep) {
          body(begin + i);
          ++stats.executed;
        } else {
          ++stats.skipped;
        }
      }
      break;
    }
  }
  return stats;
}

}  // namespace sigrt::perforation
