// Loop perforation baseline (Sidiroglou-Douskos et al. [19]).
//
// The paper's evaluation compares the significance-aware runtime against
// "blind" loop perforation: a compiler transformation that skips a fraction
// of a loop's iterations with no notion of which iterations matter.  The
// perforated comparator in Figure 2 "executes the same number of tasks as
// those executed accurately by our approach" (§4.1), i.e. a perforation
// rate of (1 - ratio).
//
// Four perforation shapes are provided.  The first three drop *scattered*
// iterations — Modulo is the canonical compiler transformation; Truncate
// and Random support the perforation ablation bench.  Block is the
// vectorization-preserving redesign: it drops whole aligned stride blocks
// (multiples of the SIMD vector width), so a perforated loop decomposes
// into dense [begin, end) runs that still feed a vector kernel — scattered
// survivors, by contrast, force scalar per-element dispatch and make the
// quality knob fight the hardware's throughput knob.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/rng.hpp"

namespace sigrt::perforation {

/// Which iterations survive a perforated loop.
enum class Shape : std::uint8_t {
  Modulo,    ///< keep iterations evenly spaced across the range
  Truncate,  ///< keep the first (1-rate) fraction, drop the tail
  Random,    ///< keep a (1-rate) Bernoulli sample (deterministic seed)
  Block,     ///< keep/drop whole aligned stride blocks, evenly spaced
};

[[nodiscard]] constexpr const char* to_string(Shape s) noexcept {
  switch (s) {
    case Shape::Modulo: return "modulo";
    case Shape::Truncate: return "truncate";
    case Shape::Random: return "random";
    case Shape::Block: return "block";
  }
  return "?";
}

/// Default Block stride: covers a full AVX2 row of floats/epi16 lanes and
/// two NEON/SSE2 rows; block perforation requires multiples of the vector
/// width so surviving runs stay aligned dense spans.
inline constexpr std::size_t kDefaultBlock = 16;

/// Counters describing one perforated execution.
///
/// For Shape::Block the tail block may be partial: its counters always
/// reflect the *real* iteration count of [begin, end), never a full stride,
/// so executed_fraction() matches the requested rate on non-multiple ranges.
struct Stats {
  std::size_t executed = 0;
  std::size_t skipped = 0;

  [[nodiscard]] double executed_fraction() const noexcept {
    const std::size_t total = executed + skipped;
    return total == 0 ? 1.0 : static_cast<double>(executed) / static_cast<double>(total);
  }
};

namespace detail {

/// Modulo-spread keep rule: index i survives iff floor((i+1)*keep) rises
/// past floor(i*keep) — uniform spacing, exactly round(n*keep) survivors.
[[nodiscard]] inline bool keeps(std::size_t i, double keep) noexcept {
  const auto lo = static_cast<std::size_t>(static_cast<double>(i) * keep);
  const auto hi = static_cast<std::size_t>(static_cast<double>(i + 1) * keep);
  return hi > lo;
}

[[nodiscard]] inline double clamp_keep(double rate) noexcept {
  return rate <= 0.0 ? 1.0 : (rate >= 1.0 ? 0.0 : 1.0 - rate);
}

}  // namespace detail

/// Runs `body(run_begin, run_end)` for every maximal run of surviving
/// iterations of [begin, end) under Block-shape perforation at `rate`
/// (fraction dropped): the range is cut into `block`-sized aligned blocks
/// (the last one possibly partial), whole blocks are kept/dropped by the
/// modulo-spread rule over *block indices*, and adjacent surviving blocks
/// are coalesced into one dense run — which is what keeps a perforated loop
/// vectorizable.  Returns counters in real iterations (partial tail blocks
/// count their true size).
template <typename RunBody>
Stats perforate_blocks(std::size_t begin, std::size_t end, double rate,
                       RunBody&& body, std::size_t block = kDefaultBlock) {
  Stats stats;
  if (end <= begin) return stats;
  if (block == 0) block = 1;
  const double keep = detail::clamp_keep(rate);
  const std::size_t n = end - begin;
  const std::size_t blocks = (n + block - 1) / block;

  std::size_t run_begin = 0;
  bool in_run = false;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t blk_begin = b * block;
    const std::size_t blk_end = blk_begin + block < n ? blk_begin + block : n;
    if (detail::keeps(b, keep)) {
      if (!in_run) {
        run_begin = blk_begin;
        in_run = true;
      }
      stats.executed += blk_end - blk_begin;
    } else {
      if (in_run) {
        body(begin + run_begin, begin + blk_begin);
        in_run = false;
      }
      stats.skipped += blk_end - blk_begin;
    }
  }
  if (in_run) body(begin + run_begin, begin + n);
  return stats;
}

/// Runs `body(i)` for the surviving iterations of [begin, end) at perforation
/// `rate` in [0,1] (rate == fraction *dropped*).  Returns the counters.
///
// The Modulo shape follows the classic implementation: iteration i runs iff
// floor((i+1)*keep) > floor(i*keep) with keep = 1-rate, which spreads the
// surviving iterations uniformly and keeps exactly round(n*keep) of them.
// The Block shape applies that rule to whole `block`-sized stride blocks
// (see perforate_blocks; this per-iteration adapter reports identical
// counters, including real-sized partial tails).
template <typename Body>
Stats for_each(std::size_t begin, std::size_t end, double rate, Body&& body,
               Shape shape = Shape::Modulo, std::uint64_t seed = 0x9e3779b9,
               std::size_t block = kDefaultBlock) {
  Stats stats;
  if (end <= begin) return stats;
  const double keep = detail::clamp_keep(rate);
  const std::size_t n = end - begin;

  switch (shape) {
    case Shape::Modulo: {
      for (std::size_t i = 0; i < n; ++i) {
        if (detail::keeps(i, keep)) {
          body(begin + i);
          ++stats.executed;
        } else {
          ++stats.skipped;
        }
      }
      break;
    }
    case Shape::Truncate: {
      const auto kept = static_cast<std::size_t>(static_cast<double>(n) * keep + 0.5);
      for (std::size_t i = 0; i < n; ++i) {
        if (i < kept) {
          body(begin + i);
          ++stats.executed;
        } else {
          ++stats.skipped;
        }
      }
      break;
    }
    case Shape::Random: {
      support::Xoshiro256 rng(seed);
      for (std::size_t i = 0; i < n; ++i) {
        if (rng.uniform() < keep) {
          body(begin + i);
          ++stats.executed;
        } else {
          ++stats.skipped;
        }
      }
      break;
    }
    case Shape::Block: {
      stats = perforate_blocks(
          begin, end, rate,
          [&](std::size_t run_begin, std::size_t run_end) {
            for (std::size_t i = run_begin; i < run_end; ++i) body(i);
          },
          block);
      break;
    }
  }
  return stats;
}

}  // namespace sigrt::perforation
