// Output-quality metrics from §4.1 of the paper:
//   - PSNR for the image benchmarks (Sobel, DCT); Figure 2 plots PSNR^-1.
//   - Relative error for MC, Kmeans, Jacobi and Fluidanimate.
//
// All metrics compare an approximate output against the output of a fully
// accurate execution of the same program on the same input, exactly as the
// paper evaluates quality.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

#include "support/image.hpp"

namespace sigrt::metrics {

/// Mean squared error between two equally-sized byte sequences.
double mse(std::span<const std::uint8_t> reference,
           std::span<const std::uint8_t> candidate);

/// Mean squared error between two equally-sized double sequences.
double mse(std::span<const double> reference, std::span<const double> candidate);

/// Peak signal-to-noise ratio in dB for 8-bit data (peak = 255).
/// Returns +infinity for identical inputs (MSE == 0).
double psnr_db(std::span<const std::uint8_t> reference,
               std::span<const std::uint8_t> candidate);

/// PSNR over image containers; images must have identical dimensions.
double psnr_db(const support::Image& reference, const support::Image& candidate);

/// Figure 2 plots PSNR^-1 so that "lower is better" holds across all rows.
/// Identical outputs (infinite PSNR) map to 0.
double inverse_psnr(double psnr_value_db);

/// Mean relative error: mean_i |cand_i - ref_i| / max(|ref_i|, floor).
/// `floor` guards against division by (near-)zero reference entries.
double mean_relative_error(std::span<const double> reference,
                           std::span<const double> candidate,
                           double floor = 1e-12);

/// Relative L2 error: ||cand - ref||_2 / ||ref||_2.
double relative_l2_error(std::span<const double> reference,
                         std::span<const double> candidate);

/// Maximum absolute elementwise deviation.
double max_abs_error(std::span<const double> reference,
                     std::span<const double> candidate);

/// Normalized RMSE: RMSE divided by the reference value range; 0 when the
/// reference is constant and the candidate matches it.
double nrmse(std::span<const double> reference, std::span<const double> candidate);

}  // namespace sigrt::metrics
