#include "metrics/quality.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sigrt::metrics {

double mse(std::span<const std::uint8_t> reference,
           std::span<const std::uint8_t> candidate) {
  assert(reference.size() == candidate.size());
  if (reference.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d =
        static_cast<double>(reference[i]) - static_cast<double>(candidate[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(reference.size());
}

double mse(std::span<const double> reference, std::span<const double> candidate) {
  assert(reference.size() == candidate.size());
  if (reference.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = reference[i] - candidate[i];
    acc += d * d;
  }
  return acc / static_cast<double>(reference.size());
}

double psnr_db(std::span<const std::uint8_t> reference,
               std::span<const std::uint8_t> candidate) {
  const double m = mse(reference, candidate);
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / m);
}

double psnr_db(const support::Image& reference, const support::Image& candidate) {
  assert(reference.width() == candidate.width() &&
         reference.height() == candidate.height());
  return psnr_db(std::span<const std::uint8_t>(reference.pixels()),
                 std::span<const std::uint8_t>(candidate.pixels()));
}

double inverse_psnr(double psnr_value_db) {
  if (std::isinf(psnr_value_db)) return 0.0;
  return 1.0 / psnr_value_db;
}

double mean_relative_error(std::span<const double> reference,
                           std::span<const double> candidate, double floor) {
  assert(reference.size() == candidate.size());
  if (reference.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double denom = std::max(std::abs(reference[i]), floor);
    acc += std::abs(candidate[i] - reference[i]) / denom;
  }
  return acc / static_cast<double>(reference.size());
}

double relative_l2_error(std::span<const double> reference,
                         std::span<const double> candidate) {
  assert(reference.size() == candidate.size());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = candidate[i] - reference[i];
    num += d * d;
    den += reference[i] * reference[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::sqrt(num / den);
}

double max_abs_error(std::span<const double> reference,
                     std::span<const double> candidate) {
  assert(reference.size() == candidate.size());
  double mx = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    mx = std::max(mx, std::abs(candidate[i] - reference[i]));
  }
  return mx;
}

double nrmse(std::span<const double> reference, std::span<const double> candidate) {
  assert(reference.size() == candidate.size());
  if (reference.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(reference.begin(), reference.end());
  const double range = *hi - *lo;
  const double rmse = std::sqrt(mse(reference, candidate));
  if (range == 0.0) return rmse == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return rmse / range;
}

}  // namespace sigrt::metrics
