// Network frontend: a nonblocking TCP serve tier in front of serve::Server.
//
//   sigrt::serve::Server srv({.runtime = {.workers = 8}});
//   const auto cls = srv.register_class({...});
//   sigrt::net::NetServer net(srv, {.port = 0, .pollers = 2});
//   net.register_kernel(7, {.fn = sobel_kernel, .significance = 0.7});
//   net.start();
//   ... clients connect to net.port(), frame requests (protocol.hpp) ...
//   srv.close();   // drain admitted work FIRST
//   net.stop();    // THEN tear the frontend down
//
// Architecture (the faabric-style frontend/executor split): a small pool of
// epoll poller threads owns all sockets; the serve tier's dispatchers and
// the runtime's workers never touch a file descriptor, and the pollers
// never execute tasks and never block —
//
//   * reads are level-triggered and drained to EAGAIN into a per-connection
//     FrameReader; each decoded frame is validated and submitted to
//     serve::Server under the tenant/class/deadline the header names, with
//     the response produced by the registered kernel handler on a WORKER
//     thread;
//   * completed responses are pushed onto the connection's lock-free
//     outbound queue from whatever thread completed them (worker on
//     service, dispatcher on perforation/shutdown drop via Job::on_drop);
//     an eventfd hands the connection to its poller, which writes until
//     EAGAIN and falls back to EPOLLOUT for the remainder — the
//     producer-side cost is one queue push + (only when the poller sleeps)
//     one eventfd write;
//   * per-request state lives in pooled NetRequest nodes whose payload and
//     response buffers keep their capacity, so the steady-state framing /
//     dispatch / response path performs no allocation per request.
//
// Connections are reference-counted: the poller holds one reference, every
// in-flight request one more; a connection that dies with requests still in
// flight stays alive (as a closed shell absorbing their responses) until
// the last completion drops its reference.
//
// Shutdown contract: serve::Server::close() first (drains every admitted
// request, so no completion can touch a connection afterwards), then
// NetServer::stop() joins the pollers and frees what remains.  stop() does
// not drain the serve tier and must not be called while requests are in
// flight.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "serve/server.hpp"
#include "support/spinlock.hpp"

namespace sigrt::net {

struct NetServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (read it back with
  /// port()).  Binds 0.0.0.0.
  std::uint16_t port = 0;

  /// Poller threads.  Each owns one epoll instance; connections are
  /// assigned round-robin at accept.  One poller saturates loopback at
  /// this protocol's frame sizes; more shard large connection counts.
  /// 0 = auto: one per last-level-cache group (single-LLC boxes get 1).
  unsigned pollers = 0;

  int listen_backlog = 128;

  /// Per-frame body cap; a length prefix beyond it closes the connection.
  std::uint32_t max_frame_bytes = kMaxFrameBytes;

  /// Per-connection outbound queue cap in bytes.  A client that stops
  /// reading while responses keep completing would otherwise buffer
  /// unboundedly in the server; at the cap the connection is closed
  /// orderly (queued responses reaped, `slow_closed` counted) — the
  /// slow-consumer backpressure of last resort.  0 disables the cap.
  std::size_t max_outq_bytes = 4u << 20;

  /// Idle-connection reaper: a connection with no read/write progress and
  /// no pending output for this long is closed (`idle_closed` counted).
  /// Sweeps ride the poller's 100 ms epoll timeout, so the granularity is
  /// coarse.  0 disables reaping.
  std::uint32_t idle_timeout_ms = 0;

  /// Called at the start of every poller thread ("poller", index).  Wired
  /// to the same hook serve::ServerOptions carries so benchmarks can tag
  /// every non-worker thread for allocation accounting.  Optional.
  std::function<void(const char* role, unsigned index)> thread_start_hook;
};

/// One registered computation.  `fn` runs on a runtime WORKER thread (never
/// a poller): it reads the request payload and appends the response payload
/// to `out` (whose capacity is recycled across requests — append, don't
/// reserve fresh storage, to keep the zero-alloc steady state).
/// `approximate` distinguishes the degraded variant: kernels encode their
/// own quality cliff (fewer iterations, coarser stride, empty result).
struct KernelHandler {
  std::function<void(const std::uint8_t* payload, std::size_t bytes,
                     bool approximate, std::vector<std::uint8_t>& out)>
      fn;
  /// Significance attached to the spawned request task (paper semantics:
  /// 1.0 pins accurate, <= 0 pins approximate).
  double significance = 0.5;
};

class NetServer {
 public:
  /// Does not listen yet — register kernels, then start().
  NetServer(serve::Server& server, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Registers the handler behind a wire kernel id.  Before start() or
  /// concurrently with traffic (slot publication is atomic); re-registering
  /// an id replaces the handler for future requests.  Throws
  /// std::out_of_range for id >= kMaxKernels.
  void register_kernel(std::uint32_t kernel, KernelHandler handler);

  /// Binds, listens and spawns the poller threads.  Throws
  /// std::system_error on socket failures.
  void start();

  /// Bound port (after start()); the ephemeral-port answer for port = 0.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Joins the pollers and frees remaining connections.  Call
  /// serve::Server::close() first — see the shutdown contract above.
  /// Idempotent.
  void stop();

  struct Counters {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t requests = 0;         ///< well-formed frames submitted
    std::uint64_t responses = 0;        ///< response frames fully written
    std::uint64_t protocol_errors = 0;  ///< Bad* responses + framing aborts
    std::uint64_t slow_closed = 0;      ///< closed at the outq byte cap
    std::uint64_t idle_closed = 0;      ///< closed by the idle reaper
  };
  [[nodiscard]] Counters counters() const noexcept;

  static constexpr std::size_t kMaxKernels = 64;

 private:
  struct Conn;
  struct NetRequest;
  struct Poller;

  static void run_body(NetRequest* r, bool approximate);
  void submit_frame(Conn* conn, const std::uint8_t* body, std::size_t bytes);
  void respond_error(Conn* conn, std::uint32_t id, Status status);
  /// Builds and pushes a payload-less response through a FRESH request
  /// shell — the watchdog path, where the original NetRequest's buffers may
  /// still be owned by a running body.  Takes its own connection reference.
  void respond_shell(Conn* conn, std::uint32_t id, Status status);
  void finish(NetRequest* r, Status status);
  void push_response(NetRequest* r);

  [[nodiscard]] NetRequest* acquire_request();
  /// Write-path release: returns the request's outq byte charge, then
  /// unpins.  For requests that were pushed onto a connection's outbound
  /// queue (poller write completion, close-time reaping).
  void release_request(NetRequest* r);
  /// Drops one pin; the node recycles (fields cleared, connection
  /// reference dropped, freelist push) when the last pin goes.  Watchdog
  /// requests carry two pins — the response path and the timeout closure —
  /// so a late `on_timeout` can never touch a recycled node.
  void unpin_request(NetRequest* r);

  void conn_ref(Conn* c) noexcept;
  void conn_unref(Conn* c) noexcept;
  void close_conn(Conn* c) noexcept;
  void reap_outq(Conn* c) noexcept;

  void poller_loop(Poller& p, unsigned index);
  void idle_sweep(Poller& p);
  void drain_ready(Poller& p);
  void handle_accept(Poller& p);
  void handle_readable(Conn* c);
  void handle_writable(Conn* c);
  [[nodiscard]] bool write_some(Conn* c);

  serve::Server& server_;
  NetServerOptions options_;

  std::array<std::atomic<KernelHandler*>, kMaxKernels> kernels_{};
  support::SpinLock kernel_lock_;
  std::vector<std::unique_ptr<KernelHandler>> owned_kernels_
      SIGRT_GUARDED_BY(kernel_lock_);

  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool stopped_ = false;

  /// Each poller owns its own SO_REUSEPORT listener, so a connection's
  /// entire life (accept, reads, writes, close) happens on one poller
  /// thread — the kernel load-balances accepts across them and no epoll
  /// instance is ever touched cross-thread.
  std::vector<std::unique_ptr<Poller>> pollers_;

  support::SpinLock conns_lock_;
  /// Registry holds one reference per connection.
  std::vector<Conn*> conns_ SIGRT_GUARDED_BY(conns_lock_);

  support::SpinLock pool_lock_;
  NetRequest* request_pool_ SIGRT_GUARDED_BY(pool_lock_) = nullptr;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_count_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> slow_closed_{0};
  std::atomic<std::uint64_t> idle_closed_{0};
  std::atomic<std::uint64_t> conn_serial_{0};  ///< fault-stream identity
};

}  // namespace sigrt::net
