// Umbrella header for the network frontend.
#pragma once

#include "net/client.hpp"     // IWYU pragma: export
#include "net/framing.hpp"    // IWYU pragma: export
#include "net/net_server.hpp" // IWYU pragma: export
#include "net/protocol.hpp"   // IWYU pragma: export
