#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <system_error>
#include <thread>

namespace sigrt::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::invalid_argument("net::Client: bad IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close();
    throw std::system_error(err, std::generic_category(), "connect");
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  host_ = host;
  port_ = port;
  if (receive_timeout_ms_ > 0) set_receive_timeout_ms(receive_timeout_ms_);
}

void Client::set_auto_reconnect(bool enabled, unsigned max_attempts,
                                unsigned base_backoff_ms,
                                unsigned max_backoff_ms) {
  auto_reconnect_ = enabled;
  reconnect_max_attempts_ = max_attempts == 0 ? 1 : max_attempts;
  reconnect_base_backoff_ms_ = base_backoff_ms == 0 ? 1 : base_backoff_ms;
  reconnect_max_backoff_ms_ =
      max_backoff_ms < reconnect_base_backoff_ms_ ? reconnect_base_backoff_ms_
                                                  : max_backoff_ms;
}

bool Client::is_disconnect(int err) noexcept {
  return err == ECONNRESET || err == ECONNABORTED || err == EPIPE;
}

void Client::reconnect_with_backoff(const char* what) {
  // The old fd is dead either way; partial inbound frames belong to it.
  unsigned backoff_ms = reconnect_base_backoff_ms_;
  for (unsigned attempt = 1;; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    try {
      connect(host_, port_);  // close()s the dead fd, reapplies options
      reader_.reset();
      ++reconnects_;
      return;
    } catch (const std::system_error&) {
      if (attempt >= reconnect_max_attempts_) {
        close();
        throw;  // the last dial's error, with `what` context lost upstream
      }
    }
    backoff_ms = backoff_ms >= reconnect_max_backoff_ms_ / 2
                     ? reconnect_max_backoff_ms_
                     : backoff_ms * 2;
  }
  (void)what;
}

void Client::flush() {
  std::size_t off = 0;
  while (off < wbuf_.size()) {
    const ssize_t n =
        ::send(fd_, wbuf_.data() + off, wbuf_.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && auto_reconnect_ && is_disconnect(errno)) {
      // The write buffer holds whole frames, so restarting from byte 0 on
      // the fresh connection stays frame-aligned (at-least-once delivery:
      // frames the dead server consumed before the reset go out again).
      reconnect_with_backoff("send");
      off = 0;
      continue;
    }
    throw_errno("send");
  }
  wbuf_.clear();
}

bool Client::read_response(Response& out) {
  for (;;) {
    FrameView f;
    if (reader_.next_frame(f)) {
      if (f.size < kResponseHeaderBytes) {
        throw std::runtime_error("net::Client: short response frame");
      }
      out.header = ResponseHeader::decode(f.data);
      out.payload.assign(f.data + kResponseHeaderBytes, f.data + f.size);
      return true;
    }
    std::uint8_t* tail = reader_.writable_tail(16 * 1024);
    const ssize_t n = ::read(fd_, tail, 16 * 1024);
    if (n > 0) {
      reader_.commit(static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // orderly EOF: a signal, never auto-redialed
    if (errno == EINTR) continue;
    if (auto_reconnect_ && is_disconnect(errno)) {
      // Responses in flight on the dead connection are lost; the caller's
      // correlation-by-id protocol already tolerates missing responses.
      reconnect_with_backoff("read");
      continue;
    }
    throw_errno("read");
  }
}

void Client::set_receive_timeout_ms(int ms) {
  receive_timeout_ms_ = ms;
  if (fd_ < 0) return;  // remembered; applied by the next connect()
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sigrt::net
