#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>

namespace sigrt::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::invalid_argument("net::Client: bad IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    close();
    throw std::system_error(err, std::generic_category(), "connect");
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::flush() {
  std::size_t off = 0;
  while (off < wbuf_.size()) {
    const ssize_t n =
        ::send(fd_, wbuf_.data() + off, wbuf_.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throw_errno("send");
  }
  wbuf_.clear();
}

bool Client::read_response(Response& out) {
  for (;;) {
    FrameView f;
    if (reader_.next_frame(f)) {
      if (f.size < kResponseHeaderBytes) {
        throw std::runtime_error("net::Client: short response frame");
      }
      out.header = ResponseHeader::decode(f.data);
      out.payload.assign(f.data + kResponseHeaderBytes, f.data + f.size);
      return true;
    }
    std::uint8_t* tail = reader_.writable_tail(16 * 1024);
    const ssize_t n = ::read(fd_, tail, 16 * 1024);
    if (n > 0) {
      reader_.commit(static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return false;  // orderly EOF
    if (errno == EINTR) continue;
    throw_errno("read");
  }
}

void Client::set_receive_timeout_ms(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    throw_errno("setsockopt(SO_RCVTIMEO)");
  }
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace sigrt::net
