// Minimal blocking TCP client for the net frontend's wire protocol —
// the counterpart loadgen clients and tests speak to NetServer with.
//
// Writes are buffered: enqueue() appends framed requests to a local buffer
// and flush() pushes the whole batch in one (or few) write(2) calls, so an
// open-loop generator can pipeline hundreds of requests per syscall.
// Reads are blocking and frame-at-a-time; responses may arrive out of
// request order (EDF reorders) — correlate by RequestHeader::id.
//
// Not thread-safe: one Client per thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "net/protocol.hpp"

namespace sigrt::net {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (blocking) to host:port.  Throws std::system_error.
  void connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Appends one framed request to the write buffer (no I/O).
  void enqueue(const RequestHeader& header, const void* payload,
               std::size_t payload_bytes) {
    append_frame(wbuf_, header, kRequestHeaderBytes, payload, payload_bytes);
  }

  /// Blocking write of everything enqueued.  Throws std::system_error on a
  /// broken connection.
  void flush();

  struct Response {
    ResponseHeader header;
    std::vector<std::uint8_t> payload;  ///< capacity reused across reads
  };

  /// Blocking read of the next response frame.  Returns false on orderly
  /// EOF; throws std::system_error on error, std::runtime_error on a
  /// malformed frame.  With a receive timeout set, an idle socket raises
  /// std::system_error(EAGAIN) — partial-frame state is preserved, so the
  /// caller can check its exit condition and call again.
  [[nodiscard]] bool read_response(Response& out);

  /// SO_RCVTIMEO for read_response: lets a reader loop wake up and check
  /// an exit flag instead of blocking forever on a quiet connection.
  void set_receive_timeout_ms(int ms);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> wbuf_;
  FrameReader reader_;
};

}  // namespace sigrt::net
