// Minimal blocking TCP client for the net frontend's wire protocol —
// the counterpart loadgen clients and tests speak to NetServer with.
//
// Writes are buffered: enqueue() appends framed requests to a local buffer
// and flush() pushes the whole batch in one (or few) write(2) calls, so an
// open-loop generator can pipeline hundreds of requests per syscall.
// Reads are blocking and frame-at-a-time; responses may arrive out of
// request order (EDF reorders) — correlate by RequestHeader::id.
//
// Not thread-safe: one Client per thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "net/protocol.hpp"

namespace sigrt::net {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (blocking) to host:port.  Throws std::system_error.
  void connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Appends one framed request to the write buffer (no I/O).
  void enqueue(const RequestHeader& header, const void* payload,
               std::size_t payload_bytes) {
    append_frame(wbuf_, header, kRequestHeaderBytes, payload, payload_bytes);
  }

  /// Blocking write of everything enqueued.  Throws std::system_error on a
  /// broken connection.
  void flush();

  struct Response {
    ResponseHeader header;
    std::vector<std::uint8_t> payload;  ///< capacity reused across reads
  };

  /// Blocking read of the next response frame.  Returns false on orderly
  /// EOF; throws std::system_error on error, std::runtime_error on a
  /// malformed frame.  With a receive timeout set, an idle socket raises
  /// std::system_error(EAGAIN) — partial-frame state is preserved, so the
  /// caller can check its exit condition and call again.
  [[nodiscard]] bool read_response(Response& out);

  /// SO_RCVTIMEO for read_response: lets a reader loop wake up and check
  /// an exit flag instead of blocking forever on a quiet connection.
  void set_receive_timeout_ms(int ms);

  /// Auto-reconnect on a broken connection (ECONNRESET / ECONNABORTED /
  /// EPIPE): flush() and read_response() transparently redial the
  /// remembered endpoint with capped exponential backoff (base_backoff_ms
  /// doubling up to max_backoff_ms, at most max_attempts dials) instead of
  /// throwing.  Orderly EOF still returns false from read_response() — a
  /// deliberate server close is a signal, not a fault.  Delivery semantics become
  /// at-least-once: the write buffer holds whole frames, so flush()
  /// retransmits it from the first byte after redialing — frames the dead
  /// server had already consumed may be served twice — and responses in
  /// flight when the connection died are lost (correlate by request id).
  /// Exhausting max_attempts rethrows the last connect error.
  void set_auto_reconnect(bool enabled, unsigned max_attempts = 8,
                          unsigned base_backoff_ms = 1,
                          unsigned max_backoff_ms = 200);

  /// Successful redials performed by the auto-reconnect path.
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }

  void close() noexcept;

 private:
  /// True when `err` is a broken-connection errno the reconnect policy
  /// covers.
  [[nodiscard]] static bool is_disconnect(int err) noexcept;
  /// Redials host_:port_ with capped exponential backoff; reapplies socket
  /// options and drops any partial inbound frame.  Throws the last connect
  /// error when max_attempts is exhausted.
  void reconnect_with_backoff(const char* what);

  int fd_ = -1;
  std::vector<std::uint8_t> wbuf_;
  FrameReader reader_;

  // Remembered endpoint + options for redialing.
  std::string host_;
  std::uint16_t port_ = 0;
  int receive_timeout_ms_ = 0;

  bool auto_reconnect_ = false;
  unsigned reconnect_max_attempts_ = 8;
  unsigned reconnect_base_backoff_ms_ = 1;
  unsigned reconnect_max_backoff_ms_ = 200;
  std::uint64_t reconnects_ = 0;
};

}  // namespace sigrt::net
