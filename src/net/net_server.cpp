#include "net/net_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "core/topology.hpp"
#include "fault/fault.hpp"
#include "net/framing.hpp"
#include "support/timer.hpp"

namespace sigrt::net {

namespace {

// epoll_event.data tags for the poller's two non-connection fds.  Real
// Conn* values are heap pointers, never 1 or 2.
constexpr std::uint64_t kWakeTag = 1;
constexpr std::uint64_t kListenTag = 2;

constexpr std::size_t kReadChunk = 16 * 1024;

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

/// One accepted connection.  All plain fields (fd, reader, wr_*, want_out)
/// are owned by the connection's poller thread; producers (workers,
/// dispatchers) touch only the atomics: outq / out_armed / closed / refs.
struct NetServer::Conn {
  explicit Conn(std::uint32_t max_frame) : reader(max_frame) {}

  int fd = -1;
  Poller* poller = nullptr;
  FrameReader reader;

  /// Outbound MPSC (Treiber through NetRequest::next): any thread pushes a
  /// finished response; the poller consumes.  seq_cst on push/exchange and
  /// on out_armed pairs with handle_writable's release-recheck so a push
  /// racing the poller's disarm is never stranded.
  std::atomic<NetRequest*> outq{nullptr};
  NetRequest* wr_fifo = nullptr;  ///< poller-local: decoded FIFO of outq
  NetRequest* wr_cur = nullptr;   ///< poller-local: response being written
  std::atomic<bool> out_armed{false};
  bool want_out = false;  ///< EPOLLOUT currently in the epoll mask

  std::atomic<bool> closed{false};
  std::atomic<int> refs{0};
  Conn* ready_next = nullptr;  ///< ready-list link (poller MPSC)

  /// Bytes queued in outq + wr_fifo + wr_cur and not yet written.  Producers
  /// add BEFORE publishing into outq (so the flusher's decrement can never
  /// pass the increment); release_request subtracts.  At
  /// NetServerOptions::max_outq_bytes the pusher flags slow_kill and the
  /// owning poller closes the connection (slow-consumer backpressure).
  std::atomic<std::size_t> outq_bytes{0};
  std::atomic<bool> slow_kill{false};

  std::uint64_t serial = 0;  ///< accept-order identity: fault-stream key
  std::uint64_t tx_ops = 0;  ///< poller-local send() counter (fault attempt)
  std::atomic<std::int64_t> last_activity_ns{0};  ///< idle-reaper clock
};

/// Pooled per-request state: request payload in, framed response out.  The
/// two vectors keep their high-water capacity across reuses, so the
/// steady-state request path allocates nothing here.
struct NetServer::NetRequest {
  NetServer* srv = nullptr;
  Conn* conn = nullptr;
  const KernelHandler* handler = nullptr;
  std::uint32_t id = 0;
  std::int64_t accepted_ns = 0;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> out;  ///< full response frame (len + hdr + body)
  std::size_t out_off = 0;
  NetRequest* next = nullptr;  ///< outq chain or pool freelist, never both

  /// Single-responder token: finish() claims it before building/pushing the
  /// response; the serve watchdog's on_timeout claims it before answering
  /// through a fresh shell.  The loser discards — exactly one response per
  /// request id ever reaches the wire, and a stuck body can never scribble
  /// into a buffer the watchdog already framed.
  std::atomic<bool> claimed{false};
  /// Node references (see unpin_request): 1 for the response path, +1 when
  /// a watchdog timeout closure also holds the node.
  std::atomic<int> pins{1};
  std::size_t frame_bytes = 0;  ///< outq_bytes share while queued
  bool in_outq = false;         ///< whether frame_bytes was charged
};

struct NetServer::Poller {
  int epfd = -1;
  int evfd = -1;
  int listen_fd = -1;
  std::atomic<Conn*> ready{nullptr};  ///< conns with newly armed output
  std::int64_t last_idle_sweep_ns = 0;  ///< poller-local reaper throttle
  std::thread thread;
};

NetServer::NetServer(serve::Server& server, NetServerOptions options)
    : server_(server), options_(std::move(options)) {
  for (auto& k : kernels_) k.store(nullptr, std::memory_order_relaxed);
  if (options_.pollers == 0) {
    // Auto: one poller per LLC group — single-LLC boxes keep the cheap
    // one-epoll configuration, multi-CCX/socket machines shard I/O.
    options_.pollers = topo::system_topology().recommended_pollers();
  }
}

NetServer::~NetServer() { stop(); }

void NetServer::register_kernel(std::uint32_t kernel, KernelHandler handler) {
  if (kernel >= kMaxKernels) {
    throw std::out_of_range("net::NetServer: kernel id out of range");
  }
  auto owned = std::make_unique<KernelHandler>(std::move(handler));
  KernelHandler* ptr = owned.get();
  {
    support::SpinLockGuard lock(kernel_lock_);
    owned_kernels_.push_back(std::move(owned));
  }
  kernels_[kernel].store(ptr, std::memory_order_release);
}

void NetServer::start() {
  if (started_) throw std::logic_error("net::NetServer: already started");
  if (server_.runtime().config().workers == 0) {
    // Inline runtimes execute spawn() on the calling thread — here, the
    // poller, violating the pollers-never-execute contract.
    throw std::logic_error("net::NetServer: serve::Server needs workers >= 1");
  }

  pollers_.reserve(options_.pollers);
  try {
    for (unsigned i = 0; i < options_.pollers; ++i) {
      auto p = std::make_unique<Poller>();

      // One SO_REUSEPORT listener per poller: the kernel spreads incoming
      // connections across them, and each connection then lives entirely
      // on the poller that accepted it.
      p->listen_fd =
          ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
      if (p->listen_fd < 0) throw_errno("socket");
      int one = 1;
      ::setsockopt(p->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      if (::setsockopt(p->listen_fd, SOL_SOCKET, SO_REUSEPORT, &one,
                       sizeof one) != 0) {
        throw_errno("setsockopt(SO_REUSEPORT)");
      }
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_ANY);
      // First listener may bind port 0 (ephemeral); the rest must join the
      // port the kernel picked.
      addr.sin_port = htons(i == 0 ? options_.port : port_);
      if (::bind(p->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                 sizeof addr) != 0) {
        throw_errno("bind");
      }
      if (::listen(p->listen_fd, options_.listen_backlog) != 0) {
        throw_errno("listen");
      }
      if (i == 0) {
        socklen_t len = sizeof addr;
        if (::getsockname(p->listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &len) != 0) {
          throw_errno("getsockname");
        }
        port_ = ntohs(addr.sin_port);
      }

      p->epfd = ::epoll_create1(EPOLL_CLOEXEC);
      if (p->epfd < 0) throw_errno("epoll_create1");
      p->evfd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (p->evfd < 0) throw_errno("eventfd");

      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kWakeTag;
      if (::epoll_ctl(p->epfd, EPOLL_CTL_ADD, p->evfd, &ev) != 0) {
        throw_errno("epoll_ctl(eventfd)");
      }
      ev.data.u64 = kListenTag;
      if (::epoll_ctl(p->epfd, EPOLL_CTL_ADD, p->listen_fd, &ev) != 0) {
        throw_errno("epoll_ctl(listener)");
      }
      pollers_.push_back(std::move(p));
    }
    for (unsigned i = 0; i < options_.pollers; ++i) {
      Poller& p = *pollers_[i];
      p.thread = std::thread([this, &p, i] { poller_loop(p, i); });
    }
  } catch (...) {
    stopping_.store(true, std::memory_order_release);
    for (auto& p : pollers_) {
      if (p->thread.joinable()) {
        const std::uint64_t tick = 1;
        [[maybe_unused]] const auto n = ::write(p->evfd, &tick, sizeof tick);
        p->thread.join();
      }
      if (p->evfd >= 0) ::close(p->evfd);
      if (p->epfd >= 0) ::close(p->epfd);
      if (p->listen_fd >= 0) ::close(p->listen_fd);
    }
    pollers_.clear();
    stopping_.store(false, std::memory_order_release);
    throw;
  }
  started_ = true;
}

void NetServer::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  for (auto& p : pollers_) {
    const std::uint64_t tick = 1;
    [[maybe_unused]] const auto n = ::write(p->evfd, &tick, sizeof tick);
  }
  for (auto& p : pollers_) {
    if (p->thread.joinable()) p->thread.join();
  }

  // Single-threaded from here.  The serve tier is closed per the shutdown
  // contract, so no completion will touch a connection again; close and
  // release whatever survived the pollers.
  std::vector<Conn*> rest;
  {
    support::SpinLockGuard lock(conns_lock_);
    rest.swap(conns_);
  }
  for (Conn* c : rest) {
    close_conn(c);
    conn_unref(c);  // the registry reference close_conn could not find
  }
  for (auto& p : pollers_) {
    ::close(p->evfd);
    ::close(p->epfd);
    ::close(p->listen_fd);
  }

  // Every request has been finished or reaped above, so the pool freelist
  // now owns all surviving nodes; free them (the freelist is only ever
  // trimmed here — steady state recycles without deleting).
  NetRequest* r = request_pool_;
  request_pool_ = nullptr;
  while (r != nullptr) {
    NetRequest* next = r->next;
    delete r;
    r = next;
  }
}

NetServer::Counters NetServer::counters() const noexcept {
  Counters c;
  c.accepted = accepted_.load(std::memory_order_relaxed);
  c.closed = closed_count_.load(std::memory_order_relaxed);
  c.requests = requests_.load(std::memory_order_relaxed);
  c.responses = responses_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.slow_closed = slow_closed_.load(std::memory_order_relaxed);
  c.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  return c;
}

// ---------------------------------------------------------------------------
// Request pool / connection refcounts

NetServer::NetRequest* NetServer::acquire_request() {
  {
    support::SpinLockGuard lock(pool_lock_);
    if (NetRequest* r = request_pool_) {
      request_pool_ = r->next;
      r->next = nullptr;
      return r;
    }
  }
  return new NetRequest;
}

void NetServer::release_request(NetRequest* r) {
  if (r->in_outq && r->conn != nullptr) {
    r->conn->outq_bytes.fetch_sub(r->frame_bytes, std::memory_order_relaxed);
  }
  r->in_outq = false;
  r->frame_bytes = 0;
  unpin_request(r);
}

void NetServer::unpin_request(NetRequest* r) {
  // Fields stay intact until the LAST pin drops: a watchdog closure losing
  // the claim race still reads conn/id from a live node.
  if (r->pins.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  Conn* c = r->conn;
  r->claimed.store(false, std::memory_order_relaxed);
  r->conn = nullptr;
  r->handler = nullptr;
  r->payload.clear();
  r->out.clear();
  r->out_off = 0;
  {
    support::SpinLockGuard lock(pool_lock_);
    r->next = request_pool_;
    request_pool_ = r;
  }
  if (c != nullptr) conn_unref(c);
}

void NetServer::conn_ref(Conn* c) noexcept {
  c->refs.fetch_add(1, std::memory_order_relaxed);
}

void NetServer::conn_unref(Conn* c) noexcept {
  if (c->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete c;
}

void NetServer::reap_outq(Conn* c) noexcept {
  NetRequest* chain = c->outq.exchange(nullptr, std::memory_order_seq_cst);
  while (chain != nullptr) {
    NetRequest* next = chain->next;
    release_request(chain);
    chain = next;
  }
}

void NetServer::close_conn(Conn* c) noexcept {
  if (c->closed.exchange(true, std::memory_order_seq_cst)) return;
  closed_count_.fetch_add(1, std::memory_order_relaxed);
  if (c->fd >= 0) {
    if (c->poller != nullptr && c->poller->epfd >= 0) {
      ::epoll_ctl(c->poller->epfd, EPOLL_CTL_DEL, c->fd, nullptr);
    }
    ::close(c->fd);
    c->fd = -1;
  }
  if (c->wr_cur != nullptr) {
    release_request(c->wr_cur);
    c->wr_cur = nullptr;
  }
  while (c->wr_fifo != nullptr) {
    NetRequest* next = c->wr_fifo->next;
    release_request(c->wr_fifo);
    c->wr_fifo = next;
  }
  reap_outq(c);
  bool in_registry = false;
  {
    support::SpinLockGuard lock(conns_lock_);
    for (auto it = conns_.begin(); it != conns_.end(); ++it) {
      if (*it == c) {
        conns_.erase(it);
        in_registry = true;
        break;
      }
    }
  }
  if (in_registry) conn_unref(c);  // registry reference
  conn_unref(c);                   // poller/epoll reference
}

// ---------------------------------------------------------------------------
// Poller side

void NetServer::poller_loop(Poller& p, unsigned index) {
  if (options_.thread_start_hook) options_.thread_start_hook("poller", index);
  epoll_event evs[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    // 100 ms timeout backstop: shutdown and wakes normally arrive via the
    // eventfd, so the timeout only bounds how long a lost edge could stall.
    const int n = ::epoll_wait(p.epfd, evs, 64, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& e = evs[i];
      if (e.data.u64 == kWakeTag) {
        std::uint64_t drained;
        while (::read(p.evfd, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      if (e.data.u64 == kListenTag) {
        handle_accept(p);
        continue;
      }
      Conn* c = static_cast<Conn*>(e.data.ptr);
      conn_ref(c);  // pin across handling: close_conn may drop its refs
      if ((e.events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(c);
      } else {
        if ((e.events & EPOLLIN) != 0) handle_readable(c);
        if ((e.events & EPOLLOUT) != 0 &&
            !c->closed.load(std::memory_order_acquire)) {
          handle_writable(c);
        }
      }
      conn_unref(c);
    }
    drain_ready(p);
    if (options_.idle_timeout_ms > 0) idle_sweep(p);
  }
  // Final sweep: flush responses that landed between the stop flag and the
  // last wake, best-effort.
  drain_ready(p);
}

void NetServer::idle_sweep(Poller& p) {
  // Rides the epoll loop: at most one scan per half-timeout, so an idle
  // server does two cheap registry walks per timeout period and a busy one
  // adds no per-event work.
  const std::int64_t now = support::now_ns();
  const std::int64_t budget =
      static_cast<std::int64_t>(options_.idle_timeout_ms) * 1'000'000;
  const std::int64_t stride = std::max<std::int64_t>(budget / 2, 1'000'000);
  if (now - p.last_idle_sweep_ns < stride) return;
  p.last_idle_sweep_ns = now;

  // Collect under the lock, close outside it: close_conn retakes
  // conns_lock_ to deregister.  Only this poller's connections — close
  // touches epoll state and the poller-local write fields.
  std::vector<Conn*> victims;
  {
    support::SpinLockGuard lock(conns_lock_);
    for (Conn* c : conns_) {
      if (c->poller != &p) continue;
      if (c->closed.load(std::memory_order_acquire)) continue;
      if (now - c->last_activity_ns.load(std::memory_order_relaxed) < budget) {
        continue;
      }
      // Not idle if anything is queued outbound or requests still pin the
      // connection (refs: epoll + registry = 2 at rest) — their completions
      // count as activity.
      if (c->outq.load(std::memory_order_acquire) != nullptr ||
          c->wr_cur != nullptr || c->wr_fifo != nullptr) {
        continue;
      }
      if (c->refs.load(std::memory_order_acquire) > 2) continue;
      conn_ref(c);
      victims.push_back(c);
    }
  }
  for (Conn* c : victims) {
    if (!c->closed.load(std::memory_order_acquire)) {
      idle_closed_.fetch_add(1, std::memory_order_relaxed);
      close_conn(c);
    }
    conn_unref(c);
  }
}

void NetServer::drain_ready(Poller& p) {
  Conn* chain = p.ready.exchange(nullptr, std::memory_order_seq_cst);
  while (chain != nullptr) {
    Conn* next = chain->ready_next;
    if (chain->closed.load(std::memory_order_acquire)) {
      reap_outq(chain);
    } else {
      handle_writable(chain);
    }
    conn_unref(chain);  // ready-list reference
    chain = next;
  }
}

void NetServer::handle_accept(Poller& p) {
  for (;;) {
    const int fd =
        ::accept4(p.listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or transient (EMFILE/ECONNABORTED): drop
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto* c = new Conn(options_.max_frame_bytes);
    c->fd = fd;
    c->poller = &p;
    c->serial = conn_serial_.fetch_add(1, std::memory_order_relaxed) + 1;
    c->last_activity_ns.store(support::now_ns(), std::memory_order_relaxed);
    c->refs.store(2, std::memory_order_relaxed);  // epoll + registry
    {
      support::SpinLockGuard lock(conns_lock_);
      conns_.push_back(c);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = c;
    if (::epoll_ctl(p.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close_conn(c);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetServer::handle_readable(Conn* c) {
  if (c->closed.load(std::memory_order_acquire)) return;
  for (;;) {
    std::uint8_t* tail = c->reader.writable_tail(kReadChunk);
    const ssize_t n = ::read(c->fd, tail, kReadChunk);
    if (n > 0) {
      c->last_activity_ns.store(support::now_ns(), std::memory_order_relaxed);
      c->reader.commit(static_cast<std::size_t>(n));
      FrameView f;
      try {
        while (c->reader.next_frame(f)) submit_frame(c, f.data, f.size);
      } catch (const std::length_error&) {
        // Oversized length prefix: the stream is unrecoverable (we cannot
        // find the next frame boundary) — close.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        close_conn(c);
        return;
      }
      if (c->closed.load(std::memory_order_acquire)) return;
      if (static_cast<std::size_t>(n) < kReadChunk) return;  // drained
      continue;
    }
    if (n == 0) {
      close_conn(c);  // orderly EOF
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(c);
    return;
  }
}

/// Writes until the outbound state is empty (true) or the socket blocks
/// (false).  On a socket error the connection is closed and true returned —
/// there is nothing left to write.
bool NetServer::write_some(Conn* c) {
  for (;;) {
    if (c->wr_cur == nullptr) {
      if (c->wr_fifo == nullptr) {
        // Take the whole producer chain and reverse it to completion order.
        NetRequest* chain =
            c->outq.exchange(nullptr, std::memory_order_seq_cst);
        NetRequest* fifo = nullptr;
        while (chain != nullptr) {
          NetRequest* next = chain->next;
          chain->next = fifo;
          fifo = chain;
          chain = next;
        }
        c->wr_fifo = fifo;
      }
      if (c->wr_fifo == nullptr) return true;
      c->wr_cur = c->wr_fifo;
      c->wr_fifo = c->wr_fifo->next;
      c->wr_cur->next = nullptr;
    }
    NetRequest* r = c->wr_cur;
    while (r->out_off < r->out.size()) {
      std::size_t want = r->out.size() - r->out_off;
      if (fault::armed()) {
        // Connection-level chaos, keyed by accept order + send() ordinal so
        // a fixed plan replays the same storm against the same connection
        // shape.  ConnReset cuts the wire with a real RST (SO_LINGER 0);
        // ConnShortWrite truncates one send to a single byte, exercising
        // the partial-write resume path.
        if (fault::should_fire(fault::Site::ConnReset, c->serial,
                               c->tx_ops++)) {
          struct linger lg {
            1, 0
          };
          ::setsockopt(c->fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
          close_conn(c);
          return true;
        }
        if (fault::should_fire(fault::Site::ConnShortWrite, c->serial,
                               c->tx_ops++)) {
          want = 1;
        }
      }
      const ssize_t n =
          ::send(c->fd, r->out.data() + r->out_off, want, MSG_NOSIGNAL);
      if (n > 0) {
        c->last_activity_ns.store(support::now_ns(),
                                  std::memory_order_relaxed);
        r->out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
      if (n < 0 && errno == EINTR) continue;
      close_conn(c);  // EPIPE/ECONNRESET: peer is gone, responses reaped
      return true;
    }
    responses_.fetch_add(1, std::memory_order_relaxed);
    c->wr_cur = nullptr;
    release_request(r);
  }
}

void NetServer::handle_writable(Conn* c) {
  // Invariant: this poller owns the flush while out_armed is true.  The
  // disarm-recheck-rearm tail closes the race with a producer that pushed
  // after our final outq drain but read out_armed == true (and therefore
  // did not notify): either we see its push on the recheck, or its
  // exchange(true) happens after our disarm and IT notifies.  All four
  // operations are seq_cst so the argument holds in the SC total order.
  for (;;) {
    if (c->slow_kill.load(std::memory_order_acquire)) {
      // The outq byte cap tripped: the peer is not reading fast enough for
      // the responses it asked for.  Close orderly — queued responses are
      // reaped, in-flight ones land on the closed shell.
      slow_closed_.fetch_add(1, std::memory_order_relaxed);
      close_conn(c);
      return;
    }
    const bool drained = write_some(c);
    if (c->closed.load(std::memory_order_acquire)) return;
    if (!drained) {
      if (!c->want_out) {
        c->want_out = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.ptr = c;
        ::epoll_ctl(c->poller->epfd, EPOLL_CTL_MOD, c->fd, &ev);
      }
      return;  // keep ownership; EPOLLOUT resumes the flush
    }
    if (c->want_out) {
      c->want_out = false;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = c;
      ::epoll_ctl(c->poller->epfd, EPOLL_CTL_MOD, c->fd, &ev);
    }
    c->out_armed.store(false, std::memory_order_seq_cst);
    if (c->outq.load(std::memory_order_seq_cst) == nullptr) return;
    if (c->out_armed.exchange(true, std::memory_order_seq_cst)) return;
  }
}

// ---------------------------------------------------------------------------
// Request path (poller decodes; workers execute; any thread completes)

void NetServer::submit_frame(Conn* conn, const std::uint8_t* body,
                             std::size_t bytes) {
  if (bytes < kRequestHeaderBytes) {
    respond_error(conn, bytes >= 4 ? get_u32(body) : 0, Status::BadFrame);
    return;
  }
  const RequestHeader h = RequestHeader::decode(body);
  if (h.reserved != 0) {
    respond_error(conn, h.id, Status::BadFrame);
    return;
  }
  if (h.cls >= server_.class_count()) {
    respond_error(conn, h.id, Status::BadClass);
    return;
  }
  if (h.tenant >= server_.tenant_count()) {
    respond_error(conn, h.id, Status::BadTenant);
    return;
  }
  const KernelHandler* handler =
      h.kernel < kMaxKernels ? kernels_[h.kernel].load(std::memory_order_acquire)
                             : nullptr;
  if (handler == nullptr || !handler->fn) {
    respond_error(conn, h.id, Status::BadKernel);
    return;
  }

  NetRequest* r = acquire_request();
  r->srv = this;
  r->conn = conn;
  r->handler = handler;
  r->id = h.id;
  r->accepted_ns = support::now_ns();
  r->claimed.store(false, std::memory_order_relaxed);
  r->payload.assign(body + kRequestHeaderBytes, body + bytes);
  conn_ref(conn);  // the in-flight request pins the connection
  requests_.fetch_add(1, std::memory_order_relaxed);

  const std::int64_t watchdog_ns = server_.class_watchdog_ns(h.cls);
  r->pins.store(watchdog_ns > 0 ? 2 : 1, std::memory_order_relaxed);

  // Single-pointer captures stay inside std::function's small-buffer
  // storage (16 B in libstdc++/libc++), so building the Job allocates
  // nothing.
  serve::Job job;
  job.accurate = [r] { run_body(r, /*approximate=*/false); };
  job.approximate = [r] { run_body(r, /*approximate=*/true); };
  job.on_drop = [r] { r->srv->finish(r, Status::Shed); };
  job.on_expire = [r] { r->srv->finish(r, Status::Expired); };
  job.significance = handler->significance;
  job.deadline_ns = h.deadline_ns;
  if (watchdog_ns > 0) {
    // The timeout closure races the running body for the node, so it holds
    // the second pin, dropped when the serve tier destroys the Job.  The
    // shared_ptr guard is the one allocation watchdog classes pay per
    // request; non-watchdog classes keep the zero-alloc steady state.
    struct Unpin {
      NetServer* srv;
      NetRequest* req;
      ~Unpin() { srv->unpin_request(req); }
    };
    auto guard = std::shared_ptr<Unpin>(new Unpin{this, r});
    job.on_timeout = [r, guard] {
      // Claim before touching anything: if the body already responded, the
      // timeout is a no-op; if we win, the body's late result is discarded
      // and the client gets a Timeout frame through a fresh shell (the
      // body may still be scribbling into r->out).
      if (!r->claimed.exchange(true, std::memory_order_acq_rel)) {
        r->srv->respond_shell(r->conn, r->id, Status::Timeout);
      }
    };
  }

  const serve::Admission verdict =
      server_.submit(h.cls, h.tenant, std::move(job));
  if (verdict == serve::Admission::Shed) finish(r, Status::Shed);
}

void NetServer::respond_error(Conn* conn, std::uint32_t id, Status status) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  NetRequest* r = acquire_request();
  r->srv = this;
  r->conn = conn;
  r->handler = nullptr;
  r->id = id;
  r->accepted_ns = support::now_ns();
  r->claimed.store(false, std::memory_order_relaxed);
  r->pins.store(1, std::memory_order_relaxed);
  conn_ref(conn);
  finish(r, status);
}

void NetServer::run_body(NetRequest* r, bool approximate) {
  // Worker thread.  Reserve the frame prefix, let the kernel append its
  // payload, then finish() patches length and header in place.
  r->out.clear();
  r->out.resize(kLenPrefixBytes + kResponseHeaderBytes);
  r->handler->fn(r->payload.data(), r->payload.size(), approximate, r->out);
  r->srv->finish(r, approximate ? Status::OkApprox : Status::Ok);
}

void NetServer::respond_shell(Conn* conn, std::uint32_t id, Status status) {
  NetRequest* r = acquire_request();
  r->srv = this;
  r->conn = conn;
  r->handler = nullptr;
  r->id = id;
  r->accepted_ns = support::now_ns();
  r->claimed.store(true, std::memory_order_relaxed);  // born claimed
  r->pins.store(1, std::memory_order_relaxed);
  conn_ref(conn);
  ResponseHeader h;
  h.id = id;
  h.status = status;
  h.server_ns = 0;
  r->out.clear();
  r->out.resize(kLenPrefixBytes + kResponseHeaderBytes);
  put_u32(r->out.data(),
          static_cast<std::uint32_t>(r->out.size() - kLenPrefixBytes));
  h.encode(r->out.data() + kLenPrefixBytes);
  r->out_off = 0;
  push_response(r);
}

void NetServer::finish(NetRequest* r, Status status) {
  // Single-responder: if the serve watchdog already answered this request
  // through a shell, the late body result is discarded — never two frames
  // for one id, and never a push racing the watchdog's.
  if (r->claimed.exchange(true, std::memory_order_acq_rel)) {
    release_request(r);
    return;
  }
  if (status != Status::Ok && status != Status::OkApprox) {
    // Error/shed responses carry no payload.
    r->out.clear();
    r->out.resize(kLenPrefixBytes + kResponseHeaderBytes);
  }
  ResponseHeader h;
  h.id = r->id;
  h.status = status;
  h.server_ns = support::now_ns() - r->accepted_ns;
  put_u32(r->out.data(),
          static_cast<std::uint32_t>(r->out.size() - kLenPrefixBytes));
  h.encode(r->out.data() + kLenPrefixBytes);
  r->out_off = 0;
  push_response(r);
}

void NetServer::push_response(NetRequest* r) {
  Conn* c = r->conn;
  // Publishing r into the outq hands r's connection reference to whichever
  // thread flushes it — which can happen (and release the last reference)
  // the instant the CAS lands.  Pin c for the rest of this function; the
  // final unref's acq_rel also orders every access below before a
  // concurrent deleter.
  conn_ref(c);
  // Charge the byte cap BEFORE publishing: the flusher can only release a
  // request it popped after the push, so the decrement can never pass this
  // increment and the counter never underflows.
  r->frame_bytes = r->out.size();
  r->in_outq = true;
  const std::size_t queued =
      c->outq_bytes.fetch_add(r->frame_bytes, std::memory_order_relaxed) +
      r->frame_bytes;
  if (options_.max_outq_bytes != 0 && queued > options_.max_outq_bytes) {
    // Slow-consumer backpressure: flag the connection for closure.  The
    // owning poller acts on it in handle_writable; the arm below (or the
    // already-armed flush in progress) guarantees it gets there.
    c->slow_kill.store(true, std::memory_order_release);
  }
  // Publish first (Treiber push), then decide who flushes.  seq_cst: see
  // handle_writable.
  NetRequest* head = c->outq.load(std::memory_order_relaxed);
  do {
    r->next = head;
  } while (!c->outq.compare_exchange_weak(head, r, std::memory_order_seq_cst,
                                          std::memory_order_relaxed));
  if (!c->closed.load(std::memory_order_seq_cst)) {
    if (!c->out_armed.exchange(true, std::memory_order_seq_cst)) {
      // We armed the flush: hand the connection to its poller.
      conn_ref(c);  // ready-list reference
      Poller& p = *c->poller;
      Conn* rh = p.ready.load(std::memory_order_relaxed);
      do {
        c->ready_next = rh;
      } while (!p.ready.compare_exchange_weak(rh, c, std::memory_order_seq_cst,
                                              std::memory_order_relaxed));
      const std::uint64_t tick = 1;
      [[maybe_unused]] const auto n = ::write(p.evfd, &tick, sizeof tick);
    }
  } else {
    // The connection closed under us; whoever holds the exchange reaps —
    // possibly including the response just pushed.
    reap_outq(c);
  }
  conn_unref(c);
}

}  // namespace sigrt::net
