// Per-connection framing state machine: turns an arbitrary byte stream
// (short reads, coalesced frames, frames split across reads) back into
// length-prefixed frame bodies.
//
// Socket-free by design so the decode logic is unit-testable without a
// poller: the owner appends raw bytes (writable_tail/commit pair — read(2)
// lands directly in the buffer, no intermediate copy) and then iterates
// complete frames with next_frame().  The buffer grows to the connection's
// high-water mark once and is then reused; consumed bytes are compacted
// lazily (only when the parser has consumed more than it retains), so
// steady-state traffic costs one memmove amortized over many frames and no
// allocator traffic.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "net/protocol.hpp"

namespace sigrt::net {

/// One decoded frame body (valid until the next mutating FrameReader call).
struct FrameView {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
};

class FrameReader {
 public:
  explicit FrameReader(std::uint32_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  /// Reserves `hint` writable bytes at the tail and returns them; fill some
  /// prefix (e.g. via read(2)) and commit() how many were written.
  [[nodiscard]] std::uint8_t* writable_tail(std::size_t hint) {
    compact();
    if (buf_.size() - end_ < hint) buf_.resize(end_ + hint);
    return buf_.data() + end_;
  }

  void commit(std::size_t n) noexcept { end_ += n; }

  /// Extracts the next complete frame body, if any.  Returns false when
  /// more bytes are needed.  Throws std::length_error on a length prefix
  /// beyond the frame cap (protocol error: close the connection).
  [[nodiscard]] bool next_frame(FrameView& out) {
    const std::size_t avail = end_ - pos_;
    if (avail < kLenPrefixBytes) return false;
    const std::uint32_t len = get_u32(buf_.data() + pos_);
    if (len > max_frame_) {
      throw std::length_error("net: frame length exceeds cap");
    }
    if (avail < kLenPrefixBytes + len) return false;
    out.data = buf_.data() + pos_ + kLenPrefixBytes;
    out.size = len;
    pos_ += kLenPrefixBytes + len;
    return true;
  }

  /// Bytes buffered but not yet consumed (a partial frame).
  [[nodiscard]] std::size_t pending() const noexcept { return end_ - pos_; }

  /// Discards all buffered bytes (capacity kept).  Used when the transport
  /// reconnects: a partial frame belongs to the dead connection and must
  /// not prefix bytes from the new one.
  void reset() noexcept {
    pos_ = 0;
    end_ = 0;
  }

 private:
  void compact() noexcept {
    if (pos_ == 0) return;
    const std::size_t live = end_ - pos_;
    // Lazy: only pay the memmove when it reclaims more than it moves.
    if (pos_ < live) return;
    std::memmove(buf_.data(), buf_.data() + pos_, live);
    pos_ = 0;
    end_ = live;
  }

  std::uint32_t max_frame_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< start of unconsumed bytes
  std::size_t end_ = 0;  ///< end of valid bytes
};

/// Appends one framed message (len prefix + header + payload) to `out`.
/// Shared by the client (requests) and the server's response path; `out`
/// keeps its capacity across calls.
template <typename Header>
void append_frame(std::vector<std::uint8_t>& out, const Header& header,
                  std::size_t header_bytes, const void* payload,
                  std::size_t payload_bytes) {
  const std::size_t start = out.size();
  out.resize(start + kLenPrefixBytes + header_bytes + payload_bytes);
  std::uint8_t* p = out.data() + start;
  put_u32(p, static_cast<std::uint32_t>(header_bytes + payload_bytes));
  header.encode(p + kLenPrefixBytes);
  if (payload_bytes != 0) {
    std::memcpy(p + kLenPrefixBytes + header_bytes, payload, payload_bytes);
  }
}

}  // namespace sigrt::net
