// Wire protocol of the network frontend: length-prefixed binary frames.
//
//   frame    := u32 body_len | body                  (little-endian u32)
//   request  := RequestHeader (32 B) | payload
//   response := ResponseHeader (24 B) | payload
//
// RequestHeader:
//   u32 id          client-chosen correlation id, echoed verbatim
//   u32 tenant      serve::TenantId (validated against the registry)
//   u32 cls         serve::ClassId — picks the QoS class / task group
//   u32 kernel      picks the registered handler (the computation)
//   i64 deadline_ns relative latency budget; 0 = the class's QoS deadline
//   u64 reserved    must be 0
//
// ResponseHeader:
//   u32 id          echo of the request id
//   u32 status      Status below
//   i64 server_ns   admission-to-completion time observed by the server
//   u64 reserved    0
//
// Responses may arrive out of request order on one connection (EDF
// reorders, approximation changes service time); clients correlate by id.
// Everything is encoded with memcpy-based put/get — no struct punning, no
// padding or endianness surprises (the protocol is little-endian on the
// wire; this runtime targets little-endian hosts and the helpers below
// would be the single place to swap).
#pragma once

#include <cstdint>
#include <cstring>

namespace sigrt::net {

inline constexpr std::size_t kLenPrefixBytes = 4;
inline constexpr std::size_t kRequestHeaderBytes = 32;
inline constexpr std::size_t kResponseHeaderBytes = 24;

/// Hard cap on one frame body; a length prefix beyond it is a protocol
/// error and closes the connection (a corrupt prefix must not make the
/// server buffer gigabytes).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Response status codes (wire values are stable API).
enum class Status : std::uint32_t {
  Ok = 0,          ///< accurate body ran; payload is the full result
  OkApprox = 1,    ///< approximate body ran; payload is the degraded result
  OkDropped = 2,   ///< degraded with no approximate handler: empty payload
  Shed = 3,        ///< admission refused (quota) or dropped before a body
                   ///< ran (perforation, shutdown); empty payload
  BadFrame = 4,    ///< malformed frame (short header, nonzero reserved)
  BadClass = 5,    ///< unknown request class
  BadTenant = 6,   ///< unknown tenant id
  BadKernel = 7,   ///< unknown kernel id
  Expired = 8,     ///< admitted but its deadline passed before dispatch
                   ///< (shed_expired classes); empty payload
  Timeout = 9,     ///< force-dropped by the class watchdog (body stuck or
                   ///< faulted past watchdog_ns); empty payload
};

[[nodiscard]] constexpr const char* to_string(Status s) noexcept {
  switch (s) {
    case Status::Ok: return "ok";
    case Status::OkApprox: return "ok_approx";
    case Status::OkDropped: return "ok_dropped";
    case Status::Shed: return "shed";
    case Status::BadFrame: return "bad_frame";
    case Status::BadClass: return "bad_class";
    case Status::BadTenant: return "bad_tenant";
    case Status::BadKernel: return "bad_kernel";
    case Status::Expired: return "expired";
    case Status::Timeout: return "timeout";
  }
  return "?";
}

inline void put_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  std::memcpy(p, &v, sizeof v);
}
inline void put_u64(std::uint8_t* p, std::uint64_t v) noexcept {
  std::memcpy(p, &v, sizeof v);
}
inline void put_i64(std::uint8_t* p, std::int64_t v) noexcept {
  std::memcpy(p, &v, sizeof v);
}
[[nodiscard]] inline std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
[[nodiscard]] inline std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
[[nodiscard]] inline std::int64_t get_i64(const std::uint8_t* p) noexcept {
  std::int64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

struct RequestHeader {
  std::uint32_t id = 0;
  std::uint32_t tenant = 0;
  std::uint32_t cls = 0;
  std::uint32_t kernel = 0;
  std::int64_t deadline_ns = 0;
  std::uint64_t reserved = 0;

  void encode(std::uint8_t* p) const noexcept {
    put_u32(p + 0, id);
    put_u32(p + 4, tenant);
    put_u32(p + 8, cls);
    put_u32(p + 12, kernel);
    put_i64(p + 16, deadline_ns);
    put_u64(p + 24, reserved);
  }
  static RequestHeader decode(const std::uint8_t* p) noexcept {
    RequestHeader h;
    h.id = get_u32(p + 0);
    h.tenant = get_u32(p + 4);
    h.cls = get_u32(p + 8);
    h.kernel = get_u32(p + 12);
    h.deadline_ns = get_i64(p + 16);
    h.reserved = get_u64(p + 24);
    return h;
  }
};

struct ResponseHeader {
  std::uint32_t id = 0;
  Status status = Status::Ok;
  std::int64_t server_ns = 0;
  std::uint64_t reserved = 0;

  void encode(std::uint8_t* p) const noexcept {
    put_u32(p + 0, id);
    put_u32(p + 4, static_cast<std::uint32_t>(status));
    put_i64(p + 8, server_ns);
    put_u64(p + 16, reserved);
  }
  static ResponseHeader decode(const std::uint8_t* p) noexcept {
    ResponseHeader h;
    h.id = get_u32(p + 0);
    h.status = static_cast<Status>(get_u32(p + 4));
    h.server_ns = get_i64(p + 8);
    h.reserved = get_u64(p + 16);
    return h;
  }
};

}  // namespace sigrt::net
