// Log-bucketed latency histogram for the serving layer.
//
// Values (nanoseconds in practice, but any uint64) land in buckets that are
// exact below 2^kSubBucketBits and afterwards subdivide every power of two
// into kSubBuckets linear sub-buckets, bounding the relative quantile error
// by 1/kSubBuckets (~3%).  Two flavours:
//
//   * Histogram         — plain single-threaded counters; supports merge()
//                         and subtract() so a controller can diff successive
//                         snapshots into per-epoch windows.
//   * ShardedHistogram  — per-thread shards of relaxed atomic counters,
//                         merged on read.  record() is wait-free; shards
//                         are separately allocated and picked by a global
//                         thread slot modulo the shard count, so recording
//                         threads rarely share one (size the shard count to
//                         the recording-thread count to make collisions the
//                         exception); merged() is an O(buckets x shards)
//                         relaxed sweep, approximate while writers are
//                         active — the same contract as SchedulerStats.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/thread_annotations.hpp"

namespace sigrt::support {

class Histogram {
 public:
  static constexpr unsigned kSubBucketBits = 5;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBucketBits;
  /// Identity buckets [0, kSubBuckets) plus kSubBuckets linear sub-buckets
  /// per octave for msb in [kSubBucketBits, 63].
  static constexpr std::size_t kBuckets = (64 - kSubBucketBits + 1) * kSubBuckets;

  [[nodiscard]] static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBucketBits;
    const std::size_t sub =
        static_cast<std::size_t>((v >> shift) & (kSubBuckets - 1));
    return (msb - kSubBucketBits + 1) * kSubBuckets + sub;
  }

  /// Smallest value mapping to bucket `i`.
  [[nodiscard]] static constexpr std::uint64_t bucket_lower(std::size_t i) noexcept {
    if (i < kSubBuckets) return i;
    const unsigned msb =
        static_cast<unsigned>(i / kSubBuckets) + kSubBucketBits - 1;
    const std::uint64_t sub = i % kSubBuckets;
    return (std::uint64_t{1} << msb) + (sub << (msb - kSubBucketBits));
  }

  /// Largest value mapping to bucket `i`.
  [[nodiscard]] static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i < kSubBuckets) return i;
    const unsigned msb =
        static_cast<unsigned>(i / kSubBuckets) + kSubBucketBits - 1;
    return bucket_lower(i) + ((std::uint64_t{1} << (msb - kSubBucketBits)) - 1);
  }

  void record(std::uint64_t v) noexcept {
    ++counts_[bucket_index(v)];
    ++count_;
  }

  /// Folds `n` observations directly into bucket `bucket` (shard merging).
  void add_count(std::size_t bucket, std::uint64_t n) noexcept {
    counts_[bucket] += n;
    count_ += n;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// Nearest-rank quantile, reported as the upper bound of the bucket that
  /// holds the rank: always >= the exact order statistic and at most a
  /// factor (1 + 1/kSubBuckets) above it.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count_))));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += counts_[i];
      if (cum >= rank) return static_cast<double>(bucket_upper(i));
    }
    return static_cast<double>(bucket_upper(kBuckets - 1));
  }

  /// Lower bound of the smallest populated bucket (0 when empty).
  [[nodiscard]] std::uint64_t min() const noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] != 0) return bucket_lower(i);
    }
    return 0;
  }

  /// Upper bound of the largest populated bucket (0 when empty).
  [[nodiscard]] std::uint64_t max() const noexcept {
    for (std::size_t i = kBuckets; i-- > 0;) {
      if (counts_[i] != 0) return bucket_upper(i);
    }
    return 0;
  }

  /// Bucket-midpoint estimate of the mean.
  [[nodiscard]] double mean() const noexcept {
    if (count_ == 0) return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) continue;
      const double mid = 0.5 * (static_cast<double>(bucket_lower(i)) +
                                static_cast<double>(bucket_upper(i)));
      sum += mid * static_cast<double>(counts_[i]);
    }
    return sum / static_cast<double>(count_);
  }

  void merge(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
  }

  /// Per-bucket saturating subtraction: `*this - prev` for windowing a
  /// monotonically growing snapshot stream.  Buckets where `prev` exceeds
  /// the current count (a concurrent reset) clamp to zero.
  void subtract(const Histogram& prev) noexcept {
    count_ = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts_[i] = counts_[i] > prev.counts_[i] ? counts_[i] - prev.counts_[i] : 0;
      count_ += counts_[i];
    }
  }

  void reset() noexcept {
    counts_.fill(0);
    count_ = 0;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
};

namespace detail {
/// Process-wide small integer id for the calling thread; shards are picked
/// by slot modulo shard count so distinct threads rarely collide.
[[nodiscard]] inline unsigned thread_slot() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}
}  // namespace detail

class ShardedHistogram {
 public:
  explicit ShardedHistogram(unsigned shards = 8) {
    shards_.reserve(std::max(1u, shards));
    for (unsigned i = 0; i < std::max(1u, shards); ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  ShardedHistogram(const ShardedHistogram&) = delete;
  ShardedHistogram& operator=(const ShardedHistogram&) = delete;

  /// Wait-free from any thread.
  SIGRT_HOT_PATH void record(std::uint64_t v) noexcept {
    Shard& s = *shards_[detail::thread_slot() % shards_.size()];
    s.counts[Histogram::bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Relaxed sweep over all shards.  Approximate while writers are active;
  /// exact once they quiesce.
  [[nodiscard]] Histogram merged() const noexcept {
    Histogram out;
    for (const auto& shard : shards_) {
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        const std::uint64_t n = shard->counts[i].load(std::memory_order_relaxed);
        if (n != 0) out.add_count(i, n);
      }
    }
    return out;
  }

  /// Zeroes every shard.  Records racing the reset may or may not survive;
  /// snapshot-diff consumers (Histogram::subtract) clamp the transient.
  void reset() noexcept {
    for (auto& shard : shards_) {
      for (auto& c : shard->counts) c.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Shard {
    std::array<std::atomic<std::uint64_t>, Histogram::kBuckets> counts{};
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sigrt::support
