// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (Monte Carlo walks, synthetic
// input generation, randomized tie-breaking) draw from these generators so
// that every experiment in the paper reproduction is bit-reproducible given
// a seed.  std::mt19937 is deliberately avoided in hot paths: xoshiro256**
// is ~4x faster and has a trivially splittable seeding scheme, which matters
// when thousands of tasks each need an independent stream.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace sigrt::support {

/// SplitMix64: used to expand a single 64-bit seed into the state of other
/// generators.  Passes BigCrush when used directly; primarily a seeder here.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose generator for all workload randomness.
/// Satisfies (most of) the UniformRandomBitGenerator requirements so it can
/// be plugged into <random> distributions when convenient.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  Uses the unbiased multiply-shift method.
  constexpr std::uint64_t bounded(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless technique without the rejection loop;
    // bias is < 2^-64 * n which is negligible for workload generation.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(n);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via the polar Box-Muller transform (no caching; callers
  /// in this codebase never need pairs).
  double normal() noexcept {
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    return u * std::sqrt(-2.0 * std::log(s) / s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Derive an independent stream for a (seed, stream-id) pair.  Used to give
/// every task its own deterministic generator regardless of which worker
/// runs it — essential for run-to-run reproducibility under work stealing.
inline Xoshiro256 stream_rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return Xoshiro256(sm.next());
}

}  // namespace sigrt::support
