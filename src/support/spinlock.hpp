// Tiny test-and-test-and-set spinlock for critical sections of a few dozen
// instructions (a stripe-table probe, a dependents-list append).  All
// synchronization goes through one std::atomic<bool>, so ThreadSanitizer
// sees every acquire/release edge.  After a bounded burst of pause
// instructions the waiter yields its timeslice — on an oversubscribed or
// single-CPU box the lock holder needs the CPU more than the spinner does.
#pragma once

#include <atomic>
#include <thread>

#include "support/thread_annotations.hpp"

namespace sigrt::support {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class SIGRT_CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept SIGRT_ACQUIRE() {
    int spins = 0;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Spin on the cache-local load, not the RMW, so waiters don't ping
      // the line while the holder works.
      do {
        if (++spins < kSpinLimit) {
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
      } while (locked_.load(std::memory_order_relaxed));
    }
  }

  [[nodiscard]] bool try_lock() noexcept SIGRT_TRY_ACQUIRE(true) {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept SIGRT_RELEASE() {
    locked_.store(false, std::memory_order_release);
  }

 private:
  static constexpr int kSpinLimit = 64;
  std::atomic<bool> locked_{false};
};

/// Scoped lock over SpinLock — the annotated stand-in for
/// std::lock_guard<SpinLock>, which TSA cannot see through.
class SIGRT_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& l) SIGRT_ACQUIRE(l) : lock_(l) {
    lock_.lock();
  }
  ~SpinLockGuard() SIGRT_RELEASE() { lock_.unlock(); }

  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace sigrt::support
