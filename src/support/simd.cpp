#include "support/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace sigrt::support::simd {

namespace {

Isa detect_hardware() noexcept {
  if constexpr (kForceScalar) return Isa::Scalar;
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Isa::AVX2;
  }
#endif
  // SSE2 is part of the x86-64 baseline (and checked on 32-bit).
#if defined(__x86_64__) || defined(_M_X64)
  return Isa::SSE2;
#else
  return __builtin_cpu_supports("sse2") ? Isa::SSE2 : Isa::Scalar;
#endif
#elif defined(__aarch64__) || defined(__ARM_NEON)
  return Isa::NEON;
#else
  return Isa::Scalar;
#endif
}

/// Clamp a requested level to what the hardware can execute.  Levels are not
/// totally ordered across architectures (NEON vs SSE2), so clamping means:
/// anything the hardware cannot run degrades to the highest runnable level
/// on its own architecture, ultimately Scalar.
Isa clamp_to_hardware(Isa requested, Isa hw) noexcept {
  if (requested == Isa::Scalar || requested == hw) return requested;
  switch (requested) {
    case Isa::AVX2: return hw == Isa::SSE2 ? Isa::SSE2 : Isa::Scalar;
    case Isa::SSE2: return hw == Isa::AVX2 ? Isa::SSE2 : Isa::Scalar;
    case Isa::NEON: return Isa::Scalar;  // hw != NEON here
    default: return Isa::Scalar;
  }
}

std::atomic<Isa>& active_slot() noexcept {
  // First touch applies the env override on top of hardware detection.
  static std::atomic<Isa> slot{[] {
    Isa level = detect_hardware();
    if (const char* env = std::getenv("SIGRT_SIMD")) {
      Isa parsed;
      if (parse_isa(env, &parsed)) {
        level = clamp_to_hardware(parsed, detect_hardware());
      }
    }
    return level;
  }()};
  return slot;
}

}  // namespace

bool parse_isa(const char* name, Isa* out) noexcept {
  if (name == nullptr || out == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) { *out = Isa::Scalar; return true; }
  if (std::strcmp(name, "sse2") == 0) { *out = Isa::SSE2; return true; }
  if (std::strcmp(name, "avx2") == 0) { *out = Isa::AVX2; return true; }
  if (std::strcmp(name, "neon") == 0) { *out = Isa::NEON; return true; }
  return false;
}

Isa detected() noexcept {
  static const Isa hw = detect_hardware();
  return hw;
}

Isa active() noexcept {
  return active_slot().load(std::memory_order_relaxed);
}

Isa set_active(Isa isa) noexcept {
  const Isa effective = clamp_to_hardware(isa, detected());
  active_slot().store(effective, std::memory_order_relaxed);
  return effective;
}

Isa refresh_from_env() noexcept {
  Isa level = detected();
  if (const char* env = std::getenv("SIGRT_SIMD")) {
    Isa parsed;
    if (parse_isa(env, &parsed)) level = clamp_to_hardware(parsed, detected());
  }
  active_slot().store(level, std::memory_order_relaxed);
  return level;
}

}  // namespace sigrt::support::simd
