// Console table / CSV emitter used by every benchmark harness so that the
// regenerated tables and figure series share one consistent format.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sigrt::support {

/// Collects rows of string cells and renders them as an aligned text table.
/// Numeric helpers format with fixed precision so figure series line up.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row.  Subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 4);
  Table& cell(std::size_t value);
  Table& cell(long long value);

  /// Renders the table with column alignment, a rule under the header.
  [[nodiscard]] std::string str() const;

  /// Renders as comma-separated values (header + rows).
  [[nodiscard]] std::string csv() const;

  /// Convenience: print `str()` to stdout with a caption line.
  void print(const std::string& caption = {}) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats seconds/joules with sensible units for narration lines.
std::string format_seconds(double s);
std::string format_joules(double j);

}  // namespace sigrt::support
