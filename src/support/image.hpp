// Minimal grayscale image container with PGM I/O and deterministic synthetic
// generators.  Sobel and DCT (the paper's image benchmarks, §4.1) operate on
// these images; Figures 1 and 3 are regenerated as PGM files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sigrt::support {

/// Row-major 8-bit grayscale image.
class Image {
 public:
  Image() = default;
  Image(std::size_t width, std::size_t height, std::uint8_t fill = 0)
      : width_(width), height_(height), pixels_(width * height, fill) {}

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] std::size_t size() const noexcept { return pixels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return pixels_.empty(); }

  [[nodiscard]] std::uint8_t& at(std::size_t x, std::size_t y) noexcept {
    return pixels_[y * width_ + x];
  }
  [[nodiscard]] std::uint8_t at(std::size_t x, std::size_t y) const noexcept {
    return pixels_[y * width_ + x];
  }

  [[nodiscard]] std::uint8_t* data() noexcept { return pixels_.data(); }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return pixels_.data(); }

  [[nodiscard]] std::uint8_t* row(std::size_t y) noexcept {
    return pixels_.data() + y * width_;
  }
  [[nodiscard]] const std::uint8_t* row(std::size_t y) const noexcept {
    return pixels_.data() + y * width_;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& pixels() const noexcept {
    return pixels_;
  }
  [[nodiscard]] std::vector<std::uint8_t>& pixels() noexcept { return pixels_; }

  bool operator==(const Image& other) const = default;

 private:
  std::size_t width_ = 0;
  std::size_t height_ = 0;
  std::vector<std::uint8_t> pixels_;
};

/// Writes a binary (P5) PGM.  Returns false on I/O failure.
bool write_pgm(const Image& img, const std::string& path);

/// Reads a binary (P5) PGM with maxval <= 255.  Returns an empty image on
/// failure.
Image read_pgm(const std::string& path);

/// Deterministic synthetic test image: a mix of smooth gradients, concentric
/// rings and high-frequency texture.  Exercises both the low-frequency bands
/// DCT considers significant and the edges Sobel detects, so the synthetic
/// input is a faithful stand-in for the paper's photographic inputs (see
/// DESIGN.md §2 "Substitutions").
Image synthetic_image(std::size_t width, std::size_t height,
                      std::uint64_t seed = 42);

/// Copies `src` into the quadrant of `dst` selected by (qx, qy) in {0,1}^2.
/// Used to assemble the four-quadrant comparison images of Figures 1 and 3.
void blit_quadrant(Image& dst, const Image& src, int qx, int qy);

}  // namespace sigrt::support
