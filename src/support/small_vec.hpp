// Small-buffer vector for spawn-time clause lists: the first N elements
// live inline (no heap), longer sequences spill wholesale into a
// std::vector.  Storage is always contiguous, so callers can view the
// contents as a std::span either way.
//
// Built for TaskOptions::accesses — a handful of trivially-copyable
// in()/out() clauses per task — where the std::vector it replaces cost one
// heap allocation on every footprint-carrying spawn (the dominant
// per-spawn allocation once tasks themselves are pooled).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

namespace sigrt::support {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable elements");
  static_assert(N > 0);

 public:
  SmallVec() = default;
  SmallVec(SmallVec&&) noexcept = default;
  SmallVec& operator=(SmallVec&&) noexcept = default;
  SmallVec(const SmallVec&) = default;
  SmallVec& operator=(const SmallVec&) = default;

  void push_back(const T& v) {
    if (!spill_.empty()) {
      spill_.push_back(v);
    } else if (inline_count_ < N) {
      inline_[inline_count_++] = v;
    } else {
      spill_.reserve(N * 2);
      spill_.assign(inline_.begin(), inline_.end());
      spill_.push_back(v);
      inline_count_ = 0;
    }
  }

  void clear() noexcept {
    inline_count_ = 0;
    spill_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return spill_.empty() ? inline_count_ : spill_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] const T* data() const noexcept {
    return spill_.empty() ? inline_.data() : spill_.data();
  }
  [[nodiscard]] T* data() noexcept {
    return spill_.empty() ? inline_.data() : spill_.data();
  }

  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data()[i];
  }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }

  [[nodiscard]] const T* begin() const noexcept { return data(); }
  [[nodiscard]] const T* end() const noexcept { return data() + size(); }
  [[nodiscard]] T* begin() noexcept { return data(); }
  [[nodiscard]] T* end() noexcept { return data() + size(); }

  // NOLINTNEXTLINE(google-explicit-constructor): span is the read view
  operator std::span<const T>() const noexcept { return {data(), size()}; }

 private:
  std::array<T, N> inline_{};
  std::size_t inline_count_ = 0;
  std::vector<T> spill_;
};

}  // namespace sigrt::support
