// Runtime-dispatched SIMD facade (ROADMAP direction 4).
//
// The app kernels (sobel, dct, jacobi, kmeans) are compiled several times at
// different ISA levels — scalar always, the architecture baseline (SSE2 on
// x86-64, NEON on aarch64) at default flags, and AVX2+FMA in a dedicated TU
// built with -mavx2 -mfma — and dispatched through a function-pointer table
// selected here.  This header owns the *level* vocabulary and the selection
// rules; the kernels themselves live in src/apps/kernels.hpp.
//
// Selection, in priority order:
//   1. compile-time force   -DSIGRT_SIMD_FORCE=scalar (CMake cache var) pins
//      everything to the scalar fallback and excludes the vector TUs — the
//      CI leg that keeps the portable path green.
//   2. hardware detection   CPUID (via __builtin_cpu_supports) on x86; NEON
//      is unconditional on aarch64.  Runs once, at first use.
//   3. env override         SIGRT_SIMD=scalar|sse2|avx2|neon lowers (never
//      raises past the hardware) the active level at process start.
//   4. set_active()         test hook for sweeping dispatch levels in one
//      process; also clamped to the detected hardware.
//
// Threading: the active level is a relaxed atomic.  It is expected to be set
// once at startup (or from a single test thread between kernel invocations);
// kernels read it per call, so a change is picked up by the next call.
#pragma once

#include <atomic>
#include <cstdint>

namespace sigrt::support::simd {

/// Instruction-set levels the kernel tables can be built for.  Values index
/// the dispatch table; Scalar is always present.
enum class Isa : std::uint8_t {
  Scalar = 0,
  SSE2 = 1,
  AVX2 = 2,
  NEON = 3,
};
inline constexpr std::size_t kIsaCount = 4;

[[nodiscard]] constexpr const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::SSE2: return "sse2";
    case Isa::AVX2: return "avx2";
    case Isa::NEON: return "neon";
  }
  return "?";
}

/// True when the build pins dispatch to the scalar fallback
/// (-DSIGRT_SIMD_FORCE=scalar).
#if defined(SIGRT_SIMD_FORCE_SCALAR)
inline constexpr bool kForceScalar = true;
#else
inline constexpr bool kForceScalar = false;
#endif

/// Vector width in bytes at a level (scalar reported as one 8-byte lane).
[[nodiscard]] constexpr std::size_t width_bytes(Isa isa) noexcept {
  switch (isa) {
    case Isa::Scalar: return 8;
    case Isa::SSE2: return 16;
    case Isa::AVX2: return 32;
    case Isa::NEON: return 16;
  }
  return 8;
}

/// double lanes per vector at a level.
[[nodiscard]] constexpr std::size_t lanes_f64(Isa isa) noexcept {
  return width_bytes(isa) / 8;
}

/// Parses a level name ("scalar", "sse2", "avx2", "neon"); returns false on
/// anything else and leaves `out` untouched.
[[nodiscard]] bool parse_isa(const char* name, Isa* out) noexcept;

/// Highest level this hardware (plus the compile-time force) supports.
/// Detected once; subsequent calls are a load.
[[nodiscard]] Isa detected() noexcept;

/// Current dispatch level.  Starts at detected() lowered by SIGRT_SIMD.
[[nodiscard]] Isa active() noexcept;

/// Sets the dispatch level, clamped to detected().  Returns the level that
/// actually took effect (tests sweep levels through this).
Isa set_active(Isa isa) noexcept;

/// Re-reads the SIGRT_SIMD env override and applies it (exposed so tests can
/// exercise the override without re-execing).  Returns the resulting level.
Isa refresh_from_env() noexcept;

}  // namespace sigrt::support::simd
