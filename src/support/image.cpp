#include "support/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "support/rng.hpp"

namespace sigrt::support {

bool write_pgm(const Image& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P5\n" << img.width() << ' ' << img.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.data()),
            static_cast<std::streamsize>(img.size()));
  return static_cast<bool>(out);
}

Image read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string magic;
  in >> magic;
  if (magic != "P5") return {};

  // PGM allows '#' comments between header tokens.
  auto next_int = [&in]() -> long {
    while (in) {
      in >> std::ws;
      if (in.peek() == '#') {
        std::string comment;
        std::getline(in, comment);
        continue;
      }
      long v = -1;
      in >> v;
      return v;
    }
    return -1;
  };

  const long w = next_int();
  const long h = next_int();
  const long maxval = next_int();
  if (w <= 0 || h <= 0 || maxval <= 0 || maxval > 255) return {};
  in.get();  // single whitespace separating header from raster

  Image img(static_cast<std::size_t>(w), static_cast<std::size_t>(h));
  in.read(reinterpret_cast<char*>(img.data()),
          static_cast<std::streamsize>(img.size()));
  if (!in) return {};
  return img;
}

Image synthetic_image(std::size_t width, std::size_t height, std::uint64_t seed) {
  Image img(width, height);
  Xoshiro256 rng(seed);

  // Low-amplitude per-image phase offsets make distinct seeds produce
  // distinct yet structurally similar images.
  const double phase_x = rng.uniform(0.0, 6.28318530717958647692);
  const double phase_y = rng.uniform(0.0, 6.28318530717958647692);
  const double cx = static_cast<double>(width) * rng.uniform(0.35, 0.65);
  const double cy = static_cast<double>(height) * rng.uniform(0.35, 0.65);

  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const double fx = static_cast<double>(x) / static_cast<double>(width);
      const double fy = static_cast<double>(y) / static_cast<double>(height);
      // Smooth diagonal gradient (low frequency, dominates DCT DC band).
      double v = 90.0 * (fx + fy) * 0.5;
      // Concentric rings around (cx, cy): strong edges for Sobel.
      const double dx = static_cast<double>(x) - cx;
      const double dy = static_cast<double>(y) - cy;
      const double r = std::sqrt(dx * dx + dy * dy);
      v += 70.0 * (0.5 + 0.5 * std::sin(r * 0.08));
      // Mid/high-frequency texture bands.
      v += 40.0 * std::sin(fx * 53.0 + phase_x) * std::sin(fy * 47.0 + phase_y);
      // Sparse deterministic "speckle" noise — exercises the high-frequency
      // DCT coefficients whose tasks the paper tags least significant.
      if ((x * 2654435761u + y * 40503u + static_cast<std::size_t>(seed)) % 97 == 0) {
        v += 35.0;
      }
      v = std::clamp(v, 0.0, 255.0);
      img.at(x, y) = static_cast<std::uint8_t>(std::lround(v));
    }
  }
  return img;
}

void blit_quadrant(Image& dst, const Image& src, int qx, int qy) {
  const std::size_t qw = dst.width() / 2;
  const std::size_t qh = dst.height() / 2;
  const std::size_t ox = static_cast<std::size_t>(qx) * qw;
  const std::size_t oy = static_cast<std::size_t>(qy) * qh;
  for (std::size_t y = 0; y < qh && y < src.height(); ++y) {
    for (std::size_t x = 0; x < qw && x < src.width(); ++x) {
      dst.at(ox + x, oy + y) = src.at(ox + x, oy + y);
    }
  }
}

}  // namespace sigrt::support
