// Wall-clock timing utilities used by the runtime's activity accounting and
// by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace sigrt::support {

/// Monotonic nanosecond timestamp.  steady_clock is mandated so that the
/// energy model's busy/idle integration is immune to NTP adjustments.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple start/stop stopwatch.  Restartable; accumulates across intervals.
class Stopwatch {
 public:
  void start() noexcept { start_ns_ = now_ns(); }

  /// Stops the current interval and folds it into the accumulated total.
  void stop() noexcept {
    accum_ns_ += now_ns() - start_ns_;
    start_ns_ = 0;
  }

  void reset() noexcept {
    accum_ns_ = 0;
    start_ns_ = 0;
  }

  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    std::int64_t total = accum_ns_;
    if (start_ns_ != 0) total += now_ns() - start_ns_;
    return total;
  }

  [[nodiscard]] double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::int64_t accum_ns_ = 0;
  std::int64_t start_ns_ = 0;  // 0 == not running
};

/// RAII timer that adds the scope's duration to an external accumulator.
/// The runtime wraps task execution in one of these to attribute busy time
/// to workers for the energy model.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::int64_t& sink_ns) noexcept
      : sink_ns_(sink_ns), start_(now_ns()) {}
  ~ScopedTimer() { sink_ns_ += now_ns() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::int64_t& sink_ns_;
  std::int64_t start_;
};

}  // namespace sigrt::support
