// Wall-clock timing utilities used by the runtime's activity accounting and
// by the benchmark harnesses.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace sigrt::support {

/// Monotonic nanosecond timestamp.  steady_clock is mandated so that the
/// energy model's busy/idle integration is immune to NTP adjustments.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Simple start/stop stopwatch.  Restartable; accumulates across intervals.
class Stopwatch {
 public:
  void start() noexcept { start_ns_ = now_ns(); }

  /// Stops the current interval and folds it into the accumulated total.
  void stop() noexcept {
    accum_ns_ += now_ns() - start_ns_;
    start_ns_ = 0;
  }

  void reset() noexcept {
    accum_ns_ = 0;
    start_ns_ = 0;
  }

  [[nodiscard]] std::int64_t elapsed_ns() const noexcept {
    std::int64_t total = accum_ns_;
    if (start_ns_ != 0) total += now_ns() - start_ns_;
    return total;
  }

  [[nodiscard]] double elapsed_s() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::int64_t accum_ns_ = 0;
  std::int64_t start_ns_ = 0;  // 0 == not running
};

/// Cycle-granularity clock for per-task busy accounting.  A vDSO
/// clock_gettime costs ~20-25 ns; two of them per task (enter/exit) were
/// ~10% of the scheduler's per-task budget.  now() is a raw TSC read
/// (~5 ns); readers convert accumulated cycle deltas to nanoseconds with
/// to_ns(), which calibrates the TSC rate lazily against the monotonic
/// clock over the interval since process start — conversion happens on the
/// cold stats path, never per task.  Non-x86 builds fall back to now_ns()
/// (cycles are then nanoseconds, ratio 1).
class CycleClock {
 public:
  [[nodiscard]] static std::uint64_t now() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(now_ns());
#endif
  }

  /// Cycles elapsed since `start`, clamped at zero: on machines without a
  /// synchronized invariant TSC a thread migrated between cores mid-interval
  /// can observe a smaller counter, and an unclamped subtraction would wrap
  /// to ~2^64 and permanently corrupt the accumulator it feeds.
  [[nodiscard]] static std::uint64_t elapsed(std::uint64_t start) noexcept {
    const std::uint64_t end = now();
    return end >= start ? end - start : 0;
  }

  /// Converts a cycle delta to nanoseconds.  Accuracy improves with the
  /// length of the calibration window (the process lifetime so far); the
  /// first call within ~1 ms of startup may be coarse, which only affects
  /// diagnostic stats read that early.
  [[nodiscard]] static std::int64_t to_ns(std::uint64_t cycles) noexcept {
#if defined(__x86_64__) || defined(__i386__)
    const double r = ns_per_cycle();
    return static_cast<std::int64_t>(static_cast<double>(cycles) * r);
#else
    return static_cast<std::int64_t>(cycles);
#endif
  }

 private:
  [[nodiscard]] static double ns_per_cycle() noexcept {
    static const std::int64_t anchor_ns = now_ns();
    static const std::uint64_t anchor_cycles = now();
    const std::int64_t dn = now_ns() - anchor_ns;
    const std::uint64_t dc = now() - anchor_cycles;
    if (dc == 0 || dn <= 0) return 1.0;
    return static_cast<double>(dn) / static_cast<double>(dc);
  }
};

/// RAII timer that adds the scope's duration to an external accumulator.
/// The runtime wraps task execution in one of these to attribute busy time
/// to workers for the energy model.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::int64_t& sink_ns) noexcept
      : sink_ns_(sink_ns), start_(now_ns()) {}
  ~ScopedTimer() { sink_ns_ += now_ns() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::int64_t& sink_ns_;
  std::int64_t start_;
};

}  // namespace sigrt::support
