// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes
// (libc++'s do), so guarded-state contracts written against the standard
// types are invisible to `-Wthread-safety`.  These thin wrappers add the
// attributes and nothing else: Mutex is a std::mutex, MutexLock is a
// std::unique_lock, and both expose `native()` so condition variables keep
// working unchanged:
//
//   support::Mutex m_;
//   bool flag_ SIGRT_GUARDED_BY(m_);
//   ...
//   support::MutexLock lk(m_);
//   cv_.wait(lk.native(), [&] { return flag_; });   // cv's release/reacquire
//                                                   // is invisible to TSA by
//                                                   // design — the guarded
//                                                   // fields stay checked.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "support/thread_annotations.hpp"

namespace sigrt::support {

/// std::mutex with capability annotations.  `native()` is for
/// std::condition_variable only — never lock/unlock through it directly.
class SIGRT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SIGRT_ACQUIRE() { m_.lock(); }
  void unlock() SIGRT_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() SIGRT_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

  [[nodiscard]] std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// Scoped lock over Mutex, backed by std::unique_lock so condvar waits and
/// manual unlock/relock spans keep their std semantics under the analysis.
class SIGRT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) SIGRT_ACQUIRE(m) : lk_(m.native()) {}
  ~MutexLock() SIGRT_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() SIGRT_ACQUIRE() { lk_.lock(); }
  void unlock() SIGRT_RELEASE() { lk_.unlock(); }

  /// For std::condition_variable::wait(_for) only.
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

/// std::shared_mutex with capability annotations (reader/writer).
class SIGRT_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SIGRT_ACQUIRE() { m_.lock(); }
  void unlock() SIGRT_RELEASE() { m_.unlock(); }
  void lock_shared() SIGRT_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlock_shared() SIGRT_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// Exclusive (writer) scope over SharedMutex.
class SIGRT_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& m) SIGRT_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~WriterLock() SIGRT_RELEASE() { m_.unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& m_;
};

/// Shared (reader) scope over SharedMutex.
class SIGRT_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& m) SIGRT_ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  ~ReaderLock() SIGRT_RELEASE() { m_.unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& m_;
};

}  // namespace sigrt::support
