// Clang Thread Safety Analysis macros (no-ops elsewhere).
//
// These wrap the capability attributes documented in
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so the lock-order
// and guarded-state tables in docs/architecture.md are compiler-checked
// under `-Wthread-safety -Werror` (the clang-thread-safety CI job) while
// GCC builds see plain code.  Conventions:
//
//   * Every lock type is a SIGRT_CAPABILITY; every field a lock protects
//     carries SIGRT_GUARDED_BY(lock) instead of (or in addition to) a
//     `///< lock` comment.
//   * Private helpers that assume a lock is already held take
//     SIGRT_REQUIRES(lock) — the `_locked` suffix convention, now enforced.
//   * Static lock order is declared once, on the lock member, with
//     SIGRT_ACQUIRED_BEFORE / SIGRT_ACQUIRED_AFTER.
//   * Lock-free publish protocols the analysis cannot express (dynamic
//     stripe sets, Treiber stacks, single-writer counters) are opted out
//     per-function with SIGRT_NO_THREAD_SAFETY_ANALYSIS plus a one-line
//     comment naming the protocol that actually protects the access.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SIGRT_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef SIGRT_THREAD_ANNOTATION_
#define SIGRT_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability, e.g.
/// `class SIGRT_CAPABILITY("mutex") Mutex { ... };`.
#define SIGRT_CAPABILITY(x) SIGRT_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII guard whose constructor acquires and destructor releases.
#define SIGRT_SCOPED_CAPABILITY SIGRT_THREAD_ANNOTATION_(scoped_lockable)

/// Field is readable/writable only with the named capability held.
#define SIGRT_GUARDED_BY(x) SIGRT_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is guarded (the pointer itself is not).
#define SIGRT_PT_GUARDED_BY(x) SIGRT_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) to call this function.
#define SIGRT_REQUIRES(...) \
  SIGRT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must hold the capability at least shared to call this function.
#define SIGRT_REQUIRES_SHARED(...) \
  SIGRT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (and the caller must not hold it).
#define SIGRT_ACQUIRE(...) \
  SIGRT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability in shared mode.
#define SIGRT_ACQUIRE_SHARED(...) \
  SIGRT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive or shared).
#define SIGRT_RELEASE(...) \
  SIGRT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function releases a shared hold of the capability.
#define SIGRT_RELEASE_SHARED(...) \
  SIGRT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define SIGRT_TRY_ACQUIRE(...) \
  SIGRT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock-by-reentry guard).
#define SIGRT_EXCLUDES(...) SIGRT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Static lock-order edges, declared on the lock member itself.
#define SIGRT_ACQUIRED_BEFORE(...) \
  SIGRT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SIGRT_ACQUIRED_AFTER(...) \
  SIGRT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define SIGRT_RETURN_CAPABILITY(x) SIGRT_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch for protocols the analysis cannot model.  Every use MUST
/// carry a one-line comment naming the protocol that protects the access
/// (sigrt-lint's manifest ties those names back to docs/architecture.md).
#define SIGRT_NO_THREAD_SAFETY_ANALYSIS \
  SIGRT_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Marks a function as part of the zero-allocation steady state.  The
/// attribute is advisory to the compiler; the *contract* is enforced
/// textually by tools/sigrt-lint (no std::function, no new/make_unique/
/// make_shared/malloc inside the body) and dynamically by the bench-smoke
/// allocation gates.
#if defined(__GNUC__) || defined(__clang__)
#define SIGRT_HOT_PATH __attribute__((hot))
#else
#define SIGRT_HOT_PATH
#endif
