#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sigrt::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return cell(std::string(buf));
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      out << "  " << v << std::string(widths[c] - std::min(widths[c], v.size()), ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void Table::print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::fputs(str().c_str(), stdout);
  std::fputs("\n", stdout);
}

std::string format_seconds(double s) {
  char buf[64];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", s);
  }
  return buf;
}

std::string format_joules(double j) {
  char buf[64];
  if (j < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f mJ", j * 1e3);
  } else if (j < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f J", j);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f kJ", j * 1e-3);
  }
  return buf;
}

}  // namespace sigrt::support
