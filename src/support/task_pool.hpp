// Slab pool with per-thread freelists and an MPSC remote-free return chain.
//
// The task lifecycle is strongly asymmetric: tasks are allocated by one
// thread (the master, or the serve dispatcher) and freed by whichever
// worker executes them.  A classic global free list would serialize every
// spawn/complete pair on one cache line; per-thread caches alone would
// bleed memory from the allocating thread to the executing ones.  This
// pool does neither:
//
//   * Each allocating thread leases a Shard holding a private LIFO
//     freelist and the slabs it carved.  Allocation is a pointer pop —
//     no atomics, no lock.
//   * An object freed by its owner thread is pushed back onto that private
//     list.  An object freed by any other thread is pushed onto the owner
//     shard's lock-free MPSC `remote_free` Treiber chain (one CAS); the
//     owner splices the whole chain back into its private list the next
//     time its freelist runs dry.  Net effect: a task freed by the
//     executing worker is recycled by its spawning thread without a global
//     lock, and the slabs never migrate.
//   * Shards are leased, not owned: when a thread exits, its shard (with
//     freelist and slabs intact) returns to a registry and is adopted by
//     the next new allocating thread, so repeated Runtime construction in
//     one process keeps reusing warm slabs.
//
// Objects are constructed once per slot and *reset*, not destroyed, on
// free (`T::reset_for_reuse()`, called on the freeing thread so captured
// resources release promptly).  Internal buffers such as a task's
// dependents vector therefore keep their capacity across reuses — the
// steady state allocates nothing.  Each free bumps the slot's generation
// counter, giving use-after-recycle bugs a cheap, testable signature.
//
// T must derive from PoolSlot<T> and provide `void reset_for_reuse()
// noexcept`.  The pool singleton is intentionally leaked (thread-local
// caches may outlive static destruction).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sigrt::support {

template <class T>
class SlabPool;

/// Intrusive pool header every pooled type embeds (via inheritance).  The
/// generation counter is bumped on every free; a task body observing a
/// generation different from the one captured at spawn has outlived its
/// slot — the signature task_pool_test's stress asserts never appears.
template <class T>
class PoolSlot {
 public:
  [[nodiscard]] std::uint32_t pool_generation() const noexcept {
    return pool_generation_.load(std::memory_order_acquire);
  }

 private:
  friend class SlabPool<T>;
  T* pool_next_ = nullptr;    ///< freelist / remote-chain link
  void* pool_shard_ = nullptr;  ///< owning SlabPool shard
  std::atomic<std::uint32_t> pool_generation_{0};
};

template <class T>
class SlabPool {
 public:
  /// Objects per slab: large enough to amortize the slab allocation, small
  /// enough that short-lived programs don't overcommit.
  static constexpr std::size_t kSlabObjects = 64;

  struct Stats {
    std::uint64_t allocated = 0;  ///< allocate() calls (reuse included)
    std::uint64_t freed = 0;      ///< recycle() completions
    std::uint64_t slabs = 0;      ///< slabs carved, never returned
    std::uint64_t shards = 0;     ///< shards ever created
    [[nodiscard]] std::uint64_t live() const noexcept {
      return allocated - freed;
    }
  };

  /// Leaked singleton: thread-local shard leases unwind after static
  /// destructors run, so the pool must never be torn down.
  [[nodiscard]] static SlabPool& instance() {
    static SlabPool* pool = new SlabPool;
    return *pool;
  }

  /// Grabs a slot from the calling thread's shard: private freelist, then
  /// the remote-free chain, then a fresh slab.  The returned object is in
  /// its reset state; the caller re-initializes lifecycle fields.
  [[nodiscard]] SIGRT_HOT_PATH T* allocate() {
    Shard& shard = local_shard();
    T* obj = shard.free_list;
    if (obj == nullptr) {
      drain_remote(shard);
      obj = shard.free_list;
      if (obj == nullptr) {
        grow(shard);
        obj = shard.free_list;
      }
    }
    shard.free_list = obj->PoolSlot<T>::pool_next_;
    obj->PoolSlot<T>::pool_next_ = nullptr;
    // Owner-only counter: plain load+store, no lock-prefixed RMW.
    shard.allocated.store(shard.allocated.load(std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
    return obj;
  }

  /// Returns a slot to its owning shard.  Called from any thread (this is
  /// the only cross-thread entry point); resets the object on the freeing
  /// thread, then hands the slot home — locally when the freeing thread
  /// owns the shard, otherwise through a thread-local outbound chain that
  /// is spliced onto the home shard's MPSC remote list every
  /// kOutboundFlush frees (one CAS per batch, not per task).
  SIGRT_HOT_PATH void recycle(T* obj) noexcept {
    obj->reset_for_reuse();
    // Plain load+store, not an RMW: the freeing thread exclusively owns the
    // slot here (refcount already zero); the release store publishes the
    // bump to stale-read generation checks.
    obj->PoolSlot<T>::pool_generation_.store(
        obj->PoolSlot<T>::pool_generation_.load(std::memory_order_relaxed) + 1,
        std::memory_order_release);
    auto* home = static_cast<Shard*>(obj->PoolSlot<T>::pool_shard_);
    ShardLease& lease = tls_lease();
    if (home == lease.shard) {
      obj->PoolSlot<T>::pool_next_ = home->free_list;
      home->free_list = obj;
      // Owner-only counter: plain load+store, no lock-prefixed RMW.
      home->freed_local.store(
          home->freed_local.load(std::memory_order_relaxed) + 1,
          std::memory_order_relaxed);
      return;
    }
    // A worker frees almost exclusively to one home (its spawner), so a
    // single buffered chain suffices; a change of home flushes the old one.
    if (lease.out_home != home) flush_outbound(lease);
    obj->PoolSlot<T>::pool_next_ = lease.out_head;
    lease.out_head = obj;
    if (lease.out_tail == nullptr) lease.out_tail = obj;
    lease.out_home = home;
    if (++lease.out_count >= kOutboundFlush) flush_outbound(lease);
  }

  /// Aggregate over every shard (including orphaned ones).  Counters are
  /// relaxed: exact once the workload has quiesced, approximate while
  /// threads are running.
  [[nodiscard]] Stats stats() const {
    Stats s;
    MutexLock lock(registry_mutex_);
    s.shards = shards_.size();
    for (const auto& shard : shards_) {
      s.allocated += shard->allocated.load(std::memory_order_relaxed);
      s.freed += shard->freed_local.load(std::memory_order_relaxed) +
                 shard->freed_remote.load(std::memory_order_relaxed);
      s.slabs += shard->slab_count.load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  struct Slab {
    alignas(alignof(T)) unsigned char storage[sizeof(T) * kSlabObjects];
  };

  struct alignas(64) Shard {
    // Owner-thread only --------------------------------------------------
    T* free_list = nullptr;
    std::vector<std::unique_ptr<Slab>> slabs;
    // Any thread ---------------------------------------------------------
    std::atomic<T*> remote_free{nullptr};
    // allocated/freed_local are owner-only (plain store/load); freed_remote
    // takes batched fetch_adds from outbound flushes.
    std::atomic<std::uint64_t> allocated{0};
    std::atomic<std::uint64_t> freed_local{0};
    std::atomic<std::uint64_t> freed_remote{0};
    std::atomic<std::uint64_t> slab_count{0};
    /// Guarded by the pool's registry_mutex_ (a cross-object guard TSA
    /// cannot express on an inner-struct member; every access site holds
    /// the registry lock).
    bool leased = false;
  };

  /// Remote frees buffered before one CAS splices them home.
  static constexpr unsigned kOutboundFlush = 32;

  /// Thread-exit hook: flushes any buffered remote frees, then returns the
  /// lease so the next new thread adopts the shard (its freelist and slabs
  /// stay warm).
  struct ShardLease {
    Shard* shard = nullptr;
    // Outbound remote-free chain (newest-first) destined for out_home.
    Shard* out_home = nullptr;
    T* out_head = nullptr;
    T* out_tail = nullptr;
    unsigned out_count = 0;
    ~ShardLease() {
      flush_outbound(*this);
      if (shard != nullptr) instance().return_shard(*shard);
    }
  };

  static ShardLease& tls_lease() {
    thread_local ShardLease lease;
    return lease;
  }

  /// Splices the lease's outbound chain onto its home shard's remote list:
  /// one release CAS and one batched freed_remote add for the whole chain.
  static void flush_outbound(ShardLease& lease) noexcept {
    if (lease.out_head == nullptr) {
      lease.out_home = nullptr;
      return;
    }
    Shard& home = *lease.out_home;
    T* head = home.remote_free.load(std::memory_order_relaxed);
    do {
      lease.out_tail->PoolSlot<T>::pool_next_ = head;
    } while (!home.remote_free.compare_exchange_weak(
        head, lease.out_head, std::memory_order_release,
        std::memory_order_relaxed));
    home.freed_remote.fetch_add(lease.out_count, std::memory_order_relaxed);
    lease.out_head = nullptr;
    lease.out_tail = nullptr;
    lease.out_count = 0;
    lease.out_home = nullptr;
  }

  Shard& local_shard() {
    ShardLease& lease = tls_lease();
    if (lease.shard == nullptr) lease.shard = &lease_shard();
    return *lease.shard;
  }

  Shard& lease_shard() {
    MutexLock lock(registry_mutex_);
    for (auto& shard : shards_) {
      if (!shard->leased) {
        shard->leased = true;
        return *shard;
      }
    }
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->leased = true;
    return *shards_.back();
  }

  void return_shard(Shard& shard) {
    MutexLock lock(registry_mutex_);
    shard.leased = false;
  }

  /// Splices the remote-free chain into the private freelist.  Order is
  /// irrelevant (a freelist, not a queue); the acquire exchange pairs with
  /// the release CAS in recycle() so the reset state is visible.
  void drain_remote(Shard& shard) {
    T* chain = shard.remote_free.exchange(nullptr, std::memory_order_acquire);
    while (chain != nullptr) {
      T* next = chain->PoolSlot<T>::pool_next_;
      chain->PoolSlot<T>::pool_next_ = shard.free_list;
      shard.free_list = chain;
      chain = next;
    }
  }

  void grow(Shard& shard) {
    auto slab = std::make_unique<Slab>();
    unsigned char* base = slab->storage;
    for (std::size_t i = kSlabObjects; i-- > 0;) {
      T* obj = ::new (base + i * sizeof(T)) T();
      obj->PoolSlot<T>::pool_shard_ = &shard;
      obj->PoolSlot<T>::pool_next_ = shard.free_list;
      shard.free_list = obj;
    }
    shard.slabs.push_back(std::move(slab));
    shard.slab_count.fetch_add(1, std::memory_order_relaxed);
  }

  mutable Mutex registry_mutex_;
  std::vector<std::unique_ptr<Shard>> shards_ SIGRT_GUARDED_BY(registry_mutex_);
};

}  // namespace sigrt::support
