// BasicInlineFn<R>: a move-only `R()` callable with small-buffer storage.
//
// std::function heap-allocates any capture bigger than its (implementation
// defined, typically 16-byte) SBO and drags in RTTI + copyability machinery
// the task hot path never uses.  BasicInlineFn stores captures up to
// kInlineBytes (64) directly inside the object — sized so that every task
// body in this repository, and anything capturing up to 8 pointers, spawns
// without touching the allocator — and falls back to a single heap cell for
// oversized or potentially-throwing-move captures.  Two function pointers
// (invoke + manage) replace the vtable; no RTTI, no copy support.
//
// Two instantiations are used by the runtime:
//   InlineFn   = BasicInlineFn<void>  — task bodies
//   InlinePred = BasicInlineFn<bool>  — check() result validators
//
// The capture-size contract is part of the runtime's zero-allocation
// guarantee: see docs/architecture.md ("Task lifecycle & memory") and the
// micro_spawn bench gate, which asserts 0 steady-state allocations per task
// for bodies within the SBO limit.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace sigrt::support {

template <class R>
class BasicInlineFn {
 public:
  /// Captures up to this many bytes (with fundamental alignment and a
  /// nothrow move constructor) are stored inline; anything else costs one
  /// heap allocation at construction.
  static constexpr std::size_t kInlineBytes = 64;

  BasicInlineFn() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, BasicInlineFn>>>
  BasicInlineFn(F&& fn) {  // NOLINT(google-explicit-constructor): mirrors std::function
    emplace(std::forward<F>(fn));
  }

  BasicInlineFn(BasicInlineFn&& other) noexcept { move_from(other); }
  BasicInlineFn& operator=(BasicInlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, BasicInlineFn>>>
  BasicInlineFn& operator=(F&& fn) {
    reset();
    emplace(std::forward<F>(fn));
    return *this;
  }

  BasicInlineFn(const BasicInlineFn&) = delete;
  BasicInlineFn& operator=(const BasicInlineFn&) = delete;

  ~BasicInlineFn() { reset(); }

  /// Destroys the stored callable (releasing captured resources) and
  /// returns to the empty state.  Safe on an empty BasicInlineFn.
  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::Destroy, buf_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  R operator()() { return invoke_(buf_); }

 private:
  enum class Op : std::uint8_t { Destroy, Relocate };
  using Invoke = R (*)(void*);
  using Manage = void (*)(Op, void* src, void* dst) noexcept;

  template <class D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <class F>
  void emplace(F&& fn) {
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<R, D&>,
                  "BasicInlineFn requires an R() callable");
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      invoke_ = [](void* buf) -> R {
        return (*std::launder(reinterpret_cast<D*>(buf)))();
      };
      manage_ = [](Op op, void* src, void* dst) noexcept {
        D* self = std::launder(reinterpret_cast<D*>(src));
        if (op == Op::Relocate) ::new (dst) D(std::move(*self));
        self->~D();
      };
    } else {
      // Heap fallback: buf_ holds a single owning pointer.  Relocation is a
      // pointer copy, so moved-from heap callables never re-allocate.
      D* cell = new D(std::forward<F>(fn));
      std::memcpy(buf_, &cell, sizeof(cell));
      invoke_ = [](void* buf) -> R {
        D* cell;
        std::memcpy(&cell, buf, sizeof(cell));
        return (*cell)();
      };
      manage_ = [](Op op, void* src, void* dst) noexcept {
        if (op == Op::Relocate) {
          std::memcpy(dst, src, sizeof(D*));
          return;
        }
        D* cell;
        std::memcpy(&cell, src, sizeof(cell));
        delete cell;
      };
    }
  }

  /// Precondition: *this is empty.  Leaves `other` empty.
  void move_from(BasicInlineFn& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(Op::Relocate, other.buf_, buf_);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

/// Task bodies: `void()`.
using InlineFn = BasicInlineFn<void>;

/// Result validators (TaskOptions::check): `bool()`, true = result accepted.
using InlinePred = BasicInlineFn<bool>;

}  // namespace sigrt::support
