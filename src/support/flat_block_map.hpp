// Open-addressed hash table specialized for the dependence tracker's
// per-stripe block tables: 64-bit block-index keys, linear probing, and —
// the property the probe loop relies on — keys are NEVER erased
// individually.  A block that has been observed once keeps its slot (and
// its Value's internal buffer capacity) for the tracker's lifetime;
// completing a task merely resets fields inside the Value.  Only clear()
// forgets keys, so probing needs no tombstones and a miss stops at the
// first empty slot.
//
// get_or_insert() may grow the table and therefore invalidates every
// previously returned Value*/Value& of this map; callers must not hold a
// reference across an insertion.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace sigrt::support {

template <typename Value>
class FlatBlockMap {
 public:
  /// Reserved: no valid block index is all-ones (it would require the last
  /// addressable byte of the address space).
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  FlatBlockMap() = default;
  FlatBlockMap(const FlatBlockMap&) = delete;
  FlatBlockMap& operator=(const FlatBlockMap&) = delete;

  [[nodiscard]] Value* find(std::uint64_t key) noexcept {
    if (slots_.empty()) return nullptr;
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == key) return &s.value;
      if (s.key == kEmptyKey) return nullptr;
    }
  }

  /// Finds `key` or default-constructs a Value for it; `inserted` reports
  /// which.  Amortized O(1); a growth step reallocates and moves values.
  Value& get_or_insert(std::uint64_t key, bool& inserted) {
    assert(key != kEmptyKey && "block index collides with the empty sentinel");
    if ((size_ + 1) * 4 > slots_.size() * 3) grow();
    for (std::size_t i = index_of(key);; i = (i + 1) & mask_) {
      Slot& s = slots_[i];
      if (s.key == key) {
        inserted = false;
        return s.value;
      }
      if (s.key == kEmptyKey) {
        s.key = key;
        ++size_;
        inserted = true;
        return s.value;
      }
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Forgets every key and destroys every value (table capacity is kept).
  void clear() {
    for (Slot& s : slots_) {
      if (s.key != kEmptyKey) {
        s.key = kEmptyKey;
        s.value = Value{};
      }
    }
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    Value value{};
  };

  [[nodiscard]] std::size_t index_of(std::uint64_t key) const noexcept {
    // splitmix64 finalizer: block indices are sequential per array, so the
    // low bits need thorough mixing before masking.
    std::uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h) & mask_;
  }

  void grow() {
    const std::size_t cap = slots_.empty() ? kInitialCapacity : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(cap);
    mask_ = cap - 1;
    for (Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      for (std::size_t i = index_of(s.key);; i = (i + 1) & mask_) {
        if (slots_[i].key == kEmptyKey) {
          slots_[i].key = s.key;
          slots_[i].value = std::move(s.value);
          break;
        }
      }
    }
  }

  static constexpr std::size_t kInitialCapacity = 64;  // power of two

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace sigrt::support
