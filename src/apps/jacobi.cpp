#include "apps/jacobi.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "apps/kernels.hpp"
#include "metrics/quality.hpp"
#include "perforation/perforate.hpp"
#include "support/rng.hpp"

namespace sigrt::apps::jacobi {

namespace {

/// Dense diagonally dominant system: off-diagonal entries decay with the
/// distance from the diagonal, concentrating information in a band — the
/// property the paper's drop-the-corners approximation relies on.
struct System {
  std::size_t n = 0;
  std::vector<double> a;  // n x n, row-major
  std::vector<double> b;
};

System make_system(const Options& opt) {
  System sys;
  sys.n = opt.n;
  sys.a.assign(opt.n * opt.n, 0.0);
  sys.b.assign(opt.n, 0.0);
  support::Xoshiro256 rng(opt.common.seed);

  for (std::size_t i = 0; i < opt.n; ++i) {
    double off_sum = 0.0;
    for (std::size_t j = 0; j < opt.n; ++j) {
      if (i == j) continue;
      const auto dist = static_cast<double>(i > j ? i - j : j - i);
      const double v = rng.uniform(0.0, 1.0) / (1.0 + 0.05 * dist);
      sys.a[i * opt.n + j] = v;
      off_sum += v;
    }
    // Strict dominance with a modest margin: spectral radius of the Jacobi
    // iteration matrix ~0.87, giving convergence histories long enough for
    // the tolerance degrees of Table 1 to separate visibly (tens of sweeps
    // between the 1e-2 and 1e-5 stopping points).
    sys.a[i * opt.n + i] = off_sum * 1.15 + 1.0;
    sys.b[i] = rng.uniform(-1.0, 1.0) * static_cast<double>(opt.n);
  }
  return sys;
}

/// Accurate row-block update: full row sums, vectorized via the dispatched
/// dot kernel (the diagonal term is summed then subtracted, as before).
void block_task(const System& sys, const std::vector<double>& x,
                std::vector<double>& x_new, std::size_t row_begin,
                std::size_t row_end) {
  const std::size_t n = sys.n;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* row = sys.a.data() + i * n;
    double acc = kern::dot_span(row, x.data(), n);
    acc -= row[i] * x[i];
    x_new[i] = (sys.b[i] - acc) / row[i];
  }
}

/// Surviving column spans of the perforated inner loop, precomputed once —
/// a compiler applying loop perforation would emit the strided loop
/// directly, so the selection is not part of the measured region's work.
/// Block shape yields dense aligned runs (vectorizable); the scattered
/// shapes yield unit runs, i.e. the classic scalar comparator.
struct PerforationPlan {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> runs;  // [begin, end)
  std::vector<std::uint8_t> kept;  // per-column coverage (diagonal handling)
};

PerforationPlan perforation_plan(std::size_t n, double rate,
                                 perforation::Shape shape, std::size_t block) {
  PerforationPlan plan;
  plan.kept.assign(n, 0);
  const auto add_run = [&](std::size_t begin, std::size_t end) {
    plan.runs.emplace_back(static_cast<std::uint32_t>(begin),
                           static_cast<std::uint32_t>(end));
    for (std::size_t j = begin; j < end; ++j) plan.kept[j] = 1;
  };
  if (shape == perforation::Shape::Block) {
    perforation::perforate_blocks(0, n, rate, add_run, block);
  } else {
    perforation::for_each(
        0, n, rate, [&](std::size_t j) { add_run(j, j + 1); }, shape);
  }
  return plan;
}

/// Blind perforation comparator: the inner accumulation loop skips a
/// fraction of the matrix-row terms, with no notion of which terms matter.
/// §4.2 observes this converges in fewer sweeps (the skipped terms shrink
/// the effective spectral radius) at a solution offset from the true one.
/// Wide runs (Shape::Block) go through the vector dot kernel; unit runs
/// (scattered shapes) stay scalar — exactly the fight between perforation
/// and vectorization the Block shape resolves.
void block_task_perforated(const System& sys, const std::vector<double>& x,
                           std::vector<double>& x_new, std::size_t row_begin,
                           std::size_t row_end, const PerforationPlan& plan) {
  const std::size_t n = sys.n;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* row = sys.a.data() + i * n;
    double acc = 0.0;
    for (const auto& [lo, hi] : plan.runs) {
      if (hi - lo >= 8) {
        acc += kern::dot_span(row + lo, x.data() + lo, hi - lo);
      } else {
        for (std::size_t j = lo; j < hi; ++j) acc += row[j] * x[j];
      }
    }
    if (plan.kept[i] != 0) acc -= row[i] * x[i];  // diagonal never in the sum
    x_new[i] = (sys.b[i] - acc) / row[i];
  }
}

/// Approximate row-block update: only the diagonal band — the upper-right
/// and lower-left areas of the matrix are dropped.
void block_task_appr(const System& sys, const std::vector<double>& x,
                     std::vector<double>& x_new, std::size_t row_begin,
                     std::size_t row_end, std::size_t band) {
  const std::size_t n = sys.n;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* row = sys.a.data() + i * n;
    const std::size_t lo = i > band ? i - band : 0;
    const std::size_t hi = std::min(n, i + band + 1);
    double acc = kern::dot_span(row + lo, x.data() + lo, hi - lo);
    acc -= row[i] * x[i];
    x_new[i] = (sys.b[i] - acc) / row[i];
  }
}

double max_delta(const std::vector<double>& a, const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace

double tolerance_for(Degree degree) noexcept {
  switch (degree) {
    case Degree::Mild: return 1e-4;
    case Degree::Medium: return 1e-3;
    case Degree::Aggressive: return 1e-2;
  }
  return 1e-5;
}

Solution reference(const Options& options) {
  const System sys = make_system(options);
  std::vector<double> x(options.n, 0.0);
  std::vector<double> x_new(options.n, 0.0);
  Solution sol;
  for (std::size_t s = 0; s < options.max_sweeps; ++s) {
    block_task(sys, x, x_new, 0, options.n);
    ++sol.sweeps;
    const double delta = max_delta(x, x_new);
    std::swap(x, x_new);
    if (delta < options.native_tolerance) break;
  }
  sol.x = x;
  return sol;
}

RunResult run(const Options& options, Solution* out) {
  RunResult result;
  result.app = "jacobi";
  result.quality_metric = "rel.err";

  const System sys = make_system(options);
  const Solution ref = reference(options);
  const double tol = tolerance_for(options.common.degree);
  const std::size_t blocks = (options.n + options.row_block - 1) / options.row_block;

  std::vector<double> x(options.n, 0.0);
  std::vector<double> x_new(options.n, 0.0);
  const PerforationPlan plan =
      options.common.variant == Variant::Perforated
          ? perforation_plan(options.n, options.perforation_rate,
                             options.perforation_shape,
                             options.perforation_block)
          : PerforationPlan{};
  Solution sol;

  run_measured(options.common, result, [&](Runtime& rt) {
    const GroupId g = rt.create_group("jacobi", 1.0);
    const bool perforated = options.common.variant == Variant::Perforated;
    const bool accurate_only = options.common.variant == Variant::Accurate;

    for (std::size_t s = 0; s < options.max_sweeps; ++s) {
      // Paper schedule: the first approx_sweeps sweeps run at ratio 0 (all
      // tasks approximate), every later sweep at ratio 1.  The accurate
      // baseline runs everything accurately at the native tolerance.
      const bool approx_phase =
          !accurate_only && !perforated && s < options.approx_sweeps;
      rt.set_ratio(g, approx_phase ? 0.0 : 1.0);

      for (std::size_t blk = 0; blk < blocks; ++blk) {
        const std::size_t lo = blk * options.row_block;
        const std::size_t hi = std::min(options.n, lo + options.row_block);
        if (perforated) {
          // Blind perforation of the inner accumulation loop: same task
          // count as the accurate run, each task doing (1 - rate) of the
          // row terms with no significance information.
          rt.spawn(task([&, lo, hi] {
                     block_task_perforated(sys, x, x_new, lo, hi, plan);
                   })
                       .group(g)
                       .in(sys.a.data() + lo * sys.n, (hi - lo) * sys.n)
                       .in(x.data(), x.size())
                       .out(x_new.data() + lo, hi - lo));
        } else {
          rt.spawn(task([&, lo, hi] { block_task(sys, x, x_new, lo, hi); })
                       .approx([&, lo, hi] {
                         block_task_appr(sys, x, x_new, lo, hi, options.band);
                       })
                       .significance(0.5)
                       .group(g)
                       .in(sys.a.data() + lo * sys.n, (hi - lo) * sys.n)
                       .in(x.data(), x.size())
                       .out(x_new.data() + lo, hi - lo));
        }
      }
      rt.wait_group(g);

      ++sol.sweeps;
      const double delta = max_delta(x, x_new);
      std::swap(x, x_new);
      const double target = accurate_only ? options.native_tolerance : tol;
      if (s + 1 > options.approx_sweeps && delta < target) break;
    }
  });

  sol.x = x;
  result.quality = metrics::relative_l2_error(ref.x, sol.x);
  result.quality_aux = result.quality;
  if (out != nullptr) *out = std::move(sol);
  return result;
}

}  // namespace sigrt::apps::jacobi
