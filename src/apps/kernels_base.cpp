// Architecture-baseline kernel instantiation, built at the default compiler
// flags: SSE2 on x86-64 (part of the ABI baseline), NEON on AArch64.  On
// other architectures — or under -DSIGRT_SIMD_FORCE=scalar — this TU only
// exports a null table and dispatch falls back to the scalar instantiation.
#include "apps/kernels.hpp"

#if !defined(SIGRT_SIMD_FORCE_SCALAR) && \
    (defined(__x86_64__) || defined(_M_X64))

#define SIGRT_KIMPL_NS sse2
#define SIGRT_KIMPL_LEVEL 1
#define SIGRT_KIMPL_ISA ::sigrt::support::simd::Isa::SSE2
#define SIGRT_KIMPL_TABLE_FN detail::table_base
#include "apps/kernels_impl.inl"

#elif !defined(SIGRT_SIMD_FORCE_SCALAR) && defined(__aarch64__) && \
    defined(__ARM_NEON)

#define SIGRT_KIMPL_NS neon
#define SIGRT_KIMPL_LEVEL 3
#define SIGRT_KIMPL_ISA ::sigrt::support::simd::Isa::NEON
#define SIGRT_KIMPL_TABLE_FN detail::table_base
#include "apps/kernels_impl.inl"

#else

namespace sigrt::apps::kern {
const KernelTable* detail::table_base() noexcept { return nullptr; }
}  // namespace sigrt::apps::kern

#endif
