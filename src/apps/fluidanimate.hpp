// Fluidanimate benchmark: smoothed particle hydrodynamics (§4.1, after the
// PARSEC application [2]).
//
// The fluid is a set of particles binned into a uniform grid; each time
// step computes densities, then forces, then integrates.  Following the
// paper, a whole time step is either fully accurate or fully approximate:
// the ratio() clause of the step's taskwait alternates between 1.0 and 0.0.
// The approximate step advances every particle linearly along its current
// velocity ("it will move linearly, in the same direction and with the same
// velocity as it did in the previous time steps") and skips the SPH passes.
//
// Degrees (Table 1): 50% / 25% / 12.5% of steps accurate; stability demands
// the accurate steps be interleaved (1 accurate every 2 / 4 / 8 steps).
// Quality: relative L2 error of final particle positions vs the accurate
// execution.  Loop perforation is not applicable to this benchmark (§4.2).
#pragma once

#include <vector>

#include "apps/common.hpp"

namespace sigrt::apps::fluid {

struct Options {
  std::size_t particles = 2048;
  std::size_t steps = 48;
  std::size_t chunk = 128;  ///< particles per task
  double dt = 4e-3;
  /// Run every step accurately regardless of degree (still through the
  /// configured policy at ratio 1.0) — used by the Figure 4 overhead study.
  bool force_all_accurate = false;
  CommonOptions common;
};

/// Fraction of accurate steps per degree (Table 1: 50 / 25 / 12.5 %).
[[nodiscard]] double accurate_step_fraction(Degree degree) noexcept;

/// Steps between accurate steps (2 / 4 / 8).
[[nodiscard]] std::size_t period_for(Degree degree) noexcept;

struct State {
  std::vector<double> px, py, pz;  ///< positions
  std::vector<double> vx, vy, vz;  ///< velocities
};

/// Serial accurate reference simulation.
[[nodiscard]] State reference(const Options& options);

/// Whether a variant is supported (Perforated is not, as in the paper).
[[nodiscard]] bool variant_supported(Variant v) noexcept;

RunResult run(const Options& options, State* out = nullptr);

}  // namespace sigrt::apps::fluid
