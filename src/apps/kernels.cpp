#include "apps/kernels.hpp"

#include <algorithm>

#include "core/topology.hpp"

namespace sigrt::apps::kern {

namespace {

/// Dispatch slots indexed by Isa.  Filled once: each level maps to the best
/// table actually compiled into this binary (AVX2 -> SSE2 -> scalar,
/// NEON -> scalar).  support::simd clamps the *active* level to the
/// hardware, so a compiled-in table is only reached when it can execute.
struct Slots {
  const KernelTable* t[support::simd::kIsaCount];

  Slots() noexcept {
    using support::simd::Isa;
    const KernelTable* scalar = detail::table_scalar();
    const KernelTable* base = detail::table_base();
    const KernelTable* avx2 = detail::table_avx2();

    const KernelTable* sse2 =
        (base != nullptr && base->isa == Isa::SSE2) ? base : scalar;
    const KernelTable* neon =
        (base != nullptr && base->isa == Isa::NEON) ? base : scalar;

    t[static_cast<std::size_t>(Isa::Scalar)] = scalar;
    t[static_cast<std::size_t>(Isa::SSE2)] = sse2;
    t[static_cast<std::size_t>(Isa::AVX2)] = avx2 != nullptr ? avx2 : sse2;
    t[static_cast<std::size_t>(Isa::NEON)] = neon;
  }
};

}  // namespace

const KernelTable& table_for(support::simd::Isa isa) noexcept {
  static const Slots slots;
  return *slots.t[static_cast<std::size_t>(isa)];
}

std::size_t sobel_tile_cols(std::size_t w, std::size_t band_rows) noexcept {
  if (w <= 2) return w;
  std::size_t l2 = topo::system_topology().l2_bytes;
  if (l2 == 0) l2 = 256 * 1024;
  // One strip touches (band_rows + 2) input rows and band_rows output rows,
  // each tile_cols bytes wide; budget half the L2 so the rest of the task's
  // working set does not evict the halo.
  const std::size_t rows = band_rows == 0 ? 1 : band_rows;
  const std::size_t cols = (l2 / 2) / (2 * rows + 2);
  return std::clamp<std::size_t>(cols, 64, w);
}

namespace {

template <typename RowFn>
void sobel_band(RowFn row_fn, std::uint8_t* res, const std::uint8_t* img,
                std::size_t w, std::size_t y0, std::size_t y1,
                std::size_t tile_cols) {
  if (w <= 2 || y0 >= y1) return;
  if (tile_cols == 0) tile_cols = sobel_tile_cols(w, y1 - y0);
  for (std::size_t x0 = 1; x0 < w - 1; x0 += tile_cols) {
    const std::size_t x1 = std::min(x0 + tile_cols, w - 1);
    for (std::size_t y = y0; y < y1; ++y) row_fn(res, img, w, y, x0, x1);
  }
}

}  // namespace

void sobel_band_accurate(std::uint8_t* res, const std::uint8_t* img,
                         std::size_t w, std::size_t y0, std::size_t y1,
                         std::size_t tile_cols) {
  sobel_band(table().sobel_row_accurate, res, img, w, y0, y1, tile_cols);
}

void sobel_band_approx(std::uint8_t* res, const std::uint8_t* img,
                       std::size_t w, std::size_t y0, std::size_t y1,
                       std::size_t tile_cols) {
  sobel_band(table().sobel_row_approx, res, img, w, y0, y1, tile_cols);
}

}  // namespace sigrt::apps::kern
