#include "apps/kernels.hpp"

namespace sigrt::apps::kern {

namespace {

/// Dispatch slots indexed by Isa.  Filled once: each level maps to the best
/// table actually compiled into this binary (AVX2 -> SSE2 -> scalar,
/// NEON -> scalar).  support::simd clamps the *active* level to the
/// hardware, so a compiled-in table is only reached when it can execute.
struct Slots {
  const KernelTable* t[support::simd::kIsaCount];

  Slots() noexcept {
    using support::simd::Isa;
    const KernelTable* scalar = detail::table_scalar();
    const KernelTable* base = detail::table_base();
    const KernelTable* avx2 = detail::table_avx2();

    const KernelTable* sse2 =
        (base != nullptr && base->isa == Isa::SSE2) ? base : scalar;
    const KernelTable* neon =
        (base != nullptr && base->isa == Isa::NEON) ? base : scalar;

    t[static_cast<std::size_t>(Isa::Scalar)] = scalar;
    t[static_cast<std::size_t>(Isa::SSE2)] = sse2;
    t[static_cast<std::size_t>(Isa::AVX2)] = avx2 != nullptr ? avx2 : sse2;
    t[static_cast<std::size_t>(Isa::NEON)] = neon;
  }
};

}  // namespace

const KernelTable& table_for(support::simd::Isa isa) noexcept {
  static const Slots slots;
  return *slots.t[static_cast<std::size_t>(isa)];
}

}  // namespace sigrt::apps::kern
