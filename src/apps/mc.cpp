#include "apps/mc.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/quality.hpp"
#include "perforation/perforate.hpp"
#include "support/rng.hpp"

namespace sigrt::apps::mc {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kSubdomainRadius = 0.22;  // interior circle around (0.5, 0.5)
constexpr double kCaptureEps = 1e-3;       // accurate boundary capture band
constexpr double kCaptureEpsApprox = 8e-3; // lighter capture band (approxfun)

/// Distance from (x, y) to the unit-square boundary (the WoS sphere radius).
double wall_distance(double x, double y) {
  return std::min(std::min(x, 1.0 - x), std::min(y, 1.0 - y));
}

/// One accurate walk-on-spheres step sequence from (x, y); returns g at the
/// exit point.  The step is an exact uniform sample of the largest circle
/// inscribed at the current location.
double walk_accurate(double x, double y, support::Xoshiro256& rng) {
  double r = wall_distance(x, y);
  while (r > kCaptureEps) {
    const double theta = rng.uniform(0.0, 2.0 * kPi);
    x += r * std::cos(theta);
    y += r * std::sin(theta);
    r = wall_distance(x, y);
  }
  // Snap to the nearest wall and evaluate g there.
  const double dx = std::min(x, 1.0 - x);
  const double dy = std::min(y, 1.0 - y);
  if (dx < dy) {
    x = x < 0.5 ? 0.0 : 1.0;
  } else {
    y = y < 0.5 ? 0.0 : 1.0;
  }
  return boundary_value(x, y);
}

/// Lighter stepping rule (§4.1: "a modified, more lightweight methodology
/// ... to decide how far the next step should be"): axis-aligned L-inf
/// steps (no trig), a coarser capture band, and a step cap.
double walk_approx(double x, double y, support::Xoshiro256& rng) {
  double r = wall_distance(x, y);
  unsigned steps = 0;
  while (r > kCaptureEpsApprox && steps < 64) {
    // Jump along one axis by the full inscribed distance: cheap (one rng
    // draw, no sin/cos) yet still boundary-convergent.
    const std::uint64_t dir = rng.bounded(4);
    switch (dir) {
      case 0: x += r; break;
      case 1: x -= r; break;
      case 2: y += r; break;
      default: y -= r; break;
    }
    x = std::clamp(x, 0.0, 1.0);
    y = std::clamp(y, 0.0, 1.0);
    r = wall_distance(x, y);
    ++steps;
  }
  const double dx = std::min(x, 1.0 - x);
  const double dy = std::min(y, 1.0 - y);
  if (dx < dy) {
    x = x < 0.5 ? 0.0 : 1.0;
  } else {
    y = y < 0.5 ? 0.0 : 1.0;
  }
  return boundary_value(x, y);
}

/// Sample point `i` on the sub-domain (circle) boundary.
void subdomain_point(std::size_t i, std::size_t n, double& x, double& y) {
  const double theta = 2.0 * kPi * static_cast<double>(i) / static_cast<double>(n);
  x = 0.5 + kSubdomainRadius * std::cos(theta);
  y = 0.5 + kSubdomainRadius * std::sin(theta);
}

/// Accurate task body: full walk budget with exact stepping.
double estimate_accurate(std::size_t point, const Options& opt) {
  double x0, y0;
  subdomain_point(point, opt.points, x0, y0);
  auto rng = support::stream_rng(opt.common.seed, point);
  double acc = 0.0;
  for (std::size_t w = 0; w < opt.walks; ++w) {
    acc += walk_accurate(x0, y0, rng);
  }
  return acc / static_cast<double>(opt.walks);
}

/// Approximate task body: drops (1 - approx_walk_fraction) of the walks and
/// steps with the lightweight rule.
double estimate_approx(std::size_t point, const Options& opt) {
  double x0, y0;
  subdomain_point(point, opt.points, x0, y0);
  auto rng = support::stream_rng(opt.common.seed, point);
  const auto walks = static_cast<std::size_t>(
      std::max(1.0, static_cast<double>(opt.walks) * opt.approx_walk_fraction));
  double acc = 0.0;
  for (std::size_t w = 0; w < walks; ++w) {
    acc += walk_approx(x0, y0, rng);
  }
  return acc / static_cast<double>(walks);
}

/// Round-robin significance as in Sobel: spreads approximated points evenly
/// around the sub-domain boundary, avoiding the special values.
double point_significance(std::size_t point) {
  return static_cast<double>(point % 9 + 1) / 10.0;
}

}  // namespace

double ratio_for(Degree degree) noexcept {
  switch (degree) {
    case Degree::Mild: return 1.0;
    case Degree::Medium: return 0.80;
    case Degree::Aggressive: return 0.50;
  }
  return 1.0;
}

double boundary_value(double x, double y) noexcept {
  return x * x - y * y + x;  // harmonic: u_xx + u_yy = 0
}

std::vector<double> reference(const Options& options) {
  std::vector<double> u(options.points, 0.0);
  for (std::size_t p = 0; p < options.points; ++p) {
    u[p] = estimate_accurate(p, options);
  }
  return u;
}

RunResult run(const Options& options, std::vector<double>* out) {
  RunResult result;
  result.app = "mc";
  result.quality_metric = "rel.err";

  const std::vector<double> ref = reference(options);
  const double ratio = options.ratio_override >= 0.0
                           ? options.ratio_override
                           : ratio_for(options.common.degree);

  std::vector<double> estimates(options.points, 0.0);
  double* est = estimates.data();

  run_measured(options.common, result, [&](Runtime& rt) {
    const GroupId g = rt.create_group("mc", ratio);
    if (options.common.variant == Variant::Perforated) {
      // Blind perforation of the *walk* loop: every point task survives but
      // performs only ratio*walks of its random walks (accurate stepping).
      // This is the transformation a perforating compiler would apply to
      // the hot loop, and matches §4.2's observation that MC's performance
      // under the runtime policies is almost identical to blind
      // perforation.  (No out() clauses: per-point estimates are 8-byte
      // slots, far below block granularity, and the tasks are independent —
      // the group barrier orders the final read.)
      Options perforated = options;
      perforated.walks = static_cast<std::size_t>(
          std::max(1.0, static_cast<double>(options.walks) * ratio));
      for (std::size_t p = 0; p < options.points; ++p) {
        rt.spawn(task([=] { est[p] = estimate_accurate(p, perforated); })
                     .group(g));
      }
    } else {
      for (std::size_t p = 0; p < options.points; ++p) {
        rt.spawn(task([=, &options] { est[p] = estimate_accurate(p, options); })
                     .approx([=, &options] { est[p] = estimate_approx(p, options); })
                     .significance(point_significance(p))
                     .group(g));
      }
    }
    rt.wait_group(g);
  });

  result.quality = metrics::mean_relative_error(ref, estimates);
  result.quality_aux = result.quality;
  if (out != nullptr) *out = std::move(estimates);
  return result;
}

}  // namespace sigrt::apps::mc
