// K-means clustering benchmark (§4.1).
//
// n observations in a d-dimensional space are partitioned into k clusters.
// Every iteration spawns one task per chunk of points; all tasks carry the
// same significance, so the taskwait ratio() alone controls the degree of
// approximation (the paper highlights this as a flexibility result).
//
// Accurate task: full Euclidean distance over all dimensions.
// Approximate task: "a simpler version of the euclidean distance, while at
// the same time considering only a subset (1/8) of the dimensions" — here
// an L1 distance over d/8 dimensions.  Approximate chunks still contribute
// to the new centroids, but — per the paper — "only accurate results are
// considered when evaluating the convergence criteria", which is what makes
// LQH's nondeterministic chunk selection converge slower than the fully
// deterministic GTB (§4.2).
// Degrees: ratio 0.8 / 0.6 / 0.4.  Quality: relative error of the final
// centroids vs the accurate execution.
#pragma once

#include <vector>

#include "apps/common.hpp"

namespace sigrt::apps::kmeans {

struct Options {
  std::size_t points = 8192;
  std::size_t dims = 16;
  std::size_t clusters = 8;
  std::size_t chunk = 64;        ///< points per task
  std::size_t max_iterations = 60;
  /// Termination: objects moving clusters < points/1000 (§4.2).
  double converge_fraction = 1e-3;
  CommonOptions common;
  double ratio_override = -1.0;
};

[[nodiscard]] double ratio_for(Degree degree) noexcept;

struct Solution {
  std::vector<double> centroids;  ///< clusters x dims, row-major
  std::size_t iterations = 0;
};

/// Serial accurate reference.
[[nodiscard]] Solution reference(const Options& options);

RunResult run(const Options& options, Solution* out = nullptr);

}  // namespace sigrt::apps::kmeans
